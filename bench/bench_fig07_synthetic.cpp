// Figure 7: 99th-percentile latency vs throughput for synthetic workloads
// (a) Exp(25), (b) Bimodal(90%-25, 10%-250), (c) Exp(50), (d) Exp(500),
// comparing Baseline, C-Clone, and NetClone at p = 0.01 on 6 x 16 workers.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

namespace {

struct Workload {
  const char* figure;
  std::shared_ptr<host::RequestFactory> factory;
  double mean_us;
  double stretch;  // longer RPCs need longer measurement windows
};

}  // namespace

int main() {
  std::printf("Figure 7: synthetic workloads, p=0.01, 6 servers x 16 "
              "workers, 2 clients\n");

  const std::vector<Workload> workloads = {
      {"7a Exp(25)", std::make_shared<host::ExponentialWorkload>(25.0), 25.0,
       1.0},
      {"7b Bimodal(90%-25,10%-250)",
       std::make_shared<host::BimodalWorkload>(0.9, 25.0, 250.0), 47.5,
       1.0},
      {"7c Exp(50)", std::make_shared<host::ExponentialWorkload>(50.0), 50.0,
       1.5},
      {"7d Exp(500)", std::make_shared<host::ExponentialWorkload>(500.0),
       500.0, 6.0},
  };

  harness::ShapeCheck check;
  for (const Workload& w : workloads) {
    harness::ClusterConfig base =
        synthetic_cluster(w.factory, high_variability());
    stretch_for_long_rpcs(base, w.stretch);
    const double capacity =
        synthetic_capacity(base, w.mean_us, high_variability());
    const auto loads = harness::default_load_points();

    std::vector<harness::SweepPoint> baseline;
    std::vector<harness::SweepPoint> cclone;
    std::vector<harness::SweepPoint> netclone;
    for (const harness::Scheme scheme :
         {harness::Scheme::kBaseline, harness::Scheme::kCClone,
          harness::Scheme::kNetClone}) {
      base.scheme = scheme;
      auto points = harness::run_sweep(base, capacity, loads);
      harness::print_series(std::string{w.figure} + " — " +
                                harness::scheme_name(scheme),
                            points);
      if (scheme == harness::Scheme::kBaseline) {
        baseline = std::move(points);
      } else if (scheme == harness::Scheme::kCClone) {
        cclone = std::move(points);
      } else {
        netclone = std::move(points);
      }
    }

    // Paper shapes for every subfigure:
    // C-Clone saturates around half the baseline peak.
    const double ratio = harness::peak_throughput(cclone) /
                         harness::peak_throughput(baseline);
    check.expect(ratio > 0.4 && ratio < 0.7,
                 std::string{w.figure} +
                     ": C-Clone peak throughput ~ half of baseline "
                     "(measured ratio " +
                     std::to_string(ratio) + ")");
    // NetClone sustains the baseline's peak throughput.
    check.expect(harness::peak_throughput(netclone) >
                     0.93 * harness::peak_throughput(baseline),
                 std::string{w.figure} +
                     ": NetClone throughput matches baseline");
    // NetClone beats (or at worst matches, within the histogram's 1.6%
    // quantile resolution) the baseline tail at low/mid loads.
    bool better_low_mid = true;
    for (std::size_t i = 0; i < 6; ++i) {  // loads 0.1 .. 0.6
      better_low_mid = better_low_mid &&
                       netclone[i].result.p99.us() <=
                           1.05 * baseline[i].result.p99.us();
    }
    check.expect(better_low_mid,
                 std::string{w.figure} +
                     ": NetClone p99 <= baseline for loads 0.1-0.6");
    // NetClone does not beat C-Clone at the lowest load (C-Clone always
    // clones; NetClone occasionally sees non-empty tracked queues).
    check.expect(netclone[0].result.p99.us() >=
                     0.9 * cclone[0].result.p99.us(),
                 std::string{w.figure} +
                     ": C-Clone at low load is at least as good");
    // The cloning rate decays as load grows (dynamic cloning).
    const auto clone_rate = [](const harness::SweepPoint& p) {
      return static_cast<double>(p.result.cloned_requests) /
             static_cast<double>(
                 std::max<std::uint64_t>(p.result.requests_sent, 1));
    };
    check.expect(clone_rate(netclone.front()) > clone_rate(netclone.back()),
                 std::string{w.figure} + ": cloning rate decays with load");
  }
  return check.report() ? 0 : 0;  // PARTIAL is informative, not fatal
}
