// Parallel-engine scaling: the same Figure-7-style NetClone point
// wall-clocked on 1 event-queue shard (the sharded machinery's
// single-queue baseline — merge overhead included, no parallelism) vs 4
// shards with worker threads. Simulated results must be bit-identical
// in every configuration (the unsharded legacy engine is run first as
// the oracle); only the wall clock may differ.
//
// Pinning: worker threads inherit the affinity mask of the thread that
// spawns them, so the harness pins the whole process to the first
// min(4, hw) logical CPUs before any run. Both configurations then
// execute on the same core set — on a multi-socket box that keeps the
// run on one NUMA node's cores and LLC, so the 4-shard/1-shard ratio
// measures the engine, not page migration. The ratio is measured
// in-process on one machine and therefore transfers; hw_threads is
// recorded so the gate can skip the scaling check on starved runners.
//
// Every timed section is best-of-3. Results land in
// BENCH_parallel_engine.json.
//
// Usage: bench_parallel_engine [output.json]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "bench_common.hpp"
#include "common/check.hpp"
#include "harness/experiment.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "sim/sharded.hpp"

using namespace netclone;

namespace {

/// Pins the calling thread — and, by mask inheritance, every worker
/// thread spawned after this call — to logical CPUs [0, count). Returns
/// the number of CPUs actually in the mask (0 when pinning is
/// unsupported; the bench still runs, just unpinned).
std::size_t pin_process_to_first_cores(std::size_t count) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    return 0;
  }
  if (count > hw) {
    count = hw;
  }
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (std::size_t cpu = 0; cpu < count; ++cpu) {
    CPU_SET(cpu, &mask);
  }
  if (sched_setaffinity(0, sizeof(mask), &mask) != 0) {
    return 0;
  }
  return count;
#else
  (void)count;
  return 0;
#endif
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The bench_packet_path fig7 point, verbatim: NetClone scheme, Exp(25)
/// workload, high-variability service, 80% load. Its digest keys
/// (completed, p99) are the committed 54336 / 154624.
harness::ClusterConfig fig7_config(std::size_t num_shards) {
  harness::ClusterConfig cfg = bench::synthetic_cluster(
      std::make_shared<host::ExponentialWorkload>(25.0),
      bench::high_variability());
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(20);
  cfg.drain = SimTime::milliseconds(10);
  cfg.offered_rps =
      0.8 * bench::synthetic_capacity(cfg, 25.0, bench::high_variability());
  cfg.num_shards = num_shards;
  return cfg;
}

struct RunResult {
  double wall_s = 0.0;
  std::uint64_t completed = 0;
  std::int64_t p99_ns = 0;
  std::uint64_t executed = 0;
};

RunResult run_point(std::size_t num_shards) {
  harness::Experiment experiment{fig7_config(num_shards)};
  const auto start = std::chrono::steady_clock::now();
  const harness::ExperimentResult result = experiment.run();
  RunResult out;
  out.wall_s = seconds_since(start);
  out.completed = result.completed;
  out.p99_ns = result.p99.ns();
  out.executed = experiment.executed_events();
  return out;
}

RunResult best_of_3(std::size_t num_shards) {
  RunResult best = run_point(num_shards);
  for (int i = 0; i < 2; ++i) {
    const RunResult run = run_point(num_shards);
    NETCLONE_CHECK(run.completed == best.completed &&
                       run.p99_ns == best.p99_ns,
                   "same-config repeat runs diverged");
    if (run.wall_s < best.wall_s) {
      best = run;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_parallel_engine.json";

  const unsigned hw_threads = std::thread::hardware_concurrency();
  const std::size_t pinned = pin_process_to_first_cores(4);
  std::printf("parallel engine bench: %u hw threads, pinned to %zu cores, "
              "best of 3\n\n",
              hw_threads, pinned);

  // Correctness first: the unsharded legacy engine is the oracle; both
  // sharded configurations must reproduce it bit for bit.
  const RunResult oracle = run_point(/*num_shards=*/0);
  const RunResult shard1 = best_of_3(/*num_shards=*/1);
  const RunResult shard4 = best_of_3(/*num_shards=*/4);
  NETCLONE_CHECK(shard1.completed == oracle.completed &&
                     shard1.p99_ns == oracle.p99_ns &&
                     shard1.executed == oracle.executed,
                 "1-shard run diverged from the unsharded oracle");
  NETCLONE_CHECK(shard4.completed == oracle.completed &&
                     shard4.p99_ns == oracle.p99_ns &&
                     shard4.executed == oracle.executed,
                 "4-shard run diverged from the unsharded oracle");

  const double scaling = shard1.wall_s / shard4.wall_s;
  std::printf("fig7 point (%llu completed, p99 %lld ns, %llu events):\n",
              static_cast<unsigned long long>(shard4.completed),
              static_cast<long long>(shard4.p99_ns),
              static_cast<unsigned long long>(shard4.executed));
  std::printf("  unsharded : %8.3f s wall\n", oracle.wall_s);
  std::printf("  1 shard   : %8.3f s wall\n", shard1.wall_s);
  std::printf("  4 shards  : %8.3f s wall   (%.2fx over 1 shard)\n",
              shard4.wall_s, scaling);
  if (hw_threads < 4) {
    std::printf("  note: only %u hw threads — 4-shard run was "
                "(partly) serialized, scaling not meaningful\n",
                hw_threads);
  }

  std::ofstream out{out_path};
  out << "{\n"
      << "  \"bench\": \"parallel_engine\",\n"
      << "  \"unit\": \"seconds\",\n"
      << "  \"hw_threads\": " << hw_threads << ",\n"
      << "  \"pinned_cores\": " << pinned << ",\n"
      << "  \"fig7_completed\": " << shard4.completed << ",\n"
      << "  \"fig7_p99_ns\": " << shard4.p99_ns << ",\n"
      << "  \"fig7_executed_events\": " << shard4.executed << ",\n"
      << "  \"fig7_point_wall_seconds_shard4\": " << shard4.wall_s << ",\n"
      << "  \"fig7_point_wall_seconds_shard4_legacy\": " << shard1.wall_s
      << ",\n"
      << "  \"fig7_point_wall_seconds_unsharded\": " << oracle.wall_s
      << ",\n"
      << "  \"parallel_scaling_shard4_over_shard1\": " << scaling << "\n"
      << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
