// Packet-path throughput: the zero-copy frame layer vs the legacy
// re-materializing path, measured three ways.
//
//   * per-hop: the switch-hop cycle (parse -> header mutate -> deparse) on
//     one frame, in frames per second. Both sides run the identical
//     FrameHandle loop; "legacy" disables the fast path, so every hop
//     linearizes the frame into vectors at parse and rebuilds + copies it
//     back into a pooled buffer at deparse — the data path without the
//     zero-copy layer. The fast path views the pooled buffer and patches
//     dirty header bytes in place (RFC 1624 incremental checksums).
//   * multicast: one parsed packet replicated to 8 ports. Legacy serializes
//     per port; the fast path deparses once and bumps a refcount per port.
//   * end-to-end: one Figure-7-style NetClone experiment wall-clocked with
//     the fast path enabled vs disabled. Both runs must produce identical
//     simulated results (the fast path is byte-invisible); only the wall
//     clock may differ.
//   * per-hop burst: a 256-frame back-to-back chain through one link into
//     a burst-capable receiver — the configuration where the absorbing
//     drain replaces every delivery event but the first with a
//     probe-and-commit. "legacy" runs the same chain with NETCLONE_BURST
//     off (one scheduler dispatch per frame). The ratio is the event-loop
//     overhead the burst path removes per hop.
//   * absorb probe: raw try_absorb_event throughput against a populated
//     timing wheel (the per-frame cost of extending a burst).
//   * end-to-end burst: the same Figure-7 point wall-clocked with bursting
//     on vs off; like the fast path, the toggle must be invisible in
//     simulated results (the digest keys come from the burst run).
//
// Every timed section is best-of-3. Results land in BENCH_packet_path.json.
//
// Usage: bench_packet_path [output.json]  (default: BENCH_packet_path.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "harness/experiment.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "phys/burst.hpp"
#include "phys/link.hpp"
#include "phys/node.hpp"
#include "sim/simulator.hpp"
#include "wire/frame.hpp"
#include "wire/framebuf.hpp"

using namespace netclone;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

wire::Packet sample_packet(std::size_t payload_size) {
  wire::NetCloneHeader nc;
  nc.type = wire::MsgType::kRequest;
  nc.grp = 12;
  nc.idx = 1;
  nc.client_id = 3;
  nc.client_seq = 99;
  wire::Frame payload(payload_size, std::byte{0x5A});
  return make_netclone_packet(wire::MacAddress::from_node(1),
                              wire::MacAddress::from_node(2),
                              wire::Ipv4Address::from_octets(10, 0, 0, 1),
                              wire::Ipv4Address::from_octets(10, 0, 255, 1),
                              40001, nc, std::move(payload));
}

/// The header rewrites one NetClone switch hop performs on a request.
void mutate_hop(wire::Packet& pkt, std::uint32_t i) {
  pkt.ip.dst = wire::Ipv4Address{0x0A000000U + (i & 0xFFU)};
  pkt.nc().req_id = i;
  pkt.nc().clo = (i & 1U) != 0 ? wire::CloneStatus::kClonedCopy
                               : wire::CloneStatus::kClonedOriginal;
  pkt.nc().state = static_cast<std::uint16_t>(i & 0x3FU);
}

/// One switch-hop cycle over a FrameHandle. With the fast path on, the
/// backed parse views the pooled buffer and the deparse patches it in
/// place; with it off, every hop linearizes to vectors and rebuilds —
/// the per-hop byte traffic of the path without the zero-copy layer.
double bench_per_hop(bool fastpath, std::size_t iters,
                     std::size_t payload_size) {
  wire::set_packet_fastpath_enabled(fastpath);
  wire::FrameHandle frame{sample_packet(payload_size).serialize()};
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    wire::Packet pkt = wire::Packet::parse_backed(frame);
    frame.reset();
    mutate_hop(pkt, static_cast<std::uint32_t>(i));
    frame = pkt.serialize_pooled();
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(!frame.empty(), "sink");
  wire::set_packet_fastpath_enabled(true);
  return static_cast<double>(iters) / elapsed;
}

constexpr std::size_t kFanOut = 8;

/// Seed-era multicast: the packet is re-serialized once per output port.
double bench_multicast_legacy(std::size_t iters, std::size_t payload_size) {
  const wire::Frame frame = sample_packet(payload_size).serialize();
  const wire::Packet pkt = wire::Packet::parse(frame);
  std::size_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    for (std::size_t p = 0; p < kFanOut; ++p) {
      const wire::Frame copy = pkt.serialize();
      sink += copy.size();
    }
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(sink > 0, "sink");
  return static_cast<double>(iters * kFanOut) / elapsed;
}

/// Zero-copy multicast: deparse once, then one refcount bump per port.
double bench_multicast_fast(std::size_t iters, std::size_t payload_size) {
  const wire::FrameHandle incoming{sample_packet(payload_size).serialize()};
  std::size_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    wire::Packet pkt = wire::Packet::parse_backed(incoming);
    const wire::FrameHandle bytes = pkt.serialize_pooled();
    for (std::size_t p = 0; p < kFanOut; ++p) {
      const wire::FrameHandle port_copy = bytes;
      sink += port_copy.size();
    }
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(sink > 0, "sink");
  return static_cast<double>(iters * kFanOut) / elapsed;
}

/// A receiver whose horizon swallows any chain we offer it: every frame
/// of a back-to-back run is absorbed into the head's delivery event.
class BurstSink final : public phys::Node {
 public:
  BurstSink() : phys::Node("sink") {}
  void handle_frame(std::size_t /*port*/, wire::FrameHandle frame) override {
    frames_ += 1;
    bytes_ += frame.size();
  }
  void handle_burst(std::size_t /*port*/, phys::FrameBurst&& burst) override {
    frames_ += burst.size();
    for (std::size_t i = 0; i < burst.size(); ++i) {
      bytes_ += burst[i].frame.size();
    }
  }
  [[nodiscard]] SimTime burst_horizon() const override {
    return SimTime::milliseconds(1);
  }
  [[nodiscard]] std::uint64_t frames() const { return frames_; }

 private:
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Per-hop delivery cost through one link: 256 back-to-back frames per
/// run. In burst mode the drain fires one event and probe-absorbs the
/// other 255; with NETCLONE_BURST off every frame is a full scheduler
/// round-trip (insert into the wheel, pop, dispatch). Frames per second
/// of wall time — the simulated timeline is identical in both modes.
double bench_per_hop_burst(bool burst_on, std::size_t iters) {
  const bool prev = phys::burst_enabled();
  phys::set_burst_enabled(burst_on);
  sim::Simulator sim;
  BurstSink sink;
  phys::LinkParams params;
  params.rate_bps = 1e9;  // 125 B = 1 us per frame on the wire
  params.delay = SimTime::zero();
  params.queue_capacity = 512;
  phys::Link link{sim, params};
  link.connect_to(&sink, 0);
  const wire::FrameHandle frame =
      wire::FrameHandle::copy_of(wire::Frame(125, std::byte{0x42}));
  constexpr std::size_t kChain = 256;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    for (std::size_t k = 0; k < kChain; ++k) {
      link.transmit(frame);
    }
    sim.run();
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(sink.frames() == iters * kChain, "frames lost in chain");
  // Absorbed deliveries count as executed, so the tally is mode-invariant.
  NETCLONE_CHECK(sim.executed_events() == iters * kChain, "event tally");
  phys::set_burst_enabled(prev);
  return static_cast<double>(iters * kChain) / elapsed;
}

/// Raw probe-and-commit throughput: the marginal cost of growing a burst
/// by one frame. The wheel holds far-future events so none_before() scans
/// real occupancy bitmaps instead of short-circuiting on an empty arena.
double bench_absorb_probe(std::size_t iters) {
  sim::Simulator sim;
  for (int i = 0; i < 64; ++i) {
    sim.schedule_at(SimTime::seconds(100 + i), [] {});
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const std::uint64_t seq = sim.reserve_seq();
    NETCLONE_CHECK(sim.try_absorb_event(sim.now() + SimTime::nanoseconds(1),
                                        seq),
                   "probe refused on an idle queue");
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(iters) / elapsed;
}

struct E2e {
  double wall_s = 0.0;
  harness::ExperimentResult result{};
  std::uint64_t executed = 0;
  std::uint64_t absorbed = 0;
};

/// One Figure-7-style point: NetClone scheme, Exp(25) workload, 80% load.
harness::ExperimentResult run_fig7_point(E2e* out = nullptr) {
  harness::ClusterConfig cfg = bench::synthetic_cluster(
      std::make_shared<host::ExponentialWorkload>(25.0),
      bench::high_variability());
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(20);
  cfg.drain = SimTime::milliseconds(10);
  cfg.offered_rps =
      0.8 * bench::synthetic_capacity(cfg, 25.0, bench::high_variability());
  harness::Experiment experiment{cfg};
  harness::ExperimentResult result = experiment.run();
  if (out != nullptr) {
    out->executed = experiment.executed_events();
    out->absorbed = experiment.absorbed_events();
  }
  return result;
}

E2e bench_end_to_end(bool fastpath) {
  wire::set_packet_fastpath_enabled(fastpath);
  const auto start = std::chrono::steady_clock::now();
  E2e out;
  out.result = run_fig7_point();
  out.wall_s = seconds_since(start);
  wire::set_packet_fastpath_enabled(true);
  return out;
}

E2e bench_end_to_end_burst(bool burst_on) {
  const bool prev = phys::burst_enabled();
  phys::set_burst_enabled(burst_on);
  const auto start = std::chrono::steady_clock::now();
  E2e out;
  out.result = run_fig7_point(&out);
  out.wall_s = seconds_since(start);
  phys::set_burst_enabled(prev);
  return out;
}

template <typename Fn>
double best_of_3(Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    best = std::max(best, fn());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_packet_path.json";

  // Sanity first: both paths must emit identical bytes for one hop.
  {
    const wire::Frame frame = sample_packet(128).serialize();
    wire::Packet legacy = wire::Packet::parse(frame);
    wire::Packet fast = wire::Packet::parse_backed(
        wire::FrameHandle::copy_of(frame));
    mutate_hop(legacy, 7);
    mutate_hop(fast, 7);
    NETCLONE_CHECK(fast.serialize_pooled().to_frame() == legacy.serialize(),
                   "fast path bytes diverge from the legacy oracle");
  }

  constexpr std::size_t kHopIters = 400000;
  constexpr std::size_t kMcastIters = 100000;
  constexpr std::size_t kPayload = 128;  // the paper's RPC regime

  std::printf("packet path bench: payload %zu B, best of 3\n\n", kPayload);

  const double hop_legacy =
      best_of_3([] { return bench_per_hop(false, kHopIters, kPayload); });
  const double hop_fast =
      best_of_3([] { return bench_per_hop(true, kHopIters, kPayload); });
  std::printf("per-hop (parse+mutate+deparse):\n");
  std::printf("  legacy : %12.0f frames/s\n", hop_legacy);
  std::printf("  fast   : %12.0f frames/s   (%.2fx)\n\n", hop_fast,
              hop_fast / hop_legacy);

  const double mc_legacy = best_of_3(
      [] { return bench_multicast_legacy(kMcastIters, kPayload); });
  const double mc_fast =
      best_of_3([] { return bench_multicast_fast(kMcastIters, kPayload); });
  std::printf("multicast x%zu (copies emitted):\n", kFanOut);
  std::printf("  legacy : %12.0f frames/s\n", mc_legacy);
  std::printf("  fast   : %12.0f frames/s   (%.2fx)\n\n", mc_fast,
              mc_fast / mc_legacy);

  constexpr std::size_t kBurstIters = 3000;
  const double burst_legacy =
      best_of_3([] { return bench_per_hop_burst(false, kBurstIters); });
  const double burst_on =
      best_of_3([] { return bench_per_hop_burst(true, kBurstIters); });
  std::printf("per-hop burst (256-frame link chain, delivery cost):\n");
  std::printf("  legacy : %12.0f frames/s\n", burst_legacy);
  std::printf("  burst  : %12.0f frames/s   (%.2fx)\n\n", burst_on,
              burst_on / burst_legacy);

  const double probe_rate =
      best_of_3([] { return bench_absorb_probe(2000000); });
  std::printf("absorb probe (reserve + try_absorb_event): %12.0f /s\n\n",
              probe_rate);

  std::printf("end-to-end (fig7-style NetClone point, wall clock, "
              "best of 3):\n");
  double e2e_legacy_s = 1e30;
  double e2e_fast_s = 1e30;
  harness::ExperimentResult res_legacy{};
  harness::ExperimentResult res_fast{};
  for (int i = 0; i < 3; ++i) {
    const E2e legacy = bench_end_to_end(false);
    const E2e fast = bench_end_to_end(true);
    if (legacy.wall_s < e2e_legacy_s) {
      e2e_legacy_s = legacy.wall_s;
      res_legacy = legacy.result;
    }
    if (fast.wall_s < e2e_fast_s) {
      e2e_fast_s = fast.wall_s;
      res_fast = fast.result;
    }
  }
  // The fast path must be invisible in simulated results.
  NETCLONE_CHECK(res_fast.completed == res_legacy.completed &&
                     res_fast.p99 == res_legacy.p99,
                 "fast path changed simulated behavior");
  std::printf("  legacy : %8.3f s wall  (%llu completed, p99 %s)\n",
              e2e_legacy_s,
              static_cast<unsigned long long>(res_legacy.completed),
              to_string(res_legacy.p99).c_str());
  std::printf("  fast   : %8.3f s wall  (%llu completed, p99 %s)  "
              "(%.2fx)\n",
              e2e_fast_s,
              static_cast<unsigned long long>(res_fast.completed),
              to_string(res_fast.p99).c_str(), e2e_legacy_s / e2e_fast_s);

  std::printf("\nend-to-end burst (same fig7 point, NETCLONE_BURST on/off, "
              "best of 3):\n");
  double e2e_burst_off_s = 1e30;
  double e2e_burst_on_s = 1e30;
  double burst_absorbed_pct = 0.0;
  harness::ExperimentResult res_burst_off{};
  harness::ExperimentResult res_burst_on{};
  for (int i = 0; i < 3; ++i) {
    const E2e off = bench_end_to_end_burst(false);
    const E2e on = bench_end_to_end_burst(true);
    if (off.wall_s < e2e_burst_off_s) {
      e2e_burst_off_s = off.wall_s;
      res_burst_off = off.result;
    }
    if (on.wall_s < e2e_burst_on_s) {
      e2e_burst_on_s = on.wall_s;
      res_burst_on = on.result;
      burst_absorbed_pct =
          on.executed > 0 ? 100.0 * static_cast<double>(on.absorbed) /
                                static_cast<double>(on.executed)
                          : 0.0;
    }
  }
  // The burst toggle, like the fast path, must be invisible in simulated
  // results — same completions, same tail, same digest keys.
  NETCLONE_CHECK(res_burst_on.completed == res_burst_off.completed &&
                     res_burst_on.p99 == res_burst_off.p99,
                 "burst mode changed simulated behavior");
  NETCLONE_CHECK(res_burst_on.completed == res_fast.completed &&
                     res_burst_on.p99 == res_fast.p99,
                 "burst runs diverge from the fast-path oracle runs");
  std::printf("  off    : %8.3f s wall  (%llu completed, p99 %s)\n",
              e2e_burst_off_s,
              static_cast<unsigned long long>(res_burst_off.completed),
              to_string(res_burst_off.p99).c_str());
  std::printf("  on     : %8.3f s wall  (%llu completed, p99 %s)  "
              "(%.2fx, %.1f%% of events absorbed)\n",
              e2e_burst_on_s,
              static_cast<unsigned long long>(res_burst_on.completed),
              to_string(res_burst_on.p99).c_str(),
              e2e_burst_off_s / e2e_burst_on_s,
              burst_absorbed_pct);

  const auto& pool = wire::FramePool::instance().stats();
  std::printf("\npool: %llu acquires, %llu recycled (%.1f%%), %llu slabs\n",
              static_cast<unsigned long long>(pool.acquired),
              static_cast<unsigned long long>(pool.recycled),
              pool.acquired > 0
                  ? 100.0 * static_cast<double>(pool.recycled) /
                        static_cast<double>(pool.acquired)
                  : 0.0,
              static_cast<unsigned long long>(pool.slabs_allocated));

  std::ofstream out{out_path};
  out << "{\n"
      << "  \"bench\": \"packet_path\",\n"
      << "  \"unit\": \"frames_per_second\",\n"
      << "  \"per_hop_fast\": " << static_cast<std::uint64_t>(hop_fast)
      << ",\n"
      << "  \"per_hop_legacy\": " << static_cast<std::uint64_t>(hop_legacy)
      << ",\n"
      << "  \"multicast8_fast\": " << static_cast<std::uint64_t>(mc_fast)
      << ",\n"
      << "  \"multicast8_legacy\": " << static_cast<std::uint64_t>(mc_legacy)
      << ",\n"
      << "  \"per_hop_burst\": " << static_cast<std::uint64_t>(burst_on)
      << ",\n"
      << "  \"per_hop_burst_legacy\": "
      << static_cast<std::uint64_t>(burst_legacy) << ",\n"
      << "  \"absorb_probe_per_second\": "
      << static_cast<std::uint64_t>(probe_rate) << ",\n"
      << "  \"fig7_completed\": " << res_burst_on.completed << ",\n"
      << "  \"fig7_p99_ns\": " << res_burst_on.p99.ns() << ",\n"
      << "  \"fig7_point_wall_seconds_fast\": " << e2e_fast_s << ",\n"
      << "  \"fig7_point_wall_seconds_legacy\": " << e2e_legacy_s << ",\n"
      << "  \"fig7_point_wall_seconds_burst\": " << e2e_burst_on_s << ",\n"
      << "  \"fig7_point_wall_seconds_burst_legacy\": " << e2e_burst_off_s
      << "\n"
      << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
