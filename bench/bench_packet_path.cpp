// Packet-path throughput: the zero-copy frame layer vs the legacy
// re-materializing path, measured three ways.
//
//   * per-hop: the switch-hop cycle (parse -> header mutate -> deparse) on
//     one frame, in frames per second. Both sides run the identical
//     FrameHandle loop; "legacy" disables the fast path, so every hop
//     linearizes the frame into vectors at parse and rebuilds + copies it
//     back into a pooled buffer at deparse — the data path without the
//     zero-copy layer. The fast path views the pooled buffer and patches
//     dirty header bytes in place (RFC 1624 incremental checksums).
//   * multicast: one parsed packet replicated to 8 ports. Legacy serializes
//     per port; the fast path deparses once and bumps a refcount per port.
//   * end-to-end: one Figure-7-style NetClone experiment wall-clocked with
//     the fast path enabled vs disabled. Both runs must produce identical
//     simulated results (the fast path is byte-invisible); only the wall
//     clock may differ.
//
// Every timed section is best-of-3. Results land in BENCH_packet_path.json.
//
// Usage: bench_packet_path [output.json]  (default: BENCH_packet_path.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "harness/experiment.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "wire/frame.hpp"
#include "wire/framebuf.hpp"

using namespace netclone;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

wire::Packet sample_packet(std::size_t payload_size) {
  wire::NetCloneHeader nc;
  nc.type = wire::MsgType::kRequest;
  nc.grp = 12;
  nc.idx = 1;
  nc.client_id = 3;
  nc.client_seq = 99;
  wire::Frame payload(payload_size, std::byte{0x5A});
  return make_netclone_packet(wire::MacAddress::from_node(1),
                              wire::MacAddress::from_node(2),
                              wire::Ipv4Address::from_octets(10, 0, 0, 1),
                              wire::Ipv4Address::from_octets(10, 0, 255, 1),
                              40001, nc, std::move(payload));
}

/// The header rewrites one NetClone switch hop performs on a request.
void mutate_hop(wire::Packet& pkt, std::uint32_t i) {
  pkt.ip.dst = wire::Ipv4Address{0x0A000000U + (i & 0xFFU)};
  pkt.nc().req_id = i;
  pkt.nc().clo = (i & 1U) != 0 ? wire::CloneStatus::kClonedCopy
                               : wire::CloneStatus::kClonedOriginal;
  pkt.nc().state = static_cast<std::uint16_t>(i & 0x3FU);
}

/// One switch-hop cycle over a FrameHandle. With the fast path on, the
/// backed parse views the pooled buffer and the deparse patches it in
/// place; with it off, every hop linearizes to vectors and rebuilds —
/// the per-hop byte traffic of the path without the zero-copy layer.
double bench_per_hop(bool fastpath, std::size_t iters,
                     std::size_t payload_size) {
  wire::set_packet_fastpath_enabled(fastpath);
  wire::FrameHandle frame{sample_packet(payload_size).serialize()};
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    wire::Packet pkt = wire::Packet::parse_backed(frame);
    frame.reset();
    mutate_hop(pkt, static_cast<std::uint32_t>(i));
    frame = pkt.serialize_pooled();
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(!frame.empty(), "sink");
  wire::set_packet_fastpath_enabled(true);
  return static_cast<double>(iters) / elapsed;
}

constexpr std::size_t kFanOut = 8;

/// Seed-era multicast: the packet is re-serialized once per output port.
double bench_multicast_legacy(std::size_t iters, std::size_t payload_size) {
  const wire::Frame frame = sample_packet(payload_size).serialize();
  const wire::Packet pkt = wire::Packet::parse(frame);
  std::size_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    for (std::size_t p = 0; p < kFanOut; ++p) {
      const wire::Frame copy = pkt.serialize();
      sink += copy.size();
    }
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(sink > 0, "sink");
  return static_cast<double>(iters * kFanOut) / elapsed;
}

/// Zero-copy multicast: deparse once, then one refcount bump per port.
double bench_multicast_fast(std::size_t iters, std::size_t payload_size) {
  const wire::FrameHandle incoming{sample_packet(payload_size).serialize()};
  std::size_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    wire::Packet pkt = wire::Packet::parse_backed(incoming);
    const wire::FrameHandle bytes = pkt.serialize_pooled();
    for (std::size_t p = 0; p < kFanOut; ++p) {
      const wire::FrameHandle port_copy = bytes;
      sink += port_copy.size();
    }
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(sink > 0, "sink");
  return static_cast<double>(iters * kFanOut) / elapsed;
}

/// One Figure-7-style point: NetClone scheme, Exp(25) workload, 80% load.
harness::ExperimentResult run_fig7_point() {
  harness::ClusterConfig cfg = bench::synthetic_cluster(
      std::make_shared<host::ExponentialWorkload>(25.0),
      bench::high_variability());
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(20);
  cfg.drain = SimTime::milliseconds(10);
  cfg.offered_rps =
      0.8 * bench::synthetic_capacity(cfg, 25.0, bench::high_variability());
  harness::Experiment experiment{cfg};
  return experiment.run();
}

struct E2e {
  double wall_s = 0.0;
  harness::ExperimentResult result{};
};

E2e bench_end_to_end(bool fastpath) {
  wire::set_packet_fastpath_enabled(fastpath);
  const auto start = std::chrono::steady_clock::now();
  E2e out;
  out.result = run_fig7_point();
  out.wall_s = seconds_since(start);
  wire::set_packet_fastpath_enabled(true);
  return out;
}

template <typename Fn>
double best_of_3(Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    best = std::max(best, fn());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_packet_path.json";

  // Sanity first: both paths must emit identical bytes for one hop.
  {
    const wire::Frame frame = sample_packet(128).serialize();
    wire::Packet legacy = wire::Packet::parse(frame);
    wire::Packet fast = wire::Packet::parse_backed(
        wire::FrameHandle::copy_of(frame));
    mutate_hop(legacy, 7);
    mutate_hop(fast, 7);
    NETCLONE_CHECK(fast.serialize_pooled().to_frame() == legacy.serialize(),
                   "fast path bytes diverge from the legacy oracle");
  }

  constexpr std::size_t kHopIters = 400000;
  constexpr std::size_t kMcastIters = 100000;
  constexpr std::size_t kPayload = 128;  // the paper's RPC regime

  std::printf("packet path bench: payload %zu B, best of 3\n\n", kPayload);

  const double hop_legacy =
      best_of_3([] { return bench_per_hop(false, kHopIters, kPayload); });
  const double hop_fast =
      best_of_3([] { return bench_per_hop(true, kHopIters, kPayload); });
  std::printf("per-hop (parse+mutate+deparse):\n");
  std::printf("  legacy : %12.0f frames/s\n", hop_legacy);
  std::printf("  fast   : %12.0f frames/s   (%.2fx)\n\n", hop_fast,
              hop_fast / hop_legacy);

  const double mc_legacy = best_of_3(
      [] { return bench_multicast_legacy(kMcastIters, kPayload); });
  const double mc_fast =
      best_of_3([] { return bench_multicast_fast(kMcastIters, kPayload); });
  std::printf("multicast x%zu (copies emitted):\n", kFanOut);
  std::printf("  legacy : %12.0f frames/s\n", mc_legacy);
  std::printf("  fast   : %12.0f frames/s   (%.2fx)\n\n", mc_fast,
              mc_fast / mc_legacy);

  std::printf("end-to-end (fig7-style NetClone point, wall clock, "
              "best of 3):\n");
  double e2e_legacy_s = 1e30;
  double e2e_fast_s = 1e30;
  harness::ExperimentResult res_legacy{};
  harness::ExperimentResult res_fast{};
  for (int i = 0; i < 3; ++i) {
    const E2e legacy = bench_end_to_end(false);
    const E2e fast = bench_end_to_end(true);
    if (legacy.wall_s < e2e_legacy_s) {
      e2e_legacy_s = legacy.wall_s;
      res_legacy = legacy.result;
    }
    if (fast.wall_s < e2e_fast_s) {
      e2e_fast_s = fast.wall_s;
      res_fast = fast.result;
    }
  }
  // The fast path must be invisible in simulated results.
  NETCLONE_CHECK(res_fast.completed == res_legacy.completed &&
                     res_fast.p99 == res_legacy.p99,
                 "fast path changed simulated behavior");
  std::printf("  legacy : %8.3f s wall  (%llu completed, p99 %s)\n",
              e2e_legacy_s,
              static_cast<unsigned long long>(res_legacy.completed),
              to_string(res_legacy.p99).c_str());
  std::printf("  fast   : %8.3f s wall  (%llu completed, p99 %s)  "
              "(%.2fx)\n",
              e2e_fast_s,
              static_cast<unsigned long long>(res_fast.completed),
              to_string(res_fast.p99).c_str(), e2e_legacy_s / e2e_fast_s);

  const auto& pool = wire::FramePool::instance().stats();
  std::printf("\npool: %llu acquires, %llu recycled (%.1f%%), %llu slabs\n",
              static_cast<unsigned long long>(pool.acquired),
              static_cast<unsigned long long>(pool.recycled),
              pool.acquired > 0
                  ? 100.0 * static_cast<double>(pool.recycled) /
                        static_cast<double>(pool.acquired)
                  : 0.0,
              static_cast<unsigned long long>(pool.slabs_allocated));

  std::ofstream out{out_path};
  out << "{\n"
      << "  \"bench\": \"packet_path\",\n"
      << "  \"unit\": \"frames_per_second\",\n"
      << "  \"per_hop_fast\": " << static_cast<std::uint64_t>(hop_fast)
      << ",\n"
      << "  \"per_hop_legacy\": " << static_cast<std::uint64_t>(hop_legacy)
      << ",\n"
      << "  \"multicast8_fast\": " << static_cast<std::uint64_t>(mc_fast)
      << ",\n"
      << "  \"multicast8_legacy\": " << static_cast<std::uint64_t>(mc_legacy)
      << ",\n"
      << "  \"fig7_point_wall_seconds_fast\": " << e2e_fast_s << ",\n"
      << "  \"fig7_point_wall_seconds_legacy\": " << e2e_legacy_s << "\n"
      << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
