// Table 1: qualitative comparison of cloning approaches, backed by
// measured evidence from one mid-load run per scheme. "Dynamic cloning" is
// evidenced by the cloning rate falling with load, "scalability" by the
// cloning point not capping throughput, and "low latency overhead" by the
// added latency of the cloning decision path.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

namespace {

harness::ExperimentResult run_at(harness::ClusterConfig cfg, double load,
                                 double capacity) {
  cfg.offered_rps = capacity * load;
  harness::Experiment experiment{cfg};
  return experiment.run();
}

}  // namespace

int main() {
  std::printf("Table 1: comparison to existing works\n\n");
  std::printf(
      "  %-22s %-12s %-16s %-12s %-16s %-20s\n", "", "Cloning point",
      "Dynamic cloning", "Scalability", "High throughput",
      "Low latency overhead");
  std::printf(
      "  %-22s %-12s %-16s %-12s %-16s %-20s\n", "C-Clone", "Client", "no",
      "yes", "no", "yes");
  std::printf(
      "  %-22s %-12s %-16s %-12s %-16s %-20s\n", "LAEDGE", "Coordinator",
      "yes", "no", "no", "no");
  std::printf(
      "  %-22s %-12s %-16s %-12s %-16s %-20s\n", "NetClone", "Switch",
      "yes", "yes", "yes", "yes");

  std::printf("\nMeasured evidence (Exp(25), 6 servers x 16 workers):\n");
  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig base =
      synthetic_cluster(factory, high_variability());
  const double capacity =
      synthetic_capacity(base, 25.0, high_variability());

  harness::ShapeCheck check;

  // Dynamic cloning: rate adapts with load for NetClone, not C-Clone.
  base.scheme = harness::Scheme::kNetClone;
  const auto nc_low = run_at(base, 0.15, capacity);
  const auto nc_high = run_at(base, 0.85, capacity);
  const double rate_low = static_cast<double>(nc_low.cloned_requests) /
                          static_cast<double>(nc_low.requests_sent);
  const double rate_high = static_cast<double>(nc_high.cloned_requests) /
                           static_cast<double>(nc_high.requests_sent);
  std::printf("  NetClone cloning rate: %.0f%% @0.15 load -> %.0f%% "
              "@0.85 load (dynamic)\n",
              rate_low * 100.0, rate_high * 100.0);
  check.expect(rate_low > 0.8 && rate_high < 0.5,
               "NetClone cloning adapts to load");

  // Throughput: NetClone ~ baseline; C-Clone ~ half; LAEDGE far below.
  base.scheme = harness::Scheme::kBaseline;
  const auto bl = run_at(base, 0.9, capacity);
  base.scheme = harness::Scheme::kCClone;
  const auto cc = run_at(base, 0.9, capacity);
  base.scheme = harness::Scheme::kLaedge;
  const auto le = run_at(base, 0.9, capacity);
  std::printf("  Achieved @0.9 offered: Baseline %.0fK, C-Clone %.0fK, "
              "LAEDGE %.0fK, NetClone %.0fK RPS\n",
              bl.achieved_rps / 1e3, cc.achieved_rps / 1e3,
              le.achieved_rps / 1e3, nc_high.achieved_rps / 1e3);
  check.expect(nc_high.achieved_rps > 0.93 * bl.achieved_rps,
               "NetClone sustains baseline throughput (high throughput)");
  check.expect(cc.achieved_rps < 0.65 * bl.achieved_rps,
               "C-Clone static cloning halves throughput");
  check.expect(le.achieved_rps < 0.2 * bl.achieved_rps,
               "LAEDGE coordinator is the bottleneck (not scalable)");

  // Latency overhead of the cloning decision: NetClone adds only switch
  // pipeline time (hundreds of ns); LAEDGE adds coordinator CPU + queueing.
  base.scheme = harness::Scheme::kBaseline;
  const auto bl_low = run_at(base, 0.15, capacity);
  base.scheme = harness::Scheme::kLaedge;
  const auto le_low = run_at(base, 0.15 * 0.1, capacity);  // below ceiling
  std::printf("  p50 @low load: Baseline %.1f us, NetClone %.1f us "
              "(in-switch decision ~ns), LAEDGE %.1f us (coordinator "
              "adds CPU microseconds)\n",
              bl_low.p50.us(), nc_low.p50.us(), le_low.p50.us());
  check.expect(nc_low.p50.us() < bl_low.p50.us() + 2.0,
               "NetClone cloning decision adds sub-microsecond latency");
  check.expect(le_low.p50.us() > bl_low.p50.us() + 3.0,
               "LAEDGE coordinator adds microseconds per request");
  check.report();
  return 0;
}
