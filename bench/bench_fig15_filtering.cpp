// Figure 15: impact of redundant response filtering. NetClone with the
// filter disabled ships every duplicate response to the client; at low
// loads the client absorbs them, at high loads its receive path saturates
// and the tail ends up worse than the no-cloning baseline.
//
// A single client with a sub-microsecond receive path makes the client-side
// pressure visible, as in the paper's testbed where two clients field the
// full cluster's response stream.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Figure 15: impact of redundant response filtering, "
              "Exp(25)\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig base =
      synthetic_cluster(factory, high_variability());
  base.num_clients = 1;
  base.client_template.rx_cost = SimTime::nanoseconds(600);
  const double capacity =
      synthetic_capacity(base, 25.0, high_variability());
  const auto loads = harness::default_load_points();

  std::vector<harness::SweepPoint> baseline;
  std::vector<harness::SweepPoint> netclone;
  std::vector<harness::SweepPoint> nofilter;
  for (const harness::Scheme scheme :
       {harness::Scheme::kBaseline, harness::Scheme::kNetClone,
        harness::Scheme::kNetCloneNoFilter}) {
    base.scheme = scheme;
    auto points = harness::run_sweep(base, capacity, loads);
    harness::print_series(std::string{"Fig 15 — "} +
                              harness::scheme_name(scheme),
                          points);
    if (scheme == harness::Scheme::kBaseline) {
      baseline = std::move(points);
    } else if (scheme == harness::Scheme::kNetClone) {
      netclone = std::move(points);
    } else {
      nofilter = std::move(points);
    }
  }

  harness::ShapeCheck check;
  // At low load, redundancy barely hurts: no-filter ~ NetClone.
  check.expect(nofilter[0].result.p99.us() <
                   1.25 * netclone[0].result.p99.us(),
               "low load: unfiltered redundancy is mostly harmless");
  // As load grows the no-filter variant degrades vs filtered NetClone.
  check.expect(nofilter[7].result.p99 > netclone[7].result.p99,
               "high load: filtering beats no-filtering");
  // And eventually performs worse than the no-cloning baseline.
  bool worse_than_baseline = false;
  for (std::size_t i = 5; i < loads.size(); ++i) {
    worse_than_baseline = worse_than_baseline ||
                          nofilter[i].result.p99 > baseline[i].result.p99;
  }
  check.expect(worse_than_baseline,
               "high load: no-filter NetClone falls below the baseline");
  check.report();
  return 0;
}
