// Figure 9: impact of the number of worker servers (2, 4, 6), Exp(25),
// Baseline vs NetClone. Throughput scales with servers; NetClone keeps the
// lower tail; with few servers, very high load can invert (herding).
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Figure 9: impact of the number of servers, Exp(25)\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ShapeCheck check;
  double prev_netclone_peak = 0.0;
  for (const std::size_t servers : {2U, 4U, 6U}) {
    harness::ClusterConfig base =
        synthetic_cluster(factory, high_variability(), servers);
    const double capacity =
        synthetic_capacity(base, 25.0, high_variability());
    const auto loads = harness::default_load_points();

    std::vector<harness::SweepPoint> baseline;
    std::vector<harness::SweepPoint> netclone;
    for (const harness::Scheme scheme :
         {harness::Scheme::kBaseline, harness::Scheme::kNetClone}) {
      base.scheme = scheme;
      auto points = harness::run_sweep(base, capacity, loads);
      harness::print_series("Fig 9 — " + std::to_string(servers) +
                                " servers — " +
                                harness::scheme_name(scheme),
                            points);
      (scheme == harness::Scheme::kBaseline ? baseline : netclone) =
          std::move(points);
    }

    // Tail advantage at low-to-mid load for every cluster size.
    bool better = true;
    for (std::size_t i = 0; i < 5; ++i) {
      better = better && netclone[i].result.p99 <= baseline[i].result.p99;
    }
    check.expect(better, std::to_string(servers) +
                             " servers: NetClone p99 <= baseline "
                             "(loads 0.1-0.5)");
    // Throughput scales with the number of servers.
    const double peak = harness::peak_throughput(netclone);
    check.expect(peak > prev_netclone_peak,
                 std::to_string(servers) +
                     " servers: throughput grows with cluster size");
    prev_netclone_peak = peak;
  }
  check.report();
  return 0;
}
