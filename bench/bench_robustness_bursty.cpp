// Robustness deep-dive (in the spirit of §5.6): bursty, Markov-modulated
// arrivals instead of Poisson. Load fluctuation is one of the variability
// sources the paper motivates cloning with — bursts deepen queues
// transiently, and dynamic cloning should keep masking the damage without
// hurting throughput.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Robustness: bursty arrivals (MMPP, 25%% duty cycle), "
              "Exp(25), 6 servers x 16 workers\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig base =
      synthetic_cluster(factory, high_variability());
  base.client_template.arrival = host::ArrivalProcess::kBursty;
  base.client_template.burst_on_fraction = 0.25;
  const double capacity =
      synthetic_capacity(base, 25.0, high_variability());
  const std::vector<double> loads = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};

  std::vector<harness::SweepPoint> baseline;
  std::vector<harness::SweepPoint> netclone;
  for (const harness::Scheme scheme :
       {harness::Scheme::kBaseline, harness::Scheme::kNetClone}) {
    base.scheme = scheme;
    auto points = harness::run_sweep(base, capacity, loads);
    harness::print_series(std::string{"bursty — "} +
                              harness::scheme_name(scheme),
                          points);
    (scheme == harness::Scheme::kBaseline ? baseline : netclone) =
        std::move(points);
  }

  harness::ShapeCheck check;
  // With a 25% duty cycle the instantaneous rate is 4x the nominal load,
  // so nominal loads < 0.25 keep even the bursts inside capacity — there
  // NetClone's advantage must survive intact.
  bool better_within_capacity = true;
  for (std::size_t i = 0; i < 2; ++i) {  // loads 0.1, 0.2
    better_within_capacity =
        better_within_capacity && netclone[i].result.p99.us() <=
                                      1.05 * baseline[i].result.p99.us();
  }
  check.expect(better_within_capacity,
               "NetClone tail advantage intact while bursts stay within "
               "capacity (nominal load < duty cycle)");
  check.expect(harness::peak_throughput(netclone) >
                   0.93 * harness::peak_throughput(baseline),
               "no throughput cost under bursts");
  // Beyond the duty cycle, ON windows transiently overload the rack; the
  // tracked state lags and cloning gains thin out or invert — the same
  // staleness effect the paper observes at very high steady load (§5.3).
  std::printf("\ntransient-overload region (nominal >= 0.25): baseline "
              "p99 @0.4 = %.1f us, NetClone p99 @0.4 = %.1f us — "
              "state-signal lag under bursts, cf. paper §5.3 herding\n",
              baseline[3].result.p99.us(), netclone[3].result.p99.us());
  check.report();
  return 0;
}
