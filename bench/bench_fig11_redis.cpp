// Figure 11: Redis GET/SCAN mixes.
#include "bench_kv_common.hpp"

int main() {
  return netclone::bench::run_kv_figure("Figure 11",
                                        netclone::kv::redis_profile());
}
