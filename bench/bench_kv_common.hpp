// Shared driver for the Redis (Fig. 11) and Memcached (Fig. 12) benches:
// 1M objects, 16 B keys / 64 B values, Zipf-0.99 reads, GET/SCAN mixes of
// 99%/1% and 90%/10%, 8 worker threads per server.
#pragma once

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "kv/kv_workload.hpp"

namespace netclone::bench {

inline int run_kv_figure(const char* figure,
                         const kv::KvCostProfile& profile) {
  std::printf("%s: %s, 1M objects, Zipf-0.99, 6 servers x 8 workers\n",
              figure, profile.name.c_str());

  // One read-replicated store shared by all simulated servers.
  auto store = std::make_shared<kv::KvStore>(1000000);
  kv::populate(*store, 1000000);

  harness::ShapeCheck check;
  for (const double get_fraction : {0.99, 0.90}) {
    kv::KvMix mix;
    mix.get_fraction = get_fraction;
    auto factory = std::make_shared<kv::KvRequestFactory>(mix, profile);

    harness::ClusterConfig base;
    base.server_workers.assign(6, 8);
    base.factory = factory;
    base.service = std::make_shared<kv::KvService>(store, profile,
                                                   high_variability());
    base.warmup = harness::scaled(SimTime::milliseconds(4));
    base.measure = harness::scaled(SimTime::milliseconds(20));
    base.drain = harness::scaled(SimTime::milliseconds(15));
    const double capacity = harness::cluster_capacity_rps(
        base.server_workers,
        factory->mean_intrinsic_us() * high_variability().mean_inflation());

    const auto loads = harness::default_load_points();
    std::vector<harness::SweepPoint> baseline;
    std::vector<harness::SweepPoint> cclone;
    std::vector<harness::SweepPoint> netclone;
    for (const harness::Scheme scheme :
         {harness::Scheme::kBaseline, harness::Scheme::kCClone,
          harness::Scheme::kNetClone}) {
      base.scheme = scheme;
      auto points = harness::run_sweep(base, capacity, loads);
      harness::print_series(std::string{figure} + " — " + factory->label() +
                                " — " + harness::scheme_name(scheme),
                            points);
      if (scheme == harness::Scheme::kBaseline) {
        baseline = std::move(points);
      } else if (scheme == harness::Scheme::kCClone) {
        cclone = std::move(points);
      } else {
        netclone = std::move(points);
      }
    }

    const double best =
        harness::best_p99_improvement(baseline, netclone);
    if (get_fraction > 0.95) {
      // 99%-GET: the p99 sits on the GET/SCAN knife edge — cloning that
      // masks queueing-behind-SCAN yields an order-of-magnitude gain at
      // some load (paper: up to 22.6x Redis / 22.0x Memcached).
      check.expect(best > 5.0,
                   std::string{figure} +
                       " 99/1: order-of-magnitude best-case p99 gain "
                       "(measured " +
                       std::to_string(best) + "x)");
    } else {
      // 90%-GET: p99 lives inside SCAN territory for everyone; gains are
      // modest (paper: 1.77x Redis / 1.24x Memcached).
      check.expect(best > 1.0 && best < 8.0,
                   std::string{figure} +
                       " 90/10: modest p99 gain (measured " +
                       std::to_string(best) + "x)");
    }
    // C-Clone: tail competitive with NetClone, throughput halved.
    const double tput_ratio = harness::peak_throughput(cclone) /
                              harness::peak_throughput(netclone);
    check.expect(tput_ratio > 0.35 && tput_ratio < 0.7,
                 std::string{figure} +
                     ": C-Clone peak throughput ~ half of NetClone "
                     "(measured ratio " +
                     std::to_string(tput_ratio) + ")");
  }
  check.report();
  return 0;
}

}  // namespace netclone::bench
