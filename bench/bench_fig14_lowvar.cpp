// Figure 14: low service-time variability (p = 0.001). NetClone still
// improves the tail, but by less than at p = 0.01 — the gain of cloning
// comes from masking variability.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Figure 14: low variability (p=0.001), 6 servers x 16 "
              "workers\n");

  struct Workload {
    const char* name;
    std::shared_ptr<host::RequestFactory> factory;
    double mean_us;
  };
  const std::vector<Workload> workloads = {
      {"14a Exp(25)", std::make_shared<host::ExponentialWorkload>(25.0),
       25.0},
      {"14b Bimodal(90-25,10-250)",
       std::make_shared<host::BimodalWorkload>(0.9, 25.0, 250.0), 47.5},
  };

  harness::ShapeCheck check;
  for (const Workload& w : workloads) {
    std::vector<harness::SweepPoint> base_low;
    std::vector<harness::SweepPoint> net_low;
    std::vector<harness::SweepPoint> base_high;
    std::vector<harness::SweepPoint> net_high;
    for (const host::JitterModel jitter :
         {low_variability(), high_variability()}) {
      harness::ClusterConfig base = synthetic_cluster(w.factory, jitter);
      const double capacity = synthetic_capacity(base, w.mean_us, jitter);
      const auto loads = harness::default_load_points();
      for (const harness::Scheme scheme :
           {harness::Scheme::kBaseline, harness::Scheme::kNetClone}) {
        base.scheme = scheme;
        auto points = harness::run_sweep(base, capacity, loads);
        const bool low = jitter.probability < 0.005;
        if (low) {
          harness::print_series(std::string{w.name} + " p=0.001 — " +
                                    harness::scheme_name(scheme),
                                points);
        }
        if (scheme == harness::Scheme::kBaseline) {
          (low ? base_low : base_high) = std::move(points);
        } else {
          (low ? net_low : net_high) = std::move(points);
        }
      }
    }

    // NetClone still helps at p=0.001 (low loads; 5% tolerance covers
    // histogram quantile resolution).
    bool better = true;
    for (std::size_t i = 0; i < 4; ++i) {
      better = better && net_low[i].result.p99.us() <=
                             1.05 * base_low[i].result.p99.us();
    }
    check.expect(better, std::string{w.name} +
                             ": NetClone still <= baseline at p=0.001");
    // ...but the improvement shrinks relative to p=0.01.
    const double gain_low =
        harness::best_p99_improvement(base_low, net_low);
    const double gain_high =
        harness::best_p99_improvement(base_high, net_high);
    check.expect(gain_low <= gain_high + 0.05,
                 std::string{w.name} + ": improvement at p=0.001 (" +
                     std::to_string(gain_low) +
                     "x) below p=0.01 (" + std::to_string(gain_high) +
                     "x)");
  }
  check.report();
  return 0;
}
