// §4.1 implementation report: match-action stages, SRAM footprint, and the
// back-of-the-envelope filter-table throughput bound, computed from the
// resources the NetClone program actually registers.
#include <cstdio>

#include "bench_common.hpp"
#include "pisa/audit.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Section 4.1: switch resource usage\n\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig cfg =
      synthetic_cluster(factory, high_variability());
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.offered_rps = 1000.0;  // resources are static; traffic is irrelevant
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(1);
  cfg.drain = SimTime::milliseconds(1);
  harness::Experiment experiment{cfg};
  (void)experiment.run();

  const pisa::AuditReport report = pisa::audit(experiment.tor().pipeline());
  std::printf("%s\n", report.to_string().c_str());

  // Back-of-the-envelope (§4.1): with mean request latency of 50 us each
  // filter slot turns over 20 KRPS; 2^18 slots -> ~5.24 BRPS.
  const core::NetCloneConfig& nc = experiment.netclone_program()->config();
  const double slots = static_cast<double>(nc.num_filter_tables) *
                       static_cast<double>(nc.filter_slots);
  const double per_slot_krps = 1e6 / 50.0 / 1e3;  // 20 KRPS per slot
  const double total_brps = slots * per_slot_krps * 1e3 / 1e9;
  std::printf("filter tables: %zu x 2^17 slots; at 50 us mean latency each "
              "slot sustains %.0f KRPS -> %.2f BRPS aggregate bound\n",
              nc.num_filter_tables, per_slot_krps, total_brps);

  harness::ShapeCheck check;
  check.expect(report.stages_used == 7,
               "NetClone consumes 7 match-action stages (paper: 7)");
  check.expect(report.sram_fraction > 0.04 && report.sram_fraction < 0.055,
               "SRAM ~4.8% of the ASIC (paper: 4.77%)");
  check.expect(total_brps > 5.0 && total_brps < 5.5,
               "filter-table throughput bound ~5.24 BRPS (paper: 5.24)");
  check.expect(report.stages_used <= report.stages_available,
               "fits the 12-stage ingress pipeline");
  check.report();
  return 0;
}
