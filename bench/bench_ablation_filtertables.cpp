// Ablation: number of filter tables (§3.5 "minimizing hash collisions").
// With deliberately tiny tables, the redundancy that leaks to clients
// (filter misses caused by collision overwrites) should fall as the number
// of tables grows, since requests with the same hash slot but different
// client-chosen IDX no longer interfere.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Ablation: filter-table count under forced collisions "
              "(256-slot tables), Exp(25), 0.3 load\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig base =
      synthetic_cluster(factory, high_variability());
  base.scheme = harness::Scheme::kNetClone;
  const double capacity =
      synthetic_capacity(base, 25.0, high_variability());
  base.offered_rps = 0.3 * capacity;  // plenty of cloning, lots of traffic

  std::printf("\n  %7s %12s %12s %14s %12s\n", "tables", "cloned",
              "filtered", "leaked(redund)", "leak rate");
  std::vector<double> leak_rates;
  for (const std::size_t tables : {1U, 2U, 4U, 8U}) {
    harness::ClusterConfig cfg = base;
    cfg.netclone.num_filter_tables = tables;
    cfg.netclone.filter_slots = 256;
    harness::Experiment experiment{cfg};
    const auto result = experiment.run();
    const double leak_rate =
        result.cloned_requests == 0
            ? 0.0
            : static_cast<double>(result.redundant_responses) /
                  static_cast<double>(result.cloned_requests);
    leak_rates.push_back(leak_rate);
    std::printf("  %7zu %12llu %12llu %14llu %11.4f%%\n", tables,
                static_cast<unsigned long long>(result.cloned_requests),
                static_cast<unsigned long long>(result.filtered_responses),
                static_cast<unsigned long long>(result.redundant_responses),
                leak_rate * 100.0);
  }

  harness::ShapeCheck check;
  check.expect(leak_rates[0] > leak_rates[3],
               "more tables -> fewer collision leaks (1 vs 8 tables)");
  check.expect(leak_rates[1] <= leak_rates[0],
               "the paper's 2-table design beats a single table");
  check.expect(leak_rates[0] < 0.05,
               "even the worst case leaks <5% of cloned requests "
               "(overwrite keeps slots fresh)");
  check.report();
  return 0;
}
