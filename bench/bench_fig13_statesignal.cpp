// Figure 13: confidence of the empty-queue state signal.
// (a) fraction of responses reporting an empty queue vs load;
// (b) 10 repeated runs at 0.9 load: mean +/- stdev of the 99th percentile
//     for the baseline and NetClone.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Figure 13: confidence of state signals, Exp(25)\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig base =
      synthetic_cluster(factory, high_variability());
  const double capacity =
      synthetic_capacity(base, 25.0, high_variability());

  // (a) empty-queue fraction vs load, measured at the servers.
  std::printf("\n== Fig 13 (a) — portion of empty queues vs load ==\n");
  std::printf("  %6s %18s\n", "load", "empty-queue frac");
  base.scheme = harness::Scheme::kBaseline;
  std::vector<double> fractions;
  for (const double load : harness::default_load_points()) {
    harness::ClusterConfig cfg = base;
    cfg.offered_rps = capacity * load;
    cfg.seed = 7 + static_cast<std::uint64_t>(load * 100);
    harness::Experiment experiment{cfg};
    const auto result = experiment.run();
    fractions.push_back(result.empty_queue_fraction);
    std::printf("  %6.2f %18.3f\n", load, result.empty_queue_fraction);
  }

  harness::ShapeCheck check;
  check.expect(fractions.front() > 0.95,
               "(a) queues almost always empty at 0.1 load");
  check.expect(fractions.back() < fractions.front(),
               "(a) empty-queue fraction decreases with load");
  check.expect(fractions.back() > 0.02,
               "(a) queues still drain occasionally at 0.9 load "
               "(cloning persists at high load)");
  check.expect(fractions[5] < 1.0,
               "(a) mid loads already see occasional non-empty queues");

  // (b) ten runs at 0.9 load.
  std::printf("\n== Fig 13 (b) — ten runs at 0.9 load, p99 (us) ==\n");
  StreamingStats baseline_p99;
  StreamingStats netclone_p99;
  for (int run = 0; run < 10; ++run) {
    for (const harness::Scheme scheme :
         {harness::Scheme::kBaseline, harness::Scheme::kNetClone}) {
      harness::ClusterConfig cfg = base;
      cfg.scheme = scheme;
      cfg.offered_rps = capacity * 0.9;
      cfg.seed = 1000 + static_cast<std::uint64_t>(run);
      harness::Experiment experiment{cfg};
      const double p99 = experiment.run().p99.us();
      (scheme == harness::Scheme::kBaseline ? baseline_p99 : netclone_p99)
          .add(p99);
    }
  }
  std::printf("  %-9s mean %8.1f  stdev %7.1f  min %8.1f  max %8.1f\n",
              "Baseline", baseline_p99.mean(), baseline_p99.stddev(),
              baseline_p99.min(), baseline_p99.max());
  std::printf("  %-9s mean %8.1f  stdev %7.1f  min %8.1f  max %8.1f\n",
              "NetClone", netclone_p99.mean(), netclone_p99.stddev(),
              netclone_p99.min(), netclone_p99.max());

  check.expect(netclone_p99.mean() < 1.6 * baseline_p99.mean(),
               "(b) NetClone mean tail comparable to baseline at 0.9 "
               "(occasional inversions expected, cf. paper)");
  check.expect(netclone_p99.stddev() > 0.0,
               "(b) run-to-run variance exists at very high load");
  check.report();
  return 0;
}
