// PISA pipeline execution throughput: the flat-table / compile-time-check
// fast path vs a faithful replica of the seed-era path, measured three
// ways.
//
//   * per-pass: one Alg.-1-shaped request pass (two match-table lookups,
//     a register RMW, the SEQ counter, a forwarding lookup) in passes per
//     second. The "legacy" side reproduces the pre-change semantics in
//     this binary: std::unordered_map-backed tables and out-of-line
//     per-resource access bookkeeping (last-pass id + stage order checked
//     on every access, in every build). Both sides run the same packet
//     math and must produce bit-identical digests.
//   * lookups: raw match-table probe rate, hit and miss, flat
//     open-addressing table vs unordered_map with access bookkeeping.
//   * end-to-end: one Figure-7-style NetClone experiment wall-clocked on
//     the real simulator, with the deterministic simulated digests
//     (completed count, p99) recorded so CI can exact-match them across
//     machines.
//
// Every timed section is best-of-3. Results land in
// BENCH_pisa_pipeline.json.
//
// Usage: bench_pisa_pipeline [output.json]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_map>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "harness/experiment.hpp"
#include "host/workload.hpp"
#include "pisa/pipeline.hpp"
#include "pisa/resources.hpp"

using namespace netclone;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

template <typename Fn>
double best_of_3(Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    best = std::max(best, fn());
  }
  return best;
}

constexpr std::size_t kServers = 64;
constexpr std::size_t kGroups = 16;
constexpr std::size_t kFwdEntries = 256;

// ---- legacy replica ------------------------------------------------------
// The seed-era execution path: every resource access went through an
// out-of-line bookkeeping call that compared the resource's stage against
// the pass's current stage and its last-pass id against the pass id (the
// single-access rule), in every build; match tables were
// std::unordered_map. Kept in this binary so the speedup is measured
// against the real former semantics, not a guess.

struct LegacyPass {
  std::uint64_t id = 0;
  std::size_t current_stage = 0;
};

struct LegacyAccessState {
  std::size_t stage = 0;
  std::uint64_t last_pass_id = ~std::uint64_t{0};
};

[[gnu::noinline]] void legacy_record_access(LegacyPass& pass,
                                            LegacyAccessState& state) {
  NETCLONE_CHECK(state.stage >= pass.current_stage,
                 "stage order violated in legacy replica");
  NETCLONE_CHECK(state.last_pass_id != pass.id,
                 "double access in legacy replica");
  state.last_pass_id = pass.id;
  pass.current_stage = state.stage;
}

struct LegacyTable {
  LegacyAccessState access;
  std::unordered_map<std::uint64_t, std::uint32_t> map;

  std::optional<std::uint32_t> lookup(LegacyPass& pass, std::uint64_t key) {
    legacy_record_access(pass, access);
    const auto it = map.find(key);
    if (it == map.end()) {
      return std::nullopt;
    }
    return it->second;
  }
};

struct LegacyRegisterArray {
  LegacyAccessState access;
  std::vector<std::uint32_t> cells;

  template <typename Fn>
  auto execute(LegacyPass& pass, std::size_t index, Fn&& fn) {
    legacy_record_access(pass, access);
    NETCLONE_CHECK(index < cells.size(), "legacy register out of range");
    return fn(cells[index]);
  }
};

struct LegacyRegisterScalar {
  LegacyAccessState access;
  std::uint32_t cell = 0;

  template <typename Fn>
  auto execute(LegacyPass& pass, Fn&& fn) {
    legacy_record_access(pass, access);
    return fn(cell);
  }
};

// ---- the measured pass ---------------------------------------------------
// The request-ingress resource sequence of Alg. 1: group membership
// lookup, server address lookup, server-state register RMW, the SEQ
// counter, and the forwarding table. Identical math on both sides; the
// returned digest must match bit for bit.

struct FastProgram {
  pisa::Pipeline pipeline;
  pisa::ExactMatchTable<std::uint32_t> grp{pipeline, "GrpT", 1, kGroups, 2,
                                           16};
  pisa::ExactMatchTable<std::uint32_t> addr{pipeline,     "AddrT", 2,
                                            kFwdEntries, 2,       10};
  pisa::RegisterArray<std::uint32_t> state{pipeline, "StateT", 3, kServers};
  pisa::RegisterScalar<std::uint32_t> seq{pipeline, "SEQ", 4};
  pisa::ExactMatchTable<std::uint32_t> fwd{pipeline,     "FwdT", 6,
                                           kFwdEntries, 4,      8};

  std::uint64_t request_pass(std::uint64_t i) {
    pisa::PipelinePass pass{pipeline};
    const std::uint32_t* g = grp.find(pass, i & (kGroups - 1));
    const std::uint32_t* a = addr.find(pass, *g + (i & 3U));
    const std::uint32_t s = state.execute(
        pass, *a % kServers, [](std::uint32_t& cell) { return ++cell; });
    const std::uint32_t q =
        seq.execute(pass, [](std::uint32_t& c) { return ++c; });
    const std::uint32_t* f = fwd.find(pass, *a);
    return (static_cast<std::uint64_t>(*f) << 32) ^ s ^
           (static_cast<std::uint64_t>(q) << 8);
  }
};

struct LegacyProgram {
  std::uint64_t next_pass_id = 1;
  LegacyTable grp{{1, ~std::uint64_t{0}}, {}};
  LegacyTable addr{{2, ~std::uint64_t{0}}, {}};
  LegacyRegisterArray state{{3, ~std::uint64_t{0}}, {}};
  LegacyRegisterScalar seq{{4, ~std::uint64_t{0}}, 0};
  LegacyTable fwd{{6, ~std::uint64_t{0}}, {}};

  std::uint64_t request_pass(std::uint64_t i) {
    LegacyPass pass{next_pass_id++, 0};
    const auto g = grp.lookup(pass, i & (kGroups - 1));
    const auto a = addr.lookup(pass, *g + (i & 3U));
    const std::uint32_t s = state.execute(
        pass, *a % kServers, [](std::uint32_t& cell) { return ++cell; });
    const std::uint32_t q =
        seq.execute(pass, [](std::uint32_t& c) { return ++c; });
    const auto f = fwd.lookup(pass, *a);
    return (static_cast<std::uint64_t>(*f) << 32) ^ s ^
           (static_cast<std::uint64_t>(q) << 8);
  }
};

// Identical control-plane contents on both sides.
template <typename InsertGrp, typename InsertAddr, typename InsertFwd>
void populate(InsertGrp&& grp, InsertAddr&& addr, InsertFwd&& fwd) {
  for (std::uint64_t g = 0; g < kGroups; ++g) {
    grp(g, static_cast<std::uint32_t>(g * 4));
  }
  for (std::uint64_t a = 0; a < kFwdEntries; ++a) {
    addr(a, static_cast<std::uint32_t>((a * 7 + 1) % kFwdEntries));
    fwd(a, static_cast<std::uint32_t>(a + 1000));
  }
}

struct RateAndDigest {
  double per_second = 0.0;
  std::uint64_t digest = 0;
};

RateAndDigest bench_fast_pass(std::size_t iters) {
  FastProgram prog;
  populate([&](auto k, auto v) { prog.grp.insert(k, v); },
           [&](auto k, auto v) { prog.addr.insert(k, v); },
           [&](auto k, auto v) { prog.fwd.insert(k, v); });
  std::uint64_t digest = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    digest ^= prog.request_pass(i) + i;
  }
  const double elapsed = seconds_since(start);
  return {static_cast<double>(iters) / elapsed, digest};
}

RateAndDigest bench_legacy_pass(std::size_t iters) {
  LegacyProgram prog;
  prog.state.cells.assign(kServers, 0);
  populate([&](auto k, auto v) { prog.grp.map.emplace(k, v); },
           [&](auto k, auto v) { prog.addr.map.emplace(k, v); },
           [&](auto k, auto v) { prog.fwd.map.emplace(k, v); });
  std::uint64_t digest = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    digest ^= prog.request_pass(i) + i;
  }
  const double elapsed = seconds_since(start);
  return {static_cast<double>(iters) / elapsed, digest};
}

// ---- raw lookup rate -----------------------------------------------------

double bench_fast_lookup(std::size_t iters, bool hit) {
  pisa::Pipeline pipeline;
  pisa::ExactMatchTable<std::uint32_t> table{pipeline,     "T", 1,
                                             kFwdEntries, 4,   8};
  for (std::uint64_t k = 0; k < kFwdEntries; ++k) {
    table.insert(k, static_cast<std::uint32_t>(k));
  }
  const std::uint64_t offset = hit ? 0 : kFwdEntries;
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    pisa::PipelinePass pass{pipeline};
    const std::uint32_t* v =
        table.find(pass, (i & (kFwdEntries - 1)) + offset);
    sink += v != nullptr ? *v : 1;
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(sink > 0, "sink");
  return static_cast<double>(iters) / elapsed;
}

double bench_legacy_lookup(std::size_t iters, bool hit) {
  LegacyTable table{{1, ~std::uint64_t{0}}, {}};
  for (std::uint64_t k = 0; k < kFwdEntries; ++k) {
    table.map.emplace(k, static_cast<std::uint32_t>(k));
  }
  const std::uint64_t offset = hit ? 0 : kFwdEntries;
  std::uint64_t next_pass_id = 1;
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    LegacyPass pass{next_pass_id++, 0};
    const auto v = table.lookup(pass, (i & (kFwdEntries - 1)) + offset);
    sink += v ? *v : 1;
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(sink > 0, "sink");
  return static_cast<double>(iters) / elapsed;
}

// ---- end to end ----------------------------------------------------------

harness::ExperimentResult run_fig7_point() {
  harness::ClusterConfig cfg = bench::synthetic_cluster(
      std::make_shared<host::ExponentialWorkload>(25.0),
      bench::high_variability());
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(20);
  cfg.drain = SimTime::milliseconds(10);
  cfg.offered_rps =
      0.8 * bench::synthetic_capacity(cfg, 25.0, bench::high_variability());
  harness::Experiment experiment{cfg};
  return experiment.run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_pisa_pipeline.json";

  constexpr std::size_t kPassIters = 10000000;
  constexpr std::size_t kLookupIters = 40000000;

  std::printf("pisa pipeline bench: checks %s, best of 3\n\n",
              pisa::pipeline_checks_enabled() ? "compiled in"
                                              : "compiled out");

  // Sanity first: the fast path and the legacy replica must compute
  // bit-identical packet digests.
  {
    const RateAndDigest fast = bench_fast_pass(10000);
    const RateAndDigest legacy = bench_legacy_pass(10000);
    NETCLONE_CHECK(fast.digest == legacy.digest,
                   "fast pass digest diverges from the legacy replica");
  }

  const double pass_legacy =
      best_of_3([] { return bench_legacy_pass(kPassIters).per_second; });
  const double pass_fast =
      best_of_3([] { return bench_fast_pass(kPassIters).per_second; });
  std::printf("request pass (2 lookups + RMW + SEQ + fwd):\n");
  std::printf("  legacy : %12.0f passes/s  (%.1f ns/pass)\n", pass_legacy,
              1e9 / pass_legacy);
  std::printf("  fast   : %12.0f passes/s  (%.1f ns/pass)   (%.2fx)\n\n",
              pass_fast, 1e9 / pass_fast, pass_fast / pass_legacy);

  const double hit_legacy = best_of_3(
      [] { return bench_legacy_lookup(kLookupIters, /*hit=*/true); });
  const double hit_fast = best_of_3(
      [] { return bench_fast_lookup(kLookupIters, /*hit=*/true); });
  const double miss_legacy = best_of_3(
      [] { return bench_legacy_lookup(kLookupIters, /*hit=*/false); });
  const double miss_fast = best_of_3(
      [] { return bench_fast_lookup(kLookupIters, /*hit=*/false); });
  std::printf("match-table lookups:\n");
  std::printf("  hit  legacy : %12.0f /s\n", hit_legacy);
  std::printf("  hit  fast   : %12.0f /s   (%.2fx)\n", hit_fast,
              hit_fast / hit_legacy);
  std::printf("  miss legacy : %12.0f /s\n", miss_legacy);
  std::printf("  miss fast   : %12.0f /s   (%.2fx)\n\n", miss_fast,
              miss_fast / miss_legacy);

  std::printf("end-to-end (fig7-style NetClone point, wall clock, "
              "best of 3):\n");
  double e2e_s = 1e30;
  harness::ExperimentResult res{};
  for (int i = 0; i < 3; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const harness::ExperimentResult r = run_fig7_point();
    const double wall = seconds_since(start);
    if (i == 0) {
      res = r;
    } else {
      // The simulation is deterministic: repeat runs must agree exactly.
      NETCLONE_CHECK(r.completed == res.completed && r.p99 == res.p99,
                     "fig7 point is not deterministic");
    }
    e2e_s = std::min(e2e_s, wall);
  }
  std::printf("  wall %.3f s  (%llu completed, p99 %s)\n", e2e_s,
              static_cast<unsigned long long>(res.completed),
              to_string(res.p99).c_str());

  std::ofstream out{out_path};
  out << "{\n"
      << "  \"bench\": \"pisa_pipeline\",\n"
      << "  \"pipeline_checks\": "
      << (pisa::pipeline_checks_enabled() ? 1 : 0) << ",\n"
      << "  \"request_pass_fast\": "
      << static_cast<std::uint64_t>(pass_fast) << ",\n"
      << "  \"request_pass_legacy\": "
      << static_cast<std::uint64_t>(pass_legacy) << ",\n"
      << "  \"lookup_hit_fast\": " << static_cast<std::uint64_t>(hit_fast)
      << ",\n"
      << "  \"lookup_hit_legacy\": "
      << static_cast<std::uint64_t>(hit_legacy) << ",\n"
      << "  \"lookup_miss_fast\": "
      << static_cast<std::uint64_t>(miss_fast) << ",\n"
      << "  \"lookup_miss_legacy\": "
      << static_cast<std::uint64_t>(miss_legacy) << ",\n"
      << "  \"fig7_point_wall_seconds\": " << e2e_s << ",\n"
      << "  \"fig7_completed\": "
      << static_cast<std::uint64_t>(res.completed) << ",\n"
      << "  \"fig7_p99_ns\": " << res.p99.ns() << "\n"
      << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
