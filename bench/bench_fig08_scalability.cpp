// Figure 8: comparison with the existing solutions on achieved throughput.
// Five workers (one machine is reserved for the LÆDGE coordinator), Exp(25),
// sweeping the *offered* load in absolute terms: LÆDGE flat-lines at its
// coordinator ceiling, C-Clone at ~half the cluster, NetClone tracks the
// offered load to the cluster limit.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf(
      "Figure 8: scalability vs C-Clone and LAEDGE, Exp(25), 5 workers\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig base =
      synthetic_cluster(factory, high_variability(), /*num_servers=*/5);
  const double capacity =
      synthetic_capacity(base, 25.0, high_variability());

  // Offered-load points in absolute RPS (fractions of the 5-worker rack).
  const std::vector<double> fractions = {0.05, 0.1, 0.2, 0.3, 0.45,
                                         0.6, 0.75, 0.9};

  double peak_laedge = 0.0;
  double peak_cclone = 0.0;
  double peak_netclone = 0.0;
  for (const harness::Scheme scheme :
       {harness::Scheme::kLaedge, harness::Scheme::kCClone,
        harness::Scheme::kNetClone}) {
    base.scheme = scheme;
    const auto points = harness::run_sweep(base, capacity, fractions);
    std::printf("\n== Fig 8 — %s ==\n", harness::scheme_name(scheme));
    std::printf("  %-10s %12s %12s\n", "scheme", "offered(K)",
                "achieved(K)");
    for (const auto& p : points) {
      std::printf("  %-10s %12.1f %12.1f\n", harness::scheme_name(scheme),
                  p.result.offered_rps / 1e3,
                  p.result.achieved_rps / 1e3);
    }
    const double peak = harness::peak_throughput(points);
    if (scheme == harness::Scheme::kLaedge) {
      peak_laedge = peak;
    } else if (scheme == harness::Scheme::kCClone) {
      peak_cclone = peak;
    } else {
      peak_netclone = peak;
    }
  }

  harness::ShapeCheck check;
  check.expect(peak_laedge < 0.3 * peak_cclone,
               "LAEDGE peak well below C-Clone (coordinator CPU ceiling)");
  check.expect(peak_cclone < 0.65 * peak_netclone,
               "C-Clone peak ~ half of NetClone (static 2x cloning)");
  check.expect(peak_netclone > 0.8 * capacity,
               "NetClone reaches the cluster capacity");
  check.report();
  return 0;
}
