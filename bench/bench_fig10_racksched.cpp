// Figure 10: synergy with RackSched under homogeneous (6 x 15 workers) and
// heterogeneous (3 x 15 + 3 x 8 workers) clusters, for Exp(25) and Bimodal
// workloads. NetClone+RackSched is expected to dominate overall, with the
// biggest edge in the heterogeneous setup.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Figure 10: NetClone x RackSched, homogeneous vs "
              "heterogeneous workers\n");

  struct Setup {
    const char* name;
    std::vector<std::uint32_t> workers;
  };
  const std::vector<Setup> setups = {
      {"homogeneous (6x15)", {15, 15, 15, 15, 15, 15}},
      {"heterogeneous (3x15+3x8)", {15, 15, 15, 8, 8, 8}},
  };
  struct Workload {
    const char* name;
    std::shared_ptr<host::RequestFactory> factory;
    double mean_us;
  };
  const std::vector<Workload> workloads = {
      {"Exp(25)", std::make_shared<host::ExponentialWorkload>(25.0), 25.0},
      {"Bimodal(90-25,10-250)",
       std::make_shared<host::BimodalWorkload>(0.9, 25.0, 250.0), 47.5},
  };

  harness::ShapeCheck check;
  for (const Setup& setup : setups) {
    for (const Workload& w : workloads) {
      harness::ClusterConfig base =
          synthetic_cluster(w.factory, high_variability());
      base.server_workers = setup.workers;
      const double capacity =
          synthetic_capacity(base, w.mean_us, high_variability());
      const auto loads = harness::default_load_points();

      std::vector<harness::SweepPoint> netclone;
      std::vector<harness::SweepPoint> racksched;
      std::vector<harness::SweepPoint> combined;
      for (const harness::Scheme scheme :
           {harness::Scheme::kNetClone, harness::Scheme::kRackSched,
            harness::Scheme::kNetCloneRackSched}) {
        base.scheme = scheme;
        auto points = harness::run_sweep(base, capacity, loads);
        harness::print_series(std::string{"Fig 10 — "} + setup.name +
                                  " — " + w.name + " — " +
                                  harness::scheme_name(scheme),
                              points);
        if (scheme == harness::Scheme::kNetClone) {
          netclone = std::move(points);
        } else if (scheme == harness::Scheme::kRackSched) {
          racksched = std::move(points);
        } else {
          combined = std::move(points);
        }
      }

      // The integration keeps NetClone's low-load tail advantage over
      // plain RackSched...
      bool low_ok = true;
      for (std::size_t i = 0; i < 4; ++i) {
        low_ok = low_ok &&
                 combined[i].result.p99 <= racksched[i].result.p99;
      }
      check.expect(low_ok, std::string{setup.name} + " " + w.name +
                               ": integration <= RackSched at low loads");
      // ...and improves on plain NetClone at the highest load (JSQ
      // absorbs the imbalance cloning cannot).
      check.expect(
          combined.back().result.p99 <=
              netclone.back().result.p99,
          std::string{setup.name} + " " + w.name +
              ": integration <= plain NetClone at 0.9 load");
    }
  }
  check.report();
  return 0;
}
