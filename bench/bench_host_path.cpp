// Host data-path throughput: the zero-copy server path (PayloadRef
// through the FCFS queue, scatter-gather responses) vs the legacy
// copying path, measured three ways.
//
//   * per-request: a saturated dispatcher (one request every
//     dispatch_cost) through a real Server on a real link, in requests
//     per second of wall clock. Both sides run the identical topology;
//     "legacy" disables the packet fast path, so every receive
//     linearizes the frame and every response rebuilds its bytes from
//     scratch. The fast path parses views into the pooled rx frame and
//     emits responses as composed header+shared-tail frames.
//   * fragmented responses: the same rig with 4-fragment responses
//     (§3.7). Legacy serializes the full response once per fragment;
//     the fast path serializes the body once and composes each
//     fragment's fresh header block with the shared tail by refcount.
//   * end-to-end: one Figure-7-style NetClone experiment wall-clocked
//     with the fast path enabled vs disabled. Both runs must produce
//     identical simulated results (the zero-copy path is
//     byte-invisible); the digests land in the JSON and are gated
//     exactly.
//
// Every timed section is best-of-3. Results land in BENCH_host_path.json.
//
// Usage: bench_host_path [output.json]  (default: BENCH_host_path.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "harness/experiment.hpp"
#include "host/addressing.hpp"
#include "host/server.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "phys/topology.hpp"
#include "sim/simulator.hpp"
#include "wire/frame.hpp"
#include "wire/framebuf.hpp"

using namespace netclone;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Counts and drops whatever the server sends back, and injects request
/// frames — a client's wire presence without its bookkeeping.
class DriverNode final : public phys::Node {
 public:
  DriverNode() : phys::Node("driver") {}

  void handle_frame(std::size_t /*port*/,
                    wire::FrameHandle frame) override {
    ++responses;
    bytes += frame.size();
  }

  void inject(wire::FrameHandle frame) { send(0, std::move(frame)); }

  std::uint64_t responses = 0;
  std::uint64_t bytes = 0;
};

/// One NetClone request frame the way a client would build it.
wire::FrameHandle request_frame() {
  wire::NetCloneHeader nc;
  nc.type = wire::MsgType::kRequest;
  nc.grp = 1;
  nc.client_id = 3;
  nc.client_seq = 42;
  wire::RpcRequest req;
  req.op = wire::RpcOp::kSynthetic;
  req.intrinsic_ns = 0;
  return wire::FrameHandle{
      make_netclone_packet(wire::MacAddress::from_node(0x0200U),
                           wire::MacAddress::broadcast(),
                           host::client_ip(3), host::server_ip(ServerId{1}),
                           40003, nc, req.to_frame())
          .serialize()};
}

/// Drives `n` requests through a Server at dispatcher line rate and
/// returns wall-clock requests per second. The injected frame is shared
/// (one buffer, refcount bumps) so the measurement isolates the server's
/// rx-parse / queue / response-build path.
double bench_server(bool fastpath, std::size_t n,
                    std::uint8_t response_fragments) {
  wire::set_packet_fastpath_enabled(fastpath);
  sim::Simulator sim;
  phys::Topology topo{sim};
  host::ServerParams sp;
  sp.sid = ServerId{1};
  sp.workers = 16;
  sp.response_fragments = response_fragments;
  host::Server& server = topo.add_node<host::Server>(
      sim, sp,
      std::make_shared<host::SyntheticService>(host::JitterModel{0.0, 15.0}),
      Rng{42});
  DriverNode& driver = topo.add_node<DriverNode>();
  topo.connect(driver, server);

  const wire::FrameHandle frame = request_frame();
  // Pace injections at the dispatcher's service rate: the server stays
  // saturated, the link's drop-tail queue stays empty.
  const SimTime pace = sp.dispatch_cost;
  for (std::size_t i = 0; i < n; ++i) {
    sim.schedule_at(pace * static_cast<std::int64_t>(i),
                    [&driver, frame]() mutable {
                      driver.inject(std::move(frame));
                    });
  }

  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const double elapsed = seconds_since(start);

  NETCLONE_CHECK(server.stats().completed == n,
                 "host-path bench lost requests");
  NETCLONE_CHECK(driver.responses == n * response_fragments,
                 "host-path bench lost response fragments");
  wire::set_packet_fastpath_enabled(true);
  return static_cast<double>(n) / elapsed;
}

/// One Figure-7-style point: NetClone scheme, Exp(25) workload, 80% load.
harness::ExperimentResult run_fig7_point() {
  harness::ClusterConfig cfg = bench::synthetic_cluster(
      std::make_shared<host::ExponentialWorkload>(25.0),
      bench::high_variability());
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(20);
  cfg.drain = SimTime::milliseconds(10);
  cfg.offered_rps =
      0.8 * bench::synthetic_capacity(cfg, 25.0, bench::high_variability());
  harness::Experiment experiment{cfg};
  return experiment.run();
}

template <typename Fn>
double best_of_3(Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    best = std::max(best, fn());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_host_path.json";

  constexpr std::size_t kRequests = 150000;
  constexpr std::size_t kFragRequests = 80000;
  constexpr std::uint8_t kFragments = 4;

  std::printf("host path bench: best of 3\n\n");

  const double req_legacy =
      best_of_3([] { return bench_server(false, kRequests, 1); });
  const double req_fast =
      best_of_3([] { return bench_server(true, kRequests, 1); });
  std::printf("per-request (rx parse + queue + response build):\n");
  std::printf("  legacy : %12.0f req/s\n", req_legacy);
  std::printf("  fast   : %12.0f req/s   (%.2fx)\n\n", req_fast,
              req_fast / req_legacy);

  const double frag_legacy = best_of_3(
      [] { return bench_server(false, kFragRequests, kFragments); });
  const double frag_fast = best_of_3(
      [] { return bench_server(true, kFragRequests, kFragments); });
  std::printf("fragmented responses (x%u scatter-gather):\n", kFragments);
  std::printf("  legacy : %12.0f req/s\n", frag_legacy);
  std::printf("  fast   : %12.0f req/s   (%.2fx)\n\n", frag_fast,
              frag_fast / frag_legacy);

  std::printf("end-to-end (fig7-style NetClone point, wall clock):\n");
  wire::set_packet_fastpath_enabled(false);
  auto start = std::chrono::steady_clock::now();
  const harness::ExperimentResult res_legacy = run_fig7_point();
  const double e2e_legacy_s = seconds_since(start);
  wire::set_packet_fastpath_enabled(true);
  start = std::chrono::steady_clock::now();
  const harness::ExperimentResult res_fast = run_fig7_point();
  const double e2e_fast_s = seconds_since(start);
  // The zero-copy host path must be invisible in simulated results.
  NETCLONE_CHECK(res_fast.completed == res_legacy.completed &&
                     res_fast.p99 == res_legacy.p99,
                 "zero-copy host path changed simulated behavior");
  std::printf("  legacy : %8.3f s wall\n", e2e_legacy_s);
  std::printf("  fast   : %8.3f s wall  (%llu completed, p99 %s)\n",
              e2e_fast_s,
              static_cast<unsigned long long>(res_fast.completed),
              to_string(res_fast.p99).c_str());

  const auto& pool = wire::FramePool::instance().stats();
  std::printf("\npool: %llu acquires, %llu recycled (%.1f%%), %llu slabs\n",
              static_cast<unsigned long long>(pool.acquired),
              static_cast<unsigned long long>(pool.recycled),
              pool.acquired > 0
                  ? 100.0 * static_cast<double>(pool.recycled) /
                        static_cast<double>(pool.acquired)
                  : 0.0,
              static_cast<unsigned long long>(pool.slabs_allocated));

  std::ofstream out{out_path};
  out << "{\n"
      << "  \"bench\": \"host_path\",\n"
      << "  \"unit\": \"requests_per_second\",\n"
      << "  \"host_request_fast\": " << static_cast<std::uint64_t>(req_fast)
      << ",\n"
      << "  \"host_request_legacy\": "
      << static_cast<std::uint64_t>(req_legacy) << ",\n"
      << "  \"frag_response_fast\": "
      << static_cast<std::uint64_t>(frag_fast) << ",\n"
      << "  \"frag_response_legacy\": "
      << static_cast<std::uint64_t>(frag_legacy) << ",\n"
      << "  \"fig7_point_wall_seconds_fast\": " << e2e_fast_s << ",\n"
      << "  \"fig7_point_wall_seconds_legacy\": " << e2e_legacy_s << ",\n"
      << "  \"fig7_completed\": " << res_fast.completed << ",\n"
      << "  \"fig7_p99_ns\": " << res_fast.p99.ns() << "\n"
      << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
