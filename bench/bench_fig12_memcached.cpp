// Figure 12: Memcached GET/SCAN mixes.
#include "bench_kv_common.hpp"

int main() {
  return netclone::bench::run_kv_figure("Figure 12",
                                        netclone::kv::memcached_profile());
}
