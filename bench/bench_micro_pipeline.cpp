// Microbenchmarks (google-benchmark): per-packet costs of the simulated
// data plane and the substrate primitives. These measure *simulator*
// performance (how fast we can model the switch), complementing the
// figure benches that measure *modeled* performance.
#include <benchmark/benchmark.h>

#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "core/netclone_program.hpp"
#include "host/addressing.hpp"
#include "kv/kv_workload.hpp"
#include "kv/store.hpp"
#include "kv/zipf.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace {

using namespace netclone;
using netclone::testing::make_request;
using netclone::testing::make_response;

void BM_Crc32U32(benchmark::State& state) {
  std::uint32_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32_u32(++x));
  }
}
BENCHMARK(BM_Crc32U32);

void BM_PacketSerialize(benchmark::State& state) {
  const wire::Packet pkt = make_request(0, 1, 0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt.serialize());
  }
}
BENCHMARK(BM_PacketSerialize);

void BM_PacketParse(benchmark::State& state) {
  const wire::Frame frame = make_request(0, 1, 0, 0).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::Packet::parse(frame));
  }
}
BENCHMARK(BM_PacketParse);

struct ProgramFixture {
  pisa::Pipeline pipeline;
  core::NetCloneProgram program;

  ProgramFixture() : program(pipeline, core::NetCloneConfig{}) {
    for (std::uint8_t i = 0; i < 6; ++i) {
      program.add_server(ServerId{i}, host::server_ip(ServerId{i}), 10 + i,
                         static_cast<std::uint16_t>(i + 1));
    }
    program.install_groups(core::build_group_pairs(6));
    program.add_route(host::client_ip(0), 20);
  }
};

void BM_IngressRequestClonePath(benchmark::State& state) {
  ProgramFixture fx;
  for (auto _ : state) {
    wire::Packet pkt = make_request(0, 1, 0, 0);
    pisa::PacketMetadata md;
    pisa::PipelinePass pass{fx.pipeline};
    fx.program.on_ingress(pkt, md, pass);
    benchmark::DoNotOptimize(md);
  }
}
BENCHMARK(BM_IngressRequestClonePath);

void BM_IngressResponseFilterPath(benchmark::State& state) {
  ProgramFixture fx;
  wire::Packet req = make_request(0, 1, 0, 0);
  req.nc().clo = wire::CloneStatus::kClonedOriginal;
  std::uint32_t id = 0;
  for (auto _ : state) {
    req.nc().req_id = ++id;
    wire::Packet resp = make_response(ServerId{0}, 0, req);
    pisa::PacketMetadata md;
    pisa::PipelinePass pass{fx.pipeline};
    fx.program.on_ingress(resp, md, pass);
    benchmark::DoNotOptimize(md);
  }
}
BENCHMARK(BM_IngressResponseFilterPath);

void BM_SimulatorEventChurn(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 0;
  for (auto _ : state) {
    sim.schedule_at(SimTime::nanoseconds(++t), [] {});
    sim.step();
  }
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram hist;
  std::int64_t v = 0;
  for (auto _ : state) {
    hist.record(SimTime::nanoseconds((v += 997) % 10000000));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_KvGet(benchmark::State& state) {
  kv::KvStore store{100000};
  kv::populate(store, 100000);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(kv::key_for_index(++i % 100000)));
  }
}
BENCHMARK(BM_KvGet);

void BM_KvScan100(benchmark::State& state) {
  kv::KvStore store{100000};
  kv::populate(store, 100000);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.scan_digest(kv::key_for_index(++i % 100000), 100));
  }
}
BENCHMARK(BM_KvScan100);

void BM_ZipfSample(benchmark::State& state) {
  kv::ZipfGenerator zipf{1000000, 0.99};
  Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
