// §3.6 "Server failures": the paper describes (without plotting) that the
// control plane removes a failed worker from the group/address tables and
// performance degrades only by the lost capacity. This bench produces the
// timeline: unlike the switch failure of Fig. 16 (total outage), removing
// one of six workers mid-run barely dents throughput at mid load, and
// cloning continues over the survivors.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Section 3.6: server failure, Exp(25), 6 -> 5 workers at "
              "t=12ms, 0.5 load\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig cfg =
      synthetic_cluster(factory, high_variability());
  cfg.scheme = harness::Scheme::kNetClone;
  const double capacity =
      synthetic_capacity(cfg, 25.0, high_variability());
  cfg.offered_rps = 0.5 * capacity;
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(24);

  harness::Experiment experiment{cfg};
  experiment.scheduler().schedule_at(
      SimTime::milliseconds(12),
      [&experiment] { experiment.remove_server(ServerId{2}); });
  const auto bins = experiment.run_timeline(
      SimTime::milliseconds(24), SimTime::milliseconds(2), std::nullopt,
      std::nullopt);

  std::printf("\n  t(ms)  completed KRPS\n");
  for (std::size_t i = 0; i < bins.size(); ++i) {
    std::printf("  %5zu %14.1f\n", (i + 1) * 2,
                static_cast<double>(bins[i]) / 2e-3 / 1e3);
  }

  const double before =
      static_cast<double>(bins[3] + bins[4]) / 2.0;  // 8-12 ms
  const double dip = static_cast<double>(
      *std::min_element(bins.begin() + 6, bins.end()));
  const double after =
      static_cast<double>(bins[10] + bins[11]) / 2.0;  // 22-24 ms

  const auto& ps = experiment.netclone_program()->stats();
  std::printf("\nafter removal: cloning continues over 5 workers "
              "(cloned %llu, filtered %llu), stale-group drops %llu\n",
              static_cast<unsigned long long>(ps.cloned_requests),
              static_cast<unsigned long long>(ps.filtered_responses),
              static_cast<unsigned long long>(ps.missing_route_drops));

  harness::ShapeCheck check;
  check.expect(after > 0.95 * before,
               "offered load fits the surviving 5 workers: throughput "
               "recovers fully");
  check.expect(dip > 0.5 * before,
               "no Fig.16-style outage: the dip is transient "
               "reconfiguration loss only");
  check.expect(ps.missing_route_drops < 200,
               "stale-group-id drops are bounded to in-flight requests");
  check.expect(ps.cloned_requests > 0, "cloning active throughout");
  check.report();
  return 0;
}
