// Shared configuration builders for the figure-reproduction benches.
//
// Every bench binary prints (a) the series the paper's figure plots and
// (b) a SHAPE-CHECK block comparing the qualitative relationships the paper
// reports. Durations scale with NETCLONE_BENCH_SCALE (default 1.0).
#pragma once

#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::bench {

/// The paper's high-variability jitter model (§5.1.2), plus an 8%
/// per-execution microvariation representing the small ever-present
/// variance sources of §2.1 (interrupts, scheduling, caches).
inline host::JitterModel high_variability() { return {0.01, 15.0, 0.08}; }
/// The low-variability variant used by Fig. 14.
inline host::JitterModel low_variability() { return {0.001, 15.0, 0.08}; }

/// Default synthetic cluster: 2 clients, 6 workers x 16 threads.
inline harness::ClusterConfig synthetic_cluster(
    std::shared_ptr<host::RequestFactory> factory, host::JitterModel jitter,
    std::size_t num_servers = 6, std::uint32_t workers = 16) {
  harness::ClusterConfig cfg;
  cfg.server_workers.assign(num_servers, workers);
  cfg.factory = std::move(factory);
  cfg.service = std::make_shared<host::SyntheticService>(jitter);
  cfg.warmup = harness::scaled(SimTime::milliseconds(5));
  cfg.measure = harness::scaled(SimTime::milliseconds(25));
  cfg.drain = harness::scaled(SimTime::milliseconds(15));
  return cfg;
}

/// Cluster capacity for a synthetic workload with jitter inflation.
inline double synthetic_capacity(const harness::ClusterConfig& cfg,
                                 double mean_us,
                                 host::JitterModel jitter) {
  return harness::cluster_capacity_rps(cfg.server_workers,
                                       mean_us * jitter.mean_inflation());
}

/// Longer measurement for long-RPC workloads so tails keep enough samples.
inline void stretch_for_long_rpcs(harness::ClusterConfig& cfg,
                                  double factor) {
  cfg.warmup = SimTime::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(cfg.warmup.ns()) *
                                factor));
  cfg.measure = SimTime::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(cfg.measure.ns()) *
                                factor));
  cfg.drain = SimTime::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(cfg.drain.ns()) *
                                factor));
}

}  // namespace netclone::bench
