// Figure 16: throughput timeline under a switch failure. The paper stops
// the Tofino at t=5 s and reactivates it at t=7 s; throughput returns once
// the switch is back (their extra ~3 s is Tofino boot time, which the paper
// attributes to the switch platform, not NetClone). Because NetClone keeps
// only soft state, recovery needs no reconciliation: the sequence number
// restarts and server states repopulate from the next responses.
//
// We run a scaled-down rack (lower rate, 25 one-second bins) so the 25 s
// timeline stays cheap to simulate. On top of the throughput shape the
// bench reports, from the cross-layer invariant auditor:
//   * recovery time — seconds from switch recovery until a bin regains
//     90% of the pre-failure throughput;
//   * lost requests — client-table entries still incomplete at the end
//     (retransmit budget exhausted during the outage);
//   * duplicated work — responses that reached a client beyond the first
//     plus duplicates the switch filter absorbed.
// A second, fault-free run produces the exact-digest keys the bench gate
// checks bit-for-bit (fig16_nofault_completed / fig16_nofault_digest);
// the faulted run's counters are reported for information.
//
// Usage: bench_fig16_failure [output.json] (default: BENCH_fig16.json)
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "harness/invariants.hpp"

using namespace netclone;
using namespace netclone::bench;

namespace {

harness::ClusterConfig fig16_cluster() {
  auto factory = std::make_shared<host::ExponentialWorkload>(100.0);
  harness::ClusterConfig cfg =
      synthetic_cluster(factory, high_variability(), /*num_servers=*/4,
                        /*workers=*/4);
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.offered_rps = 0.5 * synthetic_capacity(cfg, 100.0,
                                             high_variability());
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::seconds(25);
  return cfg;
}

struct AuditCounters {
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t digest = 0;
};

AuditCounters collect_counters(const harness::Experiment& experiment) {
  AuditCounters c;
  for (const host::Client* client : experiment.clients()) {
    const host::Client::Audit audit = client->audit();
    c.completed += audit.completed_entries;
    c.lost += audit.incomplete_entries;
    c.duplicated += client->stats().redundant_responses;
  }
  c.duplicated +=
      experiment.netclone_program()->stats().filtered_responses;
  c.digest = harness::chaos_digest(experiment);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fig16.json";

  std::printf("Figure 16: performance under switch failures, Exp(100), "
              "fail @5s, recover @7s\n");

  harness::ClusterConfig cfg = fig16_cluster();
  const double capacity = cfg.offered_rps / 0.5;

  harness::Experiment experiment{cfg};
  const auto bins = experiment.run_timeline(
      SimTime::seconds(25), SimTime::seconds(1), SimTime::seconds(5),
      SimTime::seconds(7));

  std::printf("\n== Fig 16 — completed requests per second ==\n");
  std::printf("  %5s %12s\n", "t(s)", "KRPS");
  for (std::size_t i = 0; i < bins.size(); ++i) {
    std::printf("  %5zu %12.1f\n", i + 1,
                static_cast<double>(bins[i]) / 1e3);
  }

  harness::ShapeCheck check;
  const double before = static_cast<double>(bins[3]);
  const double during = static_cast<double>(bins[5]);  // 5-6 s: down
  const double after = static_cast<double>(bins[9]);   // well past recovery
  check.expect(before > 0.45 * capacity,
               "healthy throughput before the failure");
  check.expect(during < 0.02 * before,
               "throughput collapses while the switch is down");
  check.expect(after > 0.9 * before,
               "throughput recovers to the pre-failure level");
  // Soft state only: cloning resumes after recovery.
  check.expect(experiment.netclone_program()->stats().cloned_requests > 0,
               "cloning active after soft-state wipe (no permanent "
               "misbehavior)");

  // Recovery time: the switch comes back at t=7s (bin index 7); count
  // whole bins until throughput regains 90% of the pre-failure level.
  std::uint64_t recovery_s = 0;
  for (std::size_t i = 7; i < bins.size(); ++i) {
    if (static_cast<double>(bins[i]) >= 0.9 * before) {
      recovery_s = i + 1 - 7;
      break;
    }
  }
  check.expect(recovery_s > 0, "throughput regains 90% after recovery");

  const harness::InvariantReport report =
      harness::audit_invariants(experiment);
  if (!report.ok()) {
    std::printf("%s", report.to_string().c_str());
  }
  check.expect(report.ok(), "invariant auditor clean after the outage");
  const AuditCounters faulted = collect_counters(experiment);

  std::printf("\nrecovery: %llu s to 90%% of pre-failure throughput\n",
              static_cast<unsigned long long>(recovery_s));
  std::printf("auditor: %llu completed, %llu lost, %llu duplicated "
              "(digest %016llx)\n",
              static_cast<unsigned long long>(faulted.completed),
              static_cast<unsigned long long>(faulted.lost),
              static_cast<unsigned long long>(faulted.duplicated),
              static_cast<unsigned long long>(faulted.digest));

  // Fault-free control run: its counters are bit-exact across machines
  // and anchor the bench gate's exact-digest mode.
  harness::Experiment clean{fig16_cluster()};
  const auto clean_bins = clean.run_timeline(
      SimTime::seconds(25), SimTime::seconds(1), std::nullopt,
      std::nullopt);
  const harness::InvariantReport clean_report =
      harness::audit_invariants(clean);
  if (!clean_report.ok()) {
    std::printf("%s", clean_report.to_string().c_str());
  }
  check.expect(clean_report.ok(), "invariant auditor clean without "
                                  "faults");
  const AuditCounters nofault = collect_counters(clean);
  // run_timeline stops dead at t=25s with no drain, so a handful of
  // requests are legitimately still in flight; anything beyond that
  // would be real loss.
  check.expect(nofault.lost * 1000 < nofault.completed,
               "only an in-flight remainder outstanding without faults");
  std::printf("no-fault control: %llu completed, digest %016llx\n",
              static_cast<unsigned long long>(nofault.completed),
              static_cast<unsigned long long>(nofault.digest));
  (void)clean_bins;

  check.report();

  std::ofstream out{out_path};
  out << "{\n"
      << "  \"bench\": \"fig16_failure\",\n"
      << "  \"unit\": \"requests\",\n"
      << "  \"fig16_recovery_seconds\": " << recovery_s << ",\n"
      << "  \"fig16_completed\": " << faulted.completed << ",\n"
      << "  \"fig16_lost_requests\": " << faulted.lost << ",\n"
      << "  \"fig16_duplicated_responses\": " << faulted.duplicated
      << ",\n"
      << "  \"fig16_nofault_completed\": " << nofault.completed << ",\n"
      << "  \"fig16_nofault_digest\": " << nofault.digest << "\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
