// Figure 16: throughput timeline under a switch failure. The paper stops
// the Tofino at t=5 s and reactivates it at t=7 s; throughput returns once
// the switch is back (their extra ~3 s is Tofino boot time, which the paper
// attributes to the switch platform, not NetClone). Because NetClone keeps
// only soft state, recovery needs no reconciliation: the sequence number
// restarts and server states repopulate from the next responses.
//
// We run a scaled-down rack (lower rate, 25 one-second bins) so the 25 s
// timeline stays cheap to simulate.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Figure 16: performance under switch failures, Exp(100), "
              "fail @5s, recover @7s\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(100.0);
  harness::ClusterConfig cfg =
      synthetic_cluster(factory, high_variability(), /*num_servers=*/4,
                        /*workers=*/4);
  cfg.scheme = harness::Scheme::kNetClone;
  const double capacity =
      synthetic_capacity(cfg, 100.0, high_variability());
  cfg.offered_rps = 0.5 * capacity;
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::seconds(25);

  harness::Experiment experiment{cfg};
  const auto bins = experiment.run_timeline(
      SimTime::seconds(25), SimTime::seconds(1), SimTime::seconds(5),
      SimTime::seconds(7));

  std::printf("\n== Fig 16 — completed requests per second ==\n");
  std::printf("  %5s %12s\n", "t(s)", "KRPS");
  for (std::size_t i = 0; i < bins.size(); ++i) {
    std::printf("  %5zu %12.1f\n", i + 1,
                static_cast<double>(bins[i]) / 1e3);
  }

  harness::ShapeCheck check;
  const double before = static_cast<double>(bins[3]);
  const double during = static_cast<double>(bins[5]);  // 5-6 s: down
  const double after = static_cast<double>(bins[9]);   // well past recovery
  check.expect(before > 0.45 * capacity,
               "healthy throughput before the failure");
  check.expect(during < 0.02 * before,
               "throughput collapses while the switch is down");
  check.expect(after > 0.9 * before,
               "throughput recovers to the pre-failure level");
  // Soft state only: cloning resumes after recovery.
  check.expect(experiment.netclone_program()->stats().cloned_requests > 0,
               "cloning active after soft-state wipe (no permanent "
               "misbehavior)");
  check.report();
  return 0;
}
