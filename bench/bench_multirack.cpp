// Fat-tree pod scaling: a 3-server-rack NetClone pod with a replicated
// (NetClone-aware, chain-replicated) aggregation tier, wall-clocked on 1
// event-queue shard vs 4 (one per rack: client rack + 3 server racks).
// The simulated run must be bit-identical in every configuration — the
// unsharded legacy engine runs first as the oracle and the invariant
// auditor (including the replica-convergence check) must pass — and only
// the wall clock may differ.
//
// Pinning and measurement protocol match bench_parallel_engine: the
// process is pinned to the first min(4, hw) logical CPUs before any run,
// every timed section is best-of-3, and hw_threads lands in the JSON so
// the gate can skip the scaling ratio on starved runners.
//
// Results land in BENCH_multirack.json.
//
// Usage: bench_multirack [output.json]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "bench_common.hpp"
#include "common/check.hpp"
#include "harness/faults.hpp"
#include "harness/invariants.hpp"
#include "harness/multirack.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

using namespace netclone;

namespace {

std::size_t pin_process_to_first_cores(std::size_t count) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    return 0;
  }
  if (count > hw) {
    count = hw;
  }
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (std::size_t cpu = 0; cpu < count; ++cpu) {
    CPU_SET(cpu, &mask);
  }
  if (sched_setaffinity(0, sizeof(mask), &mask) != 0) {
    return 0;
  }
  return count;
#else
  (void)count;
  return 0;
#endif
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The measured pod: 3 racks x 3 servers behind 2 chain-replicated aggs,
/// Exp(25) high-variability service at 80% load, 4 clients so the
/// source-hashed ECMP spray exercises both replicas.
harness::MultiRackConfig pod_config(std::size_t num_shards) {
  harness::MultiRackConfig cfg;
  cfg.server_racks = 3;
  cfg.servers_per_rack = 3;
  cfg.num_aggs = 2;
  cfg.agg_mode = harness::AggMode::kReplicated;
  cfg.workers = 16;
  cfg.num_clients = 4;
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(bench::high_variability());
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(20);
  cfg.drain = SimTime::milliseconds(10);
  cfg.seed = 23;
  const double capacity = harness::cluster_capacity_rps(
      std::vector<std::uint32_t>(9, cfg.workers),
      25.0 * bench::high_variability().mean_inflation());
  cfg.offered_rps = 0.8 * capacity;
  cfg.num_shards = num_shards;
  return cfg;
}

struct RunResult {
  double wall_s = 0.0;
  std::uint64_t completed = 0;
  std::int64_t p99_ns = 0;
  std::uint64_t executed = 0;
  std::uint64_t digest = 0;
  std::uint64_t cloned = 0;
};

RunResult run_point(std::size_t num_shards) {
  harness::MultiRackExperiment experiment{pod_config(num_shards)};
  const auto start = std::chrono::steady_clock::now();
  const harness::ExperimentResult result = experiment.run();
  RunResult out;
  out.wall_s = seconds_since(start);

  const harness::InvariantReport report =
      harness::audit_invariants(experiment);
  NETCLONE_CHECK(report.ok(), "invariant violations at " +
                                  std::to_string(num_shards) +
                                  " shards:\n" + report.to_string());
  out.completed = result.completed;
  out.p99_ns = result.p99.ns();
  out.executed = experiment.executed_events();
  out.digest = harness::chaos_digest(experiment);
  out.cloned = result.cloned_requests;
  return out;
}

RunResult best_of_3(std::size_t num_shards) {
  RunResult best = run_point(num_shards);
  for (int i = 0; i < 2; ++i) {
    const RunResult run = run_point(num_shards);
    NETCLONE_CHECK(run.digest == best.digest,
                   "same-config repeat runs diverged");
    if (run.wall_s < best.wall_s) {
      best = run;
    }
  }
  return best;
}

// -- chain fail-over recovery (bench_fig16-style, for the pod) -------------

constexpr double kFailoverBinUs = 500.0;
constexpr std::size_t kFailBin = 20;    // agg_fail at 10 ms
constexpr std::size_t kRejoinBin = 28;  // agg_rejoin at 14 ms

/// The measured pod with the tail replica (agg1) killed mid-run and
/// readmitted 4 ms later. Retransmission is armed so the losses a crash
/// inflicts (sprayed requests, in-flight responses) are absorbed.
harness::MultiRackConfig failover_config(std::size_t num_shards) {
  harness::MultiRackConfig cfg = pod_config(num_shards);
  cfg.client_template.retransmit_timeout = SimTime::microseconds(400.0);
  cfg.client_template.max_retransmits = 6;
  cfg.faults = harness::parse_fault_plan(
      "at=10ms agg_fail agg1\n"
      "at=14ms agg_rejoin agg1\n",
      "bench_multirack");
  return cfg;
}

struct FailoverResult {
  std::vector<std::uint64_t> bins;
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  double recovery_us = -1.0;
};

FailoverResult run_failover(std::size_t num_shards) {
  harness::MultiRackExperiment experiment{failover_config(num_shards)};
  FailoverResult out;
  out.bins = experiment.run_timeline(
      SimTime::milliseconds(32), SimTime::microseconds(kFailoverBinUs));

  const harness::InvariantReport report =
      harness::audit_invariants(experiment);
  NETCLONE_CHECK(report.ok(), "fail-over run violated invariants at " +
                                  std::to_string(num_shards) +
                                  " shards:\n" + report.to_string());
  const harness::ChainController* ctrl = experiment.chain_controller();
  NETCLONE_CHECK(ctrl != nullptr && ctrl->quiescent() &&
                     ctrl->admitted_members().size() == 2,
                 "agg1 never completed its rejoin");

  // Recovery: microseconds from the crash until a bin regains 90% of the
  // pre-failure average (the chain splices around the corpse in-band, so
  // this is orders of magnitude below a switch reboot).
  double pre_fail = 0.0;
  for (std::size_t i = kFailBin - 8; i < kFailBin; ++i) {
    pre_fail += static_cast<double>(out.bins[i]);
  }
  pre_fail /= 8.0;
  for (std::size_t i = kFailBin; i < out.bins.size(); ++i) {
    if (static_cast<double>(out.bins[i]) >= 0.9 * pre_fail) {
      out.recovery_us =
          static_cast<double>(i + 1 - kFailBin) * kFailoverBinUs;
      break;
    }
  }
  NETCLONE_CHECK(out.recovery_us >= 0.0,
                 "throughput never regained 90% after the fail-over");
  out.digest = harness::chaos_digest(experiment);
  out.executed = experiment.executed_events();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_multirack.json";

  const unsigned hw_threads = std::thread::hardware_concurrency();
  const std::size_t pinned = pin_process_to_first_cores(4);
  std::printf("multirack bench: 3 racks x 3 servers, replicated agg tier, "
              "%u hw threads, pinned to %zu cores, best of 3\n\n",
              hw_threads, pinned);

  const RunResult oracle = run_point(/*num_shards=*/0);
  const RunResult shard1 = best_of_3(/*num_shards=*/1);
  const RunResult shard4 = best_of_3(/*num_shards=*/4);
  NETCLONE_CHECK(shard1.digest == oracle.digest &&
                     shard1.executed == oracle.executed,
                 "1-shard run diverged from the unsharded oracle");
  NETCLONE_CHECK(shard4.digest == oracle.digest &&
                     shard4.executed == oracle.executed,
                 "4-shard run diverged from the unsharded oracle");
  NETCLONE_CHECK(shard4.cloned > 0,
                 "replicated aggregation tier cloned nothing");

  // Fail-over recovery: the timeline is simulated, so the digest and the
  // recovery time are machine-independent; the 4-shard run must agree
  // with the unsharded oracle bit for bit even through the crash.
  const FailoverResult failover_oracle = run_failover(/*num_shards=*/0);
  const FailoverResult failover = run_failover(/*num_shards=*/4);
  NETCLONE_CHECK(failover.digest == failover_oracle.digest &&
                     failover.executed == failover_oracle.executed,
                 "sharded fail-over run diverged from the oracle");
  std::printf("\nfail-over (agg1 down at bin %zu, back at bin %zu, "
              "%.0f us bins):\n",
              kFailBin, kRejoinBin, kFailoverBinUs);
  std::printf("  recovered to 90%% of pre-crash throughput in %.0f us\n",
              failover.recovery_us);

  const double scaling = shard1.wall_s / shard4.wall_s;
  std::printf("pod point (%llu completed, p99 %lld ns, %llu events, "
              "%llu cloned):\n",
              static_cast<unsigned long long>(shard4.completed),
              static_cast<long long>(shard4.p99_ns),
              static_cast<unsigned long long>(shard4.executed),
              static_cast<unsigned long long>(shard4.cloned));
  std::printf("  unsharded : %8.3f s wall\n", oracle.wall_s);
  std::printf("  1 shard   : %8.3f s wall\n", shard1.wall_s);
  std::printf("  4 shards  : %8.3f s wall   (%.2fx over 1 shard)\n",
              shard4.wall_s, scaling);
  if (hw_threads < 4) {
    std::printf("  note: only %u hw threads — 4-shard run was (partly) "
                "serialized, scaling not meaningful\n",
                hw_threads);
  }

  std::ofstream out{out_path};
  out << "{\n"
      << "  \"bench\": \"multirack\",\n"
      << "  \"unit\": \"seconds\",\n"
      << "  \"hw_threads\": " << hw_threads << ",\n"
      << "  \"pinned_cores\": " << pinned << ",\n"
      << "  \"multirack_completed\": " << shard4.completed << ",\n"
      << "  \"multirack_p99_ns\": " << shard4.p99_ns << ",\n"
      << "  \"multirack_executed_events\": " << shard4.executed << ",\n"
      << "  \"multirack_digest\": " << shard4.digest << ",\n"
      << "  \"multirack_cloned_requests\": " << shard4.cloned << ",\n"
      << "  \"multirack_failover_digest\": " << failover.digest << ",\n"
      << "  \"multirack_failover_recovery_us\": " << failover.recovery_us
      << ",\n"
      << "  \"multirack_wall_seconds_shard4\": " << shard4.wall_s << ",\n"
      << "  \"multirack_wall_seconds_shard4_legacy\": " << shard1.wall_s
      << ",\n"
      << "  \"multirack_wall_seconds_unsharded\": " << oracle.wall_s
      << ",\n"
      << "  \"multirack_scaling_shard4_over_shard1\": " << scaling << "\n"
      << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
