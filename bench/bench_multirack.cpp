// Multi-rack deployment (§3.7): the same workload served by two server
// racks behind an LPM aggregation layer, with NetClone logic only at the
// client-side ToR. The shapes of the single-rack evaluation must carry
// over: near-baseline throughput with a lower tail at low/mid loads, and
// no NetClone processing anywhere but ToR#1.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/multirack.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Multi-rack: 1 client rack + 2 server racks (3x16 workers "
              "each) behind an LPM aggregation layer, Exp(25)\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::MultiRackConfig cfg;
  cfg.factory = factory;
  cfg.service = std::make_shared<host::SyntheticService>(high_variability());
  cfg.warmup = harness::scaled(SimTime::milliseconds(5));
  cfg.measure = harness::scaled(SimTime::milliseconds(25));

  const double capacity = harness::cluster_capacity_rps(
      std::vector<std::uint32_t>(cfg.server_racks * cfg.servers_per_rack,
                                 cfg.workers),
      25.0 * high_variability().mean_inflation());

  // Single-rack reference with the same 6 servers.
  harness::ClusterConfig single =
      synthetic_cluster(factory, high_variability());
  single.scheme = harness::Scheme::kNetClone;

  std::printf("\n== multi-rack NetClone vs single-rack NetClone ==\n");
  std::printf("  %-12s %6s %10s %9s %9s %12s %10s\n", "topology", "load",
              "KRPS", "p50(us)", "p99(us)", "cloned", "filtered");
  harness::ShapeCheck check;
  for (const double load : {0.2, 0.5, 0.8}) {
    harness::MultiRackConfig mc = cfg;
    mc.offered_rps = load * capacity;
    mc.seed = 100 + static_cast<std::uint64_t>(load * 10);
    harness::MultiRackExperiment multi{mc};
    const auto mr = multi.run();

    harness::ClusterConfig sc = single;
    sc.offered_rps = load * capacity;
    sc.seed = mc.seed;
    harness::Experiment one{sc};
    const auto sr = one.run();

    std::printf("  %-12s %6.2f %10.1f %9.1f %9.1f %12llu %10llu\n",
                "multi-rack", load, mr.achieved_rps / 1e3, mr.p50.us(),
                mr.p99.us(),
                static_cast<unsigned long long>(mr.cloned_requests),
                static_cast<unsigned long long>(mr.filtered_responses));
    std::printf("  %-12s %6.2f %10.1f %9.1f %9.1f %12llu %10llu\n",
                "single-rack", load, sr.achieved_rps / 1e3, sr.p50.us(),
                sr.p99.us(),
                static_cast<unsigned long long>(sr.cloned_requests),
                static_cast<unsigned long long>(sr.filtered_responses));

    check.expect(mr.achieved_rps > 0.95 * sr.achieved_rps,
                 "throughput parity at load " + std::to_string(load));
    // The extra aggregation hop adds a fixed ~2.5 us each way.
    check.expect(mr.p50.us() < sr.p50.us() + 8.0,
                 "only fixed per-hop latency added at load " +
                     std::to_string(load));
    check.expect(mr.cloned_requests > 0 && mr.filtered_responses > 0,
                 "cloning+filtering active across racks at load " +
                     std::to_string(load));
    // Server-side ToRs never ran NetClone logic.
    bool foreign_only = true;
    for (std::size_t r = 0; r < mc.server_racks; ++r) {
      const auto& stats = multi.server_tor_program(r).stats();
      foreign_only = foreign_only && stats.cloned_requests == 0 &&
                     stats.responses == 0 &&
                     stats.foreign_tor_packets > 0;
    }
    check.expect(foreign_only,
                 "server-side ToRs only route (SWITCH_ID scoping) at "
                 "load " +
                     std::to_string(load));
  }
  check.report();
  return 0;
}
