// Ablation: C-Clone with client-side cancellation of the slower duplicate.
// The paper (§2.2, citing LÆDGE) states that "canceling slower requests
// does not bring meaningful benefits" — this bench measures that claim:
// cancels only help when duplicates are still queued (mid/high load), and
// even then they cannot reclaim the work of duplicates already executing.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Ablation: C-Clone +/- cancellation, Exp(25), 6 servers x "
              "16 workers\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig base =
      synthetic_cluster(factory, high_variability());
  base.scheme = harness::Scheme::kCClone;
  const double capacity =
      synthetic_capacity(base, 25.0, high_variability());
  const std::vector<double> loads = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};

  std::vector<harness::SweepPoint> plain;
  std::vector<harness::SweepPoint> with_cancel;
  for (const bool cancel : {false, true}) {
    harness::ClusterConfig cfg = base;
    cfg.client_template.cclone_cancel = cancel;
    auto points = harness::run_sweep(cfg, capacity, loads);
    harness::print_series(cancel ? "C-Clone + cancel" : "C-Clone", points);
    (cancel ? with_cancel : plain) = std::move(points);
  }

  harness::ShapeCheck check;
  // At low load duplicates never queue, so cancellation changes nothing.
  check.expect(std::abs(with_cancel[0].result.p99.us() -
                        plain[0].result.p99.us()) <
                   0.1 * plain[0].result.p99.us(),
               "low load: cancellation is a no-op");
  // Inside the sweet spot (well below the tipping point) duplicates never
  // queue long enough to be catchable: improvements are negligible — the
  // paper's cited finding that cancels bring no meaningful benefit where
  // C-Clone works at all.
  bool negligible_in_sweet_spot = true;
  for (std::size_t i = 0; i < 4; ++i) {  // loads 0.1-0.4
    negligible_in_sweet_spot =
        negligible_in_sweet_spot &&
        with_cancel[i].result.p99.us() >
            0.9 * plain[i].result.p99.us();
  }
  check.expect(negligible_in_sweet_spot,
               "within C-Clone's working range cancellation changes "
               "nothing (duplicates rarely queue)");
  // At the tipping point itself cancellation reclaims queued duplicates
  // and postpones the collapse (informational)...
  std::printf("\nat the 0.5 tipping point: p99 %.1f us -> %.1f us with "
              "cancellation (queued duplicates reclaimed)\n",
              plain[4].result.p99.us(), with_cancel[4].result.p99.us());
  // ...but it cannot restore the halved capacity: past the point both
  // variants collapse.
  check.expect(with_cancel[5].result.p99.us() >
                   5.0 * with_cancel[0].result.p99.us(),
               "beyond the tipping point cancellation cannot save "
               "C-Clone's halved capacity");
  check.report();
  return 0;
}
