// Ablation: multi-packet messages (§3.7). Measures what fragmenting
// requests/responses costs and verifies the cloned-request table keeps
// whole-request cloning intact (every fragment of a cloned request is
// cloned, so the masking benefit is preserved).
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Ablation: multi-packet requests/responses (§3.7), Exp(25), "
              "0.3 load\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig base =
      synthetic_cluster(factory, high_variability());
  base.scheme = harness::Scheme::kNetClone;
  const double capacity =
      synthetic_capacity(base, 25.0, high_variability());
  base.offered_rps = 0.3 * capacity;

  struct Variant {
    const char* name;
    std::uint8_t req_frags;
    std::uint8_t resp_frags;
  };
  const std::vector<Variant> variants = {
      {"single-packet (paper default)", 1, 1},
      {"3-fragment requests", 3, 1},
      {"3-frag requests + 2-frag responses", 3, 2},
  };

  std::vector<double> p99s;
  std::vector<double> clone_rates;
  for (const Variant& v : variants) {
    harness::ClusterConfig cfg = base;
    if (v.req_frags > 1 || v.resp_frags > 1) {
      cfg.netclone.id_mode = core::RequestIdMode::kClientTuple;
      cfg.netclone.enable_multipacket = true;
      cfg.netclone.num_filter_tables = 4;
    }
    cfg.client_template.request_fragments = v.req_frags;
    cfg.server_template.response_fragments = v.resp_frags;
    harness::Experiment experiment{cfg};
    const auto result = experiment.run();
    const double clone_rate =
        static_cast<double>(result.cloned_requests) /
        static_cast<double>(std::max<std::uint64_t>(result.requests_sent,
                                                    1));
    p99s.push_back(result.p99.us());
    clone_rates.push_back(clone_rate);
    std::printf("  %-38s p99 %7.1f us  achieved %8.1f KRPS  cloned "
                "%4.1f%%  filtered %llu\n",
                v.name, result.p99.us(), result.achieved_rps / 1e3,
                clone_rate * 100.0,
                static_cast<unsigned long long>(result.filtered_responses));
  }

  harness::ShapeCheck check;
  check.expect(clone_rates[1] > 0.5 && clone_rates[2] > 0.5,
               "cloning stays active with fragmented messages");
  check.expect(p99s[1] < p99s[0] * 1.3 && p99s[2] < p99s[0] * 1.3,
               "fragmentation costs only per-packet overheads, not the "
               "cloning benefit");
  check.report();
  return 0;
}
