// Ablation: server-side clone admission rule (DESIGN.md §5, invariant 4).
// The paper drops a cloned copy when the FCFS queue is non-empty
// (kQueueEmpty); a stricter rule also drops it when no worker is free
// (kWorkerFree). This bench quantifies the difference across loads.
#include <cstdio>

#include "bench_common.hpp"

using namespace netclone;
using namespace netclone::bench;

int main() {
  std::printf("Ablation: clone admission rule at the server, Exp(25)\n");

  auto factory = std::make_shared<host::ExponentialWorkload>(25.0);
  harness::ClusterConfig base =
      synthetic_cluster(factory, high_variability());
  base.scheme = harness::Scheme::kNetClone;
  const double capacity =
      synthetic_capacity(base, 25.0, high_variability());

  struct Rule {
    const char* name;
    host::CloneAdmission admission;
  };
  const std::vector<Rule> rules = {
      {"queue-empty (paper §3.4)", host::CloneAdmission::kQueueEmpty},
      {"worker-free (stricter)", host::CloneAdmission::kWorkerFree},
  };

  std::vector<std::vector<harness::SweepPoint>> results;
  for (const Rule& rule : rules) {
    harness::ClusterConfig cfg = base;
    cfg.server_template.clone_admission = rule.admission;
    auto points =
        harness::run_sweep(cfg, capacity, {0.1, 0.3, 0.5, 0.7, 0.9});
    harness::print_series(std::string{"admission = "} + rule.name, points);
    results.push_back(std::move(points));
  }

  harness::ShapeCheck check;
  // At low load the rules coincide: queue empty iff workers plentiful.
  check.expect(std::abs(results[0][0].result.p99.us() -
                        results[1][0].result.p99.us()) <
                   0.15 * results[0][0].result.p99.us(),
               "rules agree at low load");
  // The stricter rule sheds more clones at high load.
  check.expect(results[1].back().result.dropped_stale_clones >=
                   results[0].back().result.dropped_stale_clones,
               "worker-free drops at least as many stale clones at 0.9");
  check.report();
  return 0;
}
