// Raw event-engine throughput: schedule/fire, self-rescheduling chains, and
// schedule/cancel, in events per second.
//
// The engine is the hottest path in the repository — every latency figure
// rides on it — so its throughput trajectory is tracked from this bench
// forward (BENCH_sim_engine.json). To keep the before/after comparison
// honest across checkouts, the pre-arena engine (std::function actions in a
// priority_queue plus a lazy unordered_set of cancelled ids) is
// reimplemented here verbatim and measured side by side with the live
// sim::Simulator.
//
// Usage: bench_sim_engine [output.json]   (default: BENCH_sim_engine.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace {

using netclone::SimTime;

// ---------------------------------------------------------------------------
// The pre-arena engine, kept for comparison. Mirrors the original
// src/sim/simulator.{hpp,cpp} before the slot-map refactor.
class LegacySimulator {
 public:
  using Action = std::function<void()>;
  using EventId = std::uint64_t;

  [[nodiscard]] SimTime now() const { return now_; }

  EventId schedule_at(SimTime when, Action action) {
    NETCLONE_CHECK(when >= now_, "cannot schedule an event in the past");
    const std::uint64_t seq = next_seq_++;
    queue_.push(Event{when, seq, std::move(action)});
    return seq;
  }

  EventId schedule_after(SimTime delay, Action action) {
    NETCLONE_CHECK(delay >= SimTime::zero(), "negative delay");
    return schedule_at(now_ + delay, std::move(action));
  }

  void cancel(EventId id) { cancelled_.insert(id); }

  void run() {
    while (step()) {
    }
  }

  bool step() {
    Event ev;
    if (!pop_one(ev)) {
      return false;
    }
    now_ = ev.when;
    ev.action();
    return true;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };

  [[nodiscard]] bool pop_one(Event& out) {
    while (!queue_.empty()) {
      Event& top = const_cast<Event&>(queue_.top());
      Event ev{top.when, top.seq, std::move(top.action)};
      queue_.pop();
      if (auto it = cancelled_.find(ev.seq); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      out = std::move(ev);
      return true;
    }
    return false;
  }

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
};

// ---------------------------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The simulation's events capture a node pointer plus a frame or a few
/// scalars — 40-to-60 bytes (see Link::transmit, Client::handle_frame).
/// The bench payload mirrors that: far past std::function's ~16-byte
/// inline buffer, within EventCallback's 64.
struct CountPayload {
  std::uint64_t* counter;
  std::uint64_t pad[4] = {};  // representative capture bulk
  void operator()() const { ++*counter; }
};

/// Schedule `batch` events, run them all, repeat. Keeps a realistic queue
/// depth and measures the plain schedule->fire cycle.
template <typename Engine>
double bench_schedule_fire(std::size_t batch, std::size_t rounds) {
  Engine sim;
  std::uint64_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const SimTime base = sim.now();
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(base + SimTime::nanoseconds(static_cast<int64_t>(i)),
                      CountPayload{&fired});
    }
    sim.run();
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(fired == batch * rounds, "bench lost events");
  return static_cast<double>(fired) / elapsed;
}

/// `chains` events that each reschedule themselves from inside the
/// callback — the pattern of every timer/arrival loop in the simulation.
template <typename Engine>
struct ChainState {
  Engine sim;
  std::uint64_t fired = 0;
  std::size_t chains = 0;
  std::uint64_t total = 0;

  struct Hop {
    ChainState* st;
    std::uint64_t pad[4] = {};  // representative capture bulk
    void operator()() const { st->hop(); }
  };

  void hop() {
    ++fired;
    if (fired + chains <= total) {
      sim.schedule_after(SimTime::nanoseconds(1), Hop{this});
    }
  }
};

template <typename Engine>
double bench_fire_chain(std::size_t chains, std::uint64_t total) {
  ChainState<Engine> state;
  state.chains = chains;
  state.total = total;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < chains; ++c) {
    state.sim.schedule_after(SimTime::nanoseconds(1),
                             typename ChainState<Engine>::Hop{&state});
  }
  state.sim.run();
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(state.fired >= total - chains && state.fired <= total,
                 "bench lost events");
  return static_cast<double>(state.fired) / elapsed;
}

/// Schedule `batch` events and cancel every one (the retransmit-timeout
/// pattern: most timers are cancelled, not fired). Counts one
/// schedule+cancel pair as one op.
template <typename Engine>
double bench_schedule_cancel(std::size_t batch, std::size_t rounds) {
  Engine sim;
  std::uint64_t never = 0;
  using Id = decltype(sim.schedule_at(SimTime::zero(), CountPayload{&never}));
  std::vector<Id> ids(batch);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const SimTime base = sim.now();
    for (std::size_t i = 0; i < batch; ++i) {
      ids[i] = sim.schedule_at(
          base + SimTime::nanoseconds(static_cast<int64_t>(i + 1)),
          CountPayload{&never});
    }
    for (std::size_t i = 0; i < batch; ++i) {
      sim.cancel(ids[i]);
    }
    // Drain whatever bookkeeping the engine does for cancelled events.
    sim.run();
  }
  const double elapsed = seconds_since(start);
  NETCLONE_CHECK(never == 0, "cancelled events must not fire");
  return static_cast<double>(batch * rounds) / elapsed;
}

struct Row {
  const char* name;
  double legacy_eps;
  double arena_eps;
};

/// Best-of-N: the container this runs in is shared, so the max over a few
/// repetitions is the measurement least polluted by co-tenant noise.
template <typename Fn>
double best_of(int reps, Fn fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    best = std::max(best, fn());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : std::string("BENCH_sim_engine.json");

  constexpr std::size_t kBatch = 4096;
  constexpr std::size_t kRounds = 512;
  constexpr std::size_t kChains = 64;
  constexpr std::uint64_t kChainTotal = 2'000'000;
  constexpr int kReps = 3;

  // Warmup (page in, settle the branch predictors).
  (void)bench_schedule_fire<netclone::sim::Simulator>(kBatch, 8);
  (void)bench_schedule_fire<LegacySimulator>(kBatch, 8);

  using Sim = netclone::sim::Simulator;
  Row rows[] = {
      {"schedule_fire",
       best_of(kReps,
               [&] { return bench_schedule_fire<LegacySimulator>(kBatch,
                                                                 kRounds); }),
       best_of(kReps,
               [&] { return bench_schedule_fire<Sim>(kBatch, kRounds); })},
      {"fire_chain",
       best_of(kReps,
               [&] {
                 return bench_fire_chain<LegacySimulator>(kChains,
                                                          kChainTotal);
               }),
       best_of(kReps,
               [&] { return bench_fire_chain<Sim>(kChains, kChainTotal); })},
      {"schedule_cancel",
       best_of(kReps,
               [&] {
                 return bench_schedule_cancel<LegacySimulator>(kBatch,
                                                               kRounds);
               }),
       best_of(kReps,
               [&] { return bench_schedule_cancel<Sim>(kBatch, kRounds); })},
  };

  std::printf("%-16s %15s %15s %9s\n", "workload", "legacy (ev/s)",
              "arena (ev/s)", "speedup");
  for (const Row& row : rows) {
    std::printf("%-16s %15.3e %15.3e %8.2fx\n", row.name, row.legacy_eps,
                row.arena_eps, row.arena_eps / row.legacy_eps);
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"sim_engine\",\n  \"unit\": \"events_per_second\"";
  for (const Row& row : rows) {
    json << ",\n  \"" << row.name
         << "\": " << static_cast<std::uint64_t>(row.arena_eps) << ",\n  \""
         << row.name
         << "_legacy\": " << static_cast<std::uint64_t>(row.legacy_eps);
  }
  json << "\n}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
