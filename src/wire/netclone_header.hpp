// The NetClone header (paper §3.2, Figure 3).
//
// It sits between the UDP header and the application payload. The seven
// fields of the paper (TYPE, REQ_ID, GRP, SID, STATE, CLO, IDX) are all
// present; we additionally carry:
//   * SWITCH_ID  — the multi-rack deployment field of §3.7 (zero until the
//     client-side ToR stamps it; other ToRs then skip NetClone processing);
//   * CLIENT_ID / CLIENT_SEQ — the Lamport-style request identity of §3.7
//     ("Protocol support"), which lets clients match responses to requests
//     and keeps retransmissions from receiving fresh switch request IDs.
//
// STATE carries the server's request-queue length. NetClone proper only
// tests it against zero (empty queue == idle, §3.4); the RackSched
// integration (§3.7) uses the full value as the load signal.
#pragma once

#include <cstdint>

#include "wire/bytes.hpp"

namespace netclone::wire {

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  /// A write request (§5.5): forwarded like a request but never cloned —
  /// write coordination belongs to the replication protocol.
  kWriteRequest = 3,
  /// Client-side cancellation of an outstanding duplicate (§2.2: the
  /// optional C-Clone cancel; the paper cites evidence it buys little —
  /// bench_ablation_cancel measures that claim). Identified by
  /// CLIENT_ID/CLIENT_SEQ; servers drop the matching queued request.
  kCancel = 4,
  /// In-band chain resync marker for the replicated aggregation tier
  /// (NetChain-style fail-over). Injected by the controller at one
  /// replica's ingress, relayed replica-to-replica over the chain links,
  /// and consumed inside the tier — it never reaches a ToR or host.
  /// REQ_ID carries the controller's sync-record id.
  kChainSync = 5,
};

/// CLO field values (§3.2).
enum class CloneStatus : std::uint8_t {
  kNotCloned = 0,       // request was not replicated
  kClonedOriginal = 1,  // the original copy of a replicated request
  kClonedCopy = 2,      // the switch-generated duplicate
};

struct NetCloneHeader {
  static constexpr std::size_t kSize = 21;

  MsgType type = MsgType::kRequest;
  CloneStatus clo = CloneStatus::kNotCloned;
  std::uint16_t grp = 0;        // candidate-server group id
  std::uint32_t req_id = 0;     // switch-assigned sequence number
  std::uint8_t sid = 0;         // server id (response sender / clone target)
  std::uint16_t state = 0;      // piggybacked queue length (0 == idle)
  std::uint8_t idx = 0;         // filter-table index (client-chosen)
  std::uint8_t switch_id = 0;   // client-side ToR id, 0 == unstamped
  std::uint16_t client_id = 0;  // issuing client
  std::uint32_t client_seq = 0; // client-local sequence number
  /// Multi-packet messages (§3.7): fragment ordinal and total count.
  /// Single-packet messages — the paper's default regime — use 0 of 1.
  std::uint8_t frag_idx = 0;
  std::uint8_t frag_count = 1;

  // Inline: the header codecs are the per-hop inner loop of the simulator.
  void serialize(ByteWriter& w) const {
    std::byte* p = w.raw(kSize);
    store_u8(p, 0, static_cast<std::uint8_t>(type));
    store_u8(p, 1, static_cast<std::uint8_t>(clo));
    store_u16(p, 2, grp);
    store_u32(p, 4, req_id);
    store_u8(p, 8, sid);
    store_u16(p, 9, state);
    store_u8(p, 11, idx);
    store_u8(p, 12, switch_id);
    store_u16(p, 13, client_id);
    store_u32(p, 15, client_seq);
    store_u8(p, 19, frag_idx);
    store_u8(p, 20, frag_count);
  }
  [[nodiscard]] static NetCloneHeader parse(ByteReader& r) {
    const std::byte* p = r.raw(kSize);
    const std::uint8_t type = load_u8(p, 0);
    if (type < static_cast<std::uint8_t>(MsgType::kRequest) ||
        type > static_cast<std::uint8_t>(MsgType::kChainSync)) {
      throw CodecError{"bad NetClone TYPE"};
    }
    const std::uint8_t clo = load_u8(p, 1);
    if (clo > 2) {
      throw CodecError{"bad NetClone CLO"};
    }
    NetCloneHeader h;
    h.type = static_cast<MsgType>(type);
    h.clo = static_cast<CloneStatus>(clo);
    h.grp = load_u16(p, 2);
    h.req_id = load_u32(p, 4);
    h.sid = load_u8(p, 8);
    h.state = load_u16(p, 9);
    h.idx = load_u8(p, 11);
    h.switch_id = load_u8(p, 12);
    h.client_id = load_u16(p, 13);
    h.client_seq = load_u32(p, 15);
    h.frag_idx = load_u8(p, 19);
    h.frag_count = load_u8(p, 20);
    if (h.frag_count == 0 || h.frag_idx >= h.frag_count) {
      throw CodecError{"bad NetClone fragment fields"};
    }
    return h;
  }

  [[nodiscard]] bool is_request() const {
    return type == MsgType::kRequest || type == MsgType::kWriteRequest;
  }
  [[nodiscard]] bool is_cancel() const { return type == MsgType::kCancel; }
  [[nodiscard]] bool is_chain_sync() const {
    return type == MsgType::kChainSync;
  }
  [[nodiscard]] bool is_write() const {
    return type == MsgType::kWriteRequest;
  }
  [[nodiscard]] bool is_response() const {
    return type == MsgType::kResponse;
  }
  [[nodiscard]] bool cloned() const {
    return clo != CloneStatus::kNotCloned;
  }
  [[nodiscard]] bool multi_packet() const { return frag_count > 1; }
  [[nodiscard]] bool last_fragment() const {
    return frag_idx + 1 >= frag_count;
  }
};

}  // namespace netclone::wire
