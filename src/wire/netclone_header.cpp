#include "wire/netclone_header.hpp"

// The NetClone header codecs are inline in the header (hot path); this
// translation unit only anchors the include.
