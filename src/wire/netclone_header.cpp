#include "wire/netclone_header.hpp"

namespace netclone::wire {

void NetCloneHeader::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(clo));
  w.u16(grp);
  w.u32(req_id);
  w.u8(sid);
  w.u16(state);
  w.u8(idx);
  w.u8(switch_id);
  w.u16(client_id);
  w.u32(client_seq);
  w.u8(frag_idx);
  w.u8(frag_count);
}

NetCloneHeader NetCloneHeader::parse(ByteReader& r) {
  NetCloneHeader h;
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(MsgType::kRequest) ||
      type > static_cast<std::uint8_t>(MsgType::kCancel)) {
    throw CodecError{"bad NetClone TYPE"};
  }
  h.type = static_cast<MsgType>(type);
  const std::uint8_t clo = r.u8();
  if (clo > 2) {
    throw CodecError{"bad NetClone CLO"};
  }
  h.clo = static_cast<CloneStatus>(clo);
  h.grp = r.u16();
  h.req_id = r.u32();
  h.sid = r.u8();
  h.state = r.u16();
  h.idx = r.u8();
  h.switch_id = r.u8();
  h.client_id = r.u16();
  h.client_seq = r.u32();
  h.frag_idx = r.u8();
  h.frag_count = r.u8();
  if (h.frag_count == 0 || h.frag_idx >= h.frag_count) {
    throw CodecError{"bad NetClone fragment fields"};
  }
  return h;
}

}  // namespace netclone::wire
