// UDP header. NetClone reserves a well-known destination port so the switch
// parser can branch to the NetClone pipeline (§3.2).
#pragma once

#include <cstdint>

#include "wire/bytes.hpp"
#include "wire/ipv4.hpp"

namespace netclone::wire {

/// The reserved L4 port that marks a packet as carrying a NetClone header.
inline constexpr std::uint16_t kNetClonePort = 9393;

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  // Inline: the header codecs are the per-hop inner loop of the simulator.
  void serialize(ByteWriter& w) const {
    std::byte* p = w.raw(kSize);
    store_u16(p, 0, src_port);
    store_u16(p, 2, dst_port);
    store_u16(p, 4, length);
    store_u16(p, 6, checksum);
  }
  [[nodiscard]] static UdpHeader parse(ByteReader& r) {
    const std::byte* p = r.raw(kSize);
    UdpHeader h;
    h.src_port = load_u16(p, 0);
    h.dst_port = load_u16(p, 2);
    h.length = load_u16(p, 4);
    h.checksum = load_u16(p, 6);
    return h;
  }
};

/// Computes the UDP checksum over pseudo-header + UDP header + payload.
/// `udp_segment` must start at the UDP header; its checksum field bytes are
/// treated as zero by the caller writing them as zero before calling.
[[nodiscard]] std::uint16_t udp_checksum(Ipv4Address src, Ipv4Address dst,
                                         std::span<const std::byte>
                                             udp_segment);

}  // namespace netclone::wire
