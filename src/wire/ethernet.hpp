// Ethernet II framing.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "wire/bytes.hpp"

namespace netclone::wire {

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  auto operator<=>(const MacAddress&) const = default;

  /// Deterministic locally-administered address derived from a node id,
  /// e.g. node 7 -> 02:00:00:00:00:07.
  [[nodiscard]] static MacAddress from_node(std::uint32_t node_id);

  [[nodiscard]] static MacAddress broadcast();

  [[nodiscard]] std::string to_string() const;
};

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst{};
  MacAddress src{};
  EtherType ether_type = EtherType::kIpv4;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static EthernetHeader parse(ByteReader& r);
};

}  // namespace netclone::wire
