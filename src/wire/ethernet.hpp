// Ethernet II framing.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "wire/bytes.hpp"

namespace netclone::wire {

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  auto operator<=>(const MacAddress&) const = default;

  /// Deterministic locally-administered address derived from a node id,
  /// e.g. node 7 -> 02:00:00:00:00:07.
  [[nodiscard]] static MacAddress from_node(std::uint32_t node_id);

  [[nodiscard]] static MacAddress broadcast();

  [[nodiscard]] std::string to_string() const;
};

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst{};
  MacAddress src{};
  EtherType ether_type = EtherType::kIpv4;

  // Inline: the header codecs are the per-hop inner loop of the simulator.
  void serialize(ByteWriter& w) const {
    std::byte* p = w.raw(kSize);
    for (std::size_t i = 0; i < 6; ++i) {
      store_u8(p, i, dst.octets[i]);
      store_u8(p, 6 + i, src.octets[i]);
    }
    store_u16(p, 12, static_cast<std::uint16_t>(ether_type));
  }
  [[nodiscard]] static EthernetHeader parse(ByteReader& r) {
    const std::byte* p = r.raw(kSize);
    EthernetHeader h;
    for (std::size_t i = 0; i < 6; ++i) {
      h.dst.octets[i] = load_u8(p, i);
      h.src.octets[i] = load_u8(p, 6 + i);
    }
    h.ether_type = static_cast<EtherType>(load_u16(p, 12));
    return h;
  }
};

}  // namespace netclone::wire
