// Minimal pcap (libpcap classic format) writer.
//
// Lets examples and debugging sessions dump simulated traffic into a file
// that Wireshark/tcpdump can open; the NetClone header then shows up as UDP
// payload on port 9393.
#pragma once

#include <cstdio>
#include <span>
#include <string>

#include "common/types.hpp"

namespace netclone::wire {

class PcapWriter {
 public:
  /// Opens `path` and writes the global header. Throws std::runtime_error
  /// on failure.
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Appends one frame with the given simulated timestamp.
  void write(SimTime timestamp, std::span<const std::byte> frame);

  [[nodiscard]] std::uint64_t frames_written() const { return frames_; }

 private:
  void put_u32(std::uint32_t v);
  void put_u16(std::uint16_t v);

  std::FILE* file_ = nullptr;
  std::uint64_t frames_ = 0;
};

}  // namespace netclone::wire
