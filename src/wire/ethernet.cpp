#include "wire/ethernet.hpp"

#include <cstdio>

namespace netclone::wire {

MacAddress MacAddress::from_node(std::uint32_t node_id) {
  MacAddress mac;
  mac.octets[0] = 0x02;  // locally administered, unicast
  mac.octets[1] = 0x00;
  mac.octets[2] = static_cast<std::uint8_t>(node_id >> 24);
  mac.octets[3] = static_cast<std::uint8_t>(node_id >> 16);
  mac.octets[4] = static_cast<std::uint8_t>(node_id >> 8);
  mac.octets[5] = static_cast<std::uint8_t>(node_id);
  return mac;
}

MacAddress MacAddress::broadcast() {
  MacAddress mac;
  mac.octets.fill(0xFF);
  return mac;
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

}  // namespace netclone::wire
