// Whole-packet composition and parsing.
//
// A Packet is the parsed (struct) form of a frame: Ethernet + IPv4 + UDP +
// optional NetClone header + opaque application payload. Hosts and the
// switch model all work on Packet and serialize back to raw bytes at the
// wire boundary — mirroring the parser/deparser split of a PISA pipeline.
//
// Two serialization paths exist:
//   * serialize() — the legacy oracle: rebuilds the whole frame and
//     recomputes every length and checksum from scratch. Observation
//     boundaries (pcap, tests, parse-error injection) use this.
//   * serialize_pooled() — the fast path: a Packet parsed from a
//     FrameHandle stays "backed" by its source buffer; the deparser diffs
//     the current header fields against the backing bytes and patches only
//     the dirty ones in place, updating the IPv4 and UDP checksums
//     incrementally per RFC 1624. The payload is never re-touched, and
//     replication (multicast, recirculation) shares it by refcount.
// The two are byte-equivalent; tests/test_framebuf.cpp holds the property.
#pragma once

#include <optional>

#include "wire/bytes.hpp"
#include "wire/ethernet.hpp"
#include "wire/framebuf.hpp"
#include "wire/ipv4.hpp"
#include "wire/netclone_header.hpp"
#include "wire/udp.hpp"

namespace netclone::wire {

/// A payload serialized once into its own pooled buffer, shared by
/// refcount across every frame composed from it — the scatter-gather
/// tail of a multi-fragment response. The one's-complement sum of the
/// bytes is precomputed so each fragment's UDP checksum only has to
/// cover its freshly built header block.
struct SharedPayload {
  FrameHandle frame{};
  /// Folded RFC 1071 one's-complement sum of the bytes, as if the
  /// payload started at an even offset. serialize_sg() byte-swaps it
  /// when the payload lands at an odd offset in the UDP segment
  /// (RFC 1071 §2(B): swapping every byte pair swaps the sum).
  std::uint16_t folded_sum = 0;

  [[nodiscard]] static SharedPayload of(std::span<const std::byte> bytes);

  [[nodiscard]] std::size_t size() const { return frame.size(); }
  /// The bytes as a zero-copy PayloadRef view pinning the buffer.
  [[nodiscard]] PayloadRef ref() const {
    return frame ? PayloadRef{frame, frame.bytes()} : PayloadRef{};
  }
};

class Packet {
 public:
  EthernetHeader eth{};
  Ipv4Header ip{};
  UdpHeader udp{};
  std::optional<NetCloneHeader> netclone{};
  PayloadRef payload{};

  /// Parses a full frame into an unbacked packet (the payload is copied).
  /// Throws CodecError on malformed input. The NetClone header is parsed
  /// iff either UDP port equals kNetClonePort.
  [[nodiscard]] static Packet parse(std::span<const std::byte> frame);

  /// Parses a pooled frame into a backed packet: the handle is retained,
  /// the payload is a zero-copy view, and serialize_pooled() can patch the
  /// source bytes instead of rebuilding them. Falls back to the copying
  /// parse when the fast path is disabled. (Named, not overloaded: a Frame
  /// converts implicitly to both span and FrameHandle.)
  [[nodiscard]] static Packet parse_backed(const FrameHandle& frame);

  /// Serializes to wire bytes, recomputing every length and checksum
  /// (IPv4 total_length + header checksum, UDP length + checksum).
  [[nodiscard]] Frame serialize() const;

  /// Serializes into a pooled frame. Backed packets with an untouched
  /// payload take the in-place patch path (copy-on-write when the buffer
  /// is shared); everything else is a full build into a pooled buffer.
  /// The returned handle shares bytes with this packet's backing, so
  /// emitting to N ports is N refcount bumps, not N frames.
  [[nodiscard]] FrameHandle serialize_pooled();

  /// Scatter-gather serialization: builds a fresh header block and
  /// composes it with `tail`'s shared buffer — the payload bytes are
  /// never copied, and emitting N fragments of one response costs N
  /// small header builds plus N refcount bumps on the tail. The packet's
  /// `payload` must hold the same bytes as `tail` (a view from
  /// tail.ref(), typically); the result is byte-identical to
  /// serialize(). Falls back to the legacy rebuild when the fast path
  /// is disabled.
  [[nodiscard]] FrameHandle serialize_sg(const SharedPayload& tail) const;

  [[nodiscard]] bool has_netclone() const { return netclone.has_value(); }

  /// True when this packet retains the buffer it was parsed from.
  [[nodiscard]] bool backed() const { return static_cast<bool>(backing_); }

  /// Mutable access that fails loudly instead of dereferencing empty state.
  [[nodiscard]] NetCloneHeader& nc();
  [[nodiscard]] const NetCloneHeader& nc() const;

  /// Total wire size in bytes once serialized.
  [[nodiscard]] std::size_t wire_size() const;

  /// Header-region length: everything before the payload.
  [[nodiscard]] std::size_t header_size() const {
    return EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize +
           (netclone ? NetCloneHeader::kSize : 0);
  }

 private:
  [[nodiscard]] FrameHandle build_pooled() const;
  /// Diff-and-patch the backing header region; false when the fast path
  /// does not apply (layout changed, foreign checksums, ...).
  [[nodiscard]] bool patch_backing();

  FrameHandle backing_{};
  std::uint16_t backed_header_len_ = 0;
};

/// Receive-path integrity check: verifies the IPv4 header checksum and
/// the UDP checksum (pseudo-header included) directly against the frame
/// bytes, without linearizing split (scatter-gather) frames. Returns
/// false when either checksum fails or the IP/UDP lengths disagree with
/// the frame size — the caller should drop and count the frame. Frames
/// that are not IPv4/UDP-shaped return true: they carry no checksum to
/// verify and the parser rejects them on its own.
[[nodiscard]] bool verify_frame_checksums(const FrameHandle& frame);

/// Convenience builder for a NetClone UDP packet between two endpoints.
[[nodiscard]] Packet make_netclone_packet(MacAddress src_mac,
                                          MacAddress dst_mac, Ipv4Address src,
                                          Ipv4Address dst,
                                          std::uint16_t src_port,
                                          const NetCloneHeader& nc,
                                          Frame payload);

}  // namespace netclone::wire
