// Whole-packet composition and parsing.
//
// A Packet is the parsed (struct) form of a frame: Ethernet + IPv4 + UDP +
// optional NetClone header + opaque application payload. Hosts and the
// switch model all work on Packet and serialize back to raw bytes at the
// wire boundary — mirroring the parser/deparser split of a PISA pipeline.
#pragma once

#include <optional>

#include "wire/bytes.hpp"
#include "wire/ethernet.hpp"
#include "wire/ipv4.hpp"
#include "wire/netclone_header.hpp"
#include "wire/udp.hpp"

namespace netclone::wire {

class Packet {
 public:
  EthernetHeader eth{};
  Ipv4Header ip{};
  UdpHeader udp{};
  std::optional<NetCloneHeader> netclone{};
  Frame payload{};

  /// Parses a full frame. Throws CodecError on malformed input. The
  /// NetClone header is parsed iff either UDP port equals kNetClonePort.
  [[nodiscard]] static Packet parse(std::span<const std::byte> frame);

  /// Serializes to wire bytes, recomputing every length and checksum
  /// (IPv4 total_length + header checksum, UDP length + checksum).
  [[nodiscard]] Frame serialize() const;

  [[nodiscard]] bool has_netclone() const { return netclone.has_value(); }

  /// Mutable access that fails loudly instead of dereferencing empty state.
  [[nodiscard]] NetCloneHeader& nc();
  [[nodiscard]] const NetCloneHeader& nc() const;

  /// Total wire size in bytes once serialized.
  [[nodiscard]] std::size_t wire_size() const;
};

/// Convenience builder for a NetClone UDP packet between two endpoints.
[[nodiscard]] Packet make_netclone_packet(MacAddress src_mac,
                                          MacAddress dst_mac, Ipv4Address src,
                                          Ipv4Address dst,
                                          std::uint16_t src_port,
                                          const NetCloneHeader& nc,
                                          Frame payload);

}  // namespace netclone::wire
