#include "wire/ipv4.hpp"

#include <array>
#include <cstdio>

namespace netclone::wire {

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFFU,
                (value >> 16) & 0xFFU, (value >> 8) & 0xFFU, value & 0xFFU);
  return buf;
}

std::uint32_t checksum_accumulate(std::span<const std::byte> data,
                                  std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(
        static_cast<std::uint16_t>(data[i]) << 8 |
        static_cast<std::uint16_t>(data[i + 1]));
  }
  if (i < data.size()) {  // odd trailing byte: pad with zero
    sum += static_cast<std::uint32_t>(static_cast<std::uint16_t>(data[i])
                                      << 8);
  }
  return sum;
}

std::uint16_t internet_checksum(std::span<const std::byte> data,
                                std::uint32_t initial_sum) {
  std::uint32_t sum = checksum_accumulate(data, initial_sum);
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFFU) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFFU);
}

std::uint16_t Ipv4Header::compute_checksum() const {
  std::array<std::byte, kSize> buf;
  ByteWriter w{std::span<std::byte>{buf}};
  serialize_with_checksum(w, 0);
  return internet_checksum(buf);
}

bool Ipv4Header::checksum_valid() const {
  return compute_checksum() == header_checksum;
}

void Ipv4Header::serialize(ByteWriter& w) {
  header_checksum = compute_checksum();
  serialize_with_checksum(w, header_checksum);
}

}  // namespace netclone::wire
