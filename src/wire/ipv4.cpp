#include "wire/ipv4.hpp"

#include <cstdio>

namespace netclone::wire {

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFFU,
                (value >> 16) & 0xFFU, (value >> 8) & 0xFFU, value & 0xFFU);
  return buf;
}

std::uint32_t checksum_accumulate(std::span<const std::byte> data,
                                  std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(
        static_cast<std::uint16_t>(data[i]) << 8 |
        static_cast<std::uint16_t>(data[i + 1]));
  }
  if (i < data.size()) {  // odd trailing byte: pad with zero
    sum += static_cast<std::uint32_t>(static_cast<std::uint16_t>(data[i])
                                      << 8);
  }
  return sum;
}

std::uint16_t internet_checksum(std::span<const std::byte> data,
                                std::uint32_t initial_sum) {
  std::uint32_t sum = checksum_accumulate(data, initial_sum);
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFFU) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFFU);
}

namespace {

void serialize_raw(const Ipv4Header& h, ByteWriter& w,
                   std::uint16_t checksum) {
  w.u8(0x45);  // version 4, IHL 5
  w.u8(h.dscp);
  w.u16(h.total_length);
  w.u16(h.identification);
  w.u16(0);  // flags + fragment offset: never fragmented here
  w.u8(h.ttl);
  w.u8(static_cast<std::uint8_t>(h.protocol));
  w.u16(checksum);
  w.u32(h.src.value);
  w.u32(h.dst.value);
}

}  // namespace

std::uint16_t Ipv4Header::compute_checksum() const {
  Frame buf;
  buf.reserve(kSize);
  ByteWriter w{buf};
  serialize_raw(*this, w, 0);
  return internet_checksum(buf);
}

bool Ipv4Header::checksum_valid() const {
  return compute_checksum() == header_checksum;
}

void Ipv4Header::serialize(ByteWriter& w) {
  header_checksum = compute_checksum();
  serialize_raw(*this, w, header_checksum);
}

Ipv4Header Ipv4Header::parse(ByteReader& r) {
  Ipv4Header h;
  const std::uint8_t version_ihl = r.u8();
  if (version_ihl != 0x45) {
    throw CodecError{"unsupported IPv4 version/IHL"};
  }
  h.dscp = r.u8();
  h.total_length = r.u16();
  h.identification = r.u16();
  r.skip(2);  // flags + fragment offset
  h.ttl = r.u8();
  h.protocol = static_cast<IpProto>(r.u8());
  h.header_checksum = r.u16();
  h.src.value = r.u32();
  h.dst.value = r.u32();
  return h;
}

}  // namespace netclone::wire
