#include "wire/pcap.hpp"

#include <stdexcept>

namespace netclone::wire {

PcapWriter::PcapWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error{"cannot open pcap file: " + path};
  }
  // Global header, little-endian host order (magic tells readers the
  // byte order), linktype 1 = Ethernet.
  put_u32(0xA1B2C3D4U);  // magic (microsecond timestamps)
  put_u16(2);            // version major
  put_u16(4);            // version minor
  put_u32(0);            // thiszone
  put_u32(0);            // sigfigs
  put_u32(65535);        // snaplen
  put_u32(1);            // network: LINKTYPE_ETHERNET
}

PcapWriter::~PcapWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void PcapWriter::put_u32(std::uint32_t v) {
  std::fwrite(&v, sizeof(v), 1, file_);
}

void PcapWriter::put_u16(std::uint16_t v) {
  std::fwrite(&v, sizeof(v), 1, file_);
}

void PcapWriter::write(SimTime timestamp, std::span<const std::byte> frame) {
  const std::int64_t ns = timestamp.ns();
  put_u32(static_cast<std::uint32_t>(ns / 1000000000));
  put_u32(static_cast<std::uint32_t>((ns % 1000000000) / 1000));
  put_u32(static_cast<std::uint32_t>(frame.size()));
  put_u32(static_cast<std::uint32_t>(frame.size()));
  std::fwrite(frame.data(), 1, frame.size(), file_);
  ++frames_;
}

}  // namespace netclone::wire
