#include "wire/frame.hpp"

#include "common/check.hpp"

namespace netclone::wire {

Packet Packet::parse(std::span<const std::byte> frame) {
  ByteReader r{frame};
  Packet pkt;
  pkt.eth = EthernetHeader::parse(r);
  if (pkt.eth.ether_type != EtherType::kIpv4) {
    throw CodecError{"not an IPv4 frame"};
  }
  pkt.ip = Ipv4Header::parse(r);
  if (pkt.ip.protocol != IpProto::kUdp) {
    throw CodecError{"not a UDP packet"};
  }
  pkt.udp = UdpHeader::parse(r);
  if (pkt.udp.dst_port == kNetClonePort ||
      pkt.udp.src_port == kNetClonePort) {
    pkt.netclone = NetCloneHeader::parse(r);
  }
  const auto rest = r.rest();
  pkt.payload.assign(rest.begin(), rest.end());
  return pkt;
}

std::size_t Packet::wire_size() const {
  return EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize +
         (netclone ? NetCloneHeader::kSize : 0) + payload.size();
}

Frame Packet::serialize() const {
  // Build the UDP segment first so its checksum can cover the payload.
  Frame udp_segment;
  udp_segment.reserve(UdpHeader::kSize +
                      (netclone ? NetCloneHeader::kSize : 0) +
                      payload.size());
  {
    ByteWriter w{udp_segment};
    UdpHeader udp_fixed = udp;
    udp_fixed.length = static_cast<std::uint16_t>(
        UdpHeader::kSize + (netclone ? NetCloneHeader::kSize : 0) +
        payload.size());
    udp_fixed.checksum = 0;
    udp_fixed.serialize(w);
    if (netclone) {
      netclone->serialize(w);
    }
    w.bytes(payload);
    const std::uint16_t csum = udp_checksum(ip.src, ip.dst, udp_segment);
    poke_u16(udp_segment, 6, csum);
  }

  Frame out;
  out.reserve(EthernetHeader::kSize + Ipv4Header::kSize + udp_segment.size());
  ByteWriter w{out};
  eth.serialize(w);
  Ipv4Header ip_fixed = ip;
  ip_fixed.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + udp_segment.size());
  ip_fixed.serialize(w);
  w.bytes(udp_segment);
  return out;
}

NetCloneHeader& Packet::nc() {
  NETCLONE_CHECK(netclone.has_value(), "packet has no NetClone header");
  return *netclone;
}

const NetCloneHeader& Packet::nc() const {
  NETCLONE_CHECK(netclone.has_value(), "packet has no NetClone header");
  return *netclone;
}

Packet make_netclone_packet(MacAddress src_mac, MacAddress dst_mac,
                            Ipv4Address src, Ipv4Address dst,
                            std::uint16_t src_port, const NetCloneHeader& nc,
                            Frame payload) {
  Packet pkt;
  pkt.eth.src = src_mac;
  pkt.eth.dst = dst_mac;
  pkt.eth.ether_type = EtherType::kIpv4;
  pkt.ip.src = src;
  pkt.ip.dst = dst;
  pkt.ip.protocol = IpProto::kUdp;
  pkt.udp.src_port = src_port;
  pkt.udp.dst_port = kNetClonePort;
  pkt.netclone = nc;
  pkt.payload = std::move(payload);
  return pkt;
}

}  // namespace netclone::wire
