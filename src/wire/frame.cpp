#include "wire/frame.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/check.hpp"

namespace netclone::wire {

namespace {

// Absolute byte offsets within a serialized frame.
constexpr std::size_t kIpOff = EthernetHeader::kSize;           // 14
constexpr std::size_t kUdpOff = kIpOff + Ipv4Header::kSize;     // 34
constexpr std::size_t kIpCsumOff = kIpOff + 10;                 // 24
constexpr std::size_t kIpSrcOff = kIpOff + 12;                  // 26
constexpr std::size_t kIpProtoOff = kIpOff + 9;                 // 23
constexpr std::size_t kUdpLenOff = kUdpOff + 4;                 // 38
constexpr std::size_t kUdpCsumOff = kUdpOff + 6;                // 40

/// Folds a 32-bit accumulator and returns its one's complement — the final
/// step of every internet-checksum computation here.
std::uint16_t fold_complement(std::uint32_t sum) {
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFFU) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFFU);
}

/// Compares header fields against their wire bytes and accumulates RFC 1624
/// (eqn 3) checksum deltas: per changed byte m -> m', add (~m + m') at the
/// byte's position within its 16-bit word (headers start at even frame
/// offsets, so the position is the offset parity). The unchanged partner
/// byte of a half-dirty word contributes (~x + x) = 0xFFFF == 0 in one's
/// complement, which is why per-byte and per-word accumulation agree.
struct FieldDelta {
  const std::byte* old;
  std::uint32_t sum = 0;
  bool dirty = false;

  void u8(std::size_t off, std::uint8_t v) {
    const std::uint8_t o = load_u8(old, off);
    if (o == v) {
      return;
    }
    dirty = true;
    const std::uint32_t shift = (off & 1U) != 0 ? 0 : 8;
    sum += (~(static_cast<std::uint32_t>(o) << shift) & 0xFFFFU) +
           (static_cast<std::uint32_t>(v) << shift);
  }
  void u16(std::size_t off, std::uint16_t v) {
    if ((off & 1U) == 0) {
      const std::uint16_t o = load_u16(old, off);
      if (o == v) {
        return;
      }
      dirty = true;
      sum += (~static_cast<std::uint32_t>(o) & 0xFFFFU) + v;
    } else {
      u8(off, static_cast<std::uint8_t>(v >> 8));
      u8(off + 1, static_cast<std::uint8_t>(v & 0xFFU));
    }
  }
  void u32(std::size_t off, std::uint32_t v) {
    u16(off, static_cast<std::uint16_t>(v >> 16));
    u16(off + 2, static_cast<std::uint16_t>(v & 0xFFFFU));
  }
};

void write_u16_at(std::byte* base, std::size_t offset, std::uint16_t v) {
  base[offset] = static_cast<std::byte>(v >> 8);
  base[offset + 1] = static_cast<std::byte>(v & 0xFF);
}

/// Parses the header stack (Ethernet/IPv4/UDP/NetClone) off the reader,
/// leaving it positioned at the first payload byte.
Packet parse_headers(ByteReader& r) {
  Packet pkt;
  pkt.eth = EthernetHeader::parse(r);
  if (pkt.eth.ether_type != EtherType::kIpv4) {
    throw CodecError{"not an IPv4 frame"};
  }
  pkt.ip = Ipv4Header::parse(r);
  if (pkt.ip.protocol != IpProto::kUdp) {
    throw CodecError{"not a UDP packet"};
  }
  pkt.udp = UdpHeader::parse(r);
  if (pkt.udp.dst_port == kNetClonePort ||
      pkt.udp.src_port == kNetClonePort) {
    pkt.netclone = NetCloneHeader::parse(r);
  }
  return pkt;
}

}  // namespace

SharedPayload SharedPayload::of(std::span<const std::byte> bytes) {
  SharedPayload tail;
  if (bytes.empty()) {
    return tail;
  }
  tail.frame = FrameHandle::copy_of(bytes);
  // internet_checksum returns the complemented fold; undo the complement
  // to keep the raw folded sum fragments add their header deltas to.
  tail.folded_sum = static_cast<std::uint16_t>(~internet_checksum(bytes));
  return tail;
}

Packet Packet::parse(std::span<const std::byte> frame) {
  ByteReader r{frame};
  Packet pkt = parse_headers(r);
  const auto rest = r.rest();
  pkt.payload = Frame{rest.begin(), rest.end()};
  return pkt;
}

Packet Packet::parse_backed(const FrameHandle& frame) {
  if (!packet_fastpath_enabled()) {
    const Frame linear = frame.to_frame();
    return parse(linear);
  }
  if (frame.split()) {
    // The header region was copy-on-write split off a shared tail; the
    // split boundary is the header/payload boundary by construction.
    const auto head = frame.head_bytes();
    ByteReader r{head};
    Packet pkt = parse_headers(r);
    if (r.remaining() != 0) {
      // Header boundary moved since the split was made — linearize.
      const Frame linear = frame.to_frame();
      return parse(linear);
    }
    pkt.payload = PayloadRef{frame, frame.tail_bytes()};
    pkt.backing_ = frame;
    pkt.backed_header_len_ = static_cast<std::uint16_t>(head.size());
    return pkt;
  }
  const auto bytes = frame.bytes();
  ByteReader r{bytes};
  Packet pkt = parse_headers(r);
  pkt.payload = PayloadRef{frame, r.rest()};
  pkt.backing_ = frame;
  pkt.backed_header_len_ = static_cast<std::uint16_t>(r.offset());
  return pkt;
}

std::size_t Packet::wire_size() const {
  return header_size() + payload.size();
}

Frame Packet::serialize() const {
  // Build the UDP segment first so its checksum can cover the payload.
  Frame udp_segment;
  udp_segment.reserve(UdpHeader::kSize +
                      (netclone ? NetCloneHeader::kSize : 0) +
                      payload.size());
  {
    ByteWriter w{udp_segment};
    UdpHeader udp_fixed = udp;
    udp_fixed.length = static_cast<std::uint16_t>(
        UdpHeader::kSize + (netclone ? NetCloneHeader::kSize : 0) +
        payload.size());
    udp_fixed.checksum = 0;
    udp_fixed.serialize(w);
    if (netclone) {
      netclone->serialize(w);
    }
    w.bytes(payload);
    const std::uint16_t csum = udp_checksum(ip.src, ip.dst, udp_segment);
    poke_u16(udp_segment, 6, csum);
  }

  Frame out;
  out.reserve(EthernetHeader::kSize + Ipv4Header::kSize + udp_segment.size());
  ByteWriter w{out};
  eth.serialize(w);
  Ipv4Header ip_fixed = ip;
  ip_fixed.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + udp_segment.size());
  ip_fixed.serialize(w);
  w.bytes(udp_segment);
  return out;
}

FrameHandle Packet::serialize_pooled() {
  if (!packet_fastpath_enabled()) {
    // Legacy baseline: full vector rebuild, then copy into a handle.
    return FrameHandle{serialize()};
  }
  if (backing_ &&
      payload.views_body_of(backing_) &&
      backed_header_len_ == header_size() &&
      backing_.size() == wire_size()) {
    if (patch_backing()) {
      return backing_;
    }
  }
  return build_pooled();
}

bool Packet::patch_backing() {
  const std::size_t hdr_len = backed_header_len_;
  const std::size_t total = wire_size();
  const std::byte* o = backing_.split() ? backing_.head_bytes().data()
                                        : backing_.bytes().data();

  // A zero UDP checksum means "not computed" (RFC 768); there is no valid
  // base to patch incrementally, so rebuild from scratch.
  const std::uint16_t old_ip_csum = load_u16(o, kIpCsumOff);
  const std::uint16_t old_udp_csum = load_u16(o, kUdpCsumOff);
  if (old_udp_csum == 0) {
    return false;
  }

  // Pass 1 — compare every header field against its wire bytes, without
  // writing anything (a clean packet must forward its backing untouched and
  // unsplit). Three delta accumulators: bytes covered by the IP header
  // checksum only, by both (src/dst feed the UDP pseudo-header too), and by
  // the UDP checksum only. The checksum bytes themselves are skipped — new
  // checksums are derived from the deltas; the version/IHL byte is skipped
  // because parse and serialize both pin it to 0x45.
  bool eth_dirty = false;
  for (std::size_t i = 0; i < 6; ++i) {
    eth_dirty |= load_u8(o, i) != eth.dst.octets[i];
    eth_dirty |= load_u8(o, 6 + i) != eth.src.octets[i];
  }
  eth_dirty |=
      load_u16(o, 12) != static_cast<std::uint16_t>(eth.ether_type);

  FieldDelta ipd{o};
  FieldDelta addrd{o};  // IP src/dst: counted in both checksums
  FieldDelta udpd{o};
  ipd.u8(kIpOff + 1, ip.dscp);
  ipd.u16(kIpOff + 2,
          static_cast<std::uint16_t>(total - EthernetHeader::kSize));
  ipd.u16(kIpOff + 4, ip.identification);
  ipd.u16(kIpOff + 6, 0);  // flags + fragment offset: serializer pins to 0
  ipd.u8(kIpOff + 8, ip.ttl);
  // The IP protocol and UDP length bytes appear in both their own header
  // and the UDP pseudo-header; they never change here (protocol is fixed,
  // sizes are guarded equal), so a mismatch means patching is unsafe.
  if (load_u8(o, kIpProtoOff) != static_cast<std::uint8_t>(ip.protocol)) {
    return false;
  }
  addrd.u32(kIpSrcOff, ip.src.value);
  addrd.u32(kIpSrcOff + 4, ip.dst.value);
  udpd.u16(kUdpOff, udp.src_port);
  udpd.u16(kUdpOff + 2, udp.dst_port);
  if (load_u16(o, kUdpLenOff) !=
      static_cast<std::uint16_t>(total - kUdpOff)) {
    return false;
  }
  if (netclone) {
    constexpr std::size_t kNc = kUdpOff + UdpHeader::kSize;  // 42
    const NetCloneHeader& h = *netclone;
    udpd.u8(kNc + 0, static_cast<std::uint8_t>(h.type));
    udpd.u8(kNc + 1, static_cast<std::uint8_t>(h.clo));
    udpd.u16(kNc + 2, h.grp);
    udpd.u32(kNc + 4, h.req_id);
    udpd.u8(kNc + 8, h.sid);
    udpd.u16(kNc + 9, h.state);
    udpd.u8(kNc + 11, h.idx);
    udpd.u8(kNc + 12, h.switch_id);
    udpd.u16(kNc + 13, h.client_id);
    udpd.u32(kNc + 15, h.client_seq);
    udpd.u8(kNc + 19, h.frag_idx);
    udpd.u8(kNc + 20, h.frag_count);
  }
  if (!(eth_dirty || ipd.dirty || addrd.dirty || udpd.dirty)) {
    return true;  // nothing mutated; the backing bytes are already correct
  }

  // Derive the patched checksums from the accumulated deltas (RFC 1624
  // eqn 3: HC' = ~(~HC + deltas)). A zero delta keeps the wire value even
  // when other fields changed.
  const std::uint32_t ip_delta = ipd.sum + addrd.sum;
  const std::uint32_t udp_delta = udpd.sum + addrd.sum;
  ip.header_checksum =
      ip_delta != 0 ? fold_complement((~old_ip_csum & 0xFFFFU) + ip_delta)
                    : old_ip_csum;
  if (udp_delta != 0) {
    std::uint16_t csum =
        fold_complement((~old_udp_csum & 0xFFFFU) + udp_delta);
    if (csum == 0) {
      csum = 0xFFFF;  // RFC 768: computed zero is transmitted as all-ones
    }
    udp.checksum = csum;
  } else {
    udp.checksum = old_udp_csum;
  }

  // Pass 2 — re-serialize the header region straight into the backing with
  // the patched checksums planted. Copy-on-write: a backed packet
  // legitimately holds two references to its body (backing_ + the payload
  // view), so two refs still means exclusive.
  std::byte* dst = backing_.writable_head(hdr_len, /*tolerated_body_refs=*/2);
  ByteWriter w{std::span<std::byte>{dst, hdr_len}};
  eth.serialize(w);
  Ipv4Header ip_fixed = ip;
  ip_fixed.total_length =
      static_cast<std::uint16_t>(total - EthernetHeader::kSize);
  ip_fixed.serialize_with_checksum(w, ip.header_checksum);
  UdpHeader udp_fixed = udp;
  udp_fixed.length = static_cast<std::uint16_t>(total - kUdpOff);
  udp_fixed.checksum = udp.checksum;
  udp_fixed.serialize(w);
  if (netclone) {
    netclone->serialize(w);
  }
  return true;
}

FrameHandle Packet::serialize_sg(const SharedPayload& tail) const {
  NETCLONE_CHECK(payload.size() == tail.size(),
                 "packet payload does not match the scatter-gather tail");
  if (!packet_fastpath_enabled()) {
    return FrameHandle{serialize()};  // legacy baseline: full rebuild
  }
  const std::size_t hdr = header_size();
  const std::size_t total = hdr + tail.size();
  FrameHandle head = FrameHandle::allocate(hdr);
  std::byte* dst = head.writable_all();
  ByteWriter w{std::span<std::byte>{dst, hdr}};
  eth.serialize(w);
  Ipv4Header ip_fixed = ip;
  ip_fixed.total_length =
      static_cast<std::uint16_t>(total - EthernetHeader::kSize);
  ip_fixed.serialize(w);
  UdpHeader udp_fixed = udp;
  udp_fixed.length = static_cast<std::uint16_t>(total - kUdpOff);
  udp_fixed.checksum = 0;
  udp_fixed.serialize(w);
  if (netclone) {
    netclone->serialize(w);
  }
  NETCLONE_CHECK(w.written() == hdr, "scatter-gather header size mismatch");
  // UDP checksum = pseudo-header + header block + precomputed tail sum.
  // The tail's sum was folded at even alignment; when the payload starts
  // at an odd offset within the UDP segment every byte pair is swapped,
  // and so is the sum (RFC 1071 §2(B)).
  std::uint16_t tail_sum = tail.folded_sum;
  if (((hdr - kUdpOff) & 1U) != 0) {
    tail_sum = static_cast<std::uint16_t>(tail_sum << 8 | tail_sum >> 8);
  }
  const std::uint32_t pseudo =
      (ip.src.value >> 16) + (ip.src.value & 0xFFFFU) +
      (ip.dst.value >> 16) + (ip.dst.value & 0xFFFFU) +
      static_cast<std::uint32_t>(IpProto::kUdp) +
      static_cast<std::uint32_t>(total - kUdpOff);
  std::uint16_t csum = internet_checksum(
      std::span<const std::byte>{dst + kUdpOff, hdr - kUdpOff},
      pseudo + tail_sum);
  if (csum == 0) {
    csum = 0xFFFF;  // RFC 768: computed zero is transmitted as all-ones
  }
  write_u16_at(dst, kUdpCsumOff, csum);
  return FrameHandle::compose(std::move(head), tail.frame);
}

FrameHandle Packet::build_pooled() const {
  const std::size_t total = wire_size();
  FrameHandle h = FrameHandle::allocate(total);
  std::byte* dst = h.writable_all();
  ByteWriter w{std::span<std::byte>{dst, total}};
  eth.serialize(w);
  Ipv4Header ip_fixed = ip;
  ip_fixed.total_length =
      static_cast<std::uint16_t>(total - EthernetHeader::kSize);
  ip_fixed.serialize(w);
  UdpHeader udp_fixed = udp;
  udp_fixed.length = static_cast<std::uint16_t>(total - kUdpOff);
  udp_fixed.checksum = 0;
  udp_fixed.serialize(w);
  if (netclone) {
    netclone->serialize(w);
  }
  w.bytes(payload);
  NETCLONE_CHECK(w.written() == total, "pooled serialize size mismatch");
  const std::uint16_t csum = udp_checksum(
      ip.src, ip.dst, std::span<const std::byte>{dst + kUdpOff,
                                                 total - kUdpOff});
  write_u16_at(dst, kUdpCsumOff, csum);
  return h;
}

namespace {

/// Checksum verification over a frame presented as a head span plus an
/// optional tail span (empty for contiguous frames). `head` must cover
/// at least the Ethernet+IPv4+UDP headers.
bool verify_spans(std::span<const std::byte> head,
                  std::span<const std::byte> tail) {
  const std::byte* o = head.data();
  const std::size_t total = head.size() + tail.size();
  if (load_u16(o, 12) != static_cast<std::uint16_t>(EtherType::kIpv4)) {
    return true;  // not IPv4: nothing here is checksummed
  }
  // The IPv4 header sums to zero (complemented) when intact — this also
  // covers flips in version/IHL, lengths, protocol, and addresses.
  const std::uint32_t ip_sum = checksum_accumulate(
      head.subspan(kIpOff, Ipv4Header::kSize), 0);
  if (internet_checksum({}, ip_sum) != 0) {
    return false;
  }
  if (load_u8(o, kIpProtoOff) != static_cast<std::uint8_t>(IpProto::kUdp)) {
    return true;  // IPv4 header intact but not UDP: nothing more to check
  }
  // Lengths must agree with the bytes on the wire before the UDP sum can
  // mean anything; a mismatch is an integrity failure in its own right.
  if (load_u16(o, kIpOff + 2) !=
          static_cast<std::uint16_t>(total - kIpOff) ||
      load_u16(o, kUdpLenOff) !=
          static_cast<std::uint16_t>(total - kUdpOff)) {
    return false;
  }
  const std::uint16_t wire_csum = load_u16(o, kUdpCsumOff);
  if (wire_csum == 0) {
    return true;  // RFC 768: zero means the sender skipped the checksum
  }
  const std::uint32_t pseudo =
      static_cast<std::uint32_t>(load_u16(o, kIpSrcOff)) +
      load_u16(o, kIpSrcOff + 2) + load_u16(o, kIpSrcOff + 4) +
      load_u16(o, kIpSrcOff + 6) +
      static_cast<std::uint32_t>(IpProto::kUdp) +
      static_cast<std::uint32_t>(total - kUdpOff);
  std::uint32_t sum = checksum_accumulate(
      head.subspan(kUdpOff, (head.size() - kUdpOff) & ~std::size_t{1}),
      pseudo);
  if (((head.size() - kUdpOff) & 1U) != 0) {
    // The UDP segment's head part ends mid-word: its last byte is the
    // high half of a word whose low half is the first tail byte (or the
    // RFC 1071 zero pad when there is no tail).
    std::uint32_t straddle =
        static_cast<std::uint32_t>(head.back()) << 8;
    if (!tail.empty()) {
      straddle |= static_cast<std::uint32_t>(tail.front());
      tail = tail.subspan(1);
    }
    sum += straddle;
  }
  // `tail` is now word-aligned relative to the UDP segment, so the plain
  // accumulate (which zero-pads a trailing odd byte) finishes the sum.
  return internet_checksum(tail, sum) == 0;
}

}  // namespace

bool verify_frame_checksums(const FrameHandle& frame) {
  constexpr std::size_t kMinHead = kUdpOff + UdpHeader::kSize;
  if (!frame.split()) {
    const auto bytes = frame.bytes();
    return bytes.size() < kMinHead || verify_spans(bytes, {});
  }
  const auto head = frame.head_bytes();
  if (head.size() >= kMinHead) {
    return verify_spans(head, frame.tail_bytes());
  }
  // A split boundary inside the L2-L4 headers never arises from
  // compose()/copy-on-write, but stay correct if it ever does.
  const Frame linear = frame.to_frame();
  return linear.size() < kMinHead ||
         verify_spans(std::span<const std::byte>{linear}, {});
}

NetCloneHeader& Packet::nc() {
  NETCLONE_CHECK(netclone.has_value(), "packet has no NetClone header");
  return *netclone;
}

const NetCloneHeader& Packet::nc() const {
  NETCLONE_CHECK(netclone.has_value(), "packet has no NetClone header");
  return *netclone;
}

Packet make_netclone_packet(MacAddress src_mac, MacAddress dst_mac,
                            Ipv4Address src, Ipv4Address dst,
                            std::uint16_t src_port, const NetCloneHeader& nc,
                            Frame payload) {
  Packet pkt;
  pkt.eth.src = src_mac;
  pkt.eth.dst = dst_mac;
  pkt.eth.ether_type = EtherType::kIpv4;
  pkt.ip.src = src;
  pkt.ip.dst = dst;
  pkt.ip.protocol = IpProto::kUdp;
  pkt.udp.src_port = src_port;
  pkt.udp.dst_port = kNetClonePort;
  pkt.netclone = nc;
  pkt.payload = std::move(payload);
  return pkt;
}

}  // namespace netclone::wire
