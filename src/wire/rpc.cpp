#include "wire/rpc.hpp"

namespace netclone::wire {

void RpcRequest::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(intrinsic_ns);
  w.u64(key);
  w.u16(scan_count);
  w.u16(value_size);
}

RpcRequest RpcRequest::parse(ByteReader& r) {
  RpcRequest req;
  const std::uint8_t op = r.u8();
  if (op > static_cast<std::uint8_t>(RpcOp::kSet)) {
    throw CodecError{"bad RPC op"};
  }
  req.op = static_cast<RpcOp>(op);
  req.intrinsic_ns = r.u32();
  req.key = r.u64();
  req.scan_count = r.u16();
  req.value_size = r.u16();
  return req;
}

Frame RpcRequest::to_frame() const {
  Frame f;
  f.reserve(kSize);
  ByteWriter w{f};
  serialize(w);
  return f;
}

RpcRequest RpcRequest::from_frame(std::span<const std::byte> f) {
  ByteReader r{f};
  return parse(r);
}

void RpcResponse::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(status));
  w.u32(queue_wait_ns);
  w.u32(service_ns);
  w.u16(static_cast<std::uint16_t>(value.size()));
  w.bytes(value);
}

RpcResponse RpcResponse::parse(ByteReader& r) {
  RpcResponse resp;
  resp.status = static_cast<RpcStatus>(r.u8());
  resp.queue_wait_ns = r.u32();
  resp.service_ns = r.u32();
  const std::uint16_t len = r.u16();
  resp.value.resize(len);
  r.bytes(resp.value);
  return resp;
}

Frame RpcResponse::to_frame() const {
  Frame f;
  f.reserve(11 + value.size());
  ByteWriter w{f};
  serialize(w);
  return f;
}

RpcResponse RpcResponse::from_frame(std::span<const std::byte> f) {
  ByteReader r{f};
  return parse(r);
}

}  // namespace netclone::wire
