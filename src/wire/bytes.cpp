#include "wire/bytes.hpp"

#include <algorithm>

namespace netclone::wire {

void ByteWriter::u8(std::uint8_t v) {
  out_.push_back(static_cast<std::byte>(v));
}

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v & 0xFFU));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v & 0xFFFFU));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFU));
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(std::span<const std::byte> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::zeros(std::size_t n) {
  out_.insert(out_.end(), n, std::byte{0});
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw CodecError{"byte stream underrun"};
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint16_t ByteReader::u16() {
  const auto hi = static_cast<std::uint16_t>(u8());
  const auto lo = static_cast<std::uint16_t>(u8());
  return static_cast<std::uint16_t>(hi << 8 | lo);
}

std::uint32_t ByteReader::u32() {
  const auto hi = static_cast<std::uint32_t>(u16());
  const auto lo = static_cast<std::uint32_t>(u16());
  return hi << 16 | lo;
}

std::uint64_t ByteReader::u64() {
  const auto hi = static_cast<std::uint64_t>(u32());
  const auto lo = static_cast<std::uint64_t>(u32());
  return hi << 32 | lo;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

void ByteReader::bytes(std::span<std::byte> out) {
  require(out.size());
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
              out.size(), out.begin());
  offset_ += out.size();
}

void ByteReader::skip(std::size_t n) {
  require(n);
  offset_ += n;
}

void poke_u16(Frame& frame, std::size_t offset, std::uint16_t v) {
  if (offset + 2 > frame.size()) {
    throw CodecError{"poke_u16 out of range"};
  }
  frame[offset] = static_cast<std::byte>(v >> 8);
  frame[offset + 1] = static_cast<std::byte>(v & 0xFFU);
}

std::uint16_t peek_u16(std::span<const std::byte> frame, std::size_t offset) {
  if (offset + 2 > frame.size()) {
    throw CodecError{"peek_u16 out of range"};
  }
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(frame[offset]) << 8 |
      static_cast<std::uint16_t>(frame[offset + 1]));
}

}  // namespace netclone::wire
