#include "wire/bytes.hpp"

#include <algorithm>

namespace netclone::wire {

void throw_writer_overflow() { throw CodecError{"byte writer overflow"}; }

void throw_reader_underrun() { throw CodecError{"byte stream underrun"}; }

void ByteWriter::bytes(std::span<const std::byte> data) {
  if (vec_ != nullptr) {
    vec_->insert(vec_->end(), data.begin(), data.end());
    return;
  }
  if (cap_ - len_ < data.size()) {
    throw_writer_overflow();
  }
  std::copy(data.begin(), data.end(), fixed_ + len_);
  len_ += data.size();
}

void ByteWriter::zeros(std::size_t n) {
  if (vec_ != nullptr) {
    vec_->insert(vec_->end(), n, std::byte{0});
    return;
  }
  if (cap_ - len_ < n) {
    throw_writer_overflow();
  }
  std::fill_n(fixed_ + len_, n, std::byte{0});
  len_ += n;
}

void ByteReader::bytes(std::span<std::byte> out) {
  require(out.size());
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
              out.size(), out.begin());
  offset_ += out.size();
}

void poke_u16(Frame& frame, std::size_t offset, std::uint16_t v) {
  if (offset + 2 > frame.size()) {
    throw CodecError{"poke_u16 out of range"};
  }
  frame[offset] = static_cast<std::byte>(v >> 8);
  frame[offset + 1] = static_cast<std::byte>(v & 0xFFU);
}

std::uint16_t peek_u16(std::span<const std::byte> frame, std::size_t offset) {
  if (offset + 2 > frame.size()) {
    throw CodecError{"peek_u16 out of range"};
  }
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(frame[offset]) << 8 |
      static_cast<std::uint16_t>(frame[offset + 1]));
}

}  // namespace netclone::wire
