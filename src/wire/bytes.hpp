// Network-order (big-endian) byte stream codec.
//
// All headers in this repository serialize through these two classes, so
// every multi-byte field goes on the wire in network order exactly once,
// and parsing failures surface as explicit errors instead of silent reads
// past the end of a buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace netclone::wire {

/// A frame is just owned bytes; the simulation moves these between nodes.
using Frame = std::vector<std::byte>;

/// Thrown when a reader runs out of bytes or a writer overflows a bound.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends big-endian values to a growing byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Frame& out) : out_(out) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void bytes(std::span<const std::byte> data);
  void zeros(std::size_t n);

  [[nodiscard]] std::size_t written() const { return out_.size(); }

 private:
  Frame& out_;
};

/// Consumes big-endian values from a byte span; throws CodecError on
/// underrun so truncated packets can never be half-parsed silently.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  void bytes(std::span<std::byte> out);
  void skip(std::size_t n);

  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - offset_;
  }
  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::span<const std::byte> rest() const {
    return data_.subspan(offset_);
  }

 private:
  void require(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

/// Writes a big-endian u16 at an absolute offset (checksum patching).
void poke_u16(Frame& frame, std::size_t offset, std::uint16_t v);

/// Reads a big-endian u16 at an absolute offset.
[[nodiscard]] std::uint16_t peek_u16(std::span<const std::byte> frame,
                                     std::size_t offset);

}  // namespace netclone::wire
