// Network-order (big-endian) byte stream codec.
//
// All headers in this repository serialize through these two classes, so
// every multi-byte field goes on the wire in network order exactly once,
// and parsing failures surface as explicit errors instead of silent reads
// past the end of a buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace netclone::wire {

/// A frame is just owned bytes; the simulation moves these between nodes.
using Frame = std::vector<std::byte>;

/// Thrown when a reader runs out of bytes or a writer overflows a bound.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Cold out-of-line throw helpers; keeping them out of the inline codec
/// accessors keeps the hot (always-taken) path to a compare and a store.
[[noreturn]] void throw_writer_overflow();
[[noreturn]] void throw_reader_underrun();

// Big-endian field accessors at fixed offsets within a raw region obtained
// from ByteWriter::raw / ByteReader::raw. Fixed-layout header codecs write
// through these so the bounds check happens once per header, not per byte.
inline void store_u8(std::byte* p, std::size_t off, std::uint8_t v) {
  p[off] = static_cast<std::byte>(v);
}
inline void store_u16(std::byte* p, std::size_t off, std::uint16_t v) {
  p[off] = static_cast<std::byte>(v >> 8);
  p[off + 1] = static_cast<std::byte>(v & 0xFFU);
}
inline void store_u32(std::byte* p, std::size_t off, std::uint32_t v) {
  store_u16(p, off, static_cast<std::uint16_t>(v >> 16));
  store_u16(p, off + 2, static_cast<std::uint16_t>(v & 0xFFFFU));
}
inline std::uint8_t load_u8(const std::byte* p, std::size_t off) {
  return static_cast<std::uint8_t>(p[off]);
}
inline std::uint16_t load_u16(const std::byte* p, std::size_t off) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(p[off]) << 8 |
      static_cast<std::uint16_t>(p[off + 1]));
}
inline std::uint32_t load_u32(const std::byte* p, std::size_t off) {
  return static_cast<std::uint32_t>(load_u16(p, off)) << 16 |
         static_cast<std::uint32_t>(load_u16(p, off + 2));
}

/// Writes big-endian values either into a growing byte vector or into a
/// caller-provided fixed buffer (the pooled frame path serializes straight
/// into arena storage; overflowing the fixed bound throws CodecError).
///
/// The accessors are inline: header serialization is the per-hop inner
/// loop of the whole simulation, and a u32 through out-of-line per-byte
/// calls costs seven function calls.
class ByteWriter {
 public:
  explicit ByteWriter(Frame& out) : vec_(&out) {}
  explicit ByteWriter(std::span<std::byte> fixed)
      : fixed_(fixed.data()), cap_(fixed.size()) {}

  void u8(std::uint8_t v) {
    if (vec_ != nullptr) {
      vec_->push_back(static_cast<std::byte>(v));
      return;
    }
    if (len_ >= cap_) {
      throw_writer_overflow();
    }
    fixed_[len_++] = static_cast<std::byte>(v);
  }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v & 0xFFU));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v & 0xFFFFU));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFU));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::byte> data);
  void zeros(std::size_t n);

  /// Reserves `n` contiguous output bytes — one bounds check (fixed mode)
  /// or one resize (vector mode) — and returns a pointer to write them
  /// through store_*. The caller must fill all `n` bytes.
  [[nodiscard]] std::byte* raw(std::size_t n) {
    if (vec_ != nullptr) {
      const std::size_t off = vec_->size();
      vec_->resize(off + n);
      return vec_->data() + off;
    }
    if (cap_ - len_ < n) {
      throw_writer_overflow();
    }
    std::byte* p = fixed_ + len_;
    len_ += n;
    return p;
  }

  [[nodiscard]] std::size_t written() const {
    return vec_ != nullptr ? vec_->size() : len_;
  }

 private:
  Frame* vec_ = nullptr;
  std::byte* fixed_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t len_ = 0;
};

/// Consumes big-endian values from a byte span; throws CodecError on
/// underrun so truncated packets can never be half-parsed silently.
/// Inline for the same reason as ByteWriter: parsing is the other half of
/// the per-hop inner loop.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    require(1);
    return static_cast<std::uint8_t>(data_[offset_++]);
  }
  [[nodiscard]] std::uint16_t u16() {
    require(2);
    const auto v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(data_[offset_]) << 8 |
        static_cast<std::uint16_t>(data_[offset_ + 1]));
    offset_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto hi = static_cast<std::uint32_t>(u16());
    const auto lo = static_cast<std::uint32_t>(u16());
    return hi << 16 | lo;
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto hi = static_cast<std::uint64_t>(u32());
    const auto lo = static_cast<std::uint64_t>(u32());
    return hi << 32 | lo;
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  void bytes(std::span<std::byte> out);
  void skip(std::size_t n) {
    require(n);
    offset_ += n;
  }

  /// Consumes `n` contiguous bytes with a single bounds check and returns
  /// a pointer to read them through load_*.
  [[nodiscard]] const std::byte* raw(std::size_t n) {
    require(n);
    const std::byte* p = data_.data() + offset_;
    offset_ += n;
    return p;
  }

  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - offset_;
  }
  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::span<const std::byte> rest() const {
    return data_.subspan(offset_);
  }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) {
      throw_reader_underrun();
    }
  }

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

/// Writes a big-endian u16 at an absolute offset (checksum patching).
void poke_u16(Frame& frame, std::size_t offset, std::uint16_t v);

/// Reads a big-endian u16 at an absolute offset.
[[nodiscard]] std::uint16_t peek_u16(std::span<const std::byte> frame,
                                     std::size_t offset);

}  // namespace netclone::wire
