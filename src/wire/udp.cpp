#include "wire/udp.hpp"

namespace netclone::wire {

void UdpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(checksum);
}

UdpHeader UdpHeader::parse(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  return h;
}

std::uint16_t udp_checksum(Ipv4Address src, Ipv4Address dst,
                           std::span<const std::byte> udp_segment) {
  // Pseudo-header: src, dst, zero, proto, UDP length.
  Frame pseudo;
  pseudo.reserve(12);
  ByteWriter w{pseudo};
  w.u32(src.value);
  w.u32(dst.value);
  w.u8(0);
  w.u8(static_cast<std::uint8_t>(IpProto::kUdp));
  w.u16(static_cast<std::uint16_t>(udp_segment.size()));
  const std::uint32_t sum = checksum_accumulate(pseudo, 0);
  std::uint16_t result = internet_checksum(udp_segment, sum);
  // Per RFC 768 a computed zero is transmitted as all-ones.
  return result == 0 ? static_cast<std::uint16_t>(0xFFFF) : result;
}

}  // namespace netclone::wire
