#include "wire/udp.hpp"

namespace netclone::wire {

std::uint16_t udp_checksum(Ipv4Address src, Ipv4Address dst,
                           std::span<const std::byte> udp_segment) {
  // Pseudo-header (src, dst, zero, proto, UDP length) accumulated as
  // 16-bit words directly — no buffer needed.
  const std::uint32_t sum = (src.value >> 16) + (src.value & 0xFFFFU) +
                            (dst.value >> 16) + (dst.value & 0xFFFFU) +
                            static_cast<std::uint32_t>(IpProto::kUdp) +
                            static_cast<std::uint32_t>(udp_segment.size());
  std::uint16_t result = internet_checksum(udp_segment, sum);
  // Per RFC 768 a computed zero is transmitted as all-ones.
  return result == 0 ? static_cast<std::uint16_t>(0xFFFF) : result;
}

}  // namespace netclone::wire
