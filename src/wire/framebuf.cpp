#include "wire/framebuf.hpp"

#include <cstring>
#include <new>

#include "common/check.hpp"

namespace netclone::wire {

namespace {

bool g_fastpath_enabled = true;

/// Pool the current thread allocates from when one is bound (a shard's
/// pool while that shard executes); nullptr falls back to the process-wide
/// singleton.
thread_local FramePool* g_bound_pool = nullptr;

}  // namespace

FramePool* FramePool::bind_to_thread(FramePool* pool) {
  FramePool* prev = g_bound_pool;
  g_bound_pool = pool;
  return prev;
}

FramePool* FramePool::thread_bound() { return g_bound_pool; }

bool packet_fastpath_enabled() { return g_fastpath_enabled; }
void set_packet_fastpath_enabled(bool enabled) {
  g_fastpath_enabled = enabled;
}

// -- FramePool --------------------------------------------------------------

FramePool::~FramePool() {
  for (FrameBuf*& head : free_) {
    while (head != nullptr) {
      FrameBuf* next = head->next_free;
      ::operator delete(static_cast<void*>(head));
      head = next;
    }
  }
}

FrameBuf* FramePool::acquire(std::size_t size) {
  ++stats_.acquired;
  ++stats_.live;

  std::uint8_t cls = kUnpooled;
  for (std::size_t i = 0; i < kClassCount; ++i) {
    if (size <= kClassSize[i]) {
      cls = static_cast<std::uint8_t>(i);
      break;
    }
  }

  if (cls != kUnpooled && free_[cls] != nullptr) {
    FrameBuf* buf = free_[cls];
    free_[cls] = buf->next_free;
    buf->next_free = nullptr;
    buf->refs = 1;
    buf->size = static_cast<std::uint32_t>(size);
    ++stats_.recycled;
    return buf;
  }

  const std::size_t capacity = cls != kUnpooled ? kClassSize[cls] : size;
  void* raw = ::operator new(sizeof(FrameBuf) + capacity);
  auto* buf = ::new (raw) FrameBuf{};
  buf->refs = 1;
  buf->size = static_cast<std::uint32_t>(size);
  buf->capacity = static_cast<std::uint32_t>(capacity);
  buf->size_class = cls;
  buf->pool = this;
  ++stats_.slabs_allocated;
  return buf;
}

void FramePool::release(FrameBuf* buf) {
  NETCLONE_CHECK(buf->refs == 0, "releasing a referenced frame buffer");
  ++stats_.released;
  NETCLONE_CHECK(stats_.live > 0, "pool released more buffers than acquired");
  --stats_.live;
  if (!kRecyclingEnabled || buf->size_class == kUnpooled) {
    ::operator delete(static_cast<void*>(buf));
    return;
  }
  buf->next_free = free_[buf->size_class];
  free_[buf->size_class] = buf;
}

FramePool& FramePool::instance() {
  if (g_bound_pool != nullptr) {
    return *g_bound_pool;
  }
  static FramePool pool;
  return pool;
}

// -- FrameHandle ------------------------------------------------------------

FrameHandle FrameHandle::allocate(std::size_t size) {
  return allocate(FramePool::instance(), size);
}

FrameHandle FrameHandle::allocate(FramePool& pool, std::size_t size) {
  return FrameHandle{nullptr, pool.acquire(size), 0};
}

FrameHandle FrameHandle::copy_of(std::span<const std::byte> bytes) {
  FrameHandle h = allocate(bytes.size());
  if (!bytes.empty()) {
    std::memcpy(h.writable_all(), bytes.data(), bytes.size());
  }
  return h;
}

FrameHandle FrameHandle::compose(FrameHandle head, const FrameHandle& tail) {
  NETCLONE_CHECK(head.body_ != nullptr && !head.split() &&
                     head.body_->refs == 1,
                 "scatter-gather head must be a unique, unsplit block");
  NETCLONE_CHECK(head.size() <= kMaxHeaderRegion,
                 "scatter-gather head exceeds the header region");
  if (tail.body_ == nullptr || tail.size() == 0) {
    return head;  // nothing to gather; the head alone stays contiguous
  }
  NETCLONE_CHECK(!tail.split(),
                 "scatter-gather tail must be contiguous");
  add_ref(tail.body_);
  FrameHandle out{head.body_, tail.body_, tail.body_off_};
  head.body_ = nullptr;  // the single head reference moved into `out`
  return out;
}

Frame FrameHandle::to_frame() const {
  Frame out(size());
  if (!out.empty()) {
    copy_to(out.data());
  }
  return out;
}

void FrameHandle::copy_to(std::byte* dst) const {
  if (body_ == nullptr) {
    return;
  }
  std::size_t off = 0;
  if (split()) {
    std::memcpy(dst, head_->data(), head_->size);
    off = head_->size;
  }
  std::memcpy(dst + off, body_->data() + body_off_,
              body_->size - body_off_);
}

std::byte* FrameHandle::writable_all() {
  NETCLONE_CHECK(body_ != nullptr, "empty frame handle");
  NETCLONE_CHECK(!split() && body_->refs == 1,
                 "whole-frame writes need a unique, unsplit buffer");
  return body_->data();
}

std::byte* FrameHandle::writable_head(std::size_t head_len,
                                      std::uint32_t tolerated_body_refs) {
  NETCLONE_CHECK(body_ != nullptr, "empty frame handle");
  NETCLONE_CHECK(head_len <= kMaxHeaderRegion && head_len <= size(),
                 "header region out of range");
  if (split()) {
    NETCLONE_CHECK(head_->size == head_len,
                   "header region does not match the existing split");
    if (head_->refs == 1) {
      return head_->data();
    }
    // The head itself is shared (this handle was copied after a split):
    // duplicate just the head block.
    FrameBuf* fresh = body_->pool->acquire(head_len);
    std::memcpy(fresh->data(), head_->data(), head_len);
    release_ref(head_);
    head_ = fresh;
    return head_->data();
  }
  if (body_->refs <= tolerated_body_refs) {
    return body_->data();  // sole logical owner: patch in place
  }
  // Copy-on-write split: private header region, shared payload tail.
  FrameBuf* fresh = body_->pool->acquire(head_len);
  std::memcpy(fresh->data(), body_->data(), head_len);
  head_ = fresh;
  body_off_ = static_cast<std::uint32_t>(head_len);
  return head_->data();
}

}  // namespace netclone::wire
