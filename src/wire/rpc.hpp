// Application-level RPC payload carried after the NetClone header.
//
// Two request kinds exist: synthetic RPCs whose intrinsic duration is chosen
// by the workload generator (paper §5.1.2), and key-value operations for the
// Redis/Memcached experiments (§5.5). Responses stay single-packet: GET
// returns the 64-byte value, SCAN returns an 8-byte digest of the 100 values
// read (matching the paper's one-packet-response setup).
#pragma once

#include <cstdint>

#include "wire/bytes.hpp"

namespace netclone::wire {

enum class RpcOp : std::uint8_t {
  kSynthetic = 0,
  kGet = 1,
  kScan = 2,
  kSet = 3,
};

struct RpcRequest {
  static constexpr std::size_t kSize = 17;

  RpcOp op = RpcOp::kSynthetic;
  /// Intrinsic service duration in ns for kSynthetic (the shared component
  /// of a request's cost — both clones of a request run the same job).
  std::uint32_t intrinsic_ns = 0;
  /// Key index for KV operations.
  std::uint64_t key = 0;
  /// Number of objects a kScan reads (paper uses 100).
  std::uint16_t scan_count = 0;
  /// Value size for kSet.
  std::uint16_t value_size = 0;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static RpcRequest parse(ByteReader& r);
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static RpcRequest from_frame(std::span<const std::byte> f);
};

enum class RpcStatus : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
};

struct RpcResponse {
  RpcStatus status = RpcStatus::kOk;
  /// Server-side latency decomposition, stamped by the worker: time the
  /// request waited in the FCFS queue and time it executed. Lets clients
  /// attribute end-to-end latency to queueing vs service vs network —
  /// which is how one sees *what* cloning masked.
  std::uint32_t queue_wait_ns = 0;
  std::uint32_t service_ns = 0;
  /// GET: the object value; SCAN: an 8-byte digest; SYNTHETIC/SET: empty.
  Frame value{};

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static RpcResponse parse(ByteReader& r);
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static RpcResponse from_frame(std::span<const std::byte> f);
};

}  // namespace netclone::wire
