// Pooled, reference-counted frame buffers — the zero-copy packet path.
//
// The simulation used to re-materialize every packet at every hop: parse
// into structs, mutate, serialize into a brand-new heap vector, deep-copy
// once more per multicast port. This layer replaces that with three ideas:
//
//   * FramePool — a free-list arena of fixed size-class buffers, so the
//     per-hop cycle allocates from a recycled slab instead of malloc;
//   * FrameHandle — an intrusively refcounted handle to a pooled buffer.
//     Copies share bytes (multicast fan-out is a refcount bump); mutation
//     goes through a copy-on-write head split that duplicates only the
//     ≤64-byte header region and keeps sharing the payload tail;
//   * PayloadRef — Packet's payload as either owned bytes (built packets)
//     or a view pinning the backing buffer (parsed packets), so parsing a
//     frame no longer copies the application payload.
//
// Everything here is single-threaded, like the event engine: refcounts are
// plain integers, and determinism is unaffected because sharing never
// changes the bytes observed at any wire boundary.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "common/check.hpp"
#include "wire/bytes.hpp"

namespace netclone::wire {

class FramePool;

/// One pooled buffer: an intrusive header immediately followed by
/// `capacity` bytes of frame storage in the same allocation.
struct FrameBuf {
  std::uint32_t refs = 0;
  std::uint32_t size = 0;      // bytes in use
  std::uint32_t capacity = 0;  // bytes available after the header
  std::uint8_t size_class = 0;
  FramePool* pool = nullptr;
  FrameBuf* next_free = nullptr;

  [[nodiscard]] std::byte* data() {
    return reinterpret_cast<std::byte*>(this) + sizeof(FrameBuf);
  }
  [[nodiscard]] const std::byte* data() const {
    return reinterpret_cast<const std::byte*>(this) + sizeof(FrameBuf);
  }
};

/// Free-list arena of FrameBufs in power-of-two size classes. Oversized
/// requests fall through to plain heap allocations that are freed, not
/// recycled. Under AddressSanitizer recycling is disabled entirely so a
/// use-after-release of a frame is a real heap use-after-free ASan can see.
class FramePool {
 public:
#if defined(__SANITIZE_ADDRESS__)
  static constexpr bool kRecyclingEnabled = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  static constexpr bool kRecyclingEnabled = false;
#else
  static constexpr bool kRecyclingEnabled = true;
#endif
#else
  static constexpr bool kRecyclingEnabled = true;
#endif

  struct Stats {
    std::uint64_t slabs_allocated = 0;  // buffers created with operator new
    std::uint64_t acquired = 0;
    std::uint64_t released = 0;
    std::uint64_t recycled = 0;  // acquires served from a free list
    std::uint64_t live = 0;      // currently acquired
  };

  FramePool() = default;
  ~FramePool();

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// Returns a buffer with refs == 1 and size == `size`, contents
  /// uninitialized. The caller owns the single reference.
  [[nodiscard]] FrameBuf* acquire(std::size_t size);

  /// Returns a buffer to its free list (or frees it). Called by the last
  /// handle release; `buf->refs` must already be zero.
  void release(FrameBuf* buf);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// The pool the data path allocates from: the thread-bound pool when a
  /// shard has installed one (sharded runs), else the process-wide
  /// singleton (the legacy single-threaded engine).
  [[nodiscard]] static FramePool& instance();

  /// Binds `pool` as this thread's allocation pool (nullptr unbinds) and
  /// returns the previous binding. Buffers still release to the pool that
  /// acquired them — the FrameBuf back-pointer, not the binding — so a
  /// handle that outlives a binding change stays balanced in its home
  /// pool's stats.
  static FramePool* bind_to_thread(FramePool* pool);
  [[nodiscard]] static FramePool* thread_bound();

 private:
  static constexpr std::size_t kClassCount = 6;
  static constexpr std::size_t kClassSize[kClassCount] = {64,  128,  256,
                                                          512, 1024, 2048};
  static constexpr std::uint8_t kUnpooled = 0xFF;

  FrameBuf* free_[kClassCount] = {};
  Stats stats_;
};

/// Scoped FramePool::bind_to_thread: installs `pool` for the lifetime of
/// the binding and restores the previous one on exit. Shards wrap every
/// execution slice in one so node code allocating through
/// FramePool::instance() transparently hits the shard's pool.
class ScopedPoolBinding {
 public:
  explicit ScopedPoolBinding(FramePool& pool)
      : prev_(FramePool::bind_to_thread(&pool)) {}
  ~ScopedPoolBinding() { (void)FramePool::bind_to_thread(prev_); }
  ScopedPoolBinding(const ScopedPoolBinding&) = delete;
  ScopedPoolBinding& operator=(const ScopedPoolBinding&) = delete;

 private:
  FramePool* prev_;
};

/// Largest contiguous header region a frame can carry (Ethernet + IPv4 +
/// UDP + NetClone = 63 bytes). Copy-on-write splits duplicate at most this
/// much per copy; the payload tail is always shared.
inline constexpr std::size_t kMaxHeaderRegion = 64;

/// Refcounted view of a frame's bytes: either one contiguous pooled buffer,
/// or — after a copy-on-write header split — a private head buffer plus a
/// shared tail. Copying a handle never copies frame bytes.
class FrameHandle {
 public:
  FrameHandle() = default;
  // The special members are inline: handles ride through every event
  // lambda and per-hop cycle, so a refcount bump must not cost a call.
  FrameHandle(const FrameHandle& other)
      : head_(other.head_), body_(other.body_), body_off_(other.body_off_) {
    add_ref(head_);
    add_ref(body_);
  }
  FrameHandle& operator=(const FrameHandle& other) {
    if (this != &other) {
      add_ref(other.head_);
      add_ref(other.body_);
      reset();
      head_ = other.head_;
      body_ = other.body_;
      body_off_ = other.body_off_;
    }
    return *this;
  }
  FrameHandle(FrameHandle&& other) noexcept
      : head_(other.head_), body_(other.body_), body_off_(other.body_off_) {
    other.head_ = nullptr;
    other.body_ = nullptr;
    other.body_off_ = 0;
  }
  FrameHandle& operator=(FrameHandle&& other) noexcept {
    if (this != &other) {
      reset();
      head_ = other.head_;
      body_ = other.body_;
      body_off_ = other.body_off_;
      other.head_ = nullptr;
      other.body_ = nullptr;
      other.body_off_ = 0;
    }
    return *this;
  }
  ~FrameHandle() { reset(); }

  // Bridges from the legacy owned-vector frame type: copies the bytes into
  // a pooled buffer. Implicit so call sites (and tests) that still build
  // wire::Frame values keep working unchanged.
  // NOLINTNEXTLINE(google-explicit-constructor)
  FrameHandle(const Frame& frame) : FrameHandle(copy_of(frame)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  FrameHandle(Frame&& frame) : FrameHandle(copy_of(frame)) {}

  /// A unique handle to `size` uninitialized pooled bytes; fill through
  /// writable_all() before sharing.
  [[nodiscard]] static FrameHandle allocate(std::size_t size);
  [[nodiscard]] static FrameHandle allocate(FramePool& pool,
                                            std::size_t size);
  [[nodiscard]] static FrameHandle copy_of(std::span<const std::byte> bytes);

  /// Composes a scatter-gather frame: `head` (a unique, unsplit header
  /// block of at most kMaxHeaderRegion bytes) followed by `tail`, whose
  /// buffer is shared by refcount — never copied. The result is a split
  /// handle whose split boundary is the head/tail boundary, so a receiver
  /// parsing it takes the split fast path. An empty tail returns `head`
  /// unchanged (still contiguous). `tail` must itself be unsplit.
  [[nodiscard]] static FrameHandle compose(FrameHandle head,
                                           const FrameHandle& tail);

  [[nodiscard]] std::size_t size() const {
    if (body_ == nullptr) {
      return 0;
    }
    const std::size_t tail = body_->size - body_off_;
    return split() ? head_->size + tail : tail;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] explicit operator bool() const { return body_ != nullptr; }

  /// True after a copy-on-write header split: the first head_bytes() of
  /// the frame live in a private buffer, the rest in the shared tail.
  [[nodiscard]] bool split() const { return head_ != nullptr; }
  [[nodiscard]] std::span<const std::byte> head_bytes() const {
    NETCLONE_CHECK(split(), "frame has no private head");
    return {head_->data(), head_->size};
  }
  [[nodiscard]] std::span<const std::byte> tail_bytes() const {
    NETCLONE_CHECK(body_ != nullptr, "empty frame handle");
    return {body_->data() + body_off_, body_->size - body_off_};
  }

  /// The whole frame as one span; only valid when !split().
  [[nodiscard]] std::span<const std::byte> bytes() const {
    NETCLONE_CHECK(body_ != nullptr, "empty frame handle");
    NETCLONE_CHECK(!split(), "split frame is not contiguous");
    return {body_->data(), body_->size};
  }

  /// Linearizing copy — the oracle boundary (pcap dumps, legacy parse).
  [[nodiscard]] Frame to_frame() const;
  void copy_to(std::byte* dst) const;

  /// Whole-buffer write access; requires a unique, unsplit handle (the
  /// freshly-allocated case).
  [[nodiscard]] std::byte* writable_all();

  /// Write access to the first `head_len` bytes with copy-on-write: if the
  /// underlying buffer is shared beyond `tolerated_body_refs` references
  /// (a backed Packet legitimately holds two — its backing handle and its
  /// payload view), only the header region is duplicated into a private
  /// head buffer and the payload tail stays shared.
  [[nodiscard]] std::byte* writable_head(std::size_t head_len,
                                         std::uint32_t tolerated_body_refs =
                                             1);

  /// Reference count of the buffer holding the payload bytes.
  [[nodiscard]] std::uint32_t use_count() const {
    return body_ != nullptr ? body_->refs : 0;
  }
  [[nodiscard]] bool shares_body_with(const FrameHandle& other) const {
    return body_ != nullptr && body_ == other.body_;
  }

  void reset() {
    release_ref(head_);
    release_ref(body_);
    head_ = nullptr;
    body_ = nullptr;
    body_off_ = 0;
  }

 private:
  FrameHandle(FrameBuf* head, FrameBuf* body, std::uint32_t body_off)
      : head_(head), body_(body), body_off_(body_off) {}

  static void add_ref(FrameBuf* buf) {
    if (buf != nullptr) {
      ++buf->refs;
    }
  }
  static void release_ref(FrameBuf* buf) {
    if (buf == nullptr) {
      return;
    }
    NETCLONE_CHECK(buf->refs > 0, "frame buffer over-released");
    if (--buf->refs == 0) {
      buf->pool->release(buf);
    }
  }

  FrameBuf* head_ = nullptr;  // engaged only when split
  FrameBuf* body_ = nullptr;  // whole frame, or the shared tail when split
  std::uint32_t body_off_ = 0;  // first body_ byte belonging to this frame
};

/// A packet payload: owned bytes for built packets, or a zero-copy view
/// into the backing frame for parsed packets. The view mode pins the
/// backing buffer, so the span stays valid for the payload's lifetime
/// (header patching never touches payload bytes).
class PayloadRef {
 public:
  PayloadRef() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): payloads assign from Frame
  PayloadRef(Frame owned) : owned_(std::move(owned)) {}
  PayloadRef(FrameHandle keepalive, std::span<const std::byte> view)
      : keepalive_(std::move(keepalive)), view_(view), is_view_(true) {}

  PayloadRef& operator=(Frame owned) {
    owned_ = std::move(owned);
    keepalive_.reset();
    view_ = {};
    is_view_ = false;
    return *this;
  }

  [[nodiscard]] std::span<const std::byte> bytes() const {
    return is_view_ ? view_ : std::span<const std::byte>{owned_};
  }
  // NOLINTNEXTLINE(google-explicit-constructor): payloads read as spans
  operator std::span<const std::byte>() const { return bytes(); }

  [[nodiscard]] std::size_t size() const { return bytes().size(); }
  [[nodiscard]] bool empty() const { return bytes().empty(); }
  [[nodiscard]] const std::byte* data() const { return bytes().data(); }

  void clear() {
    owned_.clear();
    keepalive_.reset();
    view_ = {};
    is_view_ = false;
  }

  [[nodiscard]] bool is_view() const { return is_view_; }
  /// True when this payload is the untouched parse-time view into the
  /// buffer `backing` also refers to — the fast-path precondition.
  [[nodiscard]] bool views_body_of(const FrameHandle& backing) const {
    return is_view_ && keepalive_.shares_body_with(backing);
  }

  /// Owned copy of the payload bytes.
  [[nodiscard]] Frame to_frame() const {
    const auto b = bytes();
    return Frame{b.begin(), b.end()};
  }

  friend bool operator==(const PayloadRef& a, const PayloadRef& b) {
    const auto ab = a.bytes();
    const auto bb = b.bytes();
    return ab.size() == bb.size() &&
           std::equal(ab.begin(), ab.end(), bb.begin());
  }
  friend bool operator==(const PayloadRef& a, const Frame& b) {
    const auto ab = a.bytes();
    return ab.size() == b.size() && std::equal(ab.begin(), ab.end(),
                                               b.begin());
  }

 private:
  Frame owned_{};
  FrameHandle keepalive_{};
  std::span<const std::byte> view_{};
  bool is_view_ = false;
};

/// Global switch for the zero-copy packet path. When disabled, parsing
/// from a FrameHandle falls back to the legacy copying parse and
/// serialization always rebuilds the frame — the comparison baseline for
/// bench_packet_path.
[[nodiscard]] bool packet_fastpath_enabled();
void set_packet_fastpath_enabled(bool enabled);

}  // namespace netclone::wire
