// IPv4 header with real Internet-checksum math.
//
// The NetClone switch rewrites the destination IP of requests (AddrT) and so
// must incrementally fix the header checksum, exactly as the P4 deparser
// does on hardware; tests verify the rewritten packets still checksum clean.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "wire/bytes.hpp"

namespace netclone::wire {

struct Ipv4Address {
  std::uint32_t value = 0;  // host order; serialized big-endian

  auto operator<=>(const Ipv4Address&) const = default;

  [[nodiscard]] static constexpr Ipv4Address from_octets(std::uint8_t a,
                                                         std::uint8_t b,
                                                         std::uint8_t c,
                                                         std::uint8_t d) {
    return Ipv4Address{static_cast<std::uint32_t>(a) << 24 |
                       static_cast<std::uint32_t>(b) << 16 |
                       static_cast<std::uint32_t>(c) << 8 |
                       static_cast<std::uint32_t>(d)};
  }

  [[nodiscard]] std::string to_string() const;
};

enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  std::uint16_t header_checksum = 0;
  Ipv4Address src{};
  Ipv4Address dst{};

  /// Serializes with a freshly computed checksum (the stored field is
  /// ignored on write and updated to the computed value).
  void serialize(ByteWriter& w);

  /// Serializes with a caller-chosen checksum value (in-place patching
  /// writes the old bytes as placeholders, then fixes them incrementally).
  /// Inline: the header codecs are the per-hop inner loop of the simulator.
  void serialize_with_checksum(ByteWriter& w, std::uint16_t checksum) const {
    std::byte* p = w.raw(kSize);
    store_u8(p, 0, 0x45);  // version 4, IHL 5
    store_u8(p, 1, dscp);
    store_u16(p, 2, total_length);
    store_u16(p, 4, identification);
    store_u16(p, 6, 0);  // flags + fragment offset: never fragmented here
    store_u8(p, 8, ttl);
    store_u8(p, 9, static_cast<std::uint8_t>(protocol));
    store_u16(p, 10, checksum);
    store_u32(p, 12, src.value);
    store_u32(p, 16, dst.value);
  }

  [[nodiscard]] static Ipv4Header parse(ByteReader& r) {
    const std::byte* p = r.raw(kSize);
    const std::uint8_t version_ihl = load_u8(p, 0);
    if (version_ihl != 0x45) {
      throw CodecError{"unsupported IPv4 version/IHL"};
    }
    Ipv4Header h;
    h.dscp = load_u8(p, 1);
    h.total_length = load_u16(p, 2);
    h.identification = load_u16(p, 4);
    // offsets 6-7: flags + fragment offset, always zero here
    h.ttl = load_u8(p, 8);
    h.protocol = static_cast<IpProto>(load_u8(p, 9));
    h.header_checksum = load_u16(p, 10);
    h.src.value = load_u32(p, 12);
    h.dst.value = load_u32(p, 16);
    return h;
  }

  /// Computes the RFC 1071 checksum of this header (checksum field as 0).
  [[nodiscard]] std::uint16_t compute_checksum() const;

  /// True if the stored checksum matches the header contents.
  [[nodiscard]] bool checksum_valid() const;
};

/// One's-complement sum fold used by IPv4/UDP checksums.
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::byte> data, std::uint32_t initial_sum = 0);

/// Accumulates 16-bit big-endian words of `data` into a running sum (no
/// final fold); combine with internet_checksum(..., sum) pseudo-header use.
[[nodiscard]] std::uint32_t checksum_accumulate(
    std::span<const std::byte> data, std::uint32_t sum);

}  // namespace netclone::wire
