// Resource auditor: the §4.1 implementation report, computed from the
// actual resources a program registered against the pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pisa/pipeline.hpp"

namespace netclone::pisa {

/// Total data-plane SRAM of the modeled ASIC. The paper reports its two
/// 2^17-slot 32-bit filter tables (1.05 MB) as 4.77% of switch memory,
/// which implies a 22 MB SRAM budget; we adopt that figure.
inline constexpr std::size_t kAsicSramBytes = 22 * 1024 * 1024;

struct ResourceUsage {
  std::string name;
  std::size_t stage = 0;
  std::size_t sram_bytes = 0;
  bool soft_state = false;
};

struct AuditReport {
  std::vector<ResourceUsage> resources;
  std::size_t stages_used = 0;      // highest occupied stage + 1
  std::size_t stages_available = 0;
  std::size_t sram_bytes_total = 0;
  double sram_fraction = 0.0;       // of kAsicSramBytes
  /// Whether this binary validates per-access legality (the checked
  /// build proves the program legal; release builds trust that proof).
  bool per_pass_checks = pipeline_checks_enabled();

  /// Formats a human-readable table mirroring the paper's §4.1 numbers.
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] AuditReport audit(const Pipeline& pipeline);

}  // namespace netclone::pisa
