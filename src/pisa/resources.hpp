// Data-plane resources available to a PISA switch program.
//
//   * ExactMatchTable — SRAM exact-match table, populated by the control
//     plane, looked up (once per pass) by the data plane.
//   * RegisterArray / RegisterScalar — stateful memory updated at line rate
//     through a single read-modify-write ALU operation per pass.
//   * HashUnit — CRC hash computation (Tofino's hash engines).
//   * RandomUnit — the ASIC's per-packet PRNG (used by RackSched's
//     power-of-two-choices sampling).
//
// Everything on the data-plane path is header-inline: a resource access in
// a release build is the operation itself (a flat-table probe, a register
// read-modify-write) with no dispatch and — when the per-pass legality
// checks are compiled out — no bookkeeping. See pipeline.hpp for the
// check policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/hash.hpp"
#include "common/prefetch.hpp"
#include "common/rng.hpp"
#include "pisa/pipeline.hpp"

namespace netclone::pisa {

/// Exact-match match-action table. Keys are 64-bit (wider keys are hashed
/// down by the caller); values are small action-data structs. Backed by a
/// flat open-addressing table presized by the control plane (`capacity`),
/// so a data-plane lookup is a mix64 probe into one contiguous array and
/// the data plane never observes a rehash.
template <typename Value>
class ExactMatchTable final : public StageResource {
 public:
  ExactMatchTable(Pipeline& pipeline, std::string name, std::size_t stage,
                  std::size_t capacity, std::size_t key_bytes,
                  std::size_t value_bytes)
      : StageResource(pipeline, std::move(name), stage),
        capacity_(capacity),
        key_bytes_(key_bytes),
        value_bytes_(value_bytes),
        entries_(capacity) {}

  // -- control plane (no pass required; models runtime entry updates) -----

  void insert(std::uint64_t key, Value value) {
    NETCLONE_CHECK(
        entries_.size() < capacity_ || entries_.find(key) != nullptr,
        "table capacity exceeded: " + name());
    entries_.insert_or_assign(key, std::move(value));
  }

  void erase(std::uint64_t key) { entries_.erase(key); }
  void clear_entries() { entries_.clear(); }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  // -- data plane ----------------------------------------------------------

  /// Single lookup per pass; returns nullptr on miss. The pointer is
  /// stable until the next control-plane mutation.
  [[nodiscard]] const Value* find(PipelinePass& pass, std::uint64_t key) {
    record_access(pass);
    return entries_.find(key);
  }

  /// Cache-warming hint for batched probes: pulls `key`'s home slot
  /// toward L1 ahead of find(). Not a data-plane table access — it models
  /// the deterministic SRAM pipelining of the ASIC, not an extra lookup —
  /// so it takes no pass and does not count against the single-access
  /// budget.
  void prefetch(std::uint64_t key) const { entries_.prefetch(key); }

  /// Single lookup per pass; returns nullopt on miss (value copy).
  [[nodiscard]] std::optional<Value> lookup(PipelinePass& pass,
                                            std::uint64_t key) {
    const Value* value = find(pass, key);
    if (value == nullptr) {
      return std::nullopt;
    }
    return *value;
  }

  [[nodiscard]] std::size_t sram_bytes() const override {
    return capacity_ * (key_bytes_ + value_bytes_);
  }
  [[nodiscard]] bool is_soft_state() const override { return false; }
  void reset() override {}  // control-plane state survives failures

 private:
  std::size_t capacity_;
  std::size_t key_bytes_;
  std::size_t value_bytes_;
  FlatMap64<Value> entries_;
};

/// Stateful register array. The only data-plane operation is `execute`,
/// mirroring a Tofino RegisterAction: one indexed read-modify-write whose
/// lambda body must be a simple ALU-expressible update. The index bounds
/// check stays on in every build (memory safety); the single-access check
/// follows the pipeline check policy.
template <typename T>
class RegisterArray final : public StageResource {
 public:
  RegisterArray(Pipeline& pipeline, std::string name, std::size_t stage,
                std::size_t size, T initial = T{})
      : StageResource(pipeline, std::move(name), stage),
        initial_(initial),
        cells_(size, initial) {}

  /// Runs `action(cell)` on cells_[index]; whatever it returns flows back
  /// to the packet (the RegisterAction "output"). Exactly one call per pass.
  template <typename Action>
  auto execute(PipelinePass& pass, std::size_t index, Action&& action) {
    record_access(pass);
    NETCLONE_CHECK(index < cells_.size(),
                   "register index out of range: " + name());
    return action(cells_[index]);
  }

  /// Convenience read-only RegisterAction.
  [[nodiscard]] T read(PipelinePass& pass, std::size_t index) {
    return execute(pass, index, [](T& cell) { return cell; });
  }

  /// Convenience write-only RegisterAction.
  void write(PipelinePass& pass, std::size_t index, T value) {
    execute(pass, index, [value](T& cell) {
      cell = value;
      return value;
    });
  }

  /// Cache-warming hint for batched passes (see ExactMatchTable): pulls
  /// the cell toward L1 ahead of execute(). Takes no pass; out-of-range
  /// indices are silently ignored (execute still bounds-checks).
  void prefetch(std::size_t index) const {
    if (index < cells_.size()) {
      prefetch_read(&cells_[index]);
    }
  }

  /// Control-plane / test peek: NOT a data-plane access.
  [[nodiscard]] T peek(std::size_t index) const { return cells_.at(index); }

  /// Control-plane / fault-injection write: NOT a data-plane access.
  /// Used to plant corrupted soft state (e.g. a stale filter fingerprint)
  /// without consuming a pipeline pass.
  void poke_write(std::size_t index, T value) {
    NETCLONE_CHECK(index < cells_.size(),
                   "register index out of range: " + name());
    cells_[index] = value;
  }

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] std::size_t sram_bytes() const override {
    return cells_.size() * sizeof(T);
  }
  [[nodiscard]] bool is_soft_state() const override { return true; }
  void reset() override {
    std::fill(cells_.begin(), cells_.end(), initial_);
  }

 private:
  T initial_;
  std::vector<T> cells_;
};

/// A single stateful register (e.g. NetClone's global SEQ counter).
template <typename T>
class RegisterScalar final : public StageResource {
 public:
  RegisterScalar(Pipeline& pipeline, std::string name, std::size_t stage,
                 T initial = T{})
      : StageResource(pipeline, std::move(name), stage),
        initial_(initial),
        cell_(initial) {}

  template <typename Action>
  auto execute(PipelinePass& pass, Action&& action) {
    record_access(pass);
    return action(cell_);
  }

  [[nodiscard]] T peek() const { return cell_; }

  [[nodiscard]] std::size_t sram_bytes() const override { return sizeof(T); }
  [[nodiscard]] bool is_soft_state() const override { return true; }
  void reset() override { cell_ = initial_; }

 private:
  T initial_;
  T cell_;
};

/// CRC hash engine. Stateless, so it may be used any number of times per
/// pass, but it still occupies a stage's hash-unit budget (audited).
class HashUnit final : public StageResource {
 public:
  HashUnit(Pipeline& pipeline, std::string name, std::size_t stage)
      : StageResource(pipeline, std::move(name), stage) {}

  /// CRC32 of a 32-bit input reduced modulo `buckets`.
  [[nodiscard]] std::uint32_t hash32(PipelinePass& pass, std::uint32_t value,
                                     std::uint32_t buckets) {
    record_access_stateless(pass);
    NETCLONE_CHECK(buckets > 0, "hash modulus must be positive");
    return crc32_u32(value) % buckets;
  }

  [[nodiscard]] std::size_t sram_bytes() const override { return 0; }
  [[nodiscard]] bool is_soft_state() const override { return false; }
  void reset() override {}
};

/// Per-packet hardware randomness.
class RandomUnit final : public StageResource {
 public:
  RandomUnit(Pipeline& pipeline, std::string name, std::size_t stage,
             std::uint64_t seed)
      : StageResource(pipeline, std::move(name), stage), rng_(seed) {}

  /// Uniform value in [0, bound).
  [[nodiscard]] std::uint32_t next_below(PipelinePass& pass,
                                         std::uint32_t bound) {
    record_access_stateless(pass);
    return static_cast<std::uint32_t>(rng_.next_below(bound));
  }

  [[nodiscard]] std::size_t sram_bytes() const override { return 0; }
  [[nodiscard]] bool is_soft_state() const override { return false; }
  void reset() override {}

 private:
  Rng rng_;
};

}  // namespace netclone::pisa
