#include "pisa/switch_device.hpp"

#include <span>
#include <utility>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace netclone::pisa {

SwitchDevice::SwitchDevice(sim::Scheduler& scheduler, std::string name,
                           SwitchParams params)
    : phys::Node(std::move(name)),
      sim_(scheduler),
      params_(params),
      pipeline_(params.stage_count) {}

SwitchDevice::~SwitchDevice() { sim_.cancel(egress_event_); }

void SwitchDevice::load_program(std::shared_ptr<SwitchProgram> program) {
  program_ = std::move(program);
}

std::size_t SwitchDevice::add_internal_port() {
  ++internal_ports_;
  return attach_egress(nullptr);
}

void SwitchDevice::set_loopback_port(std::size_t port) {
  if (port >= loopback_ports_.size()) {
    loopback_ports_.resize(port + 1, false);
  }
  loopback_ports_[port] = true;
}

void SwitchDevice::configure_multicast_group(std::uint16_t group,
                                             std::vector<std::size_t> ports) {
  mcast_groups_.insert_or_assign(group, std::move(ports));
}

void SwitchDevice::fail() {
  if (failed_) {
    return;
  }
  failed_ = true;
  // A reboot wipes all stateful (register) memory: server states, the SEQ
  // counter, and filter-table fingerprints — the soft state of §3.6.
  pipeline_.reset_soft_state();
  log_info("switch '" + name() + "' failed at " + to_string(sim_.now()));
}

void SwitchDevice::recover() {
  if (!failed_) {
    return;
  }
  failed_ = false;
  log_info("switch '" + name() + "' recovered at " + to_string(sim_.now()));
}

void SwitchDevice::wipe_soft_state() {
  ++stats_.soft_state_wipes;
  pipeline_.reset_soft_state();
  log_info("switch '" + name() + "' soft state wiped at " +
           to_string(sim_.now()));
}

void SwitchDevice::handle_frame(std::size_t port, wire::FrameHandle frame) {
  process(port, std::move(frame), /*recirculated=*/false);
}

void SwitchDevice::handle_burst(std::size_t port, phys::FrameBurst&& burst) {
  // Stage 1: batch parse. failed_ cannot flip mid-burst — a pending fail
  // event would have blocked the link's absorption — so the per-frame
  // check only mirrors the oracle's bookkeeping.
  burst_pkts_.clear();
  burst_whens_.clear();
  for (std::size_t i = 0; i < burst.size(); ++i) {
    ++stats_.rx_frames;
    if (failed_ || program_ == nullptr) {
      ++stats_.dropped_while_failed;
      continue;
    }
    wire::Packet pkt;
    try {
      pkt = wire::Packet::parse_backed(burst[i].frame);
    } catch (const wire::CodecError&) {
      ++stats_.parse_errors;
      continue;
    }
    burst[i].frame.reset();
    burst_pkts_.push_back(std::move(pkt));
    burst_whens_.push_back(burst[i].when);
  }
  if (burst_pkts_.empty()) {
    return;
  }
  // Stage 2: one prefetch sweep over the whole run, so stage 3's
  // match-table probes and register accesses hit warm lines.
  program_->warm_burst(std::span<wire::Packet>(burst_pkts_));
  // Stage 3: per-frame pipeline passes, in arrival order, each stamped
  // with its original delivery instant.
  for (std::size_t i = 0; i < burst_pkts_.size(); ++i) {
    process_parsed(std::move(burst_pkts_[i]), port, /*recirculated=*/false,
                   burst_whens_[i]);
  }
  burst_pkts_.clear();
  burst_whens_.clear();
}

void SwitchDevice::process(std::size_t port, wire::FrameHandle frame,
                           bool recirculated) {
  ++stats_.rx_frames;
  if (failed_ || program_ == nullptr) {
    ++stats_.dropped_while_failed;
    return;
  }

  wire::Packet pkt;
  try {
    pkt = wire::Packet::parse_backed(frame);
  } catch (const wire::CodecError&) {
    ++stats_.parse_errors;
    return;
  }
  frame.reset();  // the packet's backing now holds the only live references

  process_parsed(std::move(pkt), port, recirculated, sim_.now());
}

void SwitchDevice::process_parsed(wire::Packet pkt, std::size_t port,
                                  bool recirculated, SimTime arrival) {
  PacketMetadata md;
  md.ingress_port = port;
  md.is_recirculated = recirculated;

  PipelinePass pass{pipeline_};
  program_->on_ingress(pkt, md, pass);

  if (md.drop) {
    ++stats_.dropped_by_program;
    return;
  }

  // Resolve the output port set and schedule the egress after the fixed
  // pipeline traversal latency. The deparser (serialize) runs exactly
  // once; a multicast set then shares the resulting buffer across all
  // output ports by reference count. The common unicast case carries its
  // single port in the closure — no port-vector allocation per packet.
  //
  // Burst mode files the job in the egress FIFO instead (one armed event
  // for any pipeline depth); the fire instant and tie-break seq are fixed
  // here, so both paths run the deparser at identical points in the
  // event order.
  if (md.multicast_group) {
    const std::vector<std::size_t>* ports =
        mcast_groups_.find(*md.multicast_group);
    if (ports == nullptr) {
      ++stats_.dropped_by_program;
      return;
    }
    if (ports->size() > 1) {
      stats_.multicast_copies += ports->size() - 1;
    }
    ++stats_.egress_scheduled;
    if (phys::burst_enabled()) {
      push_egress(PendingEgress{arrival + params_.pipeline_latency,
                                sim_.reserve_seq(), std::move(pkt), 0,
                                *ports});
      return;
    }
    sim_.schedule_after(params_.pipeline_latency,
                        [this, out_ports = *ports,
                         pkt = std::move(pkt)]() mutable {
                          if (failed_) {
                            ++stats_.flushed_in_pipeline;
                            return;
                          }
                          const wire::FrameHandle bytes =
                              pkt.serialize_pooled();
                          for (const std::size_t p : out_ports) {
                            emit(p, bytes);
                          }
                        });
  } else if (md.egress_port) {
    ++stats_.egress_scheduled;
    if (phys::burst_enabled()) {
      push_egress(PendingEgress{arrival + params_.pipeline_latency,
                                sim_.reserve_seq(), std::move(pkt),
                                *md.egress_port, {}});
      return;
    }
    sim_.schedule_after(params_.pipeline_latency,
                        [this, port = *md.egress_port,
                         pkt = std::move(pkt)]() mutable {
                          if (failed_) {
                            ++stats_.flushed_in_pipeline;
                            return;
                          }
                          emit(port, pkt.serialize_pooled());
                        });
  } else {
    ++stats_.dropped_by_program;  // program made no forwarding decision
  }
}

void SwitchDevice::push_egress(PendingEgress record) {
  // Fire times are monotone: every record fires arrival + latency after
  // an arrival the clock has already reached, so the FIFO is sorted by
  // (fire_at, seq) by construction.
  NETCLONE_CHECK(egress_fifo_.empty() ||
                     egress_fifo_.back().fire_at <= record.fire_at,
                 "egress FIFO fire times must be monotone");
  egress_fifo_.push_back(std::move(record));
  if (egress_fifo_.size() == 1) {
    arm_egress();
  }
}

void SwitchDevice::arm_egress() {
  const PendingEgress& head = egress_fifo_.front();
  egress_event_ = sim_.schedule_at_seq(head.fire_at, head.seq,
                                       [this] { drain_egress(); });
}

void SwitchDevice::drain_egress() {
  egress_event_ = sim::EventId{};
  for (;;) {
    PendingEgress record = std::move(egress_fifo_.front());
    egress_fifo_.pop_front();
    // Firing transmits onto links and may schedule recirculations — all
    // real events the next probe sees, so no horizon is needed here: a
    // successor is absorbed only if nothing (including this record's own
    // consequences) is ordered before its reserved event.
    fire_egress(record);
    if (egress_fifo_.empty()) {
      return;
    }
    if (!sim_.try_absorb_event(egress_fifo_.front().fire_at,
                               egress_fifo_.front().seq)) {
      arm_egress();
      return;
    }
  }
}

void SwitchDevice::fire_egress(PendingEgress& record) {
  if (failed_) {
    ++stats_.flushed_in_pipeline;
    return;
  }
  if (record.mcast_ports.empty()) {
    emit(record.unicast_port, record.pkt.serialize_pooled());
    return;
  }
  const wire::FrameHandle bytes = record.pkt.serialize_pooled();
  for (const std::size_t p : record.mcast_ports) {
    emit(p, bytes);
  }
}

void SwitchDevice::emit(std::size_t port, wire::FrameHandle bytes) {
  if (is_loopback(port)) {
    ++stats_.recirculated;
    sim_.schedule_after(
        params_.recirculation_latency,
        [this, port, bytes = std::move(bytes)]() mutable {
          process(port, std::move(bytes), /*recirculated=*/true);
        });
    return;
  }
  ++stats_.tx_frames;
  send(port, std::move(bytes));
}

}  // namespace netclone::pisa
