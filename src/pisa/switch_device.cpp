#include "pisa/switch_device.hpp"

#include <utility>

#include "common/logging.hpp"

namespace netclone::pisa {

SwitchDevice::SwitchDevice(sim::Scheduler& scheduler, std::string name,
                           SwitchParams params)
    : phys::Node(std::move(name)),
      sim_(scheduler),
      params_(params),
      pipeline_(params.stage_count) {}

void SwitchDevice::load_program(std::shared_ptr<SwitchProgram> program) {
  program_ = std::move(program);
}

std::size_t SwitchDevice::add_internal_port() {
  ++internal_ports_;
  return attach_egress(nullptr);
}

void SwitchDevice::set_loopback_port(std::size_t port) {
  if (port >= loopback_ports_.size()) {
    loopback_ports_.resize(port + 1, false);
  }
  loopback_ports_[port] = true;
}

void SwitchDevice::configure_multicast_group(std::uint16_t group,
                                             std::vector<std::size_t> ports) {
  mcast_groups_.insert_or_assign(group, std::move(ports));
}

void SwitchDevice::fail() {
  if (failed_) {
    return;
  }
  failed_ = true;
  // A reboot wipes all stateful (register) memory: server states, the SEQ
  // counter, and filter-table fingerprints — the soft state of §3.6.
  pipeline_.reset_soft_state();
  log_info("switch '" + name() + "' failed at " + to_string(sim_.now()));
}

void SwitchDevice::recover() {
  if (!failed_) {
    return;
  }
  failed_ = false;
  log_info("switch '" + name() + "' recovered at " + to_string(sim_.now()));
}

void SwitchDevice::wipe_soft_state() {
  ++stats_.soft_state_wipes;
  pipeline_.reset_soft_state();
  log_info("switch '" + name() + "' soft state wiped at " +
           to_string(sim_.now()));
}

void SwitchDevice::handle_frame(std::size_t port, wire::FrameHandle frame) {
  process(port, std::move(frame), /*recirculated=*/false);
}

void SwitchDevice::process(std::size_t port, wire::FrameHandle frame,
                           bool recirculated) {
  ++stats_.rx_frames;
  if (failed_ || program_ == nullptr) {
    ++stats_.dropped_while_failed;
    return;
  }

  wire::Packet pkt;
  try {
    pkt = wire::Packet::parse_backed(frame);
  } catch (const wire::CodecError&) {
    ++stats_.parse_errors;
    return;
  }
  frame.reset();  // the packet's backing now holds the only live references

  PacketMetadata md;
  md.ingress_port = port;
  md.is_recirculated = recirculated;

  PipelinePass pass{pipeline_};
  program_->on_ingress(pkt, md, pass);

  if (md.drop) {
    ++stats_.dropped_by_program;
    return;
  }

  // Resolve the output port set and schedule the egress after the fixed
  // pipeline traversal latency. The deparser (serialize) runs exactly
  // once; a multicast set then shares the resulting buffer across all
  // output ports by reference count. The common unicast case carries its
  // single port in the closure — no port-vector allocation per packet.
  if (md.multicast_group) {
    const std::vector<std::size_t>* ports =
        mcast_groups_.find(*md.multicast_group);
    if (ports == nullptr) {
      ++stats_.dropped_by_program;
      return;
    }
    if (ports->size() > 1) {
      stats_.multicast_copies += ports->size() - 1;
    }
    ++stats_.egress_scheduled;
    sim_.schedule_after(params_.pipeline_latency,
                        [this, out_ports = *ports,
                         pkt = std::move(pkt)]() mutable {
                          if (failed_) {
                            ++stats_.flushed_in_pipeline;
                            return;
                          }
                          const wire::FrameHandle bytes =
                              pkt.serialize_pooled();
                          for (const std::size_t p : out_ports) {
                            emit(p, bytes);
                          }
                        });
  } else if (md.egress_port) {
    ++stats_.egress_scheduled;
    sim_.schedule_after(params_.pipeline_latency,
                        [this, port = *md.egress_port,
                         pkt = std::move(pkt)]() mutable {
                          if (failed_) {
                            ++stats_.flushed_in_pipeline;
                            return;
                          }
                          emit(port, pkt.serialize_pooled());
                        });
  } else {
    ++stats_.dropped_by_program;  // program made no forwarding decision
  }
}

void SwitchDevice::emit(std::size_t port, wire::FrameHandle bytes) {
  if (is_loopback(port)) {
    ++stats_.recirculated;
    sim_.schedule_after(
        params_.recirculation_latency,
        [this, port, bytes = std::move(bytes)]() mutable {
          process(port, std::move(bytes), /*recirculated=*/true);
        });
    return;
  }
  ++stats_.tx_frames;
  send(port, std::move(bytes));
}

}  // namespace netclone::pisa
