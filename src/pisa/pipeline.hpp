// PISA pipeline model — the architectural skeleton of a Tofino-class ASIC.
//
// The constraints this model enforces are the ones that drive NetClone's
// design (paper §2.3, §3.4):
//
//   1. Every table / register array is statically bound to ONE match-action
//      stage at build time ("compile time" on hardware).
//   2. A packet traverses stages strictly in order: once a pass has touched
//      stage k, it can never access a resource in a stage < k.
//   3. A stateful resource can be accessed AT MOST ONCE per pass (there is
//      one ALU path per register per packet). Reading the server state
//      table for two different servers is therefore impossible — exactly
//      why the paper introduces the shadow table.
//
// Violations throw CheckFailure in all build modes: a program that violates
// them would simply not compile for the ASIC, so no simulation result may
// silently depend on such an access pattern.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace netclone::pisa {

class StageResource;

/// Tofino has 12 ingress match-action stages per pipeline.
inline constexpr std::size_t kDefaultStageCount = 12;

class Pipeline {
 public:
  explicit Pipeline(std::size_t stage_count = kDefaultStageCount)
      : stage_count_(stage_count) {}

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  [[nodiscard]] std::size_t stage_count() const { return stage_count_; }

  /// Called by StageResource's constructor.
  void register_resource(StageResource* resource);

  [[nodiscard]] const std::vector<StageResource*>& resources() const {
    return resources_;
  }

  /// Clears all stateful (register) resources — what a switch reboot does
  /// to soft state (§3.6 "Switch failures"). Match-action table entries are
  /// control-plane state and survive (the controller re-installs them).
  void reset_soft_state();

  /// Monotonic pass-id source used to detect double access within a pass.
  [[nodiscard]] std::uint64_t next_pass_id() { return ++pass_counter_; }

 private:
  std::size_t stage_count_;
  std::vector<StageResource*> resources_;
  std::uint64_t pass_counter_ = 0;
};

/// One packet's traversal of the pipeline. Create one per packet, pass it
/// to every data-plane resource access.
class PipelinePass {
 public:
  explicit PipelinePass(Pipeline& pipeline)
      : pipeline_(pipeline), id_(pipeline.next_pass_id()) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Validates and records an access to `resource` in its bound stage.
  /// Throws CheckFailure if the access goes backwards or repeats.
  void access(StageResource& resource);

  /// Stage-order check only, for stateless units (hash, random) that may
  /// produce several values for one packet within their stage.
  void access_stateless(StageResource& resource);

  [[nodiscard]] std::size_t current_stage() const { return current_stage_; }

 private:
  Pipeline& pipeline_;
  std::uint64_t id_;
  std::size_t current_stage_ = 0;
};

}  // namespace netclone::pisa
