// PISA pipeline model — the architectural skeleton of a Tofino-class ASIC.
//
// The constraints this model enforces are the ones that drive NetClone's
// design (paper §2.3, §3.4):
//
//   1. Every table / register array is statically bound to ONE match-action
//      stage at build time ("compile time" on hardware).
//   2. A packet traverses stages strictly in order: once a pass has touched
//      stage k, it can never access a resource in a stage < k.
//   3. A stateful resource can be accessed AT MOST ONCE per pass (there is
//      one ALU path per register per packet). Reading the server state
//      table for two different servers is therefore impossible — exactly
//      why the paper introduces the shadow table.
//
// Enforcement is a compile-time policy (NETCLONE_PIPELINE_CHECKS): checked
// builds (Debug, sanitizers, the dedicated checked CI lane) validate every
// access and throw CheckFailure on violations — a program that violates
// them would simply not compile for the ASIC. Release builds compile the
// per-access checks out: legality is a static property of the program's
// access pattern, proven by running the full suite in the checked lanes,
// so the release data plane only pays for the accesses themselves.
// Construction-time checks (stage bounds, resource budget) and memory
// safety checks (register index bounds) remain on in every build.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

// 1 = per-access legality checks (stage monotonicity, single access per
// stateful resource per pass) are compiled in; 0 = compiled out. Normally
// injected by CMake (option NETCLONE_PIPELINE_CHECKS, AUTO = on for Debug
// and sanitizer builds); the fallback below covers non-CMake consumers.
#ifndef NETCLONE_PIPELINE_CHECKS
#ifdef NDEBUG
#define NETCLONE_PIPELINE_CHECKS 0
#else
#define NETCLONE_PIPELINE_CHECKS 1
#endif
#endif

namespace netclone::pisa {

class PipelinePass;
class StageResource;

/// Tofino has 12 ingress match-action stages per pipeline.
inline constexpr std::size_t kDefaultStageCount = 12;

/// Upper bound on resources registered against one pipeline. Keeps the
/// per-pass access bitset in a few inline words (kMaxResources / 64).
inline constexpr std::size_t kMaxResources = 256;

/// Whether this build validates per-access legality (see file header).
[[nodiscard]] inline constexpr bool pipeline_checks_enabled() {
  return NETCLONE_PIPELINE_CHECKS != 0;
}

class Pipeline {
 public:
  explicit Pipeline(std::size_t stage_count = kDefaultStageCount)
      : stage_count_(stage_count) {}

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  [[nodiscard]] std::size_t stage_count() const { return stage_count_; }

  /// Called by StageResource's constructor; assigns the resource its
  /// dense per-pipeline index (the bit it owns in the per-pass bitset).
  void register_resource(StageResource* resource);

  [[nodiscard]] const std::vector<StageResource*>& resources() const {
    return resources_;
  }

  /// Clears all stateful (register) resources — what a switch reboot does
  /// to soft state (§3.6 "Switch failures"). Match-action table entries are
  /// control-plane state and survive (the controller re-installs them).
  void reset_soft_state();

  /// Monotonic pass-id source (trace correlation; see PipelinePass::id).
  [[nodiscard]] std::uint64_t next_pass_id() { return ++pass_counter_; }

 private:
  std::size_t stage_count_;
  std::vector<StageResource*> resources_;
  std::uint64_t pass_counter_ = 0;
};

/// Base class for data-plane resources: binds a named resource to a
/// pipeline stage and to a dense index used by the per-pass access bitset.
class StageResource {
 public:
  StageResource(Pipeline& pipeline, std::string name, std::size_t stage);
  virtual ~StageResource() = default;

  StageResource(const StageResource&) = delete;
  StageResource& operator=(const StageResource&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t stage() const { return stage_; }
  /// Dense registration index within the owning pipeline.
  [[nodiscard]] std::size_t index() const { return index_; }

  /// SRAM footprint in bytes, for the resource auditor (§4.1).
  [[nodiscard]] virtual std::size_t sram_bytes() const = 0;

  /// Whether this is soft state wiped by a switch failure.
  [[nodiscard]] virtual bool is_soft_state() const = 0;

  /// Clears soft state (no-op for control-plane tables).
  virtual void reset() = 0;

 protected:
  /// Every stateful data-plane entry point must call this first.
  inline void record_access(PipelinePass& pass);
  /// Stage-order-only variant for stateless units (hash, random).
  inline void record_access_stateless(PipelinePass& pass);

 private:
  friend class Pipeline;
  friend class PipelinePass;

  std::string name_;
  std::size_t stage_;
  std::size_t index_ = 0;
};

/// One packet's traversal of the pipeline. Create one per packet, pass it
/// to every data-plane resource access.
class PipelinePass {
 public:
  explicit PipelinePass(Pipeline& pipeline) : id_(pipeline.next_pass_id()) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Validates and records an access to `resource` in its bound stage.
  /// Checked builds throw CheckFailure if the access goes backwards or
  /// repeats; release builds compile this down to nothing.
  inline void access(StageResource& resource);

  /// Stage-order check only, for stateless units (hash, random) that may
  /// produce several values for one packet within their stage.
  inline void access_stateless(StageResource& resource);

#if NETCLONE_PIPELINE_CHECKS
  [[nodiscard]] std::size_t current_stage() const { return current_stage_; }
#endif

 private:
#if NETCLONE_PIPELINE_CHECKS
  [[noreturn]] void fail_stage_order(const StageResource& resource) const;
  [[noreturn]] static void fail_double_access(const StageResource& resource);
#endif

  std::uint64_t id_;
#if NETCLONE_PIPELINE_CHECKS
  std::size_t current_stage_ = 0;
  std::array<std::uint64_t, kMaxResources / 64> accessed_{};
#endif
};

inline void PipelinePass::access(StageResource& resource) {
#if NETCLONE_PIPELINE_CHECKS
  if (resource.stage_ < current_stage_) {
    fail_stage_order(resource);
  }
  std::uint64_t& word = accessed_[resource.index_ >> 6U];
  const std::uint64_t bit = std::uint64_t{1} << (resource.index_ & 63U);
  if ((word & bit) != 0) {
    fail_double_access(resource);
  }
  word |= bit;
  current_stage_ = resource.stage_;
#else
  (void)resource;
#endif
}

inline void PipelinePass::access_stateless(StageResource& resource) {
#if NETCLONE_PIPELINE_CHECKS
  if (resource.stage_ < current_stage_) {
    fail_stage_order(resource);
  }
  current_stage_ = resource.stage_;
#else
  (void)resource;
#endif
}

inline void StageResource::record_access(PipelinePass& pass) {
  pass.access(*this);
}

inline void StageResource::record_access_stateless(PipelinePass& pass) {
  pass.access_stateless(*this);
}

}  // namespace netclone::pisa
