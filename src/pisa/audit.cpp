#include "pisa/audit.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "pisa/resources.hpp"

namespace netclone::pisa {

AuditReport audit(const Pipeline& pipeline) {
  AuditReport report;
  report.stages_available = pipeline.stage_count();
  std::size_t max_stage = 0;
  bool any = false;
  for (const StageResource* r : pipeline.resources()) {
    report.resources.push_back(ResourceUsage{r->name(), r->stage(),
                                             r->sram_bytes(),
                                             r->is_soft_state()});
    report.sram_bytes_total += r->sram_bytes();
    max_stage = std::max(max_stage, r->stage());
    any = true;
  }
  report.stages_used = any ? max_stage + 1 : 0;
  report.sram_fraction = static_cast<double>(report.sram_bytes_total) /
                         static_cast<double>(kAsicSramBytes);
  std::sort(report.resources.begin(), report.resources.end(),
            [](const ResourceUsage& a, const ResourceUsage& b) {
              return a.stage != b.stage ? a.stage < b.stage
                                        : a.name < b.name;
            });
  return report;
}

std::string AuditReport::to_string() const {
  std::ostringstream os;
  char line[160];
  os << "  stage  resource                    SRAM (bytes)  state\n";
  for (const ResourceUsage& r : resources) {
    std::snprintf(line, sizeof(line), "  %5zu  %-26s  %12zu  %s\n", r.stage,
                  r.name.c_str(), r.sram_bytes,
                  r.soft_state ? "soft (register)" : "control-plane");
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "  match-action stages used: %zu of %zu\n", stages_used,
                stages_available);
  os << line;
  std::snprintf(line, sizeof(line),
                "  SRAM total: %.2f MB (%.2f%% of the %zu MB ASIC budget)\n",
                static_cast<double>(sram_bytes_total) / (1024.0 * 1024.0),
                sram_fraction * 100.0, kAsicSramBytes / (1024 * 1024));
  os << line;
  os << (per_pass_checks
             ? "  per-pass legality checks: compiled in (checked build)\n"
             : "  per-pass legality checks: compiled out (release build; "
               "legality proven by the checked lanes)\n");
  return os.str();
}

}  // namespace netclone::pisa
