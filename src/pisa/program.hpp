// Switch-program interface: what a P4 program is to the hardware.
#pragma once

#include <cstdint>
#include <optional>

#include "pisa/pipeline.hpp"
#include "wire/frame.hpp"

namespace netclone::pisa {

/// Per-packet intrinsic metadata, set by the program to steer the packet.
struct PacketMetadata {
  std::size_t ingress_port = 0;
  /// Unicast egress decision; ignored when a multicast group is set.
  std::optional<std::size_t> egress_port{};
  /// Packet replication engine group; all member ports get a copy.
  std::optional<std::uint16_t> multicast_group{};
  bool drop = false;
  /// True when this packet re-entered ingress through a loopback port.
  bool is_recirculated = false;
};

class SwitchProgram {
 public:
  virtual ~SwitchProgram() = default;

  /// Ingress control: reads/writes the packet headers, accesses pipeline
  /// resources through `pass`, and steers via `md`.
  virtual void on_ingress(wire::Packet& pkt, PacketMetadata& md,
                          PipelinePass& pass) = 0;

  /// Human-readable program name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace netclone::pisa
