// Switch-program interface: what a P4 program is to the hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "pisa/pipeline.hpp"
#include "wire/frame.hpp"

namespace netclone::pisa {

/// Per-packet intrinsic metadata, set by the program to steer the packet.
struct PacketMetadata {
  std::size_t ingress_port = 0;
  /// Unicast egress decision; ignored when a multicast group is set.
  std::optional<std::size_t> egress_port{};
  /// Packet replication engine group; all member ports get a copy.
  std::optional<std::uint16_t> multicast_group{};
  bool drop = false;
  /// True when this packet re-entered ingress through a loopback port.
  bool is_recirculated = false;
};

class SwitchProgram {
 public:
  virtual ~SwitchProgram() = default;

  /// Ingress control: reads/writes the packet headers, accesses pipeline
  /// resources through `pass`, and steers via `md`.
  virtual void on_ingress(wire::Packet& pkt, PacketMetadata& md,
                          PipelinePass& pass) = 0;

  /// Burst warm-up hook: called once per received burst, with every
  /// parsed packet, before their per-packet on_ingress passes run.
  /// Programs issue match-table and register prefetches across the whole
  /// run here so the per-packet probes hit warm cache lines. No pass is
  /// provided — the hook must not perform data-plane accesses or mutate
  /// any state, only hint the cache. Default: no-op.
  virtual void warm_burst(std::span<wire::Packet> pkts) { (void)pkts; }

  /// Human-readable program name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace netclone::pisa
