// The switch as a topology node: parser -> ingress pipeline -> deparser ->
// packet replication (multicast) / recirculation / egress.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "phys/burst.hpp"
#include "phys/node.hpp"
#include "pisa/pipeline.hpp"
#include "pisa/program.hpp"
#include "sim/scheduler.hpp"

namespace netclone::pisa {

struct SwitchParams {
  /// Fixed ingress-to-egress latency of one pipeline traversal. Tofino's
  /// port-to-port latency is a few hundred nanoseconds.
  SimTime pipeline_latency = SimTime::nanoseconds(400);
  /// Extra latency for a recirculation loop (loopback port turnaround).
  SimTime recirculation_latency = SimTime::nanoseconds(450);
  std::size_t stage_count = kDefaultStageCount;
};

struct SwitchStats {
  std::uint64_t rx_frames = 0;
  std::uint64_t tx_frames = 0;
  std::uint64_t dropped_by_program = 0;
  std::uint64_t recirculated = 0;
  std::uint64_t multicast_copies = 0;
  std::uint64_t parse_errors = 0;
  /// Frames discarded at ingress because the switch was down. Every
  /// rx_frame lands in exactly one of: parse_errors, dropped_by_program,
  /// dropped_while_failed, or egress_scheduled — the conservation
  /// equation the invariant auditor checks.
  std::uint64_t dropped_while_failed = 0;
  /// Pipeline passes that scheduled an egress event.
  std::uint64_t egress_scheduled = 0;
  /// Egress events whose frame was discarded because the switch failed
  /// while it was traversing the pipeline.
  std::uint64_t flushed_in_pipeline = 0;
  /// Mid-run register wipes injected via wipe_soft_state().
  std::uint64_t soft_state_wipes = 0;
};

class SwitchDevice : public phys::Node {
 public:
  SwitchDevice(sim::Scheduler& scheduler, std::string name,
               SwitchParams params = {});
  ~SwitchDevice() override;

  /// Installs the ingress program. The program's resources must have been
  /// built against pipeline().
  void load_program(std::shared_ptr<SwitchProgram> program);

  [[nodiscard]] Pipeline& pipeline() { return pipeline_; }
  [[nodiscard]] const Pipeline& pipeline() const { return pipeline_; }

  /// Marks a port as loopback: frames egressing there re-enter ingress
  /// after the recirculation latency (§3.4 "Cloning in the switch").
  void set_loopback_port(std::size_t port);

  /// Adds a port that exists on the ASIC but is not cabled; used to create
  /// the loopback port without a link.
  std::size_t add_internal_port();

  // -- packet replication engine (control plane) ---------------------------
  void configure_multicast_group(std::uint16_t group,
                                 std::vector<std::size_t> ports);

  // -- failure injection (§5.6.4) ------------------------------------------
  /// Takes the switch down: every frame is lost and all register (soft)
  /// state is wiped, as on a reboot.
  void fail();
  /// Brings the switch back. Match-action entries survive (control-plane
  /// state); registers restart zeroed.
  void recover();
  [[nodiscard]] bool failed() const { return failed_; }
  /// Soft-state fault: wipes all register memory mid-run while the
  /// switch keeps forwarding (models a partial reset / controller bug
  /// rather than a full reboot). Match-action entries survive.
  void wipe_soft_state();

  [[nodiscard]] const SwitchStats& stats() const { return stats_; }

  void handle_frame(std::size_t port, wire::FrameHandle frame) override;

  /// Burst ingress (burst mode only — links fall back to handle_frame for
  /// single-frame runs): batch-parses the run, lets the program prefetch
  /// every match-table home slot it is about to probe (warm_burst), then
  /// runs each frame's pipeline pass in order at its recorded arrival
  /// instant. Externally indistinguishable from per-frame delivery.
  void handle_burst(std::size_t port, phys::FrameBurst&& burst) override;

  /// Everything a pipeline pass schedules is at least one traversal out,
  /// so links may coalesce deliveries across that window (see Node).
  [[nodiscard]] SimTime burst_horizon() const override {
    return params_.pipeline_latency;
  }

 private:
  /// A deparser+egress job waiting out its pipeline traversal. Burst mode
  /// keeps these in a FIFO (fire times are monotone: every record fires
  /// exactly one pipeline latency after its arrival) with one armed
  /// scheduler event for the head, mirroring the link's batched FIFO; the
  /// seq is reserved when the pass decides, so tie-breaks are identical
  /// to the oracle's eagerly scheduled per-packet events.
  struct PendingEgress {
    SimTime fire_at{};
    std::uint64_t seq = 0;
    wire::Packet pkt{};
    std::size_t unicast_port = 0;
    /// Resolved multicast port set; empty means unicast via unicast_port.
    std::vector<std::size_t> mcast_ports;
  };

  void process(std::size_t port, wire::FrameHandle frame, bool recirculated);
  /// The pipeline pass proper, shared by both rx paths. `arrival` is the
  /// frame's ingress instant (== now() except inside a burst, where
  /// earlier frames of the run carry their original stamps).
  void process_parsed(wire::Packet pkt, std::size_t port, bool recirculated,
                      SimTime arrival);
  void push_egress(PendingEgress record);
  void arm_egress();
  /// Fires the head record, then keeps absorbing successor records whose
  /// reserved events the scheduler proves would fire next anyway — the
  /// clock advances through each, so every deparse/emit happens at
  /// exactly the instant its own event would have run.
  void drain_egress();
  void fire_egress(PendingEgress& record);
  /// Hands one shared frame handle to an output port. Every port of a
  /// multicast set receives a refcount bump of the same serialized bytes —
  /// the deparser runs once per pipeline pass, not once per copy.
  void emit(std::size_t port, wire::FrameHandle bytes);

  [[nodiscard]] bool is_loopback(std::size_t port) const {
    return port < loopback_ports_.size() && loopback_ports_[port];
  }

  sim::Scheduler& sim_;
  SwitchParams params_;
  Pipeline pipeline_;
  std::shared_ptr<SwitchProgram> program_;
  /// Dense per-port loopback flags (ports are small dense integers).
  std::vector<bool> loopback_ports_;
  FlatMap64<std::vector<std::size_t>> mcast_groups_;
  std::size_t internal_ports_ = 0;
  bool failed_ = false;
  /// Burst-mode egress FIFO + its single armed event (empty/unused when
  /// burst mode is off — the oracle path schedules one event per packet).
  std::deque<PendingEgress> egress_fifo_;
  sim::EventId egress_event_{};
  /// Scratch for handle_burst (parsed packets + arrival stamps), kept as
  /// members so per-burst work does not reallocate.
  std::vector<wire::Packet> burst_pkts_;
  std::vector<SimTime> burst_whens_;
  SwitchStats stats_;
};

}  // namespace netclone::pisa
