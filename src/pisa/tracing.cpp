#include "pisa/tracing.hpp"

#include <cstdio>

namespace netclone::pisa {

void TracingProgram::on_ingress(wire::Packet& pkt, PacketMetadata& md,
                                PipelinePass& pass) {
  if (!enabled_) [[likely]] {
    inner_->on_ingress(pkt, md, pass);
    return;
  }
  record_ingress(pkt, md, pass);
}

void TracingProgram::record_ingress(wire::Packet& pkt, PacketMetadata& md,
                                    PipelinePass& pass) {
  TraceRecord record;
  record.pass_id = pass.id();
  record.recirculated = md.is_recirculated;
  record.is_netclone = pkt.has_netclone();

  inner_->on_ingress(pkt, md, pass);

  if (pkt.has_netclone()) {
    const wire::NetCloneHeader& nc = pkt.nc();
    record.is_request = nc.is_request();
    record.clo = static_cast<std::uint8_t>(nc.clo);
    record.req_id = nc.req_id;
    record.client_id = nc.client_id;
    record.client_seq = nc.client_seq;
  }
  record.dropped = md.drop;
  record.multicast = md.multicast_group.has_value();
  if (md.egress_port) {
    record.egress_port = *md.egress_port;
  }
  records_.push_back(record);
  ++total_;
  while (records_.size() > capacity_) {
    records_.pop_front();
  }
}

std::string TraceRecord::to_string() const {
  char head[120];
  std::snprintf(head, sizeof(head),
                "pass=%llu %s%s clo=%u req=%u client=%u/%u -> ",
                static_cast<unsigned long long>(pass_id),
                is_netclone ? (is_request ? "REQ" : "RESP") : "L3",
                recirculated ? "(recirc)" : "", clo, req_id, client_id,
                client_seq);
  std::string out{head};
  if (dropped) {
    out += "DROP";
  } else if (multicast) {
    out += "MCAST";
  } else {
    out += "FWD port=" + std::to_string(egress_port);
  }
  return out;
}

}  // namespace netclone::pisa
