#include "pisa/pipeline.hpp"

namespace netclone::pisa {

StageResource::StageResource(Pipeline& pipeline, std::string name,
                             std::size_t stage)
    : name_(std::move(name)), stage_(stage) {
  pipeline.register_resource(this);
}

void Pipeline::register_resource(StageResource* resource) {
  NETCLONE_CHECK(resource->stage() < stage_count_,
                 "resource '" + resource->name() +
                     "' bound beyond the last pipeline stage");
  NETCLONE_CHECK(resources_.size() < kMaxResources,
                 "pipeline resource budget exceeded registering '" +
                     resource->name() + "'");
  resource->index_ = resources_.size();
  resources_.push_back(resource);
}

void Pipeline::reset_soft_state() {
  for (StageResource* r : resources_) {
    if (r->is_soft_state()) {
      r->reset();
    }
  }
}

#if NETCLONE_PIPELINE_CHECKS
// Cold failure paths live out of line so the inline access fast path
// carries no string machinery.
void PipelinePass::fail_stage_order(const StageResource& resource) const {
  check_failed("resource.stage_ >= current_stage_",
               "stage-order violation: resource '" + resource.name_ +
                   "' in stage " + std::to_string(resource.stage_) +
                   " accessed after stage " +
                   std::to_string(current_stage_));
}

void PipelinePass::fail_double_access(const StageResource& resource) {
  check_failed("single access per stateful resource per pass",
               "double access to '" + resource.name_ +
                   "' in one pipeline pass (one ALU op per register per "
                   "packet — use a shadow copy)");
}
#endif

}  // namespace netclone::pisa
