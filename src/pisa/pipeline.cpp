#include "pisa/pipeline.hpp"

#include "pisa/resources.hpp"

namespace netclone::pisa {

void Pipeline::register_resource(StageResource* resource) {
  NETCLONE_CHECK(resource->stage() < stage_count_,
                 "resource '" + resource->name() +
                     "' bound beyond the last pipeline stage");
  resources_.push_back(resource);
}

void Pipeline::reset_soft_state() {
  for (StageResource* r : resources_) {
    if (r->is_soft_state()) {
      r->reset();
    }
  }
}

void PipelinePass::access(StageResource& resource) {
  NETCLONE_CHECK(resource.stage_ >= current_stage_,
                 "stage-order violation: resource '" + resource.name_ +
                     "' in stage " + std::to_string(resource.stage_) +
                     " accessed after stage " +
                     std::to_string(current_stage_));
  NETCLONE_CHECK(resource.last_pass_id_ != id_,
                 "double access to '" + resource.name_ +
                     "' in one pipeline pass (one ALU op per register per "
                     "packet — use a shadow copy)");
  resource.last_pass_id_ = id_;
  current_stage_ = resource.stage_;
}

void PipelinePass::access_stateless(StageResource& resource) {
  NETCLONE_CHECK(resource.stage_ >= current_stage_,
                 "stage-order violation: resource '" + resource.name_ +
                     "' in stage " + std::to_string(resource.stage_) +
                     " accessed after stage " +
                     std::to_string(current_stage_));
  current_stage_ = resource.stage_;
}

}  // namespace netclone::pisa
