// Longest-prefix-match table — the classic L3 routing structure of a
// switch ASIC (TCAM-backed on hardware). Single-rack deployments get away
// with host routes; the multi-rack deployment of §3.7 routes whole server
// subnets toward the aggregation layer, which needs LPM.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "pisa/resources.hpp"
#include "wire/ipv4.hpp"

namespace netclone::pisa {

template <typename Value>
class LpmTable final : public StageResource {
 public:
  LpmTable(Pipeline& pipeline, std::string name, std::size_t stage,
           std::size_t capacity)
      : StageResource(pipeline, std::move(name), stage),
        capacity_(capacity) {}

  // -- control plane --------------------------------------------------------

  /// Installs `prefix/len -> value`. Bits of `prefix` beyond `len` are
  /// ignored. len == 32 is a host route, len == 0 a default route.
  void insert(wire::Ipv4Address prefix, std::uint8_t len, Value value) {
    NETCLONE_CHECK(len <= 32, "prefix length out of range");
    const Key key{masked(prefix.value, len), len};
    NETCLONE_CHECK(entries_.size() < capacity_ || entries_.contains(key),
                   "LPM capacity exceeded: " + name());
    entries_[key] = std::move(value);
  }

  void erase(wire::Ipv4Address prefix, std::uint8_t len) {
    entries_.erase(Key{masked(prefix.value, len), len});
  }

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  // -- data plane -----------------------------------------------------------

  /// Longest matching prefix for `addr`, or nullopt.
  [[nodiscard]] std::optional<Value> lookup(PipelinePass& pass,
                                            wire::Ipv4Address addr) {
    const Value* v = find(pass, addr);
    return v != nullptr ? std::optional<Value>{*v} : std::nullopt;
  }

  /// Longest matching prefix for `addr` without copying the action data
  /// (ECMP port lists); nullptr on miss. The pointer is stable until the
  /// next control-plane insert/erase.
  [[nodiscard]] const Value* find(PipelinePass& pass,
                                  wire::Ipv4Address addr) {
    record_access(pass);
    for (int len = 32; len >= 0; --len) {
      auto it = entries_.find(
          Key{masked(addr.value, static_cast<std::uint8_t>(len)),
              static_cast<std::uint8_t>(len)});
      if (it != entries_.end()) {
        return &it->second;
      }
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t sram_bytes() const override {
    return capacity_ * (4 + 1 + sizeof(Value));  // prefix + len + action
  }
  [[nodiscard]] bool is_soft_state() const override { return false; }
  void reset() override {}

 private:
  struct Key {
    std::uint32_t prefix;
    std::uint8_t len;
    auto operator<=>(const Key&) const = default;
  };

  [[nodiscard]] static std::uint32_t masked(std::uint32_t addr,
                                            std::uint8_t len) {
    if (len == 0) {
      return 0;
    }
    const std::uint32_t mask = ~std::uint32_t{0}
                               << (32 - static_cast<std::uint32_t>(len));
    return addr & mask;
  }

  std::size_t capacity_;
  std::map<Key, Value> entries_;
};

/// Data-plane packet/byte counter, attachable to any program action —
/// P4's counter extern. Stateless from the constraint model's perspective
/// (counters never feed back into forwarding), so multiple increments per
/// pass are allowed.
class CounterArray final : public StageResource {
 public:
  CounterArray(Pipeline& pipeline, std::string name, std::size_t stage,
               std::size_t size)
      : StageResource(pipeline, std::move(name), stage),
        packets_(size, 0),
        bytes_(size, 0) {}

  void count(PipelinePass& pass, std::size_t index, std::size_t frame_bytes);

  [[nodiscard]] std::uint64_t packets(std::size_t index) const {
    return packets_.at(index);
  }
  [[nodiscard]] std::uint64_t bytes(std::size_t index) const {
    return bytes_.at(index);
  }
  [[nodiscard]] std::size_t size() const { return packets_.size(); }

  [[nodiscard]] std::size_t sram_bytes() const override {
    return packets_.size() * 16;  // 64-bit packet + byte cells
  }
  [[nodiscard]] bool is_soft_state() const override { return true; }
  void reset() override;

 private:
  std::vector<std::uint64_t> packets_;
  std::vector<std::uint64_t> bytes_;
};

}  // namespace netclone::pisa
