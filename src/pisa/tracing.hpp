// Tracing decorator: wraps any SwitchProgram and records one structured
// entry per packet — what arrived, what the program decided — in a bounded
// ring. Costs nothing when not attached; when attached but disabled via
// set_enabled(false), the per-packet cost is one predictable branch, so a
// deployment can keep the decorator installed and flip tracing on around
// the window of interest. Meant for debugging and for the
// packet-walkthrough example.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "pisa/program.hpp"

namespace netclone::pisa {

struct TraceRecord {
  std::uint64_t pass_id = 0;
  bool is_netclone = false;
  bool is_request = false;
  bool recirculated = false;
  std::uint8_t clo = 0;
  std::uint32_t req_id = 0;
  std::uint16_t client_id = 0;
  std::uint32_t client_seq = 0;
  // Decision:
  bool dropped = false;
  bool multicast = false;
  std::size_t egress_port = 0;  // valid when !dropped && !multicast

  [[nodiscard]] std::string to_string() const;
};

class TracingProgram final : public SwitchProgram {
 public:
  TracingProgram(std::shared_ptr<SwitchProgram> inner,
                 std::size_t capacity = 1024)
      : inner_(std::move(inner)), capacity_(capacity) {}

  void on_ingress(wire::Packet& pkt, PacketMetadata& md,
                  PipelinePass& pass) override;

  [[nodiscard]] const char* name() const override { return "Tracing"; }

  [[nodiscard]] const std::deque<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t total_traced() const { return total_; }
  void clear() { records_.clear(); }

  /// Suspends/resumes recording. While disabled, on_ingress delegates to
  /// the wrapped program after a single well-predicted branch.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  void record_ingress(wire::Packet& pkt, PacketMetadata& md,
                      PipelinePass& pass);

  std::shared_ptr<SwitchProgram> inner_;
  std::size_t capacity_;
  bool enabled_ = true;
  std::deque<TraceRecord> records_;
  std::uint64_t total_ = 0;
};

}  // namespace netclone::pisa
