#include "pisa/resources.hpp"

namespace netclone::pisa {

StageResource::StageResource(Pipeline& pipeline, std::string name,
                             std::size_t stage)
    : name_(std::move(name)), stage_(stage) {
  pipeline.register_resource(this);
}

void StageResource::record_access(PipelinePass& pass) { pass.access(*this); }

std::uint32_t HashUnit::hash32(PipelinePass& pass, std::uint32_t value,
                               std::uint32_t buckets) {
  pass.access_stateless(*this);
  NETCLONE_CHECK(buckets > 0, "hash modulus must be positive");
  return crc32_u32(value) % buckets;
}

std::uint32_t RandomUnit::next_below(PipelinePass& pass,
                                     std::uint32_t bound) {
  pass.access_stateless(*this);
  return static_cast<std::uint32_t>(rng_.next_below(bound));
}

}  // namespace netclone::pisa
