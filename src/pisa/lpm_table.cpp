#include "pisa/lpm_table.hpp"

namespace netclone::pisa {

void CounterArray::count(PipelinePass& pass, std::size_t index,
                         std::size_t frame_bytes) {
  pass.access_stateless(*this);
  NETCLONE_CHECK(index < packets_.size(),
                 "counter index out of range: " + name());
  ++packets_[index];
  bytes_[index] += frame_bytes;
}

void CounterArray::reset() {
  std::fill(packets_.begin(), packets_.end(), 0);
  std::fill(bytes_.begin(), bytes_.end(), 0);
}

}  // namespace netclone::pisa
