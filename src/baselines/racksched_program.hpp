// RackSched (OSDI'20): in-switch Join-the-Shortest-Queue scheduling with
// the power of two choices, reimplemented on our PISA model as the paper's
// integration partner (§3.7) and Fig. 10 comparison point.
//
// The switch samples two random servers per request, compares their tracked
// queue lengths, and forwards to the shorter queue. Queue lengths are
// learned from the STATE field servers piggyback on responses (the same
// signal NetClone uses). Because one register array cannot be read twice in
// a pass, the second sample reads a shadow copy — the identical trick
// NetClone needs for its state table.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "pisa/program.hpp"
#include "pisa/resources.hpp"
#include "wire/ipv4.hpp"

namespace netclone::baselines {

struct RackSchedStats {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t second_choice_wins = 0;  // the shadow sample had less load
  std::uint64_t missing_route_drops = 0;
};

class RackSchedProgram final : public pisa::SwitchProgram {
 public:
  RackSchedProgram(pisa::Pipeline& pipeline, std::size_t max_servers,
                   std::uint64_t rng_seed);

  /// Registers a schedulable worker.
  void add_server(ServerId sid, wire::Ipv4Address ip, std::size_t port);
  /// Plain route for clients.
  void add_route(wire::Ipv4Address ip, std::size_t port);

  void on_ingress(wire::Packet& pkt, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass) override;

  [[nodiscard]] const char* name() const override { return "RackSched"; }
  [[nodiscard]] const RackSchedStats& stats() const { return stats_; }

 private:
  void handle_request(wire::Packet& pkt, pisa::PacketMetadata& md,
                      pisa::PipelinePass& pass);

  std::size_t num_servers_ = 0;
  pisa::RandomUnit random_;
  pisa::RegisterArray<std::uint16_t> load_table_;
  pisa::RegisterArray<std::uint16_t> shadow_load_table_;
  pisa::ExactMatchTable<wire::Ipv4Address> addr_table_;
  pisa::ExactMatchTable<std::size_t> fwd_table_;
  RackSchedStats stats_;
};

}  // namespace netclone::baselines
