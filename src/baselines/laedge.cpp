#include "baselines/laedge.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace netclone::baselines {

LaedgeCoordinator::LaedgeCoordinator(sim::Scheduler& scheduler,
                                     LaedgeParams params, Rng rng)
    : phys::Node("laedge-coordinator"),
      sim_(scheduler),
      params_(std::move(params)),
      rng_(rng),
      my_ip_(host::coordinator_ip()),
      my_mac_(wire::MacAddress::from_node(0x0300U)) {
  NETCLONE_CHECK(!params_.workers.empty(), "coordinator needs workers");
  outstanding_.assign(params_.workers.size(), 0);
}

SimTime LaedgeCoordinator::charge_cpu() {
  const SimTime start = std::max(sim_.now(), cpu_busy_until_);
  cpu_busy_until_ = start + params_.per_packet_cost;
  return cpu_busy_until_;
}

void LaedgeCoordinator::handle_frame(std::size_t /*port*/,
                                     wire::FrameHandle frame) {
  wire::Packet pkt;
  try {
    pkt = wire::Packet::parse_backed(frame);
  } catch (const wire::CodecError&) {
    return;
  }
  frame.reset();
  if (!pkt.has_netclone()) {
    return;
  }
  // Bounded rx admission: under overload, excess *requests* are shed before
  // costing any cycles (NIC ring overflow). Responses are always admitted —
  // they are bounded by the outstanding-dispatch count and freeing worker
  // slots must not livelock behind the request flood.
  if (pkt.nc().is_request()) {
    const auto backlog_ns =
        static_cast<double>((cpu_busy_until_ - sim_.now()).ns());
    if (backlog_ns > static_cast<double>(params_.per_packet_cost.ns()) *
                         static_cast<double>(params_.rx_ring_capacity)) {
      ++stats_.rx_ring_drops;
      return;
    }
  }
  // Receive path: the packet waits for the coordinator CPU.
  sim_.schedule_at(charge_cpu(), [this, pkt = std::move(pkt)]() mutable {
    on_cpu(std::move(pkt));
  });
}

void LaedgeCoordinator::on_cpu(wire::Packet pkt) {
  if (pkt.nc().is_request()) {
    admit_request(std::move(pkt));
  } else {
    on_response(std::move(pkt));
  }
}

std::vector<std::size_t> LaedgeCoordinator::idle_workers() const {
  std::vector<std::size_t> idle;
  for (std::size_t w = 0; w < params_.workers.size(); ++w) {
    if (outstanding_[w] < params_.workers[w].capacity) {
      idle.push_back(w);
    }
  }
  return idle;
}

void LaedgeCoordinator::admit_request(wire::Packet&& pkt) {
  ++stats_.requests;
  const wire::NetCloneHeader& nc = pkt.nc();
  const std::uint64_t key = request_key(nc.client_id, nc.client_seq);
  requests_.insert_or_assign(
      key, RequestState{pkt.ip.src, pkt.udp.src_port, /*copies=*/0, false});

  const std::vector<std::size_t> idle = idle_workers();
  if (idle.empty()) {
    // All workers busy: buffer until a response frees capacity.
    ++stats_.queued;
    pending_.push_back(std::move(pkt));
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, pending_.size());
    return;
  }
  if (idle.size() == 1) {
    ++stats_.forwarded_single;
    dispatch(pkt, idle[0]);
    return;
  }
  // Clone to two random idle workers (LÆDGE: replicate iff >= 2 idle).
  ++stats_.cloned;
  const auto a = static_cast<std::size_t>(rng_.next_below(idle.size()));
  auto b = static_cast<std::size_t>(rng_.next_below(idle.size() - 1));
  if (b >= a) {
    ++b;
  }
  dispatch(pkt, idle[a]);
  dispatch(pkt, idle[b]);
}

void LaedgeCoordinator::dispatch(const wire::Packet& pkt, std::size_t w) {
  const LaedgeWorkerInfo& worker = params_.workers[w];
  ++outstanding_[w];

  wire::Packet out = pkt;
  out.eth.src = my_mac_;
  out.ip.src = my_ip_;  // responses must come back through the coordinator
  out.ip.dst = worker.ip;
  out.udp.src_port = wire::kNetClonePort;

  const std::uint64_t key =
      request_key(out.nc().client_id, out.nc().client_seq);
  if (RequestState* state = requests_.find(key)) {
    ++state->copies_outstanding;  // always present: admit_request inserts
  }

  // Transmit path: each copy occupies the CPU again before hitting the NIC.
  // Both clone copies of a request share the payload bytes of the original
  // frame; only the patched header region is private per copy.
  sim_.schedule_at(charge_cpu(),
                   [this, bytes = out.serialize_pooled()]() mutable {
                     send(0, std::move(bytes));
                   });
}

void LaedgeCoordinator::on_response(wire::Packet&& pkt) {
  const wire::NetCloneHeader& nc = pkt.nc();
  // Locate the worker that answered and release its slot.
  for (std::size_t w = 0; w < params_.workers.size(); ++w) {
    if (value_of(params_.workers[w].sid) == nc.sid) {
      if (outstanding_[w] > 0) {
        --outstanding_[w];
      }
      break;
    }
  }

  const std::uint64_t key = request_key(nc.client_id, nc.client_seq);
  if (RequestState* found = requests_.find(key)) {
    RequestState& state = *found;
    if (state.copies_outstanding > 0) {
      --state.copies_outstanding;
    }
    if (!state.relayed) {
      state.relayed = true;
      ++stats_.relayed_responses;
      wire::Packet out = std::move(pkt);
      out.eth.src = my_mac_;
      out.ip.src = my_ip_;
      out.ip.dst = state.client_ip;
      out.udp.dst_port = state.client_port;
      out.udp.src_port = wire::kNetClonePort;
      sim_.schedule_at(charge_cpu(),
                       [this, bytes = out.serialize_pooled()]() mutable {
                         send(0, std::move(bytes));
                       });
    } else {
      ++stats_.absorbed_duplicates;  // slower clone: CPU paid, then dropped
    }
    if (state.copies_outstanding == 0) {
      requests_.erase(key);
    }
  }

  drain_queue();
}

void LaedgeCoordinator::drain_queue() {
  while (!pending_.empty()) {
    const std::vector<std::size_t> idle = idle_workers();
    if (idle.empty()) {
      return;
    }
    wire::Packet pkt = std::move(pending_.front());
    pending_.pop_front();
    if (idle.size() >= 2) {
      ++stats_.cloned;
      const auto a = static_cast<std::size_t>(rng_.next_below(idle.size()));
      auto b = static_cast<std::size_t>(rng_.next_below(idle.size() - 1));
      if (b >= a) {
        ++b;
      }
      dispatch(pkt, idle[a]);
      dispatch(pkt, idle[b]);
    } else {
      ++stats_.forwarded_single;
      dispatch(pkt, idle[0]);
    }
  }
}

}  // namespace netclone::baselines
