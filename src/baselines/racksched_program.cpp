#include "baselines/racksched_program.hpp"

namespace netclone::baselines {

RackSchedProgram::RackSchedProgram(pisa::Pipeline& pipeline,
                                   std::size_t max_servers,
                                   std::uint64_t rng_seed)
    : random_(pipeline, "PRNG", 0, rng_seed),
      load_table_(pipeline, "LoadT", 1, max_servers),
      shadow_load_table_(pipeline, "ShadowLoadT", 2, max_servers),
      addr_table_(pipeline, "AddrT", 3, max_servers, /*key_bytes=*/1,
                  /*value_bytes=*/4),
      fwd_table_(pipeline, "FwdT", 4, /*capacity=*/1024, /*key_bytes=*/4,
                 /*value_bytes=*/2) {}

void RackSchedProgram::add_server(ServerId sid, wire::Ipv4Address ip,
                                  std::size_t port) {
  addr_table_.insert(value_of(sid), ip);
  fwd_table_.insert(ip.value, port);
  num_servers_ = std::max<std::size_t>(num_servers_, value_of(sid) + 1U);
}

void RackSchedProgram::add_route(wire::Ipv4Address ip, std::size_t port) {
  fwd_table_.insert(ip.value, port);
}

void RackSchedProgram::on_ingress(wire::Packet& pkt,
                                  pisa::PacketMetadata& md,
                                  pisa::PipelinePass& pass) {
  if (!pkt.has_netclone()) {
    const auto* port = fwd_table_.find(pass, pkt.ip.dst.value);
    if (!port) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    md.egress_port = *port;
    return;
  }
  wire::NetCloneHeader& nc = pkt.nc();
  if (nc.is_request()) {
    handle_request(pkt, md, pass);
    return;
  }
  if (nc.is_cancel()) {
    const auto* out = fwd_table_.find(pass, pkt.ip.dst.value);
    if (!out) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    md.egress_port = *out;
    return;
  }
  // Response: learn the piggybacked queue length, then route to the client.
  ++stats_.responses;
  if (nc.sid < load_table_.size()) {
    load_table_.write(pass, nc.sid, nc.state);
    shadow_load_table_.write(pass, nc.sid, nc.state);
  }
  const auto* port = fwd_table_.find(pass, pkt.ip.dst.value);
  if (!port) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  md.egress_port = *port;
}

void RackSchedProgram::handle_request(wire::Packet& pkt,
                                      pisa::PacketMetadata& md,
                                      pisa::PipelinePass& pass) {
  ++stats_.requests;
  if (num_servers_ == 0) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  // Power of two choices: two distinct uniform samples from the hardware
  // PRNG (one 32-bit draw split in half on the ASIC).
  const auto n = static_cast<std::uint32_t>(num_servers_);
  const std::uint32_t r1 = random_.next_below(pass, n);
  std::uint32_t r2 = n > 1 ? random_.next_below(pass, n - 1) : 0;
  if (n > 1 && r2 >= r1) {
    ++r2;
  }
  const std::uint16_t l1 = load_table_.read(pass, r1);
  const std::uint16_t l2 = shadow_load_table_.read(pass, r2);
  const std::uint32_t winner = l2 < l1 ? r2 : r1;
  if (l2 < l1) {
    ++stats_.second_choice_wins;
  }
  const auto* ip = addr_table_.find(pass, winner);
  if (!ip) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  pkt.ip.dst = *ip;
  const auto* port = fwd_table_.find(pass, ip->value);
  if (!port) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  md.egress_port = *port;
}

}  // namespace netclone::baselines
