#include "baselines/netclone_racksched.hpp"

#include "common/check.hpp"

namespace netclone::baselines {

NetCloneRackSchedProgram::NetCloneRackSchedProgram(
    pisa::Pipeline& pipeline, core::NetCloneConfig config)
    : config_(config),
      seq_(pipeline, "SEQ", 0, 0U),
      grp_table_(pipeline, "GrpT", 1, config.max_groups, /*key_bytes=*/2,
                 /*value_bytes=*/2),
      load_table_(pipeline, "LoadT", 2, config.max_servers),
      shadow_load_table_(pipeline, "ShadowLoadT", 3, config.max_servers),
      addr_table_(pipeline, "AddrT", 4, config.max_servers, /*key_bytes=*/1,
                  /*value_bytes=*/6),
      hash_unit_(pipeline, "FilterHash", 5),
      fwd_table_(pipeline, "FwdT", 6, /*capacity=*/1024, /*key_bytes=*/4,
                 /*value_bytes=*/2) {
  // JSQ picks a (possibly different) destination per packet, which would
  // scatter the fragments of a multi-packet request across servers; the
  // integration has no cloned-request/affinity table, so reject the combo
  // instead of silently breaking reassembly.
  NETCLONE_CHECK(!config_.enable_multipacket,
                 "multi-packet support is not implemented for the "
                 "RackSched integration");
  filter_tables_.reserve(config_.num_filter_tables);
  for (std::size_t i = 0; i < config_.num_filter_tables; ++i) {
    filter_tables_.push_back(
        std::make_unique<pisa::RegisterArray<std::uint32_t>>(
            pipeline, "FilterT" + std::to_string(i), 5,
            config_.filter_slots));
  }
}

void NetCloneRackSchedProgram::add_server(ServerId sid, wire::Ipv4Address ip,
                                          std::size_t port,
                                          std::uint16_t clone_mcast_group) {
  addr_table_.insert(value_of(sid), AddrEntry{ip, clone_mcast_group});
  fwd_table_.insert(ip.value, port);
}

void NetCloneRackSchedProgram::install_groups(
    const std::vector<core::GroupPair>& groups) {
  grp_table_.clear_entries();
  for (std::size_t id = 0; id < groups.size(); ++id) {
    grp_table_.insert(id, groups[id]);
  }
}

void NetCloneRackSchedProgram::add_route(wire::Ipv4Address ip,
                                         std::size_t port) {
  fwd_table_.insert(ip.value, port);
}

void NetCloneRackSchedProgram::on_ingress(wire::Packet& pkt,
                                          pisa::PacketMetadata& md,
                                          pisa::PipelinePass& pass) {
  if (!pkt.has_netclone()) {
    forward_to(pkt.ip.dst, md, pass);
    return;
  }
  if (pkt.nc().is_cancel()) {
    forward_to(pkt.ip.dst, md, pass);
    return;
  }
  if (pkt.nc().is_request()) {
    handle_request(pkt, md, pass);
  } else {
    handle_response(pkt, md, pass);
  }
}

void NetCloneRackSchedProgram::handle_request(wire::Packet& pkt,
                                              pisa::PacketMetadata& md,
                                              pisa::PipelinePass& pass) {
  wire::NetCloneHeader& nc = pkt.nc();

  if (md.is_recirculated) {
    nc.clo = wire::CloneStatus::kClonedCopy;
    ++stats_.recirculated_clones;
    const auto* entry = addr_table_.find(pass, nc.sid);
    if (!entry) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    pkt.ip.dst = entry->ip;
    forward_to(entry->ip, md, pass);
    return;
  }

  ++stats_.requests;
  nc.req_id = seq_.execute(pass, [](std::uint32_t& c) { return ++c; });

  const auto* pair = grp_table_.find(pass, nc.grp);
  if (!pair) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }

  const std::uint16_t l1 = load_table_.read(pass, pair->srv1);
  const std::uint16_t l2 = shadow_load_table_.read(pass, pair->srv2);

  if (config_.enable_cloning && l1 == 0 && l2 == 0) {
    // Both candidate queues empty: clone as plain NetClone would.
    nc.clo = wire::CloneStatus::kClonedOriginal;
    nc.sid = pair->srv2;
    const auto* entry1 = addr_table_.find(pass, pair->srv1);
    if (!entry1) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    pkt.ip.dst = entry1->ip;
    ++stats_.cloned_requests;
    md.multicast_group = entry1->mcast_group;
    return;
  }

  // RackSched fallback: join the shorter tracked queue (ties -> srv1).
  ++stats_.jsq_fallbacks;
  const std::uint8_t winner = l2 < l1 ? pair->srv2 : pair->srv1;
  const auto* entry = addr_table_.find(pass, winner);
  if (!entry) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  pkt.ip.dst = entry->ip;
  forward_to(entry->ip, md, pass);
}

void NetCloneRackSchedProgram::handle_response(wire::Packet& pkt,
                                               pisa::PacketMetadata& md,
                                               pisa::PipelinePass& pass) {
  wire::NetCloneHeader& nc = pkt.nc();
  ++stats_.responses;
  if (nc.sid < load_table_.size()) {
    load_table_.write(pass, nc.sid, nc.state);
    shadow_load_table_.write(pass, nc.sid, nc.state);
  }
  if (nc.cloned() && config_.enable_filtering) {
    const std::size_t table = nc.idx % config_.num_filter_tables;
    const std::uint32_t slot = hash_unit_.hash32(
        pass, nc.req_id, static_cast<std::uint32_t>(config_.filter_slots));
    const bool drop = filter_tables_[table]->execute(
        pass, slot, [rid = nc.req_id](std::uint32_t& cell) {
          if (cell == rid) {
            cell = 0;
            return true;
          }
          cell = rid;
          return false;
        });
    if (drop) {
      ++stats_.filtered_responses;
      md.drop = true;
      return;
    }
  }
  forward_to(pkt.ip.dst, md, pass);
}

void NetCloneRackSchedProgram::forward_to(wire::Ipv4Address ip,
                                          pisa::PacketMetadata& md,
                                          pisa::PipelinePass& pass) {
  const auto* port = fwd_table_.find(pass, ip.value);
  if (!port) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  md.egress_port = *port;
}

}  // namespace netclone::baselines
