// Aggregation-layer router for multi-rack deployments (§3.7).
//
// The paper's point: aggregation switches do not need to be NetClone-aware
// at all — they run plain LPM routing and pass NetClone packets through
// untouched. This program is exactly that: an LPM table plus per-port
// traffic counters, with no parser branch for the NetClone header.
#pragma once

#include <cstdint>

#include "pisa/lpm_table.hpp"
#include "pisa/program.hpp"

namespace netclone::baselines {

struct AggRouterStats {
  std::uint64_t routed = 0;
  std::uint64_t no_route_drops = 0;
};

class AggRouterProgram final : public pisa::SwitchProgram {
 public:
  AggRouterProgram(pisa::Pipeline& pipeline, std::size_t num_ports);

  /// Installs `prefix/len -> egress port`.
  void add_prefix(wire::Ipv4Address prefix, std::uint8_t len,
                  std::size_t port);

  void on_ingress(wire::Packet& pkt, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass) override;

  [[nodiscard]] const char* name() const override { return "AggRouter"; }
  [[nodiscard]] const AggRouterStats& stats() const { return stats_; }
  /// Frames forwarded out of `port` so far (data-plane counter).
  [[nodiscard]] std::uint64_t port_packets(std::size_t port) const {
    return tx_counters_.packets(port);
  }

 private:
  pisa::LpmTable<std::size_t> routes_;
  pisa::CounterArray tx_counters_;
  AggRouterStats stats_;
};

}  // namespace netclone::baselines
