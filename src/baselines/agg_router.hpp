// Aggregation-layer router for multi-rack deployments (§3.7).
//
// The paper's point: aggregation switches do not need to be NetClone-aware
// at all — they run plain LPM routing and pass NetClone packets through
// untouched. This program is exactly that: an LPM table plus per-port
// traffic counters, with no parser branch for the NetClone header.
//
// Fat-tree extensions: the route capacity and port count are sized by the
// harness from the topology (a misconfigured prefix or port fails loudly
// at install time, not via a silent table miss), and a prefix may carry
// several next hops — flow-hashed ECMP over the parallel agg trunks.
#pragma once

#include <cstdint>
#include <vector>

#include "pisa/lpm_table.hpp"
#include "pisa/program.hpp"

namespace netclone::baselines {

struct AggRouterStats {
  std::uint64_t routed = 0;
  std::uint64_t no_route_drops = 0;
};

class AggRouterProgram final : public pisa::SwitchProgram {
 public:
  /// `num_ports` bounds the egress ports routes may name; `route_capacity`
  /// bounds the LPM table. Both are meant to be derived from the topology
  /// being built (ports wired, prefixes to install).
  AggRouterProgram(pisa::Pipeline& pipeline, std::size_t num_ports,
                   std::size_t route_capacity = 4096);

  /// Installs `prefix/len -> egress port`. Throws via NETCLONE_CHECK when
  /// the port is not one of the switch's `num_ports` or the table is full.
  void add_prefix(wire::Ipv4Address prefix, std::uint8_t len,
                  std::size_t port);

  /// Installs an ECMP route: packets matching `prefix/len` are spread
  /// over `ports` by a hash of the source address (flow affinity — one
  /// sender's packets stay ordered on one path).
  void add_ecmp_prefix(wire::Ipv4Address prefix, std::uint8_t len,
                       std::vector<std::size_t> ports);

  void on_ingress(wire::Packet& pkt, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass) override;

  [[nodiscard]] const char* name() const override { return "AggRouter"; }
  [[nodiscard]] const AggRouterStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_ports() const { return num_ports_; }
  /// Frames forwarded out of `port` so far (data-plane counter).
  [[nodiscard]] std::uint64_t port_packets(std::size_t port) const {
    return tx_counters_.packets(port);
  }

 private:
  struct NextHops {
    std::vector<std::size_t> ports;
  };

  void check_ports(const std::vector<std::size_t>& ports) const;

  std::size_t num_ports_;
  pisa::LpmTable<NextHops> routes_;
  pisa::CounterArray tx_counters_;
  AggRouterStats stats_;
};

}  // namespace netclone::baselines
