#include "baselines/l3_program.hpp"

namespace netclone::baselines {

L3ForwardProgram::L3ForwardProgram(pisa::Pipeline& pipeline)
    : fwd_table_(pipeline, "FwdT", 0, /*capacity=*/1024, /*key_bytes=*/4,
                 /*value_bytes=*/2) {}

void L3ForwardProgram::add_route(wire::Ipv4Address ip, std::size_t port) {
  fwd_table_.insert(ip.value, port);
}

void L3ForwardProgram::on_ingress(wire::Packet& pkt,
                                  pisa::PacketMetadata& md,
                                  pisa::PipelinePass& pass) {
  const auto* port = fwd_table_.find(pass, pkt.ip.dst.value);
  if (!port) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  ++stats_.forwarded;
  md.egress_port = *port;
}

}  // namespace netclone::baselines
