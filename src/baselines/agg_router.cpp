#include "baselines/agg_router.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace netclone::baselines {

AggRouterProgram::AggRouterProgram(pisa::Pipeline& pipeline,
                                   std::size_t num_ports,
                                   std::size_t route_capacity)
    : num_ports_(num_ports),
      routes_(pipeline, "LpmRoutes", 0, route_capacity),
      tx_counters_(pipeline, "TxCounters", 1, num_ports) {
  NETCLONE_CHECK(num_ports >= 1, "agg router needs at least one port");
  NETCLONE_CHECK(route_capacity >= 1, "agg router needs route capacity");
}

void AggRouterProgram::check_ports(
    const std::vector<std::size_t>& ports) const {
  NETCLONE_CHECK(!ports.empty(), "agg route needs at least one next hop");
  for (const std::size_t port : ports) {
    NETCLONE_CHECK(port < num_ports_,
                   "agg route names port " + std::to_string(port) +
                       " but the router was sized for " +
                       std::to_string(num_ports_) + " ports");
  }
}

void AggRouterProgram::add_prefix(wire::Ipv4Address prefix, std::uint8_t len,
                                  std::size_t port) {
  add_ecmp_prefix(prefix, len, {port});
}

void AggRouterProgram::add_ecmp_prefix(wire::Ipv4Address prefix,
                                       std::uint8_t len,
                                       std::vector<std::size_t> ports) {
  check_ports(ports);
  routes_.insert(prefix, len, NextHops{std::move(ports)});
}

void AggRouterProgram::on_ingress(wire::Packet& pkt,
                                  pisa::PacketMetadata& md,
                                  pisa::PipelinePass& pass) {
  const NextHops* hops = routes_.find(pass, pkt.ip.dst);
  if (hops == nullptr) {
    ++stats_.no_route_drops;
    md.drop = true;
    return;
  }
  // ECMP by source address: one sender's packets stay on one path, so
  // per-flow ordering survives the parallel trunks.
  const std::size_t port =
      hops->ports.size() == 1
          ? hops->ports[0]
          : hops->ports[crc32_u32(pkt.ip.src.value) % hops->ports.size()];
  ++stats_.routed;
  tx_counters_.count(pass, port, pkt.wire_size());
  md.egress_port = port;
}

}  // namespace netclone::baselines
