#include "baselines/agg_router.hpp"

namespace netclone::baselines {

AggRouterProgram::AggRouterProgram(pisa::Pipeline& pipeline,
                                   std::size_t num_ports)
    : routes_(pipeline, "LpmRoutes", 0, /*capacity=*/4096),
      tx_counters_(pipeline, "TxCounters", 1, num_ports) {}

void AggRouterProgram::add_prefix(wire::Ipv4Address prefix, std::uint8_t len,
                                  std::size_t port) {
  routes_.insert(prefix, len, port);
}

void AggRouterProgram::on_ingress(wire::Packet& pkt,
                                  pisa::PacketMetadata& md,
                                  pisa::PipelinePass& pass) {
  const auto port = routes_.lookup(pass, pkt.ip.dst);
  if (!port) {
    ++stats_.no_route_drops;
    md.drop = true;
    return;
  }
  ++stats_.routed;
  tx_counters_.count(pass, *port, pkt.wire_size());
  md.egress_port = *port;
}

}  // namespace netclone::baselines
