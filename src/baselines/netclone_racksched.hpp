// NetClone × RackSched integration (paper §3.7, Figure 10).
//
// The binary state table becomes a *load* table holding full queue lengths.
// If both candidates have empty queues the request is cloned exactly as in
// plain NetClone; otherwise the program falls back to RackSched's JSQ and
// forwards to the candidate with the shorter tracked queue. Because the
// destination now depends on the comparison, AddrT must sit *after* the
// load tables — a different compile-time stage layout than Algorithm 1,
// which is precisely the kind of constraint-juggling §3.7 alludes to.
//
// Stage layout: SEQ(0) GrpT(1) LoadT(2) ShadowLoadT(3) AddrT(4)
//               Hash+FilterT(5) FwdT(6)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/groups.hpp"
#include "core/netclone_program.hpp"
#include "pisa/program.hpp"
#include "pisa/resources.hpp"
#include "wire/ipv4.hpp"

namespace netclone::baselines {

struct NetCloneRackSchedStats {
  std::uint64_t requests = 0;
  std::uint64_t cloned_requests = 0;
  std::uint64_t jsq_fallbacks = 0;       // forwarded by queue comparison
  std::uint64_t recirculated_clones = 0;
  std::uint64_t responses = 0;
  std::uint64_t filtered_responses = 0;
  std::uint64_t missing_route_drops = 0;
};

class NetCloneRackSchedProgram final : public pisa::SwitchProgram {
 public:
  NetCloneRackSchedProgram(pisa::Pipeline& pipeline,
                           core::NetCloneConfig config);

  void add_server(ServerId sid, wire::Ipv4Address ip, std::size_t port,
                  std::uint16_t clone_mcast_group);
  void install_groups(const std::vector<core::GroupPair>& groups);
  void add_route(wire::Ipv4Address ip, std::size_t port);

  void on_ingress(wire::Packet& pkt, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass) override;

  [[nodiscard]] const char* name() const override {
    return "NetClone+RackSched";
  }
  [[nodiscard]] const NetCloneRackSchedStats& stats() const {
    return stats_;
  }

 private:
  struct AddrEntry {
    wire::Ipv4Address ip{};
    std::uint16_t mcast_group = 0;
  };

  void handle_request(wire::Packet& pkt, pisa::PacketMetadata& md,
                      pisa::PipelinePass& pass);
  void handle_response(wire::Packet& pkt, pisa::PacketMetadata& md,
                       pisa::PipelinePass& pass);
  void forward_to(wire::Ipv4Address ip, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass);

  core::NetCloneConfig config_;

  pisa::RegisterScalar<std::uint32_t> seq_;
  pisa::ExactMatchTable<core::GroupPair> grp_table_;
  pisa::RegisterArray<std::uint16_t> load_table_;
  pisa::RegisterArray<std::uint16_t> shadow_load_table_;
  pisa::ExactMatchTable<AddrEntry> addr_table_;
  pisa::HashUnit hash_unit_;
  std::vector<std::unique_ptr<pisa::RegisterArray<std::uint32_t>>>
      filter_tables_;
  pisa::ExactMatchTable<std::size_t> fwd_table_;

  NetCloneRackSchedStats stats_;
};

}  // namespace netclone::baselines
