// LÆDGE-style coordinator-based dynamic cloning (Primorac et al., NSDI'21;
// the paper's state-of-the-art comparison point).
//
// A single CPU-bound coordinator node sits between clients and workers:
//   * a request is cloned to two idle workers when at least two are idle,
//     forwarded to the single idle worker when exactly one is, and queued
//     in the coordinator otherwise ("load-aware dynamic cloning");
//   * queued requests are dispatched as responses free worker capacity;
//   * the coordinator relays the first response of each request to the
//     client and absorbs the redundant one — paying CPU for it, which is
//     one of the two reasons the paper finds the approach unscalable.
// Every packet the coordinator receives or transmits occupies its serial
// CPU for `per_packet_cost`, giving it the few-Mpps ceiling of a commodity
// server and reproducing the Fig. 8 throughput collapse.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "host/addressing.hpp"
#include "phys/node.hpp"
#include "sim/scheduler.hpp"
#include "wire/frame.hpp"

namespace netclone::baselines {

struct LaedgeWorkerInfo {
  ServerId sid{};
  wire::Ipv4Address ip{};
  /// Concurrent requests the worker can execute (its worker threads); the
  /// coordinator treats a worker with spare capacity as idle.
  std::uint32_t capacity = 16;
};

struct LaedgeParams {
  /// Serial CPU time per packet handled (rx or tx). An optimized
  /// kernel-bypass coordinator processes a few million packets per second,
  /// i.e. order-microsecond per packet once decision logic is included.
  SimTime per_packet_cost = SimTime::nanoseconds(1200);
  /// NIC rx ring size: frames arriving while this many packets of CPU
  /// backlog are already reserved get dropped, as on real hardware under
  /// overload (otherwise rx work would starve transmissions forever).
  std::size_t rx_ring_capacity = 512;
  std::vector<LaedgeWorkerInfo> workers{};
};

struct LaedgeStats {
  std::uint64_t requests = 0;
  std::uint64_t cloned = 0;
  std::uint64_t forwarded_single = 0;
  std::uint64_t queued = 0;
  std::uint64_t relayed_responses = 0;
  std::uint64_t absorbed_duplicates = 0;
  std::uint64_t rx_ring_drops = 0;
  std::size_t max_queue_depth = 0;
};

class LaedgeCoordinator : public phys::Node {
 public:
  LaedgeCoordinator(sim::Scheduler& scheduler, LaedgeParams params, Rng rng);

  void handle_frame(std::size_t port, wire::FrameHandle frame) override;

  [[nodiscard]] const LaedgeStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending_requests() const {
    return pending_.size();
  }

 private:
  struct RequestState {
    wire::Ipv4Address client_ip{};
    std::uint16_t client_port = 0;
    std::uint32_t copies_outstanding = 0;
    bool relayed = false;
  };

  [[nodiscard]] static std::uint64_t request_key(std::uint16_t client_id,
                                                 std::uint32_t client_seq) {
    return static_cast<std::uint64_t>(client_id) << 32 | client_seq;
  }

  void on_cpu(wire::Packet pkt);
  void admit_request(wire::Packet&& pkt);
  void on_response(wire::Packet&& pkt);
  /// Dispatches one copy of `pkt` to worker `w`, charging CPU for the tx.
  void dispatch(const wire::Packet& pkt, std::size_t w);
  void drain_queue();
  [[nodiscard]] std::vector<std::size_t> idle_workers() const;
  /// Occupies the serial CPU for one packet-time and returns the instant
  /// the work completes.
  SimTime charge_cpu();

  sim::Scheduler& sim_;
  LaedgeParams params_;
  Rng rng_;
  wire::Ipv4Address my_ip_;
  wire::MacAddress my_mac_;

  SimTime cpu_busy_until_ = SimTime::zero();
  std::vector<std::uint32_t> outstanding_;  // per worker
  std::deque<wire::Packet> pending_;
  /// Outstanding requests keyed by (client_id, client_seq) — on the
  /// coordinator's per-packet critical path, hence the flat table.
  FlatMap64<RequestState> requests_;
  LaedgeStats stats_;
};

}  // namespace netclone::baselines
