// Plain L2/L3 routing program: what the rack switch runs for the paper's
// baseline (random server choice at the client), C-Clone, and LÆDGE — no
// in-network request logic at all.
#pragma once

#include <cstdint>

#include "pisa/program.hpp"
#include "pisa/resources.hpp"
#include "wire/ipv4.hpp"

namespace netclone::baselines {

struct L3Stats {
  std::uint64_t forwarded = 0;
  std::uint64_t missing_route_drops = 0;
};

class L3ForwardProgram final : public pisa::SwitchProgram {
 public:
  explicit L3ForwardProgram(pisa::Pipeline& pipeline);

  void add_route(wire::Ipv4Address ip, std::size_t port);

  void on_ingress(wire::Packet& pkt, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass) override;

  [[nodiscard]] const char* name() const override { return "L3Forward"; }
  [[nodiscard]] const L3Stats& stats() const { return stats_; }

 private:
  pisa::ExactMatchTable<std::size_t> fwd_table_;
  L3Stats stats_;
};

}  // namespace netclone::baselines
