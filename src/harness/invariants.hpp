// Cross-layer invariant auditor for chaos runs.
//
// After a run — clean or faulted — the cluster must satisfy a set of
// conservation laws no fault is allowed to break:
//
//   * client accounting: every issued request is completed exactly once
//     or still recorded incomplete (failed/cancelled), never silently
//     lost or double-counted;
//   * server structure: a crashed server holds no queue or busy workers;
//   * link occupancy: drop-tail slots never exceed capacity, and a down
//     link holds no in-flight frames;
//   * switch conservation (per switch): every received frame lands in
//     exactly one of {parse error, program drop, dropped-while-failed,
//     scheduled egress}, and emissions never exceed scheduled egresses
//     plus multicast copies;
//   * filter accounting: responses filtered never exceed fingerprints
//     stored plus injected stale entries;
//   * frame-pool balance: acquire/release/live counters stay consistent
//     (the zero-leak check across an Experiment's lifetime lives in the
//     tests, which compare pool `live` before construction and after
//     destruction);
//   * replica convergence (replicated multi-rack aggregation): once the
//     fabric has quiesced cleanly, every chain replica must hold the
//     identical StateT/ShadowT/FilterT image and have applied the same
//     response stream — the NetChain-style state-machine-replication
//     contract.
//
// chaos_digest() folds the scheduler event count and every stats counter
// into one value: two same-seed runs must produce identical digests —
// the determinism half of the chaos-sweep contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace netclone::harness {

class Experiment;
class MultiRackExperiment;

struct InvariantReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// All violations joined with newlines ("" when ok).
  [[nodiscard]] std::string to_string() const;
};

/// Runs every invariant check against a finished (or quiesced) run.
[[nodiscard]] InvariantReport audit_invariants(const Experiment& exp);
[[nodiscard]] InvariantReport audit_invariants(const MultiRackExperiment& exp);

/// Deterministic fingerprint of a run: FNV-1a over the executed event
/// count and all client/server/switch/link/program counters.
[[nodiscard]] std::uint64_t chaos_digest(const Experiment& exp);
[[nodiscard]] std::uint64_t chaos_digest(const MultiRackExperiment& exp);

}  // namespace netclone::harness
