#include "harness/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "host/service.hpp"
#include "host/workload.hpp"
#include "kv/kv_workload.hpp"

namespace netclone::harness {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

double parse_double(const std::string& value, const std::string& key) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) {
      throw std::invalid_argument{""};
    }
    return v;
  } catch (const std::exception&) {
    throw ScenarioError{"bad numeric value for '" + key + "': " + value};
  }
}

std::uint64_t parse_u64(const std::string& value, const std::string& key) {
  const double v = parse_double(value, key);
  if (v < 0.0 || v != std::floor(v)) {
    throw ScenarioError{"'" + key + "' must be a non-negative integer"};
  }
  return static_cast<std::uint64_t>(v);
}

std::vector<double> parse_load_list(const std::string& value) {
  std::vector<double> loads;
  std::stringstream ss{value};
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double load = parse_double(trim(item), "loads");
    if (load <= 0.0 || load > 1.5) {
      throw ScenarioError{"load fractions must be in (0, 1.5]"};
    }
    loads.push_back(load);
  }
  if (loads.empty()) {
    throw ScenarioError{"'loads' must list at least one fraction"};
  }
  return loads;
}

}  // namespace

Scheme parse_scheme(const std::string& name) {
  const std::string n = lower(name);
  if (n == "baseline") {
    return Scheme::kBaseline;
  }
  if (n == "cclone" || n == "c-clone") {
    return Scheme::kCClone;
  }
  if (n == "laedge") {
    return Scheme::kLaedge;
  }
  if (n == "netclone") {
    return Scheme::kNetClone;
  }
  if (n == "netclone-nofilter") {
    return Scheme::kNetCloneNoFilter;
  }
  if (n == "racksched") {
    return Scheme::kRackSched;
  }
  if (n == "netclone-racksched") {
    return Scheme::kNetCloneRackSched;
  }
  throw ScenarioError{"unknown scheme: " + name};
}

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  std::stringstream stream{text};
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw ScenarioError{"line " + std::to_string(line_no) +
                          ": expected 'key = value'"};
    }
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) {
      throw ScenarioError{"line " + std::to_string(line_no) +
                          ": empty value for '" + key + "'"};
    }

    if (key == "scheme") {
      scenario.scheme = parse_scheme(value);
    } else if (key == "servers") {
      scenario.servers = parse_u64(value, key);
    } else if (key == "workers") {
      scenario.workers = static_cast<std::uint32_t>(parse_u64(value, key));
    } else if (key == "clients") {
      scenario.clients = parse_u64(value, key);
    } else if (key == "workload") {
      scenario.workload = lower(value);
    } else if (key == "mean_us") {
      scenario.mean_us = parse_double(value, key);
    } else if (key == "bimodal_short_us") {
      scenario.bimodal_short_us = parse_double(value, key);
    } else if (key == "bimodal_long_us") {
      scenario.bimodal_long_us = parse_double(value, key);
    } else if (key == "bimodal_short_fraction") {
      scenario.bimodal_short_fraction = parse_double(value, key);
    } else if (key == "get_fraction") {
      scenario.get_fraction = parse_double(value, key);
    } else if (key == "kv_objects") {
      scenario.kv_objects = parse_u64(value, key);
    } else if (key == "jitter_p") {
      scenario.jitter_p = parse_double(value, key);
    } else if (key == "jitter_multiplier") {
      scenario.jitter_multiplier = parse_double(value, key);
    } else if (key == "noise") {
      scenario.noise = parse_double(value, key);
    } else if (key == "loads") {
      scenario.loads = parse_load_list(value);
    } else if (key == "measure_ms") {
      scenario.measure_ms = parse_double(value, key);
    } else if (key == "warmup_ms") {
      scenario.warmup_ms = parse_double(value, key);
    } else if (key == "seed") {
      scenario.seed = parse_u64(value, key);
    } else if (key == "csv") {
      scenario.csv_path = value;
    } else if (key == "title") {
      scenario.title = value;
    } else if (key == "fault") {
      try {
        scenario.faults.events.push_back(parse_fault_entry(value));
      } catch (const FaultPlanError& err) {
        throw ScenarioError{"line " + std::to_string(line_no) + ": " +
                            err.what()};
      }
    } else {
      throw ScenarioError{"line " + std::to_string(line_no) +
                          ": unknown key '" + key + "'"};
    }
  }

  if (scenario.servers < 2) {
    throw ScenarioError{"'servers' must be >= 2"};
  }
  if (scenario.clients < 1) {
    throw ScenarioError{"'clients' must be >= 1"};
  }
  const bool known_workload =
      scenario.workload == "exp" || scenario.workload == "bimodal" ||
      scenario.workload == "fixed" || scenario.workload == "redis" ||
      scenario.workload == "memcached";
  if (!known_workload) {
    throw ScenarioError{"unknown workload: " + scenario.workload};
  }
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw ScenarioError{"cannot open scenario file: " + path};
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str());
}

ClusterConfig Scenario::build_config() const {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.num_clients = clients;
  cfg.server_workers.assign(servers, workers);
  cfg.warmup = SimTime::milliseconds(warmup_ms);
  cfg.measure = SimTime::milliseconds(measure_ms);
  cfg.seed = seed;
  cfg.faults = faults;

  const host::JitterModel jitter{jitter_p, jitter_multiplier, noise};
  if (workload == "exp") {
    cfg.factory = std::make_shared<host::ExponentialWorkload>(mean_us);
    cfg.service = std::make_shared<host::SyntheticService>(jitter);
  } else if (workload == "bimodal") {
    cfg.factory = std::make_shared<host::BimodalWorkload>(
        bimodal_short_fraction, bimodal_short_us, bimodal_long_us);
    cfg.service = std::make_shared<host::SyntheticService>(jitter);
  } else if (workload == "fixed") {
    cfg.factory = std::make_shared<host::FixedWorkload>(mean_us);
    cfg.service = std::make_shared<host::SyntheticService>(jitter);
  } else {
    const kv::KvCostProfile profile = workload == "redis"
                                          ? kv::redis_profile()
                                          : kv::memcached_profile();
    auto store = std::make_shared<kv::KvStore>(kv_objects);
    kv::populate(*store, kv_objects);
    kv::KvMix mix;
    mix.get_fraction = get_fraction;
    mix.num_keys = kv_objects;
    cfg.factory = std::make_shared<kv::KvRequestFactory>(mix, profile);
    cfg.service = std::make_shared<kv::KvService>(store, profile, jitter);
  }
  return cfg;
}

double Scenario::capacity_rps() const {
  const ClusterConfig cfg = build_config();
  const double inflation = 1.0 + jitter_p * (jitter_multiplier - 1.0);
  return cluster_capacity_rps(cfg.server_workers,
                              cfg.factory->mean_intrinsic_us() * inflation);
}

std::vector<SweepPoint> Scenario::run() const {
  const ClusterConfig cfg = build_config();
  const auto points = run_sweep(cfg, capacity_rps(), loads);
  print_series(title + " — " + std::string{scheme_name(scheme)} + " — " +
                   cfg.factory->label(),
               points);
  if (csv_path) {
    if (write_csv(*csv_path, points)) {
      std::printf("wrote %s\n", csv_path->c_str());
    }
  }
  return points;
}

std::string default_scenario_text() {
  return R"(# NetClone simulator scenario (all keys optional; defaults shown)
scheme     = netclone    # baseline | cclone | laedge | netclone |
                         # netclone-nofilter | racksched | netclone-racksched
servers    = 6
workers    = 16
clients    = 2
workload   = exp         # exp | bimodal | fixed | redis | memcached
mean_us    = 25          # exp / fixed intrinsic mean
# bimodal_short_us = 25
# bimodal_long_us  = 250
# bimodal_short_fraction = 0.9
# get_fraction = 0.99    # kv workloads: GET share (rest are SCANs)
# kv_objects   = 100000
jitter_p   = 0.01        # paper: 0.01 high / 0.001 low variability
jitter_multiplier = 15
noise      = 0.08        # per-execution microvariation (stddev)
loads      = 0.1,0.3,0.5,0.7,0.9
measure_ms = 25
warmup_ms  = 5
seed       = 1
# csv      = sweep.csv   # export the series
title      = scenario
# Timed faults (repeatable). Targets: links c<N>-sw0 / sw0-s<N>,
# servers s<N>, switch sw0.
# fault    = at=2s link_down sw0-s3
# fault    = at=2.5s link_up sw0-s3
# fault    = at=3s corrupt_rate sw0-s1 1e-4
# fault    = at=4s server_crash s2
# fault    = at=4.5s server_restart s2
# fault    = at=5s switch_wipe sw0
)";
}

}  // namespace netclone::harness
