#include "harness/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/groups.hpp"
#include "harness/traffic_shapes.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "kv/kv_workload.hpp"

namespace netclone::harness {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

double parse_double(const std::string& value, const std::string& key) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) {
      throw std::invalid_argument{""};
    }
    return v;
  } catch (const std::exception&) {
    throw ScenarioError{"bad numeric value for '" + key + "': " + value};
  }
}

std::uint64_t parse_u64(const std::string& value, const std::string& key) {
  const double v = parse_double(value, key);
  if (v < 0.0 || v != std::floor(v)) {
    throw ScenarioError{"'" + key + "' must be a non-negative integer"};
  }
  return static_cast<std::uint64_t>(v);
}

std::vector<double> parse_load_list(const std::string& value) {
  std::vector<double> loads;
  std::stringstream ss{value};
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double load = parse_double(trim(item), "loads");
    if (load <= 0.0 || load > 1.5) {
      throw ScenarioError{"load fractions must be in (0, 1.5]"};
    }
    loads.push_back(load);
  }
  if (loads.empty()) {
    throw ScenarioError{"'loads' must list at least one fraction"};
  }
  return loads;
}

/// The scenario's workload objects (shared by the single-rack and
/// fat-tree builders).
void make_workload(const Scenario& s,
                   std::shared_ptr<host::RequestFactory>& factory,
                   std::shared_ptr<host::ServiceModel>& service) {
  const host::JitterModel jitter{s.jitter_p, s.jitter_multiplier, s.noise};
  if (s.workload == "exp") {
    factory = std::make_shared<host::ExponentialWorkload>(s.mean_us);
    service = std::make_shared<host::SyntheticService>(jitter);
  } else if (s.workload == "bimodal") {
    factory = std::make_shared<host::BimodalWorkload>(
        s.bimodal_short_fraction, s.bimodal_short_us, s.bimodal_long_us);
    service = std::make_shared<host::SyntheticService>(jitter);
  } else if (s.workload == "fixed") {
    factory = std::make_shared<host::FixedWorkload>(s.mean_us);
    service = std::make_shared<host::SyntheticService>(jitter);
  } else {
    const kv::KvCostProfile profile = s.workload == "redis"
                                          ? kv::redis_profile()
                                          : kv::memcached_profile();
    auto store = std::make_shared<kv::KvStore>(s.kv_objects);
    kv::populate(*store, s.kv_objects);
    kv::KvMix mix;
    mix.get_fraction = s.get_fraction;
    mix.num_keys = s.kv_objects;
    factory = std::make_shared<kv::KvRequestFactory>(mix, profile);
    service = std::make_shared<kv::KvService>(store, profile, jitter);
  }
}

/// Compiles the generator keys into plain client parameters: a rate
/// profile for the temporal shape, group weights for the spatial one.
/// `steady` + zero skew + no hotspot leaves the template untouched, so
/// legacy scenarios draw the exact same random sequences as before.
void apply_traffic_shape(const Scenario& s, host::ClientParams& tmpl) {
  if (s.shape == "flash") {
    tmpl.rate_profile = flash_crowd_profile(
        SimTime::milliseconds(s.flash_at_ms),
        SimTime::milliseconds(s.flash_len_ms), s.flash_x);
  } else if (s.shape == "diurnal") {
    tmpl.rate_profile = diurnal_profile(
        SimTime::milliseconds(s.diurnal_period_ms), s.diurnal_min,
        SimTime::milliseconds(s.warmup_ms + s.measure_ms));
  }
  if (s.skew > 0.0 || s.hotspot_rack.has_value()) {
    const auto groups = core::build_group_pairs(s.total_servers());
    std::vector<double> weights(groups.size(), 1.0);
    if (s.skew > 0.0) {
      weights = zipf_weights(groups.size(), s.skew);
    }
    if (s.hotspot_rack.has_value()) {
      const std::vector<double> hot = hotspot_group_weights(
          groups, s.servers_per_rack, *s.hotspot_rack, s.hotspot_share);
      for (std::size_t i = 0; i < weights.size(); ++i) {
        weights[i] *= hot[i];
      }
    }
    tmpl.group_weights = std::move(weights);
  }
}

}  // namespace

Scheme parse_scheme(const std::string& name) {
  const std::string n = lower(name);
  if (n == "baseline") {
    return Scheme::kBaseline;
  }
  if (n == "cclone" || n == "c-clone") {
    return Scheme::kCClone;
  }
  if (n == "laedge") {
    return Scheme::kLaedge;
  }
  if (n == "netclone") {
    return Scheme::kNetClone;
  }
  if (n == "netclone-nofilter") {
    return Scheme::kNetCloneNoFilter;
  }
  if (n == "racksched") {
    return Scheme::kRackSched;
  }
  if (n == "netclone-racksched") {
    return Scheme::kNetCloneRackSched;
  }
  throw ScenarioError{"unknown scheme: " + name};
}

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  std::stringstream stream{text};
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    // Every parse problem below — missing '=', a bad numeric value, an
    // unknown key, a malformed fault entry — is rethrown with the line
    // number prefixed, so file diagnostics always point at the spot.
    try {
      const auto eq = line.find('=');
      if (eq == std::string::npos) {
        throw ScenarioError{"expected 'key = value'"};
      }
      const std::string key = lower(trim(line.substr(0, eq)));
      const std::string value = trim(line.substr(eq + 1));
      if (value.empty()) {
        throw ScenarioError{"empty value for '" + key + "'"};
      }

      if (key == "scheme") {
        scenario.scheme = parse_scheme(value);
      } else if (key == "servers") {
        scenario.servers = parse_u64(value, key);
      } else if (key == "workers") {
        scenario.workers =
            static_cast<std::uint32_t>(parse_u64(value, key));
      } else if (key == "clients") {
        scenario.clients = parse_u64(value, key);
      } else if (key == "workload") {
        scenario.workload = lower(value);
      } else if (key == "mean_us") {
        scenario.mean_us = parse_double(value, key);
      } else if (key == "bimodal_short_us") {
        scenario.bimodal_short_us = parse_double(value, key);
      } else if (key == "bimodal_long_us") {
        scenario.bimodal_long_us = parse_double(value, key);
      } else if (key == "bimodal_short_fraction") {
        scenario.bimodal_short_fraction = parse_double(value, key);
      } else if (key == "get_fraction") {
        scenario.get_fraction = parse_double(value, key);
      } else if (key == "kv_objects") {
        scenario.kv_objects = parse_u64(value, key);
      } else if (key == "jitter_p") {
        scenario.jitter_p = parse_double(value, key);
      } else if (key == "jitter_multiplier") {
        scenario.jitter_multiplier = parse_double(value, key);
      } else if (key == "noise") {
        scenario.noise = parse_double(value, key);
      } else if (key == "loads") {
        scenario.loads = parse_load_list(value);
      } else if (key == "measure_ms") {
        scenario.measure_ms = parse_double(value, key);
      } else if (key == "warmup_ms") {
        scenario.warmup_ms = parse_double(value, key);
      } else if (key == "seed") {
        scenario.seed = parse_u64(value, key);
      } else if (key == "csv") {
        scenario.csv_path = value;
      } else if (key == "title") {
        scenario.title = value;
      } else if (key == "racks") {
        scenario.racks = parse_u64(value, key);
      } else if (key == "servers_per_rack") {
        scenario.servers_per_rack = parse_u64(value, key);
      } else if (key == "aggs") {
        scenario.aggs = parse_u64(value, key);
      } else if (key == "agg_mode") {
        scenario.agg_mode = lower(value);
      } else if (key == "shards") {
        scenario.shards = parse_u64(value, key);
      } else if (key == "shape") {
        scenario.shape = lower(value);
      } else if (key == "flash_at_ms") {
        scenario.flash_at_ms = parse_double(value, key);
      } else if (key == "flash_len_ms") {
        scenario.flash_len_ms = parse_double(value, key);
      } else if (key == "flash_x") {
        scenario.flash_x = parse_double(value, key);
      } else if (key == "diurnal_period_ms") {
        scenario.diurnal_period_ms = parse_double(value, key);
      } else if (key == "diurnal_min") {
        scenario.diurnal_min = parse_double(value, key);
      } else if (key == "skew") {
        scenario.skew = parse_double(value, key);
      } else if (key == "hotspot_rack") {
        scenario.hotspot_rack = parse_u64(value, key);
      } else if (key == "hotspot_share") {
        scenario.hotspot_share = parse_double(value, key);
      } else if (key == "fault") {
        try {
          scenario.faults.events.push_back(parse_fault_entry(value));
        } catch (const FaultPlanError& err) {
          throw ScenarioError{err.what()};
        }
      } else {
        throw ScenarioError{"unknown key '" + key + "'"};
      }
    } catch (const ScenarioError& err) {
      throw ScenarioError{"line " + std::to_string(line_no) + ": " +
                          err.what()};
    }
  }

  if (scenario.racks == 0) {
    if (scenario.servers < 2) {
      throw ScenarioError{"'servers' must be >= 2"};
    }
    if (scenario.hotspot_rack.has_value()) {
      throw ScenarioError{
          "'hotspot_rack' needs a rack structure (set racks >= 1)"};
    }
  } else {
    if (scenario.servers_per_rack < 1) {
      throw ScenarioError{"'servers_per_rack' must be >= 1"};
    }
    if (scenario.racks * scenario.servers_per_rack < 2) {
      throw ScenarioError{
          "the fat tree needs at least two servers in total"};
    }
    if (scenario.aggs < 1) {
      throw ScenarioError{"'aggs' must be >= 1"};
    }
    if (scenario.agg_mode != "oblivious" &&
        scenario.agg_mode != "replicated") {
      throw ScenarioError{"unknown agg_mode: " + scenario.agg_mode +
                          " (expected oblivious | replicated)"};
    }
    if (scenario.scheme != Scheme::kNetClone) {
      throw ScenarioError{
          "multi-rack scenarios (racks >= 1) support scheme = netclone "
          "only"};
    }
    if (scenario.hotspot_rack.has_value() &&
        *scenario.hotspot_rack >= scenario.racks) {
      throw ScenarioError{"'hotspot_rack' names rack " +
                          std::to_string(*scenario.hotspot_rack) +
                          " but only " + std::to_string(scenario.racks) +
                          " racks exist"};
    }
  }
  if (scenario.clients < 1) {
    throw ScenarioError{"'clients' must be >= 1"};
  }
  const bool known_workload =
      scenario.workload == "exp" || scenario.workload == "bimodal" ||
      scenario.workload == "fixed" || scenario.workload == "redis" ||
      scenario.workload == "memcached";
  if (!known_workload) {
    throw ScenarioError{"unknown workload: " + scenario.workload};
  }
  if (scenario.shape != "steady" && scenario.shape != "flash" &&
      scenario.shape != "diurnal") {
    throw ScenarioError{"unknown shape: " + scenario.shape +
                        " (expected steady | flash | diurnal)"};
  }
  if (scenario.shape == "flash" &&
      (scenario.flash_x <= 0.0 || scenario.flash_len_ms <= 0.0 ||
       scenario.flash_at_ms < 0.0)) {
    throw ScenarioError{
        "flash crowd needs flash_at_ms >= 0, flash_len_ms > 0, "
        "flash_x > 0"};
  }
  if (scenario.shape == "diurnal" &&
      (scenario.diurnal_period_ms <= 0.0 || scenario.diurnal_min <= 0.0 ||
       scenario.diurnal_min > 1.0)) {
    throw ScenarioError{
        "diurnal curve needs diurnal_period_ms > 0 and diurnal_min in "
        "(0, 1]"};
  }
  if (scenario.skew < 0.0) {
    throw ScenarioError{"'skew' must be >= 0"};
  }
  if (scenario.hotspot_rack.has_value() &&
      (scenario.hotspot_share <= 0.0 || scenario.hotspot_share >= 1.0)) {
    throw ScenarioError{"'hotspot_share' must be in (0, 1)"};
  }
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw ScenarioError{"cannot open scenario file: " + path};
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_scenario(buffer.str());
  } catch (const ScenarioError& err) {
    throw ScenarioError{path + ": " + err.what()};
  }
}

std::size_t Scenario::total_servers() const {
  return racks == 0 ? servers : racks * servers_per_rack;
}

ClusterConfig Scenario::build_config() const {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.num_clients = clients;
  cfg.server_workers.assign(servers, workers);
  cfg.warmup = SimTime::milliseconds(warmup_ms);
  cfg.measure = SimTime::milliseconds(measure_ms);
  cfg.seed = seed;
  cfg.faults = faults;
  make_workload(*this, cfg.factory, cfg.service);
  apply_traffic_shape(*this, cfg.client_template);
  return cfg;
}

MultiRackConfig Scenario::build_multirack_config() const {
  NETCLONE_CHECK(racks >= 1,
                 "build_multirack_config needs a fat-tree scenario "
                 "(racks >= 1)");
  MultiRackConfig cfg;
  cfg.server_racks = racks;
  cfg.servers_per_rack = servers_per_rack;
  cfg.num_aggs = aggs;
  cfg.agg_mode = agg_mode == "replicated" ? AggMode::kReplicated
                                          : AggMode::kOblivious;
  cfg.workers = workers;
  cfg.num_clients = clients;
  cfg.warmup = SimTime::milliseconds(warmup_ms);
  cfg.measure = SimTime::milliseconds(measure_ms);
  cfg.seed = seed;
  cfg.faults = faults;
  cfg.num_shards = static_cast<std::size_t>(shards);
  make_workload(*this, cfg.factory, cfg.service);
  apply_traffic_shape(*this, cfg.client_template);
  return cfg;
}

double Scenario::capacity_rps() const {
  std::shared_ptr<host::RequestFactory> factory;
  std::shared_ptr<host::ServiceModel> service;
  make_workload(*this, factory, service);
  const double inflation = 1.0 + jitter_p * (jitter_multiplier - 1.0);
  const std::vector<std::uint32_t> worker_counts(total_servers(), workers);
  return cluster_capacity_rps(worker_counts,
                              factory->mean_intrinsic_us() * inflation);
}

std::vector<SweepPoint> Scenario::run() const {
  std::vector<SweepPoint> points;
  std::string workload_label;
  if (racks == 0) {
    const ClusterConfig cfg = build_config();
    points = run_sweep(cfg, capacity_rps(), loads);
    workload_label = cfg.factory->label();
  } else {
    const MultiRackConfig base = build_multirack_config();
    workload_label = base.factory->label();
    const double cap = capacity_rps();
    std::uint64_t salt = 0;
    for (const double fraction : loads) {
      MultiRackConfig cfg = base;
      cfg.offered_rps = cap * fraction;
      cfg.seed = base.seed + 1000 * ++salt;
      MultiRackExperiment experiment{cfg};
      points.push_back(SweepPoint{fraction, experiment.run()});
      char label[32];
      std::snprintf(label, sizeof(label), "load %.2f", fraction);
      print_link_coalescing(label, experiment.links());
    }
  }
  print_series(title + " — " + std::string{scheme_name(scheme)} + " — " +
                   workload_label,
               points);
  if (csv_path) {
    if (write_csv(*csv_path, points)) {
      std::printf("wrote %s\n", csv_path->c_str());
    }
  }
  return points;
}

std::string default_scenario_text() {
  return R"(# NetClone simulator scenario (all keys optional; defaults shown)
scheme     = netclone    # baseline | cclone | laedge | netclone |
                         # netclone-nofilter | racksched | netclone-racksched
servers    = 6
workers    = 16
clients    = 2
workload   = exp         # exp | bimodal | fixed | redis | memcached
mean_us    = 25          # exp / fixed intrinsic mean
# bimodal_short_us = 25
# bimodal_long_us  = 250
# bimodal_short_fraction = 0.9
# get_fraction = 0.99    # kv workloads: GET share (rest are SCANs)
# kv_objects   = 100000
jitter_p   = 0.01        # paper: 0.01 high / 0.001 low variability
jitter_multiplier = 15
noise      = 0.08        # per-execution microvariation (stddev)
loads      = 0.1,0.3,0.5,0.7,0.9
measure_ms = 25
warmup_ms  = 5
seed       = 1
# csv      = sweep.csv   # export the series
title      = scenario
# Multi-rack fat tree (racks >= 1 replaces `servers` with the pod below;
# netclone scheme only).
# racks            = 3
# servers_per_rack = 3
# aggs             = 2      # parallel aggregation switches
# agg_mode         = oblivious  # oblivious | replicated (chain-replicated
#                               # NetClone-aware aggregation tier)
# shards           = 0      # event-queue shards (0 = NETCLONE_SHARDS)
# Production traffic shapes (compile into client rate profiles/weights).
# shape            = steady # steady | flash | diurnal
# flash_at_ms      = 10
# flash_len_ms     = 5
# flash_x          = 4      # rate multiplier during the crowd
# diurnal_period_ms = 20
# diurnal_min      = 0.25   # trough multiplier
# skew             = 0      # Zipf exponent over candidate groups
# hotspot_rack     = 0      # concentrate load on one rack's groups
# hotspot_share    = 0.5    # share of draws on the hot rack
# Timed faults (repeatable). Single-rack targets: links c<N>-sw0 /
# sw0-s<N>, servers s<N>, switch sw0.
# fault    = at=2s link_down sw0-s3
# fault    = at=2.5s link_up sw0-s3
# fault    = at=3s corrupt_rate sw0-s1 1e-4
# fault    = at=4s server_crash s2
# fault    = at=4.5s server_restart s2
# fault    = at=5s switch_wipe sw0
# Fat-tree targets (racks >= 1): switches tor1/tor2../agg<N>, links
# tor1-agg0 / agg0-agg1 / tor2-s0, servers s<N> (global id), whole racks
# rack<N>, and the managed chain fail-over pair (agg_mode = replicated):
# fault    = at=2ms agg_fail agg1
# fault    = at=5ms agg_rejoin agg1
# fault    = at=3ms rack_down rack0
# fault    = at=4ms rack_up rack0
)";
}

}  // namespace netclone::harness
