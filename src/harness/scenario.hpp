// Text-file experiment scenarios and the CLI front end's engine.
//
// A scenario is a flat `key = value` file (# comments allowed) describing
// one cluster + workload + sweep, e.g.:
//
//     scheme     = netclone        # baseline | cclone | laedge | netclone |
//                                  # netclone-nofilter | racksched |
//                                  # netclone-racksched
//     servers    = 6
//     workers    = 16
//     clients    = 2
//     workload   = exp             # exp | bimodal | fixed | redis | memcached
//     mean_us    = 25
//     jitter_p   = 0.01
//     loads      = 0.1,0.3,0.5,0.7,0.9
//     measure_ms = 25
//     csv        = sweep.csv       # optional CSV export
//
// Setting `racks >= 1` switches the run onto the multi-rack fat-tree
// harness (MultiRackExperiment): `servers_per_rack`, `aggs`, `agg_mode`,
// and `shards` shape the pod. The traffic-shape generator keys (`shape`,
// `skew`, `hotspot_rack`, ...) compile production traffic patterns into
// plain client parameters and work with every scheme and harness.
//
// parse_scenario() validates keys and values; Scenario::run() executes the
// sweep and prints the standard series table.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/multirack.hpp"
#include "harness/report.hpp"

namespace netclone::harness {

/// Thrown on unknown keys, malformed values, or inconsistent settings.
/// The message always carries a `line N:` prefix for parse problems (and
/// a `<path>:` prefix when the scenario came from a file).
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what)
      : std::runtime_error(what) {}
};

struct Scenario {
  Scheme scheme = Scheme::kNetClone;
  std::size_t servers = 6;
  std::uint32_t workers = 16;
  std::size_t clients = 2;
  std::string workload = "exp";
  double mean_us = 25.0;
  double bimodal_short_us = 25.0;
  double bimodal_long_us = 250.0;
  double bimodal_short_fraction = 0.9;
  double get_fraction = 0.99;   // kv workloads
  std::uint64_t kv_objects = 100000;
  double jitter_p = 0.01;
  double jitter_multiplier = 15.0;
  double noise = 0.08;
  std::vector<double> loads = {0.1, 0.3, 0.5, 0.7, 0.9};
  double measure_ms = 25.0;
  double warmup_ms = 5.0;
  std::uint64_t seed = 1;
  std::optional<std::string> csv_path{};
  std::string title = "scenario";
  /// Timed fault entries from repeatable `fault =` lines, e.g.
  /// `fault = at=2s link_down sw0-s3`. Parsed (and validated) at
  /// scenario-parse time. Single-rack runs resolve sw0/c<N>/s<N> names;
  /// fat-tree runs (racks >= 1) resolve tor/agg/rack names, including
  /// the managed `agg_fail`/`agg_rejoin` chain fail-over pair.
  FaultPlan faults{};

  // -- multi-rack fat tree (racks >= 1 selects MultiRackExperiment) -------
  std::size_t racks = 0;          // server racks; 0 = classic single rack
  std::size_t servers_per_rack = 3;
  std::size_t aggs = 1;           // parallel aggregation switches
  std::string agg_mode = "oblivious";  // oblivious | replicated
  std::uint64_t shards = 0;       // 0 = NETCLONE_SHARDS / legacy

  // -- production traffic shapes ------------------------------------------
  std::string shape = "steady";   // steady | flash | diurnal
  double flash_at_ms = 10.0;
  double flash_len_ms = 5.0;
  double flash_x = 4.0;           // rate multiplier during the crowd
  double diurnal_period_ms = 20.0;
  double diurnal_min = 0.25;      // trough multiplier
  double skew = 0.0;              // Zipf exponent over candidate groups
  std::optional<std::size_t> hotspot_rack{};  // multi-rack only
  double hotspot_share = 0.5;     // draw mass on the hot rack's groups

  /// Builds the base cluster configuration (offered_rps left at 0; run()
  /// fills it per load point) plus the capacity estimate.
  [[nodiscard]] ClusterConfig build_config() const;
  /// The fat-tree equivalent, valid when racks >= 1.
  [[nodiscard]] MultiRackConfig build_multirack_config() const;
  [[nodiscard]] double capacity_rps() const;
  /// Total worker hosts (racks * servers_per_rack in fat-tree mode).
  [[nodiscard]] std::size_t total_servers() const;

  /// Runs the sweep, prints the series, optionally writes CSV.
  std::vector<SweepPoint> run() const;
};

/// Parses `key = value` text into a Scenario. Unknown keys and malformed
/// values raise ScenarioError with a line reference.
[[nodiscard]] Scenario parse_scenario(const std::string& text);

/// Reads and parses a scenario file. Parse errors are re-raised with the
/// path prefixed, so `file.cfg: line 3: ...` points at the exact spot.
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

/// A template scenario file with every supported key.
[[nodiscard]] std::string default_scenario_text();

/// Parses a scheme name ("netclone", "c-clone", ...); throws on unknown.
[[nodiscard]] Scheme parse_scheme(const std::string& name);

}  // namespace netclone::harness
