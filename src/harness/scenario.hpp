// Text-file experiment scenarios and the CLI front end's engine.
//
// A scenario is a flat `key = value` file (# comments allowed) describing
// one cluster + workload + sweep, e.g.:
//
//     scheme     = netclone        # baseline | cclone | laedge | netclone |
//                                  # netclone-nofilter | racksched |
//                                  # netclone-racksched
//     servers    = 6
//     workers    = 16
//     clients    = 2
//     workload   = exp             # exp | bimodal | fixed | redis | memcached
//     mean_us    = 25
//     jitter_p   = 0.01
//     loads      = 0.1,0.3,0.5,0.7,0.9
//     measure_ms = 25
//     csv        = sweep.csv       # optional CSV export
//
// parse_scenario() validates keys and values; Scenario::run() executes the
// sweep and prints the standard series table.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace netclone::harness {

/// Thrown on unknown keys, malformed values, or inconsistent settings.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what)
      : std::runtime_error(what) {}
};

struct Scenario {
  Scheme scheme = Scheme::kNetClone;
  std::size_t servers = 6;
  std::uint32_t workers = 16;
  std::size_t clients = 2;
  std::string workload = "exp";
  double mean_us = 25.0;
  double bimodal_short_us = 25.0;
  double bimodal_long_us = 250.0;
  double bimodal_short_fraction = 0.9;
  double get_fraction = 0.99;   // kv workloads
  std::uint64_t kv_objects = 100000;
  double jitter_p = 0.01;
  double jitter_multiplier = 15.0;
  double noise = 0.08;
  std::vector<double> loads = {0.1, 0.3, 0.5, 0.7, 0.9};
  double measure_ms = 25.0;
  double warmup_ms = 5.0;
  std::uint64_t seed = 1;
  std::optional<std::string> csv_path{};
  std::string title = "scenario";
  /// Timed fault entries from repeatable `fault =` lines, e.g.
  /// `fault = at=2s link_down sw0-s3`. Parsed (and validated) at
  /// scenario-parse time.
  FaultPlan faults{};

  /// Builds the base cluster configuration (offered_rps left at 0; run()
  /// fills it per load point) plus the capacity estimate.
  [[nodiscard]] ClusterConfig build_config() const;
  [[nodiscard]] double capacity_rps() const;

  /// Runs the sweep, prints the series, optionally writes CSV.
  std::vector<SweepPoint> run() const;
};

/// Parses `key = value` text into a Scenario. Unknown keys and malformed
/// values raise ScenarioError with a line reference.
[[nodiscard]] Scenario parse_scenario(const std::string& text);

/// Reads and parses a scenario file.
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

/// A template scenario file with every supported key.
[[nodiscard]] std::string default_scenario_text();

/// Parses a scheme name ("netclone", "c-clone", ...); throws on unknown.
[[nodiscard]] Scheme parse_scheme(const std::string& name);

}  // namespace netclone::harness
