#include "harness/analysis.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace netclone::harness {

double MmcModel::utilization() const {
  NETCLONE_CHECK(servers > 0, "M/M/c needs at least one server");
  return arrival_rate * mean_service_s / static_cast<double>(servers);
}

double MmcModel::probability_of_wait() const {
  const double a = arrival_rate * mean_service_s;  // offered Erlangs
  const double c = static_cast<double>(servers);
  const double rho = a / c;
  if (rho >= 1.0) {
    return 1.0;
  }
  // Erlang-C via the numerically stable iterative Erlang-B recursion:
  //   B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1));  C = B / (1 - rho(1-B)).
  double b = 1.0;
  for (std::uint32_t k = 1; k <= servers; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  return b / (1.0 - rho * (1.0 - b));
}

double MmcModel::mean_wait_s() const {
  const double rho = utilization();
  if (rho >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double c = static_cast<double>(servers);
  return probability_of_wait() * mean_service_s /
         (c * (1.0 - rho));
}

double MmcModel::mean_sojourn_s() const {
  return mean_wait_s() + mean_service_s;
}

double MmcModel::probability_queue_empty() const {
  // In an M/M/c queue the waiting line is empty iff N <= c. Compute
  // P(N <= c) from the stationary distribution.
  const double a = arrival_rate * mean_service_s;
  const double c = static_cast<double>(servers);
  const double rho = a / c;
  if (rho >= 1.0) {
    return 0.0;
  }
  // p0 normalization.
  double sum = 0.0;
  double term = 1.0;  // a^0 / 0!
  for (std::uint32_t k = 0; k < servers; ++k) {
    sum += term;
    term *= a / static_cast<double>(k + 1);
  }
  // term now a^c / c!
  const double tail = term / (1.0 - rho);  // sum over N >= c
  const double p0 = 1.0 / (sum + tail);
  // P(N <= c) = p0 * (sum_{k<c} a^k/k! + a^c/c!).
  return p0 * (sum + term);
}

double exponential_quantile(double mean, double q) {
  NETCLONE_CHECK(q >= 0.0 && q < 1.0, "quantile must be in [0,1)");
  return -mean * std::log(1.0 - q);
}

double jitter_mixture_quantile(double mean, double p, double multiplier,
                               double q) {
  NETCLONE_CHECK(q >= 0.0 && q < 1.0, "quantile must be in [0,1)");
  // Solve P(X > t) = (1-p) e^{-t/mean} + p e^{-t/(mean*mult)} = 1-q by
  // bisection; the survival function is strictly decreasing.
  const double target = 1.0 - q;
  double lo = 0.0;
  double hi = mean * multiplier * 50.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double survival = (1.0 - p) * std::exp(-mid / mean) +
                            p * std::exp(-mid / (mean * multiplier));
    if (survival > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace netclone::harness
