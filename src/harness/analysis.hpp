// Queueing-theory reference models (M/M/c), used two ways:
//   * validation — the simulated server is, at its core, an M/M/c queue
//     when fed Poisson arrivals and exponential service with no jitter;
//     tests assert the simulator reproduces Erlang-C waiting times;
//   * capacity planning in the harness (expected wait at a target load).
#pragma once

#include <cstdint>

namespace netclone::harness {

/// Offered load a = lambda * E[S] in Erlangs.
struct MmcModel {
  std::uint32_t servers = 1;   // c
  double arrival_rate = 0.0;   // lambda, per second
  double mean_service_s = 0.0; // E[S], seconds

  [[nodiscard]] double utilization() const;  // rho = a / c

  /// Erlang-C: probability an arriving request waits.
  [[nodiscard]] double probability_of_wait() const;

  /// Mean waiting time in queue, Wq (seconds). Infinite when rho >= 1.
  [[nodiscard]] double mean_wait_s() const;

  /// Mean sojourn time W = Wq + E[S] (seconds).
  [[nodiscard]] double mean_sojourn_s() const;

  /// Probability that the queue is empty AND at least one server is free —
  /// NetClone's "idle" signal is queue emptiness; for an M/M/c queue the
  /// queue is empty iff fewer than c jobs are in the system... plus the
  /// boundary state. This returns P(N < c) + P(N = c) = P(queue empty).
  [[nodiscard]] double probability_queue_empty() const;
};

/// The q-th quantile of an exponential distribution with the given mean.
[[nodiscard]] double exponential_quantile(double mean, double q);

/// The q-th quantile of the two-component mixture the paper's jitter model
/// induces: with probability p the value is scaled by `multiplier`.
[[nodiscard]] double jitter_mixture_quantile(double mean, double p,
                                             double multiplier, double q);

}  // namespace netclone::harness
