// Experiment harness: builds a rack (clients + ToR switch + workers, plus
// the LÆDGE coordinator when compared), drives an open-loop load, and
// collects the metrics the paper's figures plot.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/l3_program.hpp"
#include "baselines/laedge.hpp"
#include "core/controller.hpp"
#include "baselines/netclone_racksched.hpp"
#include "baselines/racksched_program.hpp"
#include "common/types.hpp"
#include "core/netclone_program.hpp"
#include "harness/engine.hpp"
#include "harness/faults.hpp"
#include "host/client.hpp"
#include "host/server.hpp"
#include "phys/topology.hpp"
#include "pisa/switch_device.hpp"
#include "sim/scheduler.hpp"

namespace netclone::harness {

/// The compared systems (§5.1.3 + §3.7).
enum class Scheme {
  kBaseline,           // random worker choice at the client, no cloning
  kCClone,             // client-based static cloning
  kLaedge,             // coordinator-based dynamic cloning
  kNetClone,           // this paper
  kNetCloneNoFilter,   // Fig. 15 ablation: cloning without response filtering
  kRackSched,          // in-switch JSQ, no cloning
  kNetCloneRackSched,  // §3.7 integration
};

[[nodiscard]] const char* scheme_name(Scheme scheme);

struct ClusterConfig {
  Scheme scheme = Scheme::kNetClone;
  std::size_t num_clients = 2;
  /// Worker threads per server; the vector length is the server count.
  std::vector<std::uint32_t> server_workers = {16, 16, 16, 16, 16, 16};
  /// Total offered load across all clients, requests per second.
  double offered_rps = 1e6;
  SimTime warmup = SimTime::milliseconds(10);
  SimTime measure = SimTime::milliseconds(60);
  /// Extra simulated time after senders stop, letting tails drain.
  SimTime drain = SimTime::milliseconds(30);
  std::uint64_t seed = 1;

  /// Workload (shared by all clients) and service (shared by all servers).
  std::shared_ptr<host::RequestFactory> factory;
  std::shared_ptr<host::ServiceModel> service;

  core::NetCloneConfig netclone{};
  /// Coordinator CPU cost per packet for the LÆDGE scheme.
  SimTime laedge_packet_cost = SimTime::nanoseconds(1200);

  host::ClientParams client_template{};
  host::ServerParams server_template{};
  pisa::SwitchParams switch_params{};

  /// Timed faults installed at build time and fired through the
  /// Scheduler (deterministic relative to every other event).
  FaultPlan faults{};

  /// Event-queue shards. 0 = resolve from NETCLONE_SHARDS, falling back
  /// to the single-queue legacy engine when the variable is unset too.
  /// Any value >= 1 uses sim::ShardedSimulator (1 = sharded machinery on
  /// one queue — the merge-overhead baseline). Digests are bit-identical
  /// for every choice.
  std::size_t num_shards = 0;
  /// Optional per-host shard override, indexed servers-then-clients in
  /// build order (s0..sN, then c0..cM; the switch and the LÆDGE
  /// coordinator are always shard 0). Empty = round-robin hosts across
  /// shards 1..N-1 (all on shard 0 when N == 1).
  std::vector<std::uint32_t> shard_assignment;
};

struct ExperimentResult {
  Scheme scheme{};
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double mean_us = 0.0;
  SimTime p50{};
  SimTime p99{};
  SimTime p999{};
  /// Decomposition of the measured samples (server-reported): where the
  /// tail comes from — queueing or execution.
  SimTime server_wait_p99{};
  SimTime server_service_p99{};
  std::uint64_t requests_sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t redundant_responses = 0;
  // Scheme internals (zero where not applicable):
  std::uint64_t cloned_requests = 0;
  std::uint64_t filtered_responses = 0;
  std::uint64_t dropped_stale_clones = 0;
  double empty_queue_fraction = 0.0;  // Fig. 13a signal
  pisa::SwitchStats switch_stats{};
};

/// One built-and-runnable cluster. Construction wires the topology;
/// run() executes warmup + measurement and returns the result. The object
/// stays inspectable afterwards (tests look at program/server stats), and
/// failure injection (Fig. 16) is exposed for timeline runs.
class Experiment {
 public:
  explicit Experiment(ClusterConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs the whole schedule and collects metrics.
  [[nodiscard]] ExperimentResult run();

  /// Timeline mode (Fig. 16): runs for `total` and returns completed
  /// requests per `bin`, with optional switch failure injection.
  [[nodiscard]] std::vector<std::uint64_t> run_timeline(
      SimTime total, SimTime bin, std::optional<SimTime> fail_at,
      std::optional<SimTime> recover_at);

  /// §3.6 server-failure handling, available for the NetClone schemes:
  /// the control plane removes the worker from the candidate groups and
  /// every client learns the shrunken group count. The server process
  /// itself keeps draining whatever it already accepted. Requests already
  /// in flight with now-stale group ids are dropped at the switch — the
  /// brief reconfiguration loss a real deployment would also see.
  void remove_server(ServerId sid);

  /// Schedules every entry of `plan` through the Scheduler. The plan
  /// from ClusterConfig is installed automatically at build time; this
  /// lets tests/benches add more afterwards.
  void install_fault_plan(const FaultPlan& plan);

  /// Applies one fault right now. Throws via NETCLONE_CHECK on unknown
  /// targets or scheme mismatches (e.g. filter_stale without NetClone).
  void apply_fault(const FaultEvent& event);

  /// Directed link by name (`c0-sw0`, `sw0-s3`, `co0-sw0`); nullptr when
  /// no such link exists.
  [[nodiscard]] phys::Link* link(const std::string& name) const;

  /// All directed links with their harness names, for the auditor.
  [[nodiscard]] const std::vector<std::pair<std::string, phys::Link*>>&
  links() const {
    return links_;
  }

  /// Scheduling surface of the engine, for tests/benches that inject
  /// events (failures, reconfigurations) into a run. In a sharded run
  /// this is the control scheduler: events fire at a global barrier,
  /// ordered before same-instant shard events — the same place the
  /// legacy engine's install-time tiny seqs put them.
  [[nodiscard]] sim::Scheduler& scheduler();
  /// Engine telemetry: events executed so far (determinism fingerprint)
  /// and the share of those folded into neighbours by burst coalescing.
  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::uint64_t absorbed_events() const;
  /// Shards actually in use (0 = unsharded legacy engine).
  [[nodiscard]] std::size_t num_shards() const;
  /// Frame-pool balance sheets: one entry per shard pool, or a single
  /// entry for the process-wide pool when unsharded. The invariant
  /// auditor checks live == acquired − released on each.
  [[nodiscard]] std::vector<wire::FramePool::Stats> frame_pool_stats() const;
  [[nodiscard]] pisa::SwitchDevice& tor() { return *switch_; }
  [[nodiscard]] const pisa::SwitchDevice& tor() const { return *switch_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<host::Server*>& servers() const {
    return servers_;
  }
  [[nodiscard]] const std::vector<host::Client*>& clients() const {
    return clients_;
  }
  [[nodiscard]] const core::NetCloneProgram* netclone_program() const {
    return netclone_program_.get();
  }

 private:
  void build();
  [[nodiscard]] ExperimentResult collect() const;
  /// Scheduler a node on `shard` runs on (the single engine when
  /// unsharded).
  [[nodiscard]] sim::Scheduler& shard_scheduler(std::size_t shard);
  /// Shard of the host with build-order index `host_index`
  /// (servers-then-clients).
  [[nodiscard]] std::size_t host_shard(std::size_t host_index) const;
  /// topology_->connect() plus, when the endpoints' shards differ, the
  /// cross-shard mailbox wiring for both directions.
  phys::DuplexPorts connect_nodes(phys::Node& a, std::size_t shard_a,
                                  phys::Node& b, std::size_t shard_b,
                                  phys::LinkParams params = {});
  void record_link(const std::string& a, const std::string& b,
                   const phys::DuplexPorts& ports);
  /// Per-link impairment RNG seed, derived from the config seed and the
  /// link name without consuming root_rng_ draws.
  [[nodiscard]] std::uint64_t impairment_seed(const std::string& name) const;

  ClusterConfig config_;
  Rng root_rng_;
  // The engine must outlive topology_ (links cancel events and nodes
  // release pooled frames on destruction), so it is declared before it.
  std::unique_ptr<EngineContext> engine_;
  std::unique_ptr<phys::Topology> topology_;
  pisa::SwitchDevice* switch_ = nullptr;
  std::vector<host::Server*> servers_;
  std::vector<host::Client*> clients_;
  /// Directed links keyed by `<src>-<dst>` harness names.
  std::vector<std::pair<std::string, phys::Link*>> links_;
  baselines::LaedgeCoordinator* coordinator_ = nullptr;
  // Exactly one of these is loaded, depending on the scheme.
  std::shared_ptr<core::NetCloneProgram> netclone_program_;
  std::unique_ptr<core::Controller> controller_;  // NetClone schemes only
  std::shared_ptr<baselines::L3ForwardProgram> l3_program_;
  std::shared_ptr<baselines::RackSchedProgram> racksched_program_;
  std::shared_ptr<baselines::NetCloneRackSchedProgram> integration_program_;
};

/// Total worker capacity of a cluster in requests per second, given the
/// mean *effective* service time (intrinsic mean × jitter inflation).
[[nodiscard]] double cluster_capacity_rps(
    const std::vector<std::uint32_t>& server_workers,
    double mean_service_us);

}  // namespace netclone::harness
