// Sweep driving and figure-style reporting for the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace netclone::harness {

struct SweepPoint {
  double load_fraction = 0.0;
  ExperimentResult result;
};

/// Standard load points used by the paper's latency-throughput curves.
[[nodiscard]] std::vector<double> default_load_points();

/// Runs `base` at each load fraction of `capacity_rps` and returns the
/// points. Each point gets a derived seed so runs are independent but the
/// whole sweep is reproducible.
[[nodiscard]] std::vector<SweepPoint> run_sweep(
    const ClusterConfig& base, double capacity_rps,
    const std::vector<double>& load_fractions);

/// Prints the header + one row per point in the format every bench emits:
///   scheme, offered load fraction, achieved KRPS, p50/p99/p99.9 (us), ...
void print_series(const std::string& title,
                  const std::vector<SweepPoint>& points);

/// Per-link burst-coalescing telemetry: the fabric-wide absorption rate
/// plus one row per link that delivered frames by riding an earlier
/// frame's delivery event (NETCLONE_BURST). Prints nothing when no link
/// coalesced, so oracle-mode output stays byte-identical. Works for any
/// harness exposing named links (Experiment and MultiRackExperiment).
void print_link_coalescing(
    const std::string& label,
    const std::vector<std::pair<std::string, phys::Link*>>& links);

/// Accumulates named pass/fail conditions ("C-Clone saturates at about
/// half of baseline throughput") and prints a SHAPE-CHECK verdict block;
/// returns true when everything held.
class ShapeCheck {
 public:
  void expect(bool condition, const std::string& label);
  /// Prints all outcomes; returns overall success.
  bool report() const;

 private:
  struct Entry {
    bool ok;
    std::string label;
  };
  std::vector<Entry> entries_;
};

/// Global duration multiplier for bench runs, from NETCLONE_BENCH_SCALE
/// (default 1.0). Values < 1 shorten runs for smoke testing; > 1 tightens
/// tails for paper-quality curves.
[[nodiscard]] double bench_scale();

/// Scales a duration by bench_scale().
[[nodiscard]] SimTime scaled(SimTime t);

/// Writes one sweep as CSV (header + one row per point) for external
/// plotting. Returns false (and logs) when the file cannot be opened.
bool write_csv(const std::string& path,
               const std::vector<SweepPoint>& points);

/// Peak 99th-percentile improvement of `b` over `a` at matching loads
/// (max over points of p99_a / p99_b).
[[nodiscard]] double best_p99_improvement(
    const std::vector<SweepPoint>& a, const std::vector<SweepPoint>& b);

/// Highest achieved throughput across a sweep.
[[nodiscard]] double peak_throughput(const std::vector<SweepPoint>& points);

}  // namespace netclone::harness
