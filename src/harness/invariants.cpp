#include "harness/invariants.hpp"

#include <sstream>

#include "harness/experiment.hpp"
#include "wire/framebuf.hpp"

namespace netclone::harness {

namespace {

/// Appends "name: detail" when `bad` holds.
void check(InvariantReport& report, bool bad, const std::string& what) {
  if (bad) {
    report.violations.push_back(what);
  }
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i != 0) {
      out << '\n';
    }
    out << violations[i];
  }
  return out.str();
}

InvariantReport audit_invariants(const Experiment& exp) {
  InvariantReport report;

  // -- client accounting: exactly-once completion ------------------------
  for (std::size_t i = 0; i < exp.clients().size(); ++i) {
    const host::Client& client = *exp.clients()[i];
    const host::ClientStats& cs = client.stats();
    const host::Client::Audit audit = client.audit();
    const std::string who = "client c" + std::to_string(i);
    check(report, audit.completed_entries != cs.completed,
          who + ": completed stat " + u64(cs.completed) +
              " != completed request entries " +
              u64(audit.completed_entries) +
              " (a request completed twice or a completion went " +
              "unrecorded)");
    check(report,
          cs.requests_sent !=
              audit.completed_entries + audit.incomplete_entries,
          who + ": requests_sent " + u64(cs.requests_sent) +
              " != completed " + u64(audit.completed_entries) +
              " + incomplete " + u64(audit.incomplete_entries) +
              " (a request vanished without being accounted)");
  }

  // -- server structure --------------------------------------------------
  for (std::size_t i = 0; i < exp.servers().size(); ++i) {
    const host::Server& server = *exp.servers()[i];
    const std::string who = "server s" + std::to_string(i);
    if (server.crashed()) {
      check(report, server.queue_depth() != 0,
            who + ": crashed but queue depth is " +
                u64(server.queue_depth()));
      check(report, server.busy_workers() != 0,
            who + ": crashed but busy_workers is " +
                u64(server.busy_workers()));
    }
  }

  // -- link occupancy ----------------------------------------------------
  for (const auto& [name, link] : exp.links()) {
    check(report, link->queued() > link->params().queue_capacity,
          "link " + name + ": drop-tail occupancy " + u64(link->queued()) +
              " exceeds capacity " + u64(link->params().queue_capacity));
    check(report, link->queued() > link->in_flight(),
          "link " + name + ": queued " + u64(link->queued()) +
              " exceeds in-flight " + u64(link->in_flight()));
    check(report, !link->is_up() && link->in_flight() != 0,
          "link " + name + ": down but still has " +
              u64(link->in_flight()) + " frames in flight");
  }

  // -- switch conservation -----------------------------------------------
  const pisa::SwitchStats& sw = exp.tor().stats();
  const std::uint64_t accounted = sw.parse_errors + sw.dropped_by_program +
                                  sw.dropped_while_failed +
                                  sw.egress_scheduled;
  check(report, sw.rx_frames != accounted,
        "switch: rx_frames " + u64(sw.rx_frames) +
            " != parse_errors + dropped_by_program + "
            "dropped_while_failed + egress_scheduled = " +
            u64(accounted));
  // Emissions can only come from scheduled egress passes; <= because
  // frames still traversing the pipeline have been scheduled but not yet
  // emitted (and failed-mid-flight frames are flushed).
  check(report,
        sw.tx_frames + sw.recirculated + sw.flushed_in_pipeline >
            sw.egress_scheduled + sw.multicast_copies,
        "switch: tx_frames " + u64(sw.tx_frames) + " + recirculated " +
            u64(sw.recirculated) + " + flushed_in_pipeline " +
            u64(sw.flushed_in_pipeline) + " exceeds egress_scheduled " +
            u64(sw.egress_scheduled) + " + multicast_copies " +
            u64(sw.multicast_copies));

  // -- filter accounting -------------------------------------------------
  if (exp.netclone_program() != nullptr) {
    const core::NetCloneProgramStats& ps = exp.netclone_program()->stats();
    check(report,
          ps.filtered_responses >
              ps.fingerprints_stored + ps.injected_stale_entries,
          "program: filtered_responses " + u64(ps.filtered_responses) +
              " exceeds fingerprints_stored " +
              u64(ps.fingerprints_stored) + " + injected_stale_entries " +
              u64(ps.injected_stale_entries));
  }

  // -- frame-pool balance ------------------------------------------------
  // One balance sheet per shard pool (a single global one when
  // unsharded). Cross-shard handoffs are byte copies, so every buffer
  // releases into the pool that acquired it and each sheet must balance
  // on its own.
  const std::vector<wire::FramePool::Stats> pools = exp.frame_pool_stats();
  for (std::size_t i = 0; i < pools.size(); ++i) {
    const wire::FramePool::Stats& pool = pools[i];
    const std::string who =
        pools.size() == 1 ? std::string("frame pool")
                          : "frame pool (shard " + std::to_string(i) + ")";
    check(report, pool.released > pool.acquired,
          who + ": released " + u64(pool.released) + " exceeds acquired " +
              u64(pool.acquired));
    check(report, pool.live != pool.acquired - pool.released,
          who + ": live " + u64(pool.live) + " != acquired " +
              u64(pool.acquired) + " - released " + u64(pool.released));
  }

  return report;
}

std::uint64_t chaos_digest(const Experiment& exp) {
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  const auto fold = [&digest](std::uint64_t value) {
    // FNV-1a, one byte at a time, over the value's 8 bytes.
    for (int shift = 0; shift < 64; shift += 8) {
      digest ^= (value >> shift) & 0xFFU;
      digest *= 0x100000001B3ULL;
    }
  };

  fold(exp.executed_events());

  for (const host::Client* client : exp.clients()) {
    const host::ClientStats& cs = client->stats();
    fold(cs.requests_sent);
    fold(cs.packets_sent);
    fold(cs.completed);
    fold(cs.completed_in_window);
    fold(cs.redundant_responses);
    fold(cs.unmatched_responses);
    fold(cs.checksum_drops);
    fold(cs.retransmissions);
    fold(cs.cancels_sent);
  }

  for (const host::Server* server : exp.servers()) {
    const host::ServerStats& ss = server->stats();
    fold(ss.rx_requests);
    fold(ss.completed);
    fold(ss.dropped_stale_clones);
    fold(ss.duplicate_fragments);
    fold(ss.expired_partials);
    fold(ss.cancelled_requests);
    fold(ss.checksum_drops);
    fold(ss.crashes);
    fold(ss.dropped_while_crashed);
    fold(ss.paused_frames);
    fold(ss.abandoned_in_flight);
  }

  const pisa::SwitchStats& sw = exp.tor().stats();
  fold(sw.rx_frames);
  fold(sw.tx_frames);
  fold(sw.dropped_by_program);
  fold(sw.recirculated);
  fold(sw.multicast_copies);
  fold(sw.parse_errors);
  fold(sw.dropped_while_failed);
  fold(sw.egress_scheduled);
  fold(sw.flushed_in_pipeline);
  fold(sw.soft_state_wipes);

  for (const auto& [name, link] : exp.links()) {
    const phys::LinkStats& ls = link->stats();
    fold(ls.tx_frames);
    fold(ls.tx_bytes);
    fold(ls.dropped_frames);
    fold(ls.flushed_frames);
    fold(ls.impaired_drops);
    fold(ls.corrupted_frames);
    fold(ls.duplicated_frames);
    fold(ls.reordered_frames);
  }

  if (exp.netclone_program() != nullptr) {
    const core::NetCloneProgramStats& ps = exp.netclone_program()->stats();
    fold(ps.requests);
    fold(ps.cloned_requests);
    fold(ps.recirculated_clones);
    fold(ps.responses);
    fold(ps.fingerprints_stored);
    fold(ps.filtered_responses);
    fold(ps.missing_route_drops);
    fold(ps.injected_stale_entries);
  }

  return digest;
}

}  // namespace netclone::harness
