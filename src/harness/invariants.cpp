#include "harness/invariants.hpp"

#include <sstream>

#include "harness/experiment.hpp"
#include "harness/multirack.hpp"
#include "wire/framebuf.hpp"

namespace netclone::harness {

namespace {

/// Appends "name: detail" when `bad` holds.
void check(InvariantReport& report, bool bad, const std::string& what) {
  if (bad) {
    report.violations.push_back(what);
  }
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

// ---- shared audit sections (Experiment and MultiRackExperiment) ----------

void audit_clients(InvariantReport& report,
                   const std::vector<host::Client*>& clients) {
  // Client accounting: exactly-once completion.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const host::Client& client = *clients[i];
    const host::ClientStats& cs = client.stats();
    const host::Client::Audit audit = client.audit();
    const std::string who = "client c" + std::to_string(i);
    check(report, audit.completed_entries != cs.completed,
          who + ": completed stat " + u64(cs.completed) +
              " != completed request entries " +
              u64(audit.completed_entries) +
              " (a request completed twice or a completion went " +
              "unrecorded)");
    check(report,
          cs.requests_sent !=
              audit.completed_entries + audit.incomplete_entries,
          who + ": requests_sent " + u64(cs.requests_sent) +
              " != completed " + u64(audit.completed_entries) +
              " + incomplete " + u64(audit.incomplete_entries) +
              " (a request vanished without being accounted)");
  }
}

void audit_servers(InvariantReport& report,
                   const std::vector<host::Server*>& servers) {
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const host::Server& server = *servers[i];
    const std::string who = "server s" + std::to_string(i);
    if (server.crashed()) {
      check(report, server.queue_depth() != 0,
            who + ": crashed but queue depth is " +
                u64(server.queue_depth()));
      check(report, server.busy_workers() != 0,
            who + ": crashed but busy_workers is " +
                u64(server.busy_workers()));
    }
  }
}

void audit_links(
    InvariantReport& report,
    const std::vector<std::pair<std::string, phys::Link*>>& links) {
  for (const auto& [name, link] : links) {
    check(report, link->queued() > link->params().queue_capacity,
          "link " + name + ": drop-tail occupancy " + u64(link->queued()) +
              " exceeds capacity " + u64(link->params().queue_capacity));
    check(report, link->queued() > link->in_flight(),
          "link " + name + ": queued " + u64(link->queued()) +
              " exceeds in-flight " + u64(link->in_flight()));
    check(report, !link->is_up() && link->in_flight() != 0,
          "link " + name + ": down but still has " +
              u64(link->in_flight()) + " frames in flight");
  }
}

void audit_switch(InvariantReport& report, const std::string& who,
                  const pisa::SwitchStats& sw) {
  const std::uint64_t accounted = sw.parse_errors + sw.dropped_by_program +
                                  sw.dropped_while_failed +
                                  sw.egress_scheduled;
  check(report, sw.rx_frames != accounted,
        who + ": rx_frames " + u64(sw.rx_frames) +
            " != parse_errors + dropped_by_program + "
            "dropped_while_failed + egress_scheduled = " +
            u64(accounted));
  // Emissions can only come from scheduled egress passes; <= because
  // frames still traversing the pipeline have been scheduled but not yet
  // emitted (and failed-mid-flight frames are flushed).
  check(report,
        sw.tx_frames + sw.recirculated + sw.flushed_in_pipeline >
            sw.egress_scheduled + sw.multicast_copies,
        who + ": tx_frames " + u64(sw.tx_frames) + " + recirculated " +
            u64(sw.recirculated) + " + flushed_in_pipeline " +
            u64(sw.flushed_in_pipeline) + " exceeds egress_scheduled " +
            u64(sw.egress_scheduled) + " + multicast_copies " +
            u64(sw.multicast_copies));
}

void audit_filter(InvariantReport& report, const std::string& who,
                  std::uint64_t filtered, std::uint64_t stored,
                  std::uint64_t injected) {
  check(report, filtered > stored + injected,
        who + ": filtered_responses " + u64(filtered) +
            " exceeds fingerprints_stored " + u64(stored) +
            " + injected_stale_entries " + u64(injected));
}

void audit_pools(InvariantReport& report,
                 const std::vector<wire::FramePool::Stats>& pools) {
  // One balance sheet per shard pool (a single global one when
  // unsharded). Cross-shard handoffs are byte copies, so every buffer
  // releases into the pool that acquired it and each sheet must balance
  // on its own.
  for (std::size_t i = 0; i < pools.size(); ++i) {
    const wire::FramePool::Stats& pool = pools[i];
    const std::string who =
        pools.size() == 1 ? std::string("frame pool")
                          : "frame pool (shard " + std::to_string(i) + ")";
    check(report, pool.released > pool.acquired,
          who + ": released " + u64(pool.released) + " exceeds acquired " +
              u64(pool.acquired));
    check(report, pool.live != pool.acquired - pool.released,
          who + ": live " + u64(pool.live) + " != acquired " +
              u64(pool.acquired) + " - released " + u64(pool.released));
  }
}

// ---- shared digest folds -------------------------------------------------

struct Fold {
  std::uint64_t digest = 0xCBF29CE484222325ULL;

  // FNV-1a, one byte at a time, over the value's 8 bytes.
  void operator()(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      digest ^= (value >> shift) & 0xFFU;
      digest *= 0x100000001B3ULL;
    }
  }
};

void fold_clients(Fold& fold, const std::vector<host::Client*>& clients) {
  for (const host::Client* client : clients) {
    const host::ClientStats& cs = client->stats();
    fold(cs.requests_sent);
    fold(cs.packets_sent);
    fold(cs.completed);
    fold(cs.completed_in_window);
    fold(cs.redundant_responses);
    fold(cs.unmatched_responses);
    fold(cs.checksum_drops);
    fold(cs.retransmissions);
    fold(cs.cancels_sent);
  }
}

void fold_servers(Fold& fold, const std::vector<host::Server*>& servers) {
  for (const host::Server* server : servers) {
    const host::ServerStats& ss = server->stats();
    fold(ss.rx_requests);
    fold(ss.completed);
    fold(ss.dropped_stale_clones);
    fold(ss.duplicate_fragments);
    fold(ss.expired_partials);
    fold(ss.cancelled_requests);
    fold(ss.checksum_drops);
    fold(ss.crashes);
    fold(ss.dropped_while_crashed);
    fold(ss.paused_frames);
    fold(ss.abandoned_in_flight);
  }
}

void fold_switch(Fold& fold, const pisa::SwitchStats& sw) {
  fold(sw.rx_frames);
  fold(sw.tx_frames);
  fold(sw.dropped_by_program);
  fold(sw.recirculated);
  fold(sw.multicast_copies);
  fold(sw.parse_errors);
  fold(sw.dropped_while_failed);
  fold(sw.egress_scheduled);
  fold(sw.flushed_in_pipeline);
  fold(sw.soft_state_wipes);
}

void fold_links(
    Fold& fold,
    const std::vector<std::pair<std::string, phys::Link*>>& links) {
  for (const auto& [name, link] : links) {
    const phys::LinkStats& ls = link->stats();
    fold(ls.tx_frames);
    fold(ls.tx_bytes);
    fold(ls.dropped_frames);
    fold(ls.flushed_frames);
    fold(ls.impaired_drops);
    fold(ls.corrupted_frames);
    fold(ls.duplicated_frames);
    fold(ls.reordered_frames);
  }
}

void fold_netclone(Fold& fold, const core::NetCloneProgramStats& ps) {
  fold(ps.requests);
  fold(ps.cloned_requests);
  fold(ps.recirculated_clones);
  fold(ps.responses);
  fold(ps.fingerprints_stored);
  fold(ps.filtered_responses);
  fold(ps.missing_route_drops);
  fold(ps.injected_stale_entries);
}

void fold_agg_netclone(Fold& fold, const core::AggNetCloneStats& ps) {
  fold(ps.requests);
  fold(ps.cloned_requests);
  fold(ps.recirculated_clones);
  fold(ps.write_requests);
  fold(ps.responses);
  fold(ps.fingerprints_stored);
  fold(ps.filter_hits);
  fold(ps.filtered_responses);
  fold(ps.chain_forwards);
  fold(ps.foreign_packets);
  fold(ps.missing_route_drops);
  fold(ps.chain_sync_markers);
  fold(ps.chain_sync_snapshots_filled);
  fold(ps.chain_sync_installs);
  fold(ps.chain_sync_stale);
  fold(ps.chain_sync_consumed);
  fold(ps.non_member_response_drops);
  fold(ps.chain_sync_fingerprints_adopted);
}

/// True when every link has delivered everything it accepted and no
/// frame was lost, mangled, or reordered in transit — the precondition
/// for the exact replica-convergence checks (a lossy or still-moving
/// fabric legitimately leaves replicas mid-divergence).
bool fabric_quiesced_clean(
    const std::vector<std::pair<std::string, phys::Link*>>& links) {
  for (const auto& [name, link] : links) {
    if (link->in_flight() != 0) {
      return false;
    }
    const phys::LinkStats& ls = link->stats();
    if (ls.dropped_frames != 0 || ls.flushed_frames != 0 ||
        ls.impaired_drops != 0 || ls.corrupted_frames != 0 ||
        ls.duplicated_frames != 0 || ls.reordered_frames != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i != 0) {
      out << '\n';
    }
    out << violations[i];
  }
  return out.str();
}

InvariantReport audit_invariants(const Experiment& exp) {
  InvariantReport report;
  audit_clients(report, exp.clients());
  audit_servers(report, exp.servers());
  audit_links(report, exp.links());
  audit_switch(report, "switch", exp.tor().stats());
  if (exp.netclone_program() != nullptr) {
    const core::NetCloneProgramStats& ps = exp.netclone_program()->stats();
    audit_filter(report, "program", ps.filtered_responses,
                 ps.fingerprints_stored, ps.injected_stale_entries);
  }
  audit_pools(report, exp.frame_pool_stats());
  return report;
}

InvariantReport audit_invariants(const MultiRackExperiment& exp) {
  InvariantReport report;
  audit_clients(report, exp.clients());
  audit_servers(report, exp.servers());
  audit_links(report, exp.links());
  for (const auto& [name, device] : exp.switches()) {
    audit_switch(report, "switch " + name, device->stats());
  }

  const bool replicated = exp.config().agg_mode == AggMode::kReplicated;
  if (!replicated) {
    const core::NetCloneProgramStats& ps = exp.client_tor_program().stats();
    audit_filter(report, "client tor", ps.filtered_responses,
                 ps.fingerprints_stored, ps.injected_stale_entries);
  } else {
    for (std::size_t a = 0; a < exp.num_aggs(); ++a) {
      const core::AggNetCloneStats& ps =
          exp.agg_netclone_program(a).stats();
      // Every replica computes verdicts; only the tail enacts them, so
      // the replica-local bound is on hits, the tail bound on drops. A
      // resynced replica may hit fingerprints it adopted from a snapshot
      // rather than stored itself — the bound widens by exactly those.
      audit_filter(report, "agg" + std::to_string(a), ps.filter_hits,
                   ps.fingerprints_stored,
                   ps.chain_sync_fingerprints_adopted);
      check(report, ps.filtered_responses > ps.filter_hits,
            "agg" + std::to_string(a) + ": filtered_responses " +
                u64(ps.filtered_responses) + " exceeds filter_hits " +
                u64(ps.filter_hits));
    }
  }

  // Replica convergence: once the fabric is quiet and lossless, the
  // chain must have driven every ADMITTED member to the same soft-state
  // image (NetChain's state-machine-replication contract). Failure
  // debris (frames dropped at or flushed inside a dead replica) is
  // legitimate exactly where the fault plan killed one — ctrl->fails_of
  // says where; any other switch must be spotless, and a mid-run
  // register wipe always voids the comparison (the wiped image is
  // legitimately different).
  if (replicated && exp.num_aggs() > 1 &&
      fabric_quiesced_clean(exp.links())) {
    const ChainController* ctrl = exp.chain_controller();
    bool switches_clean = true;
    for (const auto& [name, device] : exp.switches()) {
      const pisa::SwitchStats& sw = device->stats();
      if (sw.soft_state_wipes != 0) {
        switches_clean = false;
        break;
      }
      if (sw.dropped_while_failed == 0 && sw.flushed_in_pipeline == 0) {
        continue;
      }
      const bool failed_agg =
          ctrl != nullptr && name.compare(0, 3, "agg") == 0 &&
          name.size() > 3 &&
          ctrl->fails_of(static_cast<std::size_t>(
              std::stoul(name.substr(3)))) > 0;
      if (!failed_agg) {
        switches_clean = false;
        break;
      }
    }
    if (switches_clean && (ctrl == nullptr || ctrl->quiescent())) {
      std::vector<std::size_t> members;
      if (ctrl != nullptr) {
        members = ctrl->admitted_members();
      } else {
        for (std::size_t a = 0; a < exp.num_aggs(); ++a) {
          members.push_back(a);
        }
      }
      // Chain reshaping makes per-replica response COUNTS legitimately
      // unequal (a late joiner missed the early stream; survivors saw
      // frames that died with a corpse) — the exact-count check only
      // holds on a structurally untouched chain. The digest check is
      // unconditional: resync + delta replay must still converge the
      // soft-state IMAGE.
      const bool untouched =
          ctrl == nullptr || ctrl->structural_changes() == 0;
      if (!members.empty()) {
        const std::size_t lead = members.front();
        const core::AggNetCloneStats& head =
            exp.agg_netclone_program(lead).stats();
        const std::uint64_t head_digest =
            exp.agg_netclone_program(lead).soft_state_digest();
        const std::uint64_t head_occupancy =
            exp.agg_netclone_program(lead).filter_occupancy();
        for (std::size_t i = 1; i < members.size(); ++i) {
          const std::size_t a = members[i];
          const core::AggNetCloneStats& ps =
              exp.agg_netclone_program(a).stats();
          if (untouched) {
            check(report, ps.responses != head.responses,
                  "replica agg" + std::to_string(a) + ": applied " +
                      u64(ps.responses) +
                      " responses but the head applied " +
                      u64(head.responses) +
                      " (a response skipped part of the chain)");
          }
          check(report,
                exp.agg_netclone_program(a).soft_state_digest() !=
                    head_digest,
                "replica agg" + std::to_string(a) +
                    ": soft-state digest diverges from the head after a "
                    "clean quiesce (chain replication broke)");
          check(report,
                exp.agg_netclone_program(a).filter_occupancy() !=
                    head_occupancy,
                "replica agg" + std::to_string(a) +
                    ": filter occupancy " +
                    u64(exp.agg_netclone_program(a).filter_occupancy()) +
                    " != head occupancy " + u64(head_occupancy) +
                    " after a clean quiesce");
        }
        // Bounded filter tables on every member (notably a rejoined
        // node): live fingerprints cannot exceed what the whole tier
        // ever stored — a resync must copy state, not invent it.
        std::uint64_t tier_stored = 0;
        for (std::size_t a = 0; a < exp.num_aggs(); ++a) {
          tier_stored += exp.agg_netclone_program(a).stats()
                             .fingerprints_stored;
        }
        for (const std::size_t a : members) {
          const std::uint64_t occupancy =
              exp.agg_netclone_program(a).filter_occupancy();
          check(report, occupancy > tier_stored,
                "replica agg" + std::to_string(a) +
                    ": filter occupancy " + u64(occupancy) +
                    " exceeds the " + u64(tier_stored) +
                    " fingerprints ever stored tier-wide (a resync "
                    "invented filter state)");
        }
      }
    }
  }

  audit_pools(report, exp.frame_pool_stats());
  return report;
}

std::uint64_t chaos_digest(const Experiment& exp) {
  Fold fold;
  fold(exp.executed_events());
  fold_clients(fold, exp.clients());
  fold_servers(fold, exp.servers());
  fold_switch(fold, exp.tor().stats());
  fold_links(fold, exp.links());
  if (exp.netclone_program() != nullptr) {
    fold_netclone(fold, exp.netclone_program()->stats());
  }
  return fold.digest;
}

std::uint64_t chaos_digest(const MultiRackExperiment& exp) {
  Fold fold;
  fold(exp.executed_events());
  fold_clients(fold, exp.clients());
  fold_servers(fold, exp.servers());
  for (const auto& [name, device] : exp.switches()) {
    fold_switch(fold, device->stats());
  }
  fold_links(fold, exp.links());
  if (exp.config().agg_mode == AggMode::kReplicated) {
    for (std::size_t a = 0; a < exp.num_aggs(); ++a) {
      fold_agg_netclone(fold, exp.agg_netclone_program(a).stats());
    }
  } else {
    fold_netclone(fold, exp.client_tor_program().stats());
    for (std::size_t a = 0; a < exp.num_aggs(); ++a) {
      const baselines::AggRouterStats& rs = exp.agg_program(a).stats();
      fold(rs.routed);
      fold(rs.no_route_drops);
    }
  }
  for (std::size_t rack = 0; rack < exp.config().server_racks; ++rack) {
    fold_netclone(fold, exp.server_tor_program(rack).stats());
  }
  return fold.digest;
}

}  // namespace netclone::harness
