#include "harness/faults.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace netclone::harness {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    tokens.push_back(tok);
  }
  return tokens;
}

[[noreturn]] void fail(const std::string& line, const std::string& why) {
  throw FaultPlanError("bad fault entry '" + line + "': " + why);
}

/// Parses "2s" / "3.5ms" / "250us" / "1500ns" into a SimTime.
SimTime parse_time(const std::string& line, const std::string& text) {
  std::size_t unit = 0;
  while (unit < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[unit])) != 0 ||
          text[unit] == '.' || text[unit] == '+' || text[unit] == '-' ||
          text[unit] == 'e' || text[unit] == 'E')) {
    // 'e' may start the unit suffix rather than an exponent; back off if
    // the rest of the string is not a valid suffix continuation.
    if ((text[unit] == 'e' || text[unit] == 'E') &&
        (unit + 1 >= text.size() ||
         (std::isdigit(static_cast<unsigned char>(text[unit + 1])) == 0 &&
          text[unit + 1] != '+' && text[unit + 1] != '-'))) {
      break;
    }
    ++unit;
  }
  if (unit == 0) {
    fail(line, "missing time value in '" + text + "'");
  }
  char* end = nullptr;
  const std::string digits = text.substr(0, unit);
  const double value = std::strtod(digits.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    fail(line, "bad time value '" + digits + "'");
  }
  if (value < 0.0) {
    fail(line, "negative time '" + text + "'");
  }
  const std::string suffix = text.substr(unit);
  if (suffix == "s") {
    return SimTime::seconds(value);
  }
  if (suffix == "ms") {
    return SimTime::milliseconds(value);
  }
  if (suffix == "us") {
    return SimTime::microseconds(value);
  }
  if (suffix == "ns") {
    return SimTime::nanoseconds(static_cast<std::int64_t>(value));
  }
  fail(line, "unknown time unit '" + suffix + "' (use ns/us/ms/s)");
}

double parse_number(const std::string& line, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    fail(line, "bad numeric operand '" + text + "'");
  }
  return value;
}

struct ActionSpec {
  const char* name;
  FaultAction action;
  /// Operand count after the target (rates and slowdown take 1,
  /// filter_stale takes 2: table index and request id).
  int extra_operands;
};

constexpr ActionSpec kActions[] = {
    {"link_down", FaultAction::kLinkDown, 0},
    {"link_up", FaultAction::kLinkUp, 0},
    {"drop_rate", FaultAction::kDropRate, 1},
    {"corrupt_rate", FaultAction::kCorruptRate, 1},
    {"reorder_rate", FaultAction::kReorderRate, 1},
    {"duplicate_rate", FaultAction::kDuplicateRate, 1},
    {"server_crash", FaultAction::kServerCrash, 0},
    {"server_restart", FaultAction::kServerRestart, 0},
    {"server_pause", FaultAction::kServerPause, 0},
    {"server_resume", FaultAction::kServerResume, 0},
    {"server_slowdown", FaultAction::kServerSlowdown, 1},
    {"switch_fail", FaultAction::kSwitchFail, 0},
    {"switch_recover", FaultAction::kSwitchRecover, 0},
    {"switch_wipe", FaultAction::kSwitchWipe, 0},
    {"filter_stale", FaultAction::kFilterStale, 2},
    {"agg_fail", FaultAction::kAggFail, 0},
    {"agg_rejoin", FaultAction::kAggRejoin, 0},
    {"rack_down", FaultAction::kRackDown, 0},
    {"rack_up", FaultAction::kRackUp, 0},
};

/// `agg_fail agg1` / `rack_down rack0`: the target must be the expected
/// prefix followed by a decimal index, so a typo fails at parse time
/// with the key named, not at fire time deep in the harness.
void check_indexed_target(const std::string& line, const char* action,
                          const std::string& target, const char* prefix) {
  const std::string want(prefix);
  bool ok = target.size() > want.size() && target.rfind(want, 0) == 0;
  for (std::size_t i = want.size(); ok && i < target.size(); ++i) {
    ok = std::isdigit(static_cast<unsigned char>(target[i])) != 0;
  }
  if (!ok) {
    fail(line, std::string("action '") + action + "' needs a '" + prefix +
                   "<N>' target, got '" + target + "'");
  }
}

}  // namespace

const char* fault_action_name(FaultAction action) {
  for (const ActionSpec& spec : kActions) {
    if (spec.action == action) {
      return spec.name;
    }
  }
  return "?";
}

FaultEvent parse_fault_entry(const std::string& line) {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.size() < 3) {
    fail(line, "expected 'at=<time> <action> <target> [args]'");
  }
  if (tokens[0].rfind("at=", 0) != 0) {
    fail(line, "entry must start with 'at='");
  }

  FaultEvent ev;
  ev.at = parse_time(line, tokens[0].substr(3));

  const ActionSpec* spec = nullptr;
  for (const ActionSpec& candidate : kActions) {
    if (tokens[1] == candidate.name) {
      spec = &candidate;
      break;
    }
  }
  if (spec == nullptr) {
    fail(line, "unknown action '" + tokens[1] + "'");
  }
  ev.action = spec->action;
  ev.target = tokens[2];

  const std::size_t expected = 3 + static_cast<std::size_t>(
                                       spec->extra_operands);
  if (tokens.size() != expected) {
    fail(line, std::string("action '") + spec->name + "' takes " +
                   std::to_string(spec->extra_operands) +
                   " operand(s) after the target");
  }

  if (spec->action == FaultAction::kAggFail ||
      spec->action == FaultAction::kAggRejoin) {
    check_indexed_target(line, spec->name, ev.target, "agg");
  }
  if (spec->action == FaultAction::kRackDown ||
      spec->action == FaultAction::kRackUp) {
    check_indexed_target(line, spec->name, ev.target, "rack");
  }

  if (spec->action == FaultAction::kFilterStale) {
    const double table = parse_number(line, tokens[3]);
    const double req_id = parse_number(line, tokens[4]);
    if (table < 0.0 || req_id < 1.0) {
      fail(line, "filter_stale needs table >= 0 and req_id >= 1");
    }
    ev.table = static_cast<std::size_t>(table);
    ev.value = req_id;
  } else if (spec->extra_operands == 1) {
    ev.value = parse_number(line, tokens[3]);
    if (ev.value < 0.0) {
      fail(line, "operand must be non-negative");
    }
    if (spec->action == FaultAction::kServerSlowdown && ev.value <= 0.0) {
      fail(line, "slowdown factor must be positive");
    }
  }
  return ev;
}

FaultPlan parse_fault_plan(const std::string& text,
                           const std::string& source) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      continue;
    }
    const std::size_t last = line.find_last_not_of(" \t\r");
    const std::string entry = line.substr(first, last - first + 1);
    try {
      plan.events.push_back(parse_fault_entry(entry));
    } catch (const FaultPlanError& err) {
      const std::string where =
          (source.empty() ? std::string{} : source + ": ") + "line " +
          std::to_string(line_no) + ": ";
      throw FaultPlanError(where + err.what());
    }
  }
  return plan;
}

}  // namespace netclone::harness
