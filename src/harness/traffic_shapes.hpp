// Production traffic-shape generators for the scenario system.
//
// Each generator produces plain client parameters — a piecewise-constant
// rate profile (host::RateSegment) or a group-weight vector — so shapes
// compose with every scheme, engine, and fault plan without touching the
// data path: a flash crowd is just a rate profile, a Zipf sweep just a
// weight vector over the candidate groups.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/groups.hpp"
#include "host/client.hpp"

namespace netclone::harness {

/// Flash crowd: baseline rate until `at`, `factor`x for `duration`, then
/// baseline again.
[[nodiscard]] std::vector<host::RateSegment> flash_crowd_profile(
    SimTime at, SimTime duration, double factor);

/// Diurnal curve compressed to simulation scale: `steps` plateaus per
/// `period` sampling min + (1-min)/2 * (1+sin(2*pi*t/period)), repeated
/// until `total`. The multiplier swings between `min_multiplier` and 1.
[[nodiscard]] std::vector<host::RateSegment> diurnal_profile(
    SimTime period, double min_multiplier, SimTime total,
    std::size_t steps = 12);

/// Zipf(s) popularity over `count` items: weight of item i is
/// 1/(i+1)^s, normalized. s == 0 degenerates to uniform.
[[nodiscard]] std::vector<double> zipf_weights(std::size_t count, double s);

/// Rack-localized hotspot over the candidate groups: groups whose FIRST
/// candidate lives in `hot_rack` (global sid / servers_per_rack) share
/// `share` of the draw mass; the rest split the remainder uniformly.
[[nodiscard]] std::vector<double> hotspot_group_weights(
    const std::vector<core::GroupPair>& groups, std::size_t servers_per_rack,
    std::size_t hot_rack, double share);

}  // namespace netclone::harness
