#include "harness/engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace netclone::harness {

EngineContext::EngineContext(std::size_t config_shards, std::uint64_t seed) {
  std::size_t shards = config_shards;
  if (shards == 0) {
    shards = sim::shards_from_env();
  }
  if (shards > 0) {
    sharded_ = std::make_unique<sim::ShardedSimulator>(shards, seed);
  } else {
    sim_ = std::make_unique<sim::Simulator>();
  }
}

EngineContext::~EngineContext() = default;

std::size_t EngineContext::num_shards() const {
  return sharded_ != nullptr ? sharded_->num_shards() : 0;
}

sim::Scheduler& EngineContext::shard_scheduler(std::size_t shard) {
  return sharded_ != nullptr
             ? static_cast<sim::Scheduler&>(sharded_->shard(shard))
             : static_cast<sim::Scheduler&>(*sim_);
}

sim::Scheduler& EngineContext::control() {
  return sharded_ != nullptr ? sharded_->control()
                             : static_cast<sim::Scheduler&>(*sim_);
}

void EngineContext::run_until(SimTime deadline) {
  if (sharded_ != nullptr) {
    sharded_->run_until(deadline);
  } else {
    sim_->run_until(deadline);
  }
}

std::uint64_t EngineContext::executed_events() const {
  return sharded_ != nullptr ? sharded_->executed_events()
                             : sim_->executed_events();
}

std::uint64_t EngineContext::absorbed_events() const {
  return sharded_ != nullptr ? sharded_->absorbed_events()
                             : sim_->absorbed_events();
}

std::vector<wire::FramePool::Stats> EngineContext::frame_pool_stats() const {
  std::vector<wire::FramePool::Stats> out;
  if (sharded_ != nullptr) {
    for (std::size_t i = 0; i < sharded_->num_shards(); ++i) {
      out.push_back(sharded_->shard(i).pool().stats());
    }
  } else {
    out.push_back(wire::FramePool::instance().stats());
  }
  return out;
}

phys::DuplexPorts EngineContext::connect(phys::Topology& topology,
                                         phys::Node& a, std::size_t shard_a,
                                         phys::Node& b, std::size_t shard_b,
                                         phys::LinkParams params) {
  if (sharded_ == nullptr) {
    return topology.connect(a, b, params);
  }
  // Link ids are topology build-order indices: identical for every shard
  // count, which makes them a safe deep-tie fallback in the merge order.
  const auto id_ab = static_cast<std::uint32_t>(topology.links().size());
  phys::DuplexPorts ports = topology.connect(
      sharded_->shard(shard_a), sharded_->shard(shard_b), a, b, params);
  if (shard_a == shard_b) {
    return ports;
  }
  sim::RemoteSink& ab = sharded_->attach_remote(
      shard_a, shard_b, id_ab, params.delay,
      [&b, port = ports.port_on_b](wire::FrameHandle frame) {
        b.handle_frame(port, std::move(frame));
      });
  ports.a_to_b->set_remote_sink(&ab);
  sim::RemoteSink& ba = sharded_->attach_remote(
      shard_b, shard_a, id_ab + 1, params.delay,
      [&a, port = ports.port_on_a](wire::FrameHandle frame) {
        a.handle_frame(port, std::move(frame));
      });
  ports.b_to_a->set_remote_sink(&ba);
  return ports;
}

void validate_shard_assignment(const std::vector<std::uint32_t>& assignment,
                               std::size_t num_shards,
                               std::size_t num_entities,
                               const std::string& what) {
  if (assignment.empty() || num_shards == 0) {
    return;
  }
  NETCLONE_CHECK(assignment.size() >= num_entities,
                 what + ": shard assignment lists " +
                     std::to_string(assignment.size()) + " entries for " +
                     std::to_string(num_entities) + " entities");
  std::vector<std::size_t> per_shard(num_shards, 0);
  for (std::size_t i = 0; i < num_entities; ++i) {
    NETCLONE_CHECK(assignment[i] < num_shards,
                   what + ": shard assignment entry " + std::to_string(i) +
                       " names shard " + std::to_string(assignment[i]) +
                       " but only " + std::to_string(num_shards) +
                       " shards exist");
    ++per_shard[assignment[i]];
  }
  if (num_shards < 2 || num_entities < 2) {
    return;
  }
  const auto hottest =
      std::max_element(per_shard.begin(), per_shard.end());
  if (*hottest * 2 > num_entities) {
    log_warn(what + ": shard assignment serializes " +
             std::to_string(*hottest) + "/" + std::to_string(num_entities) +
             " entities onto shard " +
             std::to_string(hottest - per_shard.begin()) +
             " — most events will run on one queue");
  }
}

}  // namespace netclone::harness
