// Multi-rack fat-tree harness (§3.7 "Multi-rack deployment", extended).
//
// Topology: a 2-tier fat tree — one client rack and N server racks, each
// behind its own ToR, joined by a tier of parallel aggregation switches
// every ToR uplinks to:
//
//   clients — ToR#1 ══ agg0 ┄ agg1 ┄ ... ══ ToR#2 — servers rack 0
//                      ║        ║     ══ ToR#3 — servers rack 1 ...
//
// Two aggregation modes:
//
//   * kOblivious — the paper's §3.7 layout generalized to many aggs:
//     cloning/filtering run at the client-side ToR; the aggregation tier
//     is plain LPM routing and passes NetClone packets through untouched.
//   * kReplicated — the aggregation tier itself is NetClone-aware and the
//     per-agg soft state (StateT/ShadowT/FilterT) is chain-replicated
//     NetChain-style across the replicas (see agg_netclone_program.hpp):
//     requests ECMP-spray over the aggs, responses flow head→tail over
//     dedicated chain links, only the tail enacts filter verdicts. The
//     client-side ToR degenerates to a plain router.
//
// Oversubscription is expressed through the link parameters: `host_link`
// for edge links, `trunk_link` for ToR↔agg uplinks and the chain.
//
// Sharded execution: each rack (ToR + its hosts) is one event-queue
// shard by default; the aggregation tier lives on shard 0. Digests are
// bit-identical for every shard count — the same contract Experiment
// honors, via the same EngineContext.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/agg_router.hpp"
#include "core/agg_netclone_program.hpp"
#include "core/netclone_program.hpp"
#include "harness/chain_controller.hpp"
#include "harness/engine.hpp"
#include "harness/experiment.hpp"
#include "harness/faults.hpp"

namespace netclone::harness {

/// How the aggregation tier treats NetClone traffic.
enum class AggMode {
  kOblivious,   // plain LPM aggs, cloning at the client ToR (§3.7)
  kReplicated,  // NetClone-aware aggs with chain-replicated soft state
};

struct MultiRackConfig {
  std::size_t server_racks = 2;
  std::size_t servers_per_rack = 3;
  /// Parallel aggregation switches (the fat-tree spine of this pod).
  std::size_t num_aggs = 1;
  AggMode agg_mode = AggMode::kOblivious;
  std::uint32_t workers = 16;
  std::size_t num_clients = 2;
  double offered_rps = 1e6;
  SimTime warmup = SimTime::milliseconds(5);
  SimTime measure = SimTime::milliseconds(25);
  SimTime drain = SimTime::milliseconds(15);
  std::uint64_t seed = 1;
  std::shared_ptr<host::RequestFactory> factory;
  std::shared_ptr<host::ServiceModel> service;
  core::NetCloneConfig netclone{};
  host::ClientParams client_template{};
  host::ServerParams server_template{};
  /// Edge links (host ↔ ToR).
  phys::LinkParams host_link{};
  /// ToR ↔ agg uplinks and the agg↔agg chain links. Oversubscription is
  /// modeled by giving these a lower rate than `host_link`. The default
  /// delay is longer than the edge default — cross-tier cables are —
  /// which also keeps same-instant arrival coincidences between tiers
  /// rare.
  phys::LinkParams trunk_link{100e9, SimTime::nanoseconds(1700), 1024};
  /// Timed fault plan. Targets resolve against fat-tree names: switches
  /// `tor1`/`tor2`../`agg0`.., links `tor1-agg0`/`agg0-agg1`/`tor2-s0`,
  /// servers `s<N>` (global id), racks `rack<N>`, and the managed chain
  /// pair `agg_fail`/`agg_rejoin` (kReplicated mode only). Installed at
  /// build time so fault firing shares the deterministic event order.
  FaultPlan faults{};
  /// agg_fail: delay between the chain splice and the reconcile marker.
  /// Must exceed the worst-case residual flight time of a response on a
  /// chain/trunk link (~10us with the defaults) so the marker's snapshot
  /// supersedes every frame the splice orphaned.
  SimTime chain_sync_delay = SimTime::microseconds(50);
  /// agg_rejoin: delay before the rejoined replica re-enters the client
  /// ToR's ECMP spray set (the admit marker must have landed by then).
  SimTime chain_readmit_delay = SimTime::microseconds(50);
  /// Event-queue shards, resolved exactly like ClusterConfig::num_shards
  /// (0 = NETCLONE_SHARDS, unset -> legacy engine).
  std::size_t num_shards = 0;
  /// Optional shard per rack: entry 0 is the client rack, entries 1..N
  /// the server racks (a rack's ToR and hosts share its shard; the
  /// aggregation tier is always shard 0). Empty = rack r -> r % shards.
  std::vector<std::uint32_t> rack_shards;
};

/// One built-and-runnable fat-tree pod; see Experiment for the lifecycle.
class MultiRackExperiment {
 public:
  explicit MultiRackExperiment(MultiRackConfig config);
  ~MultiRackExperiment();

  MultiRackExperiment(const MultiRackExperiment&) = delete;
  MultiRackExperiment& operator=(const MultiRackExperiment&) = delete;

  [[nodiscard]] ExperimentResult run();
  /// Drives the run in `bin`-sized steps and returns completed requests
  /// per bin — the bench_fig16-style recovery-time probe. The installed
  /// fault plan fires on schedule during the walk.
  [[nodiscard]] std::vector<std::uint64_t> run_timeline(SimTime total,
                                                        SimTime bin);

  /// Applies one fault immediately (tests / manual drivers). The managed
  /// agg_fail/agg_rejoin actions must ride the installed plan instead —
  /// they expand into multiple timed events.
  void apply_fault(const FaultEvent& event);

  // -- programs -----------------------------------------------------------

  /// The NetClone program at the client ToR (kOblivious mode only).
  [[nodiscard]] const core::NetCloneProgram& client_tor_program() const;
  [[nodiscard]] const core::NetCloneProgram& server_tor_program(
      std::size_t rack) const {
    return *server_tor_programs_.at(rack);
  }
  /// Aggregation router `agg` (kOblivious mode only).
  [[nodiscard]] const baselines::AggRouterProgram& agg_program(
      std::size_t agg = 0) const;
  /// Chain replica `agg` (kReplicated mode only).
  [[nodiscard]] const core::AggNetCloneProgram& agg_netclone_program(
      std::size_t agg = 0) const;

  // -- structure ----------------------------------------------------------

  [[nodiscard]] const MultiRackConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_aggs() const { return config_.num_aggs; }
  [[nodiscard]] const std::vector<host::Server*>& servers() const {
    return servers_;
  }
  [[nodiscard]] const std::vector<host::Client*>& clients() const {
    return clients_;
  }
  /// All directed links with their harness names, for the auditor.
  [[nodiscard]] const std::vector<std::pair<std::string, phys::Link*>>&
  links() const {
    return links_;
  }
  [[nodiscard]] phys::Link* link(const std::string& name) const;
  /// Every switch in build order (aggs, client ToR, rack ToRs), named.
  [[nodiscard]] const std::vector<std::pair<std::string, pisa::SwitchDevice*>>&
  switches() const {
    return switches_;
  }
  /// Fail-over controller (kReplicated mode only; null otherwise).
  [[nodiscard]] const ChainController* chain_controller() const {
    return chain_controller_.get();
  }

  // -- engine telemetry (same surface as Experiment) ----------------------

  [[nodiscard]] sim::Scheduler& scheduler();
  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::uint64_t absorbed_events() const;
  [[nodiscard]] std::size_t num_shards() const;
  [[nodiscard]] std::vector<wire::FramePool::Stats> frame_pool_stats() const;

 private:
  void build();
  void install_fault_plan(const FaultPlan& plan);
  [[nodiscard]] std::uint64_t impairment_seed(const std::string& name) const;
  /// Shard of rack `rack` (0 = client rack, 1..N = server racks).
  [[nodiscard]] std::size_t rack_shard(std::size_t rack) const;
  phys::DuplexPorts connect_nodes(phys::Node& a, std::size_t shard_a,
                                  phys::Node& b, std::size_t shard_b,
                                  phys::LinkParams params);
  void record_link(const std::string& a, const std::string& b,
                   const phys::DuplexPorts& ports);

  MultiRackConfig config_;
  Rng root_rng_;
  // The engine must outlive topology_ (links cancel events and nodes
  // release pooled frames on destruction), so it is declared before it.
  std::unique_ptr<EngineContext> engine_;
  std::unique_ptr<phys::Topology> topology_;
  pisa::SwitchDevice* client_tor_ = nullptr;
  std::vector<pisa::SwitchDevice*> aggs_;
  std::vector<pisa::SwitchDevice*> server_tors_;
  std::vector<std::pair<std::string, pisa::SwitchDevice*>> switches_;
  std::vector<std::pair<std::string, phys::Link*>> links_;
  // kOblivious mode:
  std::shared_ptr<core::NetCloneProgram> client_tor_program_;
  std::vector<std::shared_ptr<baselines::AggRouterProgram>>
      agg_router_programs_;
  // kReplicated mode:
  std::shared_ptr<baselines::AggRouterProgram> client_router_program_;
  std::vector<std::shared_ptr<core::AggNetCloneProgram>>
      agg_netclone_programs_;
  // Both modes:
  std::vector<std::shared_ptr<core::NetCloneProgram>> server_tor_programs_;
  std::vector<host::Server*> servers_;
  std::vector<host::Client*> clients_;
  // kReplicated fail-over plumbing: the chain-link port mesh
  // (chain_ports_[i][j] = agg i's port toward agg j), the client ToR's
  // uplink ports (ECMP spray members), each rack ToR's uplink port per
  // agg (response re-pointing), and the client addresses those routes
  // cover.
  std::vector<std::vector<std::optional<std::size_t>>> chain_ports_;
  std::vector<std::size_t> spray_uplink_ports_;
  std::vector<std::vector<std::size_t>> rack_uplink_ports_;
  std::vector<wire::Ipv4Address> client_ips_;
  std::shared_ptr<core::AggChainSyncHub> sync_hub_;
  std::unique_ptr<ChainController> chain_controller_;
};

}  // namespace netclone::harness
