// Multi-rack deployment harness (§3.7 "Multi-rack deployment").
//
// Topology: one client rack and N server racks, each behind its own
// NetClone ToR, joined by a NetClone-oblivious LPM aggregation router:
//
//   clients — ToR#1 —— agg —— ToR#2 — servers rack 0
//                        |
//                        +——— ToR#3 — servers rack 1 ...
//
// Only the client-side ToR (#1) performs cloning/filtering; it stamps
// SWITCH_ID so the server-side ToRs recognize the packets as foreign and
// merely route them. Candidate pairs may span racks — the clone's
// recirculated copy simply leaves through the same trunk.
#pragma once

#include <memory>
#include <vector>

#include "baselines/agg_router.hpp"
#include "core/netclone_program.hpp"
#include "harness/experiment.hpp"

namespace netclone::harness {

struct MultiRackConfig {
  std::size_t server_racks = 2;
  std::size_t servers_per_rack = 3;
  std::uint32_t workers = 16;
  std::size_t num_clients = 2;
  double offered_rps = 1e6;
  SimTime warmup = SimTime::milliseconds(5);
  SimTime measure = SimTime::milliseconds(25);
  SimTime drain = SimTime::milliseconds(15);
  std::uint64_t seed = 1;
  std::shared_ptr<host::RequestFactory> factory;
  std::shared_ptr<host::ServiceModel> service;
  core::NetCloneConfig netclone{};
  host::ClientParams client_template{};
  host::ServerParams server_template{};
};

class MultiRackExperiment {
 public:
  explicit MultiRackExperiment(MultiRackConfig config);
  ~MultiRackExperiment();

  MultiRackExperiment(const MultiRackExperiment&) = delete;
  MultiRackExperiment& operator=(const MultiRackExperiment&) = delete;

  [[nodiscard]] ExperimentResult run();

  [[nodiscard]] const core::NetCloneProgram& client_tor_program() const {
    return *client_tor_program_;
  }
  [[nodiscard]] const core::NetCloneProgram& server_tor_program(
      std::size_t rack) const {
    return *server_tor_programs_.at(rack);
  }
  [[nodiscard]] const baselines::AggRouterProgram& agg_program() const {
    return *agg_program_;
  }
  [[nodiscard]] const std::vector<host::Server*>& servers() const {
    return servers_;
  }
  [[nodiscard]] const std::vector<host::Client*>& clients() const {
    return clients_;
  }
  [[nodiscard]] sim::Scheduler& scheduler();

 private:
  void build();

  MultiRackConfig config_;
  Rng root_rng_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<phys::Topology> topology_;
  pisa::SwitchDevice* client_tor_ = nullptr;
  pisa::SwitchDevice* agg_ = nullptr;
  std::vector<pisa::SwitchDevice*> server_tors_;
  std::vector<std::size_t> trunk_ports_;  // rack ToR port toward the agg
  std::shared_ptr<core::NetCloneProgram> client_tor_program_;
  std::vector<std::shared_ptr<core::NetCloneProgram>> server_tor_programs_;
  std::shared_ptr<baselines::AggRouterProgram> agg_program_;
  std::vector<host::Server*> servers_;
  std::vector<host::Client*> clients_;
};

}  // namespace netclone::harness
