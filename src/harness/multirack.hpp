// Multi-rack fat-tree harness (§3.7 "Multi-rack deployment", extended).
//
// Topology: a 2-tier fat tree — one client rack and N server racks, each
// behind its own ToR, joined by a tier of parallel aggregation switches
// every ToR uplinks to:
//
//   clients — ToR#1 ══ agg0 ┄ agg1 ┄ ... ══ ToR#2 — servers rack 0
//                      ║        ║     ══ ToR#3 — servers rack 1 ...
//
// Two aggregation modes:
//
//   * kOblivious — the paper's §3.7 layout generalized to many aggs:
//     cloning/filtering run at the client-side ToR; the aggregation tier
//     is plain LPM routing and passes NetClone packets through untouched.
//   * kReplicated — the aggregation tier itself is NetClone-aware and the
//     per-agg soft state (StateT/ShadowT/FilterT) is chain-replicated
//     NetChain-style across the replicas (see agg_netclone_program.hpp):
//     requests ECMP-spray over the aggs, responses flow head→tail over
//     dedicated chain links, only the tail enacts filter verdicts. The
//     client-side ToR degenerates to a plain router.
//
// Oversubscription is expressed through the link parameters: `host_link`
// for edge links, `trunk_link` for ToR↔agg uplinks and the chain.
//
// Sharded execution: each rack (ToR + its hosts) is one event-queue
// shard by default; the aggregation tier lives on shard 0. Digests are
// bit-identical for every shard count — the same contract Experiment
// honors, via the same EngineContext.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/agg_router.hpp"
#include "core/agg_netclone_program.hpp"
#include "core/netclone_program.hpp"
#include "harness/engine.hpp"
#include "harness/experiment.hpp"

namespace netclone::harness {

/// How the aggregation tier treats NetClone traffic.
enum class AggMode {
  kOblivious,   // plain LPM aggs, cloning at the client ToR (§3.7)
  kReplicated,  // NetClone-aware aggs with chain-replicated soft state
};

struct MultiRackConfig {
  std::size_t server_racks = 2;
  std::size_t servers_per_rack = 3;
  /// Parallel aggregation switches (the fat-tree spine of this pod).
  std::size_t num_aggs = 1;
  AggMode agg_mode = AggMode::kOblivious;
  std::uint32_t workers = 16;
  std::size_t num_clients = 2;
  double offered_rps = 1e6;
  SimTime warmup = SimTime::milliseconds(5);
  SimTime measure = SimTime::milliseconds(25);
  SimTime drain = SimTime::milliseconds(15);
  std::uint64_t seed = 1;
  std::shared_ptr<host::RequestFactory> factory;
  std::shared_ptr<host::ServiceModel> service;
  core::NetCloneConfig netclone{};
  host::ClientParams client_template{};
  host::ServerParams server_template{};
  /// Edge links (host ↔ ToR).
  phys::LinkParams host_link{};
  /// ToR ↔ agg uplinks and the agg↔agg chain links. Oversubscription is
  /// modeled by giving these a lower rate than `host_link`. The default
  /// delay is longer than the edge default — cross-tier cables are —
  /// which also keeps same-instant arrival coincidences between tiers
  /// rare.
  phys::LinkParams trunk_link{100e9, SimTime::nanoseconds(1700), 1024};
  /// Event-queue shards, resolved exactly like ClusterConfig::num_shards
  /// (0 = NETCLONE_SHARDS, unset -> legacy engine).
  std::size_t num_shards = 0;
  /// Optional shard per rack: entry 0 is the client rack, entries 1..N
  /// the server racks (a rack's ToR and hosts share its shard; the
  /// aggregation tier is always shard 0). Empty = rack r -> r % shards.
  std::vector<std::uint32_t> rack_shards;
};

/// One built-and-runnable fat-tree pod; see Experiment for the lifecycle.
class MultiRackExperiment {
 public:
  explicit MultiRackExperiment(MultiRackConfig config);
  ~MultiRackExperiment();

  MultiRackExperiment(const MultiRackExperiment&) = delete;
  MultiRackExperiment& operator=(const MultiRackExperiment&) = delete;

  [[nodiscard]] ExperimentResult run();

  // -- programs -----------------------------------------------------------

  /// The NetClone program at the client ToR (kOblivious mode only).
  [[nodiscard]] const core::NetCloneProgram& client_tor_program() const;
  [[nodiscard]] const core::NetCloneProgram& server_tor_program(
      std::size_t rack) const {
    return *server_tor_programs_.at(rack);
  }
  /// Aggregation router `agg` (kOblivious mode only).
  [[nodiscard]] const baselines::AggRouterProgram& agg_program(
      std::size_t agg = 0) const;
  /// Chain replica `agg` (kReplicated mode only).
  [[nodiscard]] const core::AggNetCloneProgram& agg_netclone_program(
      std::size_t agg = 0) const;

  // -- structure ----------------------------------------------------------

  [[nodiscard]] const MultiRackConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_aggs() const { return config_.num_aggs; }
  [[nodiscard]] const std::vector<host::Server*>& servers() const {
    return servers_;
  }
  [[nodiscard]] const std::vector<host::Client*>& clients() const {
    return clients_;
  }
  /// All directed links with their harness names, for the auditor.
  [[nodiscard]] const std::vector<std::pair<std::string, phys::Link*>>&
  links() const {
    return links_;
  }
  [[nodiscard]] phys::Link* link(const std::string& name) const;
  /// Every switch in build order (aggs, client ToR, rack ToRs), named.
  [[nodiscard]] const std::vector<std::pair<std::string, pisa::SwitchDevice*>>&
  switches() const {
    return switches_;
  }

  // -- engine telemetry (same surface as Experiment) ----------------------

  [[nodiscard]] sim::Scheduler& scheduler();
  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::uint64_t absorbed_events() const;
  [[nodiscard]] std::size_t num_shards() const;
  [[nodiscard]] std::vector<wire::FramePool::Stats> frame_pool_stats() const;

 private:
  void build();
  /// Shard of rack `rack` (0 = client rack, 1..N = server racks).
  [[nodiscard]] std::size_t rack_shard(std::size_t rack) const;
  phys::DuplexPorts connect_nodes(phys::Node& a, std::size_t shard_a,
                                  phys::Node& b, std::size_t shard_b,
                                  phys::LinkParams params);
  void record_link(const std::string& a, const std::string& b,
                   const phys::DuplexPorts& ports);

  MultiRackConfig config_;
  Rng root_rng_;
  // The engine must outlive topology_ (links cancel events and nodes
  // release pooled frames on destruction), so it is declared before it.
  std::unique_ptr<EngineContext> engine_;
  std::unique_ptr<phys::Topology> topology_;
  pisa::SwitchDevice* client_tor_ = nullptr;
  std::vector<pisa::SwitchDevice*> aggs_;
  std::vector<pisa::SwitchDevice*> server_tors_;
  std::vector<std::pair<std::string, pisa::SwitchDevice*>> switches_;
  std::vector<std::pair<std::string, phys::Link*>> links_;
  // kOblivious mode:
  std::shared_ptr<core::NetCloneProgram> client_tor_program_;
  std::vector<std::shared_ptr<baselines::AggRouterProgram>>
      agg_router_programs_;
  // kReplicated mode:
  std::shared_ptr<baselines::AggRouterProgram> client_router_program_;
  std::vector<std::shared_ptr<core::AggNetCloneProgram>>
      agg_netclone_programs_;
  // Both modes:
  std::vector<std::shared_ptr<core::NetCloneProgram>> server_tor_programs_;
  std::vector<host::Server*> servers_;
  std::vector<host::Client*> clients_;
};

}  // namespace netclone::harness
