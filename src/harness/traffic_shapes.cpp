#include "harness/traffic_shapes.hpp"

#include <cmath>

#include "common/check.hpp"

namespace netclone::harness {

std::vector<host::RateSegment> flash_crowd_profile(SimTime at,
                                                   SimTime duration,
                                                   double factor) {
  NETCLONE_CHECK(factor > 0.0, "flash crowd factor must be positive");
  NETCLONE_CHECK(duration > SimTime::zero(),
                 "flash crowd needs a positive duration");
  return {host::RateSegment{at, factor},
          host::RateSegment{at + duration, 1.0}};
}

std::vector<host::RateSegment> diurnal_profile(SimTime period,
                                               double min_multiplier,
                                               SimTime total,
                                               std::size_t steps) {
  NETCLONE_CHECK(period > SimTime::zero(), "diurnal period must be positive");
  NETCLONE_CHECK(min_multiplier > 0.0 && min_multiplier <= 1.0,
                 "diurnal minimum must be in (0, 1]");
  NETCLONE_CHECK(steps >= 2, "diurnal curve needs >= 2 steps per period");
  std::vector<host::RateSegment> profile;
  const SimTime step =
      SimTime::nanoseconds(period.ns() / static_cast<std::int64_t>(steps));
  NETCLONE_CHECK(step > SimTime::zero(), "diurnal steps too fine");
  const double amplitude = (1.0 - min_multiplier) / 2.0;
  for (SimTime t = SimTime::zero(); t < total; t += step) {
    const double phase = 2.0 * M_PI *
                         static_cast<double>((t.ns() % period.ns())) /
                         static_cast<double>(period.ns());
    const double mult =
        min_multiplier + amplitude * (1.0 + std::sin(phase));
    profile.push_back(host::RateSegment{t, mult});
  }
  return profile;
}

std::vector<double> zipf_weights(std::size_t count, double s) {
  NETCLONE_CHECK(count >= 1, "zipf needs at least one item");
  NETCLONE_CHECK(s >= 0.0, "zipf exponent must be non-negative");
  std::vector<double> weights(count);
  for (std::size_t i = 0; i < count; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -s);
  }
  return weights;
}

std::vector<double> hotspot_group_weights(
    const std::vector<core::GroupPair>& groups,
    std::size_t servers_per_rack, std::size_t hot_rack, double share) {
  NETCLONE_CHECK(servers_per_rack >= 1, "need servers per rack");
  NETCLONE_CHECK(share > 0.0 && share < 1.0,
                 "hotspot share must be in (0, 1)");
  std::size_t hot = 0;
  for (const core::GroupPair& g : groups) {
    if (g.srv1 / servers_per_rack == hot_rack) {
      ++hot;
    }
  }
  NETCLONE_CHECK(hot > 0, "no candidate group targets the hotspot rack");
  NETCLONE_CHECK(hot < groups.size(),
                 "every group targets the hotspot rack — nothing to skew");
  std::vector<double> weights(groups.size());
  const double hot_w = share / static_cast<double>(hot);
  const double cold_w =
      (1.0 - share) / static_cast<double>(groups.size() - hot);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    weights[i] =
        groups[i].srv1 / servers_per_rack == hot_rack ? hot_w : cold_w;
  }
  return weights;
}

}  // namespace netclone::harness
