// Timed fault plans — the scenario-level face of the chaos layer.
//
// A FaultPlan is a list of timed entries parsed from scenario config
// lines such as:
//
//     at=2s    link_down      sw0-s3
//     at=3s    corrupt_rate   sw0-s1  1e-4
//     at=3500us reorder_rate  c0-sw0  0.01
//     at=4s    server_crash   s2
//     at=4.5s  server_restart s2
//     at=5s    switch_wipe    sw0
//     at=6s    filter_stale   sw0     0 12345
//
// Targets use the harness's node names: clients `c<N>`, servers `s<N>`,
// the ToR switch `sw0`, the LÆDGE coordinator `co0`. A link target is
// `<src>-<dst>` for the directed src→dst link. Experiment resolves the
// names and schedules every entry through the Scheduler, so fault
// firing obeys the same deterministic event order as everything else.
//
// Multi-rack plans address fat-tree entities through the same grammar
// (MultiRackExperiment resolves them): switches `tor1` (client ToR),
// `tor2`.. (server-rack ToRs), `agg0`.. (chain replicas); links by
// endpoint pair (`tor1-agg0`, `agg0-agg1`, `tor2-s0`); whole racks via
//
//     at=2ms  rack_down  rack0          # every trunk of server rack 0
//     at=4ms  rack_up    rack0
//
// and the managed chain fail-over pair
//
//     at=2ms  agg_fail    agg1          # crash + chain splice + resync
//     at=5ms  agg_rejoin  agg1          # recover + snapshot + re-admit
//
// agg_fail/agg_rejoin are schedule-managed: installing the plan expands
// each into the crash/recover barrier plus the delayed reconcile-marker
// and spray-readmission events.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace netclone::harness {

/// Thrown on malformed fault entries (unknown action, bad time suffix,
/// missing or extra operands).
class FaultPlanError : public std::runtime_error {
 public:
  explicit FaultPlanError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class FaultAction {
  // phys: administrative state and probabilistic impairments of one
  // directed link. Rate actions merge into the link's impairment config.
  kLinkDown,
  kLinkUp,
  kDropRate,
  kCorruptRate,
  kReorderRate,
  kDuplicateRate,
  // host: server process faults.
  kServerCrash,
  kServerRestart,
  kServerPause,
  kServerResume,
  kServerSlowdown,
  // pisa/core: switch faults.
  kSwitchFail,
  kSwitchRecover,
  kSwitchWipe,
  kFilterStale,
  // harness/multirack: managed chain-replica fail-over (crash + splice +
  // resync + re-admission) and administrative rack isolation.
  kAggFail,
  kAggRejoin,
  kRackDown,
  kRackUp,
};

[[nodiscard]] const char* fault_action_name(FaultAction action);

struct FaultEvent {
  SimTime at{};
  FaultAction action{};
  /// Link name (`c0-sw0`), server name (`s2`), or switch name (`sw0`).
  std::string target{};
  /// Rate (impairments), slowdown factor, or the request id to plant
  /// (filter_stale).
  double value = 0.0;
  /// filter_stale only: which filter table receives the entry.
  std::size_t table = 0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Parses one timed entry (`at=<time><unit> <action> <target> [args]`).
/// Accepted time units: ns, us, ms, s.
[[nodiscard]] FaultEvent parse_fault_entry(const std::string& line);

/// Parses a whole plan: one entry per line, `#` comments and blank lines
/// allowed. Errors carry `<source>: line <N>:` diagnostics (the source
/// prefix is omitted when `source` is empty) in front of the offending
/// entry and key, matching the scenario parser's file/line/key style.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text,
                                         const std::string& source = "");

}  // namespace netclone::harness
