// NetChain-style fail-over and rejoin for the replicated aggregation
// tier (PAPERS.md: NetChain's failure handling, transplanted onto the
// fat-tree pod's chain of AggNetClonePrograms).
//
// The data plane keeps running while the controller reshapes the chain:
//
//   * fail_replica(a): the switch crashes (everything in flight into it
//     dies); the controller splices the chain around the corpse — the
//     predecessor forwards to the successor, the tail role moves to the
//     predecessor when the tail died, the rack ToRs re-point the
//     response route when the head died — and the client ToR stops
//     ECMP-spraying requests at it. When a MIDDLE replica died, the
//     successor may have missed updates that perished inside the corpse
//     or on its links, so a reconcile marker injected at the predecessor
//     after `chain_sync_delay` carries a snapshot cut down the spliced
//     chain: installs overwrite every downstream replica with the
//     predecessor's state, and the FIFO delta stream behind the marker
//     replays everything newer. Head/tail deaths need no reconcile —
//     survivors saw a prefix of the same stream and stay convergent.
//   * rejoin_replica(a): the switch recovers with zeroed soft state and
//     is appended at the chain END. The old tail fills an admit record
//     (tail snapshot) and adopts the rejoiner as its successor in the
//     marker's own pipeline pass, so the marker is the FIRST frame on
//     the new chain link and the delta stream rides behind it. The
//     rejoiner installs the snapshot, becomes the tail (verdict
//     authority moves atomically at the marker), and only after
//     `chain_readmit_delay` does the client ToR spray requests at it
//     again.
//
// Determinism: every mutation runs from events the fault installer
// scheduled at install time (control barriers plus shard-0 marker
// injections), and sync-record ids are assigned in event order — the
// legacy and sharded engines replay the identical sequence. Plans must
// space chain events at least `chain_sync_delay` apart (the installer's
// contract); the controller CHECKs instead of silently mis-splicing
// when a plan violates that.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/agg_netclone_program.hpp"
#include "pisa/switch_device.hpp"

namespace netclone::harness {

struct ChainReplica {
  pisa::SwitchDevice* device = nullptr;
  core::AggNetCloneProgram* program = nullptr;
};

class ChainController {
 public:
  /// `chain_ports[i][j]` is replica i's egress port toward replica j on
  /// their dedicated chain link (the full mesh the harness builds).
  /// `update_spray` re-installs the client ToR's ECMP member set (given
  /// live replica indices, ascending); `repoint_responses` re-points the
  /// rack ToRs' response route at a new head replica.
  ChainController(
      std::vector<ChainReplica> replicas,
      std::vector<std::vector<std::optional<std::size_t>>> chain_ports,
      std::shared_ptr<core::AggChainSyncHub> hub,
      std::function<void(const std::vector<std::size_t>&)> update_spray,
      std::function<void(std::size_t)> repoint_responses);

  // -- fault hooks (called from installer-scheduled events) ---------------

  /// Control barrier: crash + splice + spray/route updates.
  void fail_replica(std::size_t replica);
  /// Shard-0 event at fail + chain_sync_delay: inject the reconcile
  /// marker at the recorded predecessor (no-op when superseded).
  void reconcile_after_fail(std::size_t replica);
  /// Control barrier: recover the switch and append it to the chain as a
  /// pending admit.
  void rejoin_replica(std::size_t replica);
  /// Shard-0 event at the same instant (after the barrier): inject the
  /// admit marker at the old tail.
  void inject_admit_marker(std::size_t replica);
  /// Control barrier at rejoin + chain_readmit_delay: put the replica
  /// back into the ECMP spray set (no-op when superseded).
  void readmit_spray(std::size_t replica);

  // -- auditor / test queries ---------------------------------------------

  /// Chain members whose admit completed, in chain order.
  [[nodiscard]] std::vector<std::size_t> admitted_members() const;
  /// True when no reconcile marker is pending injection and every
  /// appended replica has finished its admit — the precondition for the
  /// auditor's digest-convergence check.
  [[nodiscard]] bool quiescent() const;
  [[nodiscard]] std::uint64_t structural_changes() const {
    return structural_changes_;
  }
  [[nodiscard]] std::uint64_t fails_of(std::size_t replica) const {
    return fails_.at(replica);
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Position of `replica` in chain_, or kNone.
  [[nodiscard]] std::size_t position_of(std::size_t replica) const;
  /// Drops resolved pending admits, then CHECKs that no resync is still
  /// in flight — overlapping chain faults would mis-splice.
  void settle_and_check_no_overlap(const char* op);
  void inject_marker(std::size_t filler, std::uint32_t sync_id);

  std::vector<ChainReplica> replicas_;
  std::vector<std::vector<std::optional<std::size_t>>> chain_ports_;
  std::shared_ptr<core::AggChainSyncHub> hub_;
  std::function<void(const std::vector<std::size_t>&)> update_spray_;
  std::function<void(std::size_t)> repoint_responses_;
  /// Admitted + pending-admit members in chain order.
  std::vector<std::size_t> chain_;
  /// failed replica -> predecessor that will fill the reconcile marker.
  std::map<std::size_t, std::size_t> pending_reconciles_;
  /// rejoining replica -> its admit record's sync id.
  std::map<std::size_t, std::uint32_t> pending_admits_;
  std::vector<std::uint64_t> fails_;
  std::uint32_t next_sync_id_ = 1;
  std::uint64_t structural_changes_ = 0;
};

}  // namespace netclone::harness
