// Engine selection shared by every harness (Experiment, MultiRack).
//
// Exactly one event engine backs a run: the legacy single-queue
// sim::Simulator, or sim::ShardedSimulator when the config (or
// NETCLONE_SHARDS) asks for shards. EngineContext owns that choice plus
// the cross-shard link wiring, so every harness honors the same
// selection rules — and produces bit-identical digests for any choice.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "phys/topology.hpp"
#include "sim/scheduler.hpp"
#include "wire/framebuf.hpp"

namespace netclone::sim {
class Simulator;
class ShardedSimulator;
}  // namespace netclone::sim

namespace netclone::harness {

class EngineContext {
 public:
  /// `config_shards` == 0 resolves NETCLONE_SHARDS (unset -> legacy
  /// engine); any value >= 1 forces the sharded engine with that many
  /// queues.
  EngineContext(std::size_t config_shards, std::uint64_t seed);
  ~EngineContext();

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  [[nodiscard]] bool sharded() const { return sharded_ != nullptr; }
  /// Shards in use (0 = unsharded legacy engine).
  [[nodiscard]] std::size_t num_shards() const;
  /// Scheduler a node on `shard` runs on (the single engine when
  /// unsharded).
  [[nodiscard]] sim::Scheduler& shard_scheduler(std::size_t shard);
  /// Where faults and test-injected events go: the control barrier when
  /// sharded, the single queue otherwise.
  [[nodiscard]] sim::Scheduler& control();

  void run_until(SimTime deadline);
  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::uint64_t absorbed_events() const;
  /// One balance sheet per shard pool, or the process-wide pool when
  /// unsharded.
  [[nodiscard]] std::vector<wire::FramePool::Stats> frame_pool_stats() const;

  /// topology.connect() plus, when the endpoints' shards differ, the
  /// cross-shard mailbox wiring for both directions. Link ids are
  /// topology build-order indices — identical for every shard count.
  phys::DuplexPorts connect(phys::Topology& topology, phys::Node& a,
                            std::size_t shard_a, phys::Node& b,
                            std::size_t shard_b,
                            phys::LinkParams params = {});

 private:
  // Exactly one engine is loaded.
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::ShardedSimulator> sharded_;
};

/// Build-time validation of an explicit shard assignment: every entry
/// must name an existing shard and the list must cover all `num_entities`
/// (what = "cluster hosts", "racks", ... for the error text). Also warns
/// loudly when more than half of the entities serialize onto one shard —
/// a degenerate assignment that silently erases the parallelism the
/// caller asked for. No-op when `assignment` is empty (defaults apply)
/// or the engine is unsharded.
void validate_shard_assignment(const std::vector<std::uint32_t>& assignment,
                               std::size_t num_shards,
                               std::size_t num_entities,
                               const std::string& what);

}  // namespace netclone::harness
