#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"

namespace netclone::harness {

std::vector<double> default_load_points() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

std::vector<SweepPoint> run_sweep(const ClusterConfig& base,
                                  double capacity_rps,
                                  const std::vector<double>& load_fractions) {
  std::vector<SweepPoint> points;
  points.reserve(load_fractions.size());
  std::uint64_t salt = 0;
  for (const double fraction : load_fractions) {
    ClusterConfig cfg = base;
    cfg.offered_rps = capacity_rps * fraction;
    cfg.seed = base.seed + 1000 * ++salt;
    Experiment experiment{cfg};
    points.push_back(SweepPoint{fraction, experiment.run()});
    char label[32];
    std::snprintf(label, sizeof(label), "load %.2f", fraction);
    print_link_coalescing(label, experiment.links());
  }
  return points;
}

void print_series(const std::string& title,
                  const std::vector<SweepPoint>& points) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf(
      "  %-19s %6s %10s %9s %9s %9s %8s %9s %9s\n", "scheme", "load",
      "KRPS", "p50(us)", "p99(us)", "p999(us)", "mean(us)", "cloned%",
      "filtered");
  for (const SweepPoint& p : points) {
    const ExperimentResult& r = p.result;
    const double cloned_pct =
        r.requests_sent == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.cloned_requests) /
                  static_cast<double>(r.requests_sent);
    std::printf(
        "  %-19s %5.2f %10.1f %9.1f %9.1f %9.1f %8.1f %8.1f%% %9llu\n",
        scheme_name(r.scheme), p.load_fraction, r.achieved_rps / 1e3,
        r.p50.us(), r.p99.us(), r.p999.us(), r.mean_us, cloned_pct,
        static_cast<unsigned long long>(r.filtered_responses));
  }
}

void print_link_coalescing(
    const std::string& label,
    const std::vector<std::pair<std::string, phys::Link*>>& links) {
  std::uint64_t total_tx = 0;
  std::uint64_t total_coalesced = 0;
  for (const auto& [name, link] : links) {
    total_tx += link->stats().tx_frames;
    total_coalesced += link->stats().coalesced_frames;
  }
  if (total_coalesced == 0) {
    return;  // oracle mode (or nothing absorbed): stay silent
  }
  std::printf("  coalescing [%s]: %llu of %llu frames (%.1f%%)\n",
              label.c_str(),
              static_cast<unsigned long long>(total_coalesced),
              static_cast<unsigned long long>(total_tx),
              100.0 * static_cast<double>(total_coalesced) /
                  static_cast<double>(total_tx));
  for (const auto& [name, link] : links) {
    const phys::LinkStats& s = link->stats();
    if (s.coalesced_frames == 0) {
      continue;
    }
    std::printf("    %-12s %9llu of %9llu (%.1f%%)\n", name.c_str(),
                static_cast<unsigned long long>(s.coalesced_frames),
                static_cast<unsigned long long>(s.tx_frames),
                100.0 * static_cast<double>(s.coalesced_frames) /
                    static_cast<double>(s.tx_frames));
  }
}

void ShapeCheck::expect(bool condition, const std::string& label) {
  entries_.push_back(Entry{condition, label});
}

bool ShapeCheck::report() const {
  bool all_ok = true;
  std::printf("\nSHAPE-CHECK:\n");
  for (const Entry& e : entries_) {
    std::printf("  [%s] %s\n", e.ok ? "ok" : "MISS", e.label.c_str());
    all_ok = all_ok && e.ok;
  }
  std::printf("SHAPE-CHECK verdict: %s\n", all_ok ? "PASS" : "PARTIAL");
  return all_ok;
}

bool write_csv(const std::string& path,
               const std::vector<SweepPoint>& points) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    log_warn("cannot open CSV file: " + path);
    return false;
  }
  std::fprintf(file,
               "scheme,load_fraction,offered_rps,achieved_rps,p50_us,"
               "p99_us,p999_us,mean_us,requests_sent,completed,"
               "cloned_requests,filtered_responses,redundant_responses,"
               "dropped_stale_clones,empty_queue_fraction\n");
  for (const SweepPoint& p : points) {
    const ExperimentResult& r = p.result;
    std::fprintf(
        file,
        "%s,%.3f,%.1f,%.1f,%.3f,%.3f,%.3f,%.3f,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%.5f\n",
        scheme_name(r.scheme), p.load_fraction, r.offered_rps,
        r.achieved_rps, r.p50.us(), r.p99.us(), r.p999.us(), r.mean_us,
        static_cast<unsigned long long>(r.requests_sent),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.cloned_requests),
        static_cast<unsigned long long>(r.filtered_responses),
        static_cast<unsigned long long>(r.redundant_responses),
        static_cast<unsigned long long>(r.dropped_stale_clones),
        r.empty_queue_fraction);
  }
  std::fclose(file);
  return true;
}

double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("NETCLONE_BENCH_SCALE");
    if (env == nullptr) {
      return 1.0;
    }
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

SimTime scaled(SimTime t) {
  return SimTime::nanoseconds(static_cast<std::int64_t>(
      static_cast<double>(t.ns()) * bench_scale()));
}

double best_p99_improvement(const std::vector<SweepPoint>& a,
                            const std::vector<SweepPoint>& b) {
  double best = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double pa = a[i].result.p99.us();
    const double pb = b[i].result.p99.us();
    if (pa > 0.0 && pb > 0.0) {
      best = std::max(best, pa / pb);
    }
  }
  return best;
}

double peak_throughput(const std::vector<SweepPoint>& points) {
  double best = 0.0;
  for (const SweepPoint& p : points) {
    best = std::max(best, p.result.achieved_rps);
  }
  return best;
}

}  // namespace netclone::harness
