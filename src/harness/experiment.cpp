#include "harness/experiment.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "core/groups.hpp"

namespace netclone::harness {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBaseline:
      return "Baseline";
    case Scheme::kCClone:
      return "C-Clone";
    case Scheme::kLaedge:
      return "LAEDGE";
    case Scheme::kNetClone:
      return "NetClone";
    case Scheme::kNetCloneNoFilter:
      return "NetClone-NoFilter";
    case Scheme::kRackSched:
      return "RackSched";
    case Scheme::kNetCloneRackSched:
      return "NetClone+RackSched";
  }
  return "?";
}

namespace {

/// "s3"-style node name. Built by append rather than operator+ to dodge
/// a GCC 12 -Wrestrict false positive on char* + to_string temporaries.
std::string node_name(char prefix, std::size_t index) {
  std::string name(1, prefix);
  name += std::to_string(index);
  return name;
}

}  // namespace

double cluster_capacity_rps(const std::vector<std::uint32_t>& server_workers,
                            double mean_service_us) {
  NETCLONE_CHECK(mean_service_us > 0.0, "service time must be positive");
  std::uint64_t workers = 0;
  for (const std::uint32_t w : server_workers) {
    workers += w;
  }
  return static_cast<double>(workers) * 1e6 / mean_service_us;
}

Experiment::Experiment(ClusterConfig config)
    : config_(std::move(config)), root_rng_(config_.seed) {
  NETCLONE_CHECK(config_.factory != nullptr, "config needs a factory");
  NETCLONE_CHECK(config_.service != nullptr, "config needs a service");
  NETCLONE_CHECK(config_.server_workers.size() >= 2,
                 "need at least two servers");
  NETCLONE_CHECK(config_.num_clients >= 1, "need at least one client");
  build();
}

Experiment::~Experiment() = default;

sim::Scheduler& Experiment::scheduler() { return engine_->control(); }

std::uint64_t Experiment::executed_events() const {
  return engine_->executed_events();
}

std::uint64_t Experiment::absorbed_events() const {
  return engine_->absorbed_events();
}

std::size_t Experiment::num_shards() const { return engine_->num_shards(); }

std::vector<wire::FramePool::Stats> Experiment::frame_pool_stats() const {
  return engine_->frame_pool_stats();
}

sim::Scheduler& Experiment::shard_scheduler(std::size_t shard) {
  return engine_->shard_scheduler(shard);
}

std::size_t Experiment::host_shard(std::size_t host_index) const {
  if (!engine_->sharded()) {
    return 0;
  }
  const std::size_t n = engine_->num_shards();
  if (!config_.shard_assignment.empty()) {
    return config_.shard_assignment[host_index];
  }
  // The switch (shard 0) is every host's peer; spreading hosts over the
  // remaining shards keeps the hot switch queue on a core of its own.
  return n == 1 ? 0 : 1 + host_index % (n - 1);
}

phys::DuplexPorts Experiment::connect_nodes(phys::Node& a,
                                            std::size_t shard_a,
                                            phys::Node& b,
                                            std::size_t shard_b,
                                            phys::LinkParams params) {
  return engine_->connect(*topology_, a, shard_a, b, shard_b, params);
}

void Experiment::build() {
  engine_ = std::make_unique<EngineContext>(config_.num_shards, config_.seed);
  const std::size_t num_servers = config_.server_workers.size();
  validate_shard_assignment(config_.shard_assignment, engine_->num_shards(),
                            num_servers + config_.num_clients,
                            "cluster hosts");
  topology_ = std::make_unique<phys::Topology>(shard_scheduler(0));

  // The switch always lives on shard 0, with the control plane and the
  // coordinator: every host link touches it, so its queue is the hub the
  // lookahead windows fan out from.
  switch_ = &topology_->add_node<pisa::SwitchDevice>(
      shard_scheduler(0), "tor", config_.switch_params);

  // The loopback port used for clone recirculation must exist before the
  // PRE multicast groups referencing it.
  const std::size_t recirc_port = switch_->add_internal_port();
  switch_->set_loopback_port(recirc_port);

  // Load the scheme's data-plane program.
  const bool uses_netclone = config_.scheme == Scheme::kNetClone ||
                             config_.scheme == Scheme::kNetCloneNoFilter;
  core::NetCloneConfig nc_cfg = config_.netclone;
  nc_cfg.enable_filtering =
      config_.scheme != Scheme::kNetCloneNoFilter &&
      nc_cfg.enable_filtering;
  switch (config_.scheme) {
    case Scheme::kNetClone:
    case Scheme::kNetCloneNoFilter:
      netclone_program_ = std::make_shared<core::NetCloneProgram>(
          switch_->pipeline(), nc_cfg);
      switch_->load_program(netclone_program_);
      controller_ = std::make_unique<core::Controller>(*netclone_program_,
                                                       *switch_,
                                                       recirc_port);
      break;
    case Scheme::kNetCloneRackSched:
      integration_program_ =
          std::make_shared<baselines::NetCloneRackSchedProgram>(
              switch_->pipeline(), nc_cfg);
      switch_->load_program(integration_program_);
      break;
    case Scheme::kRackSched:
      racksched_program_ = std::make_shared<baselines::RackSchedProgram>(
          switch_->pipeline(), nc_cfg.max_servers, root_rng_.next_u64());
      switch_->load_program(racksched_program_);
      break;
    case Scheme::kBaseline:
    case Scheme::kCClone:
    case Scheme::kLaedge:
      l3_program_ = std::make_shared<baselines::L3ForwardProgram>(
          switch_->pipeline());
      switch_->load_program(l3_program_);
      break;
  }

  // Workers.
  std::vector<wire::Ipv4Address> server_ips;
  std::vector<baselines::LaedgeWorkerInfo> laedge_workers;
  for (std::size_t i = 0; i < num_servers; ++i) {
    const auto sid = static_cast<ServerId>(static_cast<std::uint8_t>(i));
    host::ServerParams sp = config_.server_template;
    sp.sid = sid;
    sp.workers = config_.server_workers[i];
    const std::size_t shard = host_shard(i);
    auto& server = topology_->add_node<host::Server>(
        shard_scheduler(shard), sp, config_.service, root_rng_.fork());
    const auto ports = connect_nodes(server, shard, *switch_, 0);
    record_link(node_name('s', i), "sw0", ports);
    const wire::Ipv4Address ip = host::server_ip(sid);
    server_ips.push_back(ip);
    servers_.push_back(&server);

    const auto mcast_group = static_cast<std::uint16_t>(i + 1);
    if (uses_netclone) {
      // The control plane wires AddrT/FwdT/PRE and maintains the groups.
      controller_->add_server(sid, ip, ports.port_on_b);
    } else {
      switch_->configure_multicast_group(mcast_group,
                                         {ports.port_on_b, recirc_port});
    }
    if (uses_netclone) {
      // handled above
    } else if (integration_program_) {
      integration_program_->add_server(sid, ip, ports.port_on_b,
                                       mcast_group);
    } else if (racksched_program_) {
      racksched_program_->add_server(sid, ip, ports.port_on_b);
    } else {
      l3_program_->add_route(ip, ports.port_on_b);
    }
    laedge_workers.push_back(
        baselines::LaedgeWorkerInfo{sid, ip, config_.server_workers[i]});
  }

  // Candidate groups for the cloning schemes (the controller already
  // installed them for the NetClone schemes).
  const auto groups = core::build_group_pairs(num_servers);
  if (integration_program_) {
    integration_program_->install_groups(groups);
  }

  // The coordinator, for LÆDGE runs.
  if (config_.scheme == Scheme::kLaedge) {
    baselines::LaedgeParams lp;
    lp.per_packet_cost = config_.laedge_packet_cost;
    lp.workers = laedge_workers;
    coordinator_ = &topology_->add_node<baselines::LaedgeCoordinator>(
        shard_scheduler(0), lp, root_rng_.fork());
    const auto ports = connect_nodes(*coordinator_, 0, *switch_, 0);
    record_link("co0", "sw0", ports);
    l3_program_->add_route(host::coordinator_ip(), ports.port_on_b);
  }

  // Clients.
  const SimTime stop_at = config_.warmup + config_.measure;
  for (std::size_t c = 0; c < config_.num_clients; ++c) {
    host::ClientParams cp = config_.client_template;
    cp.client_id = static_cast<std::uint16_t>(c);
    cp.rate_rps =
        config_.offered_rps / static_cast<double>(config_.num_clients);
    cp.num_groups = static_cast<std::uint16_t>(groups.size());
    cp.num_filter_tables =
        static_cast<std::uint8_t>(config_.netclone.num_filter_tables);
    cp.server_ips = server_ips;
    cp.warmup_until = config_.warmup;
    cp.stop_at = stop_at;
    switch (config_.scheme) {
      case Scheme::kBaseline:
        cp.mode = host::SendMode::kDirectRandom;
        break;
      case Scheme::kCClone:
        cp.mode = host::SendMode::kCClone;
        break;
      case Scheme::kLaedge:
        cp.mode = host::SendMode::kToCoordinator;
        cp.target = host::coordinator_ip();
        break;
      default:
        cp.mode = host::SendMode::kViaSwitch;
        cp.target = host::service_vip();
        break;
    }
    const std::size_t shard = host_shard(num_servers + c);
    auto& client = topology_->add_node<host::Client>(
        shard_scheduler(shard), cp, config_.factory, root_rng_.fork());
    const auto ports = connect_nodes(client, shard, *switch_, 0);
    record_link(node_name('c', c), "sw0", ports);
    const wire::Ipv4Address ip = host::client_ip(cp.client_id);
    if (uses_netclone) {
      controller_->add_route(ip, ports.port_on_b);
    } else if (integration_program_) {
      integration_program_->add_route(ip, ports.port_on_b);
    } else if (racksched_program_) {
      racksched_program_->add_route(ip, ports.port_on_b);
    } else {
      l3_program_->add_route(ip, ports.port_on_b);
    }
    clients_.push_back(&client);
  }

  install_fault_plan(config_.faults);
}

void Experiment::record_link(const std::string& a, const std::string& b,
                             const phys::DuplexPorts& ports) {
  links_.emplace_back(a + "-" + b, ports.a_to_b);
  links_.emplace_back(b + "-" + a, ports.b_to_a);
}

std::uint64_t Experiment::impairment_seed(const std::string& name) const {
  return mix64(config_.seed ^ fnv1a(std::string_view{name}));
}

phys::Link* Experiment::link(const std::string& name) const {
  for (const auto& [key, link] : links_) {
    if (key == name) {
      return link;
    }
  }
  return nullptr;
}

void Experiment::install_fault_plan(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    scheduler().schedule_at(event.at, [this, event] { apply_fault(event); });
  }
}

void Experiment::apply_fault(const FaultEvent& event) {
  const auto parse_server = [this](const std::string& target) {
    NETCLONE_CHECK(target.size() >= 2 && target[0] == 's',
                   "bad server target: " + target);
    const std::size_t index =
        static_cast<std::size_t>(std::stoul(target.substr(1)));
    NETCLONE_CHECK(index < servers_.size(),
                   "server target out of range: " + target);
    return servers_[index];
  };
  const auto target_link = [this](const std::string& target) {
    phys::Link* l = link(target);
    NETCLONE_CHECK(l != nullptr, "unknown link target: " + target);
    return l;
  };
  const auto merge_rate = [&](auto member) {
    phys::Link* l = target_link(event.target);
    phys::LinkImpairments cfg =
        l->impairments() != nullptr ? *l->impairments()
                                    : phys::LinkImpairments{};
    cfg.*member = event.value;
    l->configure_impairments(cfg, impairment_seed(event.target));
  };

  switch (event.action) {
    case FaultAction::kLinkDown:
      target_link(event.target)->set_up(false);
      break;
    case FaultAction::kLinkUp:
      target_link(event.target)->set_up(true);
      break;
    case FaultAction::kDropRate:
      merge_rate(&phys::LinkImpairments::drop_rate);
      break;
    case FaultAction::kCorruptRate:
      merge_rate(&phys::LinkImpairments::corrupt_rate);
      break;
    case FaultAction::kReorderRate:
      merge_rate(&phys::LinkImpairments::reorder_rate);
      break;
    case FaultAction::kDuplicateRate:
      merge_rate(&phys::LinkImpairments::duplicate_rate);
      break;
    case FaultAction::kServerCrash:
      parse_server(event.target)->crash();
      break;
    case FaultAction::kServerRestart:
      parse_server(event.target)->restart();
      break;
    case FaultAction::kServerPause:
      parse_server(event.target)->pause();
      break;
    case FaultAction::kServerResume:
      parse_server(event.target)->resume();
      break;
    case FaultAction::kServerSlowdown:
      parse_server(event.target)->set_slowdown(event.value);
      break;
    case FaultAction::kSwitchFail:
      switch_->fail();
      break;
    case FaultAction::kSwitchRecover:
      switch_->recover();
      break;
    case FaultAction::kSwitchWipe:
      switch_->wipe_soft_state();
      break;
    case FaultAction::kFilterStale:
      NETCLONE_CHECK(netclone_program_ != nullptr,
                     "filter_stale requires a NetClone scheme");
      netclone_program_->inject_stale_filter_entry(
          event.table, static_cast<std::uint32_t>(event.value));
      break;
  }
}

void Experiment::remove_server(ServerId sid) {
  NETCLONE_CHECK(controller_ != nullptr,
                 "server removal is wired for the NetClone schemes only");
  controller_->remove_server(sid);
  for (host::Client* client : clients_) {
    client->set_num_groups(controller_->group_count());
  }
}

ExperimentResult Experiment::run() {
  for (host::Client* client : clients_) {
    client->start();
  }
  const SimTime end = config_.warmup + config_.measure + config_.drain;
  engine_->run_until(end);
  return collect();
}

std::vector<std::uint64_t> Experiment::run_timeline(
    SimTime total, SimTime bin, std::optional<SimTime> fail_at,
    std::optional<SimTime> recover_at) {
  NETCLONE_CHECK(bin > SimTime::zero(), "bin must be positive");
  for (host::Client* client : clients_) {
    client->start();
  }
  if (fail_at) {
    scheduler().schedule_at(*fail_at, [this] { switch_->fail(); });
  }
  if (recover_at) {
    scheduler().schedule_at(*recover_at, [this] { switch_->recover(); });
  }
  std::vector<std::uint64_t> bins;
  std::uint64_t last_total = 0;
  for (SimTime t = bin; t <= total; t += bin) {
    engine_->run_until(t);
    std::uint64_t now_total = 0;
    for (const host::Client* client : clients_) {
      now_total += client->stats().completed;
    }
    bins.push_back(now_total - last_total);
    last_total = now_total;
  }
  return bins;
}

ExperimentResult Experiment::collect() const {
  ExperimentResult result;
  result.scheme = config_.scheme;
  result.offered_rps = config_.offered_rps;

  LatencyHistogram merged;
  LatencyHistogram merged_wait;
  LatencyHistogram merged_service;
  for (const host::Client* client : clients_) {
    const host::ClientStats& cs = client->stats();
    merged.merge(cs.latency);
    merged_wait.merge(cs.server_queue_wait);
    merged_service.merge(cs.server_service);
    result.requests_sent += cs.requests_sent;
    result.completed += cs.completed_in_window;
    result.redundant_responses += cs.redundant_responses;
  }
  result.achieved_rps =
      static_cast<double>(result.completed) / config_.measure.sec();
  result.mean_us = merged.mean_ns() / 1e3;
  result.p50 = merged.p50();
  result.p99 = merged.p99();
  result.p999 = merged.p999();
  result.server_wait_p99 = merged_wait.p99();
  result.server_service_p99 = merged_service.p99();

  std::uint64_t empty = 0;
  std::uint64_t total = 0;
  for (const host::Server* server : servers_) {
    const host::ServerStats& ss = server->stats();
    result.dropped_stale_clones += ss.dropped_stale_clones;
    empty += ss.responses_with_empty_queue;
    total += ss.responses_total;
  }
  result.empty_queue_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(empty) / static_cast<double>(total);

  if (netclone_program_) {
    result.cloned_requests = netclone_program_->stats().cloned_requests;
    result.filtered_responses =
        netclone_program_->stats().filtered_responses;
  } else if (integration_program_) {
    result.cloned_requests = integration_program_->stats().cloned_requests;
    result.filtered_responses =
        integration_program_->stats().filtered_responses;
  }
  result.switch_stats = switch_->stats();
  return result;
}

}  // namespace netclone::harness
