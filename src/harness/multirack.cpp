#include "harness/multirack.hpp"

#include "common/check.hpp"
#include "core/groups.hpp"
#include "sim/simulator.hpp"

namespace netclone::harness {

MultiRackExperiment::MultiRackExperiment(MultiRackConfig config)
    : config_(std::move(config)), root_rng_(config_.seed) {
  NETCLONE_CHECK(config_.factory != nullptr, "config needs a factory");
  NETCLONE_CHECK(config_.service != nullptr, "config needs a service");
  NETCLONE_CHECK(config_.server_racks >= 1, "need at least one server rack");
  NETCLONE_CHECK(config_.server_racks * config_.servers_per_rack >= 2,
                 "NetClone needs at least two servers");
  build();
}

MultiRackExperiment::~MultiRackExperiment() = default;

sim::Scheduler& MultiRackExperiment::scheduler() { return *sim_; }

void MultiRackExperiment::build() {
  sim_ = std::make_unique<sim::Simulator>();
  topology_ = std::make_unique<phys::Topology>(*sim_);

  // Aggregation layer: plain LPM, not NetClone-aware.
  agg_ = &topology_->add_node<pisa::SwitchDevice>(*sim_, "agg");
  agg_program_ = std::make_shared<baselines::AggRouterProgram>(
      agg_->pipeline(), /*num_ports=*/1 + config_.server_racks + 4);
  agg_->load_program(agg_program_);

  // Client-side ToR: the one that runs the NetClone logic.
  client_tor_ = &topology_->add_node<pisa::SwitchDevice>(*sim_, "tor-1");
  const std::size_t recirc = client_tor_->add_internal_port();
  client_tor_->set_loopback_port(recirc);
  core::NetCloneConfig client_cfg = config_.netclone;
  client_cfg.switch_id = 1;
  client_tor_program_ = std::make_shared<core::NetCloneProgram>(
      client_tor_->pipeline(), client_cfg);
  client_tor_->load_program(client_tor_program_);
  const auto client_trunk = topology_->connect(*client_tor_, *agg_);
  // Client subnet lives behind ToR#1.
  agg_program_->add_prefix(wire::Ipv4Address::from_octets(10, 0, 0, 0), 24,
                           client_trunk.port_on_b);

  // Server racks.
  std::uint8_t sid = 0;
  for (std::size_t rack = 0; rack < config_.server_racks; ++rack) {
    auto& tor = topology_->add_node<pisa::SwitchDevice>(
        *sim_, "tor-" + std::to_string(rack + 2));
    const std::size_t tor_recirc = tor.add_internal_port();
    tor.set_loopback_port(tor_recirc);
    core::NetCloneConfig rack_cfg = config_.netclone;
    rack_cfg.switch_id = static_cast<std::uint8_t>(rack + 2);
    auto program = std::make_shared<core::NetCloneProgram>(tor.pipeline(),
                                                           rack_cfg);
    tor.load_program(program);
    const auto trunk = topology_->connect(tor, *agg_);
    server_tors_.push_back(&tor);
    server_tor_programs_.push_back(program);
    trunk_ports_.push_back(trunk.port_on_a);

    for (std::size_t i = 0; i < config_.servers_per_rack; ++i, ++sid) {
      host::ServerParams sp = config_.server_template;
      sp.sid = ServerId{sid};
      sp.workers = config_.workers;
      auto& server = topology_->add_node<host::Server>(
          *sim_, sp, config_.service, root_rng_.fork());
      const auto ports = topology_->connect(server, tor);
      servers_.push_back(&server);
      const wire::Ipv4Address ip = host::server_ip(ServerId{sid});

      // Client ToR: clone toward the trunk; AddrT knows the global sid.
      const auto mcast = static_cast<std::uint16_t>(sid + 1);
      client_tor_->configure_multicast_group(
          mcast, {client_trunk.port_on_a, recirc});
      client_tor_program_->add_server(ServerId{sid}, ip,
                                      client_trunk.port_on_a, mcast);
      // Rack ToR routes the server's address locally; agg routes the
      // host address toward this rack.
      program->add_route(ip, ports.port_on_b);
      agg_program_->add_prefix(ip, 32, trunk.port_on_b);
    }
  }

  const std::size_t num_servers = config_.server_racks *
                                  config_.servers_per_rack;
  const auto groups = core::build_group_pairs(num_servers);
  client_tor_program_->install_groups(groups);

  const SimTime stop_at = config_.warmup + config_.measure;
  for (std::size_t c = 0; c < config_.num_clients; ++c) {
    host::ClientParams cp = config_.client_template;
    cp.client_id = static_cast<std::uint16_t>(c);
    cp.mode = host::SendMode::kViaSwitch;
    cp.target = host::service_vip();
    cp.rate_rps =
        config_.offered_rps / static_cast<double>(config_.num_clients);
    cp.num_groups = static_cast<std::uint16_t>(groups.size());
    cp.num_filter_tables =
        static_cast<std::uint8_t>(config_.netclone.num_filter_tables);
    cp.warmup_until = config_.warmup;
    cp.stop_at = stop_at;
    auto& client = topology_->add_node<host::Client>(
        *sim_, cp, config_.factory, root_rng_.fork());
    const auto ports = topology_->connect(client, *client_tor_);
    const wire::Ipv4Address ip = host::client_ip(cp.client_id);
    client_tor_program_->add_route(ip, ports.port_on_b);
    // Rack ToRs route responses toward the client through their trunk
    // (their FwdT is exact-match, so one host route per client).
    for (std::size_t rack = 0; rack < server_tor_programs_.size(); ++rack) {
      server_tor_programs_[rack]->add_route(ip, trunk_ports_[rack]);
    }
    clients_.push_back(&client);
  }
}

ExperimentResult MultiRackExperiment::run() {
  for (host::Client* client : clients_) {
    client->start();
  }
  sim_->run_until(config_.warmup + config_.measure + config_.drain);

  ExperimentResult result;
  result.scheme = Scheme::kNetClone;
  result.offered_rps = config_.offered_rps;
  LatencyHistogram merged;
  for (const host::Client* client : clients_) {
    const host::ClientStats& cs = client->stats();
    merged.merge(cs.latency);
    result.requests_sent += cs.requests_sent;
    result.completed += cs.completed_in_window;
    result.redundant_responses += cs.redundant_responses;
  }
  result.achieved_rps =
      static_cast<double>(result.completed) / config_.measure.sec();
  result.mean_us = merged.mean_ns() / 1e3;
  result.p50 = merged.p50();
  result.p99 = merged.p99();
  result.p999 = merged.p999();
  for (const host::Server* server : servers_) {
    result.dropped_stale_clones += server->stats().dropped_stale_clones;
  }
  result.cloned_requests = client_tor_program_->stats().cloned_requests;
  result.filtered_responses =
      client_tor_program_->stats().filtered_responses;
  result.switch_stats = client_tor_->stats();
  return result;
}

}  // namespace netclone::harness
