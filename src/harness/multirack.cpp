#include "harness/multirack.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "core/groups.hpp"

namespace netclone::harness {

namespace {

/// Shared identity of the replicated aggregation tier: every replica
/// stamps the same SWITCH_ID so rack ToRs treat tier traffic as foreign,
/// and chain peers recognize relayed responses as their own to process.
constexpr std::uint8_t kAggTierSwitchId = 200;

std::string indexed_name(const char* prefix, std::size_t index) {
  std::string name(prefix);
  name += std::to_string(index);
  return name;
}

/// `agg3` -> 3, `rack0` -> 0. Grammar validation happens at parse time;
/// this only re-extracts the index at resolve time.
std::size_t indexed_target(const std::string& target, const char* prefix) {
  const std::size_t len = std::string(prefix).size();
  NETCLONE_CHECK(target.size() > len && target.rfind(prefix, 0) == 0,
                 "bad fault target '" + target + "' (expected " + prefix +
                     "<N>)");
  return static_cast<std::size_t>(std::stoul(target.substr(len)));
}

}  // namespace

MultiRackExperiment::MultiRackExperiment(MultiRackConfig config)
    : config_(std::move(config)), root_rng_(config_.seed) {
  NETCLONE_CHECK(config_.factory != nullptr, "config needs a factory");
  NETCLONE_CHECK(config_.service != nullptr, "config needs a service");
  NETCLONE_CHECK(config_.server_racks >= 1, "need at least one server rack");
  NETCLONE_CHECK(config_.server_racks * config_.servers_per_rack >= 2,
                 "NetClone needs at least two servers");
  NETCLONE_CHECK(config_.num_aggs >= 1, "need at least one agg switch");
  NETCLONE_CHECK(config_.num_clients >= 1, "need at least one client");
  build();
}

MultiRackExperiment::~MultiRackExperiment() = default;

sim::Scheduler& MultiRackExperiment::scheduler() {
  return engine_->control();
}

std::uint64_t MultiRackExperiment::executed_events() const {
  return engine_->executed_events();
}

std::uint64_t MultiRackExperiment::absorbed_events() const {
  return engine_->absorbed_events();
}

std::size_t MultiRackExperiment::num_shards() const {
  return engine_->num_shards();
}

std::vector<wire::FramePool::Stats> MultiRackExperiment::frame_pool_stats()
    const {
  return engine_->frame_pool_stats();
}

const core::NetCloneProgram& MultiRackExperiment::client_tor_program() const {
  NETCLONE_CHECK(client_tor_program_ != nullptr,
                 "the client ToR runs NetClone in kOblivious mode only");
  return *client_tor_program_;
}

const baselines::AggRouterProgram& MultiRackExperiment::agg_program(
    std::size_t agg) const {
  NETCLONE_CHECK(agg < agg_router_programs_.size(),
                 "agg routers exist in kOblivious mode only");
  return *agg_router_programs_[agg];
}

const core::AggNetCloneProgram& MultiRackExperiment::agg_netclone_program(
    std::size_t agg) const {
  NETCLONE_CHECK(agg < agg_netclone_programs_.size(),
                 "chain replicas exist in kReplicated mode only");
  return *agg_netclone_programs_[agg];
}

phys::Link* MultiRackExperiment::link(const std::string& name) const {
  for (const auto& [key, link] : links_) {
    if (key == name) {
      return link;
    }
  }
  return nullptr;
}

std::size_t MultiRackExperiment::rack_shard(std::size_t rack) const {
  if (!engine_->sharded()) {
    return 0;
  }
  if (!config_.rack_shards.empty()) {
    return config_.rack_shards[rack];
  }
  return rack % engine_->num_shards();
}

phys::DuplexPorts MultiRackExperiment::connect_nodes(phys::Node& a,
                                                     std::size_t shard_a,
                                                     phys::Node& b,
                                                     std::size_t shard_b,
                                                     phys::LinkParams params) {
  // Deterministic per-link delay skew (cable-length variation). The pod
  // is otherwise perfectly symmetric: equivalent racks replay identical
  // event-time chains and deliver frames to the aggregation tier at the
  // same instant with indistinguishable scheduling provenance, which the
  // sharded engine's bounded-depth merge cannot always order the way the
  // single-queue engine's global sequence does. A few ns of build-order
  // skew breaks the symmetry identically for every engine and shard
  // count (link build order does not depend on sharding).
  const std::size_t duplex_index = topology_->links().size() / 2;
  params.delay +=
      SimTime::nanoseconds(static_cast<std::int64_t>((7 * duplex_index) % 97));
  return engine_->connect(*topology_, a, shard_a, b, shard_b, params);
}

void MultiRackExperiment::record_link(const std::string& a,
                                     const std::string& b,
                                     const phys::DuplexPorts& ports) {
  links_.emplace_back(a + "-" + b, ports.a_to_b);
  links_.emplace_back(b + "-" + a, ports.b_to_a);
}

void MultiRackExperiment::build() {
  const std::size_t num_servers =
      config_.server_racks * config_.servers_per_rack;
  NETCLONE_CHECK(num_servers < 150, "server count exceeds the address plan");
  NETCLONE_CHECK(num_servers * (num_servers - 1) <= 65535,
                 "group id space exceeded: too many servers");

  engine_ = std::make_unique<EngineContext>(config_.num_shards, config_.seed);
  validate_shard_assignment(config_.rack_shards, engine_->num_shards(),
                            config_.server_racks + 1, "racks");
  topology_ = std::make_unique<phys::Topology>(engine_->shard_scheduler(0));

  // Tables must hold the whole pod regardless of the caller's defaults.
  core::NetCloneConfig nc = config_.netclone;
  nc.max_servers = std::max(nc.max_servers, num_servers);
  nc.max_groups = std::max(nc.max_groups, num_servers * (num_servers - 1));

  const bool replicated = config_.agg_mode == AggMode::kReplicated;

  // -- aggregation tier (always shard 0: every trunk touches it) ---------
  std::vector<std::size_t> agg_recircs;
  for (std::size_t a = 0; a < config_.num_aggs; ++a) {
    auto& agg = topology_->add_node<pisa::SwitchDevice>(
        engine_->shard_scheduler(0), indexed_name("agg", a));
    if (replicated) {
      // The chain replicas clone, so they need the loopback port the
      // multicast groups reference.
      const std::size_t recirc = agg.add_internal_port();
      agg.set_loopback_port(recirc);
      agg_recircs.push_back(recirc);
    }
    aggs_.push_back(&agg);
    switches_.emplace_back(indexed_name("agg", a), &agg);
  }

  // -- client ToR ---------------------------------------------------------
  const std::size_t client_rack_shard = rack_shard(0);
  client_tor_ = &topology_->add_node<pisa::SwitchDevice>(
      engine_->shard_scheduler(client_rack_shard), "tor1");
  switches_.emplace_back("tor1", client_tor_);
  std::size_t client_recirc = 0;
  if (!replicated) {
    client_recirc = client_tor_->add_internal_port();
    client_tor_->set_loopback_port(client_recirc);
    core::NetCloneConfig client_cfg = nc;
    client_cfg.switch_id = 1;
    client_tor_program_ = std::make_shared<core::NetCloneProgram>(
        client_tor_->pipeline(), client_cfg);
    client_tor_->load_program(client_tor_program_);
  } else {
    client_router_program_ = std::make_shared<baselines::AggRouterProgram>(
        client_tor_->pipeline(),
        /*num_ports=*/config_.num_aggs + config_.num_clients,
        /*route_capacity=*/1 + config_.num_clients + num_servers);
    client_tor_->load_program(client_router_program_);
  }

  // Client ToR uplinks, one per agg.
  std::vector<phys::DuplexPorts> client_trunks;
  for (std::size_t a = 0; a < config_.num_aggs; ++a) {
    const phys::DuplexPorts trunk =
        connect_nodes(*client_tor_, client_rack_shard, *aggs_[a], 0,
                      config_.trunk_link);
    record_link("tor1", indexed_name("agg", a), trunk);
    client_trunks.push_back(trunk);
  }
  if (replicated) {
    // Requests to the service VIP spray over the chain replicas.
    std::vector<std::size_t> uplinks;
    for (const phys::DuplexPorts& trunk : client_trunks) {
      uplinks.push_back(trunk.port_on_a);
    }
    spray_uplink_ports_ = uplinks;
    client_router_program_->add_ecmp_prefix(host::service_vip(), 32,
                                            uplinks);
  }

  // Chain links between the replicas (dedicated FIFO hops the head->tail
  // response stream rides on). A full mesh, not just consecutive hops:
  // fail-over may splice any replica next to any other, and a rejoiner
  // is appended behind whichever replica is the tail by then. The lower-
  // indexed pairs come first, so the 2-agg pod's link order (and its
  // pinned digests) is unchanged.
  chain_ports_.assign(config_.num_aggs,
                      std::vector<std::optional<std::size_t>>(
                          config_.num_aggs));
  if (replicated) {
    for (std::size_t i = 0; i < config_.num_aggs; ++i) {
      for (std::size_t j = i + 1; j < config_.num_aggs; ++j) {
        const phys::DuplexPorts hop =
            connect_nodes(*aggs_[i], 0, *aggs_[j], 0, config_.trunk_link);
        record_link(indexed_name("agg", i), indexed_name("agg", j), hop);
        chain_ports_[i][j] = hop.port_on_a;
        chain_ports_[j][i] = hop.port_on_b;
      }
    }
  }

  // Load the agg programs now that their chain ports are known; routes
  // and mcast groups follow as endpoints are wired below.
  if (replicated) {
    core::NetCloneConfig tier_cfg = nc;
    tier_cfg.switch_id = kAggTierSwitchId;
    sync_hub_ = std::make_shared<core::AggChainSyncHub>();
    for (std::size_t a = 0; a < config_.num_aggs; ++a) {
      core::AggChainRole role;
      role.replica_index = a;
      role.chain_length = config_.num_aggs;
      if (a + 1 < config_.num_aggs) {
        role.chain_next_port = chain_ports_[a][a + 1];
      }
      auto program = std::make_shared<core::AggNetCloneProgram>(
          aggs_[a]->pipeline(), tier_cfg, role);
      program->set_sync_hub(sync_hub_);
      aggs_[a]->load_program(program);
      agg_netclone_programs_.push_back(std::move(program));
    }
  } else {
    for (std::size_t a = 0; a < config_.num_aggs; ++a) {
      auto program = std::make_shared<baselines::AggRouterProgram>(
          aggs_[a]->pipeline(), /*num_ports=*/1 + config_.server_racks,
          /*route_capacity=*/num_servers + 1);
      aggs_[a]->load_program(program);
      // Client subnet lives behind ToR#1.
      program->add_prefix(wire::Ipv4Address::from_octets(10, 0, 0, 0), 24,
                          client_trunks[a].port_on_b);
      agg_router_programs_.push_back(std::move(program));
    }
  }

  // -- server racks -------------------------------------------------------
  // rack_trunks[rack][agg] — each rack ToR uplinks to every agg.
  std::vector<std::vector<phys::DuplexPorts>> rack_trunks;
  std::uint8_t sid = 0;
  for (std::size_t rack = 0; rack < config_.server_racks; ++rack) {
    const std::size_t shard = rack_shard(rack + 1);
    const std::string tor_name = indexed_name("tor", rack + 2);
    auto& tor = topology_->add_node<pisa::SwitchDevice>(
        engine_->shard_scheduler(shard), tor_name);
    const std::size_t tor_recirc = tor.add_internal_port();
    tor.set_loopback_port(tor_recirc);
    core::NetCloneConfig rack_cfg = nc;
    rack_cfg.switch_id = static_cast<std::uint8_t>(rack + 2);
    auto program =
        std::make_shared<core::NetCloneProgram>(tor.pipeline(), rack_cfg);
    tor.load_program(program);
    server_tors_.push_back(&tor);
    server_tor_programs_.push_back(program);
    switches_.emplace_back(tor_name, &tor);

    std::vector<phys::DuplexPorts> trunks;
    for (std::size_t a = 0; a < config_.num_aggs; ++a) {
      const phys::DuplexPorts trunk =
          connect_nodes(tor, shard, *aggs_[a], 0, config_.trunk_link);
      record_link(tor_name, indexed_name("agg", a), trunk);
      trunks.push_back(trunk);
    }
    rack_trunks.push_back(trunks);
    std::vector<std::size_t> uplink_ports;
    for (const phys::DuplexPorts& trunk : trunks) {
      uplink_ports.push_back(trunk.port_on_a);
    }
    rack_uplink_ports_.push_back(std::move(uplink_ports));

    for (std::size_t i = 0; i < config_.servers_per_rack; ++i, ++sid) {
      host::ServerParams sp = config_.server_template;
      sp.sid = ServerId{sid};
      sp.workers = config_.workers;
      auto& server = topology_->add_node<host::Server>(
          engine_->shard_scheduler(shard), sp, config_.service,
          root_rng_.fork());
      const phys::DuplexPorts ports =
          connect_nodes(server, shard, tor, shard, config_.host_link);
      record_link(indexed_name("s", sid), tor_name, ports);
      servers_.push_back(&server);
      const wire::Ipv4Address ip = host::server_ip(ServerId{sid});
      // Rack ToR routes the server's address locally (foreign-stamped
      // packets take exactly this FwdT path).
      program->add_route(ip, ports.port_on_b);

      const auto mcast = static_cast<std::uint16_t>(sid + 1);
      if (replicated) {
        for (std::size_t a = 0; a < config_.num_aggs; ++a) {
          // Clone at the agg: multicast {trunk toward the rack, loopback}.
          aggs_[a]->configure_multicast_group(
              mcast, {trunks[a].port_on_b, agg_recircs[a]});
          agg_netclone_programs_[a]->add_server(ServerId{sid}, ip,
                                                trunks[a].port_on_b, mcast);
        }
        // Direct sends (cancels) ride plain routes through one agg.
        client_router_program_->add_prefix(
            ip, 32, client_trunks[sid % config_.num_aggs].port_on_a);
      } else {
        // Clone at the client ToR, toward the trunk serving this sid.
        const std::size_t via = sid % config_.num_aggs;
        client_tor_->configure_multicast_group(
            mcast, {client_trunks[via].port_on_a, client_recirc});
        client_tor_program_->add_server(ServerId{sid}, ip,
                                        client_trunks[via].port_on_a, mcast);
        for (std::size_t a = 0; a < config_.num_aggs; ++a) {
          agg_router_programs_[a]->add_prefix(ip, 32,
                                              trunks[a].port_on_b);
        }
      }
    }
  }

  const auto groups = core::build_group_pairs(num_servers);
  if (replicated) {
    for (auto& program : agg_netclone_programs_) {
      program->install_groups(groups);
    }
  } else {
    client_tor_program_->install_groups(groups);
  }

  // -- clients ------------------------------------------------------------
  const SimTime stop_at = config_.warmup + config_.measure;
  for (std::size_t c = 0; c < config_.num_clients; ++c) {
    host::ClientParams cp = config_.client_template;
    cp.client_id = static_cast<std::uint16_t>(c);
    cp.mode = host::SendMode::kViaSwitch;
    cp.target = host::service_vip();
    cp.rate_rps =
        config_.offered_rps / static_cast<double>(config_.num_clients);
    cp.num_groups = static_cast<std::uint16_t>(groups.size());
    cp.num_filter_tables =
        static_cast<std::uint8_t>(config_.netclone.num_filter_tables);
    cp.warmup_until = config_.warmup;
    cp.stop_at = stop_at;
    auto& client = topology_->add_node<host::Client>(
        engine_->shard_scheduler(client_rack_shard), cp, config_.factory,
        root_rng_.fork());
    const phys::DuplexPorts ports =
        connect_nodes(client, client_rack_shard, *client_tor_,
                      client_rack_shard, config_.host_link);
    record_link(indexed_name("c", c), "tor1", ports);
    const wire::Ipv4Address ip = host::client_ip(cp.client_id);
    client_ips_.push_back(ip);
    clients_.push_back(&client);

    if (replicated) {
      client_router_program_->add_prefix(ip, 32, ports.port_on_b);
      for (std::size_t a = 0; a < config_.num_aggs; ++a) {
        // The tail forwards responses to the client through its own
        // downlink; upstream replicas never use the route but keep it so
        // foreign/cancel traffic cannot strand.
        agg_netclone_programs_[a]->add_route(ip,
                                             client_trunks[a].port_on_b);
      }
      // Responses converge on the chain HEAD.
      for (std::size_t rack = 0; rack < config_.server_racks; ++rack) {
        server_tor_programs_[rack]->add_route(
            ip, rack_trunks[rack][0].port_on_a);
      }
    } else {
      client_tor_program_->add_route(ip, ports.port_on_b);
      for (std::size_t rack = 0; rack < config_.server_racks; ++rack) {
        server_tor_programs_[rack]->add_route(
            ip, rack_trunks[rack][c % config_.num_aggs].port_on_a);
      }
    }
  }

  // -- fail-over controller + fault plan ----------------------------------
  if (replicated) {
    std::vector<ChainReplica> replicas;
    for (std::size_t a = 0; a < config_.num_aggs; ++a) {
      replicas.push_back(
          ChainReplica{aggs_[a], agg_netclone_programs_[a].get()});
    }
    chain_controller_ = std::make_unique<ChainController>(
        std::move(replicas), chain_ports_, sync_hub_,
        [this](const std::vector<std::size_t>& members) {
          // ECMP spray set = live chain members, ascending; the LPM
          // insert overwrites the previous next-hop set in place.
          std::vector<std::size_t> ports;
          for (const std::size_t a : members) {
            ports.push_back(spray_uplink_ports_[a]);
          }
          client_router_program_->add_ecmp_prefix(host::service_vip(), 32,
                                                  ports);
        },
        [this](std::size_t new_head) {
          // Responses must enter the chain at the new head: re-point the
          // rack ToRs' client routes at its trunk.
          for (std::size_t rack = 0; rack < config_.server_racks; ++rack) {
            for (const wire::Ipv4Address ip : client_ips_) {
              server_tor_programs_[rack]->add_route(
                  ip, rack_uplink_ports_[rack][new_head]);
            }
          }
        });
  }
  install_fault_plan(config_.faults);
}

std::uint64_t MultiRackExperiment::impairment_seed(
    const std::string& name) const {
  return mix64(config_.seed ^ fnv1a(std::string_view{name}));
}

void MultiRackExperiment::install_fault_plan(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    switch (event.action) {
      case FaultAction::kAggFail: {
        NETCLONE_CHECK(chain_controller_ != nullptr,
                       "agg_fail needs the replicated aggregation tier");
        const std::size_t a = indexed_target(event.target, "agg");
        NETCLONE_CHECK(a < config_.num_aggs,
                       "agg_fail target out of range: " + event.target);
        // Barrier: crash + splice + spray/route updates. Shard-0 event a
        // little later: the reconcile marker (it allocates a frame, so
        // it must run with shard 0's pool bound, not at a barrier).
        scheduler().schedule_at(
            event.at, [this, a] { chain_controller_->fail_replica(a); });
        engine_->shard_scheduler(0).schedule_at(
            event.at + config_.chain_sync_delay,
            [this, a] { chain_controller_->reconcile_after_fail(a); });
        break;
      }
      case FaultAction::kAggRejoin: {
        NETCLONE_CHECK(chain_controller_ != nullptr,
                       "agg_rejoin needs the replicated aggregation tier");
        const std::size_t a = indexed_target(event.target, "agg");
        NETCLONE_CHECK(a < config_.num_aggs,
                       "agg_rejoin target out of range: " + event.target);
        // Same-instant pair: the barrier (recover + bookkeeping) fires
        // before the shard-0 marker injection in both engines — that is
        // the barrier scheduler's ordering contract, and in the legacy
        // engine it follows from install order.
        scheduler().schedule_at(
            event.at, [this, a] { chain_controller_->rejoin_replica(a); });
        engine_->shard_scheduler(0).schedule_at(event.at, [this, a] {
          chain_controller_->inject_admit_marker(a);
        });
        scheduler().schedule_at(
            event.at + config_.chain_readmit_delay,
            [this, a] { chain_controller_->readmit_spray(a); });
        break;
      }
      default:
        scheduler().schedule_at(event.at,
                                [this, event] { apply_fault(event); });
        break;
    }
  }
}

void MultiRackExperiment::apply_fault(const FaultEvent& event) {
  const auto parse_server = [this](const std::string& target) {
    NETCLONE_CHECK(target.size() >= 2 && target[0] == 's',
                   "bad server target: " + target);
    const std::size_t index =
        static_cast<std::size_t>(std::stoul(target.substr(1)));
    NETCLONE_CHECK(index < servers_.size(),
                   "server target out of range: " + target);
    return servers_[index];
  };
  const auto target_link = [this](const std::string& target) {
    phys::Link* l = link(target);
    NETCLONE_CHECK(l != nullptr, "unknown link target: " + target);
    return l;
  };
  const auto merge_rate = [&](auto member) {
    phys::Link* l = target_link(event.target);
    phys::LinkImpairments cfg = l->impairments() != nullptr
                                    ? *l->impairments()
                                    : phys::LinkImpairments{};
    cfg.*member = event.value;
    l->configure_impairments(cfg, impairment_seed(event.target));
  };
  const auto target_switch =
      [this](const std::string& target) -> pisa::SwitchDevice* {
    for (const auto& [name, device] : switches_) {
      if (name == target) {
        return device;
      }
    }
    NETCLONE_CHECK(false, "unknown switch target: " + target);
    return nullptr;
  };
  const auto set_rack_trunks = [&](bool up) {
    const std::size_t rack = indexed_target(event.target, "rack");
    NETCLONE_CHECK(rack < config_.server_racks,
                   "rack target out of range: " + event.target);
    const std::string tor = indexed_name("tor", rack + 2);
    for (std::size_t a = 0; a < config_.num_aggs; ++a) {
      const std::string agg = indexed_name("agg", a);
      target_link(tor + "-" + agg)->set_up(up);
      target_link(agg + "-" + tor)->set_up(up);
    }
  };

  switch (event.action) {
    case FaultAction::kLinkDown:
      target_link(event.target)->set_up(false);
      break;
    case FaultAction::kLinkUp:
      target_link(event.target)->set_up(true);
      break;
    case FaultAction::kDropRate:
      merge_rate(&phys::LinkImpairments::drop_rate);
      break;
    case FaultAction::kCorruptRate:
      merge_rate(&phys::LinkImpairments::corrupt_rate);
      break;
    case FaultAction::kReorderRate:
      merge_rate(&phys::LinkImpairments::reorder_rate);
      break;
    case FaultAction::kDuplicateRate:
      merge_rate(&phys::LinkImpairments::duplicate_rate);
      break;
    case FaultAction::kServerCrash:
      parse_server(event.target)->crash();
      break;
    case FaultAction::kServerRestart:
      parse_server(event.target)->restart();
      break;
    case FaultAction::kServerPause:
      parse_server(event.target)->pause();
      break;
    case FaultAction::kServerResume:
      parse_server(event.target)->resume();
      break;
    case FaultAction::kServerSlowdown:
      parse_server(event.target)->set_slowdown(event.value);
      break;
    case FaultAction::kSwitchFail:
      target_switch(event.target)->fail();
      break;
    case FaultAction::kSwitchRecover:
      target_switch(event.target)->recover();
      break;
    case FaultAction::kSwitchWipe:
      target_switch(event.target)->wipe_soft_state();
      break;
    case FaultAction::kFilterStale: {
      // Stale entries are planted in NetClone ToR programs: the client
      // ToR in kOblivious mode ('tor1') or any server-rack ToR.
      core::NetCloneProgram* program = nullptr;
      if (event.target == "tor1") {
        NETCLONE_CHECK(client_tor_program_ != nullptr,
                       "filter_stale on tor1 needs kOblivious mode");
        program = client_tor_program_.get();
      } else {
        const std::size_t tor = indexed_target(event.target, "tor");
        NETCLONE_CHECK(tor >= 2 && tor - 2 < server_tor_programs_.size(),
                       "unknown ToR target: " + event.target);
        program = server_tor_programs_[tor - 2].get();
      }
      program->inject_stale_filter_entry(
          event.table, static_cast<std::uint32_t>(event.value));
      break;
    }
    case FaultAction::kRackDown:
      set_rack_trunks(false);
      break;
    case FaultAction::kRackUp:
      set_rack_trunks(true);
      break;
    case FaultAction::kAggFail:
    case FaultAction::kAggRejoin:
      NETCLONE_CHECK(false,
                     "agg_fail/agg_rejoin are schedule-managed — put them "
                     "in MultiRackConfig::faults");
      break;
  }
}

ExperimentResult MultiRackExperiment::run() {
  for (host::Client* client : clients_) {
    client->start();
  }
  engine_->run_until(config_.warmup + config_.measure + config_.drain);

  ExperimentResult result;
  result.scheme = Scheme::kNetClone;
  result.offered_rps = config_.offered_rps;
  LatencyHistogram merged;
  for (const host::Client* client : clients_) {
    const host::ClientStats& cs = client->stats();
    merged.merge(cs.latency);
    result.requests_sent += cs.requests_sent;
    result.completed += cs.completed_in_window;
    result.redundant_responses += cs.redundant_responses;
  }
  result.achieved_rps =
      static_cast<double>(result.completed) / config_.measure.sec();
  result.mean_us = merged.mean_ns() / 1e3;
  result.p50 = merged.p50();
  result.p99 = merged.p99();
  result.p999 = merged.p999();
  for (const host::Server* server : servers_) {
    result.dropped_stale_clones += server->stats().dropped_stale_clones;
  }
  if (config_.agg_mode == AggMode::kReplicated) {
    // Each clone is decided at exactly one replica; verdicts are enacted
    // only at whichever replica holds the tail role — summing stays
    // correct as fail-over moves that authority around.
    for (const auto& program : agg_netclone_programs_) {
      result.cloned_requests += program->stats().cloned_requests;
      result.filtered_responses += program->stats().filtered_responses;
    }
  } else {
    result.cloned_requests = client_tor_program_->stats().cloned_requests;
    result.filtered_responses =
        client_tor_program_->stats().filtered_responses;
  }
  result.switch_stats = client_tor_->stats();
  return result;
}

std::vector<std::uint64_t> MultiRackExperiment::run_timeline(SimTime total,
                                                             SimTime bin) {
  NETCLONE_CHECK(bin > SimTime::zero(), "bin must be positive");
  for (host::Client* client : clients_) {
    client->start();
  }
  std::vector<std::uint64_t> bins;
  std::uint64_t last_total = 0;
  for (SimTime t = bin; t <= total; t += bin) {
    engine_->run_until(t);
    std::uint64_t now_total = 0;
    for (const host::Client* client : clients_) {
      now_total += client->stats().completed;
    }
    bins.push_back(now_total - last_total);
    last_total = now_total;
  }
  return bins;
}

}  // namespace netclone::harness
