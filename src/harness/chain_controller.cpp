#include "harness/chain_controller.hpp"

#include <numeric>

#include "common/check.hpp"
#include "host/addressing.hpp"
#include "wire/frame.hpp"

namespace netclone::harness {

ChainController::ChainController(
    std::vector<ChainReplica> replicas,
    std::vector<std::vector<std::optional<std::size_t>>> chain_ports,
    std::shared_ptr<core::AggChainSyncHub> hub,
    std::function<void(const std::vector<std::size_t>&)> update_spray,
    std::function<void(std::size_t)> repoint_responses)
    : replicas_(std::move(replicas)),
      chain_ports_(std::move(chain_ports)),
      hub_(std::move(hub)),
      update_spray_(std::move(update_spray)),
      repoint_responses_(std::move(repoint_responses)),
      fails_(replicas_.size(), 0) {
  NETCLONE_CHECK(!replicas_.empty(), "chain controller needs replicas");
  NETCLONE_CHECK(chain_ports_.size() == replicas_.size(),
                 "chain port matrix must cover every replica");
  chain_.resize(replicas_.size());
  std::iota(chain_.begin(), chain_.end(), std::size_t{0});
}

std::size_t ChainController::position_of(std::size_t replica) const {
  for (std::size_t pos = 0; pos < chain_.size(); ++pos) {
    if (chain_[pos] == replica) {
      return pos;
    }
  }
  return kNone;
}

void ChainController::settle_and_check_no_overlap(const char* op) {
  for (auto it = pending_admits_.begin(); it != pending_admits_.end();) {
    if (replicas_[it->first].program->chain_member()) {
      it = pending_admits_.erase(it);  // admit marker landed
    } else {
      ++it;
    }
  }
  NETCLONE_CHECK(pending_admits_.empty() && pending_reconciles_.empty(),
                 std::string(op) +
                     " overlaps an in-flight chain resync — space plan "
                     "events at least chain_sync_delay apart");
}

void ChainController::fail_replica(std::size_t replica) {
  NETCLONE_CHECK(replica < replicas_.size(), "replica index out of range");
  settle_and_check_no_overlap("agg_fail");
  const std::size_t pos = position_of(replica);
  NETCLONE_CHECK(pos != kNone,
                 "agg_fail target is not an admitted chain member");
  NETCLONE_CHECK(chain_.size() >= 2, "cannot fail the only chain replica");

  ++fails_[replica];
  ++structural_changes_;
  replicas_[replica].device->fail();
  replicas_[replica].program->set_chain_member(false);

  const bool was_head = pos == 0;
  const bool was_tail = pos + 1 == chain_.size();
  if (!was_head) {
    const std::size_t pred = chain_[pos - 1];
    if (was_tail) {
      // Verdict authority moves to the predecessor. Survivors all saw a
      // prefix of the same response stream — no reconcile needed.
      replicas_[pred].program->set_chain_next(std::nullopt);
    } else {
      const std::size_t succ = chain_[pos + 1];
      replicas_[pred].program->set_chain_next(chain_ports_[pred][succ]);
      // The successor may have missed updates that died inside the
      // corpse; the delayed reconcile marker overwrites it (and everyone
      // downstream) with the predecessor's state.
      pending_reconciles_[replica] = pred;
    }
  }
  chain_.erase(chain_.begin() + static_cast<std::ptrdiff_t>(pos));
  if (was_head) {
    // Responses must now enter the chain at the new head.
    repoint_responses_(chain_.front());
  }
  update_spray_(admitted_members());
}

void ChainController::reconcile_after_fail(std::size_t replica) {
  const auto it = pending_reconciles_.find(replica);
  if (it == pending_reconciles_.end()) {
    return;  // superseded by a later structural change
  }
  const std::size_t filler = it->second;
  pending_reconciles_.erase(it);
  if (position_of(filler) == kNone ||
      !replicas_[filler].program->chain_member()) {
    // The would-be filler died too; its own fail recorded a fresher
    // reconcile that covers the chain.
    return;
  }
  const std::uint32_t sync_id = next_sync_id_++;
  hub_->create(sync_id);
  inject_marker(filler, sync_id);
}

void ChainController::rejoin_replica(std::size_t replica) {
  NETCLONE_CHECK(replica < replicas_.size(), "replica index out of range");
  settle_and_check_no_overlap("agg_rejoin");
  NETCLONE_CHECK(position_of(replica) == kNone,
                 "agg_rejoin target is already a chain member");
  NETCLONE_CHECK(fails_[replica] > 0, "agg_rejoin without a prior agg_fail");
  NETCLONE_CHECK(!chain_.empty(), "chain has no live members to rejoin");

  ++structural_changes_;
  replicas_[replica].device->recover();
  const std::size_t old_tail = chain_.back();
  const std::uint32_t sync_id = next_sync_id_++;
  core::AggChainSyncRecord& record = hub_->create(sync_id);
  record.filler_next_port = chain_ports_[old_tail][replica];
  record.admit_target = replica;
  chain_.push_back(replica);
  pending_admits_[replica] = sync_id;
}

void ChainController::inject_admit_marker(std::size_t replica) {
  const auto it = pending_admits_.find(replica);
  NETCLONE_CHECK(it != pending_admits_.end(),
                 "admit marker injection without a pending admit");
  const std::size_t pos = position_of(replica);
  NETCLONE_CHECK(pos != kNone && pos > 0, "pending admit lost its chain slot");
  inject_marker(chain_[pos - 1], it->second);
}

void ChainController::readmit_spray(std::size_t replica) {
  if (position_of(replica) == kNone ||
      !replicas_[replica].program->chain_member()) {
    return;  // superseded: the replica failed again before readmission
  }
  update_spray_(admitted_members());
}

std::vector<std::size_t> ChainController::admitted_members() const {
  std::vector<std::size_t> members;
  for (const std::size_t replica : chain_) {
    if (replicas_[replica].program->chain_member()) {
      members.push_back(replica);
    }
  }
  return members;
}

bool ChainController::quiescent() const {
  if (!pending_reconciles_.empty()) {
    return false;
  }
  for (const auto& [replica, sync_id] : pending_admits_) {
    if (!replicas_[replica].program->chain_member()) {
      return false;
    }
  }
  return true;
}

void ChainController::inject_marker(std::size_t filler,
                                    std::uint32_t sync_id) {
  // The marker is an ordinary tier-stamped frame delivered at the
  // filler's ingress; it rides the same FIFO pipeline and chain links as
  // the response stream, which is exactly what makes its position a
  // consistent cut. Runs inside a shard-0 event so the frame comes from
  // (and returns to) shard 0's pool.
  wire::NetCloneHeader nc;
  nc.type = wire::MsgType::kChainSync;
  nc.req_id = sync_id;
  nc.switch_id = replicas_[filler].program->config().switch_id;
  wire::Packet pkt = wire::make_netclone_packet(
      wire::MacAddress::broadcast(), wire::MacAddress::broadcast(),
      host::service_vip(), host::service_vip(), /*src_port=*/0, nc,
      wire::Frame{});
  replicas_[filler].device->handle_frame(/*port=*/0, pkt.serialize_pooled());
}

}  // namespace netclone::harness
