// Sharded parallel discrete-event engine with a deterministic merge.
//
// The cluster is partitioned into N shards (per-node-group event queues):
// each shard owns an EventArena timing wheel, its own clock, its own
// FramePool, and its own RNG stream. Shards advance under conservative
// synchronization in the SimBricks style: cross-shard interactions happen
// only through phys::Link, whose propagation delay is the lookahead, so a
// shard may safely execute up to min over in-neighbors of
// (neighbor clock + min link delay from that neighbor). Cross-shard frame
// deliveries travel through per-link SPSC mailboxes stamped with
// (fire_at, the seq reserved on the sender shard) plus a bounded-depth
// scheduling-provenance chain; the receiver merges mailbox entries
// against its own arena head in (fire_at, provenance) order before each
// commit step, which is what keeps same-seed digests bit-identical for
// every shard count — including N=1 and the unsharded legacy engine.
//
// Worker threads are decoupled from the shard count: digests depend only
// on N, never on how many threads advance the shards (a single thread
// round-robins them through identical bounds). NETCLONE_SHARDS selects N;
// NETCLONE_SHARD_THREADS caps the workers (default: hardware threads).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/event_arena.hpp"
#include "sim/remote_sink.hpp"
#include "sim/scheduler.hpp"
#include "wire/framebuf.hpp"

namespace netclone::sim {

/// Shard count requested via NETCLONE_SHARDS (0 = unset: callers keep the
/// unsharded legacy engine). Read once per call; values outside [1, 64]
/// fail loudly.
[[nodiscard]] std::size_t shards_from_env();

/// Worker-thread cap via NETCLONE_SHARD_THREADS (0 = unset: one worker
/// per hardware thread, at most one per shard).
[[nodiscard]] std::size_t shard_threads_from_env();

/// Bounded-depth scheduling provenance: tick[0] is the clock value at
/// which an event's tie-break seq was drawn, tick[1] the draw tick of the
/// event that drew it, and so on. In the single-queue engine, seqs are
/// drawn in execution order, so comparing two events at the same fire
/// time by these chains (lexicographically) reproduces the global seq
/// order exactly as long as the chains diverge within kDepth levels —
/// deeper ties fall back to a fixed build-order rule that is identical
/// for every shard count. -1 pads exhausted chains (the pre-run root
/// context).
struct DrawStamp {
  static constexpr std::size_t kDepth = 6;
  std::array<std::int64_t, kDepth> tick{-1, -1, -1, -1, -1, -1};

  friend auto operator<=>(const DrawStamp&, const DrawStamp&) = default;

  /// The stamp of a draw made now, inside an event carrying `parent`.
  [[nodiscard]] static DrawStamp child_of(const DrawStamp& parent,
                                          std::int64_t now_ns) {
    DrawStamp s;
    s.tick[0] = now_ns;
    for (std::size_t i = 1; i < kDepth; ++i) {
      s.tick[i] = parent.tick[i - 1];
    }
    return s;
  }
};

class Shard;
class ShardedSimulator;

namespace detail {

/// One mailbox slot: the frame bytes plus everything the receiver needs
/// to merge and deliver it. Written by the sender before the publish
/// store; the state byte is flipped by the receiver at delivery (or by a
/// control barrier for link-down purges, with every worker parked).
struct RemoteEntry {
  enum State : std::uint8_t {
    kFree = 0,
    kLive = 1,
    kDelivered = 2,
    kDead = 3,
  };

  std::int64_t deliver_at_ns = 0;
  /// Tie-break seq reserved on the sender shard at transmit — consumed
  /// there whether or not the link is remote, so the sender's seq stream
  /// (and every later same-tick ordering on it) is identical to the
  /// intra-shard wiring of the same link.
  std::uint64_t src_seq = 0;
  DrawStamp stamp{};
  std::uint8_t state = kFree;
  /// Swappable until delivered (reorder impairment): the receiver must
  /// wait for the sender clock to pass deliver_at before reading bytes.
  bool mutable_in_flight = false;
  std::vector<std::byte> bytes;
};

/// SPSC mailbox for one cross-shard directed link. The sender pushes at
/// the tail (publishing with a release store), the receiver drains keys
/// into its frontier and retires delivered entries in order. deliver_at
/// is strictly increasing along a link (serialization time is at least a
/// nanosecond), which is what makes per-ring order, retirement, and the
/// at-most-one-entry-per-tick pruning argument work.
class CrossShardRing {
 public:
  static constexpr std::size_t kCapacity = 4096;

  CrossShardRing(std::uint32_t link_id, std::size_t src_shard,
                 const std::atomic<std::int64_t>* src_clock,
                 std::function<void(wire::FrameHandle)> deliver)
      : link_id_(link_id),
        src_shard_(src_shard),
        src_clock_(src_clock),
        deliver_(std::move(deliver)),
        slots_(kCapacity) {}

  [[nodiscard]] std::uint32_t link_id() const { return link_id_; }
  [[nodiscard]] std::size_t src_shard() const { return src_shard_; }
  [[nodiscard]] std::int64_t src_clock() const {
    return src_clock_->load(std::memory_order_acquire);
  }

  [[nodiscard]] RemoteEntry& entry(std::uint64_t fifo) {
    return slots_[fifo % kCapacity];
  }

  // -- sender side --------------------------------------------------------
  /// Claims the next slot; returns its fifo index. publish() makes it
  /// visible to the receiver.
  [[nodiscard]] std::uint64_t claim() {
    const std::uint64_t fifo = tail_.load(std::memory_order_relaxed);
    NETCLONE_CHECK(fifo - retired_.load(std::memory_order_acquire) <
                       kCapacity,
                   "cross-shard mailbox overflow");
    return fifo;
  }
  void publish() {
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  // -- receiver side ------------------------------------------------------
  [[nodiscard]] std::uint64_t published() const {
    return tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t drained() const { return drained_; }
  void advance_drained() { ++drained_; }
  /// Retires the contiguous prefix of delivered/dead entries, freeing
  /// their slots for sender reuse.
  void retire() {
    std::uint64_t r = retired_.load(std::memory_order_relaxed);
    while (r < drained_) {
      const std::uint8_t s = entry(r).state;
      if (s != RemoteEntry::kDelivered && s != RemoteEntry::kDead) {
        break;
      }
      ++r;
    }
    retired_.store(r, std::memory_order_release);
  }

 private:
  std::uint32_t link_id_;
  std::size_t src_shard_;
  const std::atomic<std::int64_t>* src_clock_;
  std::function<void(wire::FrameHandle)> deliver_;
  std::vector<RemoteEntry> slots_;
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::uint64_t drained_ = 0;  // receiver-local: keys merged into frontier

  friend class netclone::sim::Shard;
};

}  // namespace detail

/// One shard: a Scheduler backed by its own EventArena plus a frontier of
/// drained cross-shard deliveries, merged in (fire_at, provenance) order.
/// Nodes assigned to the shard hold a Scheduler& to it and never see the
/// difference from the single-queue engine.
class Shard final : public Scheduler {
 public:
  Shard(std::size_t index, const std::string& name, std::uint64_t seed);
  ~Shard() override;

  [[nodiscard]] SimTime now() const override { return now_; }

  EventId schedule_at(SimTime when, EventCallback action) override {
    NETCLONE_CHECK(when >= now_, "cannot schedule an event in the past");
    const EventId id = arena_.insert(when, std::move(action));
    if (track_stamps_) {
      note_slot_stamp(id.slot);
    }
    return id;
  }

  [[nodiscard]] std::uint64_t reserve_seq() override {
    const std::uint64_t seq = arena_.reserve_seq();
    if (track_stamps_) {
      reserved_stamps_.emplace(
          seq, DrawStamp::child_of(current_stamp_, now_.ns()));
    }
    return seq;
  }

  EventId schedule_at_seq(SimTime when, std::uint64_t seq,
                          EventCallback action) override {
    NETCLONE_CHECK(when >= now_, "cannot schedule an event in the past");
    const EventId id = arena_.insert_at_seq(when, seq, std::move(action));
    if (track_stamps_) {
      adopt_reserved_stamp(id.slot, seq);
    }
    return id;
  }

  void cancel(EventId id) override { arena_.cancel(id); }

  [[nodiscard]] bool try_absorb_event(SimTime when,
                                      std::uint64_t seq) override;

  void note_absorbed_events(std::uint64_t n) override { absorbed_ += n; }

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Shard-local RNG stream, seeded mix64(seed ^ fnv1a(shard_name)).
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] wire::FramePool& pool() { return pool_; }
  [[nodiscard]] const wire::FramePool& pool() const { return pool_; }
  [[nodiscard]] std::uint64_t executed_events() const {
    return executed_ + absorbed_;
  }
  [[nodiscard]] std::uint64_t absorbed_events() const { return absorbed_; }
  [[nodiscard]] std::size_t pending_events() const { return arena_.size(); }

  /// Lower bound (ns) on the time of anything this shard will still
  /// execute; the quantity neighbors read to compute their safe bound.
  [[nodiscard]] std::int64_t clock_ns() const {
    return clock_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::atomic<std::int64_t>* clock_cell() const {
    return &clock_;
  }

  /// True when an event at (when, stamp) fires after the currently
  /// executing one — the pending/delivered predicate remote sinks use to
  /// keep drop-tail occupancy exact across the shard boundary.
  [[nodiscard]] bool ordered_after_current(std::int64_t when_ns,
                                           const DrawStamp& stamp) const {
    if (when_ns != now_.ns()) {
      return when_ns > now_.ns();
    }
    return stamp > current_stamp_;
  }

  /// Consumes (and removes) the provenance recorded for a reservation the
  /// caller will never materialize locally — the cross-shard mailbox
  /// stamp.
  [[nodiscard]] DrawStamp take_reserved_stamp(std::uint64_t seq);

  [[nodiscard]] const DrawStamp& current_stamp() const {
    return current_stamp_;
  }

 private:
  friend class ShardedSimulator;

  struct FrontierItem {
    std::int64_t when;
    DrawStamp stamp;
    std::uint32_t link_id;
    std::uint64_t fifo;
    detail::CrossShardRing* ring;
  };

  struct RunResult {
    bool progressed = false;
    /// Stopped on a mutable entry whose sender clock hasn't passed it;
    /// the caller retries after other shards advance.
    bool parked = false;
  };

  /// Executes everything (arena + frontier, merged) strictly before
  /// `bound_ns`, then publishes clock = bound.
  RunResult run_to(std::int64_t bound_ns);

  void drain_rings(std::int64_t bound_ns);
  /// Frontier head, with dead entries popped and retired. nullptr when
  /// empty.
  [[nodiscard]] const FrontierItem* frontier_top();
  void frontier_pop();
  [[nodiscard]] static bool frontier_less(const FrontierItem& a,
                                          const FrontierItem& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    if (a.stamp != b.stamp) {
      return a.stamp < b.stamp;
    }
    if (a.link_id != b.link_id) {
      return a.link_id < b.link_id;
    }
    return a.fifo < b.fifo;
  }

  void note_slot_stamp(std::uint32_t slot);
  void adopt_reserved_stamp(std::uint32_t slot, std::uint64_t seq);
  void set_clock(std::int64_t ns) {
    if (ns > clock_.load(std::memory_order_relaxed)) {
      clock_.store(ns, std::memory_order_release);
    }
  }
  void finish_until(SimTime deadline) {
    NETCLONE_CHECK(now_ <= deadline, "shard clock ran past the deadline");
    now_ = deadline;
  }

  std::size_t index_;
  std::string name_;
  // Destruction order matters: the arena's callbacks (and whatever frames
  // they captured) must die before the pool they came from, so the pool
  // is declared first.
  wire::FramePool pool_;
  EventArena arena_;
  SimTime now_ = SimTime::zero();
  std::atomic<std::int64_t> clock_{0};
  std::int64_t pass_bound_ = std::numeric_limits<std::int64_t>::max();
  std::uint64_t executed_ = 0;
  std::uint64_t absorbed_ = 0;
  Rng rng_;

  bool track_stamps_ = false;
  DrawStamp current_stamp_{};
  std::vector<DrawStamp> slot_stamps_;
  std::unordered_map<std::uint64_t, DrawStamp> reserved_stamps_;

  /// Min-heap (via std::*_heap with the inverse comparator) of drained
  /// cross-shard deliveries.
  std::vector<FrontierItem> frontier_;
  std::vector<detail::CrossShardRing*> in_rings_;
};

/// The sharded engine front end: owns the shards, the cross-shard
/// mailboxes, and a control queue for barrier-synchronized global
/// operations (fault injection, test-scheduled events). Not itself a
/// Scheduler — nodes schedule on their shard; control work goes through
/// control().
class ShardedSimulator {
 public:
  ShardedSimulator(std::size_t num_shards, std::uint64_t seed);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] Shard& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] const Shard& shard(std::size_t i) const {
    return *shards_[i];
  }

  /// Scheduler facade for global control operations. Events scheduled
  /// here execute on the driving thread at a barrier: every shard has
  /// committed exactly the events before that instant and none at or
  /// after it — the sharded equivalent of a tiny-seq event in the single
  /// queue.
  [[nodiscard]] Scheduler& control() { return control_sched_; }

  /// Registers a cross-shard directed link. `link_id` must be the global
  /// build-order link index (identical for every shard count — it is the
  /// deep-tie fallback of the merge order). `deliver` runs on the
  /// receiving shard. Must be called before the first run_until.
  [[nodiscard]] RemoteSink& attach_remote(
      std::size_t src_shard, std::size_t dst_shard, std::uint32_t link_id,
      SimTime link_delay, std::function<void(wire::FrameHandle)> deliver);

  /// Runs every event with time <= deadline on all shards and advances
  /// their clocks to the deadline (the run_until contract of the legacy
  /// engine, per shard).
  void run_until(SimTime deadline);

  /// Committed global floor: every shard's clock has passed this.
  [[nodiscard]] SimTime now() const {
    return SimTime::nanoseconds(committed_);
  }

  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::uint64_t absorbed_events() const;
  [[nodiscard]] std::size_t pending_events() const;

  /// Worker threads that will advance the shards (resolved from
  /// NETCLONE_SHARD_THREADS / hardware concurrency at construction).
  [[nodiscard]] std::size_t worker_threads() const { return threads_; }

 private:
  class ControlScheduler final : public Scheduler {
   public:
    explicit ControlScheduler(ShardedSimulator& owner) : owner_(owner) {}
    [[nodiscard]] SimTime now() const override {
      return SimTime::nanoseconds(owner_.committed_);
    }
    EventId schedule_at(SimTime when, EventCallback action) override;
    [[nodiscard]] std::uint64_t reserve_seq() override {
      return owner_.control_arena_.reserve_seq();
    }
    EventId schedule_at_seq(SimTime when, std::uint64_t seq,
                            EventCallback action) override;
    [[nodiscard]] bool try_absorb_event(SimTime, std::uint64_t) override {
      return false;  // conservative answer, always allowed
    }
    void note_absorbed_events(std::uint64_t) override {}
    void cancel(EventId id) override { owner_.control_arena_.cancel(id); }

   private:
    ShardedSimulator& owner_;
  };

  void seal();
  /// Safe execution bound for one shard: min over in-neighbors of
  /// (their clock + lookahead), capped by the next control event and the
  /// run deadline.
  [[nodiscard]] std::int64_t bound_for(const Shard& s, std::int64_t cap);
  bool maybe_run_control(std::int64_t cap);
  void refresh_control_next();
  void run_passes(std::size_t worker, std::int64_t cap);
  void run_serial(std::int64_t cap);
  void run_parallel(std::int64_t cap);
  void ensure_workers();
  void worker_main(std::size_t worker);
  [[nodiscard]] bool all_done(std::int64_t cap) const;

  struct InEdge {
    std::size_t src;
    std::int64_t delta_ns;
  };

  std::uint64_t seed_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<detail::CrossShardRing>> rings_;
  std::vector<std::unique_ptr<RemoteSink>> sinks_;
  std::vector<std::vector<InEdge>> in_edges_;
  bool sealed_ = false;

  ControlScheduler control_sched_{*this};
  EventArena control_arena_;
  std::int64_t committed_ = 0;
  std::uint64_t control_executed_ = 0;
  std::atomic<std::int64_t> control_next_{
      std::numeric_limits<std::int64_t>::max()};

  std::size_t threads_ = 1;
  std::vector<std::vector<Shard*>> owned_;  // shards per worker
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::int64_t> cap_{0};
  std::atomic<std::uint32_t> done_workers_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace netclone::sim
