// Deterministic discrete-event simulation engine.
//
// This is the time base substituting for the paper's physical testbed; all
// latency numbers in the reproduction are measured on this clock. Events at
// the same timestamp execute in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run bit-for-bit
// reproducible for a given seed.
//
// Only the owner of the event loop (the harness, tests, benches) includes
// this header. Components schedule through the Scheduler interface in
// scheduler.hpp; event storage is the slot-map arena in event_arena.hpp,
// giving O(1) cancellation that truly removes the event and an exact
// pending_events() count.
#pragma once

#include <cstdint>
#include <utility>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/event_arena.hpp"
#include "sim/scheduler.hpp"

namespace netclone::sim {

class Simulator final : public Scheduler {
 public:
  Simulator() = default;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const override { return now_; }

  /// Schedules `action` at absolute time `when` (must not be in the past).
  // Defined inline (as are cancel and step): the schedule/fire cycle must
  // inline into the caller when the concrete engine type is known.
  EventId schedule_at(SimTime when, EventCallback action) override {
    NETCLONE_CHECK(when >= now_, "cannot schedule an event in the past");
    return events_.insert(when, std::move(action));
  }

  /// Reserves the next tie-break sequence number (see Scheduler).
  [[nodiscard]] std::uint64_t reserve_seq() override {
    return events_.reserve_seq();
  }

  /// Schedules `action` under a previously reserved tie-break number.
  EventId schedule_at_seq(SimTime when, std::uint64_t seq,
                          EventCallback action) override {
    NETCLONE_CHECK(when >= now_, "cannot schedule an event in the past");
    return events_.insert_at_seq(when, seq, std::move(action));
  }

  /// Cancels a pending event in O(1), destroying its callback. Cancelling
  /// an already-fired or already-cancelled event is a harmless no-op.
  void cancel(EventId id) override { events_.cancel(id); }

  /// Burst-coalescing probe-and-commit (see Scheduler): when the event
  /// reserved at (when, seq) is provably next, the clock advances to it
  /// and the caller's inline execution is indistinguishable from the
  /// event loop having fired it.
  [[nodiscard]] bool try_absorb_event(SimTime when,
                                      std::uint64_t seq) override {
    NETCLONE_CHECK(when >= now_, "cannot absorb an event in the past");
    if (!events_.none_before(when, seq)) {
      return false;
    }
    now_ = when;
    ++absorbed_;
    return true;
  }

  /// Counts coalesced work toward executed_events() so burst and
  /// single-event runs report identical totals (see Scheduler).
  void note_absorbed_events(std::uint64_t n) override { absorbed_ += n; }

  /// Runs events until the queue empties or `stop()` is called.
  void run();

  /// Runs events with time <= deadline; leaves later events pending and
  /// advances the clock to the deadline.
  void run_until(SimTime deadline);

  /// Executes the single earliest event. Returns false if none is pending.
  bool step() {
    SimTime when;
    EventCallback action;
    if (!events_.pop(when, action)) {
      return false;
    }
    now_ = when;
    ++executed_;
    action();
    return true;
  }

  /// Requests run()/run_until() to return after the current event.
  void stop() { stopped_ = true; }

  /// Exact count of pending (scheduled, not yet fired or cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return events_.size(); }

  /// Total events executed since construction (telemetry). Includes work
  /// absorbed into a containing callback by burst coalescing, so the
  /// count is invariant under the NETCLONE_BURST toggle.
  [[nodiscard]] std::uint64_t executed_events() const {
    return executed_ + absorbed_;
  }

  /// The subset of executed_events() that never went through the wheel:
  /// deliveries folded into a neighbouring callback by burst coalescing.
  [[nodiscard]] std::uint64_t absorbed_events() const { return absorbed_; }

 private:
  EventArena events_;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
  std::uint64_t absorbed_ = 0;
  bool stopped_ = false;
};

}  // namespace netclone::sim
