// Deterministic discrete-event simulation engine.
//
// This is the time base substituting for the paper's physical testbed. All
// latency numbers in the reproduction are measured on this clock. Events at
// the same timestamp execute in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run bit-for-bit
// reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace netclone::sim {

/// Opaque handle for cancelling a scheduled event.
enum class EventId : std::uint64_t {};

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `when` (must not be in the past).
  EventId schedule_at(SimTime when, Action action);

  /// Schedules `action` after `delay` (must be non-negative).
  EventId schedule_after(SimTime delay, Action action);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op.
  void cancel(EventId id);

  /// Runs events until the queue empties or `stop()` is called.
  void run();

  /// Runs events with time <= deadline; leaves later events pending and
  /// advances the clock to the deadline.
  void run_until(SimTime deadline);

  /// Executes the single earliest event. Returns false if none is pending.
  bool step();

  /// Requests run()/run_until() to return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const {
    // cancelled_ may hold ids of events that already fired (cancelling a
    // fired event is allowed), so guard the subtraction.
    return queue_.size() >= cancelled_.size()
               ? queue_.size() - cancelled_.size()
               : 0;
  }

  /// Total events executed since construction (telemetry).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool pop_one(Event& out);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace netclone::sim
