// Slot-map event storage for the discrete-event engine, ordered by a
// hierarchical timing wheel.
//
// Every pending event lives in a fixed slot (stable until it fires or is
// cancelled). Ordering is a calendar queue: four wheel levels of 256
// buckets each cover a 2^32-tick (one tick = one nanosecond) horizon —
// level 0 resolves single ticks, each higher level one 256x coarser
// stride — and a binary heap remains as the overflow tier for the rare
// event scheduled beyond the horizon. Insertion is O(1): the level is the
// highest 8-bit group in which the event's tick differs from the wheel's
// current tick. Extraction drains one level-0 bucket at a time (a dense
// same-timestamp burst costs one sort of its bucket, not a heap sift per
// event), cascading higher-level buckets down as the current tick crosses
// their windows. Per-level 256-bit occupancy bitmaps make "next non-empty
// bucket" a couple of word scans.
//
// Cancellation frees the slot — destroying the callback and its captures
// immediately — in O(1) and leaves the bucket (or heap) entry behind as a
// tombstone that extraction skips when its key no longer matches the
// slot. Generation counters make stale EventIds inert even after the slot
// has been reused.
//
// Determinism contract: events pop in strict (when, seq) order, where seq
// is the tie-break sequence number drawn (or reserved) at scheduling
// time. Two subtleties the wheel must preserve exactly:
//   * a same-timestamp bucket is sorted by seq before draining, because
//     schedule_at_seq can materialize a reserved number out of insertion
//     order;
//   * an event inserted *at the tick currently being drained* (a deferred
//     scheduler materializing a reservation mid-drain) is merged into the
//     undrained suffix, since its seq may precede entries still waiting.
//
// Defined header-only: the schedule/fire cycle is the hottest loop in the
// repository and must inline into the engine's run loop.
//
// This file is an engine internal: components schedule through the
// Scheduler interface (scheduler.hpp) and never see the arena.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/scheduler.hpp"

namespace netclone::sim {

class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  /// Stores an event and orders it behind everything earlier (ties break
  /// by insertion order — the determinism contract).
  EventId insert(SimTime when, EventCallback&& callback) {
    return insert_at_seq(when, reserve_seq(), std::move(callback));
  }

  /// Draws the next scheduling sequence number without storing an event.
  /// A reserved number holds its place in the same-timestamp tie order
  /// until insert_at_seq materializes it — deferred schedulers (the link
  /// delivery FIFO) stay bit-for-bit equivalent to eager per-item
  /// scheduling this way.
  [[nodiscard]] std::uint64_t reserve_seq() {
    NETCLONE_CHECK(next_seq_ < kMaxSeq, "event sequence space exhausted");
    return next_seq_++;
  }

  /// insert(), but with a tie-break sequence number reserved earlier via
  /// reserve_seq(). Each reserved number must be used at most once.
  EventId insert_at_seq(SimTime when, std::uint64_t seq,
                        EventCallback&& callback) {
    std::uint32_t index;
    if (free_head_ != kNilSlot) {
      index = free_head_;
      free_head_ = slots_[index].next_free;
    } else {
      NETCLONE_CHECK(slots_.size() < kMaxSlots, "event arena exhausted");
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& slot = slots_[index];
    slot.key = (seq << kSlotBits) | index;
    slot.live = true;
    slot.callback = std::move(callback);

    if (tick_of(when) < cur_tick_) [[unlikely]] {
      // Only reachable when an external peek() advanced the origin past
      // `when` and the caller then scheduled into the gap (the engine
      // itself never does: its clock trails the origin).
      rewind_to(tick_of(when));
    }
    push_entry(when, slot.key);
    ++live_;
    return EventId{index, slot.generation};
  }

  /// Removes the event and destroys its callback. Returns false (no-op)
  /// for invalid, stale, fired, or already-cancelled ids.
  bool cancel(EventId id) {
    if (!id.valid() || id.slot >= slots_.size()) {
      return false;
    }
    Slot& slot = slots_[id.slot];
    if (!slot.live || slot.generation != id.generation) {
      return false;  // already fired/cancelled, or the slot was reused
    }
    // The wheel-bucket (or overflow-heap) entry stays behind as a
    // tombstone (its key no longer matches a live slot) and is skipped
    // when extraction reaches it.
    release(id.slot);
    return true;
  }

  /// Time of the earliest pending event, without removing it. Returns
  /// false when no event is pending.
  [[nodiscard]] bool peek(SimTime& when) {
    if (!prepare()) {
      return false;
    }
    when = drain_[drain_pos_].when;
    return true;
  }

  /// peek(), but also exposing the head's tie-break sequence number and
  /// slot index. The sharded engine merges each shard's arena head
  /// against cross-shard deliveries by (time, scheduling provenance), and
  /// the slot index is its handle into per-slot provenance side tables.
  [[nodiscard]] bool peek_key(SimTime& when, std::uint64_t& seq,
                              std::uint32_t& slot) {
    if (!prepare()) {
      return false;
    }
    when = drain_[drain_pos_].when;
    seq = drain_[drain_pos_].key >> kSlotBits;
    slot = slot_of(drain_[drain_pos_].key);
    return true;
  }

  /// Removes the earliest pending event into `when`/`callback`. Returns
  /// false when no event is pending.
  bool pop(SimTime& when, EventCallback& callback) {
    if (!prepare()) {
      return false;
    }
    take(when, callback);
    return true;
  }

  /// pop(), but only if the earliest event fires at or before `deadline`.
  /// One ordering inspection for the peek-then-pop pattern in run_until().
  /// The refill is bounded by the deadline so the wheel origin never
  /// advances past it — events scheduled after an early-exiting
  /// run_until() land at ticks >= the origin.
  bool pop_due(SimTime deadline, SimTime& when, EventCallback& callback) {
    if (!prepare(tick_of(deadline)) || drain_[drain_pos_].when > deadline) {
      return false;
    }
    take(when, callback);
    return true;
  }

  /// True when no pending event is ordered before (when, seq) — i.e. the
  /// event a caller holds a reservation for at (when, seq) would fire
  /// next. The burst-delivery coalescing probe: absorbing such an
  /// event into the current callback cannot reorder anything.
  ///
  /// Deliberately read-only with respect to ordering: the scan never
  /// advances the wheel origin, so a probe from inside a running callback
  /// cannot strand the callback's later insertions behind it. (It does
  /// tidy: tombstones are skipped past and tombstone-only buckets
  /// cleared, neither of which changes what pops next.)
  [[nodiscard]] bool none_before(SimTime when, std::uint64_t seq) {
    if (!draining_) {
      // Between drains (or before the first): adopt the current tick's
      // bucket as the drain so mid-callback insertions at `now` are seen.
      drain_.clear();
      drain_pos_ = 0;
      draining_ = true;
    }
    merge_current_tick();
    while (drain_pos_ < drain_.size() &&
           !is_live(drain_[drain_pos_])) {
      ++drain_pos_;  // tombstone: slot already released by cancel
    }
    if (drain_pos_ < drain_.size()) {
      // The drain holds the current tick — the global minimum.
      return ordered_after(drain_[drain_pos_], when, seq);
    }
    // Scan the wheel for the earliest live entry. Levels are disjoint and
    // ordered (every level-l entry precedes every level-(l+1) entry: the
    // former shares the level-(l+1) group with the origin, the latter is
    // past it), as are a level's buckets by slot, so the first live entry
    // found in scan order is the wheel's minimum.
    const std::uint64_t bound = tick_of(when);
    for (std::size_t level = 0; level < kWheelLevels; ++level) {
      std::size_t slot = group_of(cur_tick_, level);
      while (slot < kWheelSlotCount &&
             (slot = next_occupied(level, slot)) < kWheelSlotCount) {
        // Lower bound on every tick filed in this bucket — and on
        // everything in later buckets, later levels, and the overflow
        // heap (whose windows are later still).
        const std::uint64_t shift = kGroupBits * level;
        const std::uint64_t lb =
            (cur_tick_ & ~(((std::uint64_t{1} << kGroupBits) << shift) - 1)) |
            (static_cast<std::uint64_t>(slot) << shift);
        if (lb > bound) {
          return true;
        }
        if (lb < bound) {
          // Something is (or recently was) filed strictly before the
          // probe tick. A tombstone-only bucket makes this conservative —
          // a skipped absorption, never a reordering — and keeps the
          // failed-probe path to a bitmap lookup, which matters because
          // in steady state most probes fail.
          return false;
        }
        const HeapEntry* min_entry = nullptr;
        for (const HeapEntry& entry : wheel_[level][slot]) {
          if (is_live(entry) &&
              (min_entry == nullptr || entry.when < min_entry->when ||
               (entry.when == min_entry->when &&
                entry.key < min_entry->key))) {
            min_entry = &entry;
          }
        }
        if (min_entry != nullptr) {
          return ordered_after(*min_entry, when, seq);
        }
        // Tombstone-only bucket: reclaim it so repeated probes stay cheap.
        wheel_[level][slot].clear();
        clear_bit(level, slot);
        ++slot;
      }
    }
    prune_heap_top();
    if (heap_.empty()) {
      return true;
    }
    return ordered_after(heap_.front(), when, seq);
  }

  /// Exact number of pending events (cancelled events do not count).
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFU;
  /// (seq, slot) pack into one 64-bit key: seq in the high 40 bits
  /// (hard-checked in insert — at 15M events/sec that is ~20 hours of
  /// wall-clock simulation before the check fires), slot index in the low
  /// 24. A 16-byte ordering entry keeps bucket sorts and heap sifts to a
  /// minimum of cache traffic.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kMaxSlots = 1ULL << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ULL << (64 - kSlotBits);

  // -- wheel geometry ------------------------------------------------------
  /// One tick is one nanosecond of SimTime (scheduling never needs finer
  /// resolution and the engine's clock is integral ns).
  static constexpr std::uint64_t kGroupBits = 8;
  static constexpr std::size_t kWheelSlotCount = std::size_t{1}
                                                 << kGroupBits;  // 256
  static constexpr std::size_t kWheelLevels = 4;
  /// Horizon of the wheel: 2^32 ticks ≈ 4.29 simulated seconds. Events
  /// whose tick lies in a different 2^32 window than the current tick go
  /// to the overflow heap and migrate in when the window is reached.
  static constexpr std::uint64_t kSpanBits = kGroupBits * kWheelLevels;
  static constexpr std::size_t kBitmapWords = kWheelSlotCount / 64;

  static constexpr std::uint32_t slot_of(std::uint64_t key) {
    return static_cast<std::uint32_t>(key & (kMaxSlots - 1));
  }

  /// Wheel ticks are raw nanoseconds. The engine never schedules in the
  /// past and its clock starts at zero, so ticks are non-negative and
  /// monotone over the arena's lifetime.
  static constexpr std::uint64_t tick_of(SimTime when) {
    return static_cast<std::uint64_t>(when.ns());
  }

  static constexpr std::size_t group_of(std::uint64_t tick,
                                        std::size_t level) {
    return static_cast<std::size_t>((tick >> (kGroupBits * level)) &
                                    (kWheelSlotCount - 1));
  }

  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilSlot;
    bool live = false;
    EventCallback callback;
  };

  struct HeapEntry {
    SimTime when;
    std::uint64_t key;
  };

  /// Max-heap comparator on "fires later", making the overflow std heap a
  /// min-heap on (when, key). The key's high bits are the globally unique
  /// scheduling sequence number, so same-time events keep insertion order
  /// (the determinism contract) and the order is strict.
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.key > b.key;
    }
  };

  [[nodiscard]] bool is_live(const HeapEntry& entry) const {
    const Slot& slot = slots_[slot_of(entry.key)];
    return slot.live && slot.key == entry.key;
  }

  /// True when `entry` is ordered strictly after (when, seq).
  [[nodiscard]] static bool ordered_after(const HeapEntry& entry,
                                          SimTime when, std::uint64_t seq) {
    if (entry.when != when) {
      return entry.when > when;
    }
    return (entry.key >> kSlotBits) > seq;
  }

  // -- occupancy bitmaps ---------------------------------------------------

  void set_bit(std::size_t level, std::size_t slot) {
    occupied_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
  void clear_bit(std::size_t level, std::size_t slot) {
    occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
  [[nodiscard]] bool test_bit(std::size_t level, std::size_t slot) const {
    return (occupied_[level][slot >> 6] >>
            (slot & 63)) & 1U;
  }

  /// Lowest occupied bucket index >= `from` at `level`, or kWheelSlotCount
  /// when none.
  [[nodiscard]] std::size_t next_occupied(std::size_t level,
                                          std::size_t from) const {
    std::size_t word = from >> 6;
    std::uint64_t bits = occupied_[level][word] & (~std::uint64_t{0}
                                                   << (from & 63));
    while (true) {
      if (bits != 0) {
        return (word << 6) + static_cast<std::size_t>(
                                 std::countr_zero(bits));
      }
      if (++word == kBitmapWords) {
        return kWheelSlotCount;
      }
      bits = occupied_[level][word];
    }
  }

  // -- wheel operations ----------------------------------------------------

  /// Files an ordering entry into its wheel bucket (the highest 8-bit
  /// group where its tick differs from the current tick) or the overflow
  /// heap (tick beyond the wheel's 2^32-tick window).
  void push_entry(SimTime when, std::uint64_t key) {
    const std::uint64_t tick = tick_of(when);
    if ((tick >> kSpanBits) != (cur_tick_ >> kSpanBits)) [[unlikely]] {
      heap_.push_back(HeapEntry{when, key});
      std::push_heap(heap_.begin(), heap_.end(), Later{});
      return;
    }
    const std::uint64_t diff = tick ^ cur_tick_;
    const std::size_t level =
        diff == 0 ? 0
                  : static_cast<std::size_t>(std::bit_width(diff) - 1) /
                        kGroupBits;
    const std::size_t slot = group_of(tick, level);
    wheel_[level][slot].push_back(HeapEntry{when, key});
    set_bit(level, slot);
  }

  /// Empties every occupied bucket of `level` in [from, to). Only called
  /// for buckets the advancing current tick has passed over, which can
  /// hold nothing but tombstones (a live earlier event would have been
  /// the advance target instead).
  void clear_level_range(std::size_t level, std::size_t from,
                         std::size_t to) {
    std::size_t slot = from;
    while (slot < to && (slot = next_occupied(level, slot)) < to) {
      wheel_[level][slot].clear();
      clear_bit(level, slot);
      ++slot;
    }
  }

  /// Re-files a higher-level bucket one level down (or further) after the
  /// current tick entered its window. Tombstones are dropped on the way —
  /// cascading doubles as garbage collection.
  void cascade(std::size_t level, std::size_t slot) {
    if (!test_bit(level, slot)) {
      return;
    }
    clear_bit(level, slot);
    scratch_.clear();
    scratch_.swap(wheel_[level][slot]);  // capacities rotate, no churn
    for (const HeapEntry& entry : scratch_) {
      if (is_live(entry)) {
        push_entry(entry.when, entry.key);
      }
    }
  }

  /// Moves the wheel origin to `tick` — the tick of the next event to
  /// drain, so nothing live exists before it. Buckets passed over are
  /// cleared (tombstones only); the target bucket of the top changing
  /// level cascades down.
  void advance_to(std::uint64_t tick) {
    if (tick == cur_tick_) {
      return;
    }
    if ((tick >> kSpanBits) != (cur_tick_ >> kSpanBits)) [[unlikely]] {
      // Window jump (overflow migration): every remaining wheel bucket is
      // tombstone-only.
      for (std::size_t level = 0; level < kWheelLevels; ++level) {
        clear_level_range(level, 0, kWheelSlotCount);
      }
      cur_tick_ = tick;
      return;
    }
    const std::uint64_t diff = tick ^ cur_tick_;
    const auto top =
        static_cast<std::size_t>(std::bit_width(diff) - 1) / kGroupBits;
    for (std::size_t level = 0; level < top; ++level) {
      clear_level_range(level, 0, kWheelSlotCount);
    }
    clear_level_range(top, group_of(cur_tick_, top), group_of(tick, top));
    cur_tick_ = tick;
    if (top > 0) {
      cascade(top, group_of(tick, top));
    }
  }

  /// Folds level-0 entries that were inserted *at the tick being drained*
  /// into the undrained suffix. A reservation materialized mid-drain may
  /// carry a seq smaller than entries still waiting, so the suffix is
  /// re-sorted.
  void merge_current_tick() {
    const std::size_t slot = group_of(cur_tick_, 0);
    if (!test_bit(0, slot)) [[likely]] {
      return;
    }
    std::vector<HeapEntry>& bucket = wheel_[0][slot];
    drain_.insert(drain_.end(), bucket.begin(), bucket.end());
    bucket.clear();
    clear_bit(0, slot);
    std::sort(drain_.begin() + static_cast<std::ptrdiff_t>(drain_pos_),
              drain_.end(),
              [](const HeapEntry& a, const HeapEntry& b) {
                return a.key < b.key;
              });
  }

  /// Drops cancelled entries off the top of the overflow heap.
  void prune_heap_top() {
    while (!heap_.empty() && !is_live(heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  /// Loads the next non-empty level-0 bucket into the drain buffer,
  /// advancing (and cascading) the wheel to reach it and migrating
  /// overflow entries whose window has arrived. Returns false when the
  /// arena holds no entry at a tick <= `bound` (for pop_due, so the
  /// origin never advances past a run_until deadline) or no entries at
  /// all.
  bool refill(std::uint64_t bound) {
    while (true) {
      std::size_t cand_level = kWheelLevels;
      std::size_t cand_slot = 0;
      for (std::size_t level = 0; level < kWheelLevels; ++level) {
        const std::size_t slot =
            next_occupied(level, group_of(cur_tick_, level));
        if (slot < kWheelSlotCount) {
          cand_level = level;
          cand_slot = slot;
          break;
        }
      }
      if (cand_level == kWheelLevels) {
        // Wheel empty: migrate the overflow window holding the earliest
        // event, if any. Overflow ticks are always in later windows than
        // the current one, so every wheel entry precedes every overflow
        // entry and this order is exact.
        prune_heap_top();
        if (heap_.empty() || tick_of(heap_.front().when) > bound) {
          return false;
        }
        advance_to(tick_of(heap_.front().when));
        while (!heap_.empty() &&
               (tick_of(heap_.front().when) >> kSpanBits) ==
                   (cur_tick_ >> kSpanBits)) {
          const HeapEntry entry = heap_.front();
          std::pop_heap(heap_.begin(), heap_.end(), Later{});
          heap_.pop_back();
          if (is_live(entry)) {
            push_entry(entry.when, entry.key);
          }
        }
        continue;
      }
      if (cand_level > 0) {
        // Enter the candidate window; its bucket cascades to lower levels
        // and the next iteration finds it there. The window base is a
        // lower bound on every tick inside, so stopping when it passes
        // `bound` never hides a due event.
        const std::uint64_t base =
            cur_tick_ &
            ~((std::uint64_t{1} << (kGroupBits * (cand_level + 1))) - 1);
        const std::uint64_t target =
            base | (static_cast<std::uint64_t>(cand_slot)
                    << (kGroupBits * cand_level));
        if (target > bound) {
          return false;
        }
        advance_to(target);
        continue;
      }
      const std::uint64_t cand_tick =
          (cur_tick_ & ~std::uint64_t{kWheelSlotCount - 1}) | cand_slot;
      if (cand_tick > bound) {
        return false;
      }
      advance_to(cand_tick);
      std::vector<HeapEntry>& bucket = wheel_[0][cand_slot];
      drain_.assign(bucket.begin(), bucket.end());
      bucket.clear();
      clear_bit(0, cand_slot);
      drain_pos_ = 0;
      std::sort(drain_.begin(), drain_.end(),
                [](const HeapEntry& a, const HeapEntry& b) {
                  return a.key < b.key;
                });
      draining_ = true;
      return true;
    }
  }

  /// Positions drain_pos_ on the earliest live entry; false when no event
  /// is pending at a tick <= `bound`. Entries already drained are always
  /// inspected (their when is compared by the caller); the bound only
  /// gates how far refill may advance the origin.
  bool prepare(std::uint64_t bound = ~std::uint64_t{0}) {
    while (true) {
      if (draining_) {
        merge_current_tick();
        while (drain_pos_ < drain_.size()) {
          if (is_live(drain_[drain_pos_])) {
            return true;
          }
          ++drain_pos_;  // tombstone: slot already released by cancel
        }
        draining_ = false;
        drain_.clear();
        drain_pos_ = 0;
      }
      if (live_ == 0) {
        // Fast exit; tombstones left in buckets/heap are reclaimed lazily
        // when the wheel advances past them (or with the arena).
        return false;
      }
      if (!refill(bound)) {
        return false;
      }
    }
  }

  /// Re-anchors the wheel at an earlier tick. Only reachable when an
  /// external peek() advanced the origin past `tick` and the caller then
  /// scheduled into the gap; the engine's own clock always trails the
  /// origin. Every filed wheel entry plus the undrained suffix is
  /// collected and re-filed relative to the new origin — O(pending), fine
  /// for this off-hot-path pattern. Overflow-heap entries stay put: their
  /// windows are later than the old origin's and thus later than `tick`.
  void rewind_to(std::uint64_t tick) {
    std::vector<HeapEntry> keep;
    keep.reserve(live_);
    for (std::size_t level = 0; level < kWheelLevels; ++level) {
      std::size_t slot = 0;
      while (slot < kWheelSlotCount &&
             (slot = next_occupied(level, slot)) < kWheelSlotCount) {
        for (const HeapEntry& entry : wheel_[level][slot]) {
          if (is_live(entry)) {
            keep.push_back(entry);
          }
        }
        wheel_[level][slot].clear();
        clear_bit(level, slot);
        ++slot;
      }
    }
    for (std::size_t i = drain_pos_; i < drain_.size(); ++i) {
      if (is_live(drain_[i])) {
        keep.push_back(drain_[i]);
      }
    }
    drain_.clear();
    drain_pos_ = 0;
    draining_ = false;
    cur_tick_ = tick;
    for (const HeapEntry& entry : keep) {
      push_entry(entry.when, entry.key);
    }
  }

  /// Consumes the prepared entry at drain_pos_ (prepare() returned true).
  void take(SimTime& when, EventCallback& callback) {
    const HeapEntry entry = drain_[drain_pos_++];
    when = entry.when;
    const std::uint32_t slot = slot_of(entry.key);
    callback = std::move(slots_[slot].callback);
    release(slot);
  }

  void release(std::uint32_t slot_index) {
    Slot& slot = slots_[slot_index];
    slot.callback.reset();  // free captured resources immediately
    slot.live = false;
    ++slot.generation;  // stale EventIds and ordering entries go inert
    slot.next_free = free_head_;
    free_head_ = slot_index;
    --live_;
  }

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  /// The wheel proper: per-level buckets of ordering entries plus their
  /// occupancy bitmaps, anchored at cur_tick_ (the tick of the bucket
  /// currently draining — never ahead of any live entry).
  std::vector<HeapEntry> wheel_[kWheelLevels][kWheelSlotCount];
  std::uint64_t occupied_[kWheelLevels][kBitmapWords] = {};
  std::uint64_t cur_tick_ = 0;
  /// Overflow tier: events beyond the wheel window, kept in a plain
  /// binary min-heap on (when, key) until their window arrives.
  std::vector<HeapEntry> heap_;
  /// The level-0 bucket being drained, sorted by key (= seq order).
  std::vector<HeapEntry> drain_;
  std::size_t drain_pos_ = 0;
  bool draining_ = false;
  std::vector<HeapEntry> scratch_;  // cascade staging
};

}  // namespace netclone::sim
