// Slot-map event storage for the discrete-event engine.
//
// Every pending event lives in a fixed slot (stable until it fires or is
// cancelled); a binary heap of 24-byte (when, seq, slot) entries orders
// them. Cancellation frees the slot — destroying the callback and its
// captures immediately — in O(1) and leaves the heap entry behind as a
// tombstone that pop/peek skip when its sequence number no longer matches
// the slot. Generation counters make stale EventIds inert even after the
// slot has been reused.
//
// Defined header-only: the schedule/fire cycle is the hottest loop in the
// repository and must inline into the engine's run loop.
//
// This file is an engine internal: components schedule through the
// Scheduler interface (scheduler.hpp) and never see the arena.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/scheduler.hpp"

namespace netclone::sim {

class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  /// Stores an event and orders it behind everything earlier (ties break
  /// by insertion order — the determinism contract).
  EventId insert(SimTime when, EventCallback&& callback) {
    return insert_at_seq(when, reserve_seq(), std::move(callback));
  }

  /// Draws the next scheduling sequence number without storing an event.
  /// A reserved number holds its place in the same-timestamp tie order
  /// until insert_at_seq materializes it — deferred schedulers (the link
  /// delivery FIFO) stay bit-for-bit equivalent to eager per-item
  /// scheduling this way.
  [[nodiscard]] std::uint64_t reserve_seq() {
    NETCLONE_CHECK(next_seq_ < kMaxSeq, "event sequence space exhausted");
    return next_seq_++;
  }

  /// insert(), but with a tie-break sequence number reserved earlier via
  /// reserve_seq(). Each reserved number must be used at most once.
  EventId insert_at_seq(SimTime when, std::uint64_t seq,
                        EventCallback&& callback) {
    std::uint32_t index;
    if (free_head_ != kNilSlot) {
      index = free_head_;
      free_head_ = slots_[index].next_free;
    } else {
      NETCLONE_CHECK(slots_.size() < kMaxSlots, "event arena exhausted");
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& slot = slots_[index];
    slot.key = (seq << kSlotBits) | index;
    slot.live = true;
    slot.callback = std::move(callback);

    heap_.push_back(HeapEntry{when, slot.key});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return EventId{index, slot.generation};
  }

  /// Removes the event and destroys its callback. Returns false (no-op)
  /// for invalid, stale, fired, or already-cancelled ids.
  bool cancel(EventId id) {
    if (!id.valid() || id.slot >= slots_.size()) {
      return false;
    }
    Slot& slot = slots_[id.slot];
    if (!slot.live || slot.generation != id.generation) {
      return false;  // already fired/cancelled, or the slot was reused
    }
    // The heap entry stays behind as a tombstone (its seq no longer
    // matches a live slot) and is skipped by prune_stale_top on the way
    // out.
    release(id.slot);
    return true;
  }

  /// Time of the earliest pending event, without removing it. Returns
  /// false when no event is pending.
  [[nodiscard]] bool peek(SimTime& when) {
    prune_stale_top();
    if (heap_.empty()) {
      return false;
    }
    when = heap_.front().when;
    return true;
  }

  /// Removes the earliest pending event into `when`/`callback`. Returns
  /// false when no event is pending.
  bool pop(SimTime& when, EventCallback& callback) {
    prune_stale_top();
    if (heap_.empty()) {
      return false;
    }
    const std::uint32_t slot = slot_of(heap_.front().key);
    when = heap_.front().when;
    pop_min();

    callback = std::move(slots_[slot].callback);
    release(slot);
    return true;
  }

  /// pop(), but only if the earliest event fires at or before `deadline`.
  /// One heap inspection for the peek-then-pop pattern in run_until().
  bool pop_due(SimTime deadline, SimTime& when, EventCallback& callback) {
    prune_stale_top();
    if (heap_.empty() || heap_.front().when > deadline) {
      return false;
    }
    const std::uint32_t slot = slot_of(heap_.front().key);
    when = heap_.front().when;
    pop_min();

    callback = std::move(slots_[slot].callback);
    release(slot);
    return true;
  }

  /// Exact number of pending events (cancelled events do not count).
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFU;
  /// (seq, slot) pack into one 64-bit heap key: seq in the high 40 bits
  /// (hard-checked in insert — at 15M events/sec that is ~20 hours of
  /// wall-clock simulation before the check fires), slot index in the low
  /// 24. A 16-byte heap entry instead of 24 cuts a third of the cache
  /// traffic out of every sift, which is where the engine's time goes
  /// once the queue outgrows L1.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kMaxSlots = 1ULL << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ULL << (64 - kSlotBits);

  static constexpr std::uint32_t slot_of(std::uint64_t key) {
    return static_cast<std::uint32_t>(key & (kMaxSlots - 1));
  }

  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilSlot;
    bool live = false;
    EventCallback callback;
  };

  struct HeapEntry {
    SimTime when;
    std::uint64_t key;
  };

  /// Max-heap comparator on "fires later", making the std heap a min-heap
  /// on (when, key). The key's high bits are the globally unique
  /// scheduling sequence number, so same-time events keep insertion order
  /// (the determinism contract) and the order is strict.
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.key > b.key;
    }
  };

  /// Removes the top heap entry (the caller has already consumed it).
  void pop_min() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }

  /// Pops tombstones (entries whose slot was cancelled and possibly
  /// reused) off the top of the heap. A slot's key changes on every
  /// reuse, so entry.key identifies the exact scheduling it came from.
  void prune_stale_top() {
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      const Slot& slot = slots_[slot_of(top.key)];
      if (slot.live && slot.key == top.key) {
        return;
      }
      pop_min();
    }
  }

  void release(std::uint32_t slot_index) {
    Slot& slot = slots_[slot_index];
    slot.callback.reset();  // free captured resources immediately
    slot.live = false;
    ++slot.generation;  // stale EventIds and heap entries go inert
    slot.next_free = free_head_;
    free_head_ = slot_index;
    --live_;
  }

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace netclone::sim
