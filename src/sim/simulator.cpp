#include "sim/simulator.hpp"

#include <utility>

namespace netclone::sim {

EventId Simulator::schedule_at(SimTime when, Action action) {
  NETCLONE_CHECK(when >= now_, "cannot schedule an event in the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, std::move(action)});
  return EventId{seq};
}

EventId Simulator::schedule_after(SimTime delay, Action action) {
  NETCLONE_CHECK(delay >= SimTime::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

void Simulator::cancel(EventId id) {
  cancelled_.insert(static_cast<std::uint64_t>(id));
}

bool Simulator::pop_one(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the action must be moved out, so we
    // const_cast the known-mutable element before pop. This is the standard
    // idiom for move-only payloads in a priority_queue.
    Event& top = const_cast<Event&>(queue_.top());
    Event ev{top.when, top.seq, std::move(top.action)};
    queue_.pop();
    if (auto it = cancelled_.find(ev.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(ev);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Event ev;
  if (!pop_one(ev)) {
    return false;
  }
  now_ = ev.when;
  ++executed_;
  ev.action();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    Event ev;
    if (!pop_one(ev)) {
      break;
    }
    if (ev.when > deadline) {
      // Put it back: it belongs to the future beyond this run.
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace netclone::sim
