#include "sim/simulator.hpp"

namespace netclone::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  SimTime when;
  EventCallback action;
  while (!stopped_ && events_.pop_due(deadline, when, action)) {
    now_ = when;
    ++executed_;
    action();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace netclone::sim
