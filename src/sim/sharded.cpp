#include "sim/sharded.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <span>
#include <string>

#include "common/hash.hpp"

namespace netclone::sim {

namespace {

std::size_t env_count(const char* name, std::size_t max) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  NETCLONE_CHECK(end != raw && *end == '\0' && v >= 1 &&
                     static_cast<std::size_t>(v) <= max,
                 "invalid shard-count environment value");
  return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t shards_from_env() { return env_count("NETCLONE_SHARDS", 64); }

std::size_t shard_threads_from_env() {
  return env_count("NETCLONE_SHARD_THREADS", 256);
}

// -- Shard -------------------------------------------------------------------

Shard::Shard(std::size_t index, const std::string& name, std::uint64_t seed)
    : index_(index),
      name_(name),
      rng_(mix64(seed ^ fnv1a(name))),
      track_stamps_(true) {}

Shard::~Shard() = default;

DrawStamp Shard::take_reserved_stamp(std::uint64_t seq) {
  auto it = reserved_stamps_.find(seq);
  NETCLONE_CHECK(it != reserved_stamps_.end(),
                 "no provenance recorded for reserved seq");
  const DrawStamp s = it->second;
  reserved_stamps_.erase(it);
  return s;
}

void Shard::note_slot_stamp(std::uint32_t slot) {
  if (slot >= slot_stamps_.size()) {
    slot_stamps_.resize(slot + 1);
  }
  slot_stamps_[slot] = DrawStamp::child_of(current_stamp_, now_.ns());
}

void Shard::adopt_reserved_stamp(std::uint32_t slot, std::uint64_t seq) {
  auto it = reserved_stamps_.find(seq);
  NETCLONE_CHECK(it != reserved_stamps_.end(),
                 "no provenance recorded for reserved seq");
  if (slot >= slot_stamps_.size()) {
    slot_stamps_.resize(slot + 1);
  }
  slot_stamps_[slot] = it->second;
  reserved_stamps_.erase(it);
}

bool Shard::try_absorb_event(SimTime when, std::uint64_t seq) {
  NETCLONE_CHECK(when >= now_, "cannot absorb an event in the past");
  if (when.ns() >= pass_bound_) {
    // Beyond what this pass may commit: a cross-shard delivery could
    // still land before it.
    return false;
  }
  const auto it = reserved_stamps_.find(seq);
  NETCLONE_CHECK(it != reserved_stamps_.end(),
                 "no provenance recorded for reserved seq");
  if (const FrontierItem* top = frontier_top(); top != nullptr) {
    if (top->when < when.ns() ||
        (top->when == when.ns() && top->stamp < it->second)) {
      return false;  // a remote delivery is ordered first
    }
  }
  if (!arena_.none_before(when, seq)) {
    return false;
  }
  now_ = when;
  ++absorbed_;
  current_stamp_ = it->second;
  reserved_stamps_.erase(it);
  return true;
}

const Shard::FrontierItem* Shard::frontier_top() {
  return frontier_.empty() ? nullptr : frontier_.data();
}

void Shard::frontier_pop() {
  const auto gt = [](const FrontierItem& a, const FrontierItem& b) {
    return frontier_less(b, a);
  };
  std::pop_heap(frontier_.begin(), frontier_.end(), gt);
  frontier_.pop_back();
}

void Shard::drain_rings(std::int64_t bound_ns) {
  const auto gt = [](const FrontierItem& a, const FrontierItem& b) {
    return frontier_less(b, a);
  };
  // Purge entries a control barrier killed (link-down flush) while this
  // shard was parked. Their ring slots must not be retired while the
  // frontier still points at them, so the purge precedes retire().
  const auto dead = [](const FrontierItem& it) {
    return it.ring->entry(it.fifo).state == detail::RemoteEntry::kDead;
  };
  if (std::any_of(frontier_.begin(), frontier_.end(), dead)) {
    std::erase_if(frontier_, dead);
    std::make_heap(frontier_.begin(), frontier_.end(), gt);
  }
  for (detail::CrossShardRing* ring : in_rings_) {
    const std::uint64_t published = ring->published();
    while (ring->drained() < published) {
      detail::RemoteEntry& e = ring->entry(ring->drained());
      if (e.state == detail::RemoteEntry::kDead) {
        ring->advance_drained();
        continue;
      }
      if (e.deliver_at_ns >= bound_ns) {
        break;  // per-ring deliver_at is strictly increasing
      }
      frontier_.push_back(FrontierItem{e.deliver_at_ns, e.stamp,
                                       ring->link_id(), ring->drained(),
                                       ring});
      std::push_heap(frontier_.begin(), frontier_.end(), gt);
      ring->advance_drained();
    }
    ring->retire();
  }
}

Shard::RunResult Shard::run_to(std::int64_t bound_ns) {
  RunResult res;
  if (bound_ns <= clock_.load(std::memory_order_relaxed)) {
    // No-op guard. Doubles as the control-barrier fence: while every
    // shard is parked at the barrier (bound capped by ctrl_next <=
    // clock), workers return here without touching rings or arenas, so
    // the control thread may mutate them freely.
    return res;
  }
  wire::ScopedPoolBinding bind(pool_);
  pass_bound_ = bound_ns;
  drain_rings(bound_ns);
  while (true) {
    SimTime lwhen;
    std::uint64_t lseq = 0;
    std::uint32_t lslot = 0;
    const bool have_local = arena_.peek_key(lwhen, lseq, lslot);
    const FrontierItem* top = frontier_top();
    bool take_frontier = false;
    std::int64_t next_ns = bound_ns;
    if (!have_local && top == nullptr) {
      next_ns = bound_ns;
    } else if (!have_local) {
      take_frontier = true;
      next_ns = top->when;
    } else if (top == nullptr) {
      next_ns = lwhen.ns();
    } else {
      NETCLONE_CHECK(lslot < slot_stamps_.size(),
                     "local event has no provenance stamp");
      const DrawStamp& ls = slot_stamps_[lslot];
      if (top->when != lwhen.ns()) {
        take_frontier = top->when < lwhen.ns();
      } else if (top->stamp != ls) {
        take_frontier = top->stamp < ls;
      } else {
        take_frontier = false;  // full tie: local first, for every N
      }
      next_ns = take_frontier ? top->when : lwhen.ns();
    }
    if (next_ns >= bound_ns) {
      set_clock(bound_ns);
      return res;
    }
    if (take_frontier) {
      detail::RemoteEntry& e = top->ring->entry(top->fifo);
      if (e.mutable_in_flight && top->ring->src_clock() < top->when) {
        // Late-freeze: the sender may still swap these bytes (reorder
        // impairment) at times strictly before deliver_at. Park until
        // its clock passes the delivery instant; publishing our own
        // progress first keeps the cluster live.
        set_clock(next_ns);
        res.parked = true;
        return res;
      }
      now_ = SimTime::nanoseconds(top->when);
      current_stamp_ = e.stamp;
      ++executed_;
      res.progressed = true;
      wire::FrameHandle frame = wire::FrameHandle::copy_of(
          std::span<const std::byte>(e.bytes.data(), e.bytes.size()));
      detail::CrossShardRing* ring = top->ring;
      e.state = detail::RemoteEntry::kDelivered;
      frontier_pop();
      ring->retire();
      ring->deliver_(std::move(frame));
    } else {
      // Copy the stamp before pop releases the slot for reuse.
      current_stamp_ = slot_stamps_[lslot];
      SimTime when;
      EventCallback cb;
      const bool ok = arena_.pop(when, cb);
      NETCLONE_CHECK(ok && when == lwhen, "arena head changed under peek");
      now_ = when;
      ++executed_;
      res.progressed = true;
      cb();
    }
  }
}

// -- ShardRemoteSink ---------------------------------------------------------

namespace {

/// RemoteSink wired to one cross-shard ring: byte-copies frames in,
/// mirrors the intra-shard FIFO's occupancy queries with a sender-side
/// shadow ordered by the same (time, provenance) predicate the merge
/// uses.
class ShardRemoteSink final : public RemoteSink {
 public:
  ShardRemoteSink(Shard& src, detail::CrossShardRing& ring)
      : src_(src), ring_(ring) {}

  void enqueue(SimTime deliver_at, const wire::FrameHandle& frame,
               bool counted_queued, bool mutable_in_flight) override {
    prune();
    // Consume a sender-shard seq exactly as the intra-shard FIFO would —
    // the reservation stream (and every later tie on it) stays identical
    // for every shard assignment.
    const std::uint64_t seq = src_.reserve_seq();
    const DrawStamp stamp = src_.take_reserved_stamp(seq);
    const std::uint64_t fifo = ring_.claim();
    detail::RemoteEntry& e = ring_.entry(fifo);
    e.deliver_at_ns = deliver_at.ns();
    e.src_seq = seq;
    e.stamp = stamp;
    e.mutable_in_flight = mutable_in_flight;
    e.state = detail::RemoteEntry::kLive;
    e.bytes.resize(frame.size());
    frame.copy_to(e.bytes.data());
    ring_.publish();
    shadow_.push_back(Shadow{deliver_at.ns(), stamp, fifo, counted_queued});
    if (counted_queued) {
      ++queued_;
    }
  }

  std::size_t queued() override {
    prune();
    return queued_;
  }

  std::size_t in_flight() override {
    prune();
    return shadow_.size();
  }

  bool swap_last_two() override {
    prune();
    if (shadow_.size() < 2) {
      return false;
    }
    // Only the frame bytes swap; delivery times and provenance stay with
    // the slot, as in the intra-shard FIFO. Both entries are mutable and
    // their receiver is parked behind our clock (late-freeze), so the
    // writes are safe.
    detail::RemoteEntry& a = ring_.entry(shadow_[shadow_.size() - 1].fifo);
    detail::RemoteEntry& b = ring_.entry(shadow_[shadow_.size() - 2].fifo);
    a.bytes.swap(b.bytes);
    return true;
  }

  std::size_t flush() override {
    // Control-barrier context: every shard is parked and everything
    // before the fault instant has been delivered, so state == kLive is
    // exactly "undelivered". The shadow's lazily-pruned view must not be
    // consulted here — the sender's clock is stale at a barrier.
    std::size_t dropped = 0;
    for (const Shadow& s : shadow_) {
      detail::RemoteEntry& e = ring_.entry(s.fifo);
      if (e.state == detail::RemoteEntry::kLive) {
        e.state = detail::RemoteEntry::kDead;
        ++dropped;
      }
    }
    shadow_.clear();
    queued_ = 0;
    return dropped;
  }

  void make_all_mutable() override {
    for (const Shadow& s : shadow_) {
      ring_.entry(s.fifo).mutable_in_flight = true;
    }
  }

 private:
  struct Shadow {
    std::int64_t deliver_at_ns;
    DrawStamp stamp;
    std::uint64_t fifo;
    bool counted;
  };

  /// Drops entries whose delivery is ordered at or before the sender's
  /// current event — the instant the intra-shard FIFO would have popped
  /// them. Sender-context only.
  void prune() {
    while (!shadow_.empty() &&
           !src_.ordered_after_current(shadow_.front().deliver_at_ns,
                                       shadow_.front().stamp)) {
      if (shadow_.front().counted) {
        --queued_;
      }
      shadow_.pop_front();
    }
  }

  Shard& src_;
  detail::CrossShardRing& ring_;
  std::deque<Shadow> shadow_;
  std::size_t queued_ = 0;
};

}  // namespace

// -- ShardedSimulator --------------------------------------------------------

ShardedSimulator::ShardedSimulator(std::size_t num_shards,
                                   std::uint64_t seed)
    : seed_(seed) {
  NETCLONE_CHECK(num_shards >= 1 && num_shards <= 64,
                 "shard count out of range");
  shards_.reserve(num_shards);
  in_edges_.resize(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, "shard" + std::to_string(i), seed));
  }
  std::size_t t = shard_threads_from_env();
  if (t == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    t = hc == 0 ? 1 : hc;
  }
  threads_ = std::min(t, num_shards);
  owned_.resize(threads_);
  for (std::size_t i = 0; i < num_shards; ++i) {
    owned_[i % threads_].push_back(shards_[i].get());
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!workers_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }
}

RemoteSink& ShardedSimulator::attach_remote(
    std::size_t src_shard, std::size_t dst_shard, std::uint32_t link_id,
    SimTime link_delay, std::function<void(wire::FrameHandle)> deliver) {
  NETCLONE_CHECK(!sealed_, "cannot attach links after the first run");
  NETCLONE_CHECK(src_shard < shards_.size() && dst_shard < shards_.size() &&
                     src_shard != dst_shard,
                 "bad cross-shard link endpoints");
  NETCLONE_CHECK(link_delay > SimTime::zero(),
                 "cross-shard links need positive delay — it is the "
                 "lookahead window");
  auto ring = std::make_unique<detail::CrossShardRing>(
      link_id, src_shard, shards_[src_shard]->clock_cell(),
      std::move(deliver));
  shards_[dst_shard]->in_rings_.push_back(ring.get());
  bool merged = false;
  for (InEdge& e : in_edges_[dst_shard]) {
    if (e.src == src_shard) {
      e.delta_ns = std::min(e.delta_ns, link_delay.ns());
      merged = true;
    }
  }
  if (!merged) {
    in_edges_[dst_shard].push_back(InEdge{src_shard, link_delay.ns()});
  }
  rings_.push_back(std::move(ring));
  sinks_.push_back(std::make_unique<ShardRemoteSink>(*shards_[src_shard],
                                                     *rings_.back()));
  return *sinks_.back();
}

void ShardedSimulator::seal() { sealed_ = true; }

std::int64_t ShardedSimulator::bound_for(const Shard& s, std::int64_t cap) {
  std::int64_t b =
      std::min(cap, control_next_.load(std::memory_order_acquire));
  for (const InEdge& e : in_edges_[s.index()]) {
    b = std::min(b, shards_[e.src]->clock_ns() + e.delta_ns);
  }
  return b;
}

void ShardedSimulator::refresh_control_next() {
  SimTime when;
  control_next_.store(control_arena_.peek(when)
                          ? when.ns()
                          : std::numeric_limits<std::int64_t>::max(),
                      std::memory_order_release);
}

bool ShardedSimulator::maybe_run_control(std::int64_t cap) {
  const std::int64_t f = control_next_.load(std::memory_order_relaxed);
  if (f >= cap) {
    return false;  // nothing due inside this run
  }
  for (const auto& sp : shards_) {
    if (sp->clock_ns() < f) {
      return false;  // a shard still has work before the barrier
    }
  }
  // Barrier reached: every shard has committed exactly the events before
  // `f` and is parked (its bound is capped by control_next_ <= clock), so
  // this thread may touch shard state. Advance the shard clocks' local
  // views to the barrier instant first — control callbacks read now()
  // through shard schedulers (link busy windows, reschedules).
  committed_ = f;
  const SimTime now = SimTime::nanoseconds(f);
  for (const auto& sp : shards_) {
    if (sp->now_ < now) {
      sp->now_ = now;
    }
  }
  SimTime when;
  EventCallback cb;
  while (control_arena_.pop_due(now, when, cb)) {
    NETCLONE_CHECK(when == now, "control event skipped its barrier");
    ++control_executed_;
    cb();
  }
  // The release store is what lets parked workers past the barrier — and
  // what publishes every mutation the control events made.
  refresh_control_next();
  return true;
}

bool ShardedSimulator::all_done(std::int64_t cap) const {
  if (control_next_.load(std::memory_order_acquire) < cap) {
    return false;
  }
  for (const auto& sp : shards_) {
    if (sp->clock_ns() < cap) {
      return false;
    }
  }
  return true;
}

void ShardedSimulator::run_passes(std::size_t worker, std::int64_t cap) {
  int idle = 0;
  while (!all_done(cap)) {
    bool progressed = false;
    if (worker == 0) {
      progressed |= maybe_run_control(cap);
    }
    for (Shard* s : owned_[worker]) {
      progressed |= s->run_to(bound_for(*s, cap)).progressed;
    }
    if (progressed) {
      idle = 0;
    } else if (++idle > 64) {
      std::this_thread::yield();
    }
  }
}

void ShardedSimulator::run_serial(std::int64_t cap) {
  while (!all_done(cap)) {
    if (maybe_run_control(cap)) {
      continue;
    }
    for (const auto& sp : shards_) {
      (void)sp->run_to(bound_for(*sp, cap));
    }
  }
}

void ShardedSimulator::ensure_workers() {
  if (!workers_.empty() || threads_ <= 1) {
    return;
  }
  workers_.reserve(threads_ - 1);
  for (std::size_t w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void ShardedSimulator::worker_main(std::size_t worker) {
  std::uint64_t seen = 0;
  while (true) {
    epoch_.wait(seen, std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    seen = epoch_.load(std::memory_order_acquire);
    run_passes(worker, cap_.load(std::memory_order_relaxed));
    done_workers_.fetch_add(1, std::memory_order_release);
  }
}

void ShardedSimulator::run_parallel(std::int64_t cap) {
  ensure_workers();
  cap_.store(cap, std::memory_order_relaxed);
  done_workers_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  run_passes(0, cap);
  while (done_workers_.load(std::memory_order_acquire) < threads_ - 1) {
    std::this_thread::yield();
  }
}

void ShardedSimulator::run_until(SimTime deadline) {
  NETCLONE_CHECK(deadline.ns() >= committed_,
                 "run_until deadline went backwards");
  seal();
  refresh_control_next();
  // run_until's contract is inclusive: events *at* the deadline run too.
  const std::int64_t cap = deadline.ns() + 1;
  if (threads_ <= 1) {
    run_serial(cap);
  } else {
    run_parallel(cap);
  }
  committed_ = deadline.ns();
  for (const auto& sp : shards_) {
    sp->finish_until(deadline);
  }
}

std::uint64_t ShardedSimulator::executed_events() const {
  std::uint64_t n = control_executed_;
  for (const auto& sp : shards_) {
    n += sp->executed_events();
  }
  return n;
}

std::uint64_t ShardedSimulator::absorbed_events() const {
  std::uint64_t n = 0;
  for (const auto& sp : shards_) {
    n += sp->absorbed_events();
  }
  return n;
}

std::size_t ShardedSimulator::pending_events() const {
  std::size_t n = control_arena_.size();
  for (const auto& sp : shards_) {
    n += sp->pending_events();
  }
  return n;
}

// -- ControlScheduler --------------------------------------------------------

EventId ShardedSimulator::ControlScheduler::schedule_at(
    SimTime when, EventCallback action) {
  NETCLONE_CHECK(when >= now(), "cannot schedule an event in the past");
  // control_next_ is deliberately NOT refreshed here: run_until refreshes
  // at entry and maybe_run_control at batch end. A refresh mid-batch
  // could release parked workers before the batch's mutations finish.
  return owner_.control_arena_.insert(when, std::move(action));
}

EventId ShardedSimulator::ControlScheduler::schedule_at_seq(
    SimTime when, std::uint64_t seq, EventCallback action) {
  NETCLONE_CHECK(when >= now(), "cannot schedule an event in the past");
  return owner_.control_arena_.insert_at_seq(when, seq, std::move(action));
}

}  // namespace netclone::sim
