// Cross-shard egress surface of a phys::Link.
//
// When the cluster runs sharded (sim/sharded.hpp), a link whose endpoints
// live on different shards cannot keep its in-flight FIFO as scheduler
// events: the receiver's queue belongs to another thread. Instead the
// link hands every accepted frame to a RemoteSink at transmit time and
// delegates the queries the intra-shard FIFO used to answer. The sink —
// implemented by the sharded engine — copies the frame bytes into an SPSC
// mailbox stamped with (fire_at, the seq reserved on the sender shard)
// plus the scheduling provenance the receiver needs to merge it into
// global order. Handing off bytes rather than handles is what severs
// every refcount and pool interaction between shards.
//
// All methods are called from the sender shard's execution context only
// (transmit, impairment draws) or from a control barrier with every
// worker parked (link down, impairment reconfiguration).
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "wire/framebuf.hpp"

namespace netclone::sim {

class RemoteSink {
 public:
  RemoteSink() = default;
  RemoteSink(const RemoteSink&) = delete;
  RemoteSink& operator=(const RemoteSink&) = delete;
  virtual ~RemoteSink() = default;

  /// Accepts a frame for delivery at `deliver_at` on the receiving shard.
  /// Copies the bytes; the caller keeps (and releases) the handle.
  /// `counted_queued` mirrors the intra-shard drop-tail occupancy flag;
  /// `mutable_in_flight` marks the entry as swappable until delivery
  /// (reorder impairment active), which makes the receiver synchronize on
  /// the sender's clock before reading the bytes.
  virtual void enqueue(SimTime deliver_at, const wire::FrameHandle& frame,
                       bool counted_queued, bool mutable_in_flight) = 0;

  /// Frames still holding a drop-tail occupancy slot — the undelivered
  /// entries flagged counted_queued. Exact: an entry stops counting at
  /// the instant its delivery fires on the receiver, decided by the same
  /// (time, provenance) order the merge uses.
  [[nodiscard]] virtual std::size_t queued() = 0;

  /// Undelivered frames, the remote analogue of the FIFO depth.
  [[nodiscard]] virtual std::size_t in_flight() = 0;

  /// Reorder impairment: swaps the frame bytes of the two most recently
  /// enqueued undelivered entries. Returns false when fewer than two are
  /// undelivered (the caller then skips the swap, as the intra-shard path
  /// does when the FIFO is shallow).
  virtual bool swap_last_two() = 0;

  /// Link-down flush: marks every undelivered entry dead (the receiver
  /// skips them silently) and returns how many were dropped.
  virtual std::size_t flush() = 0;

  /// A reorder impairment was installed mid-run: everything already in
  /// flight becomes swappable, so the receiver must start synchronizing
  /// on the sender clock for those entries too. Called only from a
  /// control barrier.
  virtual void make_all_mutable() = 0;
};

}  // namespace netclone::sim
