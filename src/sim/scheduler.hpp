// The scheduling surface of the discrete-event engine.
//
// Components (links, NICs, switch pipelines, host threads) depend on this
// narrow interface only: schedule, cancel, read the clock. Running the
// event loop is the harness's job and lives on the concrete engine in
// simulator.hpp, which nothing outside src/sim and the loop owner needs.
//
// Two contracts every implementation must keep:
//   * determinism — events at the same timestamp execute in scheduling
//     order (ties broken by a monotonically increasing sequence number),
//     so a run is bit-for-bit reproducible for a given seed;
//   * cancel() is O(1), destroys the event's callback (and whatever it
//     captured) immediately, and a returned EventId can never cancel a
//     later event that happens to reuse the same storage (generation
//     counters make stale handles inert).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.hpp"
#include "common/types.hpp"

namespace netclone::sim {

/// Handle for cancelling a scheduled event. A default-constructed id is
/// invalid (cancelling it is a no-op); after the event fires or is
/// cancelled the handle goes stale and is equally harmless.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;  // 0 = never issued

  [[nodiscard]] bool valid() const { return generation != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Move-only callable with small-buffer optimization, sized so the common
/// event captures (a node pointer plus a frame or a couple of scalars) fit
/// inline. The schedule/fire cycle then performs zero heap allocations —
/// std::function, by contrast, spills almost every capture in this
/// codebase to the heap. Oversized or over-aligned captures still work;
/// they fall back to a single heap cell.
class EventCallback {
 public:
  /// Inline capture budget. 64 bytes covers a `this` pointer + a
  /// std::vector payload + a few scalars (the link-delivery lambda, the
  /// largest common case) without bloating the event arena's slots.
  static constexpr std::size_t kInlineCapacity = 64;

  EventCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  // NOLINTNEXTLINE(google-explicit-constructor): callables convert freely,
  // as with std::function.
  EventCallback(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::table;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &HeapOps<D>::table;
    }
  }

  EventCallback(EventCallback&& other) noexcept { steal(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  /// Destroys the held callable (releasing captured resources) and goes
  /// back to the empty state.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    /// Move-constructs into `dst` from `src` and destroys the source
    /// (relocation); both point at kInlineCapacity bytes of storage.
    /// nullptr means "memcpy the storage" — true for trivially relocatable
    /// inline captures (the common pointer+scalars case) and for the heap
    /// fallback, whose storage is just the owning pointer. Skipping the
    /// indirect call matters: the engine relocates twice per event.
    void (*relocate)(void* dst, void* src) noexcept;
    /// nullptr means trivially destructible — nothing to do.
    void (*destroy)(void* obj) noexcept;
  };

  template <typename D>
  struct InlineOps {
    static void invoke(void* obj) { (*std::launder(static_cast<D*>(obj)))(); }
    static void relocate(void* dst, void* src) noexcept {
      D* from = std::launder(static_cast<D*>(src));
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* obj) noexcept {
      std::launder(static_cast<D*>(obj))->~D();
    }
    static constexpr bool kTrivialRelocate =
        std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;
    static constexpr Ops table{
        &invoke, kTrivialRelocate ? nullptr : &relocate,
        std::is_trivially_destructible_v<D> ? nullptr : &destroy};
  };

  template <typename D>
  struct HeapOps {
    static void invoke(void* obj) { (**static_cast<D**>(obj))(); }
    static void destroy(void* obj) noexcept { delete *static_cast<D**>(obj); }
    static constexpr Ops table{&invoke, nullptr, &destroy};
  };

  void steal(EventCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineCapacity);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// What components schedule through. The engine that also runs the loop is
/// sim::Simulator; everything else takes a Scheduler&.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  virtual ~Scheduler() = default;

  /// Current simulated time.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Schedules `action` at absolute time `when` (must not be in the past).
  virtual EventId schedule_at(SimTime when, EventCallback action) = 0;

  /// Reserves the next tie-break sequence number without scheduling
  /// anything. A component that knows *now* that an event will exist but
  /// materializes it later (the link delivery FIFO arms one event for a
  /// whole queue of frames) reserves at decision time and passes the
  /// number to schedule_at_seq — same-timestamp ordering then matches
  /// what eager per-item schedule_at calls would have produced, keeping
  /// runs bit-for-bit reproducible. Each reservation consumes one number
  /// whether or not it is ever materialized.
  [[nodiscard]] virtual std::uint64_t reserve_seq() = 0;

  /// schedule_at() with a previously reserved tie-break number. A
  /// reserved number must be used at most once.
  virtual EventId schedule_at_seq(SimTime when, std::uint64_t seq,
                                  EventCallback action) = 0;

  /// Burst-coalescing probe-and-commit. The caller holds a reservation
  /// for an event at (when, seq) that it has not materialized (a link
  /// delivery FIFO entry). If no pending event is ordered before
  /// (when, seq) — i.e. that event would fire next — the clock advances
  /// to `when`, the event counts as executed, and the caller runs its
  /// work inline in the current callback: indistinguishable from the
  /// event loop having fired it. Otherwise returns false and nothing
  /// changes. `when` must not be in the past; implementations may answer
  /// a conservative false.
  [[nodiscard]] virtual bool try_absorb_event(SimTime when,
                                              std::uint64_t seq) = 0;

  /// Records `n` events' worth of work absorbed into the current callback
  /// without a per-event probe (consecutive same-timestamp reservations
  /// the caller drew itself — nothing can be ordered between them). Keeps
  /// executed-event telemetry, and digests folded over it, identical
  /// between burst and single-event execution.
  virtual void note_absorbed_events(std::uint64_t n) = 0;

  /// Schedules `action` after `delay` (must be non-negative).
  EventId schedule_after(SimTime delay, EventCallback action) {
    NETCLONE_CHECK(delay >= SimTime::zero(), "negative delay");
    return schedule_at(now() + delay, std::move(action));
  }

  /// Cancels a pending event: O(1), frees the callback immediately.
  /// Cancelling an invalid, already-fired, or already-cancelled id is a
  /// harmless no-op.
  virtual void cancel(EventId id) = 0;
};

/// A reschedulable one-shot timer: the cancel-and-rearm pattern (request
/// timeouts, arrival pacing) without per-arm closure plumbing.
//
// Semantics:
//   * arm_at/arm_after replace any pending expiry (rearm);
//   * the timer disarms itself just before invoking the callback, so the
//     callback may rearm it (periodic use) and cancel() after firing is a
//     no-op;
//   * destruction cancels a pending expiry — the callback will not run.
//
// A Timer must not outlive the Scheduler it was built against.
class Timer {
 public:
  Timer() = default;
  Timer(Scheduler& scheduler, EventCallback callback)
      : state_(std::make_unique<State>(scheduler, std::move(callback))) {}

  Timer(Timer&&) noexcept = default;
  Timer& operator=(Timer&&) noexcept = default;
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  /// Arms (or rearms) the timer to fire at absolute time `when`.
  void arm_at(SimTime when);

  /// Arms (or rearms) the timer to fire after `delay`.
  void arm_after(SimTime delay);

  /// Cancels the pending expiry, if any.
  void cancel();

  [[nodiscard]] bool armed() const {
    return state_ != nullptr && state_->armed;
  }
  [[nodiscard]] bool bound() const { return state_ != nullptr; }

 private:
  // Heap-pinned so the scheduled thunk's captured pointer survives moves
  // of the Timer object itself.
  struct State {
    State(Scheduler& s, EventCallback cb)
        : scheduler(s), callback(std::move(cb)) {}
    Scheduler& scheduler;
    EventCallback callback;
    EventId pending{};
    bool armed = false;
  };

  std::unique_ptr<State> state_;
};

}  // namespace netclone::sim
