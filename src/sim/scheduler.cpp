#include "sim/scheduler.hpp"

namespace netclone::sim {

void Timer::arm_at(SimTime when) {
  NETCLONE_CHECK(state_ != nullptr, "arming an unbound timer");
  cancel();
  State* s = state_.get();
  s->pending = s->scheduler.schedule_at(when, [s] {
    // Disarm before invoking so the callback may rearm (periodic timers)
    // and so cancel() after the fire is a no-op.
    s->armed = false;
    s->pending = EventId{};
    s->callback();
  });
  s->armed = true;
}

void Timer::arm_after(SimTime delay) {
  NETCLONE_CHECK(state_ != nullptr, "arming an unbound timer");
  arm_at(state_->scheduler.now() + delay);
}

void Timer::cancel() {
  if (state_ != nullptr && state_->armed) {
    state_->scheduler.cancel(state_->pending);
    state_->armed = false;
    state_->pending = EventId{};
  }
}

}  // namespace netclone::sim
