// Address plan of the simulated rack (mirrors the paper's 10.0.x.x testbed).
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"
#include "wire/ipv4.hpp"

namespace netclone::host {

/// Worker servers live at 10.0.1.101 + sid (Figure 5 uses 10.0.1.10x).
[[nodiscard]] inline wire::Ipv4Address server_ip(ServerId sid) {
  const auto v = value_of(sid);
  NETCLONE_CHECK(v < 150, "server id out of the address plan");
  return wire::Ipv4Address::from_octets(10, 0, 1,
                                        static_cast<std::uint8_t>(101 + v));
}

/// Clients live at 10.0.0.1 + id.
[[nodiscard]] inline wire::Ipv4Address client_ip(std::uint16_t client_id) {
  NETCLONE_CHECK(client_id < 250, "client id out of the address plan");
  return wire::Ipv4Address::from_octets(
      10, 0, 0, static_cast<std::uint8_t>(1 + client_id));
}

/// The LÆDGE cloning coordinator.
[[nodiscard]] inline wire::Ipv4Address coordinator_ip() {
  return wire::Ipv4Address::from_octets(10, 0, 2, 1);
}

/// Virtual service address for switch-steered schemes (NetClone,
/// RackSched): clients address the service, the switch picks the server.
[[nodiscard]] inline wire::Ipv4Address service_vip() {
  return wire::Ipv4Address::from_octets(10, 0, 255, 1);
}

}  // namespace netclone::host
