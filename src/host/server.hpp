// Worker server model (paper §4.2).
//
// One dispatcher thread drains the NIC and enqueues requests into a global
// FCFS queue; `workers` worker threads dequeue and execute in parallel. The
// NetClone server-side mechanisms (§3.4) live here:
//   * a cloned request (CLO=2) arriving while the queue is non-empty is
//     dropped — the tracked switch state was stale;
//   * every response piggybacks the current queue length in STATE, which is
//     how the switch learns server idleness.
//
// The data path is zero-copy end to end: a request's payload rides through
// the FCFS queue and the reassembly table as a wire::PayloadRef view
// pinning the received frame (never copied), and responses are built
// scatter-gather — the body is serialized once into a shared pooled tail,
// and each fragment is a freshly built header block composed with that
// tail by refcount. Packet::serialize() remains the byte oracle both are
// tested against.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "host/addressing.hpp"
#include "host/service.hpp"
#include "phys/node.hpp"
#include "sim/scheduler.hpp"
#include "wire/frame.hpp"

namespace netclone::host {

/// When a switch-cloned copy (CLO=2) may be accepted instead of dropped.
enum class CloneAdmission {
  /// Paper-literal §3.4: accept iff the FCFS queue is empty (a copy may
  /// still wait if every worker is busy).
  kQueueEmpty,
  /// Stricter: accept iff a worker can run it immediately. Sheds the
  /// harmful clones that would queue behind a full worker pool at high
  /// load; bench_ablation_admission quantifies the difference.
  kWorkerFree,
};

struct ServerParams {
  ServerId sid{};
  /// Parallel worker threads (paper: 16 per server for synthetic runs,
  /// 8 for the KV experiments, 15 vs 8 in the heterogeneous Fig. 10 setup).
  std::uint32_t workers = 16;
  /// Dispatcher CPU time per received packet (VMA userspace path).
  SimTime dispatch_cost = SimTime::nanoseconds(300);
  /// CPU time a worker spends building + sending the response.
  SimTime response_tx_cost = SimTime::nanoseconds(150);
  /// NetClone server-side mechanism: drop CLO=2 requests when the server
  /// is busier than the tracked state promised. Always safe to leave on:
  /// only switch-cloned copies match.
  bool drop_busy_clones = true;
  CloneAdmission clone_admission = CloneAdmission::kQueueEmpty;
  /// Multi-packet responses (§3.7): each response is sent as this many
  /// fragments; the switch filters them through ordered filter tables.
  /// Keep <= the switch's filter-table count.
  std::uint8_t response_fragments = 1;
  /// Partially reassembled multi-packet requests older than this are
  /// garbage-collected (a fragment was dropped, e.g. a stale clone copy).
  SimTime partial_request_ttl = SimTime::milliseconds(50);
};

struct ServerStats {
  std::uint64_t rx_requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped_stale_clones = 0;
  /// Responses sent while the queue was empty (Fig. 13a's state signal).
  std::uint64_t responses_with_empty_queue = 0;
  std::uint64_t responses_total = 0;
  /// Peak of the FCFS queue, for sanity reporting.
  std::size_t max_queue_depth = 0;
  /// Multi-packet requests fully reassembled and executed.
  std::uint64_t reassembled_requests = 0;
  /// Fragments whose ordinal had already arrived for the same request
  /// (a duplicate that slipped past filtering, or a retransmit overlap).
  std::uint64_t duplicate_fragments = 0;
  /// Partial reassemblies expired because a fragment never arrived.
  std::uint64_t expired_partials = 0;
  /// Queued requests removed by a client cancellation (C-Clone cancel).
  std::uint64_t cancelled_requests = 0;
  /// In-progress partial reassemblies removed by a client cancellation.
  std::uint64_t cancelled_partials = 0;
  /// Cancels that matched nothing (request in service or already done).
  std::uint64_t cancel_misses = 0;
  /// Frames dropped because the IPv4 or UDP checksum failed on receive.
  std::uint64_t checksum_drops = 0;
  /// Fault-hook accounting: crash() invocations, frames discarded while
  /// crashed, frames buffered while paused, and in-flight dispatch/worker
  /// events voided because their epoch died with a crash.
  std::uint64_t crashes = 0;
  std::uint64_t dropped_while_crashed = 0;
  std::uint64_t paused_frames = 0;
  std::uint64_t abandoned_in_flight = 0;
  /// Time requests spent waiting in the FCFS queue before a worker took
  /// them — the variability source JSQ/cloning mask.
  LatencyHistogram queue_wait;
};

class Server : public phys::Node {
 public:
  Server(sim::Scheduler& scheduler, ServerParams params,
         std::shared_ptr<ServiceModel> service, Rng rng);

  void handle_frame(std::size_t port, wire::FrameHandle frame) override;

  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] ServerId sid() const { return params_.sid; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::uint32_t busy_workers() const { return busy_workers_; }

  // Fault hooks (the deterministic chaos layer). Crash models a process
  // kill: all soft state (queue, partials, in-service work) is lost and
  // rx frames are discarded until restart(); in-flight scheduler events
  // from before the crash are voided by an epoch guard. Pause models a
  // stalled NIC/dispatcher: rx frames are buffered and replayed on
  // resume(); workers already executing keep running (no preemption).
  void crash();
  void restart();
  void pause();
  void resume();
  /// Degraded-worker fault: multiplies execution time for requests that
  /// start from now on (1.0 = healthy, 2.0 = half speed).
  void set_slowdown(double factor);
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] bool paused() const { return paused_; }
  [[nodiscard]] double slowdown() const { return slowdown_; }

 private:
  /// Where the response must go, captured when the request is parsed so
  /// the full Packet (and its backing handle) need not ride the queue.
  struct ResponseRoute {
    wire::MacAddress mac{};
    wire::Ipv4Address ip{};
    std::uint16_t udp_port = 0;
  };
  /// A request in flight through dispatch, reassembly, and the FCFS
  /// queue: just the NetClone header, the return route, and the payload
  /// as a refcounted zero-copy view of the received frame.
  struct PendingRequest {
    wire::NetCloneHeader nc{};
    ResponseRoute from{};
    wire::PayloadRef payload{};
  };
  struct PartialRequest {
    /// Fragment 0 — the fragment carrying the RPC payload and the CLO
    /// marking of the cloning decision — regardless of arrival order.
    PendingRequest root{};
    bool have_root = false;
    std::uint64_t frag_mask = 0;
    SimTime last_update;
  };
  struct QueueEntry {
    PendingRequest req;
    SimTime enqueued_at;
  };

  void on_dispatch(PendingRequest req);
  void on_cancel(const wire::NetCloneHeader& nc);
  /// Returns true when all fragments arrived; `req` then holds the
  /// reassembled request (fragment 0's payload and CLO marking).
  bool reassemble(PendingRequest& req);
  void sweep_stale_partials();
  void try_start_worker();
  void on_complete(PendingRequest req, SimTime queue_wait, SimTime service);

  sim::Scheduler& sim_;
  ServerParams params_;
  std::shared_ptr<ServiceModel> service_;
  Rng rng_;
  wire::Ipv4Address my_ip_;
  wire::MacAddress my_mac_;

  SimTime dispatcher_busy_until_ = SimTime::zero();
  std::deque<QueueEntry> queue_;
  /// Reassembly table, slab-allocated: partials live inline in the flat
  /// map's contiguous slot array (no per-entry heap node), keyed by the
  /// client tuple. Presized at construction so the dispatch path never
  /// rehashes at steady state.
  FlatMap64<PartialRequest> partials_;
  /// Scratch for the TTL sweep (keys collected first — the flat map's
  /// backward-shift erase must not run under its own iteration).
  std::vector<std::uint64_t> expired_keys_;
  std::uint64_t dispatch_counter_ = 0;
  std::uint32_t busy_workers_ = 0;
  /// Bumped by crash(); scheduled dispatch/completion events carry the
  /// epoch they were created in and no-op when it is stale.
  std::uint64_t epoch_ = 0;
  bool crashed_ = false;
  bool paused_ = false;
  double slowdown_ = 1.0;
  /// Frames received while paused, replayed in order on resume().
  std::vector<wire::FrameHandle> paused_rx_;
  /// Scratch for fragmented responses, reused across completions.
  std::vector<wire::FrameHandle> burst_;
  ServerStats stats_;
};

}  // namespace netclone::host
