// Server-side service execution models.
//
// The cost of one RPC execution decomposes per the paper's variability model
// (§5.1.2, following LÆDGE):
//
//   execution = intrinsic × (jitter ? 15 : 1)
//
// The *intrinsic* duration is a property of the request (the job size drawn
// from Exp/Bimodal by the workload generator, or the number of objects a KV
// op touches) and is identical for both copies of a cloned request. The
// *jitter* — garbage collection, interrupts, background work — is a property
// of the server at execution time and is drawn independently per execution.
// This split is what makes cloning effective: the minimum of two executions
// masks jitter but cannot shrink the job itself.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "wire/rpc.hpp"

namespace netclone::host {

struct JitterModel {
  /// Probability that one execution hits an unexpected slowdown (paper
  /// uses p = 0.01 for high variability, p = 0.001 for low).
  double probability = 0.01;
  /// Slowdown factor of a jittered execution (paper: 15×).
  double multiplier = 15.0;
  /// Per-execution microvariation: a multiplicative Gaussian factor
  /// N(1, noise_stddev) modeling the small, always-present sources of
  /// server-side variance the paper lists in §2.1 (interrupts, OS
  /// scheduling, cache effects, power management). Zero disables it —
  /// unit tests use exact timings; the figure benches enable a small
  /// value so executions of the same job are never bit-identical.
  double noise_stddev = 0.0;

  [[nodiscard]] SimTime apply(SimTime base, Rng& rng) const {
    double factor = 1.0;
    if (noise_stddev > 0.0) {
      // Clamp at 3 sigma below the mean so time never goes negative.
      factor = std::max(1.0 - 3.0 * noise_stddev,
                        rng.normal(1.0, noise_stddev));
    }
    if (probability > 0.0 && rng.bernoulli(probability)) {
      factor *= multiplier;
    }
    return SimTime::nanoseconds(static_cast<std::int64_t>(
        static_cast<double>(base.ns()) * factor));
  }

  /// Mean inflation factor of the jitter: E[execution] / intrinsic.
  /// (The microvariation has mean ~1 and does not shift this.)
  [[nodiscard]] double mean_inflation() const {
    return 1.0 + probability * (multiplier - 1.0);
  }
};

/// What a worker thread does with a request: how long it runs and what the
/// response payload is.
class ServiceModel {
 public:
  virtual ~ServiceModel() = default;

  /// Samples the wall time of one execution of `req` on this server.
  [[nodiscard]] virtual SimTime execution_time(const wire::RpcRequest& req,
                                               Rng& rng) = 0;

  /// Produces the response payload.
  [[nodiscard]] virtual wire::RpcResponse execute(
      const wire::RpcRequest& req) = 0;
};

/// Synthetic dummy RPC: runs for the intrinsic duration carried in the
/// request (plus jitter) and returns an empty OK response.
class SyntheticService final : public ServiceModel {
 public:
  explicit SyntheticService(JitterModel jitter) : jitter_(jitter) {}

  [[nodiscard]] SimTime execution_time(const wire::RpcRequest& req,
                                       Rng& rng) override;
  [[nodiscard]] wire::RpcResponse execute(
      const wire::RpcRequest& req) override;

 private:
  JitterModel jitter_;
};

}  // namespace netclone::host
