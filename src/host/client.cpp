#include "host/client.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace netclone::host {

namespace {

/// Seed for the client's retransmit-jitter stream. The probe is a *copy*
/// of the workload RNG, so deriving the seed consumes nothing from the
/// stream the arrivals and request keys are drawn from — adding the
/// retry stream cannot shift any existing same-seed run.
std::uint64_t retry_stream_seed(Rng probe, std::uint16_t client_id) {
  return probe.next_u64() ^
         0x5851F42D4C957F2DULL *
             (static_cast<std::uint64_t>(client_id) + 1);
}

}  // namespace

Client::Client(sim::Scheduler& scheduler, ClientParams params,
               std::shared_ptr<RequestFactory> factory, Rng rng)
    : phys::Node("client-" + std::to_string(params.client_id)),
      sim_(scheduler),
      params_(params),
      factory_(std::move(factory)),
      rng_(rng),
      retry_rng_(retry_stream_seed(rng, params.client_id)),
      my_ip_(client_ip(params.client_id)),
      my_mac_(wire::MacAddress::from_node(0x0200U + params.client_id)),
      arrival_timer_(scheduler, [this] { on_arrival(); }) {
  NETCLONE_CHECK(params_.rate_rps > 0.0, "client rate must be positive");
  NETCLONE_CHECK(params_.num_filter_tables > 0, "need >= 1 filter table");
  NETCLONE_CHECK(params_.request_fragments >= 1, "need >= 1 fragment");
  if (!params_.rate_profile.empty()) {
    NETCLONE_CHECK(params_.arrival == ArrivalProcess::kPoisson &&
                       params_.loop == LoopMode::kOpenLoop,
                   "rate profiles shape open-loop Poisson arrivals only");
    SimTime prev = SimTime::zero();
    for (const RateSegment& seg : params_.rate_profile) {
      NETCLONE_CHECK(seg.multiplier > 0.0,
                     "rate profile multipliers must be positive");
      NETCLONE_CHECK(seg.from >= prev,
                     "rate profile segments must be sorted by time");
      prev = seg.from;
    }
  }
  if (!params_.group_weights.empty()) {
    NETCLONE_CHECK(params_.group_weights.size() == params_.num_groups,
                   "group_weights must have one entry per group");
    group_cdf_ = weight_cdf(params_.group_weights);
  }
  NETCLONE_CHECK(
      params_.request_fragments == 1 ||
          params_.mode == SendMode::kViaSwitch,
      "multi-packet requests are a switch-steered (NetClone) feature");
  if (params_.mode == SendMode::kDirectRandom ||
      params_.mode == SendMode::kCClone) {
    NETCLONE_CHECK(params_.server_ips.size() >= 2,
                   "direct modes need at least two servers");
  }
}

void Client::start() {
  if (params_.loop == LoopMode::kClosedLoop) {
    // Prime the window; completions keep it full from here on.
    sim_.schedule_at(std::max(params_.start_at, sim_.now()), [this] {
      for (std::uint32_t i = 0; i < params_.closed_loop_window; ++i) {
        issue_request();
      }
    });
    return;
  }
  burst_on_until_ = params_.start_at;  // first ON window opens lazily
  const SimTime first = next_arrival_time();
  arrival_timer_.arm_at(std::max(first, sim_.now()));
}

double Client::profile_multiplier(const std::vector<RateSegment>& profile,
                                  SimTime t) {
  double mult = 1.0;
  for (const RateSegment& seg : profile) {
    if (seg.from > t) {
      break;
    }
    mult = seg.multiplier;
  }
  return mult;
}

std::vector<double> Client::weight_cdf(const std::vector<double>& weights) {
  std::vector<double> cdf;
  cdf.reserve(weights.size());
  double total = 0.0;
  for (const double w : weights) {
    NETCLONE_CHECK(w >= 0.0, "group weights must be non-negative");
    total += w;
    cdf.push_back(total);
  }
  NETCLONE_CHECK(total > 0.0, "group weights must not all be zero");
  for (double& c : cdf) {
    c /= total;
  }
  return cdf;
}

std::size_t Client::pick_weighted(const std::vector<double>& cdf,
                                  double u) {
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  const auto index =
      static_cast<std::size_t>(std::distance(cdf.begin(), it));
  return std::min(index, cdf.size() - 1);  // guard u ~ 1.0 rounding
}

SimTime Client::next_arrival_time() {
  const SimTime from = std::max(sim_.now(), params_.start_at);
  if (params_.arrival == ArrivalProcess::kPoisson) {
    // An active rate profile rescales the exponential gap by the
    // multiplier in force at the draw instant (piecewise-constant
    // thinning); an empty profile leaves the classic draw untouched.
    double mean_us = 1e6 / params_.rate_rps;
    if (!params_.rate_profile.empty()) {
      mean_us /= profile_multiplier(params_.rate_profile, from);
    }
    return from + SimTime::microseconds(rng_.exponential(mean_us));
  }
  // MMPP sample path: arrivals run at rate_on inside exponentially
  // distributed ON windows; leftover inter-arrival time carries across the
  // OFF gaps, so the long-run mean rate stays rate_rps.
  const double f = std::clamp(params_.burst_on_fraction, 0.01, 1.0);
  const double rate_on = params_.rate_rps / f;
  const double mean_on_us = params_.burst_mean_on.us();
  const double mean_off_us = mean_on_us * (1.0 - f) / f;

  SimTime t = from + SimTime::microseconds(rng_.exponential(1e6 / rate_on));
  while (t > burst_on_until_) {
    const SimTime carry = t - burst_on_until_;
    const SimTime window_start =
        burst_on_until_ +
        SimTime::microseconds(rng_.exponential(mean_off_us));
    burst_on_until_ =
        window_start + SimTime::microseconds(rng_.exponential(mean_on_us));
    t = window_start + carry;
  }
  return t;
}

void Client::schedule_next_arrival() {
  const SimTime next = next_arrival_time();
  if (next >= params_.stop_at) {
    return;  // sending window over; the receiver keeps draining
  }
  arrival_timer_.arm_at(next);
}

void Client::issue_request() {
  if (sim_.now() >= params_.stop_at) {
    return;
  }
  const std::uint32_t seq = next_seq_++;
  Pending pending;
  pending.sent_at = sim_.now();
  pending.request = factory_->make(rng_);
  pending.grp =
      group_cdf_.empty()
          ? static_cast<std::uint16_t>(rng_.next_below(
                std::max<std::uint16_t>(params_.num_groups, 1)))
          : static_cast<std::uint16_t>(
                pick_weighted(group_cdf_, rng_.next_double()));
  pending.idx =
      static_cast<std::uint8_t>(rng_.next_below(params_.num_filter_tables));
  if (params_.mode == SendMode::kCClone) {
    const std::size_t n = params_.server_ips.size();
    const auto a = static_cast<std::size_t>(rng_.next_below(n));
    auto b = static_cast<std::size_t>(rng_.next_below(n - 1));
    if (b >= a) {
      ++b;
    }
    pending.cclone_dsts = {params_.server_ips[a], params_.server_ips[b]};
  }
  ++stats_.requests_sent;

  send_all_packets(pending, seq);
  outstanding_.emplace(seq, pending);
  arm_retransmit_timer(seq);
}

void Client::on_arrival() {
  if (sim_.now() >= params_.stop_at) {
    return;
  }
  issue_request();
  schedule_next_arrival();
}

void Client::send_all_packets(Pending& pending, std::uint32_t client_seq) {
  if (!pending.tx_frames.empty()) {
    // Retransmission: resend the cached buffers byte-for-byte; the switch
    // derives the same REQ_ID from the unchanged client tuple.
    for (const wire::FrameHandle& f : pending.tx_frames) {
      emit_frame(f);
    }
    return;
  }
  const wire::RpcRequest& req = pending.request;
  // Only cache when a retransmit timer can ever fire, so the per-request
  // Pending map doesn't retain frame buffers it will never resend. The
  // same gate covers the shared payload tail: serialized once here, then
  // every fragment, C-Clone copy, and retransmission shares its bytes by
  // refcount.
  const bool cache = params_.retransmit_timeout > SimTime::zero();
  if (cache && !pending.payload_tail.frame) {
    pending.payload_tail = wire::SharedPayload::of(req.to_frame());
  }
  const wire::SharedPayload* tail = cache ? &pending.payload_tail : nullptr;
  switch (params_.mode) {
    case SendMode::kViaSwitch:
    case SendMode::kToCoordinator:
      for (std::uint8_t f = 0; f < params_.request_fragments; ++f) {
        wire::FrameHandle sent = emit_request(req, params_.target,
                                              pending.grp, pending.idx,
                                              client_seq, f, tail);
        if (cache) {
          pending.tx_frames.push_back(std::move(sent));
        }
      }
      break;
    case SendMode::kDirectRandom: {
      // A fresh random worker every attempt — the frame is never cached
      // (its destination changes), so the RNG draw sequence matches the
      // uncached behavior exactly; only the payload tail is reused.
      const auto i = static_cast<std::size_t>(
          rng_.next_below(params_.server_ips.size()));
      emit_request(req, params_.server_ips[i], pending.grp, pending.idx,
                   client_seq, 0, tail);
      break;
    }
    case SendMode::kCClone:
      // Two copies to two distinct random workers (chosen at issue time);
      // the client fields both responses itself (no in-network filtering
      // for C-Clone).
      for (const wire::Ipv4Address dst : pending.cclone_dsts) {
        wire::FrameHandle sent = emit_request(req, dst, pending.grp,
                                              pending.idx, client_seq, 0,
                                              tail);
        if (cache) {
          pending.tx_frames.push_back(std::move(sent));
        }
      }
      break;
  }
}

SimTime Client::retransmit_delay(std::uint32_t retries) {
  // Iterated multiplication instead of std::pow: IEEE multiplies are
  // exactly rounded, so the delay sequence is bit-identical across libm
  // implementations.
  double ns = static_cast<double>(params_.retransmit_timeout.ns());
  for (std::uint32_t k = 0; k < retries; ++k) {
    ns *= params_.retransmit_backoff;
  }
  const auto cap = static_cast<double>(params_.retransmit_cap.ns());
  if (cap > 0.0 && ns > cap) {
    ns = cap;
  }
  if (params_.retransmit_jitter > 0.0) {
    ns *= 1.0 + params_.retransmit_jitter * retry_rng_.next_double();
  }
  return SimTime::nanoseconds(static_cast<std::int64_t>(ns));
}

void Client::arm_retransmit_timer(std::uint32_t client_seq) {
  if (params_.retransmit_timeout <= SimTime::zero()) {
    return;
  }
  auto armed = outstanding_.find(client_seq);
  if (armed == outstanding_.end()) {
    return;
  }
  armed->second.retransmit_event = sim_.schedule_after(
      retransmit_delay(armed->second.retries), [this, client_seq] {
        auto it = outstanding_.find(client_seq);
        if (it == outstanding_.end() || it->second.completed) {
          return;
        }
        Pending& pending = it->second;
        pending.retransmit_event = sim::EventId{};
        if (pending.retries >= params_.max_retransmits) {
          return;  // give up; the request stays incomplete
        }
        ++pending.retries;
        ++stats_.retransmissions;
        if (stats_.retransmit_times.size() < 64) {
          stats_.retransmit_times.push_back(sim_.now());
        }
        send_all_packets(pending, client_seq);
        arm_retransmit_timer(client_seq);
      });
}

wire::FrameHandle Client::emit_request(const wire::RpcRequest& req,
                                       wire::Ipv4Address dst,
                                       std::uint16_t grp, std::uint8_t idx,
                                       std::uint32_t client_seq,
                                       std::uint8_t frag_idx,
                                       const wire::SharedPayload* tail) {
  wire::NetCloneHeader nc;
  // Write operations travel as WREQ so the switch never clones them (§5.5).
  nc.type = req.op == wire::RpcOp::kSet ? wire::MsgType::kWriteRequest
                                        : wire::MsgType::kRequest;
  nc.clo = wire::CloneStatus::kNotCloned;
  nc.frag_idx = frag_idx;
  nc.frag_count = params_.request_fragments;
  nc.grp = grp;
  nc.req_id = 0;  // assigned by the switch
  nc.sid = 0;
  nc.state = 0;
  nc.idx = idx;
  nc.switch_id = 0;
  nc.client_id = params_.client_id;
  nc.client_seq = client_seq;

  wire::Packet pkt = wire::make_netclone_packet(
      my_mac_, wire::MacAddress::broadcast(), my_ip_, dst,
      /*src_port=*/static_cast<std::uint16_t>(40000 + params_.client_id),
      nc, tail != nullptr ? wire::Frame{} : req.to_frame());

  wire::FrameHandle bytes;
  if (tail != nullptr) {
    // Scatter-gather: a fresh header block composed with the shared body
    // buffer — byte-identical to the contiguous build below.
    pkt.payload = tail->ref();
    bytes = pkt.serialize_sg(*tail);
  } else {
    bytes = pkt.serialize_pooled();
  }
  emit_frame(bytes);
  return bytes;
}

void Client::emit_frame(wire::FrameHandle bytes) {
  // Sender thread: serial per-packet cost delays actual emission; the
  // request's latency clock started at the (open-loop) arrival instant.
  // The handle is moved, not copied, into the send event — and being 24
  // bytes it fits the scheduler's inline-callback storage.
  const SimTime start = std::max(sim_.now(), tx_busy_until_);
  tx_busy_until_ = start + params_.tx_cost;
  ++stats_.packets_sent;
  sim_.schedule_at(tx_busy_until_,
                   [this, bytes = std::move(bytes)]() mutable {
                     send(0, std::move(bytes));
                   });
}

void Client::send_cancel(const Pending& pending, std::uint32_t client_seq,
                         wire::Ipv4Address responder) {
  // Tell the worker that has NOT answered to drop the queued duplicate.
  const wire::Ipv4Address other = pending.cclone_dsts[0] == responder
                                      ? pending.cclone_dsts[1]
                                      : pending.cclone_dsts[0];
  wire::NetCloneHeader nc;
  nc.type = wire::MsgType::kCancel;
  nc.client_id = params_.client_id;
  nc.client_seq = client_seq;
  wire::Packet pkt = wire::make_netclone_packet(
      my_mac_, wire::MacAddress::broadcast(), my_ip_, other,
      static_cast<std::uint16_t>(40000 + params_.client_id), nc, {});
  ++stats_.cancels_sent;
  emit_frame(pkt.serialize_pooled());
}

void Client::handle_frame(std::size_t /*port*/, wire::FrameHandle frame) {
  if (!wire::verify_frame_checksums(frame)) {
    ++stats_.checksum_drops;
    return;
  }
  wire::Packet pkt;
  try {
    pkt = wire::Packet::parse_backed(frame);
  } catch (const wire::CodecError&) {
    return;
  }
  frame.reset();
  if (!pkt.has_netclone() || !pkt.nc().is_response()) {
    return;
  }
  // Receiver thread: every arriving response — wanted or redundant — costs
  // rx_cost of serial CPU before the application sees it.
  const SimTime done = std::max(sim_.now(), rx_busy_until_) + params_.rx_cost;
  rx_busy_until_ = done;
  sim_.schedule_at(done, [this, pkt = std::move(pkt)]() mutable {
    on_response_processed(std::move(pkt));
  });
}

void Client::on_response_processed(wire::Packet pkt) {
  const wire::NetCloneHeader& nc = pkt.nc();
  auto it = outstanding_.find(nc.client_seq);
  if (it == outstanding_.end()) {
    ++stats_.unmatched_responses;
    return;
  }
  Pending& pending = it->second;
  if (pending.completed) {
    ++stats_.redundant_responses;
    return;
  }
  // Multi-packet responses complete when every fragment ordinal has been
  // seen once; a repeated ordinal is a redundant duplicate (a clone's
  // response that slipped past the filter).
  const std::uint64_t bit = std::uint64_t{1} << (nc.frag_idx & 63U);
  if ((pending.frag_mask & bit) != 0) {
    ++stats_.redundant_responses;
    return;
  }
  pending.frag_mask |= bit;
  if (!pkt.payload.empty()) {
    // The payload-bearing fragment carries the server's decomposition.
    try {
      const wire::RpcResponse body =
          wire::RpcResponse::from_frame(pkt.payload);
      pending.server_wait_ns = body.queue_wait_ns;
      pending.server_service_ns = body.service_ns;
    } catch (const wire::CodecError&) {
      // tolerate foreign payloads; decomposition stays zero
    }
  }
  if (std::popcount(pending.frag_mask) <
      static_cast<int>(nc.frag_count)) {
    return;  // waiting for the remaining fragments
  }
  pending.completed = true;
  pending.tx_frames.clear();  // release the cached retransmit buffers
  pending.payload_tail = wire::SharedPayload{};
  // The retransmit timeout is dead weight now — O(1)-cancel it so the
  // engine truly removes the event instead of firing a no-op later.
  sim_.cancel(pending.retransmit_event);
  pending.retransmit_event = sim::EventId{};
  ++stats_.completed;
  if (params_.mode == SendMode::kCClone && params_.cclone_cancel) {
    send_cancel(pending, nc.client_seq, pkt.ip.src);
  }
  if (params_.loop == LoopMode::kClosedLoop) {
    issue_request();  // keep the window full
  }
  const SimTime now = sim_.now();
  if (pending.sent_at >= params_.warmup_until) {
    stats_.latency.record(now - pending.sent_at);
    stats_.server_queue_wait.record(
        SimTime::nanoseconds(pending.server_wait_ns));
    stats_.server_service.record(
        SimTime::nanoseconds(pending.server_service_ns));
    pending.measured = true;
  }
  if (now >= params_.warmup_until && now <= params_.stop_at) {
    ++stats_.completed_in_window;
  }
  // Keep the entry so a late duplicate is classified as redundant; entries
  // for never-duplicated requests are reclaimed wholesale with the client.
}

Client::Audit Client::audit() const {
  Audit a;
  for (const auto& [seq, pending] : outstanding_) {
    if (pending.completed) {
      ++a.completed_entries;
    } else {
      ++a.incomplete_entries;
    }
  }
  return a;
}

}  // namespace netclone::host
