#include "host/server.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace netclone::host {

Server::Server(sim::Scheduler& scheduler, ServerParams params,
               std::shared_ptr<ServiceModel> service, Rng rng)
    : phys::Node("server-" + std::to_string(value_of(params.sid))),
      sim_(scheduler),
      params_(params),
      service_(std::move(service)),
      rng_(rng),
      my_ip_(server_ip(params.sid)),
      my_mac_(wire::MacAddress::from_node(0x0100U + value_of(params.sid))) {
  NETCLONE_CHECK(params_.workers > 0, "server needs at least one worker");
}

void Server::handle_frame(std::size_t /*port*/, wire::FrameHandle frame) {
  wire::Packet pkt;
  try {
    pkt = wire::Packet::parse_backed(frame);
  } catch (const wire::CodecError&) {
    return;  // not for us / corrupt — a real NIC would also discard it
  }
  frame.reset();
  if (!pkt.has_netclone() ||
      (!pkt.nc().is_request() && !pkt.nc().is_cancel())) {
    return;  // servers only consume requests and cancels
  }
  // The dispatcher thread is a serial resource: packets are picked up one
  // at a time, `dispatch_cost` apart when busy.
  const SimTime now = sim_.now();
  const SimTime start = std::max(now, dispatcher_busy_until_);
  dispatcher_busy_until_ = start + params_.dispatch_cost;
  sim_.schedule_at(dispatcher_busy_until_,
                   [this, pkt = std::move(pkt)]() mutable {
                     on_dispatch(std::move(pkt));
                   });
}

void Server::on_cancel(const wire::NetCloneHeader& nc) {
  // Cancel only reaches into the waiting queue; a request already being
  // executed runs to completion (no preemption, as in C-Clone practice).
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const wire::NetCloneHeader& queued = it->pkt.nc();
    if (queued.client_id == nc.client_id &&
        queued.client_seq == nc.client_seq) {
      queue_.erase(it);
      ++stats_.cancelled_requests;
      return;
    }
  }
  ++stats_.cancel_misses;
}

void Server::on_dispatch(wire::Packet pkt) {
  if ((++dispatch_counter_ & 0xFFFU) == 0 && !partials_.empty()) {
    sweep_stale_partials();
  }
  if (pkt.nc().is_cancel()) {
    on_cancel(pkt.nc());
    return;
  }
  ++stats_.rx_requests;
  const wire::NetCloneHeader& nc = pkt.nc();
  // §3.4: the switch cloned this request believing we were idle. If the
  // server says otherwise the tracked state was stale — drop the copy. The
  // original (CLO=1) is never dropped. For multi-packet requests the check
  // applies per fragment, which is why a partially-cloned request can
  // strand a partial reassembly (swept by TTL below).
  if (params_.drop_busy_clones &&
      nc.clo == wire::CloneStatus::kClonedCopy) {
    const bool busy =
        params_.clone_admission == CloneAdmission::kQueueEmpty
            ? !queue_.empty()
            : !queue_.empty() || busy_workers_ >= params_.workers;
    if (busy) {
      ++stats_.dropped_stale_clones;
      return;
    }
  }
  if (nc.multi_packet() && !reassemble(pkt)) {
    return;  // waiting for more fragments
  }
  queue_.push_back(QueueEntry{std::move(pkt), sim_.now()});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  try_start_worker();
}

bool Server::reassemble(wire::Packet& pkt) {
  const wire::NetCloneHeader& nc = pkt.nc();
  const std::uint64_t key =
      static_cast<std::uint64_t>(nc.client_id) << 32 | nc.client_seq;
  PartialRequest& partial = partials_[key];
  if (partial.frag_mask == 0) {
    partial.first_fragment = pkt;
  }
  partial.frag_mask |= std::uint64_t{1} << (nc.frag_idx & 63U);
  partial.last_update = sim_.now();
  if (std::popcount(partial.frag_mask) <
      static_cast<int>(nc.frag_count)) {
    return false;
  }
  // Complete: surface the first fragment (it carries the RPC payload and
  // the CLO marking of the cloning decision) as the assembled request.
  const std::uint8_t frag_count = nc.frag_count;
  pkt = std::move(partial.first_fragment);
  pkt.nc().frag_idx = 0;
  pkt.nc().frag_count = frag_count;
  partials_.erase(key);
  ++stats_.reassembled_requests;
  return true;
}

void Server::sweep_stale_partials() {
  const SimTime cutoff = sim_.now() - params_.partial_request_ttl;
  for (auto it = partials_.begin(); it != partials_.end();) {
    if (it->second.last_update < cutoff) {
      it = partials_.erase(it);
      ++stats_.expired_partials;
    } else {
      ++it;
    }
  }
}

void Server::try_start_worker() {
  if (busy_workers_ >= params_.workers || queue_.empty()) {
    return;
  }
  wire::Packet pkt = std::move(queue_.front().pkt);
  const SimTime queue_wait = sim_.now() - queue_.front().enqueued_at;
  stats_.queue_wait.record(queue_wait);
  queue_.pop_front();
  ++busy_workers_;

  wire::RpcRequest req;
  try {
    req = wire::RpcRequest::from_frame(pkt.payload);
  } catch (const wire::CodecError&) {
    --busy_workers_;
    try_start_worker();
    return;
  }
  const SimTime exec = service_->execution_time(req, rng_);
  sim_.schedule_after(exec + params_.response_tx_cost,
                      [this, queue_wait, exec,
                       pkt = std::move(pkt)]() mutable {
                        on_complete(std::move(pkt), queue_wait, exec);
                      });
}

void Server::on_complete(wire::Packet pkt, SimTime queue_wait,
                         SimTime service) {
  ++stats_.completed;

  wire::RpcRequest req{};
  try {
    req = wire::RpcRequest::from_frame(pkt.payload);
  } catch (const wire::CodecError&) {
    // unreachable: parsed successfully before execution
  }

  wire::Packet resp;
  resp.eth.src = my_mac_;
  resp.eth.dst = pkt.eth.src;
  resp.ip.src = my_ip_;
  resp.ip.dst = pkt.ip.src;  // back to whoever sent the request
  resp.udp.src_port = wire::kNetClonePort;
  resp.udp.dst_port = pkt.udp.src_port;

  wire::NetCloneHeader nc = pkt.nc();
  nc.type = wire::MsgType::kResponse;
  nc.sid = value_of(params_.sid);
  // Piggyback the *current* queue length — the state signal of §3.4. The
  // switch treats 0 as idle; the RackSched integration uses the raw value.
  const auto qlen = static_cast<std::uint16_t>(
      std::min<std::size_t>(queue_.size(), 0xFFFF));
  nc.state = qlen;
  resp.netclone = nc;
  wire::RpcResponse body = service_->execute(req);
  // Latency decomposition for the client (clamped to the field width;
  // 4.2 s of queueing would mean something far worse than truncation).
  body.queue_wait_ns = static_cast<std::uint32_t>(
      std::min<std::int64_t>(queue_wait.ns(), 0xFFFFFFFFLL));
  body.service_ns = static_cast<std::uint32_t>(
      std::min<std::int64_t>(service.ns(), 0xFFFFFFFFLL));
  resp.payload = body.to_frame();

  ++stats_.responses_total;
  if (qlen == 0) {
    ++stats_.responses_with_empty_queue;
  }

  if (params_.response_fragments <= 1) {
    resp.nc().frag_idx = 0;
    resp.nc().frag_count = 1;
    send(0, resp.serialize_pooled());
  } else {
    for (std::uint8_t f = 0; f < params_.response_fragments; ++f) {
      send_response_fragment(resp, f);
    }
  }

  --busy_workers_;
  try_start_worker();
}

void Server::send_response_fragment(const wire::Packet& resp,
                                    std::uint8_t frag_idx) {
  wire::Packet fragment = resp;
  fragment.nc().frag_idx = frag_idx;
  fragment.nc().frag_count = params_.response_fragments;
  if (frag_idx > 0) {
    fragment.payload.clear();  // the payload travels in fragment 0
  }
  send(0, fragment.serialize_pooled());
}

}  // namespace netclone::host
