#include "host/server.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace netclone::host {

Server::Server(sim::Scheduler& scheduler, ServerParams params,
               std::shared_ptr<ServiceModel> service, Rng rng)
    : phys::Node("server-" + std::to_string(value_of(params.sid))),
      sim_(scheduler),
      params_(params),
      service_(std::move(service)),
      rng_(rng),
      my_ip_(server_ip(params.sid)),
      my_mac_(wire::MacAddress::from_node(0x0100U + value_of(params.sid))) {
  NETCLONE_CHECK(params_.workers > 0, "server needs at least one worker");
  // Steady state holds at most a handful of concurrent partials (one per
  // in-flight multi-packet request); presizing keeps the dispatch path
  // rehash-free well past that.
  partials_.reserve(256);
}

void Server::handle_frame(std::size_t /*port*/, wire::FrameHandle frame) {
  if (crashed_) {
    ++stats_.dropped_while_crashed;
    return;
  }
  if (paused_) {
    ++stats_.paused_frames;
    paused_rx_.push_back(std::move(frame));
    return;
  }
  if (!wire::verify_frame_checksums(frame)) {
    ++stats_.checksum_drops;
    return;
  }
  wire::Packet pkt;
  try {
    pkt = wire::Packet::parse_backed(frame);
  } catch (const wire::CodecError&) {
    return;  // not for us / corrupt — a real NIC would also discard it
  }
  frame.reset();
  if (!pkt.has_netclone() ||
      (!pkt.nc().is_request() && !pkt.nc().is_cancel())) {
    return;  // servers only consume requests and cancels
  }
  // Strip the packet down to what the host path needs: the NetClone
  // header, the return route, and the payload as a zero-copy view (the
  // view's keepalive pins the received frame; the headers' bytes are
  // done with).
  PendingRequest req;
  req.nc = pkt.nc();
  req.from = ResponseRoute{pkt.eth.src, pkt.ip.src, pkt.udp.src_port};
  req.payload = std::move(pkt.payload);
  // The dispatcher thread is a serial resource: packets are picked up one
  // at a time, `dispatch_cost` apart when busy.
  const SimTime now = sim_.now();
  const SimTime start = std::max(now, dispatcher_busy_until_);
  dispatcher_busy_until_ = start + params_.dispatch_cost;
  sim_.schedule_at(dispatcher_busy_until_,
                   [this, epoch = epoch_, req = std::move(req)]() mutable {
                     if (epoch != epoch_) {
                       ++stats_.abandoned_in_flight;
                       return;  // the dispatcher died with the crash
                     }
                     on_dispatch(std::move(req));
                   });
}

void Server::on_cancel(const wire::NetCloneHeader& nc) {
  // Cancel only reaches into the waiting queue and the reassembly table;
  // a request already being executed runs to completion (no preemption,
  // as in C-Clone practice).
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const wire::NetCloneHeader& queued = it->req.nc;
    if (queued.client_id == nc.client_id &&
        queued.client_seq == nc.client_seq) {
      queue_.erase(it);
      ++stats_.cancelled_requests;
      return;
    }
  }
  // A matching partial reassembly (some fragments queued, some still in
  // flight or dropped) would otherwise strand until the TTL sweep.
  const std::uint64_t key =
      static_cast<std::uint64_t>(nc.client_id) << 32 | nc.client_seq;
  if (partials_.erase(key)) {
    ++stats_.cancelled_partials;
    return;
  }
  ++stats_.cancel_misses;
}

void Server::on_dispatch(PendingRequest req) {
  if ((++dispatch_counter_ & 0xFFFU) == 0 && !partials_.empty()) {
    sweep_stale_partials();
  }
  if (req.nc.is_cancel()) {
    on_cancel(req.nc);
    return;
  }
  ++stats_.rx_requests;
  const wire::NetCloneHeader& nc = req.nc;
  // §3.4: the switch cloned this request believing we were idle. If the
  // server says otherwise the tracked state was stale — drop the copy. The
  // original (CLO=1) is never dropped. For multi-packet requests the check
  // applies per fragment, which is why a partially-cloned request can
  // strand a partial reassembly (swept by TTL below).
  if (params_.drop_busy_clones &&
      nc.clo == wire::CloneStatus::kClonedCopy) {
    const bool busy =
        params_.clone_admission == CloneAdmission::kQueueEmpty
            ? !queue_.empty()
            : !queue_.empty() || busy_workers_ >= params_.workers;
    if (busy) {
      ++stats_.dropped_stale_clones;
      return;
    }
  }
  if (nc.multi_packet() && !reassemble(req)) {
    return;  // waiting for more fragments
  }
  queue_.push_back(QueueEntry{std::move(req), sim_.now()});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  try_start_worker();
}

bool Server::reassemble(PendingRequest& req) {
  const wire::NetCloneHeader& nc = req.nc;
  const std::uint64_t key =
      static_cast<std::uint64_t>(nc.client_id) << 32 | nc.client_seq;
  bool inserted = false;
  PartialRequest& partial = partials_.get_or_insert(key, inserted);
  partial.last_update = sim_.now();
  const std::uint64_t bit = std::uint64_t{1} << (nc.frag_idx & 63U);
  if ((partial.frag_mask & bit) != 0) {
    // This ordinal already arrived (an unfiltered duplicate or a
    // retransmit overlap): count it, never double-set the mask — the
    // popcount completion test must see each ordinal once.
    ++stats_.duplicate_fragments;
    return false;
  }
  partial.frag_mask |= bit;
  const std::uint8_t frag_count = nc.frag_count;
  if (nc.frag_idx == 0) {
    // The payload and the CLO marking of the cloning decision travel in
    // fragment 0; pin it as the surfaced request regardless of arrival
    // order (cloned paths and multipath reorder freely).
    partial.root = std::move(req);
    partial.have_root = true;
  }
  if (std::popcount(partial.frag_mask) < static_cast<int>(frag_count)) {
    return false;
  }
  if (!partial.have_root) {
    // Malformed: enough distinct ordinals but none was 0 (ordinals out
    // of range). Drop the aggregation; the TTL sweep would otherwise.
    partials_.erase(key);
    return false;
  }
  // Complete: surface fragment 0 as the assembled request.
  req = std::move(partial.root);
  req.nc.frag_idx = 0;
  req.nc.frag_count = frag_count;
  partials_.erase(key);
  ++stats_.reassembled_requests;
  return true;
}

void Server::sweep_stale_partials() {
  const SimTime cutoff = sim_.now() - params_.partial_request_ttl;
  // Collect first, erase after: backward-shift deletion moves entries
  // the visit has not reached yet, so erasing mid-iteration could skip
  // (or double-visit) survivors.
  expired_keys_.clear();
  partials_.for_each([&](std::uint64_t key, const PartialRequest& partial) {
    if (partial.last_update < cutoff) {
      expired_keys_.push_back(key);
    }
  });
  for (const std::uint64_t key : expired_keys_) {
    partials_.erase(key);
    ++stats_.expired_partials;
  }
}

void Server::try_start_worker() {
  if (busy_workers_ >= params_.workers || queue_.empty()) {
    return;
  }
  PendingRequest req = std::move(queue_.front().req);
  const SimTime queue_wait = sim_.now() - queue_.front().enqueued_at;
  stats_.queue_wait.record(queue_wait);
  queue_.pop_front();
  ++busy_workers_;

  wire::RpcRequest rpc;
  try {
    rpc = wire::RpcRequest::from_frame(req.payload);
  } catch (const wire::CodecError&) {
    --busy_workers_;
    try_start_worker();
    return;
  }
  SimTime exec = service_->execution_time(rpc, rng_);
  if (slowdown_ != 1.0) {
    exec = SimTime::nanoseconds(static_cast<std::int64_t>(
        static_cast<double>(exec.ns()) * slowdown_));
  }
  sim_.schedule_after(exec + params_.response_tx_cost,
                      [this, epoch = epoch_, queue_wait, exec,
                       req = std::move(req)]() mutable {
                        if (epoch != epoch_) {
                          // The worker's result died with the crash;
                          // busy_workers_ was reset there.
                          ++stats_.abandoned_in_flight;
                          return;
                        }
                        on_complete(std::move(req), queue_wait, exec);
                      });
}

void Server::crash() {
  ++stats_.crashes;
  ++epoch_;  // voids every in-flight dispatch and worker completion
  crashed_ = true;
  paused_ = false;
  queue_.clear();
  partials_.clear();
  paused_rx_.clear();
  busy_workers_ = 0;
  dispatcher_busy_until_ = sim_.now();
}

void Server::restart() {
  if (!crashed_) {
    return;
  }
  crashed_ = false;
  dispatcher_busy_until_ = sim_.now();
}

void Server::pause() {
  if (!crashed_) {
    paused_ = true;
  }
}

void Server::resume() {
  if (!paused_) {
    return;
  }
  paused_ = false;
  // Replay the buffered frames in arrival order through the normal rx
  // path; the dispatcher pacing restarts from now.
  std::vector<wire::FrameHandle> backlog;
  backlog.swap(paused_rx_);
  for (wire::FrameHandle& frame : backlog) {
    handle_frame(0, std::move(frame));
  }
}

void Server::set_slowdown(double factor) {
  NETCLONE_CHECK(factor > 0.0, "slowdown factor must be positive");
  slowdown_ = factor;
}

void Server::on_complete(PendingRequest req, SimTime queue_wait,
                         SimTime service) {
  ++stats_.completed;

  wire::RpcRequest rpc{};
  try {
    rpc = wire::RpcRequest::from_frame(req.payload);
  } catch (const wire::CodecError&) {
    // unreachable: parsed successfully before execution
  }

  wire::Packet resp;
  resp.eth.src = my_mac_;
  resp.eth.dst = req.from.mac;
  resp.ip.src = my_ip_;
  resp.ip.dst = req.from.ip;  // back to whoever sent the request
  resp.udp.src_port = wire::kNetClonePort;
  resp.udp.dst_port = req.from.udp_port;

  wire::NetCloneHeader nc = req.nc;
  nc.type = wire::MsgType::kResponse;
  nc.sid = value_of(params_.sid);
  // Piggyback the *current* queue length — the state signal of §3.4. The
  // switch treats 0 as idle; the RackSched integration uses the raw value.
  const auto qlen = static_cast<std::uint16_t>(
      std::min<std::size_t>(queue_.size(), 0xFFFF));
  nc.state = qlen;
  resp.netclone = nc;
  wire::RpcResponse body = service_->execute(rpc);
  // Latency decomposition for the client (clamped to the field width;
  // 4.2 s of queueing would mean something far worse than truncation).
  body.queue_wait_ns = static_cast<std::uint32_t>(
      std::min<std::int64_t>(queue_wait.ns(), 0xFFFFFFFFLL));
  body.service_ns = static_cast<std::uint32_t>(
      std::min<std::int64_t>(service.ns(), 0xFFFFFFFFLL));
  // The request payload view is done with; drop its pin on the received
  // frame before the response outlives it.
  req.payload.clear();
  // Serialize the body ONCE into a shared pooled tail; every fragment
  // below composes its freshly built header block with this buffer by
  // refcount — the body bytes are never copied again.
  const wire::SharedPayload tail = wire::SharedPayload::of(body.to_frame());
  resp.payload = tail.ref();

  ++stats_.responses_total;
  if (qlen == 0) {
    ++stats_.responses_with_empty_queue;
  }

  if (params_.response_fragments <= 1) {
    resp.nc().frag_idx = 0;
    resp.nc().frag_count = 1;
    send(0, resp.serialize_sg(tail));
  } else {
    // Fragment 0 carries the body; the rest are header-only markers the
    // switch filters through its ordered tables. One burst, one armed
    // delivery event on the egress link.
    burst_.clear();
    resp.nc().frag_count = params_.response_fragments;
    resp.nc().frag_idx = 0;
    burst_.push_back(resp.serialize_sg(tail));
    resp.payload.clear();
    const wire::SharedPayload empty{};
    for (std::uint8_t f = 1; f < params_.response_fragments; ++f) {
      resp.nc().frag_idx = f;
      burst_.push_back(resp.serialize_sg(empty));
    }
    send_burst(0, burst_);
    burst_.clear();
  }

  --busy_workers_;
  try_start_worker();
}

}  // namespace netclone::host
