#include "host/service.hpp"

namespace netclone::host {

SimTime SyntheticService::execution_time(const wire::RpcRequest& req,
                                         Rng& rng) {
  const auto base = SimTime::nanoseconds(req.intrinsic_ns);
  return jitter_.apply(base, rng);
}

wire::RpcResponse SyntheticService::execute(const wire::RpcRequest&) {
  return wire::RpcResponse{};
}

}  // namespace netclone::host
