// Request factories: the workload side of §5.1.2.
//
// A factory stamps out RpcRequests; for synthetic workloads it draws the
// intrinsic job size from the paper's distributions. KV workloads (Redis /
// Memcached, §5.5) provide their own factory in src/kv.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "wire/rpc.hpp"

namespace netclone::host {

class RequestFactory {
 public:
  virtual ~RequestFactory() = default;

  [[nodiscard]] virtual wire::RpcRequest make(Rng& rng) = 0;

  /// Mean intrinsic duration in microseconds (before jitter); used by the
  /// harness to convert load fractions into request rates.
  [[nodiscard]] virtual double mean_intrinsic_us() const = 0;

  /// Short label for reports, e.g. "Exp(25)".
  [[nodiscard]] virtual std::string label() const = 0;
};

/// Exponentially distributed job sizes: Exp(mean) — "common short-lasting
/// RPCs". The paper's default is mean = 25 us; 50 us and 500 us probe the
/// impact of RPC duration.
class ExponentialWorkload final : public RequestFactory {
 public:
  explicit ExponentialWorkload(double mean_us) : mean_us_(mean_us) {}

  [[nodiscard]] wire::RpcRequest make(Rng& rng) override;
  [[nodiscard]] double mean_intrinsic_us() const override {
    return mean_us_;
  }
  [[nodiscard]] std::string label() const override;

 private:
  double mean_us_;
};

/// Bimodal job sizes: a mix of simple and complex RPCs. The paper uses
/// 90% × 25 us + 10% × 250 us.
class BimodalWorkload final : public RequestFactory {
 public:
  BimodalWorkload(double short_fraction, double short_us, double long_us)
      : short_fraction_(short_fraction),
        short_us_(short_us),
        long_us_(long_us) {}

  [[nodiscard]] wire::RpcRequest make(Rng& rng) override;
  [[nodiscard]] double mean_intrinsic_us() const override {
    return short_fraction_ * short_us_ + (1.0 - short_fraction_) * long_us_;
  }
  [[nodiscard]] std::string label() const override;

 private:
  double short_fraction_;
  double short_us_;
  double long_us_;
};

/// Deterministic job size; useful for tests and microbenchmarks.
class FixedWorkload final : public RequestFactory {
 public:
  explicit FixedWorkload(double us) : us_(us) {}

  [[nodiscard]] wire::RpcRequest make(Rng& rng) override;
  [[nodiscard]] double mean_intrinsic_us() const override { return us_; }
  [[nodiscard]] std::string label() const override;

 private:
  double us_;
};

}  // namespace netclone::host
