#include "host/workload.hpp"

#include <cstdio>

namespace netclone::host {
namespace {

wire::RpcRequest synthetic_request(double duration_us) {
  wire::RpcRequest req;
  req.op = wire::RpcOp::kSynthetic;
  req.intrinsic_ns =
      static_cast<std::uint32_t>(std::max(duration_us, 0.0) * 1000.0);
  return req;
}

}  // namespace

wire::RpcRequest ExponentialWorkload::make(Rng& rng) {
  return synthetic_request(rng.exponential(mean_us_));
}

std::string ExponentialWorkload::label() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Exp(%.0f)", mean_us_);
  return buf;
}

wire::RpcRequest BimodalWorkload::make(Rng& rng) {
  const double us =
      rng.bernoulli(short_fraction_) ? short_us_ : long_us_;
  return synthetic_request(us);
}

std::string BimodalWorkload::label() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Bimodal(%.0f%%-%.0f,%.0f%%-%.0f)",
                short_fraction_ * 100.0, short_us_,
                (1.0 - short_fraction_) * 100.0, long_us_);
  return buf;
}

wire::RpcRequest FixedWorkload::make(Rng&) {
  return synthetic_request(us_);
}

std::string FixedWorkload::label() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Fixed(%.0f)", us_);
  return buf;
}

}  // namespace netclone::host
