// Open-loop measurement client (paper §4.2).
//
// A sender thread generates requests with exponentially distributed
// inter-arrival times at a target rate; a receiver thread matches responses
// to outstanding requests and records end-to-end latency. Both threads are
// modeled as serial CPU resources, so redundant responses (unfiltered
// duplicates) and duplicate sends (C-Clone) consume real client capacity —
// the effect Figures 15 and 7 quantify.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "host/addressing.hpp"
#include "host/workload.hpp"
#include "phys/node.hpp"
#include "sim/scheduler.hpp"
#include "wire/frame.hpp"

namespace netclone::host {

/// How the client addresses requests.
enum class SendMode {
  /// One packet to the service VIP; the switch picks the destination
  /// (NetClone, RackSched and their combination).
  kViaSwitch,
  /// One packet to a uniformly random worker server (the paper's baseline).
  kDirectRandom,
  /// Two packets to two distinct random workers (C-Clone).
  kCClone,
  /// One packet to the LÆDGE coordinator.
  kToCoordinator,
};

/// Shape of the request arrival process.
enum class ArrivalProcess {
  /// Exponential inter-arrival times (the paper's open-loop client).
  kPoisson,
  /// Markov-modulated ON/OFF bursts: Poisson at an elevated rate during
  /// exponentially-distributed ON windows, silent in between. The mean
  /// rate still equals rate_rps; burst intensity is 1/burst_on_fraction.
  kBursty,
};

/// One step of a piecewise-constant rate profile: from `from` onward the
/// offered rate is rate_rps * multiplier, until the next segment starts.
/// Before the first segment the multiplier is 1.0.
struct RateSegment {
  SimTime from = SimTime::zero();
  double multiplier = 1.0;
};

/// How request issuance is paced.
enum class LoopMode {
  /// The paper's load generator: arrivals follow the configured process
  /// regardless of completions.
  kOpenLoop,
  /// Classic RPC-benchmark pacing: keep `closed_loop_window` requests in
  /// flight; each completion immediately issues the next request.
  kClosedLoop,
};

struct ClientParams {
  std::uint16_t client_id = 0;
  SendMode mode = SendMode::kViaSwitch;
  LoopMode loop = LoopMode::kOpenLoop;
  /// In-flight window for kClosedLoop.
  std::uint32_t closed_loop_window = 16;
  /// Offered load in requests per second (long-run mean for kBursty;
  /// ignored in closed-loop mode).
  double rate_rps = 100000.0;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// kBursty: fraction of time spent in the ON state (0 < f <= 1).
  double burst_on_fraction = 0.25;
  /// kBursty: mean length of one ON window.
  SimTime burst_mean_on = SimTime::microseconds(200.0);
  /// Production traffic shapes (flash crowds, diurnal curves — see
  /// harness/traffic_shapes): a piecewise-constant multiplier on rate_rps
  /// over absolute simulation time. Segments must be sorted by `from`
  /// with positive multipliers. Empty = flat rate (the draw sequence is
  /// then bit-identical to builds without this feature). Poisson
  /// arrivals only.
  std::vector<RateSegment> rate_profile{};
  /// Skewed group popularity (Zipf sweeps, rack hotspots): when
  /// non-empty, the request's candidate-group id is drawn from this
  /// weight vector (size must equal num_groups) instead of uniformly.
  /// Weights are relative, non-negative, with a positive sum.
  std::vector<double> group_weights{};
  /// Number of candidate-server groups installed in GrpT (2·C(n,2)).
  std::uint16_t num_groups = 1;
  /// Number of filter tables in the switch (the IDX field range).
  std::uint8_t num_filter_tables = 2;
  /// Worker addresses, needed by kDirectRandom / kCClone.
  std::vector<wire::Ipv4Address> server_ips{};
  /// Destination for kViaSwitch / kToCoordinator.
  wire::Ipv4Address target{};
  /// Receiver-thread CPU time per response.
  SimTime rx_cost = SimTime::nanoseconds(300);
  /// Sender-thread CPU time per transmitted packet.
  SimTime tx_cost = SimTime::nanoseconds(100);
  /// Sending window.
  SimTime start_at = SimTime::zero();
  SimTime stop_at = SimTime::max();
  /// Samples sent before this instant are excluded from the histogram.
  SimTime warmup_until = SimTime::zero();
  /// Multi-packet requests (§3.7): each request is sent as this many
  /// fragments sharing one CLIENT_SEQ and group id. The switch needs
  /// enable_multipacket + client-tuple request ids for > 1.
  std::uint8_t request_fragments = 1;
  /// TCP-mode reliability (§3.7): when non-zero, an uncompleted request is
  /// re-sent after this timeout (same CLIENT_SEQ, so the switch derives
  /// the same REQ_ID in client-tuple mode), up to max_retransmits times.
  SimTime retransmit_timeout = SimTime::zero();
  std::uint32_t max_retransmits = 3;
  /// Retry k waits min(timeout * backoff^k, cap) * (1 + jitter * u) with
  /// u ~ U[0,1) from a per-client stream independent of the workload RNG.
  /// The growth plus jitter keeps a dead server from seeing synchronized
  /// retry storms; a cap of zero means uncapped.
  double retransmit_backoff = 2.0;
  SimTime retransmit_cap = SimTime::milliseconds(100);
  double retransmit_jitter = 0.1;
  /// C-Clone's optional cancellation (§2.2): after the first response
  /// arrives, tell the server that has not answered to drop the queued
  /// duplicate. The paper cites evidence this buys little —
  /// bench_ablation_cancel measures it.
  bool cclone_cancel = false;
};

struct ClientStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t completed = 0;
  /// Completions whose response arrived inside [warmup_until, stop_at].
  std::uint64_t completed_in_window = 0;
  /// Responses for requests already completed (slipped past filtering).
  std::uint64_t redundant_responses = 0;
  /// Responses that matched no outstanding request.
  std::uint64_t unmatched_responses = 0;
  /// Frames dropped because the IPv4 or UDP checksum failed on receive.
  std::uint64_t checksum_drops = 0;
  /// Timeout-triggered re-sends (TCP mode).
  std::uint64_t retransmissions = 0;
  /// Instants of the first few retransmissions (capped recording), for
  /// backoff regression tests — gaps must grow and stay deterministic.
  std::vector<SimTime> retransmit_times;
  /// Cancel messages sent (C-Clone cancellation).
  std::uint64_t cancels_sent = 0;
  LatencyHistogram latency;
  /// Server-reported decomposition of the accepted responses: time in the
  /// FCFS queue and execution time. latency − wait − service ≈ network +
  /// host processing. Populated from the same samples as `latency`.
  LatencyHistogram server_queue_wait;
  LatencyHistogram server_service;
};

class Client : public phys::Node {
 public:
  Client(sim::Scheduler& scheduler, ClientParams params,
         std::shared_ptr<RequestFactory> factory, Rng rng);

  /// Schedules the first send; call once after topology wiring.
  void start();

  void handle_frame(std::size_t port, wire::FrameHandle frame) override;

  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t outstanding() const {
    return outstanding_.size();
  }

  /// Accounting scan over the request table for the invariant auditor:
  /// every issued request is either completed exactly once or still
  /// recorded as incomplete (entries are never erased, so the table is
  /// the ground truth the stats counters are checked against).
  struct Audit {
    std::uint64_t completed_entries = 0;
    std::uint64_t incomplete_entries = 0;
  };
  [[nodiscard]] Audit audit() const;

  /// Control-plane reconfiguration after a server add/remove (§3.6): the
  /// operator tells clients the new group count.
  void set_num_groups(std::uint16_t num_groups) {
    params_.num_groups = num_groups;
    if (!params_.group_weights.empty()) {
      params_.group_weights.resize(num_groups, 0.0);
      group_cdf_ = weight_cdf(params_.group_weights);
    }
  }

  /// The rate multiplier a profile applies at `t` (1.0 before the first
  /// segment, and for an empty profile). Static so the traffic-shape
  /// tests exercise exactly the client's lookup.
  [[nodiscard]] static double profile_multiplier(
      const std::vector<RateSegment>& profile, SimTime t);
  /// Cumulative weights for pick_weighted; validates the vector (throws
  /// via NETCLONE_CHECK on negatives or a zero sum).
  [[nodiscard]] static std::vector<double> weight_cdf(
      const std::vector<double>& weights);
  /// Index drawn by a uniform u in [0,1) against `cdf` — the client's
  /// group draw, exposed for statistical tests.
  [[nodiscard]] static std::size_t pick_weighted(
      const std::vector<double>& cdf, double u);

 private:
  struct Pending {
    SimTime sent_at;
    bool completed = false;
    bool measured = false;
    std::uint64_t frag_mask = 0;  // response fragments received so far
    std::uint32_t retries = 0;
    wire::RpcRequest request{};   // kept for retransmission
    std::uint16_t grp = 0;
    std::uint8_t idx = 0;
    /// Decomposition reported by the (winning) server, from the response
    /// fragment that carried the payload.
    std::uint32_t server_wait_ns = 0;
    std::uint32_t server_service_ns = 0;
    /// C-Clone: the two chosen workers, for targeted cancellation.
    std::array<wire::Ipv4Address, 2> cclone_dsts{};
    /// Serialized request frames, cached so TCP-mode retransmissions resend
    /// the same buffers instead of re-serializing (empty unless
    /// retransmit_timeout is armed; never used for kDirectRandom, which
    /// re-draws its destination every attempt). Released on completion.
    std::vector<wire::FrameHandle> tx_frames{};
    /// The request body, serialized once into a shared pooled buffer.
    /// Every attempt — fragments, the C-Clone pair, and kDirectRandom
    /// retransmissions (which re-draw their destination and so must
    /// rebuild headers) — composes its header block with this tail by
    /// refcount; the payload bytes are never serialized again. Built only
    /// when a retransmit timer can fire; released on completion.
    wire::SharedPayload payload_tail{};
    /// Pending retransmit timeout (TCP mode); cancelled on completion so
    /// the event — and the closure it holds — is freed immediately.
    sim::EventId retransmit_event{};
  };

  void issue_request();
  void on_arrival();
  void schedule_next_arrival();
  [[nodiscard]] SimTime next_arrival_time();
  void send_cancel(const Pending& pending, std::uint32_t client_seq,
                   wire::Ipv4Address responder);
  void send_all_packets(Pending& pending, std::uint32_t client_seq);
  /// Builds, serializes and paces one request packet; returns the frame so
  /// the caller can cache it for retransmission. With a non-null `tail`
  /// the frame is composed scatter-gather: fresh headers over the shared
  /// payload buffer (byte-identical to the contiguous build).
  wire::FrameHandle emit_request(const wire::RpcRequest& req,
                                 wire::Ipv4Address dst, std::uint16_t grp,
                                 std::uint8_t idx, std::uint32_t client_seq,
                                 std::uint8_t frag_idx,
                                 const wire::SharedPayload* tail);
  /// Paces one already-serialized frame through the sender thread.
  void emit_frame(wire::FrameHandle bytes);
  void arm_retransmit_timer(std::uint32_t client_seq);
  /// Backoff delay before retry number `retries` (0-based), jittered
  /// from the dedicated retry stream.
  [[nodiscard]] SimTime retransmit_delay(std::uint32_t retries);
  void on_response_processed(wire::Packet pkt);

  sim::Scheduler& sim_;
  ClientParams params_;
  /// Cumulative group weights (empty = uniform draws).
  std::vector<double> group_cdf_;
  std::shared_ptr<RequestFactory> factory_;
  Rng rng_;
  /// Jitter stream for retransmit backoff — separate from the workload
  /// stream so enabling TCP-mode timeouts cannot shift arrival draws.
  Rng retry_rng_;
  wire::Ipv4Address my_ip_;
  wire::MacAddress my_mac_;

  /// Open-loop arrival pacing: rearmed from its own callback.
  sim::Timer arrival_timer_;
  SimTime tx_busy_until_ = SimTime::zero();
  SimTime rx_busy_until_ = SimTime::zero();
  SimTime burst_on_until_ = SimTime::zero();  // end of the current ON window
  std::uint32_t next_seq_ = 1;
  std::unordered_map<std::uint32_t, Pending> outstanding_;
  ClientStats stats_;
};

}  // namespace netclone::host
