#include "core/controller.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace netclone::core {

Controller::Controller(NetCloneProgram& program, pisa::SwitchDevice& device,
                       std::size_t loopback_port)
    : program_(program), device_(device), loopback_port_(loopback_port) {}

std::uint16_t Controller::add_server(ServerId sid, wire::Ipv4Address ip,
                                     std::size_t egress_port) {
  NETCLONE_CHECK(!is_live(sid), "server already registered");
  const std::uint16_t mcast = next_mcast_group_++;
  device_.configure_multicast_group(mcast, {egress_port, loopback_port_});
  program_.add_server(sid, ip, egress_port, mcast);
  workers_.push_back(WorkerEntry{sid, ip, egress_port, mcast});
  if (workers_.size() >= 2) {
    reinstall_groups();
  }
  return mcast;
}

void Controller::remove_server(ServerId sid) {
  auto it = std::find_if(
      workers_.begin(), workers_.end(),
      [sid](const WorkerEntry& w) { return w.sid == sid; });
  NETCLONE_CHECK(it != workers_.end(), "unknown server");
  NETCLONE_CHECK(workers_.size() > 2,
                 "cannot drop below two servers (redundancy)");
  program_.remove_server(sid);
  workers_.erase(it);
  reinstall_groups();
}

void Controller::add_route(wire::Ipv4Address ip, std::size_t port) {
  program_.add_route(ip, port);
}

std::vector<ServerId> Controller::live_servers() const {
  std::vector<ServerId> out;
  out.reserve(workers_.size());
  for (const WorkerEntry& w : workers_) {
    out.push_back(w.sid);
  }
  return out;
}

bool Controller::is_live(ServerId sid) const {
  return std::any_of(workers_.begin(), workers_.end(),
                     [sid](const WorkerEntry& w) { return w.sid == sid; });
}

void Controller::reinstall_groups() {
  groups_ = build_group_pairs(live_servers());
  program_.install_groups(groups_);
}

}  // namespace netclone::core
