// NetClone-aware aggregation tier with NetChain-style chain replication.
//
// The paper's multi-rack story (§3.7) keeps cloning at the client-side
// ToR: the aggregation layer is oblivious and candidate pairs are limited
// to what one ToR can see. This program moves the cloning decision into
// the aggregation tier so a candidate pair can span any two racks, and —
// because several aggs share the tier (ECMP from the client ToRs) —
// replicates the soft state the decision depends on with the chain
// scheme of NetChain (PAPERS.md):
//
//   * requests may arrive at ANY replica (ECMP). The receiving replica
//     stamps the shared tier SWITCH_ID, assigns the Lamport-style
//     client-tuple request id (replicated deciders cannot share a SEQ
//     register without coordination), and clones off its local StateT
//     replica. The read is relaxed: a stale replica only costs a missed
//     or wasted clone, never correctness.
//   * responses are routed by the rack ToRs to the chain HEAD and flow
//     head -> ... -> tail over dedicated chain links. Every replica
//     applies the identical deterministic StateT write and filter RMW in
//     chain order — state-machine replication, so all replicas converge
//     cell by cell. Only the TAIL enacts the filter verdict (drop the
//     slower duplicate / forward to the client); upstream replicas
//     always forward, keeping exactly-once a single switch's decision.
//
// Stage layout mirrors NetCloneProgram minus the SEQ register (stage 0
// is free — ids are client-tuple by construction).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/groups.hpp"
#include "core/netclone_program.hpp"
#include "pisa/program.hpp"
#include "pisa/resources.hpp"
#include "wire/ipv4.hpp"

namespace netclone::core {

/// Where this replica sits in the chain AT BUILD TIME. A single-agg tier
/// is a chain of length one: the replica is head and tail at once and
/// enacts its own verdicts locally. Fail-over mutates the live chain
/// through the program's set_chain_next()/set_chain_member() hooks; this
/// struct only seeds the initial shape.
struct AggChainRole {
  std::size_t replica_index = 0;
  std::size_t chain_length = 1;
  /// Egress port of the dedicated link to the next replica; required for
  /// every non-tail replica.
  std::optional<std::size_t> chain_next_port{};

  [[nodiscard]] bool is_head() const { return replica_index == 0; }
  [[nodiscard]] bool is_tail() const {
    return replica_index + 1 == chain_length;
  }
};

/// One chain resync operation, shared between the filler (the replica
/// that snapshots its soft state) and the installers downstream. The
/// marker packet carries only the sync id; the snapshot payload rides
/// out-of-band in the hub — the modeled control-plane channel (real
/// NetChain ships it over the network; we keep the CUT POINTS in band,
/// which is what correctness depends on, and the bytes out of band).
struct AggChainSyncRecord {
  std::uint32_t sync_id = 0;
  /// Admit markers only: the chain_next the filler adopts when it fills
  /// the record — the old tail starts forwarding toward the rejoiner.
  std::optional<std::size_t> filler_next_port{};
  /// Admit markers only: the replica that installs the snapshot, takes
  /// over the tail role, and consumes the marker.
  std::optional<std::size_t> admit_target{};
  bool filled = false;
  std::vector<std::uint16_t> state;
  std::vector<std::uint16_t> shadow;
  std::vector<std::vector<std::uint32_t>> filters;
};

/// Shard-0-confined store of sync records, shared by the controller and
/// every replica program. Lookup is linear: a run carries a handful of
/// records, never thousands.
class AggChainSyncHub {
 public:
  AggChainSyncRecord& create(std::uint32_t sync_id) {
    AggChainSyncRecord record;
    record.sync_id = sync_id;
    return records_.emplace_back(std::move(record));
  }
  [[nodiscard]] AggChainSyncRecord* find(std::uint32_t sync_id) {
    for (auto& record : records_) {
      if (record.sync_id == sync_id) {
        return &record;
      }
    }
    return nullptr;
  }

 private:
  std::vector<AggChainSyncRecord> records_;
};

struct AggNetCloneStats {
  std::uint64_t requests = 0;
  std::uint64_t cloned_requests = 0;
  std::uint64_t recirculated_clones = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t fingerprints_stored = 0;
  /// Filter matches at this replica (every replica computes the verdict).
  std::uint64_t filter_hits = 0;
  /// Verdicts enacted: duplicates actually dropped. Tail (or solo) only.
  std::uint64_t filtered_responses = 0;
  /// Responses relayed to the next replica over the chain link.
  std::uint64_t chain_forwards = 0;
  /// Packets stamped by another tier/ToR — routed, not processed.
  std::uint64_t foreign_packets = 0;
  std::uint64_t missing_route_drops = 0;
  /// kChainSync markers this replica processed (fill, install, or relay).
  std::uint64_t chain_sync_markers = 0;
  /// Markers for which this replica was the filler (snapshotted its own
  /// soft state into the hub record).
  std::uint64_t chain_sync_snapshots_filled = 0;
  /// Snapshots this replica installed over its own tables.
  std::uint64_t chain_sync_installs = 0;
  /// Stale markers skipped by the generation guard (sync id not newer
  /// than the last installed one).
  std::uint64_t chain_sync_stale = 0;
  /// Markers consumed here (end of the marker's chain walk).
  std::uint64_t chain_sync_consumed = 0;
  /// Non-zero filter cells this replica adopted from installed snapshots
  /// (fingerprints it may later hit without having stored them itself —
  /// the auditor widens its hit bound by exactly this much).
  std::uint64_t chain_sync_fingerprints_adopted = 0;
  /// Responses that arrived while this replica was NOT an admitted chain
  /// member (stale in-flight traffic around a crash/rejoin) — dropped
  /// without touching soft state.
  std::uint64_t non_member_response_drops = 0;
};

class AggNetCloneProgram final : public pisa::SwitchProgram {
 public:
  /// `config.switch_id` is the tier-wide identity every replica shares
  /// (so rack ToRs treat tier-stamped packets as foreign). id_mode and
  /// the multipacket switches are ignored: the tier always derives
  /// client-tuple request ids.
  AggNetCloneProgram(pisa::Pipeline& pipeline, NetCloneConfig config,
                     AggChainRole role);

  // -- control plane ------------------------------------------------------

  /// Registers a worker: AddrT[sid] = ip, FwdT[ip] = the trunk toward the
  /// worker's rack, and the PRE group used when cloning toward it (must
  /// contain {rack trunk port, loopback port}).
  void add_server(ServerId sid, wire::Ipv4Address ip, std::size_t port,
                  std::uint16_t clone_mcast_group);
  void install_groups(const std::vector<GroupPair>& groups);
  /// Plain route (clients — via their rack trunk).
  void add_route(wire::Ipv4Address ip, std::size_t port);

  // -- chain fail-over control plane --------------------------------------

  /// Hands the replica the tier's shared sync-record store. Required
  /// before any kChainSync marker can be processed.
  void set_sync_hub(std::shared_ptr<AggChainSyncHub> hub) {
    sync_hub_ = std::move(hub);
  }
  /// Splices the live chain: nullopt makes this replica the tail (it
  /// starts enacting verdicts), a port makes it forward responses there.
  void set_chain_next(std::optional<std::size_t> port) {
    chain_next_ = port;
  }
  /// Membership flag: a crashed/not-yet-readmitted replica still routes
  /// requests (zeroed state just clones aggressively) but must not apply
  /// chain responses or enact verdicts.
  void set_chain_member(bool member) { chain_member_ = member; }

  [[nodiscard]] bool chain_member() const { return chain_member_; }
  [[nodiscard]] std::optional<std::size_t> chain_next() const {
    return chain_next_;
  }
  /// Live tail test — the verdict authority. Distinct from
  /// role().is_tail(), which is the build-time shape.
  [[nodiscard]] bool is_chain_tail() const {
    return chain_member_ && !chain_next_.has_value();
  }

  // -- data plane ---------------------------------------------------------

  void on_ingress(wire::Packet& pkt, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass) override;
  void warm_burst(std::span<wire::Packet> pkts) override;

  [[nodiscard]] const char* name() const override { return "AggNetClone"; }
  [[nodiscard]] const AggNetCloneStats& stats() const { return stats_; }
  [[nodiscard]] const NetCloneConfig& config() const { return config_; }
  [[nodiscard]] const AggChainRole& role() const { return role_; }

  /// Replica-convergence fingerprint: FNV-1a over every StateT cell and
  /// every filter-table cell. After the chain quiesces, all replicas must
  /// report the same value — the invariant the auditor enforces.
  [[nodiscard]] std::uint64_t soft_state_digest() const;
  [[nodiscard]] std::uint16_t peek_state(ServerId sid) const;
  [[nodiscard]] std::uint32_t peek_filter_slot(std::size_t table,
                                               std::size_t slot) const;
  /// Count of non-zero filter cells — the auditor's bounded-filter-table
  /// check on a rejoined replica.
  [[nodiscard]] std::uint64_t filter_occupancy() const;

 private:
  struct AddrEntry {
    wire::Ipv4Address ip{};
    std::uint16_t mcast_group = 0;
  };

  void handle_request(wire::Packet& pkt, pisa::PacketMetadata& md,
                      pisa::PipelinePass& pass);
  void handle_response(wire::Packet& pkt, pisa::PacketMetadata& md,
                       pisa::PipelinePass& pass);
  void handle_chain_sync(wire::Packet& pkt, pisa::PacketMetadata& md);
  void fill_sync_record(AggChainSyncRecord& record);
  void install_sync_record(const AggChainSyncRecord& record);
  void l3_forward(const wire::Packet& pkt, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass);

  NetCloneConfig config_;
  AggChainRole role_;

  pisa::ExactMatchTable<GroupPair> grp_table_;
  pisa::ExactMatchTable<AddrEntry> addr_table_;
  pisa::RegisterArray<std::uint16_t> state_table_;
  pisa::RegisterArray<std::uint16_t> shadow_table_;
  pisa::HashUnit hash_unit_;
  std::vector<std::unique_ptr<pisa::RegisterArray<std::uint32_t>>>
      filter_tables_;
  pisa::ExactMatchTable<std::size_t> fwd_table_;

  // Live chain shape (seeded from role_, mutated by the controller).
  std::optional<std::size_t> chain_next_;
  bool chain_member_ = true;
  /// Generation guard: the highest sync id already installed. A marker
  /// whose id is not newer is stale (a relay of an operation this replica
  /// already absorbed) and must not clobber fresher state.
  std::uint32_t last_sync_gen_ = 0;
  std::shared_ptr<AggChainSyncHub> sync_hub_;

  AggNetCloneStats stats_;
};

}  // namespace netclone::core
