// Switch control plane for NetClone (§3.6 "Server failures").
//
// The data-plane program only evaluates whatever tables the control plane
// installed; this class owns that responsibility: it wires worker servers
// (address entry, route, PRE multicast group with the loopback port),
// keeps the candidate-group set consistent with the live server set, and
// removes failed servers — after which clients must be told the new group
// count (Client::set_num_groups).
#pragma once

#include <cstdint>
#include <vector>

#include "core/netclone_program.hpp"
#include "pisa/switch_device.hpp"

namespace netclone::core {

class Controller {
 public:
  /// The device must already have a loopback port configured; pass its
  /// index so clone multicast groups can reference it.
  Controller(NetCloneProgram& program, pisa::SwitchDevice& device,
             std::size_t loopback_port);

  /// Registers a live worker and reinstalls the group set. Returns the
  /// multicast group id assigned to the server's clone path.
  std::uint16_t add_server(ServerId sid, wire::Ipv4Address ip,
                           std::size_t egress_port);

  /// Removes a failed worker (§3.6): deletes its address entry and
  /// reinstalls groups over the survivors. Throws if fewer than two
  /// servers would remain (NetClone requires redundancy).
  void remove_server(ServerId sid);

  /// Plain route for non-worker endpoints.
  void add_route(wire::Ipv4Address ip, std::size_t port);

  [[nodiscard]] const std::vector<GroupPair>& groups() const {
    return groups_;
  }
  [[nodiscard]] std::uint16_t group_count() const {
    return static_cast<std::uint16_t>(groups_.size());
  }
  [[nodiscard]] std::vector<ServerId> live_servers() const;
  [[nodiscard]] bool is_live(ServerId sid) const;

 private:
  struct WorkerEntry {
    ServerId sid{};
    wire::Ipv4Address ip{};
    std::size_t port = 0;
    std::uint16_t mcast_group = 0;
  };

  void reinstall_groups();

  NetCloneProgram& program_;
  pisa::SwitchDevice& device_;
  std::size_t loopback_port_;
  std::vector<WorkerEntry> workers_;
  std::vector<GroupPair> groups_;
  std::uint16_t next_mcast_group_ = 1;
};

}  // namespace netclone::core
