#include "core/netclone_program.hpp"

#include "common/check.hpp"

namespace netclone::core {
namespace {

/// FwdT key: the 32-bit destination address widened to the table key type.
[[nodiscard]] std::uint64_t route_key(wire::Ipv4Address ip) {
  return static_cast<std::uint64_t>(ip.value);
}

}  // namespace

NetCloneProgram::NetCloneProgram(pisa::Pipeline& pipeline,
                                 NetCloneConfig config)
    : config_(config),
      seq_(pipeline, "SEQ", 0, 0U),
      grp_table_(pipeline, "GrpT", 1, config.max_groups, /*key_bytes=*/2,
                 /*value_bytes=*/2),
      addr_table_(pipeline, "AddrT", 2, config.max_servers, /*key_bytes=*/1,
                  /*value_bytes=*/6),
      state_table_(pipeline, "StateT", 3, config.max_servers),
      shadow_table_(pipeline, "ShadowT", 4, config.max_servers),
      hash_unit_(pipeline, "FilterHash", 5),
      fwd_table_(pipeline, "FwdT", 6, /*capacity=*/1024, /*key_bytes=*/4,
                 /*value_bytes=*/2) {
  NETCLONE_CHECK(config_.num_filter_tables >= 1 &&
                     config_.num_filter_tables <= 8,
                 "filter table count out of range");
  NETCLONE_CHECK(config_.filter_slots > 0, "filter tables need slots");
  NETCLONE_CHECK(!config_.enable_multipacket ||
                     config_.id_mode == RequestIdMode::kClientTuple,
                 "multi-packet support needs client-tuple request ids: "
                 "fragments must share one REQ_ID (§3.7)");
  filter_tables_.reserve(config_.num_filter_tables);
  for (std::size_t i = 0; i < config_.num_filter_tables; ++i) {
    filter_tables_.push_back(
        std::make_unique<pisa::RegisterArray<std::uint32_t>>(
            pipeline, "FilterT" + std::to_string(i), 5,
            config_.filter_slots));
  }
  if (config_.enable_multipacket) {
    NETCLONE_CHECK(config_.cloned_req_slots > 0,
                   "cloned-request table needs slots");
    cloned_req_table_ =
        std::make_unique<pisa::RegisterArray<std::uint32_t>>(
            pipeline, "ClonedReqT", 5, config_.cloned_req_slots);
  }
}

void NetCloneProgram::add_server(ServerId sid, wire::Ipv4Address ip,
                                 std::size_t port,
                                 std::uint16_t clone_mcast_group) {
  NETCLONE_CHECK(value_of(sid) < config_.max_servers,
                 "server id exceeds table sizing");
  addr_table_.insert(value_of(sid), AddrEntry{ip, clone_mcast_group});
  fwd_table_.insert(route_key(ip), port);
}

void NetCloneProgram::install_groups(const std::vector<GroupPair>& groups) {
  grp_table_.clear_entries();
  for (std::size_t id = 0; id < groups.size(); ++id) {
    grp_table_.insert(id, groups[id]);
  }
}

void NetCloneProgram::add_route(wire::Ipv4Address ip, std::size_t port) {
  fwd_table_.insert(route_key(ip), port);
}

void NetCloneProgram::remove_server(ServerId sid) {
  addr_table_.erase(value_of(sid));
  // Groups referencing the failed server stay installed but now miss on
  // AddrT; the operator is expected to re-install a shrunk group set and
  // update the clients' group count (§3.6).
}

void NetCloneProgram::inject_stale_filter_entry(std::size_t table,
                                                std::uint32_t req_id) {
  NETCLONE_CHECK(table < filter_tables_.size(), "filter table out of range");
  NETCLONE_CHECK(req_id != 0, "0 means empty; not a plantable fingerprint");
  const std::uint32_t slot = filter_hash(req_id, config_.filter_slots);
  filter_tables_[table]->poke_write(slot, req_id);
  ++stats_.injected_stale_entries;
}

std::uint32_t NetCloneProgram::filter_hash(std::uint32_t req_id,
                                           std::size_t slots) {
  return crc32_u32(req_id) % static_cast<std::uint32_t>(slots);
}

std::uint32_t NetCloneProgram::client_tuple_id(std::uint16_t client_id,
                                               std::uint32_t client_seq) {
  const std::uint64_t tuple =
      static_cast<std::uint64_t>(client_id) << 32 | client_seq;
  // Mixed so sequential per-client ids spread over the filter tables; a
  // Lamport-style identity that retransmissions and fragments share.
  const std::uint64_t mixed = mix64(tuple);
  const auto id = static_cast<std::uint32_t>(mixed ^ (mixed >> 32));
  return id == 0 ? 1 : id;  // 0 means "empty slot" in the filter tables
}

void NetCloneProgram::assign_request_id(wire::NetCloneHeader& nc,
                                        pisa::PipelinePass& pass) {
  if (config_.id_mode == RequestIdMode::kClientTuple) {
    // §3.7 protocol support: derive the id from the client tuple so a TCP
    // retransmission keeps its id; the SEQ register is not touched.
    nc.req_id = client_tuple_id(nc.client_id, nc.client_seq);
    return;
  }
  // Algorithm 1, lines 2-3.
  nc.req_id = seq_.execute(pass, [](std::uint32_t& c) { return ++c; });
}

void NetCloneProgram::on_ingress(wire::Packet& pkt, pisa::PacketMetadata& md,
                                 pisa::PipelinePass& pass) {
  if (!pkt.has_netclone()) {
    l3_forward(pkt, md, pass);
    return;
  }
  wire::NetCloneHeader& nc = pkt.nc();
  // Multi-rack scoping (§3.7): NetClone logic belongs to the client-side
  // ToR only. A non-zero SWITCH_ID of another switch means the packet is
  // just passing through — plain routing.
  if (nc.switch_id != 0 && nc.switch_id != config_.switch_id) {
    ++stats_.foreign_tor_packets;
    l3_forward(pkt, md, pass);
    return;
  }
  if (nc.is_cancel()) {
    // Cancellation is an end-to-end affair between client and server; the
    // switch just routes it.
    l3_forward(pkt, md, pass);
    return;
  }
  if (nc.is_request()) {
    handle_request(pkt, md, pass);
  } else {
    handle_response(pkt, md, pass);
  }
}

void NetCloneProgram::warm_burst(std::span<wire::Packet> pkts) {
  // Pure cache hints mirroring the probe pattern of on_ingress; no
  // pipeline state is read or written (filter_hash is a stateless CRC).
  for (wire::Packet& pkt : pkts) {
    if (!pkt.has_netclone()) {
      fwd_table_.prefetch(route_key(pkt.ip.dst));
      continue;
    }
    const wire::NetCloneHeader& nc = pkt.nc();
    if ((nc.switch_id != 0 && nc.switch_id != config_.switch_id) ||
        nc.is_cancel()) {
      fwd_table_.prefetch(route_key(pkt.ip.dst));
      continue;
    }
    if (nc.is_request()) {
      grp_table_.prefetch(nc.grp);
    } else {
      state_table_.prefetch(nc.sid);
      shadow_table_.prefetch(nc.sid);
      if (!filter_tables_.empty()) {
        const std::uint32_t slot =
            filter_hash(nc.req_id, config_.filter_slots);
        for (const auto& table : filter_tables_) {
          table->prefetch(slot);
        }
      }
    }
  }
}

void NetCloneProgram::handle_request(wire::Packet& pkt,
                                     pisa::PacketMetadata& md,
                                     pisa::PipelinePass& pass) {
  wire::NetCloneHeader& nc = pkt.nc();

  if (md.is_recirculated) {
    // Algorithm 1, lines 11-13: the loopback copy. Mark it as the cloned
    // duplicate and steer it to the second candidate recorded in SID.
    NETCLONE_CHECK(nc.clo == wire::CloneStatus::kClonedOriginal,
                   "recirculated request must carry CLO=1");
    ++stats_.recirculated_clones;
    nc.clo = wire::CloneStatus::kClonedCopy;
    const auto* entry = addr_table_.find(pass, nc.sid);
    if (!entry) {
      ++stats_.missing_route_drops;  // candidate removed mid-flight (§3.6)
      md.drop = true;
      return;
    }
    pkt.ip.dst = entry->ip;
    const auto* port = fwd_table_.find(pass, route_key(entry->ip));
    if (!port) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    md.egress_port = *port;
    return;
  }

  if (nc.clo != wire::CloneStatus::kNotCloned) {
    // A fresh (non-recirculated) request must carry CLO=0; anything else
    // is a malformed packet and is discarded rather than cloned twice.
    md.drop = true;
    return;
  }
  if (nc.switch_id == 0) {
    nc.switch_id = config_.switch_id;  // stamp the client-side ToR (§3.7)
  }
  assign_request_id(nc, pass);

  if (nc.is_write()) {
    // §5.5: writes are never cloned — coordination belongs to the
    // replication protocol. Route to the group's first candidate.
    ++stats_.write_requests;
    const auto* pair = grp_table_.find(pass, nc.grp);
    if (!pair) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    const auto* entry = addr_table_.find(pass, pair->srv1);
    if (!entry) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    pkt.ip.dst = entry->ip;
    l3_forward(pkt, md, pass);
    return;
  }

  ++stats_.requests;

  if (config_.enable_multipacket && nc.frag_idx > 0) {
    handle_continuation_fragment(pkt, md, pass);
    return;
  }

  // Line 4: group id -> ordered candidate pair.
  const auto* pair = grp_table_.find(pass, nc.grp);
  if (!pair) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }

  // Line 5: the non-cloned destination is always the first candidate.
  const auto* entry1 = addr_table_.find(pass, pair->srv1);
  if (!entry1) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  pkt.ip.dst = entry1->ip;

  // Line 6: both candidates idle? StateT serves srv1, the shadow copy
  // serves srv2 — one register array cannot be read twice in a pass.
  const std::uint16_t s1 = state_table_.read(pass, pair->srv1);
  const std::uint16_t s2 = shadow_table_.read(pass, pair->srv2);

  if (config_.enable_cloning && s1 == 0 && s2 == 0) {
    // Lines 7-9: clone. SID carries the second candidate for the
    // recirculated copy; the PRE group sends the original to srv1's port
    // and the copy to the loopback port.
    nc.clo = wire::CloneStatus::kClonedOriginal;
    nc.sid = pair->srv2;
    ++stats_.cloned_requests;
    if (config_.enable_multipacket && nc.multi_packet()) {
      // §3.7: remember the cloned-but-unfinished request so that later
      // fragments clone regardless of the tracked states.
      const std::uint32_t slot =
          filter_hash(nc.req_id,
                      config_.cloned_req_slots);  // reuses the CRC profile
      cloned_req_table_->write(pass, slot, nc.req_id);
    }
    md.multicast_group = entry1->mcast_group;
    return;
  }

  const auto* port = fwd_table_.find(pass, route_key(entry1->ip));
  if (!port) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  md.egress_port = *port;
}

void NetCloneProgram::handle_continuation_fragment(
    wire::Packet& pkt, pisa::PacketMetadata& md, pisa::PipelinePass& pass) {
  wire::NetCloneHeader& nc = pkt.nc();
  ++stats_.continuation_fragments;

  // Affinity: the client keeps the group id constant across fragments, so
  // the first candidate is the same server fragment 0 was sent to.
  const auto* pair = grp_table_.find(pass, nc.grp);
  if (!pair) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  const auto* entry1 = addr_table_.find(pass, pair->srv1);
  if (!entry1) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  pkt.ip.dst = entry1->ip;

  // Was fragment 0 cloned? One RMW: match, and clear on the last fragment
  // so the slot frees as soon as the request finishes.
  const std::uint32_t slot =
      filter_hash(nc.req_id, config_.cloned_req_slots);
  const bool was_cloned = cloned_req_table_->execute(
      pass, slot,
      [rid = nc.req_id, last = nc.last_fragment()](std::uint32_t& cell) {
        if (cell != rid) {
          return false;
        }
        if (last) {
          cell = 0;
        }
        return true;
      });

  if (was_cloned) {
    nc.clo = wire::CloneStatus::kClonedOriginal;
    nc.sid = pair->srv2;
    ++stats_.cloned_fragments;
    md.multicast_group = entry1->mcast_group;
    return;
  }
  const auto* port = fwd_table_.find(pass, route_key(entry1->ip));
  if (!port) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  md.egress_port = *port;
}

void NetCloneProgram::handle_response(wire::Packet& pkt,
                                      pisa::PacketMetadata& md,
                                      pisa::PipelinePass& pass) {
  wire::NetCloneHeader& nc = pkt.nc();
  ++stats_.responses;

  // Lines 15-16: absorb the piggybacked state into both tables so they
  // stay consistent.
  if (nc.sid < config_.max_servers) {
    state_table_.write(pass, nc.sid, nc.state);
    shadow_table_.write(pass, nc.sid, nc.state);
  }

  // Lines 17-25: fingerprint filtering, only for responses of cloned
  // requests.
  if (nc.cloned() && config_.enable_filtering) {
    // §3.7 multi-packet: response fragments share REQ_ID, so each ordinal
    // is steered to its own "ordered" filter table (idx + frag_idx).
    // Deploy at least as many tables as the largest response fragment
    // count, or same-id fragments would collide in one slot.
    const std::size_t ordinal =
        config_.enable_multipacket ? nc.frag_idx : 0U;
    const std::size_t table =
        (nc.idx + ordinal) % config_.num_filter_tables;  // bad IDX tolerated
    const std::uint32_t slot = hash_unit_.hash32(
        pass, nc.req_id, static_cast<std::uint32_t>(config_.filter_slots));
    const bool drop = filter_tables_[table]->execute(
        pass, slot, [rid = nc.req_id](std::uint32_t& cell) {
          if (cell == rid) {
            cell = 0;   // slower duplicate: clear the slot for reuse
            return true;
          }
          cell = rid;   // faster response (or collision): overwrite (§3.5)
          return false;
        });
    if (drop) {
      ++stats_.filtered_responses;
      md.drop = true;
      return;
    }
    ++stats_.fingerprints_stored;
  }

  l3_forward(pkt, md, pass);
}

void NetCloneProgram::l3_forward(const wire::Packet& pkt,
                                 pisa::PacketMetadata& md,
                                 pisa::PipelinePass& pass) {
  const auto* port = fwd_table_.find(pass, route_key(pkt.ip.dst));
  if (!port) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  md.egress_port = *port;
}

std::uint32_t NetCloneProgram::peek_filter_slot(std::size_t table,
                                                std::size_t slot) const {
  NETCLONE_CHECK(table < filter_tables_.size(), "filter table out of range");
  return filter_tables_[table]->peek(slot);
}

std::uint16_t NetCloneProgram::peek_state(ServerId sid) const {
  return state_table_.peek(value_of(sid));
}

}  // namespace netclone::core
