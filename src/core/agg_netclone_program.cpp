#include "core/agg_netclone_program.hpp"

#include "common/check.hpp"

namespace netclone::core {
namespace {

[[nodiscard]] std::uint64_t route_key(wire::Ipv4Address ip) {
  return static_cast<std::uint64_t>(ip.value);
}

}  // namespace

AggNetCloneProgram::AggNetCloneProgram(pisa::Pipeline& pipeline,
                                       NetCloneConfig config,
                                       AggChainRole role)
    : config_(config),
      role_(role),
      grp_table_(pipeline, "GrpT", 1, config.max_groups, /*key_bytes=*/2,
                 /*value_bytes=*/2),
      addr_table_(pipeline, "AddrT", 2, config.max_servers, /*key_bytes=*/1,
                  /*value_bytes=*/6),
      state_table_(pipeline, "StateT", 3, config.max_servers),
      shadow_table_(pipeline, "ShadowT", 4, config.max_servers),
      hash_unit_(pipeline, "FilterHash", 5),
      fwd_table_(pipeline, "FwdT", 6, /*capacity=*/1024, /*key_bytes=*/4,
                 /*value_bytes=*/2),
      chain_next_(role.chain_next_port) {
  NETCLONE_CHECK(config_.num_filter_tables >= 1 &&
                     config_.num_filter_tables <= 8,
                 "filter table count out of range");
  NETCLONE_CHECK(config_.filter_slots > 0, "filter tables need slots");
  NETCLONE_CHECK(role_.chain_length >= 1 &&
                     role_.replica_index < role_.chain_length,
                 "chain role out of range");
  NETCLONE_CHECK(role_.is_tail() == !role_.chain_next_port.has_value(),
                 "every non-tail replica needs chain_next_port (and the "
                 "tail must not have one)");
  filter_tables_.reserve(config_.num_filter_tables);
  for (std::size_t i = 0; i < config_.num_filter_tables; ++i) {
    filter_tables_.push_back(
        std::make_unique<pisa::RegisterArray<std::uint32_t>>(
            pipeline, "FilterT" + std::to_string(i), 5,
            config_.filter_slots));
  }
}

void AggNetCloneProgram::add_server(ServerId sid, wire::Ipv4Address ip,
                                    std::size_t port,
                                    std::uint16_t clone_mcast_group) {
  NETCLONE_CHECK(value_of(sid) < config_.max_servers,
                 "server id exceeds table sizing");
  addr_table_.insert(value_of(sid), AddrEntry{ip, clone_mcast_group});
  fwd_table_.insert(route_key(ip), port);
}

void AggNetCloneProgram::install_groups(
    const std::vector<GroupPair>& groups) {
  grp_table_.clear_entries();
  for (std::size_t id = 0; id < groups.size(); ++id) {
    grp_table_.insert(id, groups[id]);
  }
}

void AggNetCloneProgram::add_route(wire::Ipv4Address ip, std::size_t port) {
  fwd_table_.insert(route_key(ip), port);
}

void AggNetCloneProgram::on_ingress(wire::Packet& pkt,
                                    pisa::PacketMetadata& md,
                                    pisa::PipelinePass& pass) {
  if (!pkt.has_netclone()) {
    l3_forward(pkt, md, pass);
    return;
  }
  wire::NetCloneHeader& nc = pkt.nc();
  // A packet stamped by a different switch tier is just passing through.
  if (nc.switch_id != 0 && nc.switch_id != config_.switch_id) {
    ++stats_.foreign_packets;
    l3_forward(pkt, md, pass);
    return;
  }
  if (nc.is_chain_sync()) {
    handle_chain_sync(pkt, md);
    return;
  }
  if (nc.is_cancel()) {
    l3_forward(pkt, md, pass);
    return;
  }
  if (nc.is_request()) {
    handle_request(pkt, md, pass);
  } else {
    handle_response(pkt, md, pass);
  }
}

void AggNetCloneProgram::warm_burst(std::span<wire::Packet> pkts) {
  for (wire::Packet& pkt : pkts) {
    if (!pkt.has_netclone()) {
      fwd_table_.prefetch(route_key(pkt.ip.dst));
      continue;
    }
    const wire::NetCloneHeader& nc = pkt.nc();
    if (nc.is_chain_sync()) {
      continue;  // control-plane marker — no match-table work to warm
    }
    if ((nc.switch_id != 0 && nc.switch_id != config_.switch_id) ||
        nc.is_cancel()) {
      fwd_table_.prefetch(route_key(pkt.ip.dst));
      continue;
    }
    if (nc.is_request()) {
      grp_table_.prefetch(nc.grp);
    } else {
      state_table_.prefetch(nc.sid);
      shadow_table_.prefetch(nc.sid);
      const std::uint32_t slot =
          NetCloneProgram::filter_hash(nc.req_id, config_.filter_slots);
      for (const auto& table : filter_tables_) {
        table->prefetch(slot);
      }
    }
  }
}

void AggNetCloneProgram::handle_request(wire::Packet& pkt,
                                        pisa::PacketMetadata& md,
                                        pisa::PipelinePass& pass) {
  wire::NetCloneHeader& nc = pkt.nc();

  if (md.is_recirculated) {
    // The loopback copy: mark it as the cloned duplicate and steer it to
    // the second candidate's rack (AddrT carries the global sid, FwdT the
    // trunk toward its rack — the clone crosses racks naturally).
    NETCLONE_CHECK(nc.clo == wire::CloneStatus::kClonedOriginal,
                   "recirculated request must carry CLO=1");
    ++stats_.recirculated_clones;
    nc.clo = wire::CloneStatus::kClonedCopy;
    const auto* entry = addr_table_.find(pass, nc.sid);
    if (!entry) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    pkt.ip.dst = entry->ip;
    const auto* port = fwd_table_.find(pass, route_key(entry->ip));
    if (!port) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    md.egress_port = *port;
    return;
  }

  if (nc.clo != wire::CloneStatus::kNotCloned) {
    md.drop = true;  // malformed: a fresh request must carry CLO=0
    return;
  }
  if (nc.switch_id == 0) {
    nc.switch_id = config_.switch_id;  // the shared tier identity
  }
  // Replicated deciders cannot share a SEQ register without coordination;
  // the Lamport-style client tuple is a distributed id by construction
  // and identical no matter which replica ECMP picked.
  nc.req_id = NetCloneProgram::client_tuple_id(nc.client_id, nc.client_seq);

  if (nc.is_write()) {
    ++stats_.write_requests;
    const auto* pair = grp_table_.find(pass, nc.grp);
    if (!pair) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    const auto* entry = addr_table_.find(pass, pair->srv1);
    if (!entry) {
      ++stats_.missing_route_drops;
      md.drop = true;
      return;
    }
    pkt.ip.dst = entry->ip;
    l3_forward(pkt, md, pass);
    return;
  }

  ++stats_.requests;

  const auto* pair = grp_table_.find(pass, nc.grp);
  if (!pair) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  const auto* entry1 = addr_table_.find(pass, pair->srv1);
  if (!entry1) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  pkt.ip.dst = entry1->ip;

  // Relaxed replica read: both candidates idle according to the LOCAL
  // StateT/ShadowT copy. Staleness (updates still in the chain) can only
  // miss a clone opportunity or clone onto a busy server — a performance
  // wobble, never a correctness issue.
  const std::uint16_t s1 = state_table_.read(pass, pair->srv1);
  const std::uint16_t s2 = shadow_table_.read(pass, pair->srv2);

  if (config_.enable_cloning && s1 == 0 && s2 == 0) {
    nc.clo = wire::CloneStatus::kClonedOriginal;
    nc.sid = pair->srv2;
    ++stats_.cloned_requests;
    md.multicast_group = entry1->mcast_group;
    return;
  }

  const auto* port = fwd_table_.find(pass, route_key(entry1->ip));
  if (!port) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  md.egress_port = *port;
}

void AggNetCloneProgram::handle_response(wire::Packet& pkt,
                                         pisa::PacketMetadata& md,
                                         pisa::PipelinePass& pass) {
  wire::NetCloneHeader& nc = pkt.nc();
  if (!chain_member_) {
    // Stale in-flight traffic around a crash/rejoin: a non-member must
    // not touch replicated state or enact verdicts — the controller
    // resyncs it before re-admission.
    ++stats_.non_member_response_drops;
    md.drop = true;
    return;
  }
  ++stats_.responses;

  // Every replica applies the identical write in chain order, so the
  // replicated StateT/ShadowT converge cell by cell.
  if (nc.sid < config_.max_servers) {
    state_table_.write(pass, nc.sid, nc.state);
    shadow_table_.write(pass, nc.sid, nc.state);
  }

  // Every replica replays the same store-or-clear RMW; because responses
  // enter at the head and the chain links preserve order, all replicas
  // compute the same verdict for every response.
  bool duplicate = false;
  if (nc.cloned() && config_.enable_filtering) {
    const std::size_t table = nc.idx % config_.num_filter_tables;
    const std::uint32_t slot = hash_unit_.hash32(
        pass, nc.req_id, static_cast<std::uint32_t>(config_.filter_slots));
    duplicate = filter_tables_[table]->execute(
        pass, slot, [rid = nc.req_id](std::uint32_t& cell) {
          if (cell == rid) {
            cell = 0;
            return true;
          }
          cell = rid;
          return false;
        });
    if (duplicate) {
      ++stats_.filter_hits;
    } else {
      ++stats_.fingerprints_stored;
    }
  }

  if (chain_next_) {
    // Upstream replicas relay everything — the verdict is only enacted
    // once, at the live tail, so exactly-once stays a single switch's
    // call even while fail-over reshapes the chain.
    ++stats_.chain_forwards;
    md.egress_port = *chain_next_;
    return;
  }
  if (duplicate) {
    ++stats_.filtered_responses;
    md.drop = true;
    return;
  }
  l3_forward(pkt, md, pass);
}

void AggNetCloneProgram::handle_chain_sync(wire::Packet& pkt,
                                           pisa::PacketMetadata& md) {
  wire::NetCloneHeader& nc = pkt.nc();
  ++stats_.chain_sync_markers;
  NETCLONE_CHECK(sync_hub_ != nullptr,
                 "chain sync marker reached a replica without a sync hub");
  AggChainSyncRecord* record = sync_hub_->find(nc.req_id);
  NETCLONE_CHECK(record != nullptr,
                 "chain sync marker names an unknown sync record");
  if (!record->filled) {
    // First replica on the marker's walk: the snapshot cut. Everything
    // this replica applied before the marker is in the snapshot; every
    // later update follows the marker down the same FIFO links — the
    // sequenced delta stream downstream replicas replay after install.
    fill_sync_record(*record);
    if (record->filler_next_port) {
      // Admit: the old tail adopts the rejoiner as its successor in the
      // marker's own pipeline pass, so the marker is the FIRST frame on
      // the new link and every forwarded response rides behind it.
      chain_next_ = record->filler_next_port;
    }
    if (nc.req_id > last_sync_gen_) {
      last_sync_gen_ = nc.req_id;  // own state IS this snapshot
    }
  } else if (nc.req_id <= last_sync_gen_) {
    // Already absorbed a sync at least this fresh — installing would
    // clobber newer state with an older cut.
    ++stats_.chain_sync_stale;
  } else {
    install_sync_record(*record);
    last_sync_gen_ = nc.req_id;
    if (record->admit_target == role_.replica_index) {
      // Rejoin complete: become the tail. The delta stream queued behind
      // the marker replays, in chain order, everything the snapshot
      // missed.
      chain_member_ = true;
      chain_next_ = std::nullopt;
      ++stats_.chain_sync_consumed;
      md.drop = true;
      return;
    }
  }
  if (chain_next_) {
    md.egress_port = *chain_next_;
    return;
  }
  ++stats_.chain_sync_consumed;
  md.drop = true;
}

void AggNetCloneProgram::fill_sync_record(AggChainSyncRecord& record) {
  ++stats_.chain_sync_snapshots_filled;
  record.state.resize(config_.max_servers);
  record.shadow.resize(config_.max_servers);
  for (std::size_t i = 0; i < config_.max_servers; ++i) {
    record.state[i] = state_table_.peek(i);
    record.shadow[i] = shadow_table_.peek(i);
  }
  record.filters.resize(filter_tables_.size());
  for (std::size_t t = 0; t < filter_tables_.size(); ++t) {
    record.filters[t].resize(config_.filter_slots);
    for (std::size_t slot = 0; slot < config_.filter_slots; ++slot) {
      record.filters[t][slot] = filter_tables_[t]->peek(slot);
    }
  }
  record.filled = true;
}

void AggNetCloneProgram::install_sync_record(
    const AggChainSyncRecord& record) {
  ++stats_.chain_sync_installs;
  NETCLONE_CHECK(record.state.size() == config_.max_servers &&
                     record.filters.size() == filter_tables_.size(),
                 "sync record shape does not match this replica's tables");
  for (std::size_t i = 0; i < config_.max_servers; ++i) {
    state_table_.poke_write(i, record.state[i]);
    shadow_table_.poke_write(i, record.shadow[i]);
  }
  for (std::size_t t = 0; t < filter_tables_.size(); ++t) {
    for (std::size_t slot = 0; slot < config_.filter_slots; ++slot) {
      filter_tables_[t]->poke_write(slot, record.filters[t][slot]);
      if (record.filters[t][slot] != 0) {
        ++stats_.chain_sync_fingerprints_adopted;
      }
    }
  }
}

void AggNetCloneProgram::l3_forward(const wire::Packet& pkt,
                                    pisa::PacketMetadata& md,
                                    pisa::PipelinePass& pass) {
  const auto* port = fwd_table_.find(pass, route_key(pkt.ip.dst));
  if (!port) {
    ++stats_.missing_route_drops;
    md.drop = true;
    return;
  }
  md.egress_port = *port;
}

std::uint64_t AggNetCloneProgram::soft_state_digest() const {
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  const auto fold = [&digest](std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      digest ^= (value >> shift) & 0xFFU;
      digest *= 0x100000001B3ULL;
    }
  };
  for (std::size_t i = 0; i < config_.max_servers; ++i) {
    fold(state_table_.peek(i));
    fold(shadow_table_.peek(i));
  }
  for (const auto& table : filter_tables_) {
    for (std::size_t slot = 0; slot < config_.filter_slots; ++slot) {
      fold(table->peek(slot));
    }
  }
  return digest;
}

std::uint16_t AggNetCloneProgram::peek_state(ServerId sid) const {
  return state_table_.peek(value_of(sid));
}

std::uint32_t AggNetCloneProgram::peek_filter_slot(std::size_t table,
                                                   std::size_t slot) const {
  NETCLONE_CHECK(table < filter_tables_.size(), "filter table out of range");
  return filter_tables_[table]->peek(slot);
}

std::uint64_t AggNetCloneProgram::filter_occupancy() const {
  std::uint64_t occupied = 0;
  for (const auto& table : filter_tables_) {
    for (std::size_t slot = 0; slot < config_.filter_slots; ++slot) {
      occupied += table->peek(slot) != 0 ? 1 : 0;
    }
  }
  return occupied;
}

}  // namespace netclone::core
