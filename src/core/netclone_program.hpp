// The NetClone switch data plane (paper §3, Algorithm 1).
//
// Three custom modules run in the ingress pipeline, triggered only for
// NetClone packets (UDP port 9393):
//   * request cloning   — replicate a request to both candidate servers iff
//     both tracked states are idle (StateT + ShadowT);
//   * response filtering — drop the slower duplicate response using request
//     fingerprints in hash-indexed register arrays (FilterT);
//   * state tracking    — absorb the piggybacked queue length of every
//     response into StateT/ShadowT.
// Non-NetClone packets take the traditional L3 route through FwdT.
//
// Stage layout (compile-time, mirrors the 7-stage budget of §4.1):
//
//   stage 0: SEQ       (request-id allocator, one register)
//   stage 1: GrpT      (group id -> ordered candidate pair)
//   stage 2: AddrT     (server id -> IP address)
//   stage 3: StateT    (server states, written on every response)
//   stage 4: ShadowT   (copy of StateT — the ASIC cannot read one register
//                       array twice in a pass, §3.4)
//   stage 5: HashT + FilterT[0..k)  (fingerprint filters, §3.5)
//   stage 6: FwdT      (dst IP -> egress port, the L2/L3 routing module)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/groups.hpp"
#include "pisa/program.hpp"
#include "pisa/resources.hpp"
#include "wire/ipv4.hpp"

namespace netclone::core {

/// How the switch assigns the REQ_ID (§3.7 "Protocol support").
enum class RequestIdMode {
  /// Default: the global SEQ register allocates a fresh id per request.
  kSwitchSequence,
  /// Lamport-style: REQ_ID is derived from (CLIENT_ID, CLIENT_SEQ), so a
  /// retransmission (TCP mode) and every fragment of a multi-packet
  /// request share one id.
  kClientTuple,
};

struct NetCloneConfig {
  /// Filter tables; the prototype uses two (§4.1). Client IDX values must
  /// be < this.
  std::size_t num_filter_tables = 2;
  /// Hash slots per filter table (§4.1: 2^17).
  std::size_t filter_slots = std::size_t{1} << 17;
  /// Maximum servers AddrT/StateT are sized for.
  std::size_t max_servers = 64;
  /// Maximum installed groups (n·(n-1) for n servers).
  std::size_t max_groups = 64 * 63;
  /// This ToR's identity for multi-rack deployments (§3.7); stamped into
  /// requests with SWITCH_ID == 0.
  std::uint8_t switch_id = 1;
  /// Ablation toggles (Fig. 15 disables filtering).
  bool enable_cloning = true;
  bool enable_filtering = true;
  RequestIdMode id_mode = RequestIdMode::kSwitchSequence;
  /// Multi-packet message support (§3.7): a cloned-request table makes
  /// follow-up fragments of a cloned request clone regardless of the
  /// current server states, and response fragments are filtered through
  /// ordered filter tables. Requires id_mode == kClientTuple so that all
  /// fragments share one REQ_ID.
  bool enable_multipacket = false;
  /// Slots in the cloned-request table (hash-indexed, like FilterT).
  std::size_t cloned_req_slots = std::size_t{1} << 15;
};

struct NetCloneProgramStats {
  std::uint64_t requests = 0;
  std::uint64_t cloned_requests = 0;     // fresh requests that were cloned
  std::uint64_t recirculated_clones = 0; // clone copies seen back at ingress
  std::uint64_t responses = 0;
  std::uint64_t fingerprints_stored = 0;
  std::uint64_t filtered_responses = 0;  // slower duplicates dropped
  std::uint64_t foreign_tor_packets = 0; // skipped NetClone logic (§3.7)
  std::uint64_t missing_route_drops = 0;
  std::uint64_t write_requests = 0;       // forwarded uncloned (§5.5)
  std::uint64_t continuation_fragments = 0;  // multi-packet follow-ups
  std::uint64_t cloned_fragments = 0;     // follow-ups cloned via ClonedReqT
  /// Fault injection: fingerprints planted by inject_stale_filter_entry.
  /// The auditor's filtering invariant widens by this amount.
  std::uint64_t injected_stale_entries = 0;
};

class NetCloneProgram final : public pisa::SwitchProgram {
 public:
  NetCloneProgram(pisa::Pipeline& pipeline, NetCloneConfig config);

  // -- control plane --------------------------------------------------------

  /// Registers a worker: AddrT[sid] = ip, FwdT[ip] = port, and remembers
  /// the PRE multicast group id to use when cloning toward this server
  /// (the group must contain {server port, loopback port}).
  void add_server(ServerId sid, wire::Ipv4Address ip, std::size_t port,
                  std::uint16_t clone_mcast_group);

  /// Installs the candidate-pair groups (group id = vector index).
  void install_groups(const std::vector<GroupPair>& groups);

  /// Plain L3 route for non-worker endpoints (clients, coordinator).
  void add_route(wire::Ipv4Address ip, std::size_t port);

  /// Removes a failed worker from cloning decisions (§3.6): erases its
  /// address entry and the groups referencing it.
  void remove_server(ServerId sid);

  /// Fault injection: plants `req_id` as a fingerprint in filter table
  /// `table` at the slot the hash would pick — exactly the residue a
  /// lost response or a mid-run reboot can leave behind. The next
  /// response hashing there is wrongly filtered (§3.5's collision case),
  /// which the end-to-end retransmit path must absorb.
  void inject_stale_filter_entry(std::size_t table, std::uint32_t req_id);

  // -- data plane -----------------------------------------------------------

  void on_ingress(wire::Packet& pkt, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass) override;

  /// Burst warm-up (see SwitchProgram): prefetches the home slots every
  /// packet's ingress pass is about to probe — FwdT for plain routed
  /// traffic, GrpT for requests, StateT plus the hash-indexed FilterT
  /// cells for responses.
  void warm_burst(std::span<wire::Packet> pkts) override;

  [[nodiscard]] const char* name() const override { return "NetClone"; }

  [[nodiscard]] const NetCloneProgramStats& stats() const { return stats_; }
  [[nodiscard]] const NetCloneConfig& config() const { return config_; }

  /// Test/diagnostic access to filter table cells.
  [[nodiscard]] std::uint32_t peek_filter_slot(std::size_t table,
                                               std::size_t slot) const;
  /// Test/diagnostic access to a tracked server state.
  [[nodiscard]] std::uint16_t peek_state(ServerId sid) const;

  /// The hash a response with `req_id` indexes filter tables with.
  [[nodiscard]] static std::uint32_t filter_hash(std::uint32_t req_id,
                                                 std::size_t slots);

  /// The Lamport-style request id of RequestIdMode::kClientTuple.
  [[nodiscard]] static std::uint32_t client_tuple_id(
      std::uint16_t client_id, std::uint32_t client_seq);

 private:
  struct AddrEntry {
    wire::Ipv4Address ip{};
    std::uint16_t mcast_group = 0;
  };

  void handle_request(wire::Packet& pkt, pisa::PacketMetadata& md,
                      pisa::PipelinePass& pass);
  void handle_continuation_fragment(wire::Packet& pkt,
                                    pisa::PacketMetadata& md,
                                    pisa::PipelinePass& pass);
  void handle_response(wire::Packet& pkt, pisa::PacketMetadata& md,
                       pisa::PipelinePass& pass);
  void l3_forward(const wire::Packet& pkt, pisa::PacketMetadata& md,
                  pisa::PipelinePass& pass);
  void assign_request_id(wire::NetCloneHeader& nc, pisa::PipelinePass& pass);

  NetCloneConfig config_;

  pisa::RegisterScalar<std::uint32_t> seq_;
  pisa::ExactMatchTable<GroupPair> grp_table_;
  pisa::ExactMatchTable<AddrEntry> addr_table_;
  pisa::RegisterArray<std::uint16_t> state_table_;
  pisa::RegisterArray<std::uint16_t> shadow_table_;
  pisa::HashUnit hash_unit_;
  std::vector<std::unique_ptr<pisa::RegisterArray<std::uint32_t>>>
      filter_tables_;
  /// §3.7 multi-packet: ids of cloned-but-unfinished requests, so every
  /// later fragment clones regardless of the tracked server states.
  /// Allocated only when config.enable_multipacket.
  std::unique_ptr<pisa::RegisterArray<std::uint32_t>> cloned_req_table_;
  pisa::ExactMatchTable<std::size_t> fwd_table_;

  NetCloneProgramStats stats_;
};

}  // namespace netclone::core
