#include "core/groups.hpp"

#include "common/check.hpp"

namespace netclone::core {

std::vector<GroupPair> build_group_pairs(
    const std::vector<ServerId>& servers) {
  NETCLONE_CHECK(servers.size() >= 2,
                 "NetClone requires at least two servers for redundancy");
  std::vector<GroupPair> groups;
  groups.reserve(group_count(servers.size()));
  for (const ServerId a : servers) {
    for (const ServerId b : servers) {
      if (a == b) {
        continue;
      }
      groups.push_back(GroupPair{value_of(a), value_of(b)});
    }
  }
  return groups;
}

std::vector<GroupPair> build_group_pairs(std::size_t num_servers) {
  NETCLONE_CHECK(num_servers >= 2,
                 "NetClone requires at least two servers for redundancy");
  NETCLONE_CHECK(num_servers <= 256, "server id space is 8 bits");
  std::vector<GroupPair> groups;
  groups.reserve(group_count(num_servers));
  for (std::size_t i = 0; i < num_servers; ++i) {
    for (std::size_t j = 0; j < num_servers; ++j) {
      if (i == j) {
        continue;
      }
      groups.push_back(GroupPair{static_cast<std::uint8_t>(i),
                                 static_cast<std::uint8_t>(j)});
    }
  }
  return groups;
}

}  // namespace netclone::core
