// Candidate-server groups (§3.3).
//
// A group id names an *ordered* pair of candidate servers. The operator
// installs 2·C(n,2) groups — every unordered pair in both orders — because
// the switch forwards a non-cloned request to the FIRST candidate; with only
// one order installed, all non-cloned traffic would pile onto the
// lexicographically smaller server of each pair.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace netclone::core {

struct GroupPair {
  std::uint8_t srv1 = 0;
  std::uint8_t srv2 = 0;

  friend bool operator==(const GroupPair&, const GroupPair&) = default;
};

/// Builds the full group set for `num_servers` workers: all ordered pairs
/// (i, j), i != j — exactly 2·C(n,2) entries. Group ids are the vector
/// indices. Requires num_servers >= 2 (NetClone needs redundancy).
[[nodiscard]] std::vector<GroupPair> build_group_pairs(
    std::size_t num_servers);

/// Same, over an explicit set of (possibly non-contiguous) server ids —
/// what the control plane installs after removing a failed server (§3.6).
[[nodiscard]] std::vector<GroupPair> build_group_pairs(
    const std::vector<ServerId>& servers);

/// Number of groups for n servers: 2·C(n,2) = n·(n-1).
[[nodiscard]] constexpr std::size_t group_count(std::size_t num_servers) {
  return num_servers * (num_servers - 1);
}

}  // namespace netclone::core
