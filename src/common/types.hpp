// Strong types shared across the NetClone reproduction.
//
// SimTime is the simulation clock: a signed 64-bit count of nanoseconds.
// It is a distinct type (not a raw integer) so that times, durations, and
// identifiers cannot be mixed up at call sites.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace netclone {

/// A point on (or interval of) the simulated clock, in nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const {
    return static_cast<double>(ns_) / 1e3;
  }
  [[nodiscard]] constexpr double ms() const {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double sec() const {
    return static_cast<double>(ns_) / 1e9;
  }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t v) {
    return SimTime{v};
  }
  [[nodiscard]] static constexpr SimTime microseconds(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e3)};
  }
  [[nodiscard]] static constexpr SimTime milliseconds(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime seconds(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e9)};
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime{static_cast<std::int64_t>(v)};
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime{static_cast<std::int64_t>(v) * 1000};
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime{static_cast<std::int64_t>(v) * 1000000};
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime{static_cast<std::int64_t>(v) * 1000000000};
}
}  // namespace literals

/// Identifier of a node (host or switch) in the simulated topology.
enum class NodeId : std::uint32_t {};
/// Identifier of a worker server within the NetClone deployment
/// (the SID field of the NetClone header).
enum class ServerId : std::uint8_t {};
/// Identifier of a candidate-server group (the GRP field).
enum class GroupId : std::uint16_t {};

[[nodiscard]] constexpr std::uint32_t value_of(NodeId id) {
  return static_cast<std::uint32_t>(id);
}
[[nodiscard]] constexpr std::uint8_t value_of(ServerId id) {
  return static_cast<std::uint8_t>(id);
}
[[nodiscard]] constexpr std::uint16_t value_of(GroupId id) {
  return static_cast<std::uint16_t>(id);
}

/// Formats a SimTime for human-readable output ("12.345 us", "1.200 ms").
[[nodiscard]] std::string to_string(SimTime t);

}  // namespace netclone
