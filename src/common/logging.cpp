#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace netclone {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load()) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace netclone
