// Hash primitives mirroring what a Tofino-class switch ASIC provides.
//
// The hardware exposes CRC-based hash units; the filter tables in the
// NetClone data plane index with CRC32 over the request ID (§3.5). We
// implement CRC32 (IEEE, reflected) and CRC16 (CCITT) plus FNV-1a for
// host-side (non-ASIC) hashing such as the KV store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace netclone {

/// CRC32 (IEEE 802.3 polynomial, reflected, init 0xFFFFFFFF, final XOR).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data);
[[nodiscard]] std::uint32_t crc32_u32(std::uint32_t value);
[[nodiscard]] std::uint32_t crc32_u64(std::uint64_t value);

/// CRC16/CCITT-FALSE (poly 0x1021, init 0xFFFF), the other hash profile
/// commonly configured on switch hash units.
[[nodiscard]] std::uint16_t crc16(std::span<const std::byte> data);

/// FNV-1a 64-bit, for host-side hash tables.
[[nodiscard]] std::uint64_t fnv1a(std::string_view data);
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::byte> data);

/// Fibonacci/multiplicative finalizer used to spread sequential IDs.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace netclone
