#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace netclone {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double exact_percentile(std::span<const double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted{samples.begin(), samples.end()};
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::string to_string(SimTime t) {
  char buf[64];
  const std::int64_t ns = t.ns();
  const std::int64_t mag = ns < 0 ? -ns : ns;
  if (mag < 1000) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  } else if (mag < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3f us", t.us());
  } else if (mag < 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", t.ms());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", t.sec());
  }
  return buf;
}

}  // namespace netclone
