#include "common/hash.hpp"

#include <array>

namespace netclone {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrc32Table = make_crc32_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const std::byte b : data) {
    crc = kCrc32Table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFU] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::uint32_t crc32_u32(std::uint32_t value) {
  std::array<std::byte, 4> buf{};
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((value >> (8 * i)) & 0xFFU);
  }
  return crc32(buf);
}

std::uint32_t crc32_u64(std::uint64_t value) {
  std::array<std::byte, 8> buf{};
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((value >> (8 * i)) & 0xFFU);
  }
  return crc32(buf);
}

std::uint16_t crc16(std::span<const std::byte> data) {
  std::uint16_t crc = 0xFFFFU;
  for (const std::byte b : data) {
    crc = static_cast<std::uint16_t>(crc ^
                                     (static_cast<std::uint16_t>(b) << 8));
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000U) != 0
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021U)
                : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view data) {
  return fnv1a(std::as_bytes(std::span{data.data(), data.size()}));
}

}  // namespace netclone
