// Always-on invariant checks.
//
// The PISA switch model relies on these to enforce hardware constraints
// (e.g. "a register array may be accessed once per pipeline pass"); they
// must fire in release builds too, so they are not assert()s.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace netclone {

/// Thrown when an internal invariant is violated. In the switch model this
/// represents a program that would not compile / behave on real hardware.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(
    const char* expr, const std::string& msg,
    std::source_location loc = std::source_location::current());

}  // namespace netclone

/// Aborts the operation (by throwing CheckFailure) when `expr` is false.
#define NETCLONE_CHECK(expr, msg)                   \
  do {                                              \
    if (!(expr)) {                                  \
      ::netclone::check_failed(#expr, (msg));       \
    }                                               \
  } while (false)
