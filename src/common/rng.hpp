// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256++ rather than std::mt19937 because the simulation draws
// hundreds of millions of variates per experiment and xoshiro is both faster
// and has a tiny, copyable state. Determinism across platforms matters: every
// experiment in EXPERIMENTS.md must be re-runnable bit-for-bit, so no
// libstdc++ distribution objects are used (their outputs are not portable);
// all distributions are implemented here from uniform doubles.
#pragma once

#include <array>
#include <cstdint>

namespace netclone {

/// xoshiro256++ by Blackman & Vigna (public domain reference algorithm),
/// seeded through SplitMix64 so that any 64-bit seed yields a well-mixed
/// state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform 32-bit value.
  [[nodiscard]] std::uint32_t next_u32();

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double();

  /// Uniform integer in [0, bound) with Lemire's unbiased method.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p);

  /// Exponential variate with the given mean (not rate).
  [[nodiscard]] double exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Forks an independent stream; the child is seeded from this stream so
  /// that components (client 0, client 1, ...) never share a sequence.
  [[nodiscard]] Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace netclone
