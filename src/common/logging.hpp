// Minimal leveled logging. Simulation components log rarely (topology
// construction, failure injection); hot paths must stay log-free, so there
// is deliberately no macro that hides a cost behind a level check.
#pragma once

#include <string>

namespace netclone {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Writes one line to stderr as "[LEVEL] message".
void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace netclone
