#include "common/check.hpp"

#include <sstream>

namespace netclone {

void check_failed(const char* expr, const std::string& msg,
                  std::source_location loc) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << loc.file_name() << ':'
     << loc.line() << " in " << loc.function_name();
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw CheckFailure{os.str()};
}

}  // namespace netclone
