// FlatMap64 — open-addressing hash map with 64-bit keys, the storage
// engine behind the data-plane match tables (pisa::ExactMatchTable) and
// other u64-keyed hot-path maps (switch multicast groups, the LÆDGE
// coordinator's outstanding-request table).
//
// Why not std::unordered_map: the data plane performs one lookup per
// packet per table, and the node-based layout costs a heap indirection
// plus an allocator round-trip per mutation. This table keeps entries in
// one contiguous power-of-two slot array, probes linearly from a
// mix64-hashed home slot, and erases with backward shifting so probe
// chains never accumulate tombstones. The control plane can presize it
// (`reserve`) so the data plane never rehashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/prefetch.hpp"

namespace netclone {

template <typename Value>
class FlatMap64 {
 public:
  /// `capacity_hint` presizes the slot array so that `capacity_hint`
  /// entries fit without growth (0 defers allocation to first insert).
  explicit FlatMap64(std::size_t capacity_hint = 0) {
    if (capacity_hint > 0) {
      reserve(capacity_hint);
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Physical slots currently allocated (a power of two); test hook.
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  /// Ensures `n` entries fit without growth.
  void reserve(std::size_t n) {
    std::size_t want = kMinSlots;
    while (n >= grow_threshold(want)) {
      want <<= 1;
    }
    if (want > slots_.size()) {
      rehash(want);
    }
  }

  /// Pointer to the mapped value, or nullptr on miss. Stable until the
  /// next mutation.
  [[nodiscard]] const Value* find(std::uint64_t key) const {
    if (size_ == 0) {
      return nullptr;
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = bucket(key);; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (!slot.used) {
        return nullptr;
      }
      if (slot.key == key) {
        return &slot.value;
      }
    }
  }

  [[nodiscard]] Value* find(std::uint64_t key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  /// Pulls `key`'s home slot toward L1 ahead of a find(). Batched lookups
  /// issue the prefetches for a whole run of keys first, overlapping the
  /// cache misses instead of paying them one probe at a time. Advisory
  /// only.
  void prefetch(std::uint64_t key) const {
    if (!slots_.empty()) {
      prefetch_read(&slots_[bucket(key)]);
    }
  }

  /// Mapped value for `key`, default-constructing it on a miss — the
  /// flat-map equivalent of unordered_map::operator[]. `inserted` reports
  /// which case occurred. The reference is stable until the next
  /// mutation.
  [[nodiscard]] Value& get_or_insert(std::uint64_t key, bool& inserted) {
    if (slots_.empty() || size_ + 1 >= grow_threshold(slots_.size())) {
      rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = bucket(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        inserted = false;
        return slots_[i].value;
      }
      i = (i + 1) & mask;
    }
    slots_[i].key = key;
    slots_[i].used = true;
    ++size_;
    inserted = true;
    return slots_[i].value;
  }

  /// Inserts or overwrites; returns true when the key was new.
  bool insert_or_assign(std::uint64_t key, Value value) {
    if (slots_.empty() || size_ + 1 >= grow_threshold(slots_.size())) {
      rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = bucket(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        slots_[i].value = std::move(value);
        return false;
      }
      i = (i + 1) & mask;
    }
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    slots_[i].used = true;
    ++size_;
    return true;
  }

  /// Removes `key` via backward-shift deletion (no tombstones: every
  /// entry whose probe chain ran through the hole is shifted back, so
  /// lookups stay O(chain) forever regardless of churn). Returns whether
  /// the key was present.
  bool erase(std::uint64_t key) {
    if (size_ == 0) {
      return false;
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = bucket(key);
    while (true) {
      if (!slots_[i].used) {
        return false;
      }
      if (slots_[i].key == key) {
        break;
      }
      i = (i + 1) & mask;
    }
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (!slots_[j].used) {
        break;
      }
      // Shift j back into the hole iff its home slot precedes the hole
      // in probe order (cyclic distance comparison).
      const std::size_t home = bucket(slots_[j].key);
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i].key = slots_[j].key;
        slots_[i].value = std::move(slots_[j].value);
        i = j;
      }
    }
    slots_[i].used = false;
    slots_[i].value = Value{};
    --size_;
    return true;
  }

  void clear() {
    for (Slot& slot : slots_) {
      if (slot.used) {
        slot.used = false;
        slot.value = Value{};
      }
    }
    size_ = 0;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.used) {
        fn(slot.key, slot.value);
      }
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Value value{};
    bool used = false;
  };

  static constexpr std::size_t kMinSlots = 8;

  /// Max load factor 3/4: grow once size reaches 3/4 of the slot count.
  [[nodiscard]] static std::size_t grow_threshold(std::size_t slots) {
    return slots - slots / 4;
  }

  [[nodiscard]] std::size_t bucket(std::uint64_t key) const {
    return static_cast<std::size_t>(mix64(key)) & (slots_.size() - 1);
  }

  void rehash(std::size_t new_slot_count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slot_count, Slot{});
    const std::size_t mask = new_slot_count - 1;
    for (Slot& slot : old) {
      if (!slot.used) {
        continue;
      }
      std::size_t i = bucket(slot.key);
      while (slots_[i].used) {
        i = (i + 1) & mask;
      }
      slots_[i].key = slot.key;
      slots_[i].value = std::move(slot.value);
      slots_[i].used = true;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace netclone
