#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace netclone {

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) {
  if (v < 128) {
    return static_cast<std::size_t>(v);
  }
  const int shift = static_cast<int>(std::bit_width(v)) - 7;
  const std::uint64_t sub = v >> shift;  // in [64, 127]
  return static_cast<std::size_t>(64 * static_cast<std::uint64_t>(shift) +
                                  sub);
}

std::uint64_t LatencyHistogram::bucket_midpoint(std::size_t idx) {
  if (idx < 128) {
    return idx;
  }
  const auto shift = static_cast<int>(idx / 64 - 1);
  const std::uint64_t sub = 64 + idx % 64;
  const std::uint64_t lo = sub << shift;
  const std::uint64_t width = std::uint64_t{1} << shift;
  return lo + width / 2;
}

void LatencyHistogram::record(SimTime latency) {
  const std::int64_t raw = std::max<std::int64_t>(latency.ns(), 0);
  const auto v = static_cast<std::uint64_t>(raw);
  const std::size_t idx = bucket_index(v);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1, 0);
  }
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = raw;
    max_ = raw;
  } else {
    min_ = std::min(min_, raw);
    max_ = std::max(max_, raw);
  }
  ++count_;
  const auto d = static_cast<double>(raw);
  sum_ += d;
  sum_sq_ += d * d;
}

SimTime LatencyHistogram::min() const {
  return count_ == 0 ? SimTime::zero() : SimTime{min_};
}

double LatencyHistogram::mean_ns() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::stddev_ns() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  const double mean = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - mean * mean);
  return std::sqrt(var);
}

SimTime LatencyHistogram::percentile(double q) const {
  if (count_ == 0) {
    return SimTime::zero();
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based; q=1 must land on the last sample.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return SimTime{static_cast<std::int64_t>(
          std::min<std::uint64_t>(bucket_midpoint(i),
                                  static_cast<std::uint64_t>(max_)))};
    }
  }
  return SimTime{max_};
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void LatencyHistogram::reset() {
  buckets_.clear();
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

}  // namespace netclone
