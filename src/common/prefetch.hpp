// Cache-prefetch hint for batched probes.
//
// Burst processing probes several tables per packet across a run of
// packets; issuing the home-slot prefetches for the whole run before the
// first probe overlaps the memory latency instead of paying it serially.
// Purely advisory: a no-op compiles away on toolchains without the
// builtin, and correctness never depends on it.
#pragma once

namespace netclone {

inline void prefetch_read(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

}  // namespace netclone
