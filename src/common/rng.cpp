#include "common/rng.hpp"

#include <cmath>

namespace netclone {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint32_t Rng::next_u32() {
  return static_cast<std::uint32_t>(next_u64() >> 32);
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo by contract
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  // Inverse transform; 1 - u is in (0, 1] so log() never sees zero.
  return -mean * std::log(1.0 - next_double());
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mean + stddev * u * factor;
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace netclone
