// Small statistics helpers used by the experiment harness.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace netclone {

/// Single-pass mean/variance accumulator (Welford's algorithm), used where
/// we need moments but not quantiles (e.g. Fig. 13 (b): mean ± stdev of the
/// tail over 10 runs).
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample set (sorts a copy; fine for harness-sized data).
[[nodiscard]] double exact_percentile(std::span<const double> samples,
                                      double q);

}  // namespace netclone
