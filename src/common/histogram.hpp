// Log-linear latency histogram (HdrHistogram-style).
//
// Latency distributions in this system span ~100 ns (switch pass) to ~100 ms
// (deep queues at saturation), so a fixed-width histogram is useless. We use
// 64 linear sub-buckets per octave, which bounds the relative quantile error
// at 1/64 (~1.6%) at any magnitude while keeping record() to a handful of
// bit operations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace netclone {

class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  /// Records one latency sample. Negative durations are clamped to zero
  /// (they cannot occur in a causally-correct simulation; the clamp keeps
  /// the histogram total consistent if a caller misuses it).
  void record(SimTime latency);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] SimTime min() const;
  [[nodiscard]] SimTime max() const { return SimTime{max_}; }
  [[nodiscard]] double mean_ns() const;
  [[nodiscard]] double stddev_ns() const;

  /// Value at quantile q in [0, 1]; q=0.99 is the paper's headline metric.
  /// Returns zero when the histogram is empty.
  [[nodiscard]] SimTime percentile(double q) const;

  [[nodiscard]] SimTime p50() const { return percentile(0.50); }
  [[nodiscard]] SimTime p99() const { return percentile(0.99); }
  [[nodiscard]] SimTime p999() const { return percentile(0.999); }

  /// Adds all samples of `other` into this histogram.
  void merge(const LatencyHistogram& other);

  void reset();

 private:
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v);
  [[nodiscard]] static std::uint64_t bucket_midpoint(std::size_t idx);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace netclone
