// Burst delivery: a run of frames handed across a layer boundary in one
// call.
//
// A link whose FIFO holds several frames due back-to-back delivers them
// as one FrameBurst when the scheduler confirms, entry by entry, that the
// next frame's reserved delivery event would fire next anyway — the
// scheduler then absorbs that event (advancing the clock to it) and the
// frame rides along in the burst instead of costing its own dispatch (see
// Link::deliver_head). Each frame carries its own arrival time; receivers
// that batch (the PISA switch) override Node::handle_burst, process the
// run in order as if each frame had arrived at its recorded instant, and
// amortize parse, table-probe, and egress work across it. Everyone else
// gets the default per-frame unrolling — and, via a zero
// Node::burst_horizon(), never sees a multi-time burst in the first
// place.
//
// FrameBurst is a move-only small-vector: the common burst (a handful of
// back-to-back frames) lives entirely in inline storage, so handing a
// burst up the stack allocates nothing. Long runs spill to a heap vector.
//
// The NETCLONE_BURST toggle (environment variable, overridable in
// process) disables coalescing entirely, leaving the single-frame path as
// the oracle — runs are bit-for-bit identical either way; the toggle only
// changes how much work each scheduler event performs.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "wire/framebuf.hpp"

namespace netclone::phys {

/// Global burst-mode switch. Initialized from the NETCLONE_BURST
/// environment variable ("0", "off", "OFF", "false" disable; anything
/// else, or unset, enables). Tests flip it at runtime to compare the two
/// paths in one process.
[[nodiscard]] bool burst_enabled();
void set_burst_enabled(bool enabled);

/// One frame of a burst, stamped with its delivery instant. The stamps
/// within a burst are non-decreasing and never exceed the clock at
/// delivery time (the scheduler was advanced through each of them).
struct TimedFrame {
  SimTime when{};
  wire::FrameHandle frame{};
};

/// A run of frames delivered together. Move-only; inline storage covers
/// the common case so burst assembly is allocation-free.
class FrameBurst {
 public:
  /// Inline capacity: back-to-back runs within a receiver's latency
  /// horizon are nearly always this short; longer runs spill to the heap
  /// vector.
  static constexpr std::size_t kInlineFrames = 8;

  FrameBurst() = default;
  FrameBurst(FrameBurst&&) noexcept = default;
  FrameBurst& operator=(FrameBurst&&) noexcept = default;
  FrameBurst(const FrameBurst&) = delete;
  FrameBurst& operator=(const FrameBurst&) = delete;

  void push_back(SimTime when, wire::FrameHandle frame) {
    if (size_ < kInlineFrames) {
      inline_[size_] = TimedFrame{when, std::move(frame)};
    } else {
      spill_.push_back(TimedFrame{when, std::move(frame)});
    }
    ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] TimedFrame& operator[](std::size_t i) {
    return i < kInlineFrames ? inline_[i] : spill_[i - kInlineFrames];
  }
  [[nodiscard]] const TimedFrame& operator[](std::size_t i) const {
    return i < kInlineFrames ? inline_[i] : spill_[i - kInlineFrames];
  }

  void clear() {
    for (std::size_t i = 0; i < size_ && i < kInlineFrames; ++i) {
      inline_[i] = TimedFrame{};
    }
    spill_.clear();
    size_ = 0;
  }

 private:
  TimedFrame inline_[kInlineFrames];
  std::vector<TimedFrame> spill_;
  std::size_t size_ = 0;
};

}  // namespace netclone::phys
