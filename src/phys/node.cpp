#include "phys/node.hpp"

#include <utility>

#include "phys/link.hpp"

namespace netclone::phys {

std::size_t Node::attach_egress(Link* link) {
  egress_.push_back(link);
  return egress_.size() - 1;
}

void Node::send(std::size_t port, wire::FrameHandle frame) {
  if (port >= egress_.size() || egress_[port] == nullptr) {
    return;  // unplugged port: frame is lost
  }
  egress_[port]->transmit(std::move(frame));
}

void Node::send_burst(std::size_t port,
                      std::span<wire::FrameHandle> frames) {
  if (port >= egress_.size() || egress_[port] == nullptr) {
    return;  // unplugged port: the whole burst is lost
  }
  Link* link = egress_[port];
  for (wire::FrameHandle& frame : frames) {
    link->transmit(std::move(frame));
  }
}

void Node::send_burst(std::size_t port, FrameBurst& burst) {
  if (port >= egress_.size() || egress_[port] == nullptr) {
    return;  // unplugged port: the whole burst is lost
  }
  Link* link = egress_[port];
  for (std::size_t i = 0; i < burst.size(); ++i) {
    link->transmit(std::move(burst[i].frame));
  }
}

}  // namespace netclone::phys
