// A node in the simulated topology: a host NIC endpoint or a switch.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "wire/framebuf.hpp"

namespace netclone::phys {

class Link;

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Called by a link when a frame arrives on `port`. The handle may share
  /// its bytes with other in-flight copies of the frame (multicast); treat
  /// the bytes as immutable and mutate only via Packet's copy-on-write
  /// serialize path. (wire::Frame converts implicitly, so legacy callers
  /// passing owned vectors still work.)
  virtual void handle_frame(std::size_t port, wire::FrameHandle frame) = 0;

  /// Registers an egress link and returns the new port index. Called by
  /// Topology while wiring; a node's ingress port i receives from the peer
  /// wired at the same index.
  std::size_t attach_egress(Link* link);

  [[nodiscard]] std::size_t port_count() const { return egress_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  /// Transmits a frame out of `port`. Silently counts (and drops) frames
  /// sent on an unattached port — that models unplugged cables, not a bug.
  void send(std::size_t port, wire::FrameHandle frame);

  /// Transmits a run of frames out of `port` back-to-back: one egress
  /// lookup for the whole batch, and the link's batched FIFO arms at most
  /// one delivery event for all of them. The handles are moved out of
  /// `frames`. Fragmented responses use this.
  void send_burst(std::size_t port, std::span<wire::FrameHandle> frames);

 private:
  std::string name_;
  std::vector<Link*> egress_;
};

}  // namespace netclone::phys
