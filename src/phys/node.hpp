// A node in the simulated topology: a host NIC endpoint or a switch.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "phys/burst.hpp"
#include "wire/framebuf.hpp"

namespace netclone::phys {

class Link;

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Called by a link when a frame arrives on `port`. The handle may share
  /// its bytes with other in-flight copies of the frame (multicast); treat
  /// the bytes as immutable and mutate only via Packet's copy-on-write
  /// serialize path. (wire::Frame converts implicitly, so legacy callers
  /// passing owned vectors still work.)
  virtual void handle_frame(std::size_t port, wire::FrameHandle frame) = 0;

  /// Called by a link when several frames arrive together (back-to-back
  /// delivery instants with provably nothing ordered between them — see
  /// Link::deliver_head; each frame carries its arrival time). The
  /// default unrolls to per-frame handle_frame calls, which is exact
  /// because a zero burst_horizon() receiver only ever sees same-instant
  /// bursts. Receivers that batch (the PISA switch) override this,
  /// process frames in order as if each arrived at its recorded instant,
  /// and amortize parse and table-probe work across the run — with
  /// identical externally visible behavior.
  virtual void handle_burst(std::size_t port, FrameBurst&& burst) {
    for (std::size_t i = 0; i < burst.size(); ++i) {
      handle_frame(port, std::move(burst[i].frame));
    }
  }

  /// How far past a burst's first frame the delivering link may coalesce
  /// follow-on frames: the receiver's promise that processing a frame
  /// arriving at time t schedules nothing before t + horizon. Zero (the
  /// default, and always safe) restricts bursts to a single delivery
  /// instant; the switch returns its pipeline latency — every consequence
  /// of a pipeline pass is at least that far out.
  [[nodiscard]] virtual SimTime burst_horizon() const {
    return SimTime::zero();
  }

  /// Registers an egress link and returns the new port index. Called by
  /// Topology while wiring; a node's ingress port i receives from the peer
  /// wired at the same index.
  std::size_t attach_egress(Link* link);

  [[nodiscard]] std::size_t port_count() const { return egress_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  /// Transmits a frame out of `port`. Silently counts (and drops) frames
  /// sent on an unattached port — that models unplugged cables, not a bug.
  void send(std::size_t port, wire::FrameHandle frame);

  /// Transmits a run of frames out of `port` back-to-back: one egress
  /// lookup for the whole batch, and the link's batched FIFO arms at most
  /// one delivery event for all of them. The handles are moved out of
  /// `frames`. Fragmented responses use this.
  void send_burst(std::size_t port, std::span<wire::FrameHandle> frames);

  /// send_burst() over a FrameBurst: a burst-capable node forwarding a
  /// received run out of one port in a single instant (arrival stamps are
  /// dropped — transmit re-times each frame against the egress link's
  /// busy-until). The handles are moved out of `burst`.
  void send_burst(std::size_t port, FrameBurst& burst);

 private:
  std::string name_;
  std::vector<Link*> egress_;
};

}  // namespace netclone::phys
