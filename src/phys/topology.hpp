// Topology: owns nodes and links and wires them into duplex connections.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "phys/link.hpp"
#include "phys/node.hpp"
#include "sim/scheduler.hpp"

namespace netclone::phys {

/// The pair of port indices created by a duplex connection:
/// `first` is the port on node a, `second` the port on node b.
struct DuplexPorts {
  std::size_t port_on_a = 0;
  std::size_t port_on_b = 0;
  Link* a_to_b = nullptr;
  Link* b_to_a = nullptr;
};

class Topology {
 public:
  explicit Topology(sim::Scheduler& scheduler) : sim_(scheduler) {}

  /// Constructs a node of type T owned by the topology.
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Creates a full-duplex connection between two nodes.
  DuplexPorts connect(Node& a, Node& b, LinkParams params = {});

  /// connect(), but each direction's Link schedules on the given
  /// scheduler — the sender's shard in a sharded run, where a link's
  /// events (delivery FIFO, busy window) must live on the queue of the
  /// node that transmits into it.
  DuplexPorts connect(sim::Scheduler& sched_a_to_b,
                      sim::Scheduler& sched_b_to_a, Node& a, Node& b,
                      LinkParams params = {});

  [[nodiscard]] sim::Scheduler& scheduler() { return sim_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const {
    return links_;
  }

 private:
  sim::Scheduler& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace netclone::phys
