#include "phys/burst.hpp"

#include <cstdlib>
#include <cstring>

namespace netclone::phys {

namespace {

bool burst_from_env() {
  const char* value = std::getenv("NETCLONE_BURST");
  if (value == nullptr) {
    return true;
  }
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "OFF") != 0 && std::strcmp(value, "false") != 0;
}

bool g_burst_enabled = burst_from_env();

}  // namespace

bool burst_enabled() { return g_burst_enabled; }

void set_burst_enabled(bool enabled) { g_burst_enabled = enabled; }

}  // namespace netclone::phys
