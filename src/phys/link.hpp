// Unidirectional point-to-point link.
//
// Models the three delay components of a real cable + NIC path:
//   * serialization: wire_bits / rate, back-to-back frames queue behind the
//     transmitter ("busy until" tracking);
//   * propagation + fixed PHY/NIC latency: `delay`;
//   * a bounded egress queue: frames arriving while `capacity` frames are
//     already waiting are dropped (drop-tail), as on a real ToR port.
#pragma once

#include <cstdint>

#include "sim/scheduler.hpp"
#include "wire/framebuf.hpp"

namespace netclone::phys {

class Node;

struct LinkParams {
  /// Line rate in bits per second (default 100GbE).
  double rate_bps = 100e9;
  /// Propagation + fixed per-hop latency.
  SimTime delay = SimTime::nanoseconds(850);
  /// Egress queue capacity in packets (excluding the one in flight).
  std::size_t queue_capacity = 1024;
};

struct LinkStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_frames = 0;
};

class Link {
 public:
  Link(sim::Scheduler& scheduler, LinkParams params);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Wires the receive side. `dst_port` is the port index on `dst` at which
  /// frames arrive.
  void connect_to(Node* dst, std::size_t dst_port);

  /// Enqueues a frame for transmission; may drop if the queue is full.
  /// The handle is moved into the in-flight event — no byte copies; a
  /// multicast emit passes one shared handle per link.
  void transmit(wire::FrameHandle frame);

  /// Administratively disables the link; queued and in-flight frames are
  /// lost (models pulling the cable / peer down).
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const LinkParams& params() const { return params_; }

 private:
  [[nodiscard]] SimTime serialization_time(std::size_t bytes) const;

  sim::Scheduler& sim_;
  LinkParams params_;
  Node* dst_ = nullptr;
  std::size_t dst_port_ = 0;
  SimTime busy_until_ = SimTime::zero();
  std::size_t queued_ = 0;
  bool up_ = true;
  std::uint64_t epoch_ = 0;  // bumped on set_up(false): voids in-flight
  LinkStats stats_;
};

}  // namespace netclone::phys
