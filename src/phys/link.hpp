// Unidirectional point-to-point link.
//
// Models the three delay components of a real cable + NIC path:
//   * serialization: wire_bits / rate, back-to-back frames queue behind the
//     transmitter ("busy until" tracking);
//   * propagation + fixed PHY/NIC latency: `delay`;
//   * a bounded egress queue: frames arriving while `capacity` frames are
//     already waiting are dropped (drop-tail), as on a real ToR port.
//
// Delivery is batched: in-flight frames wait in a per-link FIFO and a
// single scheduler event is armed for the earliest delivery, so a busy
// link holds one pending event no matter how deep its queue — transmit
// is a deque push plus a tie-break sequence reservation. Each firing
// delivers the head frame and rearms for the next under the sequence
// number reserved at its transmit, so same-timestamp ordering across
// links is bit-for-bit what eager per-frame scheduling would produce.
// With burst mode on (see phys/burst.hpp), a firing additionally drains
// every successive FIFO entry — within the receiver's burst horizon —
// whose reserved delivery event the scheduler confirms would fire next
// anyway; the scheduler absorbs those events (advancing the clock
// through each) and the run reaches the receiver as one FrameBurst with
// per-frame arrival stamps. Same order, same seq stream, fewer events.
// Taking the link down simply clears the FIFO, which is also what makes
// a down/up cycle safe: no stale per-frame events survive to corrupt the
// revived link's drop-tail occupancy.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "common/rng.hpp"
#include "sim/remote_sink.hpp"
#include "sim/scheduler.hpp"
#include "wire/framebuf.hpp"

namespace netclone::phys {

class Node;

struct LinkParams {
  /// Line rate in bits per second (default 100GbE).
  double rate_bps = 100e9;
  /// Propagation + fixed per-hop latency.
  SimTime delay = SimTime::nanoseconds(850);
  /// Egress queue capacity in packets (excluding the one in flight).
  std::size_t queue_capacity = 1024;
};

/// Probabilistic per-frame impairments. All rates are probabilities in
/// [0, 1]; an all-zero config means the link is clean and transmit pays
/// only a single pointer test.
struct LinkImpairments {
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  double reorder_rate = 0.0;
  double duplicate_rate = 0.0;

  [[nodiscard]] bool any() const {
    return drop_rate > 0.0 || corrupt_rate > 0.0 || reorder_rate > 0.0 ||
           duplicate_rate > 0.0;
  }
};

struct LinkStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_frames = 0;
  /// Frames lost because the link went down while they were in flight.
  std::uint64_t flushed_frames = 0;
  /// Frames lost to the impairment model (counted apart from drop-tail).
  std::uint64_t impaired_drops = 0;
  std::uint64_t corrupted_frames = 0;
  std::uint64_t duplicated_frames = 0;
  std::uint64_t reordered_frames = 0;
  /// Burst mode only: frames delivered by riding an earlier frame's
  /// delivery event (their own event absorbed). Telemetry for the
  /// tracing layer's per-link coalescing rate — deliberately excluded
  /// from the chaos digest, since burst on/off must stay bit-identical.
  std::uint64_t coalesced_frames = 0;
};

class Link {
 public:
  Link(sim::Scheduler& scheduler, LinkParams params);
  ~Link();

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Wires the receive side. `dst_port` is the port index on `dst` at which
  /// frames arrive.
  void connect_to(Node* dst, std::size_t dst_port);

  /// Routes this link's in-flight FIFO through a cross-shard sink
  /// (sharded runs where dst lives on another shard): frames hand off as
  /// byte copies at transmit and the occupancy queries delegate to the
  /// sink. Must be set before any frame is transmitted. The drop-tail
  /// decision, busy-window tracking, and impairment draws stay here, on
  /// the sender, so the RNG and seq streams are identical to the
  /// intra-shard wiring.
  void set_remote_sink(sim::RemoteSink* sink);

  /// Enqueues a frame for transmission; may drop if the queue is full.
  /// The handle is moved into the in-flight FIFO — no byte copies; a
  /// multicast emit passes one shared handle per link.
  void transmit(wire::FrameHandle frame);

  /// Administratively disables the link; queued and in-flight frames are
  /// lost (models pulling the cable / peer down).
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  /// Installs (or, with an all-zero config, removes) the impairment
  /// model. The first call seeds the link's dedicated RNG stream from
  /// `seed`; later calls reconfigure rates without restarting the
  /// stream, so a fault plan that ramps rates mid-run stays on one
  /// deterministic sequence.
  void configure_impairments(const LinkImpairments& cfg,
                             std::uint64_t seed);
  /// Active impairment config, or nullptr when the link is clean.
  [[nodiscard]] const LinkImpairments* impairments() const {
    return impair_ != nullptr ? &impair_->cfg : nullptr;
  }

  /// In-flight + queued frames awaiting delivery (at most one scheduler
  /// event is pending for all of them).
  [[nodiscard]] std::size_t in_flight() const {
    return remote_ != nullptr ? remote_->in_flight() : pending_.size();
  }
  /// Frames currently holding a drop-tail occupancy slot.
  [[nodiscard]] std::size_t queued() const {
    return remote_ != nullptr ? remote_->queued() : queued_;
  }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const LinkParams& params() const { return params_; }

 private:
  struct InFlight {
    SimTime deliver_at;
    /// Tie-break sequence reserved at transmit time; arming the delivery
    /// event under it keeps batching invisible to the determinism
    /// contract.
    std::uint64_t seq;
    bool counted_queued;  // holds a drop-tail occupancy slot until delivery
    wire::FrameHandle frame;
  };

  /// Per-link impairment state, allocated only when a non-zero config is
  /// installed — a clean link carries a null pointer and the transmit
  /// fast path is unchanged.
  struct ImpairmentState {
    LinkImpairments cfg;
    Rng rng;
  };

  [[nodiscard]] SimTime serialization_time(std::size_t bytes) const;
  /// The clean enqueue path: drop-tail check, FIFO push, head arming.
  void enqueue(wire::FrameHandle frame);
  /// Impairment gate in front of enqueue(): drop, corrupt (on a private
  /// copy), duplicate (second enqueue of a shared handle), reorder (swap
  /// the frame bytes of the last two FIFO entries).
  void transmit_impaired(wire::FrameHandle frame);
  /// Arms the delivery event for the FIFO head (which must exist).
  void arm_head();
  void deliver_head();

  sim::Scheduler& sim_;
  LinkParams params_;
  sim::RemoteSink* remote_ = nullptr;
  Node* dst_ = nullptr;
  std::size_t dst_port_ = 0;
  SimTime busy_until_ = SimTime::zero();
  std::size_t queued_ = 0;
  bool up_ = true;
  std::deque<InFlight> pending_;
  sim::EventId delivery_event_{};
  LinkStats stats_;
  std::unique_ptr<ImpairmentState> impair_;
};

}  // namespace netclone::phys
