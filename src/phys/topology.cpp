#include "phys/topology.hpp"

namespace netclone::phys {

DuplexPorts Topology::connect(Node& a, Node& b, LinkParams params) {
  return connect(sim_, sim_, a, b, params);
}

DuplexPorts Topology::connect(sim::Scheduler& sched_a_to_b,
                              sim::Scheduler& sched_b_to_a, Node& a,
                              Node& b, LinkParams params) {
  auto a_to_b = std::make_unique<Link>(sched_a_to_b, params);
  auto b_to_a = std::make_unique<Link>(sched_b_to_a, params);

  DuplexPorts ports;
  ports.port_on_a = a.attach_egress(a_to_b.get());
  ports.port_on_b = b.attach_egress(b_to_a.get());
  // Frames a sends out of port_on_a arrive at b's port_on_b and vice versa,
  // as with a real cable between two interfaces.
  a_to_b->connect_to(&b, ports.port_on_b);
  b_to_a->connect_to(&a, ports.port_on_a);

  ports.a_to_b = a_to_b.get();
  ports.b_to_a = b_to_a.get();
  links_.push_back(std::move(a_to_b));
  links_.push_back(std::move(b_to_a));
  return ports;
}

}  // namespace netclone::phys
