#include "phys/link.hpp"

#include <utility>

#include "common/check.hpp"
#include "phys/node.hpp"

namespace netclone::phys {

Link::Link(sim::Scheduler& scheduler, LinkParams params)
    : sim_(scheduler), params_(params) {
  NETCLONE_CHECK(params_.rate_bps > 0.0, "link rate must be positive");
}

Link::~Link() { sim_.cancel(delivery_event_); }

void Link::connect_to(Node* dst, std::size_t dst_port) {
  NETCLONE_CHECK(dst_ == nullptr, "link already connected");
  dst_ = dst;
  dst_port_ = dst_port;
}

SimTime Link::serialization_time(std::size_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / params_.rate_bps;
  return SimTime::seconds(seconds);
}

void Link::transmit(wire::FrameHandle frame) {
  if (!up_ || dst_ == nullptr) {
    ++stats_.dropped_frames;
    return;
  }
  const SimTime now = sim_.now();
  if (busy_until_ > now && queued_ >= params_.queue_capacity) {
    ++stats_.dropped_frames;
    return;
  }
  const SimTime start = busy_until_ > now ? busy_until_ : now;
  const SimTime tx = serialization_time(frame.size());
  busy_until_ = start + tx;
  const bool counted_queued = start > now;
  if (counted_queued) {
    ++queued_;
  }
  ++stats_.tx_frames;
  stats_.tx_bytes += frame.size();

  const SimTime deliver_at = busy_until_ + params_.delay;
  pending_.push_back(InFlight{deliver_at, sim_.reserve_seq(),
                              counted_queued, std::move(frame)});
  if (pending_.size() == 1) {
    arm_head();
  }
  // A deeper FIFO already has the event armed for its head; this frame's
  // turn comes when delivery reaches it, under the seq reserved above.
}

void Link::arm_head() {
  const InFlight& head = pending_.front();
  delivery_event_ = sim_.schedule_at_seq(head.deliver_at, head.seq,
                                         [this] { deliver_head(); });
}

void Link::deliver_head() {
  delivery_event_ = sim::EventId{};
  InFlight entry = std::move(pending_.front());
  pending_.pop_front();
  if (entry.counted_queued) {
    NETCLONE_CHECK(queued_ > 0, "link drop-tail occupancy underflow");
    --queued_;
  }
  // Rearm before delivering: handle_frame may reentrantly transmit on
  // this link, and it must find the FIFO consistent with the armed event.
  if (!pending_.empty()) {
    arm_head();
  }
  dst_->handle_frame(dst_port_, std::move(entry.frame));
}

void Link::set_up(bool up) {
  if (up_ == up) {
    return;
  }
  up_ = up;
  if (!up) {
    // Everything in flight is lost with the cable; clearing the FIFO here
    // (instead of letting per-frame events fire into a revived link) is
    // what keeps the new-epoch drop-tail occupancy exact.
    stats_.flushed_frames += pending_.size();
    sim_.cancel(delivery_event_);
    delivery_event_ = sim::EventId{};
    pending_.clear();
    queued_ = 0;
    busy_until_ = sim_.now();
  }
}

}  // namespace netclone::phys
