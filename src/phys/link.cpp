#include "phys/link.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "phys/burst.hpp"
#include "phys/node.hpp"

namespace netclone::phys {

namespace {

/// Flips one random bit in a private copy of the frame. The flip is
/// confined to byte offsets >= 14 (the start of the IPv4 header): the
/// Ethernet region carries no checksum in this model, so a flip there
/// would be undetectable by design — and a real FCS failure looks like a
/// plain drop, which `drop_rate` already covers.
wire::FrameHandle corrupt_copy(const wire::FrameHandle& frame, Rng& rng) {
  wire::FrameHandle copy = wire::FrameHandle::allocate(frame.size());
  std::byte* bytes = copy.writable_all();
  frame.copy_to(bytes);
  const std::size_t lo = std::min<std::size_t>(14, copy.size() - 1);
  const std::size_t off =
      lo + static_cast<std::size_t>(rng.next_below(copy.size() - lo));
  const auto bit = static_cast<unsigned char>(1U << rng.next_below(8));
  bytes[off] ^= std::byte{bit};
  return copy;
}

}  // namespace

Link::Link(sim::Scheduler& scheduler, LinkParams params)
    : sim_(scheduler), params_(params) {
  NETCLONE_CHECK(params_.rate_bps > 0.0, "link rate must be positive");
}

Link::~Link() { sim_.cancel(delivery_event_); }

void Link::connect_to(Node* dst, std::size_t dst_port) {
  NETCLONE_CHECK(dst_ == nullptr, "link already connected");
  dst_ = dst;
  dst_port_ = dst_port;
}

void Link::set_remote_sink(sim::RemoteSink* sink) {
  NETCLONE_CHECK(pending_.empty() && stats_.tx_frames == 0,
                 "remote sink must be installed before traffic");
  remote_ = sink;
}

SimTime Link::serialization_time(std::size_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / params_.rate_bps;
  return SimTime::seconds(seconds);
}

void Link::transmit(wire::FrameHandle frame) {
  if (!up_ || dst_ == nullptr) {
    ++stats_.dropped_frames;
    return;
  }
  if (impair_ != nullptr) [[unlikely]] {
    transmit_impaired(std::move(frame));
    return;
  }
  enqueue(std::move(frame));
}

void Link::transmit_impaired(wire::FrameHandle frame) {
  ImpairmentState& st = *impair_;
  // Draw order is fixed (drop, corrupt, duplicate, reorder) and each
  // draw happens only when its rate is non-zero, so a given config
  // consumes the stream identically on every same-seed run.
  if (st.cfg.drop_rate > 0.0 && st.rng.bernoulli(st.cfg.drop_rate)) {
    ++stats_.impaired_drops;
    return;
  }
  if (st.cfg.corrupt_rate > 0.0 && !frame.empty() &&
      st.rng.bernoulli(st.cfg.corrupt_rate)) {
    frame = corrupt_copy(frame, st.rng);
    ++stats_.corrupted_frames;
  }
  const bool duplicate = st.cfg.duplicate_rate > 0.0 &&
                         st.rng.bernoulli(st.cfg.duplicate_rate);
  wire::FrameHandle dup_copy;
  if (duplicate) {
    dup_copy = frame;  // refcount share; enqueue never mutates bytes
  }
  enqueue(std::move(frame));
  if (duplicate) {
    ++stats_.duplicated_frames;
    enqueue(std::move(dup_copy));
  }
  // The depth gate must short-circuit before the bernoulli draw exactly
  // as it does intra-shard, or the impairment RNG stream desynchronizes
  // between shard assignments; the remote sink's in_flight() answers by
  // the same (time, provenance) order the cross-shard merge uses.
  const std::size_t depth =
      remote_ != nullptr ? remote_->in_flight() : pending_.size();
  if (st.cfg.reorder_rate > 0.0 && depth >= 2 &&
      st.rng.bernoulli(st.cfg.reorder_rate)) {
    // Reorder by swapping the *frames* of the last two FIFO entries.
    // Delivery times, tie-break seqs, and occupancy accounting stay with
    // their slots, so the swap is invisible to the event machinery — the
    // receiver just sees the two frames in the opposite order.
    if (remote_ != nullptr) {
      const bool swapped = remote_->swap_last_two();
      NETCLONE_CHECK(swapped, "remote reorder lost its swap targets");
    } else {
      std::swap(pending_[pending_.size() - 1].frame,
                pending_[pending_.size() - 2].frame);
    }
    ++stats_.reordered_frames;
  }
}

void Link::enqueue(wire::FrameHandle frame) {
  const SimTime now = sim_.now();
  const std::size_t occupied =
      remote_ != nullptr ? remote_->queued() : queued_;
  if (busy_until_ > now && occupied >= params_.queue_capacity) {
    ++stats_.dropped_frames;
    return;
  }
  const SimTime start = busy_until_ > now ? busy_until_ : now;
  const SimTime tx = serialization_time(frame.size());
  busy_until_ = start + tx;
  const bool counted_queued = start > now;
  ++stats_.tx_frames;
  stats_.tx_bytes += frame.size();

  const SimTime deliver_at = busy_until_ + params_.delay;
  if (remote_ != nullptr) {
    // Cross-shard handoff: the sink reserves this frame's seq on the
    // sender shard (keeping the reservation stream identical to the
    // intra-shard push below) and byte-copies the frame into the
    // mailbox. No local event is armed — the receiving shard's merge
    // materializes the delivery.
    remote_->enqueue(deliver_at, frame, counted_queued,
                     impair_ != nullptr && impair_->cfg.reorder_rate > 0.0);
    return;
  }
  if (counted_queued) {
    ++queued_;
  }
  pending_.push_back(InFlight{deliver_at, sim_.reserve_seq(),
                              counted_queued, std::move(frame)});
  if (pending_.size() == 1) {
    arm_head();
  }
  // A deeper FIFO already has the event armed for its head; this frame's
  // turn comes when delivery reaches it, under the seq reserved above.
}

void Link::arm_head() {
  const InFlight& head = pending_.front();
  delivery_event_ = sim_.schedule_at_seq(head.deliver_at, head.seq,
                                         [this] { deliver_head(); });
}

void Link::deliver_head() {
  delivery_event_ = sim::EventId{};
  InFlight entry = std::move(pending_.front());
  pending_.pop_front();
  if (entry.counted_queued) {
    NETCLONE_CHECK(queued_ > 0, "link drop-tail occupancy underflow");
    --queued_;
  }
  if (!burst_enabled()) {
    // Single-frame oracle path: rearm before delivering — handle_frame
    // may reentrantly transmit on this link, and it must find the FIFO
    // consistent with the armed event.
    if (!pending_.empty()) {
      arm_head();
    }
    dst_->handle_frame(dst_port_, std::move(entry.frame));
    return;
  }
  // Burst drain: absorb successive FIFO entries whose reserved delivery
  // events would fire next anyway — the scheduler's try_absorb_event
  // both proves that (no pending event is ordered before the entry's
  // reserved seq) and commits it (the clock advances to the entry's
  // instant, the event counts as executed), so delivering the frame here
  // is indistinguishable from its own event having fired. The horizon
  // caps how far ahead we look: the receiver guarantees that processing
  // a frame arriving at t schedules nothing before t + horizon, so
  // events it will create during handle_burst (invisible to the probe)
  // cannot be ordered before any absorbed entry. Reservations were
  // consumed at transmit in both modes, so the seq stream — and thus
  // every later tie-break — is identical to the oracle path.
  const SimTime limit = entry.deliver_at + dst_->burst_horizon();
  if (pending_.empty() || pending_.front().deliver_at > limit) {
    // Nothing within the horizon to coalesce — the common case at
    // steady load. Deliver exactly as the oracle path would, paying
    // none of the burst-assembly machinery.
    if (!pending_.empty()) {
      arm_head();
    }
    dst_->handle_frame(dst_port_, std::move(entry.frame));
    return;
  }
  FrameBurst burst;
  burst.push_back(entry.deliver_at, std::move(entry.frame));
  while (!pending_.empty() && pending_.front().deliver_at <= limit &&
         sim_.try_absorb_event(pending_.front().deliver_at,
                               pending_.front().seq)) {
    InFlight next = std::move(pending_.front());
    pending_.pop_front();
    if (next.counted_queued) {
      NETCLONE_CHECK(queued_ > 0, "link drop-tail occupancy underflow");
      --queued_;
    }
    ++stats_.coalesced_frames;
    burst.push_back(next.deliver_at, std::move(next.frame));
  }
  // Rearm before delivering (reentrant transmits, as above).
  if (!pending_.empty()) {
    arm_head();
  }
  if (burst.size() == 1) {
    dst_->handle_frame(dst_port_, std::move(burst[0].frame));
  } else {
    dst_->handle_burst(dst_port_, std::move(burst));
  }
}

void Link::configure_impairments(const LinkImpairments& cfg,
                                 std::uint64_t seed) {
  if (!cfg.any()) {
    impair_.reset();
    return;
  }
  if (impair_ != nullptr) {
    impair_->cfg = cfg;  // reconfigure in place; keep the RNG stream
  } else {
    impair_ = std::make_unique<ImpairmentState>(
        ImpairmentState{cfg, Rng{seed}});
  }
  if (remote_ != nullptr && cfg.reorder_rate > 0.0) {
    // Reorder installed mid-run: frames already in the mailbox become
    // swap candidates, so the receiver must start clock-synchronizing on
    // them (late-freeze) too. Runs at a control barrier.
    remote_->make_all_mutable();
  }
}

void Link::set_up(bool up) {
  if (up_ == up) {
    return;
  }
  up_ = up;
  if (!up) {
    // Everything in flight is lost with the cable; clearing the FIFO here
    // (instead of letting per-frame events fire into a revived link) is
    // what keeps the new-epoch drop-tail occupancy exact.
    if (remote_ != nullptr) {
      stats_.flushed_frames += remote_->flush();
    } else {
      stats_.flushed_frames += pending_.size();
      sim_.cancel(delivery_event_);
      delivery_event_ = sim::EventId{};
      pending_.clear();
      queued_ = 0;
    }
    busy_until_ = sim_.now();
  }
}

}  // namespace netclone::phys
