#include "phys/link.hpp"

#include <utility>

#include "common/check.hpp"
#include "phys/node.hpp"

namespace netclone::phys {

Link::Link(sim::Scheduler& scheduler, LinkParams params)
    : sim_(scheduler), params_(params) {
  NETCLONE_CHECK(params_.rate_bps > 0.0, "link rate must be positive");
}

void Link::connect_to(Node* dst, std::size_t dst_port) {
  NETCLONE_CHECK(dst_ == nullptr, "link already connected");
  dst_ = dst;
  dst_port_ = dst_port;
}

SimTime Link::serialization_time(std::size_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / params_.rate_bps;
  return SimTime::seconds(seconds);
}

void Link::transmit(wire::FrameHandle frame) {
  if (!up_ || dst_ == nullptr) {
    ++stats_.dropped_frames;
    return;
  }
  const SimTime now = sim_.now();
  if (busy_until_ > now && queued_ >= params_.queue_capacity) {
    ++stats_.dropped_frames;
    return;
  }
  const SimTime start = busy_until_ > now ? busy_until_ : now;
  const SimTime tx = serialization_time(frame.size());
  busy_until_ = start + tx;
  if (start > now) {
    ++queued_;
  }
  ++stats_.tx_frames;
  stats_.tx_bytes += frame.size();

  const SimTime deliver_at = busy_until_ + params_.delay;
  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(
      deliver_at,
      [this, epoch, started_queued = start > now,
       payload = std::move(frame)]() mutable {
        if (started_queued && queued_ > 0) {
          --queued_;
        }
        if (!up_ || epoch != epoch_) {
          return;  // link went down while the frame was in flight
        }
        dst_->handle_frame(dst_port_, std::move(payload));
      });
}

void Link::set_up(bool up) {
  if (up_ == up) {
    return;
  }
  up_ = up;
  if (!up) {
    ++epoch_;
    queued_ = 0;
    busy_until_ = sim_.now();
  }
}

}  // namespace netclone::phys
