// Zipfian key popularity (the paper's Zipf-0.99 skew, §5.5), using the
// Gray et al. rejection-free inversion method popularized by YCSB.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace netclone::kv {

class ZipfGenerator {
 public:
  /// Items are 0..n-1; `theta` is the skew (0 = uniform, 0.99 = paper).
  ZipfGenerator(std::uint64_t n, double theta);

  /// Draws one item; item 0 is the most popular.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace netclone::kv
