// In-memory key-value store: the Redis / Memcached stand-in (§5.5).
//
// An open-addressing hash table with linear probing and inline fixed-size
// slots (16-byte keys, 64-byte values — the MICA-style object sizes the
// paper evaluates with). Lookups do real hashing and probing over a
// contiguous slot array; the service-time model converts operations into
// simulated time, so the store provides correctness and workload structure
// while the clock stays deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace netclone::kv {

inline constexpr std::size_t kMaxKeyBytes = 16;
inline constexpr std::size_t kMaxValueBytes = 64;

class KvStore {
 public:
  /// Creates a store able to hold at least `capacity_hint` objects at a
  /// load factor <= 0.5 (capacity is rounded up to a power of two).
  explicit KvStore(std::size_t capacity_hint);

  /// Inserts or overwrites. Returns false when the table is full or the
  /// key/value exceeds the fixed slot size.
  bool set(std::string_view key, std::string_view value);

  /// Point lookup; the returned view is valid until the next set().
  [[nodiscard]] std::optional<std::string_view> get(
      std::string_view key) const;

  [[nodiscard]] bool contains(std::string_view key) const {
    return get(key).has_value();
  }

  /// Range-read emulation for SCAN: starting at `start_key`'s slot, visits
  /// up to `count` occupied slots in table order and folds their values
  /// into a 64-bit digest (the paper's SCAN reads 100 objects and the
  /// response stays single-packet).
  [[nodiscard]] std::uint64_t scan_digest(std::string_view start_key,
                                          std::size_t count) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    bool occupied = false;
    std::uint8_t key_len = 0;
    std::uint8_t value_len = 0;
    char key[kMaxKeyBytes] = {};
    char value[kMaxValueBytes] = {};
  };

  [[nodiscard]] std::size_t slot_of(std::string_view key) const;
  /// Index of the key's slot, or of the first free slot in its probe
  /// sequence; nullopt when the table is full.
  [[nodiscard]] std::optional<std::size_t> probe(std::string_view key) const;

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Canonical key string for object index i: 16 bytes, zero-padded decimal
/// ("k000000000001234"). Clients and servers derive keys identically.
[[nodiscard]] std::string key_for_index(std::uint64_t index);

/// Deterministic 64-byte value for object index i.
[[nodiscard]] std::string value_for_index(std::uint64_t index);

/// Fills the store with objects 0..count-1.
void populate(KvStore& store, std::size_t count);

}  // namespace netclone::kv
