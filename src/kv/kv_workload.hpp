// KV service + workload: the Redis / Memcached experiments (§5.5).
//
// Clients draw keys from a Zipf-0.99 distribution over 1M objects and mix
// GET (one object) with SCAN (100 objects). Worker servers execute the
// operations against a shared read-replicated KvStore; operation cost is
// converted to simulated time by a per-application cost profile, with the
// usual independent per-execution jitter on top.
#pragma once

#include <memory>
#include <string>

#include "host/service.hpp"
#include "host/workload.hpp"
#include "kv/store.hpp"
#include "kv/zipf.hpp"

namespace netclone::kv {

/// Service-time coefficients of one KV application.
struct KvCostProfile {
  std::string name;
  /// Fixed cost of any read request (parse + lookup + respond).
  double get_base_us = 5.0;
  /// Additional per-object cost of a SCAN.
  double per_object_us = 1.0;
  /// Fixed cost of a SET.
  double set_base_us = 6.0;
};

/// Profiles roughly matching the relative costs of the two systems the
/// paper deploys; absolute values are calibration constants, the shapes in
/// Figs. 11-12 come from the GET/SCAN bimodality they induce.
[[nodiscard]] KvCostProfile redis_profile();
[[nodiscard]] KvCostProfile memcached_profile();

/// Worker-side execution of KV requests.
class KvService final : public host::ServiceModel {
 public:
  KvService(std::shared_ptr<const KvStore> store, KvCostProfile profile,
            host::JitterModel jitter);

  [[nodiscard]] SimTime execution_time(const wire::RpcRequest& req,
                                       Rng& rng) override;
  [[nodiscard]] wire::RpcResponse execute(
      const wire::RpcRequest& req) override;

 private:
  std::shared_ptr<const KvStore> store_;
  KvCostProfile profile_;
  host::JitterModel jitter_;
};

struct KvMix {
  /// Fraction of GET requests; SETs take set_fraction; the remainder are
  /// SCANs (paper: 0.99/0.01 and 0.90/0.10 GET/SCAN, reads only).
  double get_fraction = 0.99;
  /// Fraction of SET (write) requests. Writes travel as WREQ and are
  /// never cloned by the switch (§5.5).
  double set_fraction = 0.0;
  std::uint16_t scan_count = 100;
  std::uint64_t num_keys = 1000000;
  double zipf_theta = 0.99;
};

/// Client-side request generator for a KV mix.
class KvRequestFactory final : public host::RequestFactory {
 public:
  KvRequestFactory(KvMix mix, KvCostProfile profile);

  [[nodiscard]] wire::RpcRequest make(Rng& rng) override;
  [[nodiscard]] double mean_intrinsic_us() const override;
  [[nodiscard]] std::string label() const override;

 private:
  KvMix mix_;
  KvCostProfile profile_;
  ZipfGenerator zipf_;
};

}  // namespace netclone::kv
