#include "kv/store.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace netclone::kv {

KvStore::KvStore(std::size_t capacity_hint) {
  NETCLONE_CHECK(capacity_hint > 0, "store capacity must be positive");
  const std::size_t capacity = std::bit_ceil(capacity_hint * 2);
  slots_.resize(capacity);
  mask_ = capacity - 1;
}

std::size_t KvStore::slot_of(std::string_view key) const {
  return static_cast<std::size_t>(fnv1a(key)) & mask_;
}

std::optional<std::size_t> KvStore::probe(std::string_view key) const {
  const std::size_t start = slot_of(key);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::size_t idx = (start + i) & mask_;
    const Slot& slot = slots_[idx];
    if (!slot.occupied) {
      return idx;
    }
    if (slot.key_len == key.size() &&
        std::memcmp(slot.key, key.data(), key.size()) == 0) {
      return idx;
    }
  }
  return std::nullopt;
}

bool KvStore::set(std::string_view key, std::string_view value) {
  if (key.empty() || key.size() > kMaxKeyBytes ||
      value.size() > kMaxValueBytes) {
    return false;
  }
  // Keep the load factor at or below 1/2 so probe chains stay short.
  if (!contains(key) && (size_ + 1) * 2 > slots_.size()) {
    return false;
  }
  const auto idx = probe(key);
  if (!idx) {
    return false;
  }
  Slot& slot = slots_[*idx];
  if (!slot.occupied) {
    slot.occupied = true;
    slot.key_len = static_cast<std::uint8_t>(key.size());
    std::memcpy(slot.key, key.data(), key.size());
    ++size_;
  }
  slot.value_len = static_cast<std::uint8_t>(value.size());
  std::memcpy(slot.value, value.data(), value.size());
  return true;
}

std::optional<std::string_view> KvStore::get(std::string_view key) const {
  if (key.empty() || key.size() > kMaxKeyBytes) {
    return std::nullopt;
  }
  const auto idx = probe(key);
  if (!idx || !slots_[*idx].occupied) {
    return std::nullopt;
  }
  const Slot& slot = slots_[*idx];
  return std::string_view{slot.value, slot.value_len};
}

std::uint64_t KvStore::scan_digest(std::string_view start_key,
                                   std::size_t count) const {
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  std::size_t visited = 0;
  const std::size_t start = slot_of(start_key);
  for (std::size_t i = 0; i < slots_.size() && visited < count; ++i) {
    const Slot& slot = slots_[(start + i) & mask_];
    if (!slot.occupied) {
      continue;
    }
    for (std::uint8_t b = 0; b < slot.value_len; ++b) {
      digest ^= static_cast<std::uint8_t>(slot.value[b]);
      digest *= 0x100000001B3ULL;
    }
    ++visited;
  }
  return digest;
}

std::string key_for_index(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%015llu",
                static_cast<unsigned long long>(index));
  return std::string{buf, kMaxKeyBytes};
}

std::string value_for_index(std::uint64_t index) {
  std::string value;
  value.reserve(kMaxValueBytes);
  std::uint64_t state = mix64(index + 1);
  while (value.size() < kMaxValueBytes) {
    state = mix64(state);
    // Printable bytes keep pcap dumps and debugging output readable.
    value.push_back(static_cast<char>('a' + state % 26));
  }
  return value;
}

void populate(KvStore& store, std::size_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool ok = store.set(key_for_index(i), value_for_index(i));
    NETCLONE_CHECK(ok, "store population failed (capacity too small)");
  }
}

}  // namespace netclone::kv
