#include "kv/kv_workload.hpp"

#include <cstdio>
#include <utility>

#include "common/check.hpp"

namespace netclone::kv {

KvCostProfile redis_profile() {
  // Redis over VMA kernel bypass: single-threaded command execution with
  // hash lookup; SCAN walks objects one by one.
  return KvCostProfile{"Redis", /*get_base_us=*/5.0, /*per_object_us=*/1.0,
                       /*set_base_us=*/6.0};
}

KvCostProfile memcached_profile() {
  // Memcached's slab-allocated GET path is slightly cheaper per object.
  return KvCostProfile{"Memcached", /*get_base_us=*/4.0,
                       /*per_object_us=*/0.85, /*set_base_us=*/5.0};
}

KvService::KvService(std::shared_ptr<const KvStore> store,
                     KvCostProfile profile, host::JitterModel jitter)
    : store_(std::move(store)), profile_(std::move(profile)),
      jitter_(jitter) {
  NETCLONE_CHECK(store_ != nullptr, "KvService needs a store");
}

SimTime KvService::execution_time(const wire::RpcRequest& req, Rng& rng) {
  double base_us = 0.0;
  switch (req.op) {
    case wire::RpcOp::kGet:
      base_us = profile_.get_base_us;
      break;
    case wire::RpcOp::kScan:
      base_us = profile_.get_base_us +
                profile_.per_object_us * static_cast<double>(req.scan_count);
      break;
    case wire::RpcOp::kSet:
      base_us = profile_.set_base_us;
      break;
    case wire::RpcOp::kSynthetic:
      base_us = static_cast<double>(req.intrinsic_ns) / 1000.0;
      break;
  }
  return jitter_.apply(SimTime::microseconds(base_us), rng);
}

wire::RpcResponse KvService::execute(const wire::RpcRequest& req) {
  wire::RpcResponse resp;
  switch (req.op) {
    case wire::RpcOp::kGet: {
      const auto value = store_->get(key_for_index(req.key));
      if (!value) {
        resp.status = wire::RpcStatus::kNotFound;
        break;
      }
      resp.value.reserve(value->size());
      for (const char c : *value) {
        resp.value.push_back(static_cast<std::byte>(c));
      }
      break;
    }
    case wire::RpcOp::kScan: {
      const std::uint64_t digest =
          store_->scan_digest(key_for_index(req.key), req.scan_count);
      resp.value.resize(8);
      for (std::size_t i = 0; i < 8; ++i) {
        resp.value[i] =
            static_cast<std::byte>((digest >> (8 * (7 - i))) & 0xFFU);
      }
      break;
    }
    case wire::RpcOp::kSet:
      // Writes reach servers unreplicated (NetClone does not clone writes,
      // §5.5); the shared-store model applies them directly.
      resp.status = wire::RpcStatus::kOk;
      break;
    case wire::RpcOp::kSynthetic:
      break;
  }
  return resp;
}

KvRequestFactory::KvRequestFactory(KvMix mix, KvCostProfile profile)
    : mix_(mix),
      profile_(std::move(profile)),
      zipf_(mix.num_keys, mix.zipf_theta) {
  NETCLONE_CHECK(mix_.get_fraction >= 0.0 && mix_.set_fraction >= 0.0 &&
                     mix_.get_fraction + mix_.set_fraction <= 1.0,
                 "GET/SET fractions must form a valid mix");
}

wire::RpcRequest KvRequestFactory::make(Rng& rng) {
  wire::RpcRequest req;
  req.key = zipf_.sample(rng);
  const double u = rng.next_double();
  if (u < mix_.get_fraction) {
    req.op = wire::RpcOp::kGet;
  } else if (u < mix_.get_fraction + mix_.set_fraction) {
    req.op = wire::RpcOp::kSet;
    req.value_size = kMaxValueBytes;
  } else {
    req.op = wire::RpcOp::kScan;
    req.scan_count = mix_.scan_count;
  }
  return req;
}

double KvRequestFactory::mean_intrinsic_us() const {
  const double scan_us =
      profile_.get_base_us +
      profile_.per_object_us * static_cast<double>(mix_.scan_count);
  const double scan_fraction =
      1.0 - mix_.get_fraction - mix_.set_fraction;
  return mix_.get_fraction * profile_.get_base_us +
         mix_.set_fraction * profile_.set_base_us +
         scan_fraction * scan_us;
}

std::string KvRequestFactory::label() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %.0f%%-GET,%.0f%%-SCAN",
                profile_.name.c_str(), mix_.get_fraction * 100.0,
                (1.0 - mix_.get_fraction) * 100.0);
  return buf;
}

}  // namespace netclone::kv
