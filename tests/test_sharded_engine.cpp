// Determinism contract of the sharded engine: for any shard count N
// (including 1, and the unsharded legacy engine), a same-seed run must
// produce bit-identical results — same chaos digest, same
// executed_events, same per-request outcomes. The suite drives the
// same cluster through NETCLONE_SHARDS ∈ {1, 2, 4, 7} equivalents via
// ClusterConfig::num_shards for a fig7-style point, three randomized
// chaos fault plans, and link impairments, then property-tests random
// shard assignments against the single-queue reference. Frame-pool
// balance is checked per shard on every run.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "chaos_util.hpp"
#include "common/rng.hpp"
#include "harness/experiment.hpp"
#include "harness/faults.hpp"
#include "harness/invariants.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "sim/sharded.hpp"
#include "wire/framebuf.hpp"

namespace netclone {
namespace {

// The legacy engine (0) and the interesting shard counts: the sharded
// machinery on one queue, an even split, more shards than a worker
// count, and a prime that leaves the round-robin unbalanced.
constexpr std::size_t kShardCounts[] = {0, 1, 2, 4, 7};

struct RunOutcome {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t completed = 0;
  std::int64_t p99_ns = 0;
};

/// Runs `cfg` on `shards` event queues (0 = legacy single-queue engine,
/// unless NETCLONE_SHARDS overrides it in the environment — the
/// sharded-lane CI runs do exactly that), audits the invariants, and
/// verifies every shard pool balanced before returning the fingerprint.
RunOutcome run_with_shards(harness::ClusterConfig cfg, std::size_t shards,
                          std::vector<std::uint32_t> assignment = {}) {
  cfg.num_shards = shards;
  cfg.shard_assignment = std::move(assignment);
  harness::Experiment exp{cfg};
  const harness::ExperimentResult result = exp.run();

  const harness::InvariantReport report = harness::audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << "shards=" << shards << ":\n"
                           << report.to_string();

  // Per-shard pool balance at end of run: everything acquired during
  // the run has been released or is still live (held by parked state),
  // and the books agree pool by pool.
  for (const wire::FramePool::Stats& pool : exp.frame_pool_stats()) {
    EXPECT_LE(pool.released, pool.acquired) << "shards=" << shards;
    EXPECT_EQ(pool.live, pool.acquired - pool.released)
        << "shards=" << shards;
  }

  RunOutcome out;
  out.digest = harness::chaos_digest(exp);
  out.executed = exp.executed_events();
  out.completed = result.completed;
  out.p99_ns = result.p99.ns();
  return out;
}

/// Asserts every shard count reproduces the legacy run bit for bit.
void expect_identical_across_shards(const harness::ClusterConfig& cfg,
                                    const char* what) {
  const RunOutcome reference = run_with_shards(cfg, kShardCounts[0]);
  EXPECT_GT(reference.completed, 0u) << what << ": nothing completed";
  for (std::size_t i = 1; i < std::size(kShardCounts); ++i) {
    const std::size_t shards = kShardCounts[i];
    const RunOutcome outcome = run_with_shards(cfg, shards);
    EXPECT_EQ(outcome.digest, reference.digest)
        << what << ": digest diverged at " << shards << " shards";
    EXPECT_EQ(outcome.executed, reference.executed)
        << what << ": executed_events diverged at " << shards << " shards";
    EXPECT_EQ(outcome.completed, reference.completed)
        << what << ": completions diverged at " << shards << " shards";
    EXPECT_EQ(outcome.p99_ns, reference.p99_ns)
        << what << ": p99 diverged at " << shards << " shards";
  }
}

/// A fig7-style point scaled down for tier1: NetClone scheme, Exp(25)
/// service, enough load for cloning + filtering to happen constantly.
harness::ClusterConfig fig7_style_cluster() {
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.server_workers = {4, 4, 4, 4};
  cfg.num_clients = 3;
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::microseconds(500.0);
  cfg.measure = SimTime::milliseconds(3);
  cfg.drain = SimTime::milliseconds(2);
  cfg.seed = 7;
  const double capacity =
      harness::cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  cfg.offered_rps = 0.8 * capacity;
  return cfg;
}

TEST(ShardedEngine, Fig7DigestsMatchAcrossShardCounts) {
  expect_identical_across_shards(fig7_style_cluster(), "fig7");
}

// Three PR-5 randomized fault plans (crashes, pauses, outages, switch
// reboots, stale filter injection) — the chaos machinery end to end.
TEST(ShardedEngine, ChaosFaultPlansMatchAcrossShardCounts) {
  for (std::uint64_t combo = 0; combo < 3; ++combo) {
    harness::ClusterConfig cfg =
        netclone::testing::chaos_cluster(/*seed=*/2000 + combo);
    Rng plan_rng{0xC0FFEE ^ (7000 + combo)};
    cfg.faults = netclone::testing::random_fault_plan(
        plan_rng, cfg.server_workers.size(), cfg.num_clients);
    expect_identical_across_shards(cfg, "chaos combo");
  }
}

// Link impairments are the sharp edge of the cross-shard boundary: drops
// and duplication consume sender RNG draws, and reordering mutates
// frames already handed to the mailbox (the late-freeze protocol).
TEST(ShardedEngine, LinkImpairmentsMatchAcrossShardCounts) {
  harness::ClusterConfig cfg = netclone::testing::chaos_cluster(/*seed=*/31);
  using harness::FaultAction;
  using harness::FaultEvent;
  const auto impair = [&cfg](const std::string& link, FaultAction action,
                             double value, double at_us) {
    FaultEvent ev;
    ev.target = link;
    ev.action = action;
    ev.value = value;
    ev.at = SimTime::microseconds(at_us);
    cfg.faults.events.push_back(ev);
  };
  impair("sw0-s0", FaultAction::kReorderRate, 0.05, 600.0);
  impair("c0-sw0", FaultAction::kReorderRate, 0.04, 650.0);
  impair("s1-sw0", FaultAction::kDropRate, 0.02, 700.0);
  impair("sw0-c1", FaultAction::kDuplicateRate, 0.03, 750.0);
  impair("sw0-s2", FaultAction::kCorruptRate, 0.02, 800.0);
  expect_identical_across_shards(cfg, "impairments");
}

// Property test: the digest must not depend on WHERE hosts live. Random
// assignments scatter servers and clients over the shards (including
// piling everything onto one shard, and splitting chatty pairs), and
// every assignment must reproduce the single-queue reference.
TEST(ShardedEngine, RandomShardAssignmentsMatchSingleQueueReference) {
  harness::ClusterConfig cfg = netclone::testing::chaos_cluster(/*seed=*/55);
  Rng plan_rng{0xBADF00D};
  cfg.faults = netclone::testing::random_fault_plan(
      plan_rng, cfg.server_workers.size(), cfg.num_clients);

  const RunOutcome reference = run_with_shards(cfg, 1);
  EXPECT_GT(reference.completed, 0u);

  const std::size_t num_hosts = cfg.server_workers.size() + cfg.num_clients;
  Rng assign_rng{0xA551671};
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t shards = 2 + assign_rng.next_below(4);  // 2..5
    std::vector<std::uint32_t> assignment(num_hosts);
    for (std::uint32_t& shard : assignment) {
      shard = static_cast<std::uint32_t>(assign_rng.next_below(shards));
    }
    const RunOutcome outcome =
        run_with_shards(cfg, shards, assignment);
    EXPECT_EQ(outcome.digest, reference.digest)
        << "trial " << trial << " (" << shards << " shards)";
    EXPECT_EQ(outcome.executed, reference.executed)
        << "trial " << trial << " (" << shards << " shards)";
  }
}

// The pool books must balance per shard and the process-wide pool must
// not leak across sharded experiments' lifetimes.
TEST(ShardedEngine, FramePoolsBalancePerShard) {
  const std::uint64_t live_before = wire::FramePool::instance().stats().live;
  {
    harness::ClusterConfig cfg = fig7_style_cluster();
    cfg.num_shards = 4;
    harness::Experiment exp{cfg};
    (void)exp.run();
    const auto pools = exp.frame_pool_stats();
    ASSERT_EQ(pools.size(), 4u);
    for (std::size_t i = 0; i < pools.size(); ++i) {
      EXPECT_LE(pools[i].released, pools[i].acquired) << "shard " << i;
      EXPECT_EQ(pools[i].live, pools[i].acquired - pools[i].released)
          << "shard " << i;
    }
    // Hosts live on shards 1..3, so traffic pools are actually used.
    EXPECT_GT(pools[1].acquired + pools[2].acquired + pools[3].acquired, 0u);
  }
  EXPECT_EQ(wire::FramePool::instance().stats().live, live_before)
      << "sharded experiment leaked process-wide pooled frames";
}

// Same-seed sharded runs must agree with each other too (worker-thread
// interleavings, when there are threads, must be invisible).
TEST(ShardedEngine, SameSeedShardedRunsAreIdentical) {
  harness::ClusterConfig cfg = netclone::testing::chaos_cluster(/*seed=*/91);
  Rng plan_rng{0x5EED};
  cfg.faults = netclone::testing::random_fault_plan(
      plan_rng, cfg.server_workers.size(), cfg.num_clients);
  const RunOutcome first = run_with_shards(cfg, 4);
  const RunOutcome second = run_with_shards(cfg, 4);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.executed, second.executed);
}

}  // namespace
}  // namespace netclone
