#include "harness/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/groups.hpp"

namespace netclone::harness {
namespace {

TEST(ScenarioParse, DefaultsAndOverrides) {
  const Scenario s = parse_scenario(R"(
    scheme = baseline
    servers = 4
    workers = 8
    loads = 0.2, 0.5
    mean_us = 50
  )");
  EXPECT_EQ(s.scheme, Scheme::kBaseline);
  EXPECT_EQ(s.servers, 4U);
  EXPECT_EQ(s.workers, 8U);
  EXPECT_EQ(s.loads, (std::vector<double>{0.2, 0.5}));
  EXPECT_DOUBLE_EQ(s.mean_us, 50.0);
  // Untouched keys keep their defaults.
  EXPECT_EQ(s.clients, 2U);
  EXPECT_EQ(s.workload, "exp");
}

TEST(ScenarioParse, CommentsAndBlankLines) {
  const Scenario s = parse_scenario(
      "# full-line comment\n\nscheme = netclone  # trailing comment\n");
  EXPECT_EQ(s.scheme, Scheme::kNetClone);
}

TEST(ScenarioParse, LaterKeysWin) {
  const Scenario s =
      parse_scenario("servers = 4\nservers = 6\nscheme = cclone\n");
  EXPECT_EQ(s.servers, 6U);
  EXPECT_EQ(s.scheme, Scheme::kCClone);
}

TEST(ScenarioParse, AllSchemesRecognized) {
  EXPECT_EQ(parse_scheme("baseline"), Scheme::kBaseline);
  EXPECT_EQ(parse_scheme("C-Clone"), Scheme::kCClone);
  EXPECT_EQ(parse_scheme("LAEDGE"), Scheme::kLaedge);
  EXPECT_EQ(parse_scheme("NetClone"), Scheme::kNetClone);
  EXPECT_EQ(parse_scheme("netclone-nofilter"), Scheme::kNetCloneNoFilter);
  EXPECT_EQ(parse_scheme("racksched"), Scheme::kRackSched);
  EXPECT_EQ(parse_scheme("netclone-racksched"),
            Scheme::kNetCloneRackSched);
  EXPECT_THROW((void)parse_scheme("quantum"), ScenarioError);
}

TEST(ScenarioParse, Errors) {
  EXPECT_THROW((void)parse_scenario("bogus_key = 1\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers =\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers = few\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers = 1\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("clients = 0\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("workload = exotic\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("loads = 0.5,-1\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("loads = \n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers = 2.5\n"), ScenarioError);
}

/// Captures the ScenarioError message for a bad input (fails the test if
/// the input parses).
std::string parse_error(const std::string& text) {
  try {
    (void)parse_scenario(text);
  } catch (const ScenarioError& err) {
    return err.what();
  }
  ADD_FAILURE() << "expected ScenarioError for:\n" << text;
  return "";
}

TEST(ScenarioDiagnostics, NumericErrorsCarryLineAndKey) {
  const std::string msg = parse_error("servers = few\n");
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("servers"), std::string::npos) << msg;
  EXPECT_NE(msg.find("few"), std::string::npos) << msg;

  // The line counter tracks blank/comment lines too.
  const std::string later =
      parse_error("# header\n\nservers = 4\nflash_x = fast\n");
  EXPECT_NE(later.find("line 4"), std::string::npos) << later;
  EXPECT_NE(later.find("flash_x"), std::string::npos) << later;
}

TEST(ScenarioDiagnostics, StructuralErrorsCarryLine) {
  const std::string missing_eq = parse_error("servers\n");
  EXPECT_NE(missing_eq.find("line 1"), std::string::npos) << missing_eq;
  const std::string empty = parse_error("servers = 4\nseed =\n");
  EXPECT_NE(empty.find("line 2"), std::string::npos) << empty;
  EXPECT_NE(empty.find("seed"), std::string::npos) << empty;
  const std::string unknown = parse_error("zzz = 1\n");
  EXPECT_NE(unknown.find("line 1"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("zzz"), std::string::npos) << unknown;
}

TEST(ScenarioDiagnostics, FaultErrorsCarryLine) {
  const std::string msg =
      parse_error("servers = 4\nfault = at=2s teleport sw0\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(ScenarioDiagnostics, FileErrorsCarryPath) {
  const std::string path = ::testing::TempDir() + "netclone_bad.cfg";
  {
    std::ofstream out{path};
    out << "servers = 4\nworkers = oops\n";
  }
  try {
    (void)load_scenario_file(path);
    ADD_FAILURE() << "expected ScenarioError";
  } catch (const ScenarioError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

TEST(ScenarioParse, FatTreeKeys) {
  const Scenario s = parse_scenario(R"(
    racks = 3
    servers_per_rack = 4
    aggs = 2
    agg_mode = replicated
    shards = 3
    shape = diurnal
    skew = 1.1
    hotspot_rack = 2
    hotspot_share = 0.6
  )");
  EXPECT_EQ(s.racks, 3u);
  EXPECT_EQ(s.servers_per_rack, 4u);
  EXPECT_EQ(s.aggs, 2u);
  EXPECT_EQ(s.agg_mode, "replicated");
  EXPECT_EQ(s.shards, 3u);
  EXPECT_EQ(s.total_servers(), 12u);
  ASSERT_TRUE(s.hotspot_rack.has_value());
  EXPECT_EQ(*s.hotspot_rack, 2u);
  // Classic scenarios count `servers` instead.
  EXPECT_EQ(parse_scenario("servers = 5\n").total_servers(), 5u);
}

TEST(ScenarioParse, GeneratorKeyValidation) {
  const std::string tree = "racks = 2\nservers_per_rack = 2\n";
  EXPECT_NE(parse_error(tree + "agg_mode = weird\n").find("agg_mode"),
            std::string::npos);
  EXPECT_NE(parse_error("shape = square\n").find("square"),
            std::string::npos);
  EXPECT_NE(parse_error("shape = flash\nflash_x = 0\n").find("flash_x"),
            std::string::npos);
  EXPECT_NE(parse_error("shape = diurnal\ndiurnal_min = 2\n")
                .find("diurnal_min"),
            std::string::npos);
  EXPECT_NE(parse_error("skew = -1\n").find("skew"), std::string::npos);
  EXPECT_NE(parse_error(tree + "hotspot_rack = 5\n").find("hotspot_rack"),
            std::string::npos);
  EXPECT_NE(parse_error(tree + "hotspot_rack = 0\nhotspot_share = 1.5\n")
                .find("hotspot_share"),
            std::string::npos);
  // A hotspot needs a rack structure; the fat tree is NetClone-only
  // and needs >= 2 servers. Fault lines parse in fat-tree scenarios
  // too — they route through MultiRackExperiment.
  EXPECT_NE(parse_error("hotspot_rack = 0\n").find("racks"),
            std::string::npos);
  EXPECT_EQ(
      parse_scenario(tree + "fault = at=2ms agg_fail agg0\n").faults.events
          .size(),
      1u);
  EXPECT_NE(parse_error(tree + "scheme = baseline\n").find("netclone"),
            std::string::npos);
  EXPECT_THROW((void)parse_scenario("racks = 1\nservers_per_rack = 1\n"),
               ScenarioError);
  EXPECT_THROW((void)parse_scenario(tree + "aggs = 0\n"), ScenarioError);
}

TEST(ScenarioBuild, TrafficShapesReachClientTemplate) {
  const Scenario s = parse_scenario(
      "servers = 4\nshape = flash\nflash_at_ms = 3\nflash_len_ms = 2\n"
      "flash_x = 5\nskew = 1.0\n");
  const ClusterConfig cfg = s.build_config();
  ASSERT_EQ(cfg.client_template.rate_profile.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.client_template.rate_profile[0].multiplier, 5.0);
  // 4 servers -> C(4,2) unordered candidate pairs... doubled to ordered
  // groups by build_group_pairs; the weight vector must match.
  EXPECT_EQ(cfg.client_template.group_weights.size(),
            core::build_group_pairs(4).size());
  // Steady + no skew leaves the template untouched (digest compat).
  const ClusterConfig plain =
      parse_scenario("servers = 4\n").build_config();
  EXPECT_TRUE(plain.client_template.rate_profile.empty());
  EXPECT_TRUE(plain.client_template.group_weights.empty());
}

TEST(ScenarioBuild, MultiRackConfigWiring) {
  const Scenario s = parse_scenario(R"(
    racks = 2
    servers_per_rack = 3
    aggs = 2
    agg_mode = replicated
    workers = 8
    clients = 3
    shards = 2
    seed = 9
  )");
  const MultiRackConfig cfg = s.build_multirack_config();
  EXPECT_EQ(cfg.server_racks, 2u);
  EXPECT_EQ(cfg.servers_per_rack, 3u);
  EXPECT_EQ(cfg.num_aggs, 2u);
  EXPECT_EQ(cfg.agg_mode, AggMode::kReplicated);
  EXPECT_EQ(cfg.workers, 8u);
  EXPECT_EQ(cfg.num_clients, 3u);
  EXPECT_EQ(cfg.num_shards, 2u);
  EXPECT_EQ(cfg.seed, 9u);
  ASSERT_NE(cfg.factory, nullptr);
  // Capacity counts all racks' hosts.
  const double expected = 6.0 * 8.0 * 1e6 / (25.0 * 1.14);
  EXPECT_NEAR(s.capacity_rps(), expected, expected * 1e-9);
}

TEST(ScenarioParse, TemplateParsesCleanly) {
  const Scenario s = parse_scenario(default_scenario_text());
  EXPECT_EQ(s.scheme, Scheme::kNetClone);
  EXPECT_EQ(s.servers, 6U);
}

TEST(ScenarioFile, MissingFileThrows) {
  EXPECT_THROW((void)load_scenario_file("/nonexistent/scenario.cfg"),
               ScenarioError);
}

TEST(ScenarioFile, RoundTripThroughDisk) {
  const std::string path = ::testing::TempDir() + "netclone_scenario.cfg";
  {
    std::ofstream out{path};
    out << "scheme = racksched\nservers = 3\n";
  }
  const Scenario s = load_scenario_file(path);
  EXPECT_EQ(s.scheme, Scheme::kRackSched);
  EXPECT_EQ(s.servers, 3U);
  std::remove(path.c_str());
}

TEST(ScenarioBuild, SyntheticConfigWiring) {
  Scenario s = parse_scenario("workload = bimodal\nservers = 3\n");
  const ClusterConfig cfg = s.build_config();
  EXPECT_EQ(cfg.server_workers.size(), 3U);
  EXPECT_EQ(cfg.factory->label(), "Bimodal(90%-25,10%-250)");
  // Capacity uses the jitter-inflated mean.
  const double expected =
      3.0 * 16.0 * 1e6 / (cfg.factory->mean_intrinsic_us() * 1.14);
  EXPECT_NEAR(s.capacity_rps(), expected, expected * 1e-9);
}

TEST(ScenarioBuild, KvConfigWiring) {
  Scenario s = parse_scenario(
      "workload = memcached\nkv_objects = 1000\nget_fraction = 0.9\n");
  const ClusterConfig cfg = s.build_config();
  EXPECT_EQ(cfg.factory->label(), "Memcached 90%-GET,10%-SCAN");
}

TEST(ScenarioRun, EndToEndTinySweep) {
  Scenario s = parse_scenario(R"(
    scheme = netclone
    servers = 2
    workers = 4
    loads = 0.3
    measure_ms = 4
    warmup_ms = 1
    title = tiny
  )");
  const auto points = s.run();
  ASSERT_EQ(points.size(), 1U);
  EXPECT_GT(points[0].result.completed, 0U);
  EXPECT_GT(points[0].result.cloned_requests, 0U);
}

TEST(ScenarioRun, CsvExport) {
  const std::string path = ::testing::TempDir() + "netclone_sweep.csv";
  Scenario s = parse_scenario("servers = 2\nworkers = 4\nloads = 0.2\n"
                              "measure_ms = 3\nwarmup_ms = 1\ncsv = " +
                              path + "\n");
  (void)s.run();
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("p99_us"), std::string::npos);
  std::string row;
  std::getline(in, row);
  EXPECT_NE(row.find("NetClone"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netclone::harness
