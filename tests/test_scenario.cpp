#include "harness/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace netclone::harness {
namespace {

TEST(ScenarioParse, DefaultsAndOverrides) {
  const Scenario s = parse_scenario(R"(
    scheme = baseline
    servers = 4
    workers = 8
    loads = 0.2, 0.5
    mean_us = 50
  )");
  EXPECT_EQ(s.scheme, Scheme::kBaseline);
  EXPECT_EQ(s.servers, 4U);
  EXPECT_EQ(s.workers, 8U);
  EXPECT_EQ(s.loads, (std::vector<double>{0.2, 0.5}));
  EXPECT_DOUBLE_EQ(s.mean_us, 50.0);
  // Untouched keys keep their defaults.
  EXPECT_EQ(s.clients, 2U);
  EXPECT_EQ(s.workload, "exp");
}

TEST(ScenarioParse, CommentsAndBlankLines) {
  const Scenario s = parse_scenario(
      "# full-line comment\n\nscheme = netclone  # trailing comment\n");
  EXPECT_EQ(s.scheme, Scheme::kNetClone);
}

TEST(ScenarioParse, LaterKeysWin) {
  const Scenario s =
      parse_scenario("servers = 4\nservers = 6\nscheme = cclone\n");
  EXPECT_EQ(s.servers, 6U);
  EXPECT_EQ(s.scheme, Scheme::kCClone);
}

TEST(ScenarioParse, AllSchemesRecognized) {
  EXPECT_EQ(parse_scheme("baseline"), Scheme::kBaseline);
  EXPECT_EQ(parse_scheme("C-Clone"), Scheme::kCClone);
  EXPECT_EQ(parse_scheme("LAEDGE"), Scheme::kLaedge);
  EXPECT_EQ(parse_scheme("NetClone"), Scheme::kNetClone);
  EXPECT_EQ(parse_scheme("netclone-nofilter"), Scheme::kNetCloneNoFilter);
  EXPECT_EQ(parse_scheme("racksched"), Scheme::kRackSched);
  EXPECT_EQ(parse_scheme("netclone-racksched"),
            Scheme::kNetCloneRackSched);
  EXPECT_THROW((void)parse_scheme("quantum"), ScenarioError);
}

TEST(ScenarioParse, Errors) {
  EXPECT_THROW((void)parse_scenario("bogus_key = 1\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers =\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers = few\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers = 1\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("clients = 0\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("workload = exotic\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("loads = 0.5,-1\n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("loads = \n"), ScenarioError);
  EXPECT_THROW((void)parse_scenario("servers = 2.5\n"), ScenarioError);
}

TEST(ScenarioParse, TemplateParsesCleanly) {
  const Scenario s = parse_scenario(default_scenario_text());
  EXPECT_EQ(s.scheme, Scheme::kNetClone);
  EXPECT_EQ(s.servers, 6U);
}

TEST(ScenarioFile, MissingFileThrows) {
  EXPECT_THROW((void)load_scenario_file("/nonexistent/scenario.cfg"),
               ScenarioError);
}

TEST(ScenarioFile, RoundTripThroughDisk) {
  const std::string path = ::testing::TempDir() + "netclone_scenario.cfg";
  {
    std::ofstream out{path};
    out << "scheme = racksched\nservers = 3\n";
  }
  const Scenario s = load_scenario_file(path);
  EXPECT_EQ(s.scheme, Scheme::kRackSched);
  EXPECT_EQ(s.servers, 3U);
  std::remove(path.c_str());
}

TEST(ScenarioBuild, SyntheticConfigWiring) {
  Scenario s = parse_scenario("workload = bimodal\nservers = 3\n");
  const ClusterConfig cfg = s.build_config();
  EXPECT_EQ(cfg.server_workers.size(), 3U);
  EXPECT_EQ(cfg.factory->label(), "Bimodal(90%-25,10%-250)");
  // Capacity uses the jitter-inflated mean.
  const double expected =
      3.0 * 16.0 * 1e6 / (cfg.factory->mean_intrinsic_us() * 1.14);
  EXPECT_NEAR(s.capacity_rps(), expected, expected * 1e-9);
}

TEST(ScenarioBuild, KvConfigWiring) {
  Scenario s = parse_scenario(
      "workload = memcached\nkv_objects = 1000\nget_fraction = 0.9\n");
  const ClusterConfig cfg = s.build_config();
  EXPECT_EQ(cfg.factory->label(), "Memcached 90%-GET,10%-SCAN");
}

TEST(ScenarioRun, EndToEndTinySweep) {
  Scenario s = parse_scenario(R"(
    scheme = netclone
    servers = 2
    workers = 4
    loads = 0.3
    measure_ms = 4
    warmup_ms = 1
    title = tiny
  )");
  const auto points = s.run();
  ASSERT_EQ(points.size(), 1U);
  EXPECT_GT(points[0].result.completed, 0U);
  EXPECT_GT(points[0].result.cloned_requests, 0U);
}

TEST(ScenarioRun, CsvExport) {
  const std::string path = ::testing::TempDir() + "netclone_sweep.csv";
  Scenario s = parse_scenario("servers = 2\nworkers = 4\nloads = 0.2\n"
                              "measure_ms = 3\nwarmup_ms = 1\ncsv = " +
                              path + "\n");
  (void)s.run();
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("p99_us"), std::string::npos);
  std::string row;
  std::getline(in, row);
  EXPECT_NE(row.find("NetClone"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netclone::harness
