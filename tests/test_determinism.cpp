// Same-seed reproducibility of a whole experiment, end to end.
//
// The engine's contract is bit-for-bit determinism: events at the same
// timestamp execute in scheduling order, and nothing in the arena (slot
// reuse, heap tombstones, cancellation) may leak into the observable
// schedule. Running an identical fig7-style cluster twice must therefore
// execute the exact same event sequence and measure the exact same
// latency distribution.
#include <gtest/gtest.h>

#include <cstdint>

#include "harness/experiment.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::harness {
namespace {

ClusterConfig fig7_style_cluster(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.scheme = Scheme::kNetClone;
  cfg.server_workers = {8, 8, 8, 8};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15.0});
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(8);
  cfg.drain = SimTime::milliseconds(10);
  cfg.offered_rps =
      cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14) * 0.5;
  cfg.seed = seed;
  return cfg;
}

struct Digest {
  std::uint64_t executed_events;
  ExperimentResult result;
};

Digest run_once(std::uint64_t seed) {
  Experiment experiment(fig7_style_cluster(seed));
  ExperimentResult result = experiment.run();
  return Digest{experiment.executed_events(), result};
}

TEST(Determinism, SameSeedSameEventsSameLatencyDigest) {
  const Digest a = run_once(7);
  const Digest b = run_once(7);

  // Identical event schedules...
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.result.requests_sent, b.result.requests_sent);
  EXPECT_EQ(a.result.completed, b.result.completed);
  EXPECT_EQ(a.result.cloned_requests, b.result.cloned_requests);
  EXPECT_EQ(a.result.filtered_responses, b.result.filtered_responses);
  EXPECT_EQ(a.result.redundant_responses, b.result.redundant_responses);

  // ...and bit-for-bit identical latency digests, not just "close".
  EXPECT_EQ(a.result.p50, b.result.p50);
  EXPECT_EQ(a.result.p99, b.result.p99);
  EXPECT_EQ(a.result.p999, b.result.p999);
  EXPECT_EQ(a.result.mean_us, b.result.mean_us);
  EXPECT_EQ(a.result.achieved_rps, b.result.achieved_rps);
  EXPECT_EQ(a.result.server_wait_p99, b.result.server_wait_p99);
  EXPECT_EQ(a.result.server_service_p99, b.result.server_service_p99);

  // Sanity: the run did real work (the digest is not vacuously equal).
  EXPECT_GT(a.executed_events, 0U);
  EXPECT_GT(a.result.completed, 0U);
}

TEST(Determinism, DifferentSeedsProduceDifferentSchedules) {
  const Digest a = run_once(7);
  const Digest c = run_once(8);
  // Not a hard guarantee of the engine, but with randomized workloads two
  // seeds agreeing event-for-event would mean seeding is broken.
  EXPECT_NE(a.executed_events, c.executed_events);
}

}  // namespace
}  // namespace netclone::harness
