#include "harness/traffic_shapes.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "core/groups.hpp"
#include "host/client.hpp"

namespace netclone::harness {
namespace {

using host::Client;
using host::RateSegment;

TEST(FlashCrowd, ProfileShape) {
  const auto profile = flash_crowd_profile(SimTime::milliseconds(10),
                                           SimTime::milliseconds(5), 4.0);
  ASSERT_EQ(profile.size(), 2U);
  // Before, during, and after the crowd — via the client's own lookup.
  EXPECT_DOUBLE_EQ(
      Client::profile_multiplier(profile, SimTime::milliseconds(9)), 1.0);
  EXPECT_DOUBLE_EQ(
      Client::profile_multiplier(profile, SimTime::milliseconds(10)), 4.0);
  EXPECT_DOUBLE_EQ(
      Client::profile_multiplier(profile, SimTime::milliseconds(14)), 4.0);
  EXPECT_DOUBLE_EQ(
      Client::profile_multiplier(profile, SimTime::milliseconds(15)), 1.0);
  EXPECT_DOUBLE_EQ(
      Client::profile_multiplier(profile, SimTime::milliseconds(60)), 1.0);
}

TEST(FlashCrowd, RejectsDegenerateInputs) {
  EXPECT_THROW((void)flash_crowd_profile(SimTime::milliseconds(1),
                                         SimTime::zero(), 2.0),
               CheckFailure);
  EXPECT_THROW((void)flash_crowd_profile(SimTime::milliseconds(1),
                                         SimTime::milliseconds(1), 0.0),
               CheckFailure);
}

TEST(Diurnal, SwingsBetweenTroughAndPeak) {
  const SimTime period = SimTime::milliseconds(20);
  const auto profile =
      diurnal_profile(period, 0.25, SimTime::milliseconds(40), 16);
  ASSERT_EQ(profile.size(), 32U);
  double lo = 1e9;
  double hi = -1e9;
  for (const RateSegment& seg : profile) {
    EXPECT_GT(seg.multiplier, 0.0);
    lo = std::min(lo, seg.multiplier);
    hi = std::max(hi, seg.multiplier);
  }
  // The sampled sine must come close to both extremes of [min, 1].
  EXPECT_LT(lo, 0.30);
  EXPECT_GE(lo, 0.25);
  EXPECT_GT(hi, 0.95);
  EXPECT_LE(hi, 1.0 + 1e-12);
  // Segments are sorted by start time (the client requires this).
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_LT(profile[i - 1].from, profile[i].from);
  }
  // The curve repeats each period.
  EXPECT_DOUBLE_EQ(profile[0].multiplier, profile[16].multiplier);
}

TEST(Diurnal, RejectsDegenerateInputs) {
  EXPECT_THROW((void)diurnal_profile(SimTime::zero(), 0.5,
                                     SimTime::milliseconds(10)),
               CheckFailure);
  EXPECT_THROW((void)diurnal_profile(SimTime::milliseconds(10), 0.0,
                                     SimTime::milliseconds(10)),
               CheckFailure);
  EXPECT_THROW((void)diurnal_profile(SimTime::milliseconds(10), 1.5,
                                     SimTime::milliseconds(10)),
               CheckFailure);
}

TEST(Zipf, WeightsFollowPowerLaw) {
  const auto w = zipf_weights(100, 1.0);
  ASSERT_EQ(w.size(), 100U);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[9], 0.1);
  // s == 0 degenerates to uniform.
  for (const double u : zipf_weights(8, 0.0)) {
    EXPECT_DOUBLE_EQ(u, 1.0);
  }
}

TEST(Zipf, ObservedSkewMatchesWeights) {
  // Draw through the client's own cdf/pick path and compare observed
  // frequencies to the analytic distribution.
  const std::size_t n = 20;
  const auto weights = zipf_weights(n, 1.2);
  const auto cdf = Client::weight_cdf(weights);
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::uint64_t> counts(n, 0);
  Rng rng{42};
  const std::uint64_t draws = 200000;
  for (std::uint64_t i = 0; i < draws; ++i) {
    ++counts[Client::pick_weighted(cdf, rng.next_double())];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = weights[i] / total;
    const double observed =
        static_cast<double>(counts[i]) / static_cast<double>(draws);
    EXPECT_NEAR(observed, expected, 0.01) << "item " << i;
  }
  // Same seed, same draws: the sampler is deterministic.
  std::vector<std::uint64_t> again(n, 0);
  Rng rng2{42};
  for (std::uint64_t i = 0; i < draws; ++i) {
    ++again[Client::pick_weighted(cdf, rng2.next_double())];
  }
  EXPECT_EQ(counts, again);
}

TEST(Hotspot, ConcentratesMassOnHotRack) {
  // 3 racks x 2 servers: groups whose first candidate is sid 2 or 3
  // belong to rack 1.
  const auto groups = core::build_group_pairs(6);
  const auto weights = hotspot_group_weights(groups, 2, 1, 0.7);
  ASSERT_EQ(weights.size(), groups.size());
  double hot_mass = 0.0;
  double cold_mass = 0.0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::size_t rack = groups[i].srv1 / 2;
    (rack == 1 ? hot_mass : cold_mass) += weights[i];
  }
  EXPECT_NEAR(hot_mass, 0.7, 1e-9);
  EXPECT_NEAR(cold_mass, 0.3, 1e-9);
  // Every weight positive, so weight_cdf accepts the vector.
  (void)Client::weight_cdf(weights);
}

TEST(Hotspot, RejectsDegenerateInputs) {
  const auto groups = core::build_group_pairs(4);
  EXPECT_THROW((void)hotspot_group_weights(groups, 2, 5, 0.5),
               CheckFailure);
  EXPECT_THROW((void)hotspot_group_weights(groups, 2, 0, 1.0),
               CheckFailure);
  EXPECT_THROW((void)hotspot_group_weights(groups, 0, 0, 0.5),
               CheckFailure);
}

}  // namespace
}  // namespace netclone::harness
