#include "sim/simulator.hpp"
#include "pisa/switch_device.hpp"

#include <gtest/gtest.h>

#include "phys/topology.hpp"
#include "pisa/resources.hpp"
#include "test_util.hpp"

namespace netclone::pisa {
namespace {

using namespace netclone::literals;
using netclone::testing::CaptureNode;
using netclone::testing::make_request;

/// Forwards every packet to a fixed port; counts passes in a register.
class EchoProgram : public SwitchProgram {
 public:
  EchoProgram(Pipeline& pipeline, std::size_t out_port)
      : counter_(pipeline, "count", 0), out_port_(out_port) {}

  void on_ingress(wire::Packet&, PacketMetadata& md,
                  PipelinePass& pass) override {
    (void)counter_.execute(pass, [](std::uint32_t& c) { return ++c; });
    md.egress_port = out_port_;
  }
  [[nodiscard]] const char* name() const override { return "Echo"; }
  [[nodiscard]] std::uint32_t count() const { return counter_.peek(); }

 private:
  RegisterScalar<std::uint32_t> counter_;
  std::size_t out_port_;
};

/// Multicasts requests to group 1, drops responses.
class McastProgram : public SwitchProgram {
 public:
  void on_ingress(wire::Packet& pkt, PacketMetadata& md,
                  PipelinePass&) override {
    if (pkt.has_netclone() && pkt.nc().is_response()) {
      md.drop = true;
      return;
    }
    md.multicast_group = 1;
  }
  [[nodiscard]] const char* name() const override { return "Mcast"; }
};

/// First pass: send to the loopback port. Recirculated pass: forward to
/// port `out`, stamping SID so the test can observe the second pass.
class RecircProgram : public SwitchProgram {
 public:
  RecircProgram(std::size_t loopback, std::size_t out)
      : loopback_(loopback), out_(out) {}

  void on_ingress(wire::Packet& pkt, PacketMetadata& md,
                  PipelinePass&) override {
    if (md.is_recirculated) {
      pkt.nc().sid = 99;
      md.egress_port = out_;
    } else {
      md.egress_port = loopback_;
    }
  }
  [[nodiscard]] const char* name() const override { return "Recirc"; }

 private:
  std::size_t loopback_;
  std::size_t out_;
};

struct Rig {
  sim::Simulator sim;
  phys::Topology topo{sim};
  pisa::SwitchDevice* sw = nullptr;
  CaptureNode* a = nullptr;
  CaptureNode* b = nullptr;
  std::size_t port_a = 0;  // switch-side ports
  std::size_t port_b = 0;

  Rig() {
    sw = &topo.add_node<SwitchDevice>(sim, "sw");
    a = &topo.add_node<CaptureNode>("a");
    b = &topo.add_node<CaptureNode>("b");
    port_a = topo.connect(*a, *sw).port_on_b;
    port_b = topo.connect(*b, *sw).port_on_b;
  }
};

TEST(SwitchDevice, ForwardsThroughProgramWithPipelineLatency) {
  Rig rig;
  auto program =
      std::make_shared<EchoProgram>(rig.sw->pipeline(), rig.port_b);
  rig.sw->load_program(program);

  rig.a->transmit(0, make_request(0, 1, 0, 0).serialize());
  rig.sim.run();
  ASSERT_EQ(rig.b->received.size(), 1U);
  EXPECT_EQ(program->count(), 1U);
  EXPECT_EQ(rig.sw->stats().rx_frames, 1U);
  EXPECT_EQ(rig.sw->stats().tx_frames, 1U);
  // Two link hops (850 ns each + serialization) + 400 ns pipeline.
  EXPECT_GT(rig.sim.now(), 2100_ns);
}

TEST(SwitchDevice, NoProgramDropsEverything) {
  Rig rig;
  rig.a->transmit(0, make_request(0, 1, 0, 0).serialize());
  rig.sim.run();
  EXPECT_TRUE(rig.b->received.empty());
  EXPECT_EQ(rig.sw->stats().dropped_while_failed, 1U);
}

TEST(SwitchDevice, ProgramWithoutDecisionCountsDrop) {
  class NullProgram : public SwitchProgram {
    void on_ingress(wire::Packet&, PacketMetadata&, PipelinePass&) override {
    }
    [[nodiscard]] const char* name() const override { return "Null"; }
  };
  Rig rig;
  rig.sw->load_program(std::make_shared<NullProgram>());
  rig.a->transmit(0, make_request(0, 1, 0, 0).serialize());
  rig.sim.run();
  EXPECT_EQ(rig.sw->stats().dropped_by_program, 1U);
}

TEST(SwitchDevice, ParseErrorsAreCounted) {
  Rig rig;
  rig.sw->load_program(std::make_shared<EchoProgram>(rig.sw->pipeline(),
                                                     rig.port_b));
  rig.a->transmit(0, wire::Frame(10, std::byte{0}));
  rig.sim.run();
  EXPECT_EQ(rig.sw->stats().parse_errors, 1U);
  EXPECT_TRUE(rig.b->received.empty());
}

TEST(SwitchDevice, MulticastCopiesToAllGroupPorts) {
  Rig rig;
  rig.sw->load_program(std::make_shared<McastProgram>());
  rig.sw->configure_multicast_group(1, {rig.port_a, rig.port_b});
  rig.a->transmit(0, make_request(0, 7, 0, 0).serialize());
  rig.sim.run();
  EXPECT_EQ(rig.a->received.size(), 1U);
  EXPECT_EQ(rig.b->received.size(), 1U);
  EXPECT_EQ(rig.sw->stats().multicast_copies, 1U);
  // Copies are identical on the wire.
  EXPECT_EQ(rig.a->received[0].frame, rig.b->received[0].frame);
}

TEST(SwitchDevice, MissingMulticastGroupDrops) {
  Rig rig;
  rig.sw->load_program(std::make_shared<McastProgram>());
  rig.a->transmit(0, make_request(0, 7, 0, 0).serialize());
  rig.sim.run();
  EXPECT_EQ(rig.sw->stats().dropped_by_program, 1U);
}

TEST(SwitchDevice, RecirculationReentersIngress) {
  Rig rig;
  const std::size_t loopback = rig.sw->add_internal_port();
  rig.sw->set_loopback_port(loopback);
  rig.sw->load_program(
      std::make_shared<RecircProgram>(loopback, rig.port_b));

  rig.a->transmit(0, make_request(0, 5, 0, 0).serialize());
  rig.sim.run();
  ASSERT_EQ(rig.b->received.size(), 1U);
  const auto pkt = wire::Packet::parse(rig.b->received[0].frame);
  EXPECT_EQ(pkt.nc().sid, 99);  // stamped on the recirculated pass
  EXPECT_EQ(rig.sw->stats().recirculated, 1U);
  EXPECT_EQ(rig.sw->stats().rx_frames, 2U);  // ingress seen twice
}

TEST(SwitchDevice, FailureDropsAndWipesSoftState) {
  Rig rig;
  auto program =
      std::make_shared<EchoProgram>(rig.sw->pipeline(), rig.port_b);
  rig.sw->load_program(program);

  rig.a->transmit(0, make_request(0, 1, 0, 0).serialize());
  rig.sim.run();
  EXPECT_EQ(program->count(), 1U);

  rig.sw->fail();
  EXPECT_TRUE(rig.sw->failed());
  EXPECT_EQ(program->count(), 0U);  // registers wiped on reboot

  rig.a->transmit(0, make_request(0, 2, 0, 0).serialize());
  rig.sim.run();
  EXPECT_EQ(rig.b->received.size(), 1U);  // still only the pre-failure one
  EXPECT_GE(rig.sw->stats().dropped_while_failed, 1U);

  rig.sw->recover();
  rig.a->transmit(0, make_request(0, 3, 0, 0).serialize());
  rig.sim.run();
  EXPECT_EQ(rig.b->received.size(), 2U);
  EXPECT_EQ(program->count(), 1U);
}

TEST(SwitchDevice, DoubleFailAndRecoverAreIdempotent) {
  Rig rig;
  rig.sw->fail();
  rig.sw->fail();
  rig.sw->recover();
  rig.sw->recover();
  EXPECT_FALSE(rig.sw->failed());
}

}  // namespace
}  // namespace netclone::pisa
