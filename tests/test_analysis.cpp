// Queueing-theory reference models, and the validation that the simulated
// server stack reproduces M/M/c behavior — the strongest evidence that the
// latency numbers the figure benches report are trustworthy.
#include "harness/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::harness {
namespace {

TEST(Mmc, UtilizationAndLimits) {
  MmcModel m{4, 100000.0, 25e-6};  // a = 2.5 over 4 servers
  EXPECT_NEAR(m.utilization(), 0.625, 1e-12);
  MmcModel overloaded{2, 100000.0, 25e-6};
  EXPECT_DOUBLE_EQ(overloaded.probability_of_wait(), 1.0);
  EXPECT_TRUE(std::isinf(overloaded.mean_wait_s()));
}

TEST(Mmc, MM1ClosedForm) {
  // For c=1, P(wait) = rho and Wq = rho/(mu - lambda).
  const double lambda = 30000.0;
  const double s = 25e-6;
  MmcModel m{1, lambda, s};
  const double rho = lambda * s;
  EXPECT_NEAR(m.probability_of_wait(), rho, 1e-9);
  EXPECT_NEAR(m.mean_wait_s(), rho * s / (1.0 - rho), 1e-12);
}

TEST(Mmc, ErlangCKnownValue) {
  // Classic table value: c=5, a=4 Erlangs -> C(5,4) ~ 0.5541.
  MmcModel m{5, 4.0, 1.0};
  EXPECT_NEAR(m.probability_of_wait(), 0.5541, 0.0005);
}

TEST(Mmc, QueueEmptyProbabilityBounds) {
  MmcModel light{16, 100000.0, 25e-6};  // rho ~ 0.156
  EXPECT_GT(light.probability_queue_empty(), 0.999);
  MmcModel heavy{16, 575000.0, 25e-6};  // rho ~ 0.9
  EXPECT_LT(heavy.probability_queue_empty(), 0.7);
  EXPECT_GT(heavy.probability_queue_empty(), 0.1);
}

TEST(Quantiles, ExponentialClosedForm) {
  EXPECT_NEAR(exponential_quantile(25.0, 0.99), 25.0 * std::log(100.0),
              1e-9);
  EXPECT_DOUBLE_EQ(exponential_quantile(25.0, 0.0), 0.0);
}

TEST(Quantiles, MixtureReducesToExponential) {
  // p = 0 mixture is a plain exponential.
  EXPECT_NEAR(jitter_mixture_quantile(25.0, 0.0, 15.0, 0.99),
              exponential_quantile(25.0, 0.99), 0.01);
  // With 1% jitter at 15x, the p99 must exceed the plain exponential p99.
  EXPECT_GT(jitter_mixture_quantile(25.0, 0.01, 15.0, 0.99),
            exponential_quantile(25.0, 0.99));
}

// The flagship validation: a baseline cluster with no jitter is a set of
// independent M/M/c queues (Poisson arrivals split uniformly across
// servers). The simulated mean latency must match Erlang-C plus the fixed
// network/processing path.
class MmcValidation : public ::testing::TestWithParam<double> {};

TEST_P(MmcValidation, SimulatorMatchesErlangC) {
  const double rho = GetParam();
  constexpr std::uint32_t kWorkers = 8;
  constexpr double kServiceUs = 25.0;
  constexpr std::size_t kServers = 2;

  ClusterConfig cfg;
  cfg.scheme = Scheme::kBaseline;
  cfg.server_workers.assign(kServers, kWorkers);
  cfg.factory = std::make_shared<host::ExponentialWorkload>(kServiceUs);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.0, 1.0});
  cfg.warmup = SimTime::milliseconds(10);
  cfg.measure = SimTime::milliseconds(60);
  const double capacity =
      cluster_capacity_rps(cfg.server_workers, kServiceUs);
  cfg.offered_rps = rho * capacity;

  Experiment experiment{cfg};
  const ExperimentResult result = experiment.run();

  // Each server sees a Poisson stream at rate offered/kServers.
  MmcModel model{kWorkers, cfg.offered_rps / kServers, kServiceUs * 1e-6};
  const double theory_us = model.mean_sojourn_s() * 1e6;

  // Fixed path: client tx + 2 links + switch + dispatcher on the way in,
  // response tx + 2 links + switch + client rx on the way back (~5 us).
  const double overhead_us = 5.3;
  EXPECT_NEAR(result.mean_us, theory_us + overhead_us,
              (theory_us + overhead_us) * 0.06)
      << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, MmcValidation,
                         ::testing::Values(0.3, 0.5, 0.7, 0.85),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "rho" + std::to_string(static_cast<int>(
                                              info.param * 100));
                         });

}  // namespace
}  // namespace netclone::harness
