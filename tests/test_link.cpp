#include "phys/link.hpp"

#include <gtest/gtest.h>

#include "phys/node.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace netclone::phys {
namespace {

using namespace netclone::literals;
using netclone::testing::CaptureNode;

wire::Frame frame_of_size(std::size_t n) {
  return wire::Frame(n, std::byte{0x42});
}

TEST(Link, DeliversWithPropagationAndSerializationDelay) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 100e9;       // 100 GbE: 1000 bytes = 80 ns
  params.delay = 850_ns;
  Link link{sim, params};
  link.connect_to(&dst, 3);

  link.transmit(frame_of_size(1000));
  sim.run();
  ASSERT_EQ(dst.received.size(), 1U);
  EXPECT_EQ(dst.received[0].port, 3U);
  EXPECT_EQ(sim.now(), 930_ns);  // 80 + 850
  EXPECT_EQ(link.stats().tx_frames, 1U);
  EXPECT_EQ(link.stats().tx_bytes, 1000U);
}

TEST(Link, BackToBackFramesSerialize) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;  // 1 Gb: 125 bytes = 1 us
  params.delay = SimTime::zero();
  Link link{sim, params};
  link.connect_to(&dst, 0);

  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  sim.run();
  ASSERT_EQ(dst.received.size(), 2U);
  // Second frame waits for the first to finish serializing.
  EXPECT_EQ(sim.now(), 2_us);
}

TEST(Link, QueueOverflowDrops) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = SimTime::zero();
  params.queue_capacity = 2;
  Link link{sim, params};
  link.connect_to(&dst, 0);

  for (int i = 0; i < 5; ++i) {
    link.transmit(frame_of_size(125));
  }
  sim.run();
  // One in flight + 2 queued; the other 2 dropped.
  EXPECT_EQ(dst.received.size(), 3U);
  EXPECT_EQ(link.stats().dropped_frames, 2U);
}

TEST(Link, UnconnectedDrops) {
  sim::Simulator sim;
  Link link{sim, LinkParams{}};
  link.transmit(frame_of_size(100));
  sim.run();
  EXPECT_EQ(link.stats().dropped_frames, 1U);
  EXPECT_EQ(link.stats().tx_frames, 0U);
}

TEST(Link, DownLinkDropsNewFrames) {
  sim::Simulator sim;
  CaptureNode dst;
  Link link{sim, LinkParams{}};
  link.connect_to(&dst, 0);
  link.set_up(false);
  link.transmit(frame_of_size(100));
  sim.run();
  EXPECT_TRUE(dst.received.empty());
  EXPECT_EQ(link.stats().dropped_frames, 1U);
}

TEST(Link, GoingDownLosesInFlightFrames) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.delay = 1_ms;
  Link link{sim, params};
  link.connect_to(&dst, 0);
  link.transmit(frame_of_size(100));
  sim.schedule_at(10_us, [&] { link.set_up(false); });
  sim.run();
  EXPECT_TRUE(dst.received.empty());
}

TEST(Link, BusyLinkHoldsOneDeliveryEvent) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = SimTime::zero();
  Link link{sim, params};
  link.connect_to(&dst, 0);

  for (int i = 0; i < 5; ++i) {
    link.transmit(frame_of_size(125));
  }
  // Batched delivery: five frames in flight, one materialized event.
  EXPECT_EQ(link.in_flight(), 5U);
  EXPECT_EQ(sim.pending_events(), 1U);
  sim.run();
  EXPECT_EQ(dst.received.size(), 5U);
  EXPECT_EQ(link.in_flight(), 0U);
}

TEST(Link, DownClearsInFlightAndCancelsDelivery) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = 1_ms;
  Link link{sim, params};
  link.connect_to(&dst, 0);

  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  link.set_up(false);
  EXPECT_EQ(link.in_flight(), 0U);
  EXPECT_EQ(sim.pending_events(), 0U);
  EXPECT_EQ(link.stats().flushed_frames, 3U);
  sim.run();
  EXPECT_TRUE(dst.received.empty());
}

// Regression: frames in flight when the link went down used to leave
// their delivery events behind; firing into the revived link, each one
// decremented the drop-tail occupancy counter it no longer owned, so the
// counter underflowed and the revived link spuriously dropped (or
// over-admitted) traffic. Going down must forget in-flight frames
// entirely.
TEST(Link, DownUpCycleKeepsDropTailOccupancyExact) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;  // 125 bytes = 1 us
  params.delay = SimTime::zero();
  params.queue_capacity = 2;
  Link link{sim, params};
  link.connect_to(&dst, 0);

  // One frame serializing + two queued, then the cable is pulled while
  // all three are still in flight.
  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  sim.schedule_at(500_ns, [&] {
    link.set_up(false);
    link.set_up(true);
    // The revived link must accept a fresh burst up to its full
    // capacity: one serializing + two queued, nothing dropped.
    link.transmit(frame_of_size(125));
    link.transmit(frame_of_size(125));
    link.transmit(frame_of_size(125));
  });
  sim.run();
  EXPECT_EQ(dst.received.size(), 3U);  // only the post-revival burst
  EXPECT_EQ(link.stats().flushed_frames, 3U);
  EXPECT_EQ(link.stats().dropped_frames, 0U);

  // And the occupancy keeps working after the cycle: a burst one past
  // capacity sees exactly one drop-tail loss.
  const std::uint64_t before = link.stats().dropped_frames;
  for (int i = 0; i < 4; ++i) {
    link.transmit(frame_of_size(125));
  }
  sim.run();
  EXPECT_EQ(link.stats().dropped_frames, before + 1);
  EXPECT_EQ(dst.received.size(), 6U);
}

TEST(Link, RecoversAfterDown) {
  sim::Simulator sim;
  CaptureNode dst;
  Link link{sim, LinkParams{}};
  link.connect_to(&dst, 0);
  link.set_up(false);
  link.set_up(true);
  link.transmit(frame_of_size(100));
  sim.run();
  EXPECT_EQ(dst.received.size(), 1U);
}

TEST(Link, DoubleConnectThrows) {
  sim::Simulator sim;
  CaptureNode dst;
  Link link{sim, LinkParams{}};
  link.connect_to(&dst, 0);
  EXPECT_THROW((void)link.connect_to(&dst, 1), CheckFailure);
}

TEST(Link, ZeroRateRejected) {
  sim::Simulator sim;
  LinkParams params;
  params.rate_bps = 0.0;
  EXPECT_THROW((void)Link(sim, params), CheckFailure);
}

// -- impairment model --------------------------------------------------------

LinkImpairments only(double LinkImpairments::* field, double rate) {
  LinkImpairments cfg;
  cfg.*field = rate;
  return cfg;
}

TEST(LinkFaults, CleanLinkHasNoState) {
  sim::Simulator sim;
  Link link{sim, LinkParams{}};
  EXPECT_EQ(link.impairments(), nullptr);
  link.configure_impairments(only(&LinkImpairments::drop_rate, 0.5), 1);
  ASSERT_NE(link.impairments(), nullptr);
  // An all-zero config removes the state entirely (back to the fast path).
  link.configure_impairments(LinkImpairments{}, 1);
  EXPECT_EQ(link.impairments(), nullptr);
}

TEST(LinkFaults, DropRateOneDropsEverything) {
  sim::Simulator sim;
  CaptureNode dst;
  Link link{sim, LinkParams{}};
  link.connect_to(&dst, 0);
  link.configure_impairments(only(&LinkImpairments::drop_rate, 1.0), 7);
  for (int i = 0; i < 10; ++i) {
    link.transmit(frame_of_size(100));
  }
  sim.run();
  EXPECT_TRUE(dst.received.empty());
  EXPECT_EQ(link.stats().impaired_drops, 10U);
  EXPECT_EQ(link.stats().dropped_frames, 0U);  // counted apart from drop-tail
  EXPECT_EQ(link.queued(), 0U);
}

TEST(LinkFaults, CorruptionFlipsOneBitOnAPrivateCopy) {
  sim::Simulator sim;
  CaptureNode dst;
  Link link{sim, LinkParams{}};
  link.connect_to(&dst, 0);
  link.configure_impairments(only(&LinkImpairments::corrupt_rate, 1.0), 7);

  const wire::Frame original(100, std::byte{0x42});
  // Keep a second handle to the same shared buffer: corruption must not
  // mutate it (multicast shares one buffer across links).
  const wire::FrameHandle shared = wire::FrameHandle::copy_of(original);
  link.transmit(shared);
  sim.run();

  ASSERT_EQ(dst.received.size(), 1U);
  EXPECT_EQ(link.stats().corrupted_frames, 1U);
  const wire::Frame& delivered = dst.received[0].frame;
  ASSERT_EQ(delivered.size(), original.size());
  std::size_t diff_bits = 0;
  std::size_t diff_at = 0;
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    const auto x = static_cast<unsigned>(delivered[i] ^ original[i]);
    if (x != 0) {
      diff_at = i;
      diff_bits += static_cast<std::size_t>(__builtin_popcount(x));
    }
  }
  EXPECT_EQ(diff_bits, 1U);
  EXPECT_GE(diff_at, 14U);  // Ethernet header region is spared
  // The shared handle still reads the pristine bytes.
  EXPECT_TRUE(std::equal(original.begin(), original.end(),
                         shared.bytes().begin()));
}

TEST(LinkFaults, DuplicationDeliversTwoCopies) {
  sim::Simulator sim;
  CaptureNode dst;
  Link link{sim, LinkParams{}};
  link.connect_to(&dst, 0);
  link.configure_impairments(only(&LinkImpairments::duplicate_rate, 1.0), 7);
  link.transmit(frame_of_size(100));
  sim.run();
  EXPECT_EQ(dst.received.size(), 2U);
  EXPECT_EQ(link.stats().duplicated_frames, 1U);
  EXPECT_EQ(link.stats().tx_frames, 2U);
  EXPECT_EQ(dst.received[0].frame, dst.received[1].frame);
}

TEST(LinkFaults, ReorderSwapsBackToBackFrames) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;  // slow enough that both frames queue together
  params.delay = SimTime::zero();
  Link link{sim, params};
  link.connect_to(&dst, 0);
  link.configure_impairments(only(&LinkImpairments::reorder_rate, 1.0), 7);

  link.transmit(wire::Frame(125, std::byte{0xAA}));
  link.transmit(wire::Frame(125, std::byte{0xBB}));
  sim.run();
  ASSERT_EQ(dst.received.size(), 2U);
  EXPECT_GE(link.stats().reordered_frames, 1U);
  // The second-submitted frame arrives first: payloads swapped, delivery
  // times (and drop-tail accounting) untouched.
  EXPECT_EQ(dst.received[0].frame[20], std::byte{0xBB});
  EXPECT_EQ(dst.received[1].frame[20], std::byte{0xAA});
}

TEST(LinkFaults, DeterministicPerSeedStream) {
  const auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    CaptureNode dst;
    Link link{sim, LinkParams{}};
    link.connect_to(&dst, 0);
    LinkImpairments cfg;
    cfg.drop_rate = 0.3;
    cfg.corrupt_rate = 0.2;
    cfg.duplicate_rate = 0.1;
    link.configure_impairments(cfg, seed);
    for (int i = 0; i < 200; ++i) {
      link.transmit(frame_of_size(100));
    }
    sim.run();
    return link.stats();
  };
  const LinkStats a = run_once(11);
  const LinkStats b = run_once(11);
  const LinkStats c = run_once(12);
  EXPECT_EQ(a.impaired_drops, b.impaired_drops);
  EXPECT_EQ(a.corrupted_frames, b.corrupted_frames);
  EXPECT_EQ(a.duplicated_frames, b.duplicated_frames);
  EXPECT_EQ(a.tx_frames, b.tx_frames);
  EXPECT_NE(a.impaired_drops, c.impaired_drops);
}

TEST(LinkFaults, ReconfigureKeepsTheRngStream) {
  // Updating rates mid-run must not reseed: two runs that reconfigure at
  // the same point produce identical outcomes regardless of the seed
  // passed to the second configure call.
  const auto run_once = [](std::uint64_t second_seed) {
    sim::Simulator sim;
    CaptureNode dst;
    Link link{sim, LinkParams{}};
    link.connect_to(&dst, 0);
    link.configure_impairments(
        only(&LinkImpairments::drop_rate, 0.5), 21);
    for (int i = 0; i < 50; ++i) {
      link.transmit(frame_of_size(100));
    }
    sim.run();
    link.configure_impairments(
        only(&LinkImpairments::drop_rate, 0.25), second_seed);
    for (int i = 0; i < 50; ++i) {
      link.transmit(frame_of_size(100));
    }
    sim.run();
    return link.stats().impaired_drops;
  };
  EXPECT_EQ(run_once(1), run_once(999));
}

// Satellite regression: impairments composing with a down/up cycle must
// not corrupt drop-tail occupancy or leak pooled frames.
TEST(LinkFaults, ComposeWithDownUpCycle) {
  const std::uint64_t live_before =
      wire::FramePool::instance().stats().live;
  {
    sim::Simulator sim;
    CaptureNode dst;
    LinkParams params;
    params.rate_bps = 1e9;  // 125 bytes = 1 us
    params.delay = SimTime::zero();
    params.queue_capacity = 2;
    Link link{sim, params};
    link.connect_to(&dst, 0);
    LinkImpairments cfg;
    cfg.duplicate_rate = 0.5;
    cfg.corrupt_rate = 0.3;
    cfg.reorder_rate = 0.3;
    link.configure_impairments(cfg, 99);

    // Burst (duplicates contend for the same drop-tail slots), then pull
    // the cable mid-flight, revive, and burst again.
    for (int i = 0; i < 6; ++i) {
      link.transmit(frame_of_size(125));
    }
    sim.schedule_at(500_ns, [&] {
      link.set_up(false);
      EXPECT_EQ(link.in_flight(), 0U);
      EXPECT_EQ(link.queued(), 0U);
      link.set_up(true);
      for (int i = 0; i < 6; ++i) {
        link.transmit(frame_of_size(125));
      }
    });
    sim.run();

    // Occupancy fully drained, and every offered frame is accounted as
    // admitted (tx_frames; flushed frames are the admitted subset lost to
    // the cable pull), impaired-dropped, or drop-tailed.
    EXPECT_EQ(link.queued(), 0U);
    EXPECT_EQ(link.in_flight(), 0U);
    const LinkStats& s = link.stats();
    EXPECT_EQ(12U + s.duplicated_frames,
              s.tx_frames + s.impaired_drops + s.dropped_frames);
    EXPECT_LE(s.flushed_frames, s.tx_frames);
    EXPECT_GT(s.flushed_frames, 0U);

    // And the occupancy still enforces capacity exactly after the cycle.
    const std::uint64_t before = s.dropped_frames;
    link.configure_impairments(LinkImpairments{}, 0);
    for (int i = 0; i < 4; ++i) {
      link.transmit(frame_of_size(125));
    }
    sim.run();
    EXPECT_EQ(link.stats().dropped_frames, before + 1);
  }
  EXPECT_EQ(wire::FramePool::instance().stats().live, live_before);
}

}  // namespace
}  // namespace netclone::phys
