#include "phys/link.hpp"

#include <gtest/gtest.h>

#include "phys/node.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace netclone::phys {
namespace {

using namespace netclone::literals;
using netclone::testing::CaptureNode;

wire::Frame frame_of_size(std::size_t n) {
  return wire::Frame(n, std::byte{0x42});
}

TEST(Link, DeliversWithPropagationAndSerializationDelay) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 100e9;       // 100 GbE: 1000 bytes = 80 ns
  params.delay = 850_ns;
  Link link{sim, params};
  link.connect_to(&dst, 3);

  link.transmit(frame_of_size(1000));
  sim.run();
  ASSERT_EQ(dst.received.size(), 1U);
  EXPECT_EQ(dst.received[0].port, 3U);
  EXPECT_EQ(sim.now(), 930_ns);  // 80 + 850
  EXPECT_EQ(link.stats().tx_frames, 1U);
  EXPECT_EQ(link.stats().tx_bytes, 1000U);
}

TEST(Link, BackToBackFramesSerialize) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;  // 1 Gb: 125 bytes = 1 us
  params.delay = SimTime::zero();
  Link link{sim, params};
  link.connect_to(&dst, 0);

  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  sim.run();
  ASSERT_EQ(dst.received.size(), 2U);
  // Second frame waits for the first to finish serializing.
  EXPECT_EQ(sim.now(), 2_us);
}

TEST(Link, QueueOverflowDrops) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = SimTime::zero();
  params.queue_capacity = 2;
  Link link{sim, params};
  link.connect_to(&dst, 0);

  for (int i = 0; i < 5; ++i) {
    link.transmit(frame_of_size(125));
  }
  sim.run();
  // One in flight + 2 queued; the other 2 dropped.
  EXPECT_EQ(dst.received.size(), 3U);
  EXPECT_EQ(link.stats().dropped_frames, 2U);
}

TEST(Link, UnconnectedDrops) {
  sim::Simulator sim;
  Link link{sim, LinkParams{}};
  link.transmit(frame_of_size(100));
  sim.run();
  EXPECT_EQ(link.stats().dropped_frames, 1U);
  EXPECT_EQ(link.stats().tx_frames, 0U);
}

TEST(Link, DownLinkDropsNewFrames) {
  sim::Simulator sim;
  CaptureNode dst;
  Link link{sim, LinkParams{}};
  link.connect_to(&dst, 0);
  link.set_up(false);
  link.transmit(frame_of_size(100));
  sim.run();
  EXPECT_TRUE(dst.received.empty());
  EXPECT_EQ(link.stats().dropped_frames, 1U);
}

TEST(Link, GoingDownLosesInFlightFrames) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.delay = 1_ms;
  Link link{sim, params};
  link.connect_to(&dst, 0);
  link.transmit(frame_of_size(100));
  sim.schedule_at(10_us, [&] { link.set_up(false); });
  sim.run();
  EXPECT_TRUE(dst.received.empty());
}

TEST(Link, BusyLinkHoldsOneDeliveryEvent) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = SimTime::zero();
  Link link{sim, params};
  link.connect_to(&dst, 0);

  for (int i = 0; i < 5; ++i) {
    link.transmit(frame_of_size(125));
  }
  // Batched delivery: five frames in flight, one materialized event.
  EXPECT_EQ(link.in_flight(), 5U);
  EXPECT_EQ(sim.pending_events(), 1U);
  sim.run();
  EXPECT_EQ(dst.received.size(), 5U);
  EXPECT_EQ(link.in_flight(), 0U);
}

TEST(Link, DownClearsInFlightAndCancelsDelivery) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = 1_ms;
  Link link{sim, params};
  link.connect_to(&dst, 0);

  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  link.set_up(false);
  EXPECT_EQ(link.in_flight(), 0U);
  EXPECT_EQ(sim.pending_events(), 0U);
  EXPECT_EQ(link.stats().flushed_frames, 3U);
  sim.run();
  EXPECT_TRUE(dst.received.empty());
}

// Regression: frames in flight when the link went down used to leave
// their delivery events behind; firing into the revived link, each one
// decremented the drop-tail occupancy counter it no longer owned, so the
// counter underflowed and the revived link spuriously dropped (or
// over-admitted) traffic. Going down must forget in-flight frames
// entirely.
TEST(Link, DownUpCycleKeepsDropTailOccupancyExact) {
  sim::Simulator sim;
  CaptureNode dst;
  LinkParams params;
  params.rate_bps = 1e9;  // 125 bytes = 1 us
  params.delay = SimTime::zero();
  params.queue_capacity = 2;
  Link link{sim, params};
  link.connect_to(&dst, 0);

  // One frame serializing + two queued, then the cable is pulled while
  // all three are still in flight.
  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  link.transmit(frame_of_size(125));
  sim.schedule_at(500_ns, [&] {
    link.set_up(false);
    link.set_up(true);
    // The revived link must accept a fresh burst up to its full
    // capacity: one serializing + two queued, nothing dropped.
    link.transmit(frame_of_size(125));
    link.transmit(frame_of_size(125));
    link.transmit(frame_of_size(125));
  });
  sim.run();
  EXPECT_EQ(dst.received.size(), 3U);  // only the post-revival burst
  EXPECT_EQ(link.stats().flushed_frames, 3U);
  EXPECT_EQ(link.stats().dropped_frames, 0U);

  // And the occupancy keeps working after the cycle: a burst one past
  // capacity sees exactly one drop-tail loss.
  const std::uint64_t before = link.stats().dropped_frames;
  for (int i = 0; i < 4; ++i) {
    link.transmit(frame_of_size(125));
  }
  sim.run();
  EXPECT_EQ(link.stats().dropped_frames, before + 1);
  EXPECT_EQ(dst.received.size(), 6U);
}

TEST(Link, RecoversAfterDown) {
  sim::Simulator sim;
  CaptureNode dst;
  Link link{sim, LinkParams{}};
  link.connect_to(&dst, 0);
  link.set_up(false);
  link.set_up(true);
  link.transmit(frame_of_size(100));
  sim.run();
  EXPECT_EQ(dst.received.size(), 1U);
}

TEST(Link, DoubleConnectThrows) {
  sim::Simulator sim;
  CaptureNode dst;
  Link link{sim, LinkParams{}};
  link.connect_to(&dst, 0);
  EXPECT_THROW((void)link.connect_to(&dst, 1), CheckFailure);
}

TEST(Link, ZeroRateRejected) {
  sim::Simulator sim;
  LinkParams params;
  params.rate_bps = 0.0;
  EXPECT_THROW((void)Link(sim, params), CheckFailure);
}

}  // namespace
}  // namespace netclone::phys
