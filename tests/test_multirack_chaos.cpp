// Multi-rack chaos sweep (slow lane): randomized cluster-wide fault
// plans — chain fail/rejoin schedules layered with rack blinks and trunk
// impairments — must keep the extended auditor clean on every combo and
// reproduce bit-identical chaos digests between the legacy engine and a
// fully sharded run. The tier-1 slice of this sweep lives in
// test_chain_failover.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/faults.hpp"
#include "harness/invariants.hpp"
#include "harness/multirack.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::harness {
namespace {

MultiRackConfig chaos_pod(std::uint64_t seed) {
  MultiRackConfig cfg;
  cfg.server_racks = 2;
  cfg.servers_per_rack = 2;
  cfg.num_aggs = 3;
  cfg.agg_mode = AggMode::kReplicated;
  cfg.workers = 4;
  cfg.num_clients = 4;
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::milliseconds(1);
  cfg.measure = SimTime::milliseconds(6);
  cfg.drain = SimTime::milliseconds(7);
  cfg.seed = seed;
  cfg.offered_rps =
      0.35 * cluster_capacity_rps({4, 4, 4, 4}, 25.0 * 1.14);
  cfg.client_template.retransmit_timeout = SimTime::microseconds(400.0);
  cfg.client_template.max_retransmits = 6;
  return cfg;
}

/// One fail/rejoin schedule plus optional rack and trunk chaos, every
/// draw from `rng` so a combo index always produces the same plan.
/// Chain events respect the installer's spacing contract: successive
/// chain faults sit >= 800us apart, far beyond chain_sync_delay (50us)
/// plus residual flight time.
FaultPlan random_pod_plan(Rng& rng) {
  FaultPlan plan;
  const auto push = [&plan](SimTime at, FaultAction action,
                            const std::string& target, double value = 0.0) {
    FaultEvent ev;
    ev.at = at;
    ev.action = action;
    ev.target = target;
    ev.value = value;
    plan.events.push_back(ev);
  };

  const std::size_t victim = rng.next_below(3);
  const std::string victim_name = "agg" + std::to_string(victim);
  const double fail_us = 1500.0 + 1500.0 * rng.next_double();
  push(SimTime::microseconds(fail_us), FaultAction::kAggFail, victim_name);
  double chain_cursor_us = fail_us;
  if (rng.next_below(4) != 0) {  // usually rejoin, sometimes leave dead
    chain_cursor_us += 800.0 + 600.0 * rng.next_double();
    push(SimTime::microseconds(chain_cursor_us), FaultAction::kAggRejoin,
         victim_name);
    if (rng.next_below(2) == 0) {
      // Second fail-over on the reshaped chain.
      chain_cursor_us += 800.0 + 400.0 * rng.next_double();
      push(SimTime::microseconds(chain_cursor_us), FaultAction::kAggFail,
           "agg" + std::to_string((victim + 1 + rng.next_below(2)) % 3));
    }
  }

  if (rng.next_below(2) == 0) {
    // A rack blink, independent of the chain schedule.
    const std::string rack = "rack" + std::to_string(rng.next_below(2));
    const double down_us = 1000.0 + 2000.0 * rng.next_double();
    push(SimTime::microseconds(down_us), FaultAction::kRackDown, rack);
    push(SimTime::microseconds(down_us + 300.0 + 500.0 * rng.next_double()),
         FaultAction::kRackUp, rack);
  }
  if (rng.next_below(2) == 0) {
    // Lossy trunk between the client ToR and a replica.
    push(SimTime::microseconds(500.0 + 1000.0 * rng.next_double()),
         FaultAction::kDropRate,
         "tor1-agg" + std::to_string(rng.next_below(3)),
         0.01 + 0.03 * rng.next_double());
  }
  return plan;
}

struct ComboOutcome {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
};

ComboOutcome run_combo(const MultiRackConfig& base, std::size_t shards,
                       std::uint64_t combo) {
  MultiRackConfig cfg = base;
  cfg.num_shards = shards;
  MultiRackExperiment exp{cfg};
  (void)exp.run();
  const InvariantReport report = audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << "combo " << combo << " shards " << shards
                           << ":\n"
                           << report.to_string();
  for (const wire::FramePool::Stats& pool : exp.frame_pool_stats()) {
    EXPECT_EQ(pool.live, pool.acquired - pool.released)
        << "combo " << combo << " shards " << shards;
  }
  ComboOutcome out;
  out.digest = chaos_digest(exp);
  out.executed = exp.executed_events();
  return out;
}

TEST(MultiRackChaos, RandomizedFailoverPlansAreAuditCleanAndReproducible) {
  for (std::uint64_t combo = 0; combo < 12; ++combo) {
    Rng rng{0x9E3779B97F4A7C15ULL ^ (combo * 2654435761ULL)};
    MultiRackConfig cfg = chaos_pod(100 + combo);
    cfg.faults = random_pod_plan(rng);

    const ComboOutcome legacy = run_combo(cfg, 0, combo);
    const ComboOutcome sharded = run_combo(cfg, 4, combo);
    EXPECT_EQ(sharded.digest, legacy.digest)
        << "combo " << combo << ": digest diverged between engines";
    EXPECT_EQ(sharded.executed, legacy.executed)
        << "combo " << combo << ": executed_events diverged";

    // Same seed, same plan, same engine: bit-identical rerun.
    const ComboOutcome again = run_combo(cfg, 4, combo);
    EXPECT_EQ(again.digest, sharded.digest)
        << "combo " << combo << ": rerun diverged";
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace netclone::harness
