// Property tests for the hierarchical timing wheel behind the event
// engine (sim/event_arena.hpp): window rollover into and out of the
// overflow heap, cancellation in every tier, dense same-timestamp FIFO
// order (including reservations materialized out of order or mid-drain),
// and a randomized schedule/cancel/run sweep checked against a sort-based
// reference model.
#include "sim/event_arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace netclone::sim {
namespace {

using namespace netclone::literals;

/// One tick = 1 ns; the wheel covers 2^32 ticks before the overflow heap
/// takes over (see event_arena.hpp).
constexpr std::int64_t kWindowNs = std::int64_t{1} << 32;

TEST(TimingWheel, EventsBeyondTheWheelWindowFireInOrder) {
  Simulator sim;
  std::vector<int> order;
  // Deliberately scheduled shuffled: two wheel-resident events, one at
  // the last tick of the window, and three overflow events in distinct
  // 2^32-tick windows.
  sim.schedule_at(SimTime::nanoseconds(3 * kWindowNs + 7),
                  [&] { order.push_back(6); });
  sim.schedule_at(1_ns, [&] { order.push_back(1); });
  sim.schedule_at(SimTime::nanoseconds(kWindowNs + 1),
                  [&] { order.push_back(4); });
  sim.schedule_at(SimTime::nanoseconds(kWindowNs - 1),
                  [&] { order.push_back(3); });
  sim.schedule_at(SimTime::nanoseconds(2 * kWindowNs),
                  [&] { order.push_back(5); });
  sim.schedule_at(100_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(sim.now(), SimTime::nanoseconds(3 * kWindowNs + 7));
}

TEST(TimingWheel, DenseRolloverAcrossTheWindowBoundary) {
  // 200 back-to-back ticks straddling the 2^32 boundary, inserted in a
  // deterministic shuffle: the first half lands in the wheel, the second
  // half in the overflow heap, and extraction must interleave them into
  // one monotone run.
  Simulator sim;
  const std::int64_t base = kWindowNs - 100;
  std::vector<std::int64_t> offsets;
  for (std::int64_t i = 0; i < 200; ++i) {
    offsets.push_back(i);
  }
  Rng rng{2024};
  for (std::size_t i = offsets.size(); i > 1; --i) {
    std::swap(offsets[i - 1], offsets[rng.next_below(i)]);
  }
  std::vector<std::int64_t> fired;
  for (const std::int64_t off : offsets) {
    sim.schedule_at(SimTime::nanoseconds(base + off),
                    [&fired, off] { fired.push_back(off); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 200U);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(TimingWheel, CancelRemovesEventsInEveryTier) {
  // One doomed + one surviving event per tier: level 0 (tick-resolution
  // bucket), levels 1-3 (coarser strides), and the overflow heap.
  Simulator sim;
  const SimTime tiers[] = {
      10_ns,                           // level 0
      1_us,                            // level 1
      100_us,                          // level 2
      20_ms,                           // level 3
      SimTime::nanoseconds(kWindowNs + 500),  // overflow heap
  };
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int i = 0; i < 5; ++i) {
    doomed.push_back(
        sim.schedule_at(tiers[i], [&] { FAIL() << "cancelled event fired"; }));
    sim.schedule_at(tiers[i], [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(sim.pending_events(), 10U);
  for (const EventId id : doomed) {
    sim.cancel(id);
  }
  EXPECT_EQ(sim.pending_events(), 5U);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.executed_events(), 5U);
}

TEST(TimingWheel, DenseSameTickBucketDrainsInSeqOrder) {
  // 500 events on one tick with interleaved cancellations: the bucket is
  // sorted once and drains in scheduling order, skipping tombstones.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(sim.schedule_at(5_us, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 500; i += 3) {
    sim.cancel(ids[static_cast<std::size_t>(i)]);
  }
  sim.run();
  std::vector<int> expected;
  for (int i = 0; i < 500; ++i) {
    if (i % 3 != 0) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(TimingWheel, ReservedSeqsMaterializedOutOfOrderFireInSeqOrder) {
  // Reservations hold their place in the same-timestamp tie order no
  // matter when insert_at_seq materializes them.
  Simulator sim;
  const std::uint64_t r1 = sim.reserve_seq();
  const std::uint64_t r2 = sim.reserve_seq();
  const std::uint64_t r3 = sim.reserve_seq();
  std::vector<int> order;
  sim.schedule_at_seq(10_ns, r3, [&] { order.push_back(3); });
  sim.schedule_at_seq(10_ns, r1, [&] { order.push_back(1); });
  sim.schedule_at(10_ns, [&] { order.push_back(4); });  // drawn after r3
  sim.schedule_at_seq(10_ns, r2, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TimingWheel, ReservationMaterializedMidDrainKeepsItsPlace) {
  // The deferred-scheduler pattern (link FIFO, switch egress FIFO): a
  // callback materializes a reservation at the very tick being drained,
  // with a seq smaller than entries already waiting in the bucket.
  Simulator sim;
  std::vector<int> order;
  std::uint64_t reserved = 0;  // assigned below, between A and B
  sim.schedule_at(10_ns, [&] {  // A
    order.push_back(0);
    // `reserved` was drawn before B and C drew their seqs, so this event
    // must run before both even though it is inserted mid-drain.
    sim.schedule_at_seq(10_ns, reserved, [&] { order.push_back(1); });
  });
  reserved = sim.reserve_seq();
  sim.schedule_at(10_ns, [&] { order.push_back(2); });  // B
  sim.schedule_at(10_ns, [&] { order.push_back(3); });  // C
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TimingWheel, PeekThenEarlierInsertRewindsTheOrigin) {
  // External peek() may advance the wheel origin; inserting before it
  // afterwards must rewind instead of corrupting the order. Exercised on
  // the arena directly — the engine's clock never trails this way.
  EventArena arena;
  arena.insert(100_ns, [] {});
  SimTime when;
  ASSERT_TRUE(arena.peek(when));
  EXPECT_EQ(when, 100_ns);
  arena.insert(50_ns, [] {});
  ASSERT_TRUE(arena.peek(when));
  EXPECT_EQ(when, 50_ns);
  EventCallback cb;
  ASSERT_TRUE(arena.pop(when, cb));
  EXPECT_EQ(when, 50_ns);
  ASSERT_TRUE(arena.pop(when, cb));
  EXPECT_EQ(when, 100_ns);
  EXPECT_TRUE(arena.empty());
}

TEST(TimingWheel, PopDueNeverAdvancesTheOriginPastTheDeadline) {
  // A bounded pop that finds nothing due must leave the origin at or
  // before the deadline, so later inserts between the deadline and the
  // pending event do not rewind.
  EventArena arena;
  arena.insert(1_us, [] {});
  SimTime when;
  EventCallback cb;
  EXPECT_FALSE(arena.pop_due(500_ns, when, cb));
  arena.insert(600_ns, [] {});  // between the deadline and the pending event
  ASSERT_TRUE(arena.pop_due(2_us, when, cb));
  EXPECT_EQ(when, 600_ns);
  ASSERT_TRUE(arena.pop_due(2_us, when, cb));
  EXPECT_EQ(when, 1_us);
}

TEST(TimingWheel, RandomizedScheduleCancelRunMatchesReferenceModel) {
  // Property sweep: random schedules across every tier (including heavy
  // same-tick ties and overflow-window jumps), random cancellations of
  // not-yet-fired events, and run_until() to random deadlines. The global
  // firing order must equal the reference: all surviving events sorted by
  // (when, scheduling order).
  Simulator sim;
  Rng rng{0xFEEDFACE};
  struct Ref {
    SimTime when;
    std::uint64_t order;
    std::size_t idx;
  };
  std::vector<Ref> refs;
  std::vector<EventId> ids;
  std::vector<char> fired;
  std::vector<char> cancelled;
  std::vector<std::size_t> fire_order;
  std::uint64_t order_counter = 0;

  // Spreads chosen to hit: dense ties, level-0/1/2 buckets, level 3, and
  // the overflow heap (beyond the 2^32-tick window).
  const std::uint64_t spreads[] = {16, 200, 60'000, 5'000'000,
                                   3'000'000'000, 8'000'000'000};
  for (int round = 0; round < 30; ++round) {
    const std::size_t batch = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < batch; ++i) {
      const std::uint64_t spread = spreads[rng.next_below(6)];
      const SimTime when =
          sim.now() + SimTime::nanoseconds(static_cast<std::int64_t>(
                          1 + rng.next_below(spread)));
      const std::size_t idx = ids.size();
      ids.push_back(sim.schedule_at(when, [&fire_order, &fired, idx] {
        fire_order.push_back(idx);
        fired[idx] = 1;
      }));
      fired.push_back(0);
      cancelled.push_back(0);
      refs.push_back(Ref{when, order_counter++, idx});
    }
    const std::size_t cancels = rng.next_below(8);
    for (std::size_t i = 0; i < cancels; ++i) {
      const std::size_t idx = rng.next_below(ids.size());
      if (fired[idx] == 0 && cancelled[idx] == 0) {
        sim.cancel(ids[idx]);
        cancelled[idx] = 1;
      }
    }
    sim.run_until(sim.now() + SimTime::nanoseconds(static_cast<std::int64_t>(
                                  rng.next_below(2'000'000'000))));
  }
  sim.run();

  std::vector<Ref> live;
  for (const Ref& ref : refs) {
    if (cancelled[ref.idx] == 0) {
      live.push_back(ref);
    }
  }
  std::sort(live.begin(), live.end(), [](const Ref& a, const Ref& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.order < b.order;
  });
  std::vector<std::size_t> expected;
  expected.reserve(live.size());
  for (const Ref& ref : live) {
    expected.push_back(ref.idx);
  }
  EXPECT_EQ(fire_order, expected);
  EXPECT_EQ(sim.executed_events(), expected.size());
}

}  // namespace
}  // namespace netclone::sim
