#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string_view>

namespace netclone {
namespace {

std::span<const std::byte> bytes_of(std::string_view s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926U);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0x00000000U); }

TEST(Crc32, SingleByte) {
  // CRC32 of "a".
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43U);
}

TEST(Crc32, U32MatchesLittleEndianBytes) {
  const std::uint32_t v = 0x12345678U;
  std::array<std::byte, 4> buf{std::byte{0x78}, std::byte{0x56},
                               std::byte{0x34}, std::byte{0x12}};
  EXPECT_EQ(crc32_u32(v), crc32(buf));
}

TEST(Crc32, U64MatchesLittleEndianBytes) {
  const std::uint64_t v = 0x0102030405060708ULL;
  std::array<std::byte, 8> buf{std::byte{0x08}, std::byte{0x07},
                               std::byte{0x06}, std::byte{0x05},
                               std::byte{0x04}, std::byte{0x03},
                               std::byte{0x02}, std::byte{0x01}};
  EXPECT_EQ(crc32_u64(v), crc32(buf));
}

TEST(Crc32, SequentialIdsSpread) {
  // Filter tables index with CRC32(req_id) % slots; sequential ids must not
  // collapse onto a few slots.
  constexpr std::uint32_t kSlots = 1024;
  std::set<std::uint32_t> slots;
  for (std::uint32_t id = 1; id <= 512; ++id) {
    slots.insert(crc32_u32(id) % kSlots);
  }
  EXPECT_GT(slots.size(), 350U);  // low collision count over 512 draws
}

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE check value.
  EXPECT_EQ(crc16(bytes_of("123456789")), 0x29B1U);
}

TEST(Crc16, EmptyIsInit) { EXPECT_EQ(crc16({}), 0xFFFFU); }

TEST(Fnv1a, KnownVectors) {
  EXPECT_EQ(fnv1a(std::string_view{""}), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a(std::string_view{"a"}), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a(std::string_view{"foobar"}), 0x85944171F73967E8ULL);
}

TEST(Fnv1a, SpanAndStringViewAgree) {
  const std::string_view s = "netclone";
  EXPECT_EQ(fnv1a(s), fnv1a(bytes_of(s)));
}

TEST(Mix64, BijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000U);
}

TEST(Mix64, AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    total_flips += std::popcount(mix64(i) ^ mix64(i ^ 1ULL));
  }
  const double avg = total_flips / 256.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

}  // namespace
}  // namespace netclone
