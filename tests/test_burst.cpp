// Burst execution path (phys/burst.hpp + the absorbing drains in Link and
// SwitchDevice): FrameBurst container semantics, the scheduler's
// probe-and-commit absorption primitive, link-level burst assembly, and —
// the contract the whole feature hangs on — bit-identical end-to-end runs
// with the NETCLONE_BURST toggle on and off, including under fault plans
// and link impairments.
#include "phys/burst.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "chaos_util.hpp"
#include "harness/experiment.hpp"
#include "harness/faults.hpp"
#include "harness/invariants.hpp"
#include "phys/link.hpp"
#include "phys/node.hpp"
#include "pisa/switch_device.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "wire/framebuf.hpp"

namespace netclone::phys {
namespace {

using namespace netclone::literals;

/// Restores the process-wide burst toggle on scope exit, so a failing
/// assertion cannot leak a mode into later tests.
struct BurstModeGuard {
  bool prev;
  explicit BurstModeGuard(bool on) : prev(burst_enabled()) {
    set_burst_enabled(on);
  }
  ~BurstModeGuard() { set_burst_enabled(prev); }
  BurstModeGuard(const BurstModeGuard&) = delete;
  BurstModeGuard& operator=(const BurstModeGuard&) = delete;
};

wire::FrameHandle frame_of_size(std::size_t n) {
  return wire::FrameHandle::copy_of(wire::Frame(n, std::byte{0x42}));
}

// -- FrameBurst container ----------------------------------------------------

TEST(FrameBurst, InlineStorageSpillsToHeapPastCapacity) {
  FrameBurst burst;
  for (std::size_t i = 0; i < 2 * FrameBurst::kInlineFrames + 4; ++i) {
    burst.push_back(SimTime::nanoseconds(static_cast<std::int64_t>(i)),
                    frame_of_size(i + 1));
  }
  const std::size_t n = 2 * FrameBurst::kInlineFrames + 4;
  ASSERT_EQ(burst.size(), n);
  EXPECT_FALSE(burst.empty());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(burst[i].when.ns(), static_cast<std::int64_t>(i));
    EXPECT_EQ(burst[i].frame.size(), i + 1);
  }
  FrameBurst moved = std::move(burst);
  ASSERT_EQ(moved.size(), n);
  EXPECT_EQ(moved[3].frame.size(), 4U);
  EXPECT_EQ(moved[FrameBurst::kInlineFrames + 2].frame.size(),
            FrameBurst::kInlineFrames + 3);
  moved.clear();
  EXPECT_TRUE(moved.empty());
  EXPECT_EQ(moved.size(), 0U);
}

TEST(FrameBurst, DefaultNodeHandlerUnrollsPerFrame) {
  testing::CaptureNode cap;
  FrameBurst burst;
  burst.push_back(1_ns, frame_of_size(10));
  burst.push_back(2_ns, frame_of_size(20));
  cap.handle_burst(7, std::move(burst));
  ASSERT_EQ(cap.received.size(), 2U);
  EXPECT_EQ(cap.received[0].port, 7U);
  EXPECT_EQ(cap.received[0].frame.size(), 10U);
  EXPECT_EQ(cap.received[1].frame.size(), 20U);
}

// -- try_absorb_event --------------------------------------------------------

TEST(Absorb, CommitsOnlyWhenProvablyNext) {
  sim::Simulator sim;

  // Empty queue: any reservation is trivially next.
  const std::uint64_t r0 = sim.reserve_seq();
  EXPECT_TRUE(sim.try_absorb_event(20_ns, r0));
  EXPECT_EQ(sim.now(), 20_ns);
  EXPECT_EQ(sim.executed_events(), 1U);  // absorbed work counts

  // A pending earlier event blocks absorption — at a later instant and
  // at the same instant with a later seq alike.
  bool a_fired = false;
  sim.schedule_at(30_ns, [&] { a_fired = true; });
  const std::uint64_t r1 = sim.reserve_seq();
  EXPECT_FALSE(sim.try_absorb_event(40_ns, r1));
  EXPECT_FALSE(sim.try_absorb_event(30_ns, r1));
  EXPECT_EQ(sim.now(), 20_ns);  // failed probes commit nothing
  EXPECT_EQ(sim.executed_events(), 1U);

  // Strictly before the pending event the probe succeeds.
  EXPECT_TRUE(sim.try_absorb_event(25_ns, r1));
  EXPECT_EQ(sim.now(), 25_ns);
  EXPECT_EQ(sim.executed_events(), 2U);

  sim.run();
  EXPECT_TRUE(a_fired);
  EXPECT_EQ(sim.executed_events(), 3U);

  // Same instant, earlier reserved seq: the reservation wins the tie.
  const std::uint64_t r2 = sim.reserve_seq();
  bool b_fired = false;
  sim.schedule_at(60_ns, [&] { b_fired = true; });
  EXPECT_TRUE(sim.try_absorb_event(60_ns, r2));
  EXPECT_EQ(sim.now(), 60_ns);
  sim.run();
  EXPECT_TRUE(b_fired);
  EXPECT_EQ(sim.executed_events(), 5U);

  // Absorbing into the past is a programming error.
  const std::uint64_t r3 = sim.reserve_seq();
  EXPECT_THROW((void)sim.try_absorb_event(10_ns, r3), CheckFailure);

  // note_absorbed_events folds externally counted coalesced work in.
  sim.note_absorbed_events(5);
  EXPECT_EQ(sim.executed_events(), 10U);
}

// -- link burst assembly -----------------------------------------------------

/// A receiver that records bursts verbatim (stamps included) and single
/// frames separately, with a configurable coalescing horizon.
class BurstRecorder : public Node {
 public:
  explicit BurstRecorder(SimTime horizon)
      : Node("recorder"), horizon_(horizon) {}

  void handle_frame(std::size_t /*port*/, wire::FrameHandle frame) override {
    singles_.push_back(frame.size());
  }
  void handle_burst(std::size_t /*port*/, FrameBurst&& burst) override {
    std::vector<SimTime> stamps;
    for (std::size_t i = 0; i < burst.size(); ++i) {
      stamps.push_back(burst[i].when);
    }
    bursts_.push_back(std::move(stamps));
  }
  [[nodiscard]] SimTime burst_horizon() const override { return horizon_; }

  SimTime horizon_;
  std::vector<std::size_t> singles_;
  std::vector<std::vector<SimTime>> bursts_;
};

TEST(LinkBurst, BackToBackFramesCoalesceIntoOneDelivery) {
  BurstModeGuard guard{true};
  sim::Simulator sim;
  BurstRecorder dst{5_us};
  LinkParams params;
  params.rate_bps = 1e9;  // 125 bytes = 1 us serialization
  params.delay = SimTime::zero();
  Link link{sim, params};
  link.connect_to(&dst, 0);

  for (int i = 0; i < 3; ++i) {
    link.transmit(frame_of_size(125));
  }
  sim.run();
  // One delivery event fired; the two successors were absorbed into it,
  // each at its own serialization-spaced instant.
  EXPECT_TRUE(dst.singles_.empty());
  ASSERT_EQ(dst.bursts_.size(), 1U);
  EXPECT_EQ(dst.bursts_[0], (std::vector<SimTime>{1_us, 2_us, 3_us}));
  EXPECT_EQ(sim.now(), 3_us);
  EXPECT_EQ(sim.executed_events(), 3U);  // 1 fired + 2 absorbed
}

TEST(LinkBurst, HorizonBoundsHowFarTheDrainLooksAhead) {
  BurstModeGuard guard{true};
  sim::Simulator sim;
  BurstRecorder dst{1_us};  // exactly one serialization gap
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = SimTime::zero();
  Link link{sim, params};
  link.connect_to(&dst, 0);

  for (int i = 0; i < 4; ++i) {
    link.transmit(frame_of_size(125));
  }
  sim.run();
  // Each drain takes the head plus the one successor inside its horizon:
  // bursts of two, twice.
  EXPECT_TRUE(dst.singles_.empty());
  ASSERT_EQ(dst.bursts_.size(), 2U);
  EXPECT_EQ(dst.bursts_[0], (std::vector<SimTime>{1_us, 2_us}));
  EXPECT_EQ(dst.bursts_[1], (std::vector<SimTime>{3_us, 4_us}));
  EXPECT_EQ(sim.executed_events(), 4U);
}

TEST(LinkBurst, ZeroHorizonReceiverAlwaysGetsSingleFrames) {
  // Hosts keep burst_horizon() == 0, so even in burst mode a multi-time
  // run is never handed to them in one call.
  BurstModeGuard guard{true};
  sim::Simulator sim;
  BurstRecorder dst{SimTime::zero()};
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = SimTime::zero();
  Link link{sim, params};
  link.connect_to(&dst, 0);

  for (int i = 0; i < 3; ++i) {
    link.transmit(frame_of_size(125));
  }
  sim.run();
  EXPECT_EQ(dst.singles_, (std::vector<std::size_t>{125, 125, 125}));
  EXPECT_TRUE(dst.bursts_.empty());
}

TEST(LinkBurst, OracleModeDeliversPerFrame) {
  BurstModeGuard guard{false};
  sim::Simulator sim;
  BurstRecorder dst{5_us};
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = SimTime::zero();
  Link link{sim, params};
  link.connect_to(&dst, 0);

  for (int i = 0; i < 3; ++i) {
    link.transmit(frame_of_size(125));
  }
  sim.run();
  EXPECT_EQ(dst.singles_.size(), 3U);
  EXPECT_TRUE(dst.bursts_.empty());
  EXPECT_EQ(sim.now(), 3_us);
  EXPECT_EQ(sim.executed_events(), 3U);  // same total as burst mode
}

TEST(SwitchBurst, FailedSwitchAccountsEveryBurstFrame) {
  // The batch-parse stage mirrors the oracle's per-frame bookkeeping even
  // when the whole burst is dropped (no program loaded here).
  BurstModeGuard guard{true};
  sim::Simulator sim;
  pisa::SwitchDevice sw{sim, "sw", pisa::SwitchParams{}};
  FrameBurst burst;
  burst.push_back(1_ns, frame_of_size(64));
  burst.push_back(2_ns, frame_of_size(64));
  sw.handle_burst(0, std::move(burst));
  EXPECT_EQ(sw.stats().rx_frames, 2U);
  EXPECT_EQ(sw.stats().dropped_while_failed, 2U);
}

// -- end-to-end identity: burst on == burst off ------------------------------

struct ModeRun {
  harness::ExperimentResult result{};
  std::uint64_t digest = 0;
  bool audit_ok = false;
  std::string audit_text;
};

ModeRun run_cluster(const harness::ClusterConfig& cfg, bool burst_on) {
  BurstModeGuard guard{burst_on};
  harness::Experiment exp{cfg};
  ModeRun out;
  out.result = exp.run();
  const harness::InvariantReport report = harness::audit_invariants(exp);
  out.audit_ok = report.ok();
  out.audit_text = report.to_string();
  out.digest = harness::chaos_digest(exp);
  return out;
}

void expect_modes_identical(const ModeRun& on, const ModeRun& off,
                            const std::string& what) {
  EXPECT_TRUE(on.audit_ok) << what << " (burst on):\n" << on.audit_text;
  EXPECT_TRUE(off.audit_ok) << what << " (burst off):\n" << off.audit_text;
  EXPECT_EQ(on.digest, off.digest) << what << ": digests diverged";
  EXPECT_EQ(on.result.completed, off.result.completed) << what;
  EXPECT_EQ(on.result.requests_sent, off.result.requests_sent) << what;
  EXPECT_EQ(on.result.p99.ns(), off.result.p99.ns()) << what;
  EXPECT_EQ(on.result.redundant_responses, off.result.redundant_responses)
      << what;
}

TEST(BurstIdentity, CleanClusterRunIsBitIdenticalAcrossModes) {
  // A fig7-style NetClone cluster (retransmission armed, so the shared
  // payload tail path is on the wire too) must produce the same digest,
  // completions, and latency tail with bursting on and off.
  harness::ClusterConfig cfg = testing::chaos_cluster(/*seed=*/77);
  const ModeRun on = run_cluster(cfg, true);
  const ModeRun off = run_cluster(cfg, false);
  expect_modes_identical(on, off, "clean cluster");
  EXPECT_GT(on.result.completed, 0U);
}

TEST(BurstIdentity, ChaosFaultPlansAreBitIdenticalAcrossModes) {
  // Three combos of the chaos sweep's randomized fault plans (crashes,
  // reboots, outages, impairments), each run in both modes.
  for (std::uint64_t combo = 0; combo < 3; ++combo) {
    harness::ClusterConfig cfg =
        testing::chaos_cluster(/*seed=*/1000 + combo);
    Rng plan_rng{0xC0FFEE ^ combo};
    cfg.faults = testing::random_fault_plan(
        plan_rng, cfg.server_workers.size(), cfg.num_clients);
    const ModeRun on = run_cluster(cfg, true);
    const ModeRun off = run_cluster(cfg, false);
    expect_modes_identical(on, off,
                           "chaos combo " + std::to_string(combo));
  }
}

TEST(BurstIdentity, ImpairedLinksInsideBurstsMatchAcrossModes) {
  // Link impairments rewrite the FIFO a burst drains from (drops shrink
  // it, duplicates share buffers, reorders swap frames between reserved
  // slots): the absorbing drain must stay bit-identical to the oracle
  // through all of it.
  harness::ClusterConfig cfg = testing::chaos_cluster(/*seed=*/9);
  using harness::FaultAction;
  using harness::FaultEvent;
  const auto impair = [](const char* link, FaultAction action,
                         double rate) {
    FaultEvent ev;
    ev.at = SimTime::microseconds(600.0);
    ev.target = link;
    ev.action = action;
    ev.value = rate;
    return ev;
  };
  cfg.faults.events = {
      impair("c0-sw0", FaultAction::kDropRate, 0.02),
      impair("sw0-s1", FaultAction::kReorderRate, 0.05),
      impair("s2-sw0", FaultAction::kDuplicateRate, 0.03),
      impair("sw0-c1", FaultAction::kCorruptRate, 0.02),
  };
  const ModeRun on = run_cluster(cfg, true);
  const ModeRun off = run_cluster(cfg, false);
  expect_modes_identical(on, off, "impaired links");
  EXPECT_GT(on.result.completed, 0U);
}

}  // namespace
}  // namespace netclone::phys
