// Shared machinery for the chaos-sweep tests: a small NetClone cluster
// with TCP-mode retransmission armed, a randomized-but-deterministic
// fault-plan generator, and the per-combo contract (auditor clean, two
// same-seed runs produce identical digests, the frame pool leaks
// nothing across the experiments' lifetime).
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/experiment.hpp"
#include "harness/faults.hpp"
#include "harness/invariants.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "wire/framebuf.hpp"

namespace netclone::testing {

inline harness::ClusterConfig chaos_cluster(std::uint64_t seed) {
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.server_workers = {4, 4, 4};
  cfg.num_clients = 2;
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::microseconds(500.0);
  cfg.measure = SimTime::milliseconds(2);
  cfg.drain = SimTime::milliseconds(3);
  cfg.seed = seed;
  // Retransmission keeps the run making progress through the faults (and
  // exercises the backoff machinery under chaos).
  cfg.netclone.id_mode = core::RequestIdMode::kClientTuple;
  cfg.client_template.retransmit_timeout = SimTime::microseconds(400.0);
  cfg.client_template.max_retransmits = 4;
  const double capacity =
      harness::cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  cfg.offered_rps = 0.35 * capacity;
  return cfg;
}

/// "s3"-style node name, built by append rather than operator+ to dodge
/// a GCC 12 -Wrestrict false positive on char* + to_string temporaries.
inline std::string chaos_node_name(char prefix, std::uint64_t index) {
  std::string name(1, prefix);
  name += std::to_string(index);
  return name;
}

/// Builds a randomized fault plan from a dedicated RNG stream. Every
/// draw is taken from `rng` only, so one combo index always produces
/// the same plan.
inline harness::FaultPlan random_fault_plan(Rng& rng,
                                            std::size_t num_servers,
                                            std::size_t num_clients) {
  using harness::FaultAction;
  using harness::FaultEvent;

  harness::FaultPlan plan;
  const auto at_us = [&rng](double lo, double hi) {
    return SimTime::microseconds(lo + (hi - lo) * rng.next_double());
  };
  const auto random_server = [&] {
    return chaos_node_name('s', rng.next_below(num_servers));
  };
  const auto random_link = [&](std::string* name) {
    const bool server_side = rng.next_below(2) == 0;
    const bool toward_switch = rng.next_below(2) == 0;
    const std::string host =
        server_side ? random_server()
                    : chaos_node_name('c', rng.next_below(num_clients));
    *name = toward_switch ? host + "-sw0" : "sw0-" + host;
  };

  const std::size_t num_events = 2 + rng.next_below(4);
  for (std::size_t i = 0; i < num_events; ++i) {
    FaultEvent ev;
    ev.at = at_us(600.0, 3500.0);
    switch (rng.next_below(9)) {
      case 0: {  // link outage with recovery
        random_link(&ev.target);
        ev.action = FaultAction::kLinkDown;
        FaultEvent up = ev;
        up.action = FaultAction::kLinkUp;
        up.at = ev.at + SimTime::microseconds(200.0 +
                                              600.0 * rng.next_double());
        plan.events.push_back(up);
        break;
      }
      case 1:
        random_link(&ev.target);
        ev.action = FaultAction::kDropRate;
        ev.value = 1e-3 + 5e-2 * rng.next_double();
        break;
      case 2:
        random_link(&ev.target);
        ev.action = FaultAction::kCorruptRate;
        ev.value = 1e-3 + 5e-2 * rng.next_double();
        break;
      case 3:
        random_link(&ev.target);
        ev.action = rng.next_below(2) == 0 ? FaultAction::kReorderRate
                                           : FaultAction::kDuplicateRate;
        ev.value = 1e-3 + 2e-2 * rng.next_double();
        break;
      case 4: {  // server crash, usually restarted
        ev.target = random_server();
        ev.action = FaultAction::kServerCrash;
        if (rng.next_below(4) != 0) {
          FaultEvent restart = ev;
          restart.action = FaultAction::kServerRestart;
          restart.at =
              ev.at + SimTime::microseconds(300.0 +
                                            700.0 * rng.next_double());
          plan.events.push_back(restart);
        }
        break;
      }
      case 5: {  // server pause/resume
        ev.target = random_server();
        ev.action = FaultAction::kServerPause;
        FaultEvent resume = ev;
        resume.action = FaultAction::kServerResume;
        resume.at = ev.at + SimTime::microseconds(100.0 +
                                                  400.0 * rng.next_double());
        plan.events.push_back(resume);
        break;
      }
      case 6:
        ev.target = random_server();
        ev.action = FaultAction::kServerSlowdown;
        ev.value = 1.5 + 3.0 * rng.next_double();
        break;
      case 7: {  // switch reboot (fail + recover)
        ev.target = "sw0";
        ev.action = FaultAction::kSwitchFail;
        FaultEvent recover = ev;
        recover.action = FaultAction::kSwitchRecover;
        recover.at = ev.at + SimTime::microseconds(200.0 +
                                                   500.0 * rng.next_double());
        plan.events.push_back(recover);
        break;
      }
      default:
        ev.target = "sw0";
        if (rng.next_below(2) == 0) {
          ev.action = FaultAction::kSwitchWipe;
        } else {
          ev.action = FaultAction::kFilterStale;
          ev.table = rng.next_below(2);
          ev.value = static_cast<double>(1 + rng.next_below(1u << 20));
        }
        break;
    }
    plan.events.push_back(ev);
  }
  return plan;
}

/// One sweep combo: run the plan, audit, re-run with the same seed and
/// compare digests, and verify the pooled-frame balance across both
/// experiments' lifetimes.
inline void run_chaos_combo(std::uint64_t combo) {
  const std::uint64_t pool_live_before =
      wire::FramePool::instance().stats().live;

  harness::ClusterConfig cfg = chaos_cluster(/*seed=*/1000 + combo);
  Rng plan_rng{0xC0FFEE ^ combo};
  cfg.faults = random_fault_plan(plan_rng, cfg.server_workers.size(),
                                 cfg.num_clients);

  std::uint64_t digest1 = 0;
  std::uint64_t digest2 = 0;
  {
    harness::Experiment exp{cfg};
    (void)exp.run();
    const harness::InvariantReport report = harness::audit_invariants(exp);
    EXPECT_TRUE(report.ok())
        << "combo " << combo << ":\n"
        << report.to_string();
    digest1 = harness::chaos_digest(exp);
  }
  {
    harness::Experiment exp{cfg};
    (void)exp.run();
    digest2 = harness::chaos_digest(exp);
  }
  EXPECT_EQ(digest1, digest2) << "combo " << combo
                              << ": same-seed runs diverged";

  EXPECT_EQ(wire::FramePool::instance().stats().live, pool_live_before)
      << "combo " << combo << ": pooled frames leaked";
}

}  // namespace netclone::testing
