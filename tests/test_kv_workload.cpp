#include "kv/kv_workload.hpp"

#include <gtest/gtest.h>

namespace netclone::kv {
namespace {

std::shared_ptr<const KvStore> small_store() {
  auto store = std::make_shared<KvStore>(1000);
  populate(*store, 1000);
  return store;
}

TEST(KvRequestFactory, MixFractionsRespected) {
  KvMix mix;
  mix.get_fraction = 0.9;
  mix.num_keys = 1000;
  KvRequestFactory factory{mix, redis_profile()};
  Rng rng{1};
  int gets = 0;
  int scans = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const wire::RpcRequest req = factory.make(rng);
    if (req.op == wire::RpcOp::kGet) {
      ++gets;
    } else {
      ASSERT_EQ(req.op, wire::RpcOp::kScan);
      EXPECT_EQ(req.scan_count, 100);
      ++scans;
    }
    EXPECT_LT(req.key, 1000U);
  }
  EXPECT_NEAR(static_cast<double>(gets) / kN, 0.9, 0.01);
  EXPECT_GT(scans, 0);
}

TEST(KvRequestFactory, MeanIntrinsicMatchesMix) {
  KvMix mix;
  mix.get_fraction = 0.99;
  mix.num_keys = 100;
  const KvCostProfile profile = redis_profile();
  KvRequestFactory factory{mix, profile};
  const double scan_us = profile.get_base_us + 100.0 * profile.per_object_us;
  EXPECT_DOUBLE_EQ(factory.mean_intrinsic_us(),
                   0.99 * profile.get_base_us + 0.01 * scan_us);
}

TEST(KvRequestFactory, LabelNamesApplicationAndMix) {
  KvMix mix;
  mix.get_fraction = 0.99;
  mix.num_keys = 100;
  EXPECT_EQ(KvRequestFactory(mix, redis_profile()).label(),
            "Redis 99%-GET,1%-SCAN");
  EXPECT_EQ(KvRequestFactory(mix, memcached_profile()).label(),
            "Memcached 99%-GET,1%-SCAN");
}

TEST(KvRequestFactory, KeysAreZipfSkewed) {
  KvMix mix;
  mix.num_keys = 100000;
  mix.zipf_theta = 0.99;
  KvRequestFactory factory{mix, redis_profile()};
  Rng rng{7};
  int head = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    head += factory.make(rng).key < 10 ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(head) / kN, 0.1);
}

TEST(KvService, GetReturnsStoredValue) {
  KvService service{small_store(), redis_profile(),
                    host::JitterModel{0.0, 15.0}};
  wire::RpcRequest req;
  req.op = wire::RpcOp::kGet;
  req.key = 123;
  const wire::RpcResponse resp = service.execute(req);
  EXPECT_EQ(resp.status, wire::RpcStatus::kOk);
  const std::string expected = value_for_index(123);
  ASSERT_EQ(resp.value.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<char>(resp.value[i]), expected[i]);
  }
}

TEST(KvService, MissingKeyIsNotFound) {
  KvService service{small_store(), redis_profile(),
                    host::JitterModel{0.0, 15.0}};
  wire::RpcRequest req;
  req.op = wire::RpcOp::kGet;
  req.key = 999999;  // not populated
  EXPECT_EQ(service.execute(req).status, wire::RpcStatus::kNotFound);
}

TEST(KvService, ScanReturnsEightByteDigest) {
  KvService service{small_store(), redis_profile(),
                    host::JitterModel{0.0, 15.0}};
  wire::RpcRequest req;
  req.op = wire::RpcOp::kScan;
  req.key = 5;
  req.scan_count = 100;
  const wire::RpcResponse resp = service.execute(req);
  EXPECT_EQ(resp.status, wire::RpcStatus::kOk);
  EXPECT_EQ(resp.value.size(), 8U);
  // Deterministic across calls.
  EXPECT_EQ(service.execute(req).value, resp.value);
}

TEST(KvService, ExecutionTimesFollowProfile) {
  const KvCostProfile profile = redis_profile();
  KvService service{small_store(), profile, host::JitterModel{0.0, 15.0}};
  Rng rng{1};
  wire::RpcRequest get;
  get.op = wire::RpcOp::kGet;
  EXPECT_EQ(service.execution_time(get, rng),
            SimTime::microseconds(profile.get_base_us));
  wire::RpcRequest scan;
  scan.op = wire::RpcOp::kScan;
  scan.scan_count = 100;
  EXPECT_EQ(service.execution_time(scan, rng),
            SimTime::microseconds(profile.get_base_us +
                                  100.0 * profile.per_object_us));
  wire::RpcRequest set;
  set.op = wire::RpcOp::kSet;
  EXPECT_EQ(service.execution_time(set, rng),
            SimTime::microseconds(profile.set_base_us));
}

TEST(KvService, ScanIsBimodallySlowerThanGet) {
  // The GET/SCAN cost gap is what produces Fig. 11/12's tail structure.
  const KvCostProfile profile = memcached_profile();
  KvService service{small_store(), profile, host::JitterModel{0.0, 15.0}};
  Rng rng{1};
  wire::RpcRequest get;
  get.op = wire::RpcOp::kGet;
  wire::RpcRequest scan;
  scan.op = wire::RpcOp::kScan;
  scan.scan_count = 100;
  EXPECT_GT(service.execution_time(scan, rng).ns(),
            15 * service.execution_time(get, rng).ns());
}

TEST(KvService, JitterAppliesToKvOps) {
  KvService service{small_store(), redis_profile(),
                    host::JitterModel{1.0, 15.0}};
  Rng rng{1};
  wire::RpcRequest get;
  get.op = wire::RpcOp::kGet;
  EXPECT_EQ(service.execution_time(get, rng),
            SimTime::microseconds(redis_profile().get_base_us * 15.0));
}

TEST(KvService, SyntheticPassthrough) {
  KvService service{small_store(), redis_profile(),
                    host::JitterModel{0.0, 15.0}};
  Rng rng{1};
  wire::RpcRequest req;
  req.op = wire::RpcOp::kSynthetic;
  req.intrinsic_ns = 7000;
  EXPECT_EQ(service.execution_time(req, rng).ns(), 7000);
}

TEST(KvProfiles, RelativeCosts) {
  EXPECT_LT(memcached_profile().get_base_us, redis_profile().get_base_us);
  EXPECT_GT(redis_profile().per_object_us, 0.0);
}

}  // namespace
}  // namespace netclone::kv
