// Rearm semantics of sim::Timer: the cancel-and-rearm contract that the
// client's arrival pacing and retransmit timeouts are built on.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace netclone::sim {
namespace {

using namespace netclone::literals;

TEST(Timer, FiresOnceAtTheArmedTime) {
  Simulator sim;
  std::vector<SimTime> fired;
  Timer timer(sim, [&] { fired.push_back(sim.now()); });
  timer.arm_at(10_ns);
  EXPECT_TRUE(timer.armed());
  sim.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10_ns}));
  EXPECT_FALSE(timer.armed());  // one-shot: no rearm unless asked
}

TEST(Timer, ArmAfterUsesCurrentTime) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  Timer timer(sim, [&] { fired = sim.now(); });
  sim.schedule_at(10_ns, [&] { timer.arm_after(5_ns); });
  sim.run();
  EXPECT_EQ(fired, 15_ns);
}

TEST(Timer, CancelBeforeFirePreventsTheCallback) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.arm_at(10_ns);
  timer.cancel();
  EXPECT_FALSE(timer.armed());
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending_events(), 0U);  // truly removed, not deferred
}

TEST(Timer, CancelAfterFireIsANoOp) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.arm_at(10_ns);
  sim.run();
  EXPECT_EQ(fired, 1);
  timer.cancel();  // must not throw, corrupt, or un-fire anything
  EXPECT_FALSE(timer.armed());
  timer.arm_at(20_ns);  // and the timer stays usable
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Timer, RearmFromInsideTheCallbackMakesAPeriodicTimer) {
  Simulator sim;
  std::vector<SimTime> fired;
  std::optional<Timer> timer;
  timer.emplace(sim, [&] {
    fired.push_back(sim.now());
    if (fired.size() < 3) {
      timer->arm_after(10_ns);  // the timer disarms before invoking us
    }
  });
  timer->arm_at(10_ns);
  sim.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10_ns, 20_ns, 30_ns}));
}

TEST(Timer, RearmReplacesThePendingExpiry) {
  Simulator sim;
  std::vector<SimTime> fired;
  Timer timer(sim, [&] { fired.push_back(sim.now()); });
  timer.arm_at(10_ns);
  timer.arm_at(25_ns);  // replaces, does not add
  EXPECT_EQ(sim.pending_events(), 1U);
  sim.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{25_ns}));
}

TEST(Timer, DestructionCancelsThePendingExpiry) {
  Simulator sim;
  int fired = 0;
  {
    Timer timer(sim, [&] { ++fired; });
    timer.arm_at(10_ns);
  }
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending_events(), 0U);
}

TEST(Timer, MovedTimerKeepsItsScheduledExpiry) {
  Simulator sim;
  int fired = 0;
  Timer original(sim, [&] { ++fired; });
  original.arm_at(10_ns);
  Timer moved = std::move(original);
  EXPECT_TRUE(moved.armed());
  EXPECT_FALSE(original.bound());  // NOLINT(bugprone-use-after-move)
  sim.run();
  EXPECT_EQ(fired, 1);
  // Destroying the moved-from shell must not cancel anything (above), and
  // destroying the live one after fire is equally quiet.
}

TEST(Timer, UnboundTimerRejectsArming) {
  Timer timer;
  EXPECT_FALSE(timer.bound());
  EXPECT_FALSE(timer.armed());
  timer.cancel();  // harmless
  EXPECT_THROW(timer.arm_at(10_ns), CheckFailure);
}

}  // namespace
}  // namespace netclone::sim
