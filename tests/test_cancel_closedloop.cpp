// C-Clone cancellation (§2.2's optional cancel) and the closed-loop client
// pacing mode.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "harness/experiment.hpp"
#include "host/client.hpp"
#include "host/server.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "phys/topology.hpp"
#include "test_util.hpp"

namespace netclone::host {
namespace {

using netclone::testing::CaptureNode;
using netclone::testing::make_request;

TEST(Cancel, RemovesQueuedRequestOnly) {
  sim::Simulator sim;
  phys::Topology topo{sim};
  ServerParams sp;
  sp.sid = ServerId{0};
  sp.workers = 1;
  auto& server = topo.add_node<Server>(
      sim, sp, std::make_shared<SyntheticService>(JitterModel{0.0, 1.0}),
      Rng{1});
  auto& wire_end = topo.add_node<CaptureNode>("wire");
  topo.connect(server, wire_end);

  // Request 1 occupies the worker, request 2 queues.
  wire_end.transmit(0, make_request(0, 1, 0, 0, 50000).serialize());
  wire_end.transmit(0, make_request(0, 2, 0, 0, 50000).serialize());

  // Cancel request 2 (queued) and request 1 (in service — must miss).
  wire::NetCloneHeader cancel2;
  cancel2.type = wire::MsgType::kCancel;
  cancel2.client_id = 0;
  cancel2.client_seq = 2;
  wire_end.transmit(0, wire::make_netclone_packet(
                           wire::MacAddress::from_node(1),
                           wire::MacAddress::broadcast(), client_ip(0),
                           server_ip(ServerId{0}), 40000, cancel2, {})
                           .serialize());
  wire::NetCloneHeader cancel1 = cancel2;
  cancel1.client_seq = 1;
  wire_end.transmit(0, wire::make_netclone_packet(
                           wire::MacAddress::from_node(1),
                           wire::MacAddress::broadcast(), client_ip(0),
                           server_ip(ServerId{0}), 40000, cancel1, {})
                           .serialize());
  sim.run();

  // Only request 1 produced a response; request 2 was cancelled in queue.
  EXPECT_EQ(wire_end.packets().size(), 1U);
  EXPECT_EQ(wire_end.packets()[0].nc().client_seq, 1U);
  EXPECT_EQ(server.stats().cancelled_requests, 1U);
  EXPECT_EQ(server.stats().cancel_misses, 1U);
}

TEST(Cancel, EndToEndCCloneCancelReducesRedundantWork) {
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kCClone;
  cfg.server_workers = {4, 4, 4, 4};
  cfg.factory = std::make_shared<ExponentialWorkload>(25.0);
  cfg.service = std::make_shared<SyntheticService>(JitterModel{0.01, 15});
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(10);
  cfg.client_template.cclone_cancel = true;
  // Push into C-Clone's queueing regime so duplicates actually wait in
  // queues where cancels can catch them.
  cfg.offered_rps =
      0.45 * harness::cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);

  harness::Experiment experiment{cfg};
  (void)experiment.run();
  std::uint64_t cancels = 0;
  for (const Client* client : experiment.clients()) {
    cancels += client->stats().cancels_sent;
  }
  std::uint64_t cancelled = 0;
  for (const Server* server : experiment.servers()) {
    cancelled += server->stats().cancelled_requests;
  }
  EXPECT_GT(cancels, 100U);      // one cancel per completed request
  EXPECT_GT(cancelled, 0U);      // some duplicates were still queued
  EXPECT_LT(cancelled, cancels); // most were already running or done
}

TEST(Cancel, QueueWaitHistogramPopulates) {
  sim::Simulator sim;
  phys::Topology topo{sim};
  ServerParams sp;
  sp.sid = ServerId{0};
  sp.workers = 1;
  auto& server = topo.add_node<Server>(
      sim, sp, std::make_shared<SyntheticService>(JitterModel{0.0, 1.0}),
      Rng{1});
  auto& wire_end = topo.add_node<CaptureNode>("wire");
  topo.connect(server, wire_end);
  for (std::uint32_t i = 1; i <= 3; ++i) {
    wire_end.transmit(0, make_request(0, i, 0, 0, 10000).serialize());
  }
  sim.run();
  const LatencyHistogram& wait = server.stats().queue_wait;
  EXPECT_EQ(wait.count(), 3U);
  // First request started immediately; the third waited ~2 executions.
  EXPECT_LT(wait.min().us(), 1.0);
  EXPECT_GT(wait.max().us(), 15.0);
}

TEST(ClosedLoop, MaintainsWindow) {
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.server_workers = {4, 4};
  cfg.factory = std::make_shared<FixedWorkload>(25.0);
  cfg.service = std::make_shared<SyntheticService>(JitterModel{0.0, 1.0});
  cfg.num_clients = 1;
  cfg.warmup = SimTime::milliseconds(1);
  cfg.measure = SimTime::milliseconds(10);
  cfg.client_template.loop = LoopMode::kClosedLoop;
  cfg.client_template.closed_loop_window = 4;
  cfg.offered_rps = 1.0;  // ignored in closed loop

  harness::Experiment experiment{cfg};
  const auto result = experiment.run();
  const Client* client = experiment.clients()[0];
  // Little's law: throughput ~ window / latency. Latency ~ 25 us service
  // + ~5 us path => ~4/30us ~ 133 KRPS over the full 11 ms sending window.
  const double expected_rps = 4.0 / 30e-6;
  const double achieved =
      static_cast<double>(client->stats().completed) / 11e-3;
  EXPECT_NEAR(achieved, expected_rps, expected_rps * 0.15);
  EXPECT_GT(result.requests_sent, 1000U);
}

TEST(ClosedLoop, StopsAtStopTime) {
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kBaseline;
  cfg.server_workers = {4, 4};
  cfg.factory = std::make_shared<FixedWorkload>(25.0);
  cfg.service = std::make_shared<SyntheticService>(JitterModel{0.0, 1.0});
  cfg.num_clients = 1;
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(5);
  cfg.client_template.loop = LoopMode::kClosedLoop;
  cfg.client_template.closed_loop_window = 2;
  cfg.offered_rps = 1.0;

  harness::Experiment experiment{cfg};
  (void)experiment.run();
  const Client* client = experiment.clients()[0];
  // After stop_at no new requests are issued; everything in flight drains.
  EXPECT_EQ(client->stats().completed, client->stats().requests_sent);
}

}  // namespace
}  // namespace netclone::host
