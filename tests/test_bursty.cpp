// The Markov-modulated (bursty) arrival process: correct long-run mean,
// visibly higher dispersion than Poisson, and the system-level effect —
// bursts deepen queues, cloning masks part of the damage.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "harness/experiment.hpp"
#include "host/client.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "phys/topology.hpp"
#include "test_util.hpp"

namespace netclone::host {
namespace {

using netclone::testing::CaptureNode;

/// Index of dispersion of counts over fixed bins; ~1 for Poisson, >> 1
/// for bursty arrivals.
double dispersion(const std::vector<std::uint64_t>& bins) {
  double mean = 0.0;
  for (const auto b : bins) {
    mean += static_cast<double>(b);
  }
  mean /= static_cast<double>(bins.size());
  double var = 0.0;
  for (const auto b : bins) {
    const double d = static_cast<double>(b) - mean;
    var += d * d;
  }
  var /= static_cast<double>(bins.size());
  return mean == 0.0 ? 0.0 : var / mean;
}

std::vector<std::uint64_t> bin_arrivals(ArrivalProcess process, double rate,
                                        SimTime duration, SimTime bin) {
  // Count arrivals per bin directly through the client's sent counter.
  sim::Simulator sim;
  phys::Topology topo{sim};
  ClientParams p;
  p.client_id = 0;
  p.mode = SendMode::kViaSwitch;
  p.target = service_vip();
  p.rate_rps = rate;
  p.arrival = process;
  p.num_groups = 2;
  p.stop_at = duration;
  auto& client = topo.add_node<Client>(
      sim, p, std::make_shared<FixedWorkload>(1.0), Rng{11});
  auto& wire_end = topo.add_node<CaptureNode>("wire");
  topo.connect(client, wire_end);
  client.start();

  std::vector<std::uint64_t> bins;
  std::uint64_t last = 0;
  for (SimTime t = bin; t <= duration; t += bin) {
    sim.run_until(t);
    const std::uint64_t now_total = client.stats().requests_sent;
    bins.push_back(now_total - last);
    last = now_total;
  }
  return bins;
}

TEST(BurstyArrivals, MeanRateIsPreserved) {
  const double rate = 200000.0;
  // The bursty process converges slowly: per-cycle arrival counts are
  // roughly exponential (variance ~ mean^2) and strongly autocorrelated
  // through the carry construction, so it takes thousands of ON/OFF
  // cycles for the empirical rate to settle.
  const SimTime duration = SimTime::seconds(4);
  const auto poisson =
      bin_arrivals(ArrivalProcess::kPoisson, rate, duration,
                   SimTime::milliseconds(4));
  const auto bursty =
      bin_arrivals(ArrivalProcess::kBursty, rate, duration,
                   SimTime::milliseconds(4));
  std::uint64_t total_poisson = 0;
  std::uint64_t total_bursty = 0;
  for (std::size_t i = 0; i < poisson.size(); ++i) {
    total_poisson += poisson[i];
    total_bursty += bursty[i];
  }
  const double expected = rate * duration.sec();
  EXPECT_NEAR(static_cast<double>(total_poisson), expected,
              expected * 0.02);
  EXPECT_NEAR(static_cast<double>(total_bursty), expected,
              expected * 0.08);
}

TEST(BurstyArrivals, DispersionFarAbovePoisson) {
  const double rate = 200000.0;
  const SimTime duration = SimTime::milliseconds(50);
  const auto poisson_bins =
      bin_arrivals(ArrivalProcess::kPoisson, rate, duration,
                   SimTime::microseconds(100.0));
  const auto bursty_bins =
      bin_arrivals(ArrivalProcess::kBursty, rate, duration,
                   SimTime::microseconds(100.0));
  const double d_poisson = dispersion(poisson_bins);
  const double d_bursty = dispersion(bursty_bins);
  EXPECT_LT(d_poisson, 2.0);   // ~1 in theory
  EXPECT_GT(d_bursty, 3.0 * d_poisson);
}

TEST(BurstyArrivals, SystemStillConservesRequests) {
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.server_workers = {8, 8, 8, 8};
  cfg.factory = std::make_shared<ExponentialWorkload>(25.0);
  cfg.service = std::make_shared<SyntheticService>(JitterModel{0.01, 15});
  cfg.client_template.arrival = ArrivalProcess::kBursty;
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(10);
  cfg.offered_rps =
      0.3 * harness::cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  harness::Experiment experiment{cfg};
  const auto result = experiment.run();
  std::uint64_t completed = 0;
  for (const Client* client : experiment.clients()) {
    completed += client->stats().completed;
  }
  EXPECT_EQ(completed, result.requests_sent);
  EXPECT_GT(result.cloned_requests, 0U);
}

}  // namespace
}  // namespace netclone::host
