#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace netclone {
namespace {

TEST(Histogram, EmptyBehaviour) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.percentile(0.99).ns(), 0);
  EXPECT_EQ(h.min().ns(), 0);
  EXPECT_EQ(h.max().ns(), 0);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
  EXPECT_DOUBLE_EQ(h.stddev_ns(), 0.0);
}

TEST(Histogram, SingleSample) {
  LatencyHistogram h;
  h.record(SimTime::microseconds(25.0));
  EXPECT_EQ(h.count(), 1U);
  EXPECT_EQ(h.min().ns(), 25000);
  EXPECT_EQ(h.max().ns(), 25000);
  // A 25 us value sits in a bucket whose width is <= 1/64 of its magnitude.
  EXPECT_NEAR(static_cast<double>(h.p50().ns()), 25000.0, 25000.0 / 64.0);
  EXPECT_NEAR(h.mean_ns(), 25000.0, 1e-9);
}

TEST(Histogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) {
    h.record(SimTime::nanoseconds(i));
  }
  // Values below 128 ns land in exact single-value buckets.
  EXPECT_EQ(h.percentile(0.50).ns(), 50);
  EXPECT_EQ(h.percentile(0.99).ns(), 99);
  EXPECT_EQ(h.percentile(1.0).ns(), 100);
  EXPECT_EQ(h.percentile(0.0).ns(), 1);
}

TEST(Histogram, NegativeClampsToZero) {
  LatencyHistogram h;
  h.record(SimTime::nanoseconds(-5));
  EXPECT_EQ(h.count(), 1U);
  EXPECT_EQ(h.max().ns(), 0);
}

TEST(Histogram, PercentileMonotone) {
  LatencyHistogram h;
  Rng rng{1};
  for (int i = 0; i < 10000; ++i) {
    h.record(SimTime::nanoseconds(
        static_cast<std::int64_t>(rng.exponential(50000.0))));
  }
  SimTime prev = SimTime::zero();
  for (double q = 0.0; q <= 1.0001; q += 0.05) {
    const SimTime v = h.percentile(std::min(q, 1.0));
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.percentile(1.0), h.max());
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  Rng rng{2};
  for (int i = 0; i < 5000; ++i) {
    const auto v = SimTime::nanoseconds(
        static_cast<std::int64_t>(rng.exponential(30000.0)));
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean_ns(), combined.mean_ns());
  EXPECT_EQ(a.p99(), combined.p99());
}

TEST(Histogram, MergeEmptyIsNoop) {
  LatencyHistogram a;
  a.record(SimTime::microseconds(1.0));
  LatencyHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1U);
  EXPECT_EQ(empty.min().ns(), 1000);
}

TEST(Histogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(SimTime::microseconds(5.0));
  h.reset();
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.percentile(0.5).ns(), 0);
}

TEST(Histogram, MeanAndStddevMatchDirectComputation) {
  LatencyHistogram h;
  StreamingStats direct;
  Rng rng{3};
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(10000.0);
    h.record(SimTime::nanoseconds(static_cast<std::int64_t>(v)));
    direct.add(std::floor(v));
  }
  EXPECT_NEAR(h.mean_ns(), direct.mean(), 1.0);
  EXPECT_NEAR(h.stddev_ns(), direct.stddev(), direct.stddev() * 0.01);
}

// Property sweep: quantiles of the log-bucketed histogram stay within the
// 1/64 relative-error bound of exact order statistics, across distributions.
struct DistCase {
  const char* name;
  double mean_ns;
  bool heavy_tail;
};

class HistogramAccuracy : public ::testing::TestWithParam<DistCase> {};

TEST_P(HistogramAccuracy, QuantilesWithinRelativeBound) {
  const DistCase param = GetParam();
  LatencyHistogram h;
  std::vector<double> exact;
  Rng rng{99};
  for (int i = 0; i < 50000; ++i) {
    double v = rng.exponential(param.mean_ns);
    if (param.heavy_tail && rng.bernoulli(0.01)) {
      v *= 15.0;
    }
    exact.push_back(std::floor(v));
    h.record(SimTime::nanoseconds(static_cast<std::int64_t>(v)));
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double approx = static_cast<double>(h.percentile(q).ns());
    const double truth = exact_percentile(exact, q);
    EXPECT_NEAR(approx, truth, truth / 32.0 + 1.0)
        << param.name << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, HistogramAccuracy,
    ::testing::Values(DistCase{"exp25us", 25000.0, false},
                      DistCase{"exp500us", 500000.0, false},
                      DistCase{"exp25usJitter", 25000.0, true},
                      DistCase{"exp1ms", 1000000.0, true}),
    [](const ::testing::TestParamInfo<DistCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace netclone
