#include "host/service.hpp"

#include <gtest/gtest.h>

namespace netclone::host {
namespace {

wire::RpcRequest synthetic(std::uint32_t ns) {
  wire::RpcRequest req;
  req.op = wire::RpcOp::kSynthetic;
  req.intrinsic_ns = ns;
  return req;
}

TEST(JitterModel, NoJitterPassesThrough) {
  const JitterModel jitter{0.0, 15.0};
  Rng rng{1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(jitter.apply(SimTime::microseconds(25.0), rng).ns(), 25000);
  }
}

TEST(JitterModel, AlwaysJitterMultiplies) {
  const JitterModel jitter{1.0, 15.0};
  Rng rng{1};
  EXPECT_EQ(jitter.apply(SimTime::microseconds(10.0), rng).ns(), 150000);
}

TEST(JitterModel, MeanInflation) {
  EXPECT_DOUBLE_EQ((JitterModel{0.01, 15.0}.mean_inflation()), 1.14);
  EXPECT_DOUBLE_EQ((JitterModel{0.001, 15.0}.mean_inflation()), 1.014);
  EXPECT_DOUBLE_EQ((JitterModel{0.0, 15.0}.mean_inflation()), 1.0);
}

TEST(JitterModel, EmpiricalRateMatchesProbability) {
  const JitterModel jitter{0.01, 15.0};
  Rng rng{7};
  int jittered = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (jitter.apply(SimTime::microseconds(1.0), rng).ns() > 1000) {
      ++jittered;
    }
  }
  EXPECT_NEAR(static_cast<double>(jittered) / kN, 0.01, 0.002);
}

TEST(SyntheticService, UsesIntrinsicDuration) {
  SyntheticService service{JitterModel{0.0, 15.0}};
  Rng rng{1};
  EXPECT_EQ(service.execution_time(synthetic(42000), rng).ns(), 42000);
}

TEST(SyntheticService, JitterInflatesMean) {
  SyntheticService service{JitterModel{0.01, 15.0}};
  Rng rng{3};
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(
        service.execution_time(synthetic(25000), rng).ns());
  }
  EXPECT_NEAR(sum / kN, 25000.0 * 1.14, 300.0);
}

TEST(SyntheticService, ExecuteReturnsEmptyOk) {
  SyntheticService service{JitterModel{}};
  const wire::RpcResponse resp = service.execute(synthetic(1));
  EXPECT_EQ(resp.status, wire::RpcStatus::kOk);
  EXPECT_TRUE(resp.value.empty());
}

}  // namespace
}  // namespace netclone::host
