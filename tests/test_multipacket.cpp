// Multi-packet message support (§3.7): the cloned-request table, ordered
// filter tables, fragment reassembly at the server, and an end-to-end run.
#include <gtest/gtest.h>

#include "core/netclone_program.hpp"
#include "harness/experiment.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "test_util.hpp"

namespace netclone::core {
namespace {

using netclone::testing::make_request;
using netclone::testing::make_response;
using netclone::testing::run_ingress;

NetCloneConfig mp_config() {
  NetCloneConfig cfg;
  cfg.id_mode = RequestIdMode::kClientTuple;
  cfg.enable_multipacket = true;
  cfg.num_filter_tables = 4;  // >= max response fragment count
  cfg.filter_slots = 256;
  cfg.cloned_req_slots = 128;
  return cfg;
}

class MultiPacketProgramTest : public ::testing::Test {
 protected:
  MultiPacketProgramTest() : program_(pipeline_, mp_config()) {
    program_.add_server(ServerId{0}, host::server_ip(ServerId{0}), 10, 1);
    program_.add_server(ServerId{1}, host::server_ip(ServerId{1}), 11, 2);
    program_.install_groups(build_group_pairs(2));
    program_.add_route(host::client_ip(0), 20);
  }

  static wire::Packet fragment(std::uint32_t seq, std::uint8_t idx,
                               std::uint8_t count) {
    wire::Packet pkt = make_request(0, seq, 0, 0);
    pkt.nc().frag_idx = idx;
    pkt.nc().frag_count = count;
    return pkt;
  }

  void make_busy(ServerId sid) {
    wire::Packet req = make_request(0, 999990, 0, 0);
    wire::Packet resp = make_response(sid, 5, req);
    (void)run_ingress(program_, pipeline_, resp);
  }

  pisa::Pipeline pipeline_;
  NetCloneProgram program_;
};

TEST_F(MultiPacketProgramTest, RequiresClientTupleIds) {
  NetCloneConfig bad = mp_config();
  bad.id_mode = RequestIdMode::kSwitchSequence;
  pisa::Pipeline pipeline;
  EXPECT_THROW((void)NetCloneProgram(pipeline, bad), CheckFailure);
}

TEST_F(MultiPacketProgramTest, ClientTupleIdsStableAndNonZero) {
  const std::uint32_t a = NetCloneProgram::client_tuple_id(1, 100);
  EXPECT_EQ(a, NetCloneProgram::client_tuple_id(1, 100));
  EXPECT_NE(a, NetCloneProgram::client_tuple_id(1, 101));
  EXPECT_NE(a, NetCloneProgram::client_tuple_id(2, 100));
  for (std::uint32_t s = 0; s < 1000; ++s) {
    EXPECT_NE(NetCloneProgram::client_tuple_id(0, s), 0U);
  }
}

TEST_F(MultiPacketProgramTest, FragmentsShareTheRequestId) {
  wire::Packet f0 = fragment(7, 0, 3);
  wire::Packet f1 = fragment(7, 1, 3);
  (void)run_ingress(program_, pipeline_, f0);
  (void)run_ingress(program_, pipeline_, f1);
  EXPECT_EQ(f0.nc().req_id, f1.nc().req_id);
  EXPECT_EQ(f0.nc().req_id, NetCloneProgram::client_tuple_id(0, 7));
}

TEST_F(MultiPacketProgramTest, FollowUpFragmentsCloneWithClonedRoot) {
  // Fragment 0 clones (both idle); fragments 1 and 2 must clone too even
  // though we make the tracked states busy in between.
  wire::Packet f0 = fragment(7, 0, 3);
  const auto md0 = run_ingress(program_, pipeline_, f0);
  ASSERT_TRUE(md0.multicast_group.has_value());

  make_busy(ServerId{0});
  make_busy(ServerId{1});

  wire::Packet f1 = fragment(7, 1, 3);
  const auto md1 = run_ingress(program_, pipeline_, f1);
  EXPECT_TRUE(md1.multicast_group.has_value());
  EXPECT_EQ(f1.nc().clo, wire::CloneStatus::kClonedOriginal);
  EXPECT_EQ(f1.nc().sid, 1);
  EXPECT_EQ(program_.stats().cloned_fragments, 1U);

  wire::Packet f2 = fragment(7, 2, 3);
  const auto md2 = run_ingress(program_, pipeline_, f2);
  EXPECT_TRUE(md2.multicast_group.has_value());
  // The last fragment clears the cloned-request slot for reuse.
  const std::uint32_t slot = NetCloneProgram::filter_hash(
      f0.nc().req_id, mp_config().cloned_req_slots);
  (void)slot;
  wire::Packet late = fragment(7, 1, 3);  // same id after completion
  const auto md_late = run_ingress(program_, pipeline_, late);
  EXPECT_FALSE(md_late.multicast_group.has_value());  // entry cleared
}

TEST_F(MultiPacketProgramTest, FollowUpsFollowUnclonedRoot) {
  make_busy(ServerId{1});
  wire::Packet f0 = fragment(9, 0, 2);
  const auto md0 = run_ingress(program_, pipeline_, f0);
  EXPECT_FALSE(md0.multicast_group.has_value());
  EXPECT_EQ(md0.egress_port, 10U);  // srv1 of group 0

  make_busy(ServerId{0});  // states now say busy either way
  wire::Packet f1 = fragment(9, 1, 2);
  const auto md1 = run_ingress(program_, pipeline_, f1);
  EXPECT_FALSE(md1.multicast_group.has_value());
  EXPECT_EQ(md1.egress_port, 10U);  // affinity: same first candidate
  EXPECT_EQ(program_.stats().cloned_fragments, 0U);
}

TEST_F(MultiPacketProgramTest, ResponseFragmentsFilterIndependently) {
  // A cloned request answered with 3-fragment responses from both
  // servers: each ordinal must store/drop in its own ordered table.
  wire::Packet req = fragment(11, 0, 1);
  req.nc().clo = wire::CloneStatus::kClonedOriginal;
  req.nc().req_id = NetCloneProgram::client_tuple_id(0, 11);

  for (std::uint8_t f = 0; f < 3; ++f) {
    wire::Packet fast = make_response(ServerId{0}, 0, req);
    fast.nc().frag_idx = f;
    fast.nc().frag_count = 3;
    EXPECT_FALSE(run_ingress(program_, pipeline_, fast).drop) << int{f};
  }
  for (std::uint8_t f = 0; f < 3; ++f) {
    wire::Packet slow = make_response(ServerId{1}, 0, req);
    slow.nc().clo = wire::CloneStatus::kClonedCopy;
    slow.nc().frag_idx = f;
    slow.nc().frag_count = 3;
    EXPECT_TRUE(run_ingress(program_, pipeline_, slow).drop) << int{f};
  }
  EXPECT_EQ(program_.stats().filtered_responses, 3U);
}

}  // namespace
}  // namespace netclone::core

namespace netclone::harness {
namespace {

ClusterConfig mp_cluster() {
  ClusterConfig cfg;
  cfg.scheme = Scheme::kNetClone;
  cfg.server_workers = {8, 8, 8, 8};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(8);
  cfg.netclone.id_mode = core::RequestIdMode::kClientTuple;
  cfg.netclone.enable_multipacket = true;
  cfg.netclone.num_filter_tables = 4;
  cfg.client_template.request_fragments = 3;
  cfg.server_template.response_fragments = 2;
  const double capacity =
      cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  cfg.offered_rps = 0.25 * capacity;
  return cfg;
}

TEST(MultiPacketEndToEnd, AllRequestsCompleteWithFilteredDuplicates) {
  Experiment experiment{mp_cluster()};
  const ExperimentResult result = experiment.run();
  EXPECT_GT(result.requests_sent, 500U);

  std::uint64_t completed = 0;
  std::uint64_t redundant = 0;
  for (const host::Client* client : experiment.clients()) {
    completed += client->stats().completed;
    redundant += client->stats().redundant_responses;
  }
  EXPECT_EQ(completed, result.requests_sent);
  // Filtering works per fragment: duplicates stay away from the client
  // (collision leaks aside — the test uses default-size filter tables).
  EXPECT_LT(redundant, result.requests_sent / 50 + 2);

  // Servers actually reassembled 3-fragment requests.
  std::uint64_t reassembled = 0;
  for (const host::Server* server : experiment.servers()) {
    reassembled += server->stats().reassembled_requests;
  }
  EXPECT_GT(reassembled, 0U);

  const auto& ps = experiment.netclone_program()->stats();
  EXPECT_GT(ps.continuation_fragments, 0U);
  EXPECT_GT(ps.cloned_fragments, 0U);
}

TEST(MultiPacketEndToEnd, SingleFragmentConfigIsUnchanged) {
  ClusterConfig cfg = mp_cluster();
  cfg.client_template.request_fragments = 1;
  cfg.server_template.response_fragments = 1;
  Experiment experiment{cfg};
  const ExperimentResult result = experiment.run();
  EXPECT_GT(result.completed, 0U);
  EXPECT_EQ(experiment.netclone_program()->stats().continuation_fragments,
            0U);
}

}  // namespace
}  // namespace netclone::harness
