#include "sim/simulator.hpp"
#include "host/client.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "phys/topology.hpp"
#include "test_util.hpp"

namespace netclone::host {
namespace {

using namespace netclone::literals;
using netclone::testing::CaptureNode;

ClientParams base_params(SendMode mode, double rate_rps = 100000.0) {
  ClientParams p;
  p.client_id = 0;
  p.mode = mode;
  p.rate_rps = rate_rps;
  p.num_groups = 30;
  p.num_filter_tables = 2;
  p.target = service_vip();
  for (std::uint8_t i = 0; i < 6; ++i) {
    p.server_ips.push_back(server_ip(ServerId{i}));
  }
  p.stop_at = SimTime::milliseconds(2);
  return p;
}

struct Rig {
  sim::Simulator sim;
  phys::Topology topo{sim};
  Client* client = nullptr;
  CaptureNode* wire_end = nullptr;

  explicit Rig(const ClientParams& params) {
    client = &topo.add_node<Client>(
        sim, params, std::make_shared<FixedWorkload>(25.0), Rng{7});
    wire_end = &topo.add_node<CaptureNode>("wire");
    topo.connect(*client, *wire_end);
  }
};

TEST(Client, ViaSwitchSendsOnePacketPerRequest) {
  Rig rig{base_params(SendMode::kViaSwitch)};
  rig.client->start();
  rig.sim.run();
  const auto& stats = rig.client->stats();
  EXPECT_GT(stats.requests_sent, 100U);
  EXPECT_EQ(stats.packets_sent, stats.requests_sent);
  for (const auto& pkt : rig.wire_end->packets()) {
    EXPECT_EQ(pkt.ip.dst, service_vip());
    EXPECT_EQ(pkt.nc().clo, wire::CloneStatus::kNotCloned);
    EXPECT_EQ(pkt.nc().req_id, 0U);  // assigned by the switch, not us
    EXPECT_LT(pkt.nc().grp, 30);
    EXPECT_LT(pkt.nc().idx, 2);
  }
}

TEST(Client, OpenLoopRateIsApproximatelyHonoured) {
  Rig rig{base_params(SendMode::kViaSwitch, 500000.0)};
  rig.client->start();
  rig.sim.run();
  // 500 KRPS for 2 ms ~ 1000 requests.
  EXPECT_NEAR(static_cast<double>(rig.client->stats().requests_sent),
              1000.0, 150.0);
}

TEST(Client, DirectRandomSpreadsOverServers) {
  Rig rig{base_params(SendMode::kDirectRandom)};
  rig.client->start();
  rig.sim.run();
  std::set<std::uint32_t> dsts;
  for (const auto& pkt : rig.wire_end->packets()) {
    dsts.insert(pkt.ip.dst.value);
  }
  EXPECT_EQ(dsts.size(), 6U);  // all six workers hit
}

TEST(Client, CCloneSendsTwoPacketsToDistinctServers) {
  Rig rig{base_params(SendMode::kCClone)};
  rig.client->start();
  rig.sim.run();
  const auto& stats = rig.client->stats();
  EXPECT_EQ(stats.packets_sent, 2 * stats.requests_sent);
  const auto pkts = rig.wire_end->packets();
  ASSERT_GE(pkts.size(), 2U);
  for (std::size_t i = 0; i + 1 < pkts.size(); i += 2) {
    EXPECT_EQ(pkts[i].nc().client_seq, pkts[i + 1].nc().client_seq);
    EXPECT_NE(pkts[i].ip.dst, pkts[i + 1].ip.dst);  // distinct servers
  }
}

TEST(Client, RecordsLatencyOnFirstResponseOnly) {
  ClientParams p = base_params(SendMode::kViaSwitch, 100000.0);
  p.stop_at = SimTime::microseconds(100);  // a handful of requests
  Rig rig{p};
  rig.client->start();
  rig.sim.run();
  ASSERT_GE(rig.client->stats().requests_sent, 1U);
  const auto pkts = rig.wire_end->packets();
  ASSERT_GE(pkts.size(), 1U);

  // Reflect the first request twice (duplicate responses).
  wire::Packet resp =
      netclone::testing::make_response(ServerId{2}, 0, pkts[0]);
  resp.nc().clo = wire::CloneStatus::kClonedOriginal;
  rig.wire_end->transmit(0, resp.serialize());
  rig.wire_end->transmit(0, resp.serialize());
  rig.sim.run();

  const auto& stats = rig.client->stats();
  EXPECT_EQ(stats.completed, 1U);
  EXPECT_EQ(stats.redundant_responses, 1U);
  EXPECT_EQ(stats.latency.count(), 1U);
  EXPECT_GT(stats.latency.max().ns(), 0);
}

TEST(Client, UnmatchedResponsesAreCounted) {
  Rig rig{base_params(SendMode::kViaSwitch, 1000.0)};
  rig.client->start();
  wire::Packet bogus = netclone::testing::make_response(
      ServerId{0}, 0, netclone::testing::make_request(0, 999999, 0, 0));
  rig.wire_end->transmit(0, bogus.serialize());
  rig.sim.run();
  EXPECT_EQ(rig.client->stats().unmatched_responses, 1U);
  EXPECT_EQ(rig.client->stats().completed, 0U);
}

TEST(Client, WarmupSamplesExcludedFromHistogram) {
  ClientParams p = base_params(SendMode::kViaSwitch, 100000.0);
  p.warmup_until = SimTime::milliseconds(1);
  Rig rig{p};
  rig.client->start();
  rig.sim.run();
  // Echo every request back.
  for (const auto& pkt : rig.wire_end->packets()) {
    rig.wire_end->transmit(
        0, netclone::testing::make_response(ServerId{0}, 0, pkt)
               .serialize());
  }
  rig.sim.run();
  const auto& stats = rig.client->stats();
  EXPECT_GT(stats.completed, 0U);
  // Roughly half the requests were sent before the warmup cutoff.
  EXPECT_LT(stats.latency.count(), stats.completed);
  EXPECT_NEAR(static_cast<double>(stats.latency.count()),
              static_cast<double>(stats.completed) / 2.0,
              static_cast<double>(stats.completed) * 0.2);
}

TEST(Client, StopsSendingAtStopTime) {
  ClientParams p = base_params(SendMode::kViaSwitch, 1000000.0);
  p.stop_at = SimTime::microseconds(500);
  Rig rig{p};
  rig.client->start();
  rig.sim.run();
  EXPECT_LE(rig.sim.now(), SimTime::microseconds(600));
  // ~500 requests at 1M RPS in 500 us.
  EXPECT_NEAR(static_cast<double>(rig.client->stats().requests_sent), 500.0,
              120.0);
}

TEST(Client, SequencesAreUniqueAndDense) {
  Rig rig{base_params(SendMode::kViaSwitch, 200000.0)};
  rig.client->start();
  rig.sim.run();
  std::set<std::uint32_t> seqs;
  for (const auto& pkt : rig.wire_end->packets()) {
    EXPECT_TRUE(seqs.insert(pkt.nc().client_seq).second);
  }
  EXPECT_EQ(seqs.size(), rig.client->stats().requests_sent);
}

TEST(Client, ClientIdStampedOnAllPackets) {
  ClientParams p = base_params(SendMode::kViaSwitch);
  p.client_id = 5;
  sim::Simulator sim;
  phys::Topology topo{sim};
  auto& client = topo.add_node<Client>(
      sim, p, std::make_shared<FixedWorkload>(25.0), Rng{7});
  auto& wire_end = topo.add_node<CaptureNode>("wire");
  topo.connect(client, wire_end);
  client.start();
  sim.run();
  for (const auto& pkt : wire_end.packets()) {
    EXPECT_EQ(pkt.nc().client_id, 5);
    EXPECT_EQ(pkt.ip.src, client_ip(5));
  }
}

// -- retransmission reuses the serialized payload ---------------------------

/// Keeps the received FrameHandles alive (unlike CaptureNode, which
/// linearizes), so tests can check buffer sharing across attempts.
class HandleCapture : public phys::Node {
 public:
  HandleCapture() : phys::Node("sink") {}
  void handle_frame(std::size_t /*port*/, wire::FrameHandle frame) override {
    handles.push_back(std::move(frame));
  }
  std::vector<wire::FrameHandle> handles;
};

/// Received request frames grouped by CLIENT_SEQ, in arrival order.
std::map<std::uint32_t, std::vector<const wire::FrameHandle*>> by_seq(
    const std::vector<wire::FrameHandle>& handles) {
  std::map<std::uint32_t, std::vector<const wire::FrameHandle*>> out;
  for (const wire::FrameHandle& h : handles) {
    const wire::Packet pkt = wire::Packet::parse_backed(h);
    out[pkt.nc().client_seq].push_back(&h);
  }
  return out;
}

ClientParams retransmit_params(SendMode mode) {
  ClientParams p = base_params(mode);
  p.stop_at = SimTime::microseconds(200);  // a handful of requests
  p.retransmit_timeout = SimTime::microseconds(50);
  p.max_retransmits = 2;
  return p;
}

TEST(ClientRetransmit, ResendSharesThePayloadBufferByteForByte) {
  // With no responder every request retransmits until it gives up; each
  // resend must reuse the cached frame — same body buffer, same bytes —
  // never re-serializing the payload.
  ClientParams p = retransmit_params(SendMode::kViaSwitch);
  sim::Simulator sim;
  phys::Topology topo{sim};
  auto& client = topo.add_node<Client>(
      sim, p, std::make_shared<FixedWorkload>(25.0), Rng{7});
  auto& sink = topo.add_node<HandleCapture>();
  topo.connect(client, sink);
  client.start();
  sim.run();

  ASSERT_GT(client.stats().requests_sent, 0U);
  EXPECT_EQ(client.stats().retransmissions,
            client.stats().requests_sent * p.max_retransmits);
  const auto groups = by_seq(sink.handles);
  EXPECT_EQ(groups.size(), client.stats().requests_sent);
  for (const auto& [seq, attempts] : groups) {
    ASSERT_EQ(attempts.size(), 1U + p.max_retransmits) << "seq " << seq;
    for (std::size_t i = 1; i < attempts.size(); ++i) {
      EXPECT_TRUE(attempts[i]->shares_body_with(*attempts[0]))
          << "seq " << seq << " attempt " << i << " re-serialized the body";
      EXPECT_EQ(attempts[i]->to_frame(), attempts[0]->to_frame())
          << "seq " << seq << " attempt " << i << " changed on the wire";
    }
  }
}

TEST(ClientRetransmit, DirectRandomRebuildsHeadersOverTheSharedPayload) {
  // kDirectRandom re-draws its destination every attempt, so the header
  // block is rebuilt — but the payload tail must still be the original
  // buffer, shared by refcount, and each composed frame must match the
  // contiguous serializer byte for byte.
  ClientParams p = retransmit_params(SendMode::kDirectRandom);
  sim::Simulator sim;
  phys::Topology topo{sim};
  auto& client = topo.add_node<Client>(
      sim, p, std::make_shared<FixedWorkload>(25.0), Rng{7});
  auto& sink = topo.add_node<HandleCapture>();
  topo.connect(client, sink);
  client.start();
  sim.run();

  ASSERT_GT(client.stats().requests_sent, 0U);
  const auto groups = by_seq(sink.handles);
  for (const auto& [seq, attempts] : groups) {
    ASSERT_EQ(attempts.size(), 1U + p.max_retransmits) << "seq " << seq;
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      if (i > 0) {
        EXPECT_TRUE(attempts[i]->shares_body_with(*attempts[0]))
            << "seq " << seq << " attempt " << i
            << " re-serialized the payload";
      }
      // Scatter-gather compose vs the contiguous oracle.
      const wire::Frame bytes = attempts[i]->to_frame();
      EXPECT_EQ(wire::Packet::parse(bytes).serialize(), bytes)
          << "seq " << seq << " attempt " << i;
    }
  }
}

TEST(Client, RejectsBadConfigs) {
  sim::Simulator sim;
  ClientParams p = base_params(SendMode::kCClone);
  p.server_ips.resize(1);
  EXPECT_THROW((void)
      Client(sim, p, std::make_shared<FixedWorkload>(1.0), Rng{1}),
      CheckFailure);
  ClientParams p2 = base_params(SendMode::kViaSwitch);
  p2.rate_rps = 0.0;
  EXPECT_THROW((void)
      Client(sim, p2, std::make_shared<FixedWorkload>(1.0), Rng{1}),
      CheckFailure);
}

}  // namespace
}  // namespace netclone::host
