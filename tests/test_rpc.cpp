#include "wire/rpc.hpp"

#include <gtest/gtest.h>

namespace netclone::wire {
namespace {

TEST(RpcRequest, RoundTrip) {
  RpcRequest req;
  req.op = RpcOp::kScan;
  req.intrinsic_ns = 25000;
  req.key = 0xABCDEF0123456789ULL;
  req.scan_count = 100;
  req.value_size = 64;
  const Frame f = req.to_frame();
  EXPECT_EQ(f.size(), RpcRequest::kSize);
  const RpcRequest parsed = RpcRequest::from_frame(f);
  EXPECT_EQ(parsed.op, RpcOp::kScan);
  EXPECT_EQ(parsed.intrinsic_ns, 25000U);
  EXPECT_EQ(parsed.key, 0xABCDEF0123456789ULL);
  EXPECT_EQ(parsed.scan_count, 100);
  EXPECT_EQ(parsed.value_size, 64);
}

TEST(RpcRequest, RejectsBadOp) {
  Frame f(RpcRequest::kSize, std::byte{0});
  f[0] = std::byte{9};
  EXPECT_THROW((void)RpcRequest::from_frame(f), CodecError);
}

TEST(RpcRequest, TruncatedThrows) {
  Frame f(RpcRequest::kSize - 1, std::byte{0});
  EXPECT_THROW((void)RpcRequest::from_frame(f), CodecError);
}

TEST(RpcResponse, RoundTripWithValue) {
  RpcResponse resp;
  resp.status = RpcStatus::kOk;
  resp.queue_wait_ns = 12345;
  resp.service_ns = 25000;
  for (int i = 0; i < 64; ++i) {
    resp.value.push_back(static_cast<std::byte>(i));
  }
  const Frame f = resp.to_frame();
  const RpcResponse parsed = RpcResponse::from_frame(f);
  EXPECT_EQ(parsed.status, RpcStatus::kOk);
  EXPECT_EQ(parsed.queue_wait_ns, 12345U);
  EXPECT_EQ(parsed.service_ns, 25000U);
  EXPECT_EQ(parsed.value, resp.value);
}

TEST(RpcResponse, EmptyValue) {
  RpcResponse resp;
  resp.status = RpcStatus::kNotFound;
  const RpcResponse parsed = RpcResponse::from_frame(resp.to_frame());
  EXPECT_EQ(parsed.status, RpcStatus::kNotFound);
  EXPECT_TRUE(parsed.value.empty());
}

TEST(RpcResponse, LengthFieldGuardsParse) {
  RpcResponse resp;
  resp.value.assign(10, std::byte{7});
  Frame f = resp.to_frame();
  f.resize(f.size() - 5);  // truncate the value
  EXPECT_THROW((void)RpcResponse::from_frame(f), CodecError);
}

// All op codes survive a round trip.
class OpSweep : public ::testing::TestWithParam<RpcOp> {};

TEST_P(OpSweep, RoundTrips) {
  RpcRequest req;
  req.op = GetParam();
  const RpcRequest parsed = RpcRequest::from_frame(req.to_frame());
  EXPECT_EQ(parsed.op, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpSweep,
                         ::testing::Values(RpcOp::kSynthetic, RpcOp::kGet,
                                           RpcOp::kScan, RpcOp::kSet));

}  // namespace
}  // namespace netclone::wire
