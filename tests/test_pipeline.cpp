#include "pisa/pipeline.hpp"

#include <gtest/gtest.h>

#include "pisa/audit.hpp"
#include "pisa/resources.hpp"

namespace netclone::pisa {
namespace {

TEST(Pipeline, ResourceBeyondStageCountThrows) {
  Pipeline pipeline{4};
  EXPECT_THROW((void)RegisterScalar<int>(pipeline, "late", 4), CheckFailure);
  EXPECT_NO_THROW(RegisterScalar<int>(pipeline, "ok", 3));
}

// Per-pass legality checks (stage order, single access) are compiled out
// of release builds once the checked lanes have proven the programs legal;
// the tests that provoke them only exist in checked builds.
#if NETCLONE_PIPELINE_CHECKS

TEST(Pipeline, ForwardAccessAcrossStages) {
  Pipeline pipeline;
  RegisterArray<int> early{pipeline, "early", 1, 8};
  RegisterArray<int> late{pipeline, "late", 5, 8};
  PipelinePass pass{pipeline};
  (void)early.read(pass, 0);
  (void)late.read(pass, 0);
  EXPECT_EQ(pass.current_stage(), 5U);
}

TEST(Pipeline, BackwardAccessThrows) {
  Pipeline pipeline;
  RegisterArray<int> early{pipeline, "early", 1, 8};
  RegisterArray<int> late{pipeline, "late", 5, 8};
  PipelinePass pass{pipeline};
  (void)late.read(pass, 0);
  EXPECT_THROW((void)early.read(pass, 0), CheckFailure);
}

TEST(Pipeline, DoubleAccessInOnePassThrows) {
  // The constraint that forces NetClone's shadow table (§3.4): one
  // register array cannot be read twice by the same packet.
  Pipeline pipeline;
  RegisterArray<int> state{pipeline, "StateT", 3, 8};
  PipelinePass pass{pipeline};
  (void)state.read(pass, 0);
  EXPECT_THROW((void)state.read(pass, 1), CheckFailure);
}

#endif  // NETCLONE_PIPELINE_CHECKS

TEST(Pipeline, ShadowTablePatternWorks) {
  Pipeline pipeline;
  RegisterArray<int> state{pipeline, "StateT", 3, 8};
  RegisterArray<int> shadow{pipeline, "ShadowT", 4, 8};
  // Writes keep both consistent (one access to each per pass)...
  {
    PipelinePass pass{pipeline};
    state.write(pass, 2, 7);
    shadow.write(pass, 2, 7);
  }
  // ...so a later pass can observe two different indices.
  {
    PipelinePass pass{pipeline};
    EXPECT_EQ(state.read(pass, 2), 7);
    EXPECT_EQ(shadow.read(pass, 5), 0);
  }
}

TEST(Pipeline, FreshPassResetsAccessTracking) {
  Pipeline pipeline;
  RegisterScalar<int> seq{pipeline, "SEQ", 0};
  for (int i = 1; i <= 3; ++i) {
    PipelinePass pass{pipeline};
    EXPECT_EQ(seq.execute(pass, [](int& c) { return ++c; }), i);
  }
}

TEST(RegisterArray, ExecuteIsReadModifyWrite) {
  Pipeline pipeline;
  RegisterArray<std::uint32_t> filter{pipeline, "FilterT", 5, 16};
  {
    PipelinePass pass{pipeline};
    const bool hit = filter.execute(pass, 3, [](std::uint32_t& cell) {
      const bool match = cell == 77;
      cell = 77;
      return match;
    });
    EXPECT_FALSE(hit);
  }
  EXPECT_EQ(filter.peek(3), 77U);
  {
    PipelinePass pass{pipeline};
    const bool hit = filter.execute(pass, 3, [](std::uint32_t& cell) {
      const bool match = cell == 77;
      if (match) {
        cell = 0;
      }
      return match;
    });
    EXPECT_TRUE(hit);
  }
  EXPECT_EQ(filter.peek(3), 0U);
}

TEST(RegisterArray, OutOfRangeIndexThrows) {
  Pipeline pipeline;
  RegisterArray<int> arr{pipeline, "arr", 0, 4};
  PipelinePass pass{pipeline};
  EXPECT_THROW((void)arr.read(pass, 4), CheckFailure);
}

TEST(RegisterArray, InitialValueAndReset) {
  Pipeline pipeline;
  RegisterArray<int> arr{pipeline, "arr", 0, 4, 9};
  EXPECT_EQ(arr.peek(2), 9);
  {
    PipelinePass pass{pipeline};
    arr.write(pass, 2, 1);
  }
  EXPECT_EQ(arr.peek(2), 1);
  arr.reset();
  EXPECT_EQ(arr.peek(2), 9);
}

TEST(ExactMatchTable, InsertLookupEraseSemantics) {
  Pipeline pipeline;
  ExactMatchTable<int> table{pipeline, "T", 2, 4, 4, 4};
  table.insert(10, 100);
  table.insert(20, 200);
  EXPECT_EQ(table.entry_count(), 2U);
  {
    PipelinePass pass{pipeline};
    EXPECT_EQ(table.lookup(pass, 10), 100);
  }
  {
    PipelinePass pass{pipeline};
    EXPECT_EQ(table.lookup(pass, 30), std::nullopt);
  }
  table.erase(10);
  {
    PipelinePass pass{pipeline};
    EXPECT_EQ(table.lookup(pass, 10), std::nullopt);
  }
}

TEST(ExactMatchTable, OverwriteExistingKeyAllowedAtCapacity) {
  Pipeline pipeline;
  ExactMatchTable<int> table{pipeline, "T", 0, 2, 4, 4};
  table.insert(1, 1);
  table.insert(2, 2);
  EXPECT_NO_THROW(table.insert(1, 99));  // update, not growth
  EXPECT_THROW((void)table.insert(3, 3), CheckFailure);
}

#if NETCLONE_PIPELINE_CHECKS
TEST(ExactMatchTable, DoubleLookupThrows) {
  Pipeline pipeline;
  ExactMatchTable<int> table{pipeline, "T", 0, 4, 4, 4};
  table.insert(1, 1);
  PipelinePass pass{pipeline};
  (void)table.lookup(pass, 1);
  EXPECT_THROW((void)table.lookup(pass, 1), CheckFailure);
}
#endif  // NETCLONE_PIPELINE_CHECKS

TEST(HashUnit, DeterministicAndBounded) {
  Pipeline pipeline;
  HashUnit hash{pipeline, "H", 5};
  PipelinePass pass{pipeline};
  const std::uint32_t a = hash.hash32(pass, 1234, 128);
  const std::uint32_t b = hash.hash32(pass, 1234, 128);  // stateless: ok
  EXPECT_EQ(a, b);
  EXPECT_LT(a, 128U);
}

#if NETCLONE_PIPELINE_CHECKS
TEST(HashUnit, StageOrderStillEnforced) {
  Pipeline pipeline;
  HashUnit hash{pipeline, "H", 2};
  RegisterArray<int> late{pipeline, "late", 5, 4};
  PipelinePass pass{pipeline};
  (void)late.read(pass, 0);
  EXPECT_THROW((void)hash.hash32(pass, 1, 8), CheckFailure);
}
#endif  // NETCLONE_PIPELINE_CHECKS

TEST(RandomUnit, MultipleDrawsPerPass) {
  Pipeline pipeline;
  RandomUnit random{pipeline, "R", 0, 42};
  PipelinePass pass{pipeline};
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(random.next_below(pass, 6), 6U);
  }
}

TEST(Pipeline, ResetSoftStateClearsRegistersKeepsTables) {
  Pipeline pipeline;
  RegisterScalar<std::uint32_t> seq{pipeline, "SEQ", 0};
  RegisterArray<int> state{pipeline, "StateT", 3, 4};
  ExactMatchTable<int> table{pipeline, "GrpT", 1, 4, 2, 2};
  table.insert(0, 42);
  {
    PipelinePass pass{pipeline};
    (void)seq.execute(pass, [](std::uint32_t& c) { return ++c; });
    state.write(pass, 1, 5);
  }
  pipeline.reset_soft_state();
  EXPECT_EQ(seq.peek(), 0U);
  EXPECT_EQ(state.peek(1), 0);
  EXPECT_EQ(table.entry_count(), 1U);  // control-plane state survives
}

TEST(Audit, ReportsStageAndSramTotals) {
  Pipeline pipeline;
  RegisterScalar<std::uint32_t> seq{pipeline, "SEQ", 0};
  RegisterArray<std::uint32_t> filter{pipeline, "FilterT", 5,
                                      std::size_t{1} << 17};
  const AuditReport report = audit(pipeline);
  EXPECT_EQ(report.stages_used, 6U);
  EXPECT_EQ(report.stages_available, kDefaultStageCount);
  EXPECT_EQ(report.sram_bytes_total, 4U + (std::size_t{1} << 19));
  EXPECT_GT(report.sram_fraction, 0.0);
  EXPECT_LT(report.sram_fraction, 1.0);
  ASSERT_EQ(report.resources.size(), 2U);
  EXPECT_EQ(report.resources[0].name, "SEQ");
  EXPECT_FALSE(report.to_string().empty());
}

TEST(Audit, EmptyPipeline) {
  Pipeline pipeline;
  const AuditReport report = audit(pipeline);
  EXPECT_EQ(report.stages_used, 0U);
  EXPECT_EQ(report.sram_bytes_total, 0U);
}

}  // namespace
}  // namespace netclone::pisa
