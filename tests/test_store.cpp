#include "kv/store.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace netclone::kv {
namespace {

TEST(KvStore, SetAndGet) {
  KvStore store{16};
  EXPECT_TRUE(store.set("hello", "world"));
  const auto v = store.get("hello");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "world");
  EXPECT_EQ(store.size(), 1U);
}

TEST(KvStore, MissingKeyIsNullopt) {
  KvStore store{16};
  EXPECT_FALSE(store.get("nope").has_value());
  EXPECT_FALSE(store.contains("nope"));
}

TEST(KvStore, OverwriteKeepsSize) {
  KvStore store{16};
  EXPECT_TRUE(store.set("k", "v1"));
  EXPECT_TRUE(store.set("k", "v2"));
  EXPECT_EQ(store.size(), 1U);
  EXPECT_EQ(*store.get("k"), "v2");
}

TEST(KvStore, RejectsOversizedKeysAndValues) {
  KvStore store{16};
  EXPECT_FALSE(store.set(std::string(17, 'k'), "v"));
  EXPECT_FALSE(store.set("k", std::string(65, 'v')));
  EXPECT_FALSE(store.set("", "v"));
  EXPECT_TRUE(store.set(std::string(16, 'k'), std::string(64, 'v')));
}

TEST(KvStore, LoadFactorBoundEnforced) {
  KvStore store{4};  // capacity rounds to 8; max 4 objects
  EXPECT_EQ(store.capacity(), 8U);
  int inserted = 0;
  for (int i = 0; i < 10; ++i) {
    inserted += store.set("key" + std::to_string(i), "v") ? 1 : 0;
  }
  EXPECT_EQ(inserted, 4);
  EXPECT_EQ(store.size(), 4U);
  // Existing keys still updatable at the bound.
  EXPECT_TRUE(store.set("key0", "v2"));
}

TEST(KvStore, ProbeChainsSurviveCollisions) {
  KvStore store{64};
  // Insert enough keys that linear probing wraps and chains.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(store.set(key_for_index(static_cast<std::uint64_t>(i)),
                          value_for_index(static_cast<std::uint64_t>(i))));
  }
  for (int i = 0; i < 60; ++i) {
    const auto v = store.get(key_for_index(static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, value_for_index(static_cast<std::uint64_t>(i)));
  }
}

TEST(KvStore, ScanDigestDeterministicAndSensitive) {
  KvStore store{256};
  populate(store, 128);
  const std::uint64_t d1 = store.scan_digest(key_for_index(5), 100);
  const std::uint64_t d2 = store.scan_digest(key_for_index(5), 100);
  EXPECT_EQ(d1, d2);
  const std::uint64_t d3 = store.scan_digest(key_for_index(6), 100);
  EXPECT_NE(d1, d3);  // different start -> different objects folded
  const std::uint64_t d4 = store.scan_digest(key_for_index(5), 50);
  EXPECT_NE(d1, d4);  // different count
}

TEST(KvStore, ScanOnEmptyStore) {
  KvStore store{16};
  // No occupied slots: digest is the FNV offset basis, and no crash.
  EXPECT_EQ(store.scan_digest("whatever", 100), 0xCBF29CE484222325ULL);
}

TEST(KeyValueHelpers, Shapes) {
  const std::string key = key_for_index(1234);
  EXPECT_EQ(key.size(), kMaxKeyBytes);
  EXPECT_EQ(key, "k000000000001234");
  const std::string value = value_for_index(1234);
  EXPECT_EQ(value.size(), kMaxValueBytes);
  EXPECT_EQ(value, value_for_index(1234));
  EXPECT_NE(value, value_for_index(1235));
}

TEST(KvStore, PopulateMatchesPaperScale) {
  // 100k objects (1M in the benches, shrunk here for test speed): every
  // object retrievable with the right value.
  KvStore store{100000};
  populate(store, 100000);
  EXPECT_EQ(store.size(), 100000U);
  for (std::uint64_t i = 0; i < 100000; i += 9973) {
    const auto v = store.get(key_for_index(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, value_for_index(i));
  }
}

TEST(KvStore, ZeroCapacityRejected) {
  EXPECT_THROW(KvStore{0}, CheckFailure);
}

}  // namespace
}  // namespace netclone::kv
